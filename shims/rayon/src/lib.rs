//! Data-parallel iterator shim with the rayon surface the workspace uses.
//!
//! Items are materialized eagerly, split into one chunk per available core
//! and executed on scoped OS threads (`std::thread::scope`), so parallel
//! sections genuinely run concurrently. Differences from real rayon:
//!
//! * no work-stealing pool — each terminal call spawns short-lived threads;
//! * adaptors (`enumerate`, `zip`) are eager; only the final `map` closure
//!   runs in parallel;
//! * an active-worker cap keeps nested parallelism (e.g. a parallel gemm
//!   inside a parallel SplitSolve partition sweep) from spawning an
//!   unbounded number of threads — saturated levels run inline instead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Currently active shim worker threads (for the nesting cap).
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads a terminal operation may use right now.
fn available_workers() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cap = cores * 2;
    let active = ACTIVE_WORKERS.load(Ordering::Relaxed);
    if active >= cap {
        1
    } else {
        cores
    }
}

/// Number of logical cores (rayon API compatibility).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Decrements the active-worker count on drop, so a panicking parallel
/// region (caught by a test harness) cannot leak workers and permanently
/// serialize the rest of the process.
struct WorkerLease(usize);

impl WorkerLease {
    fn acquire(n: usize) -> Self {
        ACTIVE_WORKERS.fetch_add(n, Ordering::Relaxed);
        WorkerLease(n)
    }
}

impl Drop for WorkerLease {
    fn drop(&mut self) {
        ACTIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
    }
}

/// Marks the current thread as a member of an external persistent worker
/// pool (e.g. `qtx-core`'s sweep scheduler) for the guard's lifetime.
///
/// Each guard charges one core's worth of workers against the nesting
/// cap, so a single pool worker still leaves headroom for inner shim
/// parallelism (a parallel gemm under one energy point), while two or
/// more concurrent pool workers saturate the cap and nested parallel
/// sections run inline — pool threads never multiply through scoped
/// spawns.
pub struct PoolWorkerGuard {
    _lease: WorkerLease,
}

/// Acquires a [`PoolWorkerGuard`] for the current thread.
pub fn enter_pool_worker() -> PoolWorkerGuard {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    PoolWorkerGuard { _lease: WorkerLease::acquire(cores) }
}

/// Runs `a` and `b` potentially in parallel and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if available_workers() <= 1 {
        return (a(), b());
    }
    join_parallel(a, b)
}

/// The spawning path of [`join`]. `b` runs on the calling thread; if the
/// spawned `a` panics, its original payload is re-raised here (after `b`
/// has finished — no sibling is abandoned mid-write).
fn join_parallel<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let _lease = WorkerLease::acquire(1);
        let ha = s.spawn(a);
        let rb = b();
        match ha.join() {
            Ok(ra) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Applies `f` to every item, preserving order, on up to `workers` threads.
fn par_map_vec<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = available_workers().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    par_map_vec_chunked(items, f, workers)
}

/// The spawning path of [`par_map_vec`]: splits into `workers` nearly
/// equal runs, keeps chunk order, and joins *every* sibling before
/// propagating the first panic payload — a panicking chunk never leaves
/// its siblings' writes torn mid-flight.
fn par_map_vec_chunked<T, U, F>(items: Vec<T>, f: &F, workers: usize) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let _lease = WorkerLease::acquire(chunks.len());
    let mut out: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.push(part),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
    });
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    out.into_iter().flatten().collect()
}

/// Eagerly materialized "parallel" iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// `ParIter` with a pending map stage that will run in parallel.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Zips with any ordinary iterable (eager).
    pub fn zip<J: IntoIterator>(self, other: J) -> ParIter<(T, J::Item)> {
        ParIter { items: self.items.into_iter().zip(other).collect() }
    }

    /// Chains a closure to run in parallel at the terminal operation.
    /// The `Fn(T) -> U` bound pins the closure's argument type here, like
    /// rayon's `ParallelIterator::map`, so call sites infer cleanly.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> U,
    {
        ParMap { items: self.items, f }
    }

    /// Runs `f` over all items in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = par_map_vec(self.items, &|t| f(t));
    }

    /// Collects the (unchanged) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Executes the map stage in parallel and collects in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }

    /// Executes the map stage in parallel, discarding results.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = self.f;
        let _ = par_map_vec(self.items, &|t| g(f(t)));
    }
}

/// Conversion into the shim's parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// Borrowing parallel-iterator entry points on slices and vectors.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over non-overlapping sub-slices of length `n`.
    fn par_chunks(&self, n: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }
    fn par_chunks(&self, n: usize) -> ParIter<&[T]> {
        ParIter { items: self.chunks(n).collect() }
    }
}

/// Mutable parallel-iterator entry points on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable sub-slices.
    fn par_chunks_mut(&mut self, n: usize) -> ParIter<&mut [T]>;
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, n: usize) -> ParIter<&mut [T]> {
        ParIter { items: self.chunks_mut(n).collect() }
    }
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
}

/// The prelude mirror: `use rayon::prelude::*` pulls in the entry traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_type() {
        let v = [1i32, 2, 3];
        let ok: Result<Vec<i32>, ()> = v.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap(), vec![1, 2, 3]);
        let err: Result<Vec<i32>, i32> =
            vec![1, 2, 3].into_par_iter().map(|x| if x == 2 { Err(x) } else { Ok(x) }).collect();
        assert_eq!(err.unwrap_err(), 2);
    }

    #[test]
    fn for_each_visits_everything() {
        let count = AtomicUsize::new(0);
        (0..257usize).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn chunks_mut_disjoint_writes() {
        let mut v = vec![0u64; 1024];
        v.par_chunks_mut(100).enumerate().for_each(|(i, c)| {
            for z in c.iter_mut() {
                *z = i as u64;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[999], 9);
        assert_eq!(v[1023], 10);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = crate::join(|| 21 * 2, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn panicking_chunk_joins_all_siblings_first() {
        // One of four chunks panics; the other three must still run to
        // completion (their writes land) before the panic propagates, and
        // the original payload must survive the join.
        use std::sync::atomic::AtomicBool;
        let n = 64usize;
        let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let items: Vec<usize> = (0..n).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            super::par_map_vec_chunked(
                items,
                &|i| {
                    if i == 0 {
                        panic!("chunk zero down");
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    done[i].store(true, Ordering::SeqCst);
                },
                4,
            )
        }))
        .unwrap_err();
        assert_eq!(caught.downcast_ref::<&str>(), Some(&"chunk zero down"));
        // Chunks 1..3 (items 16..64) must all have completed despite the
        // early panic in chunk 0.
        for (i, flag) in done.iter().enumerate().skip(n / 4) {
            assert!(flag.load(Ordering::SeqCst), "sibling item {i} was abandoned");
        }
    }

    #[test]
    fn join_preserves_spawned_panic_payload() {
        let caught =
            std::panic::catch_unwind(|| super::join_parallel(|| panic!("left arm down"), || 7))
                .unwrap_err();
        assert_eq!(caught.downcast_ref::<&str>(), Some(&"left arm down"));
    }

    #[test]
    fn pool_worker_guard_inlines_nested_parallelism() {
        // With two pool-worker guards held the nesting cap is saturated:
        // a parallel section must degrade to the calling thread instead
        // of spawning.
        let _g1 = crate::enter_pool_worker();
        let _g2 = crate::enter_pool_worker();
        let me = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> =
            (0..16usize).into_par_iter().map(|_| std::thread::current().id()).collect();
        assert!(ids.iter().all(|&id| id == me), "saturated sections must run inline");
    }

    #[test]
    fn zip_and_enumerate() {
        let a = [10, 20, 30];
        let b = vec![1, 2, 3];
        let s: Vec<i32> = a.par_iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(s, vec![11, 22, 33]);
        let e: Vec<usize> = a.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(e, vec![0, 1, 2]);
    }
}
