//! No-op `#[derive(Serialize, Deserialize)]` macros.
//!
//! The workspace only uses serde derives as markers (nothing is actually
//! serialized through serde's data model — binary I/O goes through the
//! `bytes` transfer format), so the derives expand to nothing and the
//! traits in the companion `serde` shim are blanket-implemented.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
