//! Minimal `bytes` shim for the CP2K→OMEN transfer format.
//!
//! Implements the little-endian subset `qtx-cp2k::hsfile` uses: a growable
//! write buffer (`BytesMut` + `BufMut`) and a consuming read cursor
//! (`Bytes` + `Buf` with `split_to`). No refcounted zero-copy slicing —
//! buffers here are megabytes read once at startup.

use std::ops::Deref;

/// Growable byte buffer (write side).
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freezes into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side operations (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

/// Immutable byte cursor (read side). Reads consume from the front.
#[derive(Debug, Default, Clone)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into an owned cursor.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: src.to_vec(), pos: 0 }
    }

    /// Remaining unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `n` unread bytes.
    ///
    /// Panics when fewer than `n` bytes remain, matching `bytes`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let front = self.data[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Bytes { data: front, pos: 0 }
    }

    /// Copies the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "buffer underrun");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        out
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// Read-side operations (little-endian subset).
pub trait Buf {
    /// Unread byte count.
    fn remaining(&self) -> usize;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take::<8>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BytesMut::new();
        w.put_slice(b"HDR");
        w.put_u8(7);
        w.put_u64_le(0xDEAD_BEEF);
        w.put_f64_le(-2.5);
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(&r.split_to(3)[..], b"HDR");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64_le(), -2.5);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut r = Bytes::copy_from_slice(b"ab");
        let _ = r.split_to(3);
    }
}
