//! `parking_lot` shim: a poison-transparent `Mutex` over `std::sync::Mutex`.
//!
//! parking_lot's `lock()` returns the guard directly (no `Result`); this
//! wrapper matches that by unwrapping poison into the inner guard — a
//! panicked holder does not invalidate the data for the accounting
//! structures (device clocks, message queues) guarded here.

use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// Mutual exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
