//! Mini property-testing harness with the `proptest!` macro surface.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest! { #![proptest_config(...)] #[test] fn f(x in RANGE, ...) { ... } }`
//! block form, numeric range strategies, and `prop_assert!`. Sampling is
//! deterministic (a splitmix64 stream seeded from the test name), so a
//! failure always reproduces; there is no shrinking.

/// Number-of-cases configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 sampling stream.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream (callers derive the seed from the test name).
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A sampleable value source (half-open numeric ranges).
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

/// FNV-1a over the test name: the per-property seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Soft assertion: fails the current case with context instead of
/// panicking directly (the harness adds the case's inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("prop_assert failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Block-form property definition, mirroring proptest's macro.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for case in 0..cfg.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    let outcome: Result<(), String> = (|| { $body Ok(()) })();
                    if let Err(msg) = outcome {
                        panic!(
                            "property {} failed on case {case}: {msg}\n  inputs: {}",
                            stringify!($name),
                            [$( format!("{} = {:?}", stringify!($arg), $arg) ),+].join(", "),
                        );
                    }
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name ( $( $arg in $strat ),+ ) $body )+
        }
    };
}

/// `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::{prop_assert, proptest, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, x in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
