//! `crossbeam::channel` shim backed by `std::sync::mpsc`.
//!
//! The virtual-MPI fabric (`qtx-mpi`) only needs unbounded MPSC channels
//! with cloneable senders; std's channel provides exactly that. Receivers
//! are `Send` (they live behind a `Mutex` in the fabric), which is all the
//! consumer requires.

/// Unbounded channel API mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_across_threads() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap()).join().unwrap();
        tx.send(8).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 8]);
    }
}
