//! Minimal criterion-compatible bench harness.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros — with a straightforward
//! measurement loop: a warm-up phase sizes the batch so one sample lasts
//! ≳1 ms, then `sample_size` samples are timed and min/median/mean are
//! reported on stdout.
//!
//! Set `QTX_BENCH_JSON=<path>` to additionally append one JSON line per
//! benchmark (`{"id": ..., "median_ns": ..., "mean_ns": ..., "min_ns":
//! ..., "samples": ...}`) — the hook the repo's `BENCH_*.json` artifacts
//! are produced through.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, recording `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + batch sizing: grow the batch until one run ≳ 1 ms so
        // timer resolution is negligible, capping total sizing time.
        let mut batch = 1u64;
        let sizing_start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || sizing_start.elapsed() > Duration::from_millis(500)
            {
                self.iters_per_sample = batch;
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / self.iters_per_sample as f64);
        }
    }
}

/// Summary statistics of one benchmark (nanoseconds per iteration).
#[derive(Debug, Clone)]
pub struct Summary {
    /// Benchmark id, `group/name`.
    pub id: String,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean sample.
    pub mean_ns: f64,
    /// Number of samples.
    pub samples: usize,
}

fn report(summary: &Summary) {
    println!(
        "bench {:<52} min {:>12.1} ns   median {:>12.1} ns   mean {:>12.1} ns   ({} samples)",
        summary.id, summary.min_ns, summary.median_ns, summary.mean_ns, summary.samples
    );
    if let Ok(path) = std::env::var("QTX_BENCH_JSON") {
        if let Ok(mut fh) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                fh,
                "{{\"id\": \"{}\", \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}}}",
                summary.id, summary.min_ns, summary.median_ns, summary.mean_ns, summary.samples
            );
        }
    }
}

fn run_bench(id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) -> Summary {
    let mut b = Bencher { iters_per_sample: 1, samples: Vec::new(), sample_size };
    f(&mut b);
    let mut s = b.samples;
    if s.is_empty() {
        s.push(0.0);
    }
    s.sort_by(|a, c| a.partial_cmp(c).unwrap());
    let to_ns = 1e9;
    let summary = Summary {
        id: id.to_string(),
        min_ns: s[0] * to_ns,
        median_ns: s[s.len() / 2] * to_ns,
        mean_ns: s.iter().sum::<f64>() / s.len() as f64 * to_ns,
        samples: s.len(),
    };
    report(&summary);
    summary
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored (API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `group/name`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let mut f = f;
        run_bench(&full, self.sample_size, |b| f(b));
        self
    }

    /// Benchmarks a closure that receives an input reference.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let mut f = f;
        run_bench(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Benchmarks a stand-alone closure.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_bench(id, 10, |b| f(b));
        self
    }
}

/// Bundles bench functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let s = run_bench("t/fast", 5, |b| b.iter(|| black_box(3u64).pow(7)));
        assert!(s.min_ns >= 0.0);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("w", 4), &4usize, |b, &n| b.iter(|| black_box(n * 2)));
        g.finish();
    }
}
