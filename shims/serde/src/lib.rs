//! Marker-trait shim for serde.
//!
//! `Serialize`/`Deserialize` are blanket-implemented for every type so the
//! derive bounds used across the workspace type-check; no serialization
//! machinery exists (none is used — persistence goes through the `bytes`
//! transfer format in `qtx-cp2k`).

pub use serde_derive::{Deserialize, Serialize};

mod traits {
    /// Marker stand-in for `serde::Serialize`.
    pub trait SerializeMarker {}
    impl<T: ?Sized> SerializeMarker for T {}

    /// Marker stand-in for `serde::Deserialize`.
    pub trait DeserializeMarker {}
    impl<T: ?Sized> DeserializeMarker for T {}
}

pub use traits::{DeserializeMarker, SerializeMarker};
