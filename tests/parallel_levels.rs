//! Integration: the three-level parallel sweep (Fig. 9) is independent of
//! the rank count and matches the serial reference.

use qtx::core::{parallel_sweep, PointPolicy, SweepPlan, TransportEngine};
use qtx::prelude::*;

fn utb_device() -> Device {
    let spec = DeviceBuilder::utb(0.8).cells(6).basis(BasisKind::TightBinding).build();
    let mut dev = Device::build(spec).expect("device");
    dev.config.n_kz = 3;
    let dk = dev.at_kz(0.0);
    let edge = qtx::core::energygrid::subband_edges(&dk.lead_l, 0.0, 6.0)[0];
    dev.config.mu_l = edge + 0.12;
    dev.config.mu_r = edge + 0.08;
    dev
}

#[test]
fn sweep_is_rank_count_invariant() {
    let dev = utb_device();
    let plan = SweepPlan::from_device(&dev, 0.05, 0.12);
    assert_eq!(plan.k_points.len(), 3);
    assert!(plan.total_points() > 0);
    let spectra: Vec<Vec<(f64, f64)>> = [2usize, 5]
        .iter()
        .map(|&n| parallel_sweep(&dev, &plan, n).expect("sweep").spectrum)
        .collect();
    assert_eq!(spectra[0].len(), spectra[1].len());
    for (a, b) in spectra[0].iter().zip(&spectra[1]) {
        assert!((a.0 - b.0).abs() < 1e-12);
        assert!((a.1 - b.1).abs() < 1e-9, "{a:?} vs {b:?}");
    }
}

#[test]
fn sweep_matches_serial_per_k_reference() {
    let dev = utb_device();
    let plan = SweepPlan::from_device(&dev, 0.08, 0.15);
    let result = parallel_sweep(&dev, &plan, 4).expect("sweep");
    // Pick a handful of samples and recompute serially.
    let engine = TransportEngine::new(dev.clone());
    for &(kz, _w, e, t) in result.samples.iter().take(5) {
        let reference = engine
            .solve_point(e, kz, &PointPolicy::direct())
            .into_result()
            .expect("serial")
            .transmission;
        assert!((t - reference).abs() < 1e-9, "kz={kz} E={e}: {t} vs {reference}");
    }
}

#[test]
fn weights_halve_at_zone_boundary() {
    let dev = utb_device();
    let ks = dev.kz_points();
    assert_eq!(ks.len(), 3);
    assert_eq!(ks[0].1, 0.5);
    assert_eq!(ks[1].1, 1.0);
    assert_eq!(ks[2].1, 0.5);
}
