//! Property-based tests (proptest) on the core numerical invariants.

use proptest::prelude::*;
use qtx::linalg::{
    c64, gemm, hessenberg, hessenberg_unblocked, ldl_factor_nopiv, ldl_factor_nopiv_unblocked,
    lu_factor, lu_factor_unblocked, lu_inverse, orthonormality_defect, qr_factor,
    qr_factor_unblocked, zgesv, zgesv_into, zher2k, zherk, ztrmm, Complex64, Diag, Op, Side, UpLo,
    Workspace, ZMat,
};
use qtx::solver::{bcr::bcr_solve_raw, rgf_diagonal_and_corner_ws, ObcSystem, SplitSolve};
use qtx::sparse::Btd;

/// Reference triple loop the tiled kernel is checked against.
fn naive_matmul(a: &ZMat, b: &ZMat) -> ZMat {
    let mut c = ZMat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = Complex64::ZERO;
            for l in 0..a.cols() {
                s += a[(i, l)] * b[(l, j)];
            }
            c[(i, j)] = s;
        }
    }
    c
}

fn apply_op(op: Op, m: &ZMat) -> ZMat {
    match op {
        Op::None => m.clone(),
        Op::Transpose => m.transpose(),
        Op::Adjoint => m.adjoint(),
    }
}

/// Diagonal shift that keeps a random decoy system factorable.
fn lu_shift(a: &ZMat) -> ZMat {
    let mut s = a.clone();
    for i in 0..s.rows() {
        s[(i, i)] += c64(4.0, 1.0);
    }
    s
}

fn random_btd(nb: usize, s: usize, seed: u64, dominance: f64) -> Btd {
    let mut a = Btd::zeros(nb, s);
    for i in 0..nb {
        a.diag[i] = ZMat::random(s, s, seed.wrapping_add(i as u64));
        for d in 0..s {
            a.diag[i][(d, d)] += c64(dominance, 1.0);
        }
    }
    for i in 0..nb - 1 {
        a.upper[i] = ZMat::random(s, s, seed.wrapping_add(1000 + i as u64)).scaled(c64(0.35, 0.0));
        a.lower[i] = ZMat::random(s, s, seed.wrapping_add(2000 + i as u64)).scaled(c64(0.35, 0.0));
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SplitSolve solves random well-conditioned BTD systems for every
    /// partition count, matching the dense reference.
    #[test]
    fn splitsolve_matches_dense(
        nb in 2usize..10,
        s in 1usize..5,
        m in 1usize..4,
        seed in 0u64..1_000_000,
        partitions_pow in 0u32..3,
    ) {
        let partitions = (1usize << partitions_pow).min(nb);
        let partitions = if partitions.is_power_of_two() { partitions } else { 1 };
        let sys = ObcSystem {
            a: random_btd(nb, s, seed, 4.0 + s as f64),
            sigma_l: ZMat::random(s, s, seed + 31).scaled(c64(0.25, 0.1)).into(),
            sigma_r: ZMat::random(s, s, seed + 32).scaled(c64(0.25, -0.1)).into(),
            rhs_top: ZMat::random(s, m, seed + 33),
            rhs_bottom: ZMat::random(s, m, seed + 34),
        };
        let x_ref = zgesv(&sys.t_dense(), &sys.b_dense()).unwrap();
        let (x, _) = SplitSolve::new(partitions).solve(&sys, None).unwrap();
        prop_assert!(x.max_diff(&x_ref) < 1e-7, "diff {:.2e}", x.max_diff(&x_ref));
    }

    /// BCR agrees with dense solves on arbitrary block counts (including
    /// non-powers of two).
    #[test]
    fn bcr_matches_dense(
        nb in 1usize..12,
        s in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let a = random_btd(nb.max(1), s, seed, 5.0);
        let b = ZMat::random(a.dim(), 2, seed + 77);
        let x = bcr_solve_raw(&a, &b).unwrap();
        let x_ref = zgesv(&a.to_dense(), &b).unwrap();
        prop_assert!(x.max_diff(&x_ref) < 1e-7);
    }

    /// The tiled/packed gemm agrees with the naive triple loop for every
    /// `Op` pairing on arbitrary (non-tile-multiple) shapes, including
    /// the α/β accumulation form.
    #[test]
    fn tiled_gemm_matches_naive(
        m in 1usize..90,
        n in 1usize..90,
        k in 1usize..70,
        opsel in 0u32..9,
        seed in 0u64..1_000_000,
    ) {
        let ops = [Op::None, Op::Transpose, Op::Adjoint];
        let op_a = ops[(opsel / 3) as usize];
        let op_b = ops[(opsel % 3) as usize];
        let a = match op_a { Op::None => ZMat::random(m, k, seed), _ => ZMat::random(k, m, seed) };
        let b = match op_b { Op::None => ZMat::random(k, n, seed + 1), _ => ZMat::random(n, k, seed + 1) };
        let c0 = ZMat::random(m, n, seed + 2);
        let alpha = c64(0.7, -0.4);
        let beta = c64(-0.2, 0.9);
        let mut c = c0.clone();
        gemm(alpha, &a, op_a, &b, op_b, beta, &mut c);
        let mut expected = naive_matmul(&apply_op(op_a, &a), &apply_op(op_b, &b)).scaled(alpha);
        expected.axpy(beta, &c0);
        prop_assert!(
            c.max_diff(&expected) < 1e-9,
            "m={m} n={n} k={k} ops={op_a:?}/{op_b:?}: {:.2e}",
            c.max_diff(&expected)
        );
    }

    /// The in-place triangular multiply agrees with a materialized
    /// triangle fed through gemm, for every Side/UpLo/Op/Diag combination
    /// on arbitrary (block-edge-straddling) shapes — with poison in the
    /// unreferenced triangle (and on the diagonal for `Diag::Unit`) so any
    /// out-of-triangle read blows up the comparison.
    #[test]
    fn ztrmm_matches_materialized_gemm(
        n in 1usize..90,
        m in 1usize..20,
        sel in 0u32..24,
        seed in 0u64..1_000_000,
    ) {
        let side = if sel % 2 == 0 { Side::Left } else { Side::Right };
        let uplo = if (sel / 2) % 2 == 0 { UpLo::Lower } else { UpLo::Upper };
        let op = [Op::None, Op::Transpose, Op::Adjoint][(sel / 4 % 3) as usize];
        let diag = if (sel / 12) % 2 == 0 { Diag::Unit } else { Diag::NonUnit };
        let mut a = ZMat::random(n, n, seed);
        let mut eff = ZMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let stored = match uplo {
                    UpLo::Lower => i >= j,
                    UpLo::Upper => i <= j,
                };
                if stored {
                    eff[(i, j)] = a[(i, j)];
                } else {
                    a[(i, j)] = c64(1e30, -1e30); // poison: must never be read
                }
            }
            if diag == Diag::Unit {
                a[(j, j)] = c64(-3e20, 2e20);
                eff[(j, j)] = Complex64::ONE;
            }
        }
        let eff = apply_op(op, &eff);
        let b0 = match side {
            Side::Left => ZMat::random(n, m, seed + 1),
            Side::Right => ZMat::random(m, n, seed + 1),
        };
        let alpha = c64(0.9, -0.2);
        let mut b = b0.clone();
        ztrmm(side, uplo, op, diag, alpha, a.view(), b.view_mut());
        let expected = match side {
            Side::Left => naive_matmul(&eff, &b0).scaled(alpha),
            Side::Right => naive_matmul(&b0, &eff).scaled(alpha),
        };
        prop_assert!(
            b.max_diff(&expected) < 1e-9 * (n as f64).max(1.0),
            "side={side:?} uplo={uplo:?} op={op:?} diag={diag:?} n={n} m={m}: {:.2e}",
            b.max_diff(&expected)
        );
    }

    /// The Hermitian rank-2k update agrees with its two-gemm expansion on
    /// arbitrary shapes for both transpose modes, and the result is
    /// exactly Hermitian.
    #[test]
    fn zher2k_matches_two_gemms(
        n in 1usize..80,
        k in 1usize..40,
        adjoint_sel in 0u32..2,
        seed in 0u64..1_000_000,
    ) {
        let op = if adjoint_sel == 1 { Op::Adjoint } else { Op::None };
        let (a, b) = match op {
            Op::None => (ZMat::random(n, k, seed), ZMat::random(n, k, seed + 1)),
            _ => (ZMat::random(k, n, seed), ZMat::random(k, n, seed + 1)),
        };
        let alpha = c64(0.4, 0.7);
        let mut c = ZMat::random(n, n, seed + 2);
        c.hermitianize();
        let mut expected = c.clone();
        let flip = if op == Op::None { Op::Adjoint } else { Op::None };
        gemm(alpha, &a, op, &b, flip, c64(0.25, 0.0), &mut expected);
        gemm(alpha.conj(), &b, op, &a, flip, Complex64::ONE, &mut expected);
        zher2k(alpha, a.view(), b.view(), op, 0.25, &mut c);
        prop_assert!(
            c.max_diff(&expected) < 1e-9 * (k as f64).max(1.0),
            "op={op:?} n={n} k={k}: {:.2e}",
            c.max_diff(&expected)
        );
        prop_assert!(c.hermitian_defect() < 1e-12);
    }

    /// Solver results are bit-for-bit independent of workspace history: a
    /// freshly created pool and a pool recycled through a previous solve
    /// of a *different* system produce identical outputs.
    #[test]
    fn workspace_reuse_is_transparent(
        nb in 2usize..8,
        s in 1usize..5,
        m in 1usize..3,
        seed in 0u64..1_000_000,
    ) {
        let sys = ObcSystem {
            a: random_btd(nb, s, seed, 4.0 + s as f64),
            sigma_l: ZMat::random(s, s, seed + 41).scaled(c64(0.25, 0.1)).into(),
            sigma_r: ZMat::random(s, s, seed + 42).scaled(c64(0.25, -0.1)).into(),
            rhs_top: ZMat::random(s, m, seed + 43),
            rhs_bottom: ZMat::random(s, m, seed + 44),
        };
        let decoy = ObcSystem {
            a: random_btd(nb + 1, s, seed + 99, 5.0 + s as f64),
            sigma_l: ZMat::random(s, s, seed + 51).scaled(c64(0.2, 0.1)).into(),
            sigma_r: ZMat::random(s, s, seed + 52).scaled(c64(0.2, -0.1)).into(),
            rhs_top: ZMat::random(s, m, seed + 53),
            rhs_bottom: ZMat::random(s, m, seed + 54),
        };
        let solver = SplitSolve::new(2.min(nb));
        // Fresh pool.
        let fresh_ws = Workspace::new();
        let (x_fresh, _) = solver.solve_ws(&sys, None, &fresh_ws).unwrap();
        let g_fresh = rgf_diagonal_and_corner_ws(&sys, &Workspace::new()).unwrap();
        // Dirty pool: recycled through a different system first.
        let dirty_ws = Workspace::new();
        let _ = solver.solve_ws(&decoy, None, &dirty_ws).unwrap();
        let _ = rgf_diagonal_and_corner_ws(&decoy, &dirty_ws).unwrap();
        let (x_dirty, _) = solver.solve_ws(&sys, None, &dirty_ws).unwrap();
        let g_dirty = rgf_diagonal_and_corner_ws(&sys, &dirty_ws).unwrap();
        prop_assert!(x_fresh.max_diff(&x_dirty) == 0.0, "SplitSolve differs after recycle");
        prop_assert!(g_fresh.corner.max_diff(&g_dirty.corner) == 0.0, "RGF corner differs");
        for (df, dd) in g_fresh.diag.iter().zip(&g_dirty.diag) {
            prop_assert!(df.max_diff(dd) == 0.0, "RGF diagonal differs");
        }
        // And the pool really was exercised: fresh allocations happened on
        // the decoy, reuse on the second pass kept the count flat.
        prop_assert!(dirty_ws.fresh_allocations() > 0);
    }

    /// Blocked (panel + trsm + gemm) and unblocked LU agree across sizes
    /// straddling the blocking crossover (96): same solutions, same
    /// determinant (pivot-parity sign included).
    #[test]
    fn blocked_lu_matches_unblocked(n in 60usize..160, seed in 0u64..1_000_000) {
        let a = ZMat::random(n, n, seed);
        let b = ZMat::random(n, 2, seed + 1);
        let fb = lu_factor(&a).unwrap();
        let fu = lu_factor_unblocked(&a).unwrap();
        let xb = fb.solve(&b);
        let xu = fu.solve(&b);
        prop_assert!(
            xb.max_diff(&xu) < 1e-6 * n as f64,
            "n={n}: {:.2e}",
            xb.max_diff(&xu)
        );
        let (db, du) = (fb.determinant(), fu.determinant());
        let rel = (db - du).abs() / du.abs().max(1e-300);
        prop_assert!(rel < 1e-6, "determinant drift {rel:.2e} (sign bug?)");
    }

    /// Same for the Hermitian LDLᴴ stack: without pivoting the factors are
    /// unique, so blocked and unblocked packed factors must agree entrywise.
    #[test]
    fn blocked_ldl_matches_unblocked(n in 60usize..160, seed in 0u64..1_000_000) {
        let g = ZMat::random(n, n, seed);
        let mut a = ZMat::zeros(n, n);
        zherk(1.0, g.view(), Op::None, 0.0, &mut a);
        for i in 0..n {
            a[(i, i)] += c64(n as f64, 0.0);
        }
        let fb = ldl_factor_nopiv(&a).unwrap();
        let fu = ldl_factor_nopiv_unblocked(&a).unwrap();
        let b = ZMat::random(n, 2, seed + 1);
        let diff = fb.solve(&b).max_diff(&fu.solve(&b));
        prop_assert!(diff < 1e-6 * n as f64, "n={n}: {diff:.2e}");
        for (db, du) in fb.diagonal().iter().zip(fu.diagonal()) {
            prop_assert!((db - du).abs() < 1e-6 * db.abs().max(1.0));
        }
    }

    /// `solve_into` through a recycled pool is bit-identical to a fresh
    /// pool: factor+solve results must not depend on buffer history.
    #[test]
    fn factor_solve_into_recycled_pool_is_bit_identical(
        n in 30usize..140,
        m in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let a = {
            let mut a = ZMat::random(n, n, seed);
            for i in 0..n {
                a[(i, i)] += c64(3.0, 1.0);
            }
            a
        };
        let b = ZMat::random(n, m, seed + 1);
        // Fresh pool.
        let ws_fresh = Workspace::new();
        let mut x_fresh = ws_fresh.take_scratch(n, m);
        zgesv_into(&a, &b, &mut x_fresh, &ws_fresh).unwrap();
        // Dirty pool: recycled through solves of a different system first.
        let ws_dirty = Workspace::new();
        let decoy_a = ZMat::random(n + 3, n + 3, seed + 7);
        let decoy_b = ZMat::random(n + 3, m + 1, seed + 8);
        let mut decoy_x = ws_dirty.take_scratch(n + 3, m + 1);
        let _ = zgesv_into(&lu_shift(&decoy_a), &decoy_b, &mut decoy_x, &ws_dirty);
        ws_dirty.recycle(decoy_x);
        let mut x_dirty = ws_dirty.take_scratch(n, m);
        zgesv_into(&a, &b, &mut x_dirty, &ws_dirty).unwrap();
        prop_assert!(x_fresh.max_diff(&x_dirty) == 0.0, "recycled pool changed bits");
    }

    /// Blocked compact-WY QR and the unblocked reflector loop agree on
    /// sizes straddling the blocking crossovers (160 columns square, 128
    /// for the tall-skinny m = 4n shape — both lowered by the recursive
    /// sub-panel factorization), including tall-skinny m ≫ n shapes:
    /// same packed factors, same least-squares solutions, orthonormal
    /// thin Q.
    #[test]
    fn blocked_qr_matches_unblocked(
        n in 110usize..260,
        extra in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        // extra = 0: square; 1: mildly rectangular; 2: tall-skinny 4×.
        let m = match extra {
            0 => n,
            1 => n + 17,
            _ => 4 * n,
        };
        let a = ZMat::random(m, n, seed);
        let fb = qr_factor(&a);
        let fu = qr_factor_unblocked(&a);
        let scale = a.norm_max().max(1.0) * m as f64;
        // Same reflectors and R entrywise up to summation reordering.
        let q = fb.q_thin();
        prop_assert!(orthonormality_defect(&q) < 1e-10 * n as f64);
        prop_assert!((&q * &fb.r()).max_diff(&a) < 1e-9 * scale);
        let b = ZMat::random(m, 2, seed + 1);
        let xb = fb.least_squares(&b);
        let xu = fu.least_squares(&b);
        prop_assert!(
            xb.max_diff(&xu) < 1e-7 * scale,
            "m={m} n={n}: {:.2e}",
            xb.max_diff(&xu)
        );
    }

    /// Rank-deficient inputs (duplicated columns) keep the blocked path
    /// consistent with the unblocked one: Q·R still reproduces A.
    #[test]
    fn blocked_qr_rank_deficient(n in 192usize..240, seed in 0u64..1_000_000) {
        let mut a = ZMat::random(n + 20, n, seed);
        // Duplicate a band of columns across a panel boundary.
        for j in 0..6 {
            let src: Vec<Complex64> = a.col(j).to_vec();
            a.col_mut(90 + j).copy_from_slice(&src);
        }
        let fb = qr_factor(&a);
        let q = fb.q_thin();
        prop_assert!((&q * &fb.r()).max_diff(&a) < 1e-8 * n as f64);
    }

    /// Blocked Hessenberg reduction is a similarity transform matching
    /// the unblocked baseline across the crossover.
    #[test]
    fn blocked_hessenberg_matches_unblocked(n in 90usize..150, seed in 0u64..1_000_000) {
        let a = ZMat::random(n, n, seed);
        let (hb, qb) = hessenberg(&a);
        let (hu, qu) = hessenberg_unblocked(&a);
        let scale = a.norm_max().max(1.0) * n as f64;
        prop_assert!(hb.max_diff(&hu) < 1e-9 * scale, "H drift {:.2e}", hb.max_diff(&hu));
        prop_assert!(qb.max_diff(&qu) < 1e-9 * scale, "Q drift {:.2e}", qb.max_diff(&qu));
        // Similarity invariants: Q unitary, Q·H·Qᴴ = A, Hessenberg shape.
        prop_assert!(orthonormality_defect(&qb) < 1e-8 * n as f64);
        let qh = &qb * &hb;
        let mut back = ZMat::zeros(n, n);
        gemm(Complex64::ONE, &qh, Op::None, &qb, Op::Adjoint, Complex64::ZERO, &mut back);
        prop_assert!(back.max_diff(&a) < 1e-8 * scale);
        for j in 0..n {
            for i in j + 2..n {
                prop_assert!(hb[(i, j)].abs() < 1e-10 * scale);
            }
        }
    }

    /// The dense inverse round-trips: A·A⁻¹ = 1 for diagonally dominant A.
    #[test]
    fn inverse_roundtrip(n in 1usize..12, seed in 0u64..1_000_000) {
        let mut a = ZMat::random(n, n, seed);
        for i in 0..n {
            a[(i, i)] += c64(n as f64 + 2.0, 1.0);
        }
        let inv = lu_inverse(&a).unwrap();
        let id = &a * &inv;
        prop_assert!(id.max_diff(&ZMat::identity(n)) < 1e-8);
    }

    /// Eigen-pairs of random matrices satisfy A·v = λ·v.
    #[test]
    fn eigenpairs_satisfy_definition(n in 2usize..10, seed in 0u64..1_000_000) {
        let a = ZMat::random(n, n, seed);
        let dec = qtx::linalg::eig(&a).unwrap();
        for k in 0..n {
            let v: Vec<Complex64> = (0..n).map(|i| dec.vectors[(i, k)]).collect();
            let av = a.matvec(&v);
            let r: f64 = av
                .iter()
                .zip(&v)
                .map(|(x, y)| (*x - *y * dec.values[k]).norm_sqr())
                .sum::<f64>()
                .sqrt();
            prop_assert!(r < 1e-6, "residual {r} for eigenvalue {}", dec.values[k]);
        }
    }
}

mod factorization_edges {
    use super::*;
    use qtx::linalg::alloc_count;

    /// Adversarial pivot patterns on both sides of the blocking crossover:
    /// every elimination step needs an interchange (row-reversed systems)
    /// or the natural pivot starts at zero (shifted-cycle permutations).
    #[test]
    fn adversarial_pivot_patterns() {
        for n in [90usize, 130] {
            // Row-reversal: the in-place pivot search must chase the
            // bottom row at every step.
            let base = {
                let mut a = ZMat::random(n, n, 1000 + n as u64);
                for i in 0..n {
                    a[(i, i)] += c64(3.0, 0.5);
                }
                a
            };
            let mut reversed = ZMat::zeros(n, n);
            for j in 0..n {
                for i in 0..n {
                    reversed[(i, j)] = base[(n - 1 - i, j)];
                }
            }
            // Cycle: zero diagonal everywhere (a[i][i] = 0, weight on the
            // shifted band), unsolvable without pivoting.
            let mut cycle = ZMat::random(n, n, 2000 + n as u64).scaled(c64(0.01, 0.0));
            for i in 0..n {
                cycle[(i, i)] = qtx::linalg::Complex64::ZERO;
                cycle[((i + 1) % n, i)] = c64(2.0, -1.0);
            }
            for (label, a) in [("reversed", &reversed), ("cycle", &cycle)] {
                let b = ZMat::random(n, 3, 3000 + n as u64);
                let fb = lu_factor(a).unwrap_or_else(|e| panic!("{label} n={n}: {e}"));
                let fu = lu_factor_unblocked(a).unwrap();
                let diff = fb.solve(&b).max_diff(&fu.solve(&b));
                assert!(diff < 1e-6 * n as f64, "{label} n={n}: {diff:.2e}");
                // And the solution actually solves the system.
                let x = fb.solve(&b);
                let residual = (&(a * &x) - &b).norm_max();
                assert!(residual < 1e-7 * n as f64, "{label} n={n}: residual {residual:.2e}");
            }
        }
    }

    /// The PR 1 allocation-counter test, extended to the factorization
    /// stack: once the pool is warm, a factor+solve loop — working copy,
    /// factors, staging and solution all included — performs **zero**
    /// fresh `ZMat` allocations, on both sides of the crossover.
    #[test]
    fn factor_solve_loop_is_allocation_free_once_warm() {
        for n in [48usize, 160] {
            let ws = Workspace::new();
            let a = {
                let mut a = ZMat::random(n, n, 7);
                for i in 0..n {
                    a[(i, i)] += c64(4.0, 1.0);
                }
                a
            };
            let b = ZMat::random(n, n / 2, 8);
            // Warm-up pass fills the pool.
            let mut x = ws.take_scratch(n, n / 2);
            zgesv_into(&a, &b, &mut x, &ws).unwrap();
            ws.recycle(x);
            let before = alloc_count();
            for _ in 0..3 {
                let mut x = ws.take_scratch(n, n / 2);
                zgesv_into(&a, &b, &mut x, &ws).unwrap();
                ws.recycle(x);
            }
            assert_eq!(alloc_count(), before, "factor+solve loop at n={n} allocated a fresh ZMat");
        }
    }
}

mod obc_zero_alloc {
    use super::*;
    use qtx::linalg::alloc_count;
    use qtx::obc::{
        beyn_annulus_ws, feast_annulus_ws, BeynConfig, CompanionPencil, FeastConfig, LeadBlocks,
    };

    fn sample_pencil() -> CompanionPencil {
        let mut h00 = ZMat::random(4, 4, 41);
        h00.hermitianize();
        let h01 = ZMat::random(4, 4, 42).scaled(c64(0.45, 0.0));
        let lead = LeadBlocks::new(h00, h01, ZMat::identity(4), ZMat::zeros(4, 4));
        CompanionPencil::at_energy(&lead, 0.15, 0.0)
    }

    /// The ISSUE-3 tentpole property: once the pool is warm, one full OBC
    /// iteration — FEAST quadrature factorizations, subspace products,
    /// QR orthonormalization, Rayleigh–Ritz eigensolver, pivot vectors —
    /// performs zero fresh `ZMat` allocations (on this thread and, via
    /// the pool's own fresh-allocation counters, on the quadrature worker
    /// threads too), with results bit-identical to a fresh pool.
    #[test]
    fn warm_feast_iteration_is_allocation_free_and_bit_identical() {
        let pencil = sample_pencil();
        let cfg = FeastConfig { np: 8, r_outer: 3.0, ..FeastConfig::default() };
        let fresh = feast_annulus_ws(&pencil, cfg, &Workspace::new()).unwrap();
        let ws = Workspace::new();
        // Two warm-up passes let the pool reach its steady-state capacity.
        let _ = feast_annulus_ws(&pencil, cfg, &ws).unwrap();
        let _ = feast_annulus_ws(&pencil, cfg, &ws).unwrap();
        let mat_allocs = alloc_count();
        let pool_fresh = ws.fresh_allocations();
        let idx_fresh = ws.fresh_index_allocations();
        let warm = feast_annulus_ws(&pencil, cfg, &ws).unwrap();
        assert_eq!(alloc_count(), mat_allocs, "warm FEAST iteration allocated a fresh ZMat");
        assert_eq!(ws.fresh_allocations(), pool_fresh, "warm FEAST iteration grew the matrix pool");
        assert_eq!(
            ws.fresh_index_allocations(),
            idx_fresh,
            "warm FEAST iteration allocated fresh pivot vectors"
        );
        // Bit-identical to the fresh-pool run: recycled buffer history
        // must never leak into results.
        assert_eq!(fresh.0.len(), warm.0.len());
        for ((l1, u1), (l2, u2)) in fresh.0.iter().zip(&warm.0) {
            assert!(*l1 == *l2, "eigenvalue bits differ: {l1} vs {l2}");
            for (a, b) in u1.iter().zip(u2) {
                assert!(*a == *b, "eigenvector bits differ");
            }
        }
    }

    /// Same property for Beyn's single-shot method (moments, Gram-matrix
    /// rank revealer, polish solves).
    #[test]
    fn warm_beyn_iteration_is_allocation_free_and_bit_identical() {
        let pencil = sample_pencil();
        let cfg = BeynConfig { r_outer: 3.0, ..BeynConfig::default() };
        let fresh = beyn_annulus_ws(&pencil, cfg, &Workspace::new()).unwrap();
        let ws = Workspace::new();
        let _ = beyn_annulus_ws(&pencil, cfg, &ws).unwrap();
        let _ = beyn_annulus_ws(&pencil, cfg, &ws).unwrap();
        let mat_allocs = alloc_count();
        let pool_fresh = ws.fresh_allocations();
        let idx_fresh = ws.fresh_index_allocations();
        let warm = beyn_annulus_ws(&pencil, cfg, &ws).unwrap();
        assert_eq!(alloc_count(), mat_allocs, "warm Beyn iteration allocated a fresh ZMat");
        assert_eq!(ws.fresh_allocations(), pool_fresh, "warm Beyn iteration grew the pool");
        assert_eq!(
            ws.fresh_index_allocations(),
            idx_fresh,
            "warm Beyn iteration allocated fresh pivot vectors"
        );
        assert_eq!(fresh.len(), warm.len());
        for ((l1, u1), (l2, u2)) in fresh.iter().zip(&warm) {
            assert!(*l1 == *l2, "eigenvalue bits differ: {l1} vs {l2}");
            for (a, b) in u1.iter().zip(u2) {
                assert!(*a == *b, "eigenvector bits differ");
            }
        }
    }

    /// The pivot-pool ROADMAP item: a warm pivoted factor+solve loop
    /// allocates no fresh index vectors either.
    #[test]
    fn warm_factor_loop_allocates_no_index_buffers() {
        let ws = Workspace::new();
        let n = 130;
        let a = {
            let mut a = ZMat::random(n, n, 17);
            for i in 0..n {
                a[(i, i)] += c64(4.0, 1.0);
            }
            a
        };
        let b = ZMat::random(n, 8, 18);
        let mut x = ws.take_scratch(n, 8);
        zgesv_into(&a, &b, &mut x, &ws).unwrap();
        ws.recycle(x);
        let idx_fresh = ws.fresh_index_allocations();
        assert!(idx_fresh >= 2, "pivoted factorization must pool perm + ipiv");
        for _ in 0..3 {
            let mut x = ws.take_scratch(n, 8);
            zgesv_into(&a, &b, &mut x, &ws).unwrap();
            ws.recycle(x);
        }
        assert_eq!(
            ws.fresh_index_allocations(),
            idx_fresh,
            "warm factor loop allocated fresh pivot vectors"
        );
    }
}

mod transport_properties {
    use super::*;
    use qtx::core::{Device, PointPolicy, TransportEngine};
    use qtx::prelude::*;

    fn device_with_barrier(height: f64) -> Device {
        let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(BasisKind::TightBinding).build();
        let mut dev = Device::build(spec).expect("device");
        let mut v = vec![0.0; dev.n_slabs];
        v[3] = height;
        v[4] = height;
        dev.set_potential(&v);
        dev
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Transmission is bounded by the channel count and unitarity
        /// holds for arbitrary barrier heights and probe positions.
        #[test]
        fn transmission_bounds_and_unitarity(
            height in 0.0f64..0.6,
            kprobe in 0.5f64..2.5,
        ) {
            let dev = device_with_barrier(height);
            let dk = dev.at_kz(0.0);
            if let Some(e) = dk.lead_l.dispersive_energy(kprobe, 0.2, 0.3) {
                let r = TransportEngine::new(dev.clone())
                    .solve_point(e, 0.0, &PointPolicy::direct())
                    .into_result()
                    .unwrap();
                prop_assert!(r.transmission >= -1e-9);
                prop_assert!(r.transmission <= r.channels.0 as f64 + 1e-6);
                if r.channels.0 > 0 {
                    prop_assert!(
                        (r.transmission + r.reflection - r.channels.0 as f64).abs() < 1e-5
                    );
                }
                // Reciprocity at zero bias.
                prop_assert!((r.transmission - r.transmission_rl).abs() < 1e-5);
            }
        }

        /// In the tunneling regime (probe energy below every barrier top)
        /// a higher barrier never increases the transmission. Above the
        /// barrier this would be false — over-the-barrier transmission
        /// oscillates (Fabry–Pérot) — so the probe is pinned under both
        /// barrier tops.
        #[test]
        fn barrier_monotonicity_in_tunneling_regime(h1 in 0.15f64..0.35) {
            let h2 = h1 + 0.25;
            let d1 = device_with_barrier(h1);
            let d2 = device_with_barrier(h2);
            let dk1 = d1.at_kz(0.0);
            if let Some(edge) = dk1.lead_l.dispersive_band_min(0.1, 0.3) {
                // E − h1 < edge ⇒ evanescent inside the lower barrier too.
                let e = edge + 0.4 * h1;
                let solve = |d: &Device| {
                    TransportEngine::new(d.clone())
                        .solve_point(e, 0.0, &PointPolicy::direct())
                        .into_result()
                        .unwrap()
                        .transmission
                };
                let (t1, t2) = (solve(&d1), solve(&d2));
                prop_assert!(t2 <= t1 + 1e-6, "T({h2}) = {t2} > T({h1}) = {t1}");
            }
        }
    }
}
