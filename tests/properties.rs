//! Property-based tests (proptest) on the core numerical invariants.

use proptest::prelude::*;
use qtx::linalg::{c64, gemm, lu_inverse, zgesv, Complex64, Op, Workspace, ZMat};
use qtx::solver::{bcr::bcr_solve_raw, rgf_diagonal_and_corner_ws, ObcSystem, SplitSolve};
use qtx::sparse::Btd;

/// Reference triple loop the tiled kernel is checked against.
fn naive_matmul(a: &ZMat, b: &ZMat) -> ZMat {
    let mut c = ZMat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = Complex64::ZERO;
            for l in 0..a.cols() {
                s += a[(i, l)] * b[(l, j)];
            }
            c[(i, j)] = s;
        }
    }
    c
}

fn apply_op(op: Op, m: &ZMat) -> ZMat {
    match op {
        Op::None => m.clone(),
        Op::Transpose => m.transpose(),
        Op::Adjoint => m.adjoint(),
    }
}

fn random_btd(nb: usize, s: usize, seed: u64, dominance: f64) -> Btd {
    let mut a = Btd::zeros(nb, s);
    for i in 0..nb {
        a.diag[i] = ZMat::random(s, s, seed.wrapping_add(i as u64));
        for d in 0..s {
            a.diag[i][(d, d)] += c64(dominance, 1.0);
        }
    }
    for i in 0..nb - 1 {
        a.upper[i] = ZMat::random(s, s, seed.wrapping_add(1000 + i as u64)).scaled(c64(0.35, 0.0));
        a.lower[i] = ZMat::random(s, s, seed.wrapping_add(2000 + i as u64)).scaled(c64(0.35, 0.0));
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SplitSolve solves random well-conditioned BTD systems for every
    /// partition count, matching the dense reference.
    #[test]
    fn splitsolve_matches_dense(
        nb in 2usize..10,
        s in 1usize..5,
        m in 1usize..4,
        seed in 0u64..1_000_000,
        partitions_pow in 0u32..3,
    ) {
        let partitions = (1usize << partitions_pow).min(nb);
        let partitions = if partitions.is_power_of_two() { partitions } else { 1 };
        let sys = ObcSystem {
            a: random_btd(nb, s, seed, 4.0 + s as f64),
            sigma_l: ZMat::random(s, s, seed + 31).scaled(c64(0.25, 0.1)),
            sigma_r: ZMat::random(s, s, seed + 32).scaled(c64(0.25, -0.1)),
            rhs_top: ZMat::random(s, m, seed + 33),
            rhs_bottom: ZMat::random(s, m, seed + 34),
        };
        let x_ref = zgesv(&sys.t_dense(), &sys.b_dense()).unwrap();
        let (x, _) = SplitSolve::new(partitions).solve(&sys, None).unwrap();
        prop_assert!(x.max_diff(&x_ref) < 1e-7, "diff {:.2e}", x.max_diff(&x_ref));
    }

    /// BCR agrees with dense solves on arbitrary block counts (including
    /// non-powers of two).
    #[test]
    fn bcr_matches_dense(
        nb in 1usize..12,
        s in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let a = random_btd(nb.max(1), s, seed, 5.0);
        let b = ZMat::random(a.dim(), 2, seed + 77);
        let x = bcr_solve_raw(&a, &b).unwrap();
        let x_ref = zgesv(&a.to_dense(), &b).unwrap();
        prop_assert!(x.max_diff(&x_ref) < 1e-7);
    }

    /// The tiled/packed gemm agrees with the naive triple loop for every
    /// `Op` pairing on arbitrary (non-tile-multiple) shapes, including
    /// the α/β accumulation form.
    #[test]
    fn tiled_gemm_matches_naive(
        m in 1usize..90,
        n in 1usize..90,
        k in 1usize..70,
        opsel in 0u32..9,
        seed in 0u64..1_000_000,
    ) {
        let ops = [Op::None, Op::Transpose, Op::Adjoint];
        let op_a = ops[(opsel / 3) as usize];
        let op_b = ops[(opsel % 3) as usize];
        let a = match op_a { Op::None => ZMat::random(m, k, seed), _ => ZMat::random(k, m, seed) };
        let b = match op_b { Op::None => ZMat::random(k, n, seed + 1), _ => ZMat::random(n, k, seed + 1) };
        let c0 = ZMat::random(m, n, seed + 2);
        let alpha = c64(0.7, -0.4);
        let beta = c64(-0.2, 0.9);
        let mut c = c0.clone();
        gemm(alpha, &a, op_a, &b, op_b, beta, &mut c);
        let mut expected = naive_matmul(&apply_op(op_a, &a), &apply_op(op_b, &b)).scaled(alpha);
        expected.axpy(beta, &c0);
        prop_assert!(
            c.max_diff(&expected) < 1e-9,
            "m={m} n={n} k={k} ops={op_a:?}/{op_b:?}: {:.2e}",
            c.max_diff(&expected)
        );
    }

    /// Solver results are bit-for-bit independent of workspace history: a
    /// freshly created pool and a pool recycled through a previous solve
    /// of a *different* system produce identical outputs.
    #[test]
    fn workspace_reuse_is_transparent(
        nb in 2usize..8,
        s in 1usize..5,
        m in 1usize..3,
        seed in 0u64..1_000_000,
    ) {
        let sys = ObcSystem {
            a: random_btd(nb, s, seed, 4.0 + s as f64),
            sigma_l: ZMat::random(s, s, seed + 41).scaled(c64(0.25, 0.1)),
            sigma_r: ZMat::random(s, s, seed + 42).scaled(c64(0.25, -0.1)),
            rhs_top: ZMat::random(s, m, seed + 43),
            rhs_bottom: ZMat::random(s, m, seed + 44),
        };
        let decoy = ObcSystem {
            a: random_btd(nb + 1, s, seed + 99, 5.0 + s as f64),
            sigma_l: ZMat::random(s, s, seed + 51).scaled(c64(0.2, 0.1)),
            sigma_r: ZMat::random(s, s, seed + 52).scaled(c64(0.2, -0.1)),
            rhs_top: ZMat::random(s, m, seed + 53),
            rhs_bottom: ZMat::random(s, m, seed + 54),
        };
        let solver = SplitSolve::new(2.min(nb));
        // Fresh pool.
        let fresh_ws = Workspace::new();
        let (x_fresh, _) = solver.solve_ws(&sys, None, &fresh_ws).unwrap();
        let g_fresh = rgf_diagonal_and_corner_ws(&sys, &Workspace::new()).unwrap();
        // Dirty pool: recycled through a different system first.
        let dirty_ws = Workspace::new();
        let _ = solver.solve_ws(&decoy, None, &dirty_ws).unwrap();
        let _ = rgf_diagonal_and_corner_ws(&decoy, &dirty_ws).unwrap();
        let (x_dirty, _) = solver.solve_ws(&sys, None, &dirty_ws).unwrap();
        let g_dirty = rgf_diagonal_and_corner_ws(&sys, &dirty_ws).unwrap();
        prop_assert!(x_fresh.max_diff(&x_dirty) == 0.0, "SplitSolve differs after recycle");
        prop_assert!(g_fresh.corner.max_diff(&g_dirty.corner) == 0.0, "RGF corner differs");
        for (df, dd) in g_fresh.diag.iter().zip(&g_dirty.diag) {
            prop_assert!(df.max_diff(dd) == 0.0, "RGF diagonal differs");
        }
        // And the pool really was exercised: fresh allocations happened on
        // the decoy, reuse on the second pass kept the count flat.
        prop_assert!(dirty_ws.fresh_allocations() > 0);
    }

    /// The dense inverse round-trips: A·A⁻¹ = 1 for diagonally dominant A.
    #[test]
    fn inverse_roundtrip(n in 1usize..12, seed in 0u64..1_000_000) {
        let mut a = ZMat::random(n, n, seed);
        for i in 0..n {
            a[(i, i)] += c64(n as f64 + 2.0, 1.0);
        }
        let inv = lu_inverse(&a).unwrap();
        let id = &a * &inv;
        prop_assert!(id.max_diff(&ZMat::identity(n)) < 1e-8);
    }

    /// Eigen-pairs of random matrices satisfy A·v = λ·v.
    #[test]
    fn eigenpairs_satisfy_definition(n in 2usize..10, seed in 0u64..1_000_000) {
        let a = ZMat::random(n, n, seed);
        let dec = qtx::linalg::eig(&a).unwrap();
        for k in 0..n {
            let v: Vec<Complex64> = (0..n).map(|i| dec.vectors[(i, k)]).collect();
            let av = a.matvec(&v);
            let r: f64 = av
                .iter()
                .zip(&v)
                .map(|(x, y)| (*x - *y * dec.values[k]).norm_sqr())
                .sum::<f64>()
                .sqrt();
            prop_assert!(r < 1e-6, "residual {r} for eigenvalue {}", dec.values[k]);
        }
    }
}

mod transport_properties {
    use super::*;
    use qtx::core::transport::solve_energy_point;
    use qtx::core::Device;
    use qtx::prelude::*;

    fn device_with_barrier(height: f64) -> Device {
        let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(BasisKind::TightBinding).build();
        let mut dev = Device::build(spec).expect("device");
        let mut v = vec![0.0; dev.n_slabs];
        v[3] = height;
        v[4] = height;
        dev.set_potential(&v);
        dev
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Transmission is bounded by the channel count and unitarity
        /// holds for arbitrary barrier heights and probe positions.
        #[test]
        fn transmission_bounds_and_unitarity(
            height in 0.0f64..0.6,
            kprobe in 0.5f64..2.5,
        ) {
            let dev = device_with_barrier(height);
            let dk = dev.at_kz(0.0);
            if let Some(e) = dk.lead_l.dispersive_energy(kprobe, 0.2, 0.3) {
                let r = solve_energy_point(&dk, e, &dev.config).unwrap();
                prop_assert!(r.transmission >= -1e-9);
                prop_assert!(r.transmission <= r.channels.0 as f64 + 1e-6);
                if r.channels.0 > 0 {
                    prop_assert!(
                        (r.transmission + r.reflection - r.channels.0 as f64).abs() < 1e-5
                    );
                }
                // Reciprocity at zero bias.
                prop_assert!((r.transmission - r.transmission_rl).abs() < 1e-5);
            }
        }

        /// In the tunneling regime (probe energy below every barrier top)
        /// a higher barrier never increases the transmission. Above the
        /// barrier this would be false — over-the-barrier transmission
        /// oscillates (Fabry–Pérot) — so the probe is pinned under both
        /// barrier tops.
        #[test]
        fn barrier_monotonicity_in_tunneling_regime(h1 in 0.15f64..0.35) {
            let h2 = h1 + 0.25;
            let d1 = device_with_barrier(h1);
            let d2 = device_with_barrier(h2);
            let dk1 = d1.at_kz(0.0);
            let dk2 = d2.at_kz(0.0);
            if let Some(edge) = dk1.lead_l.dispersive_band_min(0.1, 0.3) {
                // E − h1 < edge ⇒ evanescent inside the lower barrier too.
                let e = edge + 0.4 * h1;
                let t1 = solve_energy_point(&dk1, e, &d1.config).unwrap().transmission;
                let t2 = solve_energy_point(&dk2, e, &d2.config).unwrap().transmission;
                prop_assert!(t2 <= t1 + 1e-6, "T({h2}) = {t2} > T({h1}) = {t1}");
            }
        }
    }
}
