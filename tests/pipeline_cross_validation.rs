//! Integration: all algorithm combinations must agree on the physics.
//!
//! This is the repository's strongest correctness statement: the FEAST
//! and shift-and-invert OBCs, combined with SplitSolve (1, 2, 4
//! partitions), the MUMPS-like BTD-LU and BCR, all produce the same
//! transmission, which itself matches the independent NEGF/Caroli (RGF)
//! route — in the DFT-like basis with NBW = 2, the regime the paper
//! targets.

use qtx::core::transport::caroli_transmission;
use qtx::core::{Device, PointPolicy, TransportEngine};
use qtx::obc::{FeastConfig, ObcMethod};
use qtx::prelude::*;
use qtx::solver::SolverKind;

fn dft_device() -> Device {
    let spec = DeviceBuilder::nanowire(1.0).cells(12).basis(BasisKind::Dft3sp).build();
    let mut dev = Device::build(spec).expect("device");
    // A gentle barrier makes the comparison non-trivial.
    let mut v = vec![0.0; dev.n_slabs];
    let mid = dev.n_slabs / 2;
    v[mid - 1] = 0.15;
    v[mid] = 0.15;
    dev.set_potential(&v);
    dev
}

#[test]
fn every_pipeline_agrees_in_the_dft_basis() {
    let dev = dft_device();
    let dk = dev.at_kz(0.0);
    assert!(dk.h.block_size() >= 2 * 6, "NBW=2 folded blocks");
    let e = dk.lead_l.dispersive_energy(1.1, 0.3, 0.3).expect("band");

    let mut results: Vec<(String, f64)> = Vec::new();
    for (obc_name, obc) in [
        ("feast", ObcMethod::Feast(FeastConfig::default())),
        ("shift-invert", ObcMethod::ShiftInvert),
    ] {
        for (solver_name, solver) in [
            ("splitsolve-1", SolverKind::SplitSolve { partitions: 1 }),
            ("splitsolve-2", SolverKind::SplitSolve { partitions: 2 }),
            ("btd-lu", SolverKind::BtdLu),
            ("bcr", SolverKind::Bcr),
        ] {
            let mut d = dev.clone();
            d.config.obc = obc;
            d.config.solver = solver;
            let r = TransportEngine::new(d)
                .solve_point(e, 0.0, &PointPolicy::direct())
                .into_result()
                .expect("solve");
            results.push((format!("{obc_name}+{solver_name}"), r.transmission));
        }
    }
    let reference = results[0].1;
    assert!(reference > 1e-3, "probe energy must conduct, T = {reference}");
    // FEAST carries the annulus-truncation approximation (~1e-4 on T, the
    // paper's "fast decaying modes are negligible"); exact methods agree
    // to solver precision among themselves.
    for (name, t) in &results {
        assert!((t - reference).abs() < 5e-3, "{name}: T = {t} deviates from {reference}");
    }
    let exact: Vec<&(String, f64)> =
        results.iter().filter(|(n, _)| n.starts_with("shift-invert")).collect();
    for (name, t) in &exact {
        assert!(
            (t - exact[0].1).abs() < 1e-8,
            "{name}: exact pipelines must agree to 1e-8, {t} vs {}",
            exact[0].1
        );
    }
    // Independent NEGF route.
    let caroli = caroli_transmission(&dk, e, ObcMethod::ShiftInvert).expect("caroli");
    assert!((caroli - exact[0].1).abs() < 1e-6, "Caroli {caroli} vs wave-function {}", exact[0].1);
}

#[test]
fn unitarity_in_the_dft_basis() {
    let mut dev = dft_device();
    // Exact OBCs: unitarity to solver precision even in the DFT basis.
    dev.config.obc = ObcMethod::ShiftInvert;
    let dk = dev.at_kz(0.0);
    let engine = TransportEngine::new(dev.clone());
    for k in [0.7f64, 1.3, 2.2] {
        if let Some(e) = dk.lead_l.dispersive_energy(k, 0.3, 0.3) {
            let r =
                engine.solve_point(e, 0.0, &PointPolicy::direct()).into_result().expect("solve");
            if r.channels.0 > 0 {
                assert!(
                    (r.transmission + r.reflection - r.channels.0 as f64).abs() < 1e-6,
                    "T + R = {} vs {} channels at E = {e}",
                    r.transmission + r.reflection,
                    r.channels.0
                );
            }
        }
    }
}
