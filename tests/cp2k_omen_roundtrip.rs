//! Integration: the Fig. 2 workflow — CP2K-lite generates and exports
//! H/S, OMEN (qtx-core) imports them and runs transport.

use qtx::prelude::*;

#[test]
fn transfer_file_roundtrip_preserves_transport() {
    let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(BasisKind::TightBinding).build();
    let hs = Cp2kRun::new(spec.clone()).generate().expect("cp2k");
    assert!(hs.scf.converged);

    // Round trip through the binary transfer format.
    let bytes = hs.to_bytes();
    let imported = HsFile::from_bytes(&bytes).expect("import");
    let dev_direct = Device::from_hsfile(spec.clone(), hs);
    let dev_imported = Device::from_hsfile(spec, imported);

    let dk = dev_direct.at_kz(0.0);
    let e = dk.lead_l.dispersive_energy(1.0, 0.2, 0.3).expect("band");
    let t_direct = transmission(&dev_direct, e).expect("direct").transmission;
    let t_imported = transmission(&dev_imported, e).expect("imported").transmission;
    assert!((t_direct - t_imported).abs() < 1e-12, "{t_direct} vs {t_imported}");
    assert!(t_direct > 0.5, "conduction band must transmit");
}

#[test]
fn functional_changes_transport_gap() {
    let build = |f: Functional| {
        let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(BasisKind::TightBinding).build();
        Device::build_with_functional(spec, f).expect("device")
    };
    let lda = build(Functional::Lda);
    let hse = build(Functional::Hse06);
    // Probe just above the LDA conduction edge: LDA conducts, HSE06 does
    // not (its edge moved up by the gap correction).
    let dk = lda.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("edge");
    let e = edge + 0.1;
    let t_lda = transmission(&lda, e).expect("lda").transmission;
    let t_hse = transmission(&hse, e).expect("hse").transmission;
    assert!(t_lda > 0.5, "LDA conducts at {e}: {t_lda}");
    assert!(t_hse < 1e-6, "HSE06 gap widened: {t_hse}");
}
