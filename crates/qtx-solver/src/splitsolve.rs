//! SplitSolve (§3.B, Fig. 6, Algorithm 1).
//!
//! The goals, quoting the paper: "(i) efficiently computing only the
//! required parts of T⁻¹ and (ii) decoupling the calculation of the open
//! boundary conditions Σ^RB from the solution of T⁻¹". With
//! `T = A − B·C`, the Sherman–Morrison–Woodbury identity gives the
//! four-step scheme:
//!
//! 1. **Step 1** (preprocessing, accelerators): `Q = A⁻¹·B` — the first
//!    and last `s` columns of `A⁻¹`, via the modified RGF sweeps of
//!    Algorithm 1, two independent sweeps per partition ("naturally scale
//!    to two accelerators"), partitions merged recursively SPIKE-style.
//!    This runs *before* `Σ^RB` and `Inj` exist — the decoupling that lets
//!    FEAST (CPU) hide behind SplitSolve (GPU).
//! 2. **Step 2**: `y = A⁻¹·b = Q·b′` (the RHS lives in the corner rows).
//! 3. **Step 3**: `R·z = (1 − C·Q)·z = C·y` — one small `2s × 2s` solve.
//! 4. **Step 4**: `x = y + Q·z = Q·(b′ + z)` — one GEMM per block row.

use crate::error::{SolveError, SolveOutcome};
use crate::system::ObcSystem;
use qtx_accel::{AccelRuntime, KernelClass};
use qtx_linalg::flops::counts;
use qtx_linalg::{
    fault, gemm_view, lu_factor_nopiv_ws, lu_factor_ws, zgesv_into, Complex64, FlopScope, Op,
    Result, Workspace, ZMat,
};
use qtx_sparse::Btd;
use rayon::prelude::*;
use std::ops::Range;

/// First and last block columns of a (sub-)matrix inverse.
#[derive(Debug, Clone)]
pub struct BlockColumns {
    /// `first[i] = (A⁻¹)_{i, 0..s}` for each local block row `i`.
    pub first: Vec<ZMat>,
    /// `last[i] = (A⁻¹)_{i, end−s..end}`.
    pub last: Vec<ZMat>,
}

/// SplitSolve driver.
#[derive(Debug, Clone)]
pub struct SplitSolve {
    /// Number of horizontal partitions (power of two, ≥ 1).
    pub partitions: usize,
}

/// Cost/shape report of one SplitSolve run.
#[derive(Debug, Clone, Default)]
pub struct SplitSolveReport {
    /// Virtual accelerator makespan (seconds) when a runtime was attached.
    pub virtual_seconds: f64,
    /// Real double-precision operations executed.
    pub flops: u64,
    /// Number of SPIKE merge levels (log₂ partitions).
    pub spike_levels: usize,
}

impl SplitSolve {
    /// Creates a solver over `partitions` partitions (power of two).
    pub fn new(partitions: usize) -> Self {
        assert!(partitions >= 1 && partitions.is_power_of_two(), "partitions must be 2^k");
        SplitSolve { partitions }
    }

    /// Solves Eq. 5 and returns the dense solution (`N_SS × m`) plus the
    /// cost report. `rt` attaches the virtual accelerators (2 devices per
    /// partition, Fig. 6).
    pub fn solve(
        &self,
        sys: &ObcSystem,
        rt: Option<&AccelRuntime>,
    ) -> SolveOutcome<(ZMat, SplitSolveReport)> {
        self.solve_ws(sys, rt, &Workspace::new())
    }

    /// [`SplitSolve::solve`] borrowing all block temporaries from `ws`:
    /// callers looping over energy points hand in one workspace and the
    /// per-point `ZMat` churn (≈ 6 temporaries per block row) collapses
    /// into pool reuse.
    pub fn solve_ws(
        &self,
        sys: &ObcSystem,
        rt: Option<&AccelRuntime>,
        ws: &Workspace,
    ) -> SolveOutcome<(ZMat, SplitSolveReport)> {
        // Fault-injection chokepoint: keyed on the system content (the
        // diagonal carries E·S − H, the corners carry Σ(E + iη)), so a
        // bit-identical retry fails identically while any escalation —
        // η bump, different OBC method — draws fresh.
        let key = fault::key_of(&[
            sys.a.diag[0][(0, 0)].re,
            sys.a.diag[0][(0, 0)].im,
            sys.sigma_l.probe().re,
            sys.sigma_l.probe().im,
            sys.dim() as f64,
        ]);
        if fault::should_fail("splitsolve", key) {
            return Err(SolveError::Injected { site: "splitsolve" });
        }
        // The partition sweeps fan out over rayon workers, so the report
        // aggregates the process-wide counter (explicit opt-in; a plain
        // thread-scoped bracket would miss the workers' operations).
        let scope = FlopScope::start_process();
        let mut report = SplitSolveReport {
            spike_levels: self.partitions.trailing_zeros() as usize,
            ..Default::default()
        };
        // Step 1 — preprocessing: Q = A⁻¹B (independent of Σ and Inj).
        let q = self.inverse_block_columns_ws(&sys.a, rt, ws)?;
        // Post-processing (Steps 2–4) starts once Σ/Inj are available.
        let x = self.postprocess_ws(sys, &q, rt, ws)?;
        for m in q.first.into_iter().chain(q.last) {
            ws.recycle(m);
        }
        if let Some(rt) = rt {
            report.virtual_seconds = rt.sync();
        }
        report.flops = scope.elapsed();
        // A singular-looking A can survive both LU routes (nopiv + pivoted
        // fallback) and still emit garbage; catch it before it reaches the
        // transmission assembly.
        let bad = x.non_finite_count();
        if bad > 0 {
            return Err(SolveError::NonFinite { solver: "splitsolve", count: bad });
        }
        Ok((x, report))
    }

    /// Step 1 with a private scratch pool.
    pub fn inverse_block_columns(
        &self,
        a: &Btd,
        rt: Option<&AccelRuntime>,
    ) -> Result<BlockColumns> {
        self.inverse_block_columns_ws(a, rt, &Workspace::new())
    }

    /// Step 1: first/last block columns of `A⁻¹` over all partitions with
    /// recursive SPIKE merging. Exposed so callers can overlap the OBC
    /// computation with this phase (the paper's interleaving).
    pub fn inverse_block_columns_ws(
        &self,
        a: &Btd,
        rt: Option<&AccelRuntime>,
        ws: &Workspace,
    ) -> Result<BlockColumns> {
        let nb = a.num_blocks();
        let p = self.partitions.min(nb.max(1));
        assert!(p <= nb, "more partitions than block rows");
        // Partition the block rows as evenly as possible.
        let ranges: Vec<Range<usize>> = (0..p)
            .map(|k| {
                let lo = k * nb / p;
                let hi = (k + 1) * nb / p;
                lo..hi
            })
            .collect();
        // Memory model: each partition's share of A plus its Q columns
        // live on its pair of devices ("A is distributed over all the
        // available GPUs and stored in their memory"; half of Q is kept on
        // the CPUs, hence the 0.5 factor on Q).
        if let Some(rt) = rt {
            let s = a.block_size() as u64;
            for (k, r) in ranges.iter().enumerate() {
                let blocks = r.len() as u64;
                let a_bytes = 3 * blocks * s * s * 16;
                let q_bytes = blocks * s * s * 16; // half of 2·(first+last)
                rt.alloc((2 * k) % rt.len(), a_bytes / 2 + q_bytes / 2);
                rt.alloc((2 * k + 1) % rt.len(), a_bytes / 2 + q_bytes / 2);
                rt.account_overlapped((2 * k) % rt.len(), KernelClass::H2D, a_bytes / 2);
                rt.account_overlapped((2 * k + 1) % rt.len(), KernelClass::H2D, a_bytes / 2);
            }
        }
        // Phases P1/P2 + P3/P4 of Fig. 6: per-partition local sweeps, the
        // first-column sweep on device 2k and the last-column on 2k+1.
        let locals: Vec<BlockColumns> = ranges
            .par_iter()
            .enumerate()
            .map(|(k, r)| {
                let (first, last) = rayon::join(
                    || {
                        local_first_column(
                            a,
                            r.clone(),
                            rt,
                            (2 * k) % rt.map_or(1, |r| r.len()),
                            ws,
                        )
                    },
                    || {
                        local_last_column(
                            a,
                            r.clone(),
                            rt,
                            (2 * k + 1) % rt.map_or(1, |r| r.len()),
                            ws,
                        )
                    },
                );
                Ok(BlockColumns { first: first?, last: last? })
            })
            .collect::<Result<Vec<_>>>()?;
        if let Some(rt) = rt {
            rt.sync();
        }
        // Recursive SPIKE merge: log₂ p levels, each of constant wall time
        // (work is proportional to the local block count, spread evenly).
        let mut layer: Vec<(Range<usize>, BlockColumns)> = ranges.into_iter().zip(locals).collect();
        while layer.len() > 1 {
            let mut pairs: Vec<Vec<(Range<usize>, BlockColumns)>> = Vec::new();
            let mut it = layer.into_iter();
            while let Some(first) = it.next() {
                match it.next() {
                    Some(second) => pairs.push(vec![first, second]),
                    None => pairs.push(vec![first]),
                }
            }
            layer = pairs
                .into_par_iter()
                .map(|mut pair| -> Result<(Range<usize>, BlockColumns)> {
                    if pair.len() == 1 {
                        return Ok(pair.pop().expect("odd partition"));
                    }
                    let (rr, right) = pair.pop().expect("pair right");
                    let (rl, left) = pair.pop().expect("pair left");
                    let dev = (2 * rl.start) % rt.map_or(1, |r| r.len());
                    let merged = merge_partitions(a, left, right, rl.end - 1, rt, dev, ws)?;
                    Ok((rl.start..rr.end, merged))
                })
                .collect::<Result<Vec<_>>>()?;
            if let Some(rt) = rt {
                rt.sync();
            }
        }
        Ok(layer.pop().expect("at least one partition").1)
    }

    /// Steps 2–4 with a private scratch pool.
    pub fn postprocess(
        &self,
        sys: &ObcSystem,
        q: &BlockColumns,
        rt: Option<&AccelRuntime>,
    ) -> Result<ZMat> {
        self.postprocess_ws(sys, q, rt, &Workspace::new())
    }

    /// Steps 2–4: assemble `R`, solve for `z`, expand `x = Q·(b′ + z)`.
    pub fn postprocess_ws(
        &self,
        sys: &ObcSystem,
        q: &BlockColumns,
        rt: Option<&AccelRuntime>,
        ws: &Workspace,
    ) -> Result<ZMat> {
        let s = sys.block_size();
        let nb = sys.num_blocks();
        let m = sys.num_rhs();
        // b′ = [b_top; b_bottom] (2s × m), assembled in pooled scratch.
        let mut bp = ws.take(2 * s, m);
        sys.b_prime_into(&mut bp);
        // C·Q (2s × 2s): corners of Q hit by the self-energies. The
        // wave-function path applies Σ against dense s × m blocks, so a
        // factored Σ is expanded once per solve here (the boundary-only
        // NEGF path is the one that keeps the factors).
        let sl = sys.sigma_l.dense();
        let sr = sys.sigma_r.dense();
        let mut cq = ws.take(2 * s, 2 * s);
        for (r0, c0, sigma, qcorner) in [
            (0, 0, &*sl, &q.first[0]),
            (0, s, &*sl, &q.last[0]),
            (s, 0, &*sr, &q.first[nb - 1]),
            (s, s, &*sr, &q.last[nb - 1]),
        ] {
            let prod = ws.matmul(sigma, qcorner);
            cq.set_block(r0, c0, &prod);
            ws.recycle(prod);
        }
        // C·y with y = Q·b′ evaluated only at the boundary blocks.
        let y0 = block_row_times(&q.first[0], &q.last[0], &bp, s, ws);
        let yn = block_row_times(&q.first[nb - 1], &q.last[nb - 1], &bp, s, ws);
        let mut cy = ws.take(2 * s, m);
        for (r0, sigma, y) in [(0, &*sl, &y0), (s, &*sr, &yn)] {
            let prod = ws.matmul(sigma, y);
            cy.set_block(r0, 0, &prod);
            ws.recycle(prod);
        }
        ws.recycle(y0);
        ws.recycle(yn);
        // R·z = C·y with R = 1 − C·Q (2s × 2s — "a system of comparably
        // small size").
        let mut r_mat = ws.take(2 * s, 2 * s);
        for i in 0..2 * s {
            r_mat[(i, i)] = Complex64::ONE;
        }
        r_mat.axpy(-Complex64::ONE, &cq);
        ws.recycle(cq);
        let mut z = ws.take_scratch(2 * s, m);
        zgesv_into(&r_mat, &cy, &mut z, ws)?;
        ws.recycle(r_mat);
        ws.recycle(cy);
        if let Some(rt) = rt {
            // The R solve happens on the two boundary devices.
            rt.account(0, KernelClass::Solve, counts::zgetrf(2 * s) + counts::zgetrs(2 * s, m), 0);
            rt.account_overlapped(0, KernelClass::D2D, (2 * s * m * 16) as u64);
        }
        // x = Q·(b′ + z): one GEMM pair per block row, embarrassingly
        // parallel over the devices that own each block.
        bp.axpy(Complex64::ONE, &z);
        ws.recycle(z);
        let bpz = bp;
        let mut x = ZMat::zeros(sys.dim(), m);
        let rows: Vec<ZMat> = (0..nb)
            .into_par_iter()
            .map(|i| block_row_times(&q.first[i], &q.last[i], &bpz, s, ws))
            .collect();
        for (i, row) in rows.into_iter().enumerate() {
            x.set_block(i * s, 0, &row);
            ws.recycle(row);
        }
        ws.recycle(bpz);
        if let Some(rt) = rt {
            let per_dev_blocks = nb.div_ceil(rt.len());
            let fl = counts::zgemm(s, m, 2 * s) * per_dev_blocks as u64;
            for d in 0..rt.len() {
                rt.account(d, KernelClass::Gemm, fl, 0);
                rt.account_overlapped(d, KernelClass::D2H, (per_dev_blocks * s * m * 16) as u64);
            }
            rt.sync();
        }
        Ok(x)
    }
}

/// `[first | last] · bp` for one block row: `first·bp_top + last·bp_bot`.
///
/// Both halves of `bp` are read through zero-copy block views and the
/// second product accumulates straight into the output (`β = 1`), so one
/// pooled matrix is the only storage touched.
fn block_row_times(first: &ZMat, last: &ZMat, bp: &ZMat, s: usize, ws: &Workspace) -> ZMat {
    let m = bp.cols();
    let mut out = ws.take(s, m);
    let top = bp.block_view(0, 0, s, m);
    let bot = bp.block_view(s, 0, s, m);
    gemm_view(Complex64::ONE, first.view(), Op::None, top, Op::None, Complex64::ZERO, &mut out);
    gemm_view(Complex64::ONE, last.view(), Op::None, bot, Op::None, Complex64::ONE, &mut out);
    out
}

/// Solves `M·X = rhs` preferring the pivot-free GPU kernel and falling
/// back to pivoted LU when the block is not diagonally dominant enough.
/// Factorization working copy, factors and solution all borrow from `ws`.
fn gpu_solve_ws(m: &ZMat, rhs: &ZMat, ws: &Workspace) -> Result<ZMat> {
    let f = match lu_factor_nopiv_ws(m, ws) {
        Ok(f) => f,
        Err(_) => lu_factor_ws(m, ws)?,
    };
    let mut x = ws.take_scratch(m.rows(), rhs.cols());
    f.solve_into(rhs.view(), &mut x);
    f.recycle_into(ws);
    Ok(x)
}

/// Accounts one Algorithm-1 step on a device: "two matrix-matrix
/// multiplications, one LU factorization, and one backward substitution".
fn account_alg1_step(rt: Option<&AccelRuntime>, dev: usize, s: usize) {
    if let Some(rt) = rt {
        rt.account(dev, KernelClass::Gemm, counts::zgemm(s, s, s), 0);
        rt.account(dev, KernelClass::Solve, counts::zgetrf(s) + counts::zgetrs(s, s), 0);
        rt.account(dev, KernelClass::Gemm, counts::zgemm(s, s, s), 0);
    }
}

/// Algorithm 1, first block column of the local inverse (phases P1+P3).
fn local_first_column(
    a: &Btd,
    r: Range<usize>,
    rt: Option<&AccelRuntime>,
    dev: usize,
    ws: &Workspace,
) -> Result<Vec<ZMat>> {
    let s = a.block_size();
    let nbl = r.len();
    let id = ZMat::identity(s);
    let mut xs: Vec<ZMat> = Vec::new();
    xs.resize(nbl, ZMat::zeros(0, 0));
    // Backward sweep: X_i = (A_ii − A_{i,i+1}·X_{i+1})⁻¹ · A_{i,i−1}
    // (identity RHS at the partition head).
    for li in (0..nbl).rev() {
        let gi = r.start + li;
        let mut m = ws.copy_of(&a.diag[gi]);
        if li + 1 < nbl {
            // m −= A_{i,i+1}·X_{i+1}; the coupling is internal to the
            // partition by construction of the sweep.
            let prod = ws.matmul(&a.upper[gi], &xs[li + 1]);
            m.axpy(-Complex64::ONE, &prod);
            ws.recycle(prod);
        }
        let rhs = if li > 0 { &a.lower[gi - 1] } else { &id };
        xs[li] = gpu_solve_ws(&m, rhs, ws)?;
        ws.recycle(m);
        account_alg1_step(rt, dev, s);
    }
    // Forward accumulation: Q_0 = X_0 (identity RHS), Q_i = −X_i·Q_{i−1}.
    let mut out: Vec<ZMat> = Vec::with_capacity(nbl);
    for (li, xi) in xs.into_iter().enumerate() {
        if li == 0 {
            out.push(xi);
            continue;
        }
        let mut qi = ws.matmul(&xi, &out[li - 1]);
        qi.scale_assign(-Complex64::ONE);
        ws.recycle(xi);
        if let Some(rt) = rt {
            rt.account(dev, KernelClass::Gemm, counts::zgemm(s, s, s), 0);
        }
        out.push(qi);
    }
    Ok(out)
}

/// Algorithm 1 mirrored: last block column of the local inverse (P2+P4).
fn local_last_column(
    a: &Btd,
    r: Range<usize>,
    rt: Option<&AccelRuntime>,
    dev: usize,
    ws: &Workspace,
) -> Result<Vec<ZMat>> {
    let s = a.block_size();
    let nbl = r.len();
    let id = ZMat::identity(s);
    let mut ys: Vec<ZMat> = Vec::new();
    ys.resize(nbl, ZMat::zeros(0, 0));
    // Forward sweep: Y_i = (A_ii − A_{i,i−1}·Y_{i−1})⁻¹ · A_{i,i+1}
    // (identity RHS at the partition tail).
    for li in 0..nbl {
        let gi = r.start + li;
        let mut m = ws.copy_of(&a.diag[gi]);
        if li > 0 {
            let prod = ws.matmul(&a.lower[gi - 1], &ys[li - 1]);
            m.axpy(-Complex64::ONE, &prod);
            ws.recycle(prod);
        }
        let rhs = if li + 1 < nbl { &a.upper[gi] } else { &id };
        ys[li] = gpu_solve_ws(&m, rhs, ws)?;
        ws.recycle(m);
        account_alg1_step(rt, dev, s);
    }
    // Backward accumulation: Q_{n−1} = Y_{n−1}, Q_i = −Y_i·Q_{i+1}.
    let mut out = vec![ZMat::zeros(0, 0); nbl];
    for (li, yi) in ys.into_iter().enumerate().rev() {
        if li == nbl - 1 {
            out[li] = yi;
            continue;
        }
        let mut qi = ws.matmul(&yi, &out[li + 1]);
        qi.scale_assign(-Complex64::ONE);
        ws.recycle(yi);
        if let Some(rt) = rt {
            rt.account(dev, KernelClass::Gemm, counts::zgemm(s, s, s), 0);
        }
        out[li] = qi;
    }
    Ok(out)
}

/// SPIKE merge of two adjacent partitions (Fig. 6's recursive step).
///
/// Writing the merged matrix `M = [[A_L, E↑],[E↓, A_R]]` with the single
/// coupling blocks `E↑ = A_{e,e+1}`, `E↓ = A_{e+1,e}` at the interface
/// `e = boundary`, the merged first/last inverse columns follow from the
/// local ones through one `s × s` "tip" solve and one correction GEMM per
/// block row — the constant-cost-per-level spike computation.
#[allow(clippy::too_many_arguments)]
fn merge_partitions(
    a: &Btd,
    left: BlockColumns,
    right: BlockColumns,
    boundary: usize,
    rt: Option<&AccelRuntime>,
    dev: usize,
    ws: &Workspace,
) -> Result<BlockColumns> {
    let s = a.block_size();
    let up = &a.upper[boundary];
    let dn = &a.lower[boundary];
    let nl = left.first.len();
    let nr = right.first.len();
    // Spike tips: V_Lb = L_L[end]·E↑, W_Rt = F_R[0]·E↓.
    let v_lb = ws.matmul(&left.last[nl - 1], up);
    let w_rt = ws.matmul(&right.first[0], dn);
    if let Some(rt) = rt {
        rt.account(dev, KernelClass::Gemm, 2 * counts::zgemm(s, s, s), 0);
        rt.account_overlapped(dev, KernelClass::D2D, (2 * s * s * 16) as u64);
    }
    // Tip system `I − T` assembled in place from a pooled product.
    let tip_system = |t: ZMat| -> ZMat {
        let mut m = t;
        m.scale_assign(-Complex64::ONE);
        for i in 0..s {
            m[(i, i)] += Complex64::ONE;
        }
        m
    };
    // Merged FIRST column: (I − V_Lb·W_Rt)·x_e = F_L[end].
    let m_first = tip_system(ws.matmul(&v_lb, &w_rt));
    let mut x_bottom = ws.take_scratch(s, left.first[nl - 1].cols());
    zgesv_into(&m_first, &left.first[nl - 1], &mut x_bottom, ws)?;
    ws.recycle(m_first);
    let mut y_top = ws.matmul(&w_rt, &x_bottom);
    y_top.scale_assign(-Complex64::ONE);
    // Merged LAST column: (I − W_Rt·V_Lb)·y_b = L_R[0].
    let m_last = tip_system(ws.matmul(&w_rt, &v_lb));
    let mut y_top2 = ws.take_scratch(s, right.last[0].cols());
    zgesv_into(&m_last, &right.last[0], &mut y_top2, ws)?;
    ws.recycle(m_last);
    let mut x_bottom2 = ws.matmul(&v_lb, &y_top2);
    x_bottom2.scale_assign(-Complex64::ONE);
    if let Some(rt) = rt {
        rt.account(
            dev,
            KernelClass::Solve,
            2 * (counts::zgetrf(s) + counts::zgetrs(s, s)) + 2 * counts::zgemm(s, s, s),
            0,
        );
    }
    // Per-block corrections (distributed over the partition devices).
    let up_y = ws.matmul(up, &y_top);
    let dn_x = ws.matmul(dn, &x_bottom);
    let up_y2 = ws.matmul(up, &y_top2);
    let dn_x2 = ws.matmul(dn, &x_bottom2);
    let first: Vec<ZMat> = (0..nl + nr)
        .into_par_iter()
        .map(|i| {
            if i < nl {
                // x_i = F_L[i] − L_L[i]·E↑·y_top
                let mut v = ws.copy_of(&left.first[i]);
                let corr = ws.matmul(&left.last[i], &up_y);
                v.axpy(-Complex64::ONE, &corr);
                ws.recycle(corr);
                v
            } else {
                // y_i = −F_R[i]·E↓·x_bottom
                let mut v = ws.matmul(&right.first[i - nl], &dn_x);
                v.scale_assign(-Complex64::ONE);
                v
            }
        })
        .collect();
    let last: Vec<ZMat> = (0..nl + nr)
        .into_par_iter()
        .map(|i| {
            if i < nl {
                // x_i = −L_L[i]·E↑·y_top′
                let mut v = ws.matmul(&left.last[i], &up_y2);
                v.scale_assign(-Complex64::ONE);
                v
            } else {
                // y_i = L_R[i] − F_R[i]·E↓·x_bottom′
                let mut v = ws.copy_of(&right.last[i - nl]);
                let corr = ws.matmul(&right.first[i - nl], &dn_x2);
                v.axpy(-Complex64::ONE, &corr);
                ws.recycle(corr);
                v
            }
        })
        .collect();
    if let Some(rt) = rt {
        // 2 correction GEMMs per block row, spread across the devices of
        // the merged range.
        let per_dev = (nl + nr).div_ceil(rt.len().max(1)) as u64;
        for d in 0..rt.len() {
            rt.account(d, KernelClass::Gemm, 2 * per_dev * counts::zgemm(s, s, s), 0);
        }
    }
    // The pre-merge columns and tip temporaries are spent: recycle them.
    for m in [v_lb, w_rt, x_bottom, y_top, y_top2, x_bottom2, up_y, dn_x, up_y2, dn_x2] {
        ws.recycle(m);
    }
    for m in left.first.into_iter().chain(left.last).chain(right.first).chain(right.last) {
        ws.recycle(m);
    }
    Ok(BlockColumns { first, last })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_accel::GpuSpec;
    use qtx_linalg::{c64, lu_inverse, zgesv};

    fn random_system(nb: usize, s: usize, m: usize, seed: u64) -> ObcSystem {
        let mut a = Btd::zeros(nb, s);
        for i in 0..nb {
            a.diag[i] = ZMat::random(s, s, seed + i as u64);
            for d in 0..s {
                a.diag[i][(d, d)] += c64(4.0 + s as f64, 1.0);
            }
        }
        for i in 0..nb - 1 {
            a.upper[i] = ZMat::random(s, s, seed + 100 + i as u64).scaled(c64(0.4, 0.0));
            a.lower[i] = ZMat::random(s, s, seed + 200 + i as u64).scaled(c64(0.4, 0.0));
        }
        ObcSystem {
            a,
            sigma_l: ZMat::random(s, s, seed + 300).scaled(c64(0.3, 0.1)).into(),
            sigma_r: ZMat::random(s, s, seed + 301).scaled(c64(0.3, -0.1)).into(),
            rhs_top: ZMat::random(s, m, seed + 400),
            rhs_bottom: ZMat::random(s, m, seed + 401),
        }
    }

    #[test]
    fn single_partition_matches_dense_inverse_columns() {
        let sys = random_system(5, 3, 1, 1);
        let q = SplitSolve::new(1).inverse_block_columns(&sys.a, None).unwrap();
        let inv = lu_inverse(&sys.a.to_dense()).unwrap();
        for i in 0..5 {
            let f_ref = inv.block(3 * i, 0, 3, 3);
            let l_ref = inv.block(3 * i, 12, 3, 3);
            assert!(q.first[i].max_diff(&f_ref) < 1e-9, "first col block {i}");
            assert!(q.last[i].max_diff(&l_ref) < 1e-9, "last col block {i}");
        }
    }

    #[test]
    fn spike_merge_matches_single_partition() {
        let sys = random_system(8, 2, 1, 3);
        let q1 = SplitSolve::new(1).inverse_block_columns(&sys.a, None).unwrap();
        for p in [2usize, 4, 8] {
            let qp = SplitSolve::new(p).inverse_block_columns(&sys.a, None).unwrap();
            for i in 0..8 {
                assert!(
                    qp.first[i].max_diff(&q1.first[i]) < 1e-8,
                    "p={p} first block {i}: {:.2e}",
                    qp.first[i].max_diff(&q1.first[i])
                );
                assert!(qp.last[i].max_diff(&q1.last[i]) < 1e-8, "p={p} last block {i}");
            }
        }
    }

    #[test]
    fn full_solve_matches_dense_for_all_partition_counts() {
        let sys = random_system(8, 3, 2, 7);
        let x_ref = zgesv(&sys.t_dense(), &sys.b_dense()).unwrap();
        for p in [1usize, 2, 4] {
            let (x, report) = SplitSolve::new(p).solve(&sys, None).unwrap();
            assert!(x.max_diff(&x_ref) < 1e-8, "p={p}: {:.2e}", x.max_diff(&x_ref));
            assert_eq!(report.spike_levels, p.trailing_zeros() as usize);
            assert!(report.flops > 0);
        }
    }

    #[test]
    fn residual_is_small() {
        let sys = random_system(6, 4, 3, 13);
        let (x, _) = SplitSolve::new(2).solve(&sys, None).unwrap();
        assert!(sys.residual(&x) < 1e-9, "residual {:.2e}", sys.residual(&x));
    }

    #[test]
    fn uneven_partition_sizes_work() {
        // 7 blocks over 4 partitions → sizes 1/2/2/2.
        let sys = random_system(7, 2, 1, 17);
        let x_ref = zgesv(&sys.t_dense(), &sys.b_dense()).unwrap();
        let (x, _) = SplitSolve::new(4).solve(&sys, None).unwrap();
        assert!(x.max_diff(&x_ref) < 1e-8);
    }

    #[test]
    fn accel_runtime_traces_phases() {
        let sys = random_system(8, 3, 2, 23);
        let rt = AccelRuntime::new(4, GpuSpec::k20x());
        let (x, report) = SplitSolve::new(2).solve(&sys, Some(&rt)).unwrap();
        let x_ref = zgesv(&sys.t_dense(), &sys.b_dense()).unwrap();
        assert!(x.max_diff(&x_ref) < 1e-8);
        assert!(report.virtual_seconds > 0.0);
        let traces = rt.traces();
        assert!(traces.iter().any(|t| t.label == "zgemm"));
        assert!(traces.iter().any(|t| t.label == "zgesv_nopiv"));
        assert!(traces.iter().any(|t| t.label == "H-to-D"), "A upload recorded");
        // All four devices did compute work.
        for d in 0..4 {
            assert!(traces.iter().any(|t| t.device == d && t.flops > 0), "device {d} idle");
        }
    }

    #[test]
    fn more_partitions_cost_more_flops_spike_overhead() {
        // The weak-scaling efficiency drop of Fig. 7(a) comes from the
        // extra spike work: verify the FLOP count grows with partitions.
        let sys = random_system(16, 3, 1, 31);
        let f = |p: usize| {
            let scope = FlopScope::start_process();
            let _ = SplitSolve::new(p).inverse_block_columns(&sys.a, None).unwrap();
            scope.elapsed()
        };
        let f1 = f(1);
        let f4 = f(4);
        assert!(f4 > f1, "spikes add work: {f4} vs {f1}");
    }

    #[test]
    #[should_panic(expected = "partitions must be 2^k")]
    fn rejects_non_power_of_two() {
        let _ = SplitSolve::new(3);
    }
}
