//! Recursive Green's function reference (ref. [47]).
//!
//! The NEGF route to Eq. 4 computes retarded Green's function blocks of
//! `T = E·S − H − Σ^RB` rather than wave functions. `qtx-core` uses the
//! diagonal blocks for the spectral function / local density of states and
//! the top-right corner block for the Caroli transmission
//! `T(E) = Tr[Γ_L·G_{0,n−1}·Γ_R·G_{0,n−1}ᴴ]` — the independent
//! cross-check of the wave-function (SplitSolve) transmission.

use crate::system::ObcSystem;
use qtx_linalg::{zgesv, Complex64, Result, ZMat};

/// Green's function blocks produced by one RGF pass.
#[derive(Debug, Clone)]
pub struct RgfResult {
    /// Diagonal blocks `G_{i,i}` of the retarded Green's function.
    pub diag: Vec<ZMat>,
    /// Corner block `G_{0,n−1}` (transmission).
    pub corner: ZMat,
}

/// Runs the two-pass RGF on the open system.
pub fn rgf_diagonal_and_corner(sys: &ObcSystem) -> Result<RgfResult> {
    let nb = sys.num_blocks();
    let s = sys.block_size();
    // Effective diagonal blocks with the boundary self-energies.
    let mut d: Vec<ZMat> = sys.a.diag.clone();
    d[0].axpy(-Complex64::ONE, &sys.sigma_l);
    d[nb - 1].axpy(-Complex64::ONE, &sys.sigma_r);
    let id = ZMat::identity(s);
    // Forward (left-connected) pass: gL_i = (D_i − L_{i−1}·gL_{i−1}·U_{i−1})⁻¹.
    let mut g_left: Vec<ZMat> = Vec::with_capacity(nb);
    for i in 0..nb {
        let mut m = d[i].clone();
        if i > 0 {
            let t = &(&sys.a.lower[i - 1] * &g_left[i - 1]) * &sys.a.upper[i - 1];
            m.axpy(-Complex64::ONE, &t);
        }
        g_left.push(zgesv(&m, &id)?);
    }
    // Backward pass: G_{n−1,n−1} = gL_{n−1};
    // G_{i,i} = gL_i + gL_i·U_i·G_{i+1,i+1}·L_i·gL_i.
    let mut diag = vec![ZMat::zeros(0, 0); nb];
    diag[nb - 1] = g_left[nb - 1].clone();
    for i in (0..nb - 1).rev() {
        let u_g = &sys.a.upper[i] * &diag[i + 1];
        let u_g_l = &u_g * &sys.a.lower[i];
        let mut gi = g_left[i].clone();
        let corr = &(&g_left[i] * &u_g_l) * &g_left[i];
        gi.axpy(Complex64::ONE, &corr);
        diag[i] = gi;
    }
    // Corner block through the upper off-diagonal recursion
    // G_{i,j} = −gL_i·U_i·G_{i+1,j} (i < j), seeded with
    // G_{n−1,n−1} = gL_{n−1}: walking up the last column is exact with
    // left-connected functions only.
    let mut corner = g_left[nb - 1].clone();
    for i in (0..nb - 1).rev() {
        let t = &sys.a.upper[i] * &corner;
        corner = -&(&g_left[i] * &t);
    }
    Ok(RgfResult { diag, corner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_linalg::{c64, lu_inverse};
    use qtx_sparse::Btd;

    fn random_system(nb: usize, s: usize, seed: u64) -> ObcSystem {
        let mut a = Btd::zeros(nb, s);
        for i in 0..nb {
            a.diag[i] = ZMat::random(s, s, seed + i as u64);
            for dd in 0..s {
                a.diag[i][(dd, dd)] = a.diag[i][(dd, dd)] + c64(4.0, 0.8);
            }
        }
        for i in 0..nb - 1 {
            a.upper[i] = ZMat::random(s, s, seed + 60 + i as u64).scaled(c64(0.4, 0.0));
            a.lower[i] = ZMat::random(s, s, seed + 95 + i as u64).scaled(c64(0.4, 0.0));
        }
        ObcSystem {
            a,
            sigma_l: ZMat::random(s, s, seed + 200).scaled(c64(0.3, 0.1)),
            sigma_r: ZMat::random(s, s, seed + 201).scaled(c64(0.3, -0.1)),
            rhs_top: ZMat::zeros(s, 0),
            rhs_bottom: ZMat::zeros(s, 0),
        }
    }

    #[test]
    fn diagonal_blocks_match_dense_inverse() {
        let sys = random_system(5, 3, 7);
        let r = rgf_diagonal_and_corner(&sys).unwrap();
        let ginv = lu_inverse(&sys.t_dense()).unwrap();
        for i in 0..5 {
            let reference = ginv.block(3 * i, 3 * i, 3, 3);
            assert!(
                r.diag[i].max_diff(&reference) < 1e-9,
                "block {i}: {:.2e}",
                r.diag[i].max_diff(&reference)
            );
        }
    }

    #[test]
    fn corner_block_matches_dense_inverse() {
        let sys = random_system(6, 2, 11);
        let r = rgf_diagonal_and_corner(&sys).unwrap();
        let ginv = lu_inverse(&sys.t_dense()).unwrap();
        let reference = ginv.block(0, 10, 2, 2);
        assert!(r.corner.max_diff(&reference) < 1e-9);
    }

    #[test]
    fn single_block_degenerate_case() {
        let sys = random_system(1, 4, 13);
        let r = rgf_diagonal_and_corner(&sys).unwrap();
        let ginv = lu_inverse(&sys.t_dense()).unwrap();
        assert!(r.diag[0].max_diff(&ginv) < 1e-9);
        assert!(r.corner.max_diff(&ginv) < 1e-9);
    }
}
