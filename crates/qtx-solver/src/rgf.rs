//! Recursive Green's function reference (ref. [47]).
//!
//! The NEGF route to Eq. 4 computes retarded Green's function blocks of
//! `T = E·S − H − Σ^RB` rather than wave functions. `qtx-core` uses the
//! diagonal blocks for the spectral function / local density of states and
//! the top-right corner block for the Caroli transmission
//! `T(E) = Tr[Γ_L·G_{0,n−1}·Γ_R·G_{0,n−1}ᴴ]` — the independent
//! cross-check of the wave-function (SplitSolve) transmission.

use crate::error::{SolveError, SolveOutcome};
use crate::system::ObcSystem;
use qtx_linalg::{lu_factor_owned_ws, Complex64, Workspace, ZMat};

/// Green's function blocks produced by one RGF pass.
#[derive(Debug, Clone)]
pub struct RgfResult {
    /// Diagonal blocks `G_{i,i}` of the retarded Green's function.
    pub diag: Vec<ZMat>,
    /// Corner block `G_{0,n−1}` (transmission).
    pub corner: ZMat,
}

/// Runs the two-pass RGF on the open system with a private scratch pool.
pub fn rgf_diagonal_and_corner(sys: &ObcSystem) -> SolveOutcome<RgfResult> {
    rgf_diagonal_and_corner_ws(sys, &Workspace::new())
}

/// Forward (left-connected) pass shared by both RGF variants:
/// `gL_i = (D_i − L_{i−1}·gL_{i−1}·U_{i−1})⁻¹`, with the boundary
/// self-energies folded into the corner blocks. A factored Σ is applied
/// through its `U·Vᴴ` form directly — no dense expansion. The retained
/// `gL` chain is the variants' whole working set: `n_B` blocks of
/// `s × s`, i.e. bandwidth·n storage.
fn rgf_forward_pass(sys: &ObcSystem, ws: &Workspace) -> SolveOutcome<Vec<ZMat>> {
    let nb = sys.num_blocks();
    let s = sys.block_size();
    let id = ZMat::identity(s);
    let mut g_left: Vec<ZMat> = Vec::with_capacity(nb);
    for i in 0..nb {
        let mut m = ws.copy_of(&sys.a.diag[i]);
        if i == 0 {
            sys.sigma_l.add_scaled_into(-Complex64::ONE, &mut m);
        }
        if i == nb - 1 {
            sys.sigma_r.add_scaled_into(-Complex64::ONE, &mut m);
        }
        if i > 0 {
            let lg = ws.matmul(&sys.a.lower[i - 1], &g_left[i - 1]);
            let lgu = ws.matmul(&lg, &sys.a.upper[i - 1]);
            ws.recycle(lg);
            m.axpy(-Complex64::ONE, &lgu);
            ws.recycle(lgu);
        }
        // Factor the shifted block in place (it is spent either way) and
        // solve the identity RHS straight into a pooled buffer.
        let f = lu_factor_owned_ws(m, true, ws)?;
        let mut g = ws.take_scratch(s, s);
        f.solve_into(id.view(), &mut g);
        f.recycle_into(ws);
        g_left.push(g);
    }
    Ok(g_left)
}

/// Corner column recursion `G_{i,n−1} = −gL_i·U_i·G_{i+1,n−1}` walked up
/// from the seed `G_{n−1,n−1} = gL_{n−1}` — exact with left-connected
/// functions only, and shared verbatim by both variants so their corner
/// blocks are bit-identical.
fn rgf_corner(g_left: &[ZMat], sys: &ObcSystem, ws: &Workspace) -> ZMat {
    let nb = g_left.len();
    let mut corner = g_left[nb - 1].clone();
    for i in (0..nb - 1).rev() {
        let t = ws.matmul(&sys.a.upper[i], &corner);
        let mut next = ws.matmul(&g_left[i], &t);
        ws.recycle(t);
        next.scale_assign(-Complex64::ONE);
        ws.recycle(std::mem::replace(&mut corner, next));
    }
    corner
}

/// Runs the two-pass RGF borrowing every block temporary from `ws`, so a
/// sweep over energy points recycles the same handful of `s × s` buffers
/// instead of allocating ~5 fresh matrices per block per point.
pub fn rgf_diagonal_and_corner_ws(sys: &ObcSystem, ws: &Workspace) -> SolveOutcome<RgfResult> {
    let nb = sys.num_blocks();
    let g_left = rgf_forward_pass(sys, ws)?;
    // Backward pass: G_{n−1,n−1} = gL_{n−1};
    // G_{i,i} = gL_i + gL_i·U_i·G_{i+1,i+1}·L_i·gL_i.
    let mut diag = vec![ZMat::zeros(0, 0); nb];
    diag[nb - 1] = g_left[nb - 1].clone();
    for i in (0..nb - 1).rev() {
        let u_g = ws.matmul(&sys.a.upper[i], &diag[i + 1]);
        let u_g_l = ws.matmul(&u_g, &sys.a.lower[i]);
        ws.recycle(u_g);
        let g_ugl = ws.matmul(&g_left[i], &u_g_l);
        ws.recycle(u_g_l);
        let corr = ws.matmul(&g_ugl, &g_left[i]);
        ws.recycle(g_ugl);
        let mut gi = g_left[i].clone();
        gi.axpy(Complex64::ONE, &corr);
        ws.recycle(corr);
        diag[i] = gi;
    }
    let corner = rgf_corner(&g_left, sys, ws);
    for g in g_left {
        ws.recycle(g);
    }
    // The Caroli formula consumes the corner block and the LDOS path the
    // diagonal — a NaN in either silently zeros/poisons an observable.
    let bad = corner.non_finite_count() + diag.iter().map(|g| g.non_finite_count()).sum::<usize>();
    if bad > 0 {
        return Err(SolveError::NonFinite { solver: "rgf", count: bad });
    }
    Ok(RgfResult { diag, corner })
}

/// The three Green's function blocks a transmission-only run needs.
#[derive(Debug, Clone)]
pub struct RgfBoundary {
    /// First diagonal block `G_{0,0}`.
    pub first: ZMat,
    /// Corner block `G_{0,n−1}` (the Caroli transmission block),
    /// bit-identical to [`RgfResult::corner`].
    pub corner: ZMat,
    /// Last diagonal block `G_{n−1,n−1}`.
    pub last: ZMat,
}

/// Boundary-block-only RGF with a private scratch pool.
pub fn rgf_boundary(sys: &ObcSystem) -> SolveOutcome<RgfBoundary> {
    rgf_boundary_ws(sys, &Workspace::new())
}

/// Boundary-block-only RGF: retains just `G_{0,0}`, `G_{0,n−1}` and
/// `G_{n−1,n−1}` — everything the Caroli transmission and the contact
/// spectral functions consume. The backward Dyson recursion streams
/// through interior diagonal blocks without storing them, so beyond the
/// forward `gL` chain (bandwidth·n) the working set is three `s × s`
/// blocks regardless of device length. Block values match
/// [`rgf_diagonal_and_corner_ws`] bit-for-bit: both run the identical
/// operation sequence per block.
pub fn rgf_boundary_ws(sys: &ObcSystem, ws: &Workspace) -> SolveOutcome<RgfBoundary> {
    let nb = sys.num_blocks();
    let g_left = rgf_forward_pass(sys, ws)?;
    let last = g_left[nb - 1].clone();
    // Backward pass streamed: only the running G_{i,i} survives each step.
    let mut g_cur = g_left[nb - 1].clone();
    for i in (0..nb - 1).rev() {
        let u_g = ws.matmul(&sys.a.upper[i], &g_cur);
        let u_g_l = ws.matmul(&u_g, &sys.a.lower[i]);
        ws.recycle(u_g);
        let g_ugl = ws.matmul(&g_left[i], &u_g_l);
        ws.recycle(u_g_l);
        let corr = ws.matmul(&g_ugl, &g_left[i]);
        ws.recycle(g_ugl);
        let mut gi = g_left[i].clone();
        gi.axpy(Complex64::ONE, &corr);
        ws.recycle(corr);
        ws.recycle(std::mem::replace(&mut g_cur, gi));
    }
    let first = g_cur;
    let corner = rgf_corner(&g_left, sys, ws);
    for g in g_left {
        ws.recycle(g);
    }
    let bad = first.non_finite_count() + corner.non_finite_count() + last.non_finite_count();
    if bad > 0 {
        return Err(SolveError::NonFinite { solver: "rgf-boundary", count: bad });
    }
    Ok(RgfBoundary { first, corner, last })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_linalg::{c64, lu_inverse};
    use qtx_sparse::Btd;

    fn random_system(nb: usize, s: usize, seed: u64) -> ObcSystem {
        let mut a = Btd::zeros(nb, s);
        for i in 0..nb {
            a.diag[i] = ZMat::random(s, s, seed + i as u64);
            for dd in 0..s {
                a.diag[i][(dd, dd)] += c64(4.0, 0.8);
            }
        }
        for i in 0..nb - 1 {
            a.upper[i] = ZMat::random(s, s, seed + 60 + i as u64).scaled(c64(0.4, 0.0));
            a.lower[i] = ZMat::random(s, s, seed + 95 + i as u64).scaled(c64(0.4, 0.0));
        }
        ObcSystem {
            a,
            sigma_l: ZMat::random(s, s, seed + 200).scaled(c64(0.3, 0.1)).into(),
            sigma_r: ZMat::random(s, s, seed + 201).scaled(c64(0.3, -0.1)).into(),
            rhs_top: ZMat::zeros(s, 0),
            rhs_bottom: ZMat::zeros(s, 0),
        }
    }

    #[test]
    fn diagonal_blocks_match_dense_inverse() {
        let sys = random_system(5, 3, 7);
        let r = rgf_diagonal_and_corner(&sys).unwrap();
        let ginv = lu_inverse(&sys.t_dense()).unwrap();
        for i in 0..5 {
            let reference = ginv.block(3 * i, 3 * i, 3, 3);
            assert!(
                r.diag[i].max_diff(&reference) < 1e-9,
                "block {i}: {:.2e}",
                r.diag[i].max_diff(&reference)
            );
        }
    }

    #[test]
    fn corner_block_matches_dense_inverse() {
        let sys = random_system(6, 2, 11);
        let r = rgf_diagonal_and_corner(&sys).unwrap();
        let ginv = lu_inverse(&sys.t_dense()).unwrap();
        let reference = ginv.block(0, 10, 2, 2);
        assert!(r.corner.max_diff(&reference) < 1e-9);
    }

    #[test]
    fn single_block_degenerate_case() {
        let sys = random_system(1, 4, 13);
        let r = rgf_diagonal_and_corner(&sys).unwrap();
        let ginv = lu_inverse(&sys.t_dense()).unwrap();
        assert!(r.diag[0].max_diff(&ginv) < 1e-9);
        assert!(r.corner.max_diff(&ginv) < 1e-9);
    }

    #[test]
    fn boundary_variant_is_bit_identical_to_full_rgf() {
        for (nb, s, seed) in [(1, 4, 13), (5, 3, 7), (8, 2, 21)] {
            let sys = random_system(nb, s, seed);
            let full = rgf_diagonal_and_corner(&sys).unwrap();
            let b = rgf_boundary(&sys).unwrap();
            assert_eq!(b.first.max_diff(&full.diag[0]), 0.0, "nb={nb}");
            assert_eq!(b.last.max_diff(&full.diag[nb - 1]), 0.0, "nb={nb}");
            assert_eq!(b.corner.max_diff(&full.corner), 0.0, "nb={nb}");
        }
    }

    #[test]
    fn boundary_variant_accepts_factored_sigma() {
        use qtx_sparse::CompressedSigma;
        let mut sys = random_system(6, 4, 17);
        // Replace Σ_L with a genuinely low-rank factored form.
        let u = ZMat::random(4, 1, 31);
        let v = ZMat::random(4, 1, 37);
        let mut dense = ZMat::zeros(4, 4);
        CompressedSigma::Factored { u: u.clone(), v: v.clone(), bound: 0.0 }
            .add_scaled_into(Complex64::ONE, &mut dense);
        sys.sigma_l = CompressedSigma::Factored { u, v, bound: 0.0 };
        let factored = rgf_boundary(&sys).unwrap();
        sys.sigma_l = dense.into();
        let expanded = rgf_boundary(&sys).unwrap();
        assert!(factored.corner.max_diff(&expanded.corner) < 1e-12);
        assert!(factored.first.max_diff(&expanded.first) < 1e-12);
    }
}
