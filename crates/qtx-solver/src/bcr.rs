//! Block cyclic reduction — OMEN's legacy tight-binding solver (ref. [33]).
//!
//! "A parallel direct sparse linear solver such as MUMPS or a custom-made
//! block cyclic reduction (BCR) are typically needed to solve the
//! Schrödinger equation with OBCs. ... Since our BCR method relies on the
//! sparsity provided by a tight-binding basis, it does not work with DFT"
//! (§3.B) — meaning it stays affordable only while the blocks are small.
//! The implementation here is exact for any BTD system; its cost scales
//! with the same `s³` block kernels as the other solvers, which is exactly
//! why the DFT-sized blocks kill it in the Fig. 8 comparison.

use crate::error::{SolveError, SolveOutcome};
use crate::system::ObcSystem;
use qtx_linalg::{lu_factor_ws, zgesv_into, Complex64, Result, Workspace, ZMat};
use qtx_sparse::Btd;

/// Solves `T·x = b` by block cyclic reduction. `T` is the BTD matrix of
/// `sys` with the boundary self-energies folded into the corner blocks.
pub fn bcr_solve(sys: &ObcSystem) -> SolveOutcome<ZMat> {
    let nb = sys.num_blocks();
    let s = sys.block_size();
    let m = sys.num_rhs();
    // Assemble working block arrays.
    let mut diag: Vec<ZMat> = sys.a.diag.clone();
    sys.sigma_l.add_scaled_into(-Complex64::ONE, &mut diag[0]);
    sys.sigma_r.add_scaled_into(-Complex64::ONE, &mut diag[nb - 1]);
    let upper = sys.a.upper.clone();
    let lower = sys.a.lower.clone();
    let b = sys.b_dense();
    let rhs: Vec<ZMat> = (0..nb).map(|i| b.block(i * s, 0, s, m)).collect();
    let ws = Workspace::new();
    let x_blocks = bcr_recurse(&diag, &upper, &lower, &rhs, &ws)?;
    let mut x = ZMat::zeros(nb * s, m);
    for (i, xb) in x_blocks.into_iter().enumerate() {
        x.set_block(i * s, 0, &xb);
    }
    let bad = x.non_finite_count();
    if bad > 0 {
        return Err(SolveError::NonFinite { solver: "bcr", count: bad });
    }
    Ok(x)
}

/// Pool-backed one-shot solve: factor copy, factors and solution all
/// borrow from `ws`; the solution is handed back owned.
fn pooled_solve(a: &ZMat, b: &ZMat, ws: &Workspace) -> Result<ZMat> {
    let mut x = ws.take_scratch(b.rows(), b.cols());
    zgesv_into(a, b, &mut x, ws)?;
    Ok(x)
}

/// One level of cyclic reduction: eliminate the odd-indexed blocks,
/// recurse on the evens, back-substitute. Every elimination temporary
/// cycles through `ws` — one pool serves all recursion levels.
fn bcr_recurse(
    diag: &[ZMat],
    upper: &[ZMat],
    lower: &[ZMat],
    rhs: &[ZMat],
    ws: &Workspace,
) -> Result<Vec<ZMat>> {
    let nb = diag.len();
    if nb == 1 {
        return pooled_solve(&diag[0], &rhs[0], ws).map(|x| vec![x]);
    }
    if nb == 2 {
        // Direct 2×2 block solve via Schur complement on the second block.
        let f0 = lu_factor_ws(&diag[0], ws)?;
        let mut d0_inv_u = ws.take_scratch(upper[0].rows(), upper[0].cols());
        f0.solve_into(upper[0].view(), &mut d0_inv_u);
        let mut d0_inv_b = ws.take_scratch(rhs[0].rows(), rhs[0].cols());
        f0.solve_into(rhs[0].view(), &mut d0_inv_b);
        f0.recycle_into(ws);
        let mut schur = ws.copy_of(&diag[1]);
        let prod = ws.matmul(&lower[0], &d0_inv_u);
        schur.axpy(-Complex64::ONE, &prod);
        ws.recycle(prod);
        let mut r1 = ws.copy_of(&rhs[1]);
        let lb = ws.matmul(&lower[0], &d0_inv_b);
        r1.axpy(-Complex64::ONE, &lb);
        ws.recycle(lb);
        let x1 = pooled_solve(&schur, &r1, ws)?;
        ws.recycle(schur);
        ws.recycle(r1);
        let mut x0 = d0_inv_b;
        let corr = ws.matmul(&d0_inv_u, &x1);
        x0.axpy(-Complex64::ONE, &corr);
        ws.recycle(corr);
        ws.recycle(d0_inv_u);
        return Ok(vec![x0, x1]);
    }
    // Eliminate odd blocks: for odd i,
    //   x_i = D_i⁻¹·(b_i − L_{i−1}ᵀ... − lower[i−1]·x_{i−1} − upper[i]·x_{i+1})
    // substituting into the even rows produces a coarse BTD system on the
    // even indices.
    let evens: Vec<usize> = (0..nb).step_by(2).collect();
    let ne = evens.len();
    let mut c_diag = Vec::with_capacity(ne);
    let mut c_upper = Vec::with_capacity(ne - 1);
    let mut c_lower = Vec::with_capacity(ne - 1);
    let mut c_rhs = Vec::with_capacity(ne);
    // Precompute D_odd⁻¹ applied to its couplings and RHS.
    let mut odd_inv_low: Vec<Option<ZMat>> = vec![None; nb]; // D_i⁻¹·lower[i−1]
    let mut odd_inv_up: Vec<Option<ZMat>> = vec![None; nb]; // D_i⁻¹·upper[i]
    let mut odd_inv_rhs: Vec<Option<ZMat>> = vec![None; nb];
    for i in (1..nb).step_by(2) {
        let f = lu_factor_ws(&diag[i], ws)?;
        let mut low = ws.take_scratch(lower[i - 1].rows(), lower[i - 1].cols());
        f.solve_into(lower[i - 1].view(), &mut low);
        odd_inv_low[i] = Some(low);
        if i + 1 < nb {
            let mut up = ws.take_scratch(upper[i].rows(), upper[i].cols());
            f.solve_into(upper[i].view(), &mut up);
            odd_inv_up[i] = Some(up);
        }
        let mut r = ws.take_scratch(rhs[i].rows(), rhs[i].cols());
        f.solve_into(rhs[i].view(), &mut r);
        odd_inv_rhs[i] = Some(r);
        f.recycle_into(ws);
    }
    for (e, &i) in evens.iter().enumerate() {
        let mut d = ws.copy_of(&diag[i]);
        let mut r = ws.copy_of(&rhs[i]);
        // Left odd neighbour i−1 feeds into row i through lower[i−1]... the
        // coupling from even row i to odd i−1 is lower[i−1] (A_{i,i−1}).
        if i >= 1 {
            let il = &odd_inv_up[i - 1];
            // x_{i−1} = D⁻¹(b − lower[i−2]x_{i−2} − upper[i−1]x_i)
            // row i: + lower[i−1]·x_{i−1}
            if let Some(inv_up) = il {
                let prod = ws.matmul(&lower[i - 1], inv_up);
                d.axpy(-Complex64::ONE, &prod);
                ws.recycle(prod);
            }
            let rb = ws.matmul(&lower[i - 1], odd_inv_rhs[i - 1].as_ref().expect("odd rhs"));
            r.axpy(-Complex64::ONE, &rb);
            ws.recycle(rb);
            if i >= 2 {
                // coarse lower coupling to even i−2
                let mut prod =
                    ws.matmul(&lower[i - 1], odd_inv_low[i - 1].as_ref().expect("odd low"));
                prod.scale_assign(-Complex64::ONE);
                c_lower.push(prod);
            }
        }
        if i + 1 < nb {
            // Right odd neighbour i+1 through upper[i].
            let inv_low = odd_inv_low[i + 1].as_ref().expect("odd low");
            let prod = ws.matmul(&upper[i], inv_low);
            d.axpy(-Complex64::ONE, &prod);
            ws.recycle(prod);
            let rb = ws.matmul(&upper[i], odd_inv_rhs[i + 1].as_ref().expect("odd rhs"));
            r.axpy(-Complex64::ONE, &rb);
            ws.recycle(rb);
            if i + 2 < nb {
                let mut coarse_up =
                    ws.matmul(&upper[i], odd_inv_up[i + 1].as_ref().expect("odd up"));
                coarse_up.scale_assign(-Complex64::ONE);
                c_upper.push(coarse_up);
            }
        }
        let _ = e;
        c_diag.push(d);
        c_rhs.push(r);
    }
    let x_even = bcr_recurse(&c_diag, &c_upper, &c_lower, &c_rhs, ws)?;
    for m in c_diag.into_iter().chain(c_upper).chain(c_lower).chain(c_rhs) {
        ws.recycle(m);
    }
    // Back-substitute the odd blocks; the even solutions move (not clone)
    // into the output slots.
    let mut x = vec![ZMat::zeros(0, 0); nb];
    for (&i, xe) in evens.iter().zip(x_even) {
        x[i] = xe;
    }
    for i in (1..nb).step_by(2) {
        let mut xi = odd_inv_rhs[i].take().expect("odd rhs");
        let low = odd_inv_low[i].take().expect("odd low");
        let corr = ws.matmul(&low, &x[i - 1]);
        xi.axpy(-Complex64::ONE, &corr);
        ws.recycle(corr);
        ws.recycle(low);
        if i + 1 < nb {
            let up = odd_inv_up[i].take().expect("odd up");
            let corr2 = ws.matmul(&up, &x[i + 1]);
            xi.axpy(-Complex64::ONE, &corr2);
            ws.recycle(corr2);
            ws.recycle(up);
        }
        x[i] = xi;
    }
    Ok(x)
}

/// Convenience: solve a raw BTD system (no boundary terms) — used by the
/// legacy tight-binding path and tests.
pub fn bcr_solve_raw(a: &Btd, b: &ZMat) -> SolveOutcome<ZMat> {
    let s = a.block_size();
    let sys = ObcSystem {
        a: a.clone(),
        sigma_l: ZMat::zeros(s, s).into(),
        sigma_r: ZMat::zeros(s, s).into(),
        rhs_top: b.block(0, 0, s, b.cols()),
        rhs_bottom: ZMat::zeros(s, 0),
    };
    // bcr_solve builds its RHS from the corner blocks only; for a general
    // RHS run the recursion directly.
    let nb = a.num_blocks();
    let diag = a.diag.clone();
    let rhs: Vec<ZMat> = (0..nb).map(|i| b.block(i * s, 0, s, b.cols())).collect();
    let xb = bcr_recurse(&diag, &a.upper, &a.lower, &rhs, &Workspace::new())?;
    let mut x = ZMat::zeros(nb * s, b.cols());
    for (i, blk) in xb.into_iter().enumerate() {
        x.set_block(i * s, 0, &blk);
    }
    let _ = sys;
    let bad = x.non_finite_count();
    if bad > 0 {
        return Err(SolveError::NonFinite { solver: "bcr", count: bad });
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_linalg::{c64, zgesv};

    fn random_btd(nb: usize, s: usize, seed: u64) -> Btd {
        let mut a = Btd::zeros(nb, s);
        for i in 0..nb {
            a.diag[i] = ZMat::random(s, s, seed + i as u64);
            for d in 0..s {
                a.diag[i][(d, d)] += c64(4.0, 0.5);
            }
        }
        for i in 0..nb - 1 {
            a.upper[i] = ZMat::random(s, s, seed + 60 + i as u64).scaled(c64(0.35, 0.0));
            a.lower[i] = ZMat::random(s, s, seed + 95 + i as u64).scaled(c64(0.35, 0.0));
        }
        a
    }

    #[test]
    fn matches_dense_various_sizes() {
        for nb in [1usize, 2, 3, 5, 8, 9, 16] {
            let a = random_btd(nb, 2, 1000 + nb as u64);
            let b = ZMat::random(a.dim(), 2, 7);
            let x = bcr_solve_raw(&a, &b).unwrap();
            let x_ref = zgesv(&a.to_dense(), &b).unwrap();
            assert!(x.max_diff(&x_ref) < 1e-8, "nb={nb}: {:.2e}", x.max_diff(&x_ref));
        }
    }

    #[test]
    fn obc_system_solve() {
        let a = random_btd(6, 3, 71);
        let s = 3;
        let sys = ObcSystem {
            a,
            sigma_l: ZMat::random(s, s, 72).scaled(c64(0.2, 0.1)).into(),
            sigma_r: ZMat::random(s, s, 73).scaled(c64(0.2, -0.1)).into(),
            rhs_top: ZMat::random(s, 2, 74),
            rhs_bottom: ZMat::random(s, 1, 75),
        };
        let x = bcr_solve(&sys).unwrap();
        assert!(sys.residual(&x) < 1e-9, "residual {:.2e}", sys.residual(&x));
    }
}
