//! MUMPS-like block tri-diagonal direct solver (the Fig. 8 baseline).
//!
//! MUMPS factorizes the whole sparse matrix; on a BTD-ordered transport
//! matrix its elimination tree degenerates into the block Thomas
//! recursion implemented here (dense frontal blocks, full fill inside the
//! band). The cost profile — one `s³` factorization plus two `s³` GEMMs
//! per block row, all sequential along the chain, executed on the CPU —
//! is what makes it "slow when the number of non-zero entries increases
//! drastically" (§3.B) compared to SplitSolve's accelerator pipeline.

use crate::error::{SolveError, SolveOutcome};
use crate::system::ObcSystem;
use qtx_linalg::{lu_factor_owned_ws, Complex64, LuFactors, Workspace, ZMat};
use qtx_sparse::Btd;

/// Factorization state of the block Thomas elimination.
pub struct BtdLuFactors {
    /// LU factors of the pivot blocks `D̃_i`.
    pivots: Vec<LuFactors>,
    /// Elimination multipliers `L_i·D̃_{i-1}⁻¹... stored as D̃⁻¹·U` blocks.
    dinv_upper: Vec<ZMat>,
    /// Copy of the sub-diagonal blocks (back-substitution needs them).
    lower: Vec<ZMat>,
}

/// Factors `T` with a private scratch pool.
pub fn btd_lu_factor(a: &Btd, sigma_l: &ZMat, sigma_r: &ZMat) -> SolveOutcome<BtdLuFactors> {
    btd_lu_factor_ws(a, sigma_l, sigma_r, &Workspace::new())
}

/// Factors `T` (BTD with boundary self-energies folded into the corner
/// diagonal blocks) by block Gaussian elimination without pivoting across
/// blocks. Everything — elimination temporaries and the factor blocks
/// themselves — borrows from `ws`; the factors adopt their buffers for
/// their lifetime and hand them back through
/// [`BtdLuFactors::recycle_into`].
pub fn btd_lu_factor_ws(
    a: &Btd,
    sigma_l: &ZMat,
    sigma_r: &ZMat,
    ws: &Workspace,
) -> SolveOutcome<BtdLuFactors> {
    let nb = a.num_blocks();
    let mut pivots = Vec::with_capacity(nb);
    let mut dinv_upper = Vec::with_capacity(nb - 1);
    let mut carry: Option<ZMat> = None; // L_{i-1}·(D̃_{i-1}⁻¹·U_{i-1})
    for i in 0..nb {
        let mut d = ws.copy_of(&a.diag[i]);
        if i == 0 {
            d.axpy(-Complex64::ONE, sigma_l);
        }
        if i == nb - 1 {
            d.axpy(-Complex64::ONE, sigma_r);
        }
        if let Some(c) = carry.take() {
            d.axpy(-Complex64::ONE, &c);
            ws.recycle(c);
        }
        // The eliminated block is factored in place: the factors adopt the
        // buffer, so no second copy is made (the factors outlive the call
        // and own their storage, as before).
        let f = lu_factor_owned_ws(d, true, ws)?;
        if i + 1 < nb {
            let mut du = ws.take_scratch(a.upper[i].rows(), a.upper[i].cols());
            f.solve_into(a.upper[i].view(), &mut du);
            carry = Some(ws.matmul(&a.lower[i], &du));
            dinv_upper.push(du);
        }
        pivots.push(f);
    }
    let lower = a.lower.iter().map(|l| ws.copy_of(l)).collect();
    Ok(BtdLuFactors { pivots, dinv_upper, lower })
}

impl BtdLuFactors {
    /// Solves `T·x = b` for a dense multi-column RHS (private scratch).
    pub fn solve(&self, b: &ZMat) -> ZMat {
        self.solve_ws(b, &Workspace::new())
    }

    /// Solves `T·x = b` borrowing all sweep temporaries from `ws`.
    pub fn solve_ws(&self, b: &ZMat, ws: &Workspace) -> ZMat {
        let nb = self.pivots.len();
        let s = self.lower.first().map_or(b.rows(), |l| l.rows());
        let m = b.cols();
        // Forward: ỹ_i = D̃_i⁻¹·(b_i − L_{i-1}·ỹ_{i-1}).
        let mut y: Vec<ZMat> = Vec::with_capacity(nb);
        for i in 0..nb {
            let mut rhs = ws.copy_of_view(b.block_view(i * s, 0, s, m));
            if i > 0 {
                let prod = ws.matmul(&self.lower[i - 1], &y[i - 1]);
                rhs.axpy(-Complex64::ONE, &prod);
                ws.recycle(prod);
            }
            // The forward solve lands straight in a pooled buffer; the RHS
            // staging buffer goes back to the pool immediately.
            let mut yi = ws.take_scratch(s, m);
            self.pivots[i].solve_into(rhs.view(), &mut yi);
            y.push(yi);
            ws.recycle(rhs);
        }
        // Backward: x_i = ỹ_i − (D̃_i⁻¹·U_i)·x_{i+1}.
        let mut x = ZMat::zeros(nb * s, m);
        x.set_block((nb - 1) * s, 0, &y[nb - 1]);
        for i in (0..nb - 1).rev() {
            let corr = ws.matmul_op_view(
                self.dinv_upper[i].view(),
                qtx_linalg::Op::None,
                x.block_view((i + 1) * s, 0, s, m),
                qtx_linalg::Op::None,
            );
            y[i].axpy(-Complex64::ONE, &corr);
            ws.recycle(corr);
            x.set_block(i * s, 0, &y[i]);
        }
        for yi in y {
            ws.recycle(yi);
        }
        x
    }

    /// Returns every buffer the factorization adopted — pivot blocks,
    /// `D̃⁻¹·U` panels and the sub-diagonal copies — to the pool, so a
    /// factor/solve loop over energy points reaches a zero-allocation
    /// steady state.
    pub fn recycle_into(self, ws: &Workspace) {
        for f in self.pivots {
            f.recycle_into(ws);
        }
        for m in self.dinv_upper.into_iter().chain(self.lower) {
            ws.recycle(m);
        }
    }
}

/// One-shot baseline solve of Eq. 5.
pub fn btd_lu_solve(sys: &ObcSystem) -> SolveOutcome<ZMat> {
    btd_lu_solve_ws(sys, &Workspace::new())
}

/// One-shot baseline solve of Eq. 5 over a shared workspace.
pub fn btd_lu_solve_ws(sys: &ObcSystem, ws: &Workspace) -> SolveOutcome<ZMat> {
    let f = btd_lu_factor_ws(&sys.a, &sys.sigma_l.dense(), &sys.sigma_r.dense(), ws)?;
    let x = f.solve_ws(&sys.b_dense(), ws);
    f.recycle_into(ws);
    let bad = x.non_finite_count();
    if bad > 0 {
        return Err(SolveError::NonFinite { solver: "btd-lu", count: bad });
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_linalg::{c64, zgesv};

    fn random_system(nb: usize, s: usize, m: usize, seed: u64) -> ObcSystem {
        let mut a = Btd::zeros(nb, s);
        for i in 0..nb {
            a.diag[i] = ZMat::random(s, s, seed + i as u64);
            for d in 0..s {
                a.diag[i][(d, d)] += c64(4.0, 1.0);
            }
        }
        for i in 0..nb - 1 {
            a.upper[i] = ZMat::random(s, s, seed + 50 + i as u64).scaled(c64(0.4, 0.0));
            a.lower[i] = ZMat::random(s, s, seed + 90 + i as u64).scaled(c64(0.4, 0.0));
        }
        ObcSystem {
            a,
            sigma_l: ZMat::random(s, s, seed + 130).scaled(c64(0.2, 0.1)).into(),
            sigma_r: ZMat::random(s, s, seed + 131).scaled(c64(0.2, -0.2)).into(),
            rhs_top: ZMat::random(s, m, seed + 150),
            rhs_bottom: ZMat::random(s, m, seed + 151),
        }
    }

    #[test]
    fn matches_dense_solver() {
        let sys = random_system(6, 3, 2, 41);
        let x_ref = zgesv(&sys.t_dense(), &sys.b_dense()).unwrap();
        let x = btd_lu_solve(&sys).unwrap();
        assert!(x.max_diff(&x_ref) < 1e-9);
    }

    #[test]
    fn factors_are_reusable_across_rhs() {
        let sys = random_system(5, 2, 1, 43);
        let f = btd_lu_factor(&sys.a, &sys.sigma_l.dense(), &sys.sigma_r.dense()).unwrap();
        let b1 = sys.b_dense();
        let b2 = ZMat::random(sys.dim(), 3, 99);
        let x1 = f.solve(&b1);
        let x2 = f.solve(&b2);
        assert!(x1.max_diff(&zgesv(&sys.t_dense(), &b1).unwrap()) < 1e-9);
        assert!(x2.max_diff(&zgesv(&sys.t_dense(), &b2).unwrap()) < 1e-9);
    }

    #[test]
    fn two_block_system() {
        let sys = random_system(2, 4, 2, 47);
        let x = btd_lu_solve(&sys).unwrap();
        assert!(sys.residual(&x) < 1e-9);
    }
}
