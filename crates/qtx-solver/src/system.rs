//! The open-boundary linear system `T·x = b` of Eq. 5 and Fig. 4.

use qtx_linalg::ZMat;
use qtx_sparse::{Btd, CompressedSigma};

/// `T·x = Inj` with `T = A − B·C`:
///
/// * `a` — the block tri-diagonal `E·S − H` *before* boundary terms;
/// * `sigma_l`/`sigma_r` — the boundary self-energies subtracted from the
///   first/last diagonal blocks (the low-rank `B·C` product of §3.B with
///   `B` holding identity sub-blocks and `C` the self-energies). They
///   travel as [`CompressedSigma`] so a cache-served truncated `U·Vᴴ`
///   factorization flows into the solvers without a dense round-trip;
///   dense callers convert with `.into()`.
/// * `rhs_top`/`rhs_bottom` — injection columns living in the first/last
///   block rows only.
#[derive(Debug, Clone)]
pub struct ObcSystem {
    /// Block tri-diagonal bulk matrix `A = E·S − H`.
    pub a: Btd,
    /// Left boundary self-energy (`s × s`, `s` = block size).
    pub sigma_l: CompressedSigma,
    /// Right boundary self-energy.
    pub sigma_r: CompressedSigma,
    /// Left-injected right-hand-side columns (`s × m_L`).
    pub rhs_top: ZMat,
    /// Right-injected right-hand-side columns (`s × m_R`).
    pub rhs_bottom: ZMat,
}

impl ObcSystem {
    /// Block size `s`.
    pub fn block_size(&self) -> usize {
        self.a.block_size()
    }

    /// Number of diagonal blocks `n_B`.
    pub fn num_blocks(&self) -> usize {
        self.a.num_blocks()
    }

    /// Total dimension `N_SS`.
    pub fn dim(&self) -> usize {
        self.a.dim()
    }

    /// Total right-hand-side columns.
    pub fn num_rhs(&self) -> usize {
        self.rhs_top.cols() + self.rhs_bottom.cols()
    }

    /// The full matrix `T = A − BC` densified (small tests only).
    pub fn t_dense(&self) -> ZMat {
        let mut t = self.a.to_dense();
        let s = self.block_size();
        let n = self.dim();
        let sl = self.sigma_l.dense();
        let sr = self.sigma_r.dense();
        for i in 0..s {
            for j in 0..s {
                let tl = t[(i, j)];
                t[(i, j)] = tl - sl[(i, j)];
                let br = t[(n - s + i, n - s + j)];
                t[(n - s + i, n - s + j)] = br - sr[(i, j)];
            }
        }
        t
    }

    /// The dense right-hand side with the Fig. 4 sparsity (top block rows
    /// carry left-injection columns, bottom rows right-injection columns).
    pub fn b_dense(&self) -> ZMat {
        let s = self.block_size();
        let n = self.dim();
        let m = self.num_rhs();
        let mut b = ZMat::zeros(n, m);
        b.set_block(0, 0, &self.rhs_top);
        b.set_block(n - s, self.rhs_top.cols(), &self.rhs_bottom);
        b
    }

    /// Stacked boundary blocks `b' = [b_top; b_bottom]` (`2s × m`) — the
    /// compressed RHS Steps 2–4 operate on.
    pub fn b_prime(&self) -> ZMat {
        let mut bp = ZMat::zeros(2 * self.block_size(), self.num_rhs());
        self.b_prime_into(&mut bp);
        bp
    }

    /// Writes `b'` into a caller-provided (zeroed) `2s × m` matrix — the
    /// single place encoding the boundary-RHS layout (left-injected
    /// columns first, right-injected columns at offset `rhs_top.cols()`).
    pub fn b_prime_into(&self, bp: &mut ZMat) {
        let s = self.block_size();
        assert_eq!((bp.rows(), bp.cols()), (2 * s, self.num_rhs()), "b_prime shape");
        bp.set_block(0, 0, &self.rhs_top);
        bp.set_block(s, self.rhs_top.cols(), &self.rhs_bottom);
    }

    /// Residual `‖T·x − b‖_max` of a candidate solution (dense check).
    pub fn residual(&self, x: &ZMat) -> f64 {
        let t = self.t_dense();
        let b = self.b_dense();
        (&(&t * x) - &b).norm_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_linalg::{c64, Complex64};

    pub fn random_system(nb: usize, s: usize, m: usize, seed: u64) -> ObcSystem {
        let mut a = Btd::zeros(nb, s);
        for i in 0..nb {
            a.diag[i] = ZMat::random(s, s, seed + i as u64);
            for d in 0..s {
                a.diag[i][(d, d)] += c64(3.0 + s as f64, 1.0);
            }
        }
        for i in 0..nb - 1 {
            a.upper[i] = ZMat::random(s, s, seed + 100 + i as u64).scaled(c64(0.4, 0.0));
            a.lower[i] = ZMat::random(s, s, seed + 200 + i as u64).scaled(c64(0.4, 0.0));
        }
        ObcSystem {
            a,
            sigma_l: ZMat::random(s, s, seed + 300).scaled(c64(0.3, 0.1)).into(),
            sigma_r: ZMat::random(s, s, seed + 301).scaled(c64(0.3, -0.1)).into(),
            rhs_top: ZMat::random(s, m, seed + 400),
            rhs_bottom: ZMat::random(s, m, seed + 401),
        }
    }

    #[test]
    fn dense_forms_are_consistent() {
        let sys = random_system(4, 3, 2, 9);
        let t = sys.t_dense();
        // Corners carry −Σ.
        let d0 = sys.a.diag[0].clone();
        assert!((t[(0, 0)] - (d0[(0, 0)] - sys.sigma_l.probe())).abs() < 1e-14);
        let b = sys.b_dense();
        assert_eq!(b.cols(), 4);
        // Middle block rows of b are zero (Fig. 4).
        for i in 3..9 {
            for j in 0..4 {
                assert_eq!(b[(i, j)], Complex64::ZERO);
            }
        }
    }

    #[test]
    fn b_prime_stacks_boundary_blocks() {
        let sys = random_system(3, 2, 1, 11);
        let bp = sys.b_prime();
        assert_eq!((bp.rows(), bp.cols()), (4, 2));
        assert_eq!(bp[(0, 0)], sys.rhs_top[(0, 0)]);
        assert_eq!(bp[(2, 1)], sys.rhs_bottom[(0, 0)]);
    }
}
