//! # qtx-solver — SplitSolve and the direct-solver baselines (§3.B)
//!
//! Solves the Schrödinger equation with open boundary conditions,
//! `T·x = (E·S − H − Σ^RB)·x = Inj` (Eq. 5), exploiting its structure:
//! block tri-diagonal `A = E·S − H`, low-rank boundary corners
//! `Σ^RB = B·C`, and a right-hand side with non-zeros only in the top and
//! bottom block rows (Fig. 4).
//!
//! * [`splitsolve`] — the paper's contribution: Sherman–Morrison–Woodbury
//!   decoupling of the OBCs from the big solve (Steps 1–4), the RGF block
//!   column inversion of Algorithm 1, and the SPIKE-style recursive
//!   partition merge of Fig. 6, all accounted on the virtual accelerators
//!   of `qtx-accel`.
//! * [`btd_lu`] — a MUMPS-like block tri-diagonal direct factorization,
//!   the sparse-direct baseline of Fig. 8.
//! * [`bcr`] — block cyclic reduction, OMEN's legacy tight-binding solver
//!   (ref. [33]).
//! * [`rgf`] — the recursive Green's function reference used for NEGF
//!   cross-checks (transmission via the Caroli formula in `qtx-core`).
//!
//! ## Scratch reuse
//!
//! Every solver comes in two flavors: the original entry point (which
//! allocates a private scratch pool per call) and a `*_ws` variant taking
//! a shared [`Workspace`]. Callers that loop — energy sweeps, SCF
//! iterations, bias points — should hold one `Workspace` and pass it down
//! so the per-block temporaries of RGF/SplitSolve/block-Thomas recycle
//! instead of churning the allocator. Solver results are identical either
//! way (a property test asserts fresh-vs-recycled equality).

pub mod bcr;
pub mod btd_lu;
pub mod error;
pub mod rgf;
pub mod splitsolve;
pub mod system;

pub use bcr::bcr_solve;
pub use btd_lu::{btd_lu_factor, btd_lu_solve, btd_lu_solve_ws, BtdLuFactors};
pub use error::{SolveError, SolveOutcome};
pub use rgf::{
    rgf_boundary, rgf_boundary_ws, rgf_diagonal_and_corner, rgf_diagonal_and_corner_ws,
    RgfBoundary, RgfResult,
};
pub use splitsolve::{SplitSolve, SplitSolveReport};
pub use system::ObcSystem;
// The buffer pool itself lives in `qtx-linalg` (so the OBC layer can use
// it too); re-exported here because the solver hot paths are its home.
pub use qtx_linalg::Workspace;

/// Which solver handles Eq. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// SplitSolve on `p` accelerator partitions (power of two).
    SplitSolve {
        /// Number of horizontal partitions (Fig. 6's `p/2`).
        partitions: usize,
    },
    /// MUMPS-like block tri-diagonal LU.
    BtdLu,
    /// Block cyclic reduction.
    Bcr,
}
