//! Typed solver failure taxonomy.
//!
//! Interior-solve failures are rarer than OBC failures (the bulk blocks
//! are diagonally dominant away from resonances) but when they happen the
//! escalation ladder needs to know *which* solver failed and whether the
//! output silently went non-finite — a NaN block propagated through an
//! RGF sweep poisons every downstream observable without any factorization
//! ever erroring.

use qtx_linalg::LinalgError;

/// What went wrong while solving Eq. 5.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// Underlying dense factorization/solve failure (the `LinalgError`
    /// context chain records the kernel and operand shape).
    Linalg(LinalgError),
    /// The finished solution of `solver` contained `count` NaN/Inf
    /// entries.
    NonFinite { solver: &'static str, count: usize },
    /// A deterministic injected fault at a solver chokepoint.
    Injected { site: &'static str },
}

impl SolveError {
    /// True when the root cause is a deterministic injected fault.
    pub fn is_injected(&self) -> bool {
        match self {
            SolveError::Linalg(e) => e.is_injected(),
            SolveError::Injected { .. } => true,
            SolveError::NonFinite { .. } => false,
        }
    }
}

impl From<LinalgError> for SolveError {
    fn from(e: LinalgError) -> Self {
        SolveError::Linalg(e)
    }
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Linalg(e) => write!(f, "{e}"),
            SolveError::NonFinite { solver, count } => {
                write!(f, "{solver} solution has {count} non-finite entries")
            }
            SolveError::Injected { site } => write!(f, "fault injected at site {site:?}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Result alias for solver entry points.
pub type SolveOutcome<T> = std::result::Result<T, SolveError>;
