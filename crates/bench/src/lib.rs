//! # qtx-bench — reproduction harness
//!
//! One binary per paper table/figure (`repro_*`) plus criterion benches.
//! See `EXPERIMENTS.md` for the paper-vs-measured record. Shared helpers
//! live here.

pub mod harness;

pub use harness::{print_table, Row};
