//! Fig. 6: SplitSolve on p accelerators — partition-local RGF sweeps
//! (phases P1–P4), recursive SPIKE merges, then the post-processing once
//! Σ^RB and Inj arrive. Runs a real solve on 4 virtual devices and prints
//! the recorded kernel timeline (the Fig. 12(b)-style view of Fig. 6).

use qtx_accel::{AccelRuntime, GpuSpec, TraceSummary};
use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_bench::{print_table, Row};
use qtx_core::{Device, PointPolicy, TransportEngine};
use qtx_solver::SolverKind;

fn main() {
    let spec = DeviceBuilder::nanowire(1.0).cells(16).basis(BasisKind::TightBinding).build();
    let mut dev = Device::build(spec).expect("device");
    dev.config.solver = SolverKind::SplitSolve { partitions: 2 };
    let dk = dev.at_kz(0.0);
    let e = dk.lead_l.dispersive_energy(1.0, 0.2, 0.3).expect("band");
    let rt = AccelRuntime::new(4, GpuSpec::k20x());
    let r = TransportEngine::new(dev)
        .solve_point(e, 0.0, &PointPolicy::direct().with_runtime(&rt))
        .into_result()
        .expect("solve");
    println!(
        "device: {} blocks of size {}, T(E) = {:.4}",
        dk.h.num_blocks(),
        dk.h.block_size(),
        r.transmission
    );

    let records = rt.traces();
    println!(
        "\nvirtual GPU activity (2 partitions x 2 accelerators, phases P1-P4 + merge + post):"
    );
    println!("{}", TraceSummary::activity_chart(&records, 4, 64));
    let summary = TraceSummary::from_records(&records);
    let rows: Vec<Row> = summary
        .rows
        .iter()
        .map(|(label, secs, flops, bytes, count)| {
            Row::new(
                label.clone(),
                vec![*secs * 1e3, *flops as f64 / 1e6, *bytes as f64 / 1024.0, *count as f64],
            )
        })
        .collect();
    print_table(
        "Fig. 6 — kernel breakdown of one SplitSolve energy point",
        &["kernel", "virtual ms", "MFLOP", "KiB moved", "calls"],
        &rows,
    );
    println!("\nmakespan: {:.3} virtual ms on 4 accelerators", rt.max_clock() * 1e3);
    println!("paper: each partition is processed by two accelerators with perfect parallelism;");
    println!("merges are recursive with logarithmically many constant-cost steps");
}
