//! Fig. 7: SplitSolve weak and strong scaling on Piz Daint.
//!
//! (a) weak: 2560 atoms per GPU (N_SS = N_GPU × 30 720); the efficiency
//!     drop comes from the extra spike computations (~10 s per recursive
//!     merge level, 30 s on 2 GPUs → 70 s on 32).
//! (b) strong: 10 240 atoms (N_SS = 122 880) — the largest structure two
//!     GPUs can hold, too little work for ≥ 8 GPUs.
//!
//! Also runs a real downscaled weak/strong scaling with the actual
//! SplitSolve kernels on virtual accelerators to show the same shape.

use qtx_accel::{AccelRuntime, GpuSpec};
use qtx_bench::{print_table, Row};
use qtx_linalg::{c64, ZMat};
use qtx_machine::{fig7_strong, fig7_weak};
use qtx_solver::{ObcSystem, SplitSolve};
use qtx_sparse::Btd;

fn model_tables() {
    let weak = fig7_weak(&[2, 4, 8, 16, 32]);
    let rows: Vec<Row> = weak
        .iter()
        .map(|r| Row::new(format!("{} GPUs", r.nodes), vec![r.time_s, r.efficiency_pct]))
        .collect();
    print_table(
        "Fig. 7(a) — weak scaling (model, paper: 30 s -> 70 s)",
        &["config", "time (s)", "eff (%)"],
        &rows,
    );

    let strong = fig7_strong(&[2, 4, 8, 16]);
    let rows: Vec<Row> = strong
        .iter()
        .map(|r| Row::new(format!("{} GPUs", r.nodes), vec![r.time_s, r.efficiency_pct]))
        .collect();
    print_table("Fig. 7(b) — strong scaling (model)", &["config", "time (s)", "eff (%)"], &rows);
}

fn real_downscaled() {
    // Real kernels, virtual clocks: weak scaling with 4 blocks per
    // partition, block size 48.
    let s = 48;
    println!("\nreal downscaled weak scaling (block {s}, 4 blocks/partition):");
    let mut rows = Vec::new();
    for p in [1usize, 2, 4] {
        let nb = 4 * p;
        let mut a = Btd::zeros(nb, s);
        for i in 0..nb {
            a.diag[i] = ZMat::random(s, s, 10 + i as u64);
            for d in 0..s {
                a.diag[i][(d, d)] += c64(8.0, 1.0);
            }
        }
        for i in 0..nb - 1 {
            a.upper[i] = ZMat::random(s, s, 50 + i as u64).scaled(c64(0.3, 0.0));
            a.lower[i] = ZMat::random(s, s, 90 + i as u64).scaled(c64(0.3, 0.0));
        }
        let sys = ObcSystem {
            a,
            sigma_l: ZMat::random(s, s, 400).scaled(c64(0.2, 0.1)).into(),
            sigma_r: ZMat::random(s, s, 401).scaled(c64(0.2, -0.1)).into(),
            rhs_top: ZMat::random(s, 4, 402),
            rhs_bottom: ZMat::random(s, 4, 403),
        };
        let rt = AccelRuntime::new(2 * p, GpuSpec::k20x());
        let (_, report) = SplitSolve::new(p).solve(&sys, Some(&rt)).expect("solve");
        rows.push(Row::new(
            format!("{} GPUs ({} partitions)", 2 * p, p),
            vec![
                report.virtual_seconds * 1e3,
                report.spike_levels as f64,
                report.flops as f64 / 1e6,
            ],
        ));
    }
    print_table(
        "real kernels on virtual GPUs (weak)",
        &["config", "virtual ms", "spike levels", "MFLOP"],
        &rows,
    );
}

fn main() {
    model_tables();
    real_downscaled();
    println!("\npaper: weak efficiency drops with the spike levels; strong scaling saturates");
}
