//! Emits `BENCH_sparse.json`: matrix-byte footprint and ms per energy
//! point of the three transmission routes — dense staging (`t_dense` +
//! `zgesv`, the pre-sparsity layout), BTD-native full RGF, and the
//! boundary-block-only RGF variant — at two device lengths.
//!
//! The gated ratios are the footprint speedups (dense peak bytes over
//! BTD / boundary peak bytes), which are allocation counts and therefore
//! deterministic; the wall-clock rows are emitted `"optional": true` so
//! a narrow CI runner gates them when present without owing the kind
//! coverage. All three routes compute the same Caroli trace on the same
//! systems and are cross-checked in-process before anything is written.
//! Run with `cargo run --release -p qtx-bench --bin bench_sparse_json
//! [output-path] [--quick]`; `--quick` keeps the short device only.

use qtx_bench::{print_table, Row};
use qtx_linalg::{c64, gemm, zgesv, Complex64, Op, ZMat};
use qtx_solver::{rgf_boundary_ws, rgf_diagonal_and_corner_ws, ObcSystem, Workspace};
use qtx_sparse::{btd_stats, dense_matrix_bytes, peak_matrix_bytes, reset_peak_matrix_bytes, Btd};
use std::fmt::Write as _;
use std::time::Instant;

/// Diagonally dominant random BTD system with dense boundary Σ — the
/// same shape the LU bench times, so the ms/pt rows are comparable.
fn random_system(nb: usize, s: usize, m: usize, seed: u64) -> ObcSystem {
    let mut a = Btd::zeros(nb, s);
    for i in 0..nb {
        a.diag[i] = ZMat::random(s, s, seed + i as u64);
        for d in 0..s {
            a.diag[i][(d, d)] += c64(4.0 + s as f64, 1.0);
        }
    }
    for i in 0..nb - 1 {
        a.upper[i] = ZMat::random(s, s, seed + 100 + i as u64).scaled(c64(0.4, 0.0));
        a.lower[i] = ZMat::random(s, s, seed + 200 + i as u64).scaled(c64(0.4, 0.0));
    }
    ObcSystem {
        a,
        sigma_l: ZMat::random(s, s, seed + 300).scaled(c64(0.3, 0.1)).into(),
        sigma_r: ZMat::random(s, s, seed + 301).scaled(c64(0.3, -0.1)).into(),
        rhs_top: ZMat::random(s, m, seed + 400),
        rhs_bottom: ZMat::random(s, m, seed + 401),
    }
}

fn median_secs(mut f: impl FnMut(), reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples[samples.len() / 2]
}

/// `Γ = i(Σ − Σᴴ)` of a boundary self-energy.
fn gamma_of(sigma: &ZMat) -> ZMat {
    &sigma.scaled(Complex64::I) - &sigma.adjoint().scaled(Complex64::I)
}

/// Caroli trace `T = Tr[Γ_L · G_{0,n−1} · Γ_R · G_{0,n−1}ᴴ]` from the
/// corner Green's block.
fn caroli_of_corner(corner: &ZMat, gamma_l: &ZMat, gamma_r: &ZMat) -> f64 {
    let s = corner.rows();
    let mut ggr = ZMat::zeros(s, s);
    gemm(Complex64::ONE, corner, Op::None, gamma_r, Op::None, Complex64::ZERO, &mut ggr);
    let mut sandwich = ZMat::zeros(s, s);
    gemm(Complex64::ONE, &ggr, Op::None, corner, Op::Adjoint, Complex64::ZERO, &mut sandwich);
    let mut full = ZMat::zeros(s, s);
    gemm(Complex64::ONE, gamma_l, Op::None, &sandwich, Op::None, Complex64::ZERO, &mut full);
    (0..s).map(|i| full[(i, i)].re).sum()
}

/// The retired layout: stage `A` densely, factor it, and read the corner
/// block of `A⁻¹` from an `n × s` identity-column solve. Peaks at
/// `O(n²)` bytes by construction.
fn dense_route(sys: &ObcSystem, gamma_l: &ZMat, gamma_r: &ZMat) -> f64 {
    let (n, s) = (sys.dim(), sys.block_size());
    let t = sys.t_dense();
    let mut e_last = ZMat::zeros(n, s);
    for j in 0..s {
        e_last[(n - s + j, j)] = Complex64::ONE;
    }
    let x = zgesv(&t, &e_last).expect("dense staging solve");
    let mut corner = ZMat::zeros(s, s);
    for i in 0..s {
        for j in 0..s {
            corner[(i, j)] = x[(i, j)];
        }
    }
    caroli_of_corner(&corner, gamma_l, gamma_r)
}

fn btd_route(sys: &ObcSystem, gamma_l: &ZMat, gamma_r: &ZMat, ws: &Workspace) -> f64 {
    let g = rgf_diagonal_and_corner_ws(sys, ws).expect("full RGF");
    caroli_of_corner(&g.corner, gamma_l, gamma_r)
}

fn boundary_route(sys: &ObcSystem, gamma_l: &ZMat, gamma_r: &ZMat, ws: &Workspace) -> f64 {
    let g = rgf_boundary_ws(sys, ws).expect("boundary RGF");
    caroli_of_corner(&g.corner, gamma_l, gamma_r)
}

/// Peak matrix bytes of one warm run of `f` (warm-up pass first so the
/// measurement sees steady-state pools, not cold-start allocation).
fn peak_of(mut f: impl FnMut()) -> usize {
    f();
    reset_peak_matrix_bytes();
    f();
    peak_matrix_bytes()
}

fn main() {
    let mut out_path = "BENCH_sparse.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Two device lengths at a fixed block size: the footprint ratio must
    // widen with `nb` (dense is n², the sparse routes are bandwidth·n).
    // The quick CI profile keeps the short device — a strict subset of
    // the committed baseline, so check_bench skips the long entries.
    let configs: &[(usize, usize)] = if quick { &[(16, 16)] } else { &[(16, 16), (64, 16)] };
    let reps = if quick { 3 } else { 5 };

    let mut entries = String::new();
    let mut rows = Vec::new();

    for &(nb, s) in configs {
        let sys = random_system(nb, s, 1, 40 + nb as u64);
        let gamma_l = gamma_of(&sys.sigma_l.dense());
        let gamma_r = gamma_of(&sys.sigma_r.dense());

        // Cross-check the three routes on this system before timing:
        // boundary and full RGF share the forward pass (bit-identical
        // corners); dense agrees to factorization roundoff.
        let ws = Workspace::new();
        let t_dense_val = dense_route(&sys, &gamma_l, &gamma_r);
        let t_btd_val = btd_route(&sys, &gamma_l, &gamma_r, &ws);
        let t_bnd_val = boundary_route(&sys, &gamma_l, &gamma_r, &ws);
        assert_eq!(t_bnd_val, t_btd_val, "boundary corner drifted from full RGF at nb={nb}");
        let scale = t_dense_val.abs().max(1.0);
        assert!(
            (t_dense_val - t_btd_val).abs() < 1e-8 * scale,
            "dense vs BTD Caroli mismatch at nb={nb}: {t_dense_val} vs {t_btd_val}"
        );

        // ── Footprint: peak matrix bytes of one warm solve per route ──
        let dense_peak = peak_of(|| {
            dense_route(&sys, &gamma_l, &gamma_r);
        });
        let ws_btd = Workspace::new();
        let btd_peak = peak_of(|| {
            btd_route(&sys, &gamma_l, &gamma_r, &ws_btd);
        });
        let ws_bnd = Workspace::new();
        let bnd_peak = peak_of(|| {
            boundary_route(&sys, &gamma_l, &gamma_r, &ws_bnd);
        });
        let stored = btd_stats(&sys.a);
        let fp_btd = dense_peak as f64 / btd_peak as f64;
        let fp_bnd = dense_peak as f64 / bnd_peak as f64;
        let _ = writeln!(
            entries,
            "    {{\"kind\": \"footprint\", \"nb\": {nb}, \"s\": {s}, \
             \"dense_matrix_bytes\": {}, \"btd_stored_bytes\": {}, \
             \"dense_peak_bytes\": {dense_peak}, \"btd_peak_bytes\": {btd_peak}, \
             \"boundary_peak_bytes\": {bnd_peak}, \
             \"footprint_speedup_btd_vs_dense\": {fp_btd:.3}, \
             \"footprint_speedup_boundary_vs_dense\": {fp_bnd:.3}}},",
            dense_matrix_bytes(sys.dim()),
            stored.bytes,
        );

        // ── Latency: warm ms per energy point per route ──
        let dense_ms = median_secs(
            || {
                dense_route(&sys, &gamma_l, &gamma_r);
            },
            reps,
        ) * 1e3;
        let btd_ms = median_secs(
            || {
                btd_route(&sys, &gamma_l, &gamma_r, &ws_btd);
            },
            reps,
        ) * 1e3;
        let bnd_ms = median_secs(
            || {
                boundary_route(&sys, &gamma_l, &gamma_r, &ws_bnd);
            },
            reps,
        ) * 1e3;
        let _ = writeln!(
            entries,
            "    {{\"kind\": \"latency\", \"nb\": {nb}, \"s\": {s}, \"optional\": true, \
             \"dense_ms_per_point\": {dense_ms:.4}, \"btd_ms_per_point\": {btd_ms:.4}, \
             \"boundary_ms_per_point\": {bnd_ms:.4}, \
             \"time_speedup_btd_vs_dense\": {:.3}, \
             \"time_speedup_boundary_vs_dense\": {:.3}}},",
            dense_ms / btd_ms,
            dense_ms / bnd_ms,
        );

        let mb = 1.0 / (1024.0 * 1024.0);
        rows.push(Row::new(
            format!("dense nb={nb} s={s}"),
            vec![dense_peak as f64 * mb, dense_ms, 1.0],
        ));
        rows.push(Row::new(
            format!("btd nb={nb} s={s}"),
            vec![btd_peak as f64 * mb, btd_ms, dense_ms / btd_ms],
        ));
        rows.push(Row::new(
            format!("boundary nb={nb} s={s}"),
            vec![bnd_peak as f64 * mb, bnd_ms, dense_ms / bnd_ms],
        ));
    }

    let entries = entries.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        "{{\n  \"bench\": \"sparsity end-to-end: dense staging vs BTD RGF vs boundary-only\",\n  \
         \"cores\": {cores},\n  \"target_cpu\": \"native\",\n  \"quick\": {quick},\n  \
         \"flags_note\": \"footprint speedups are peak matrix-byte ratios (deterministic, \
         allocation-counter based); latency rows are warm ms/pt on the same systems and are \
         optional for narrow runners\",\n  \"results\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sparse.json");
    print_table(
        "Sparsity: dense staging vs BTD vs boundary-only",
        &["route", "peak MB", "ms/pt", "vs dense x"],
        &rows,
    );
    println!("\nwrote {out_path}");
}
