//! Fig. 10: electron distribution (a), current map (b) and spectral
//! current (c) of a gate-all-around Si nanowire FET at one bias point.
//!
//! Paper: d = 3.2 nm, Lg = 64.3 nm, 55 488 atoms, Vds = 0.6 V, Id = 1.5 µA.
//! Downscaled wire, same pipeline: SCF potential, energy sweep, then the
//! occupied-state sums for n(x), J(x) and j(E, x).

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_bench::{print_table, Row};
use qtx_core::observables::{accumulate, spectral_map};
use qtx_core::{landauer_current_ua, schrodinger_poisson, Device, EnergyGrid, ScfConfig};
use qtx_core::{PointPolicy, TransportEngine};

fn main() {
    let spec = DeviceBuilder::nanowire(0.8).cells(10).basis(BasisKind::TightBinding).build();
    let mut dev = Device::build(spec).expect("device");
    let dk0 = dev.at_kz(0.0);
    let edge = dk0.lead_l.dispersive_band_min(0.1, 0.3).expect("edge");
    dev.config.mu_l = edge + 0.10;
    let vds = 0.3;
    let cfg = ScfConfig {
        max_iter: 8,
        n_energy: 20,
        vd: vds,
        vg: 0.2,
        gate_window: (0.3, 0.7),
        ..ScfConfig::default()
    };
    let scf = schrodinger_poisson(&mut dev, &cfg).expect("SCF");
    println!(
        "bias point: Vds = {vds} V, Vg = {} V; SCF {} iterations (residual {:.1e} V)",
        cfg.vg, scf.iterations, scf.residual
    );

    // Energy sweep for the maps.
    let dk = dev.at_kz(0.0);
    let (lo, hi) = dev.fermi_window(8.0);
    let (blo, bhi) = dk.lead_l.band_window(24);
    let grid = EnergyGrid::uniform(lo.max(blo), hi.min(bhi), 24);
    let engine = TransportEngine::new(dev.clone());
    let points: Vec<_> = grid
        .points
        .iter()
        .map(|&e| engine.solve_point(e, 0.0, &PointPolicy::direct()).into_result().expect("point"))
        .collect();
    let de = grid.points[1] - grid.points[0];
    let weights = vec![de; points.len()];
    let cc = accumulate(
        &dk,
        &points,
        &weights,
        dev.config.mu_l,
        dev.config.mu_r,
        dev.config.temperature,
    );

    // (a) electron distribution along the wire.
    let rows: Vec<Row> = cc
        .density
        .iter()
        .enumerate()
        .map(|(q, n)| Row::new(format!("slab {q}"), vec![*n, scf.potential[q]]))
        .collect();
    print_table("Fig. 10(a) — electron distribution", &["position", "n(x)", "U(x) eV"], &rows);

    // (b) current map: bond currents (conserved along x).
    let rows: Vec<Row> = cc
        .bond_current
        .iter()
        .enumerate()
        .map(|(q, j)| Row::new(format!("slab {q}->{}", q + 1), vec![*j]))
        .collect();
    print_table("Fig. 10(b) — current map", &["segment", "J(x)"], &rows);
    let jmax = cc.bond_current.iter().cloned().fold(f64::MIN, f64::max);
    let jmin = cc.bond_current.iter().cloned().fold(f64::MAX, f64::min);
    println!("current conservation: max deviation {:.2e}", (jmax - jmin).abs());

    // (c) spectral current (energy-resolved, coarse ASCII heat map).
    let sm = spectral_map(&dk, &points, dev.config.mu_l, dev.config.mu_r, dev.config.temperature);
    println!("\nFig. 10(c) — spectral current j(E, x):  (rows: E, cols: x; '#' = strong)");
    let jpeak =
        sm.current.iter().flat_map(|r| r.iter().map(|v| v.abs())).fold(0.0f64, f64::max).max(1e-12);
    for (ei, row) in sm.current.iter().enumerate().rev() {
        let line: String = row
            .iter()
            .map(|v| match (v.abs() / jpeak * 4.0) as usize {
                0 => ' ',
                1 => '.',
                2 => ':',
                3 => '+',
                _ => '#',
            })
            .collect();
        println!("E={:+.3} |{}|", sm.energies[ei], line);
    }
    let id = landauer_current_ua(
        &scf.spectrum,
        dev.config.mu_l,
        dev.config.mu_r,
        dev.config.temperature,
    );
    println!("\nId = {id:.3} µA (paper device: 1.5 µA at Vds = 0.6 V)");
    assert!((jmax - jmin).abs() < 1e-6 * jmax.abs().max(1e-9), "current must be conserved");
}
