//! Table I: technical specifications of Piz Daint and Titan.

use qtx_bench::{print_table, Row};
use qtx_machine::{PIZ_DAINT, TITAN};

fn main() {
    let rows = vec![
        Row::new("hybrid nodes", vec![PIZ_DAINT.nodes as f64, TITAN.nodes as f64]),
        Row::new(
            "GPUs",
            vec![
                (PIZ_DAINT.nodes * PIZ_DAINT.gpus_per_node) as f64,
                (TITAN.nodes * TITAN.gpus_per_node) as f64,
            ],
        ),
        Row::new("CPU cores", vec![PIZ_DAINT.cores as f64, TITAN.cores as f64]),
        Row::new(
            "CPU GF/s per node",
            vec![PIZ_DAINT.cpu_gflops_per_node, TITAN.cpu_gflops_per_node],
        ),
        Row::new(
            "GPU GF/s per node",
            vec![PIZ_DAINT.gpu_gflops_per_node, TITAN.gpu_gflops_per_node],
        ),
        Row::new("node peak GF/s", vec![PIZ_DAINT.node_peak_gflops(), TITAN.node_peak_gflops()]),
        Row::new(
            "machine peak PF/s",
            vec![PIZ_DAINT.machine_peak_pflops(), TITAN.machine_peak_pflops()],
        ),
    ];
    print_table(
        "Table I — Piz Daint (Cray-XC30) vs Titan (Cray-XK7)",
        &["quantity", "Piz Daint", "Titan"],
        &rows,
    );
    println!("\nGPU model: {} on both machines", PIZ_DAINT.gpu().name);
    println!("CPUs: {} (Piz Daint) / {} (Titan)", PIZ_DAINT.cpu_model, TITAN.cpu_model);
}
