//! Fig. 1(e)/(f): SnO battery anode — volume expansion during lithiation
//! and the electronic current avoiding the central Li-oxide.
//!
//! Paper: measured (Ebner et al., ref. [36]) vs simulated (Pedersen &
//! Luisier, ref. [37]) volume expansion up to C = 1000 mAh/g, and the
//! current map of a lithiated sample where "the current flow through the
//! central Li-oxide is insignificant".

use qtx_atomistic::assemble::assemble_device;
use qtx_atomistic::battery::{lithiate, volume_expansion};
use qtx_atomistic::structure::SNO_LATTICE;
use qtx_atomistic::BasisKind;
use qtx_bench::{print_table, Row};
use qtx_core::engine::{PointPolicy, TransportEngine};
use qtx_core::observables::bond_current_of_state;
use qtx_obc::{LeadBlocks, ObcMethod};

fn main() {
    // --- Fig. 1(e): volume expansion vs capacity -------------------------
    let rows: Vec<Row> = (0..=5)
        .map(|i| {
            let c = i as f64 * 200.0;
            Row::new(format!("C = {c:>5.0} mAh/g"), vec![volume_expansion(c)])
        })
        .collect();
    print_table("Fig. 1(e) — SnO volume expansion", &["capacity", "V/V0"], &rows);
    println!("paper: ~58% expansion at 1000 mAh/g (measured, ref. [36])");

    // --- Fig. 1(f): current through the lithiated anode ------------------
    let (slab, report) = lithiate(10, 1, 900.0, 0.4, 7);
    println!(
        "\nlithiated structure: {} atoms, {} Li, x = {:.2}",
        report.n_atoms, report.n_li, report.li_fraction
    );
    let dm = assemble_device(&slab, BasisKind::TightBinding, SNO_LATTICE).expect("assemble");
    // Leads: pristine SnO end cells.
    let lead = LeadBlocks::new(
        dm.h.diag[0].clone(),
        dm.h.upper[0].clone(),
        dm.s.diag[0].clone(),
        dm.s.upper[0].clone(),
    );
    // Probe at a conducting energy of the SnO contact.
    let e = lead.dispersive_energy(1.0, 0.2, 0.25).expect("conduction band");
    let dk =
        qtx_core::device::DeviceK { lead_l: lead.clone(), lead_r: lead, h: dm.h, s: dm.s, kz: 0.0 };
    let cfg = qtx_core::TransportConfig {
        obc: ObcMethod::ShiftInvert,
        ..qtx_core::TransportConfig::default()
    };
    // The engine owns the folded blocks now; the observable loop below
    // borrows them back from the solved point's system instead.
    let nb = dk.h.num_blocks();
    let engine = TransportEngine::from_device_k(dk, cfg);
    let r = engine.solve_point(e, 0.0, &PointPolicy::direct()).into_result().expect("transport");
    let dk = engine.device_k(0.0).expect("seeded kz");
    let mut rows = Vec::new();
    for q in 0..nb - 1 {
        let j: f64 = (0..r.m_left).map(|col| bond_current_of_state(&dk, e, &r.psi, col, q)).sum();
        rows.push(Row::new(format!("slab {q} -> {}", q + 1), vec![j]));
    }
    print_table("Fig. 1(f) — bond current along the anode", &["segment", "J (units of T)"], &rows);
    println!(
        "\nT(E = {e:.2} eV) through the lithiated region: {:.4} (clean SnO would carry {})",
        r.transmission, r.channels.0
    );
    println!("paper: current through the central Li-oxide is insignificant");
    assert!(r.transmission < 0.5 * r.channels.0 as f64, "lithiation must suppress the current");
}
