//! Emits `BENCH_refine.json`: adaptive energy-grid refinement vs uniform
//! grids at the *same* integrated-current accuracy.
//!
//! The device is a nanowire with a double-barrier potential: the well
//! between the barriers holds a Fabry–Pérot level, so the transmission is
//! a narrow Lorentzian in the middle of the band — the resonance the
//! a-priori subband-edge heuristic of `EnergyGrid` cannot see. The
//! experiment: integrate the Landauer current on a very fine uniform
//! reference grid, find the smallest uniform grid from a 2×-ladder that
//! reproduces it within `eps`, then let [`parallel_sweep_refined`] grow a
//! coarse base grid until it meets the same `eps` — and gate the
//! points-solved ratio. Two accuracy targets ride the gate on the same
//! device: at 1% the uniform ladder already pays for the peak, and at
//! 0.1% the gap widens — uniform resolution is global, refinement is
//! local to the resonance.
//!
//! The gated ratios (`points_speedup_adaptive_vs_uniform`) are counts of
//! solved energy points, not wall-clock measurements, so they are
//! deterministic on any runner; the ms rows are emitted
//! `"optional": true` like the other benches' latency rows. Accuracy and
//! the point advantage are asserted in-process before anything is
//! written. Run with `cargo run --release -p qtx-bench --bin
//! bench_refine_json [output-path] [--quick]`; `--quick` keeps the 1%
//! target only.

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_bench::{print_table, Row};
use qtx_core::{
    landauer_integrate, parallel_sweep_refined, parallel_sweep_resumable, Batching, CacheConfig,
    CachePolicy, Device, RefineConfig, SigmaCache, SweepOptions, SweepPlan, SweepResult,
    CONDUCTANCE_QUANTUM_US,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Nanowire with a double-barrier potential (height `v_barrier` eV on the
/// second and second-to-last slabs): a quantum-dot level between the
/// barriers. 100 K keeps the Fermi window tight around the resonance.
fn resonance_device(cells: usize, v_barrier: f64) -> Device {
    let spec = DeviceBuilder::nanowire(0.8).cells(cells).basis(BasisKind::TightBinding).build();
    let mut d = Device::build(spec).expect("device");
    let mut v = vec![0.0; d.n_slabs];
    v[1] = v_barrier;
    v[d.n_slabs - 2] = v_barrier;
    d.set_potential(&v);
    d.config.temperature = 100.0;
    d
}

fn uniform_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64).collect()
}

fn plan_of(dev: &Device, energies_per_k: Vec<f64>) -> SweepPlan {
    let k_points = dev.kz_points();
    let energies = k_points.iter().map(|_| energies_per_k.clone()).collect();
    SweepPlan { k_points, energies }
}

/// Fresh shared Σ-cache + chunked tasks: the production configuration
/// both contenders run under (a fresh cache per sweep keeps the timing
/// rows honest — neither side inherits the other's warm anchors).
fn sweep_opts() -> SweepOptions {
    SweepOptions::builder()
        .cache(CachePolicy::Shared(Arc::new(SigmaCache::new(CacheConfig::default()))))
        .batching(Batching::Auto)
        .build()
        .expect("sweep options")
}

fn solve(dev: &Device, plan: &SweepPlan) -> SweepResult {
    let res = parallel_sweep_resumable(dev, plan, 1, &sweep_opts()).expect("sweep");
    assert_eq!(res.health.failed, 0, "the bench device must solve every point");
    res
}

/// Argmax-T scan over the band's interior: where the dot level sits.
fn locate_resonance(dev: &Device) -> f64 {
    let dk = dev.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("conduction edge");
    let plan = plan_of(dev, uniform_grid(edge + 0.05, edge + 0.95, 241));
    let res = solve(dev, &plan);
    res.spectrum
        .iter()
        .fold((0.0f64, f64::NEG_INFINITY), |best, &(e, t)| if t > best.1 { (e, t) } else { best })
        .0
}

fn current_ua(dev: &Device, res: &SweepResult) -> f64 {
    let out =
        landauer_integrate(&res.spectrum, dev.config.mu_l, dev.config.mu_r, dev.config.temperature);
    assert_eq!(out.skipped, 0, "the bench device must not drop samples");
    out.current_ua
}

fn uniform_current(dev: &Device, lo: f64, hi: f64, n: usize) -> (f64, usize, f64) {
    let plan = plan_of(dev, uniform_grid(lo, hi, n));
    let t0 = Instant::now();
    let res = solve(dev, &plan);
    let secs = t0.elapsed().as_secs_f64();
    (current_ua(dev, &res), res.records.len(), secs)
}

fn main() {
    let mut out_path = "BENCH_refine.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Accuracy targets (fraction of the reference current). The 1% entry
    // is the quick CI profile — a strict subset of the committed
    // baseline; the 0.1% entry shows the gap widening as the target
    // tightens.
    // The third field is the per-interval tolerance in units of
    // `eps / G0` (the naive "total current budget as transmission·eV"
    // conversion). Signed interval errors cancel heavily, and the
    // cancellation grows as the tolerance loosens, so the knob is
    // calibrated per target for a ~2× accuracy margin.
    let targets: &[(&str, f64, f64)] = if quick {
        &[("eps1pct", 1e-2, 128.0)]
    } else {
        &[("eps1pct", 1e-2, 128.0), ("eps0p1pct", 1e-3, 32.0)]
    };
    const CELLS: usize = 6;
    const V_BARRIER: f64 = 3.0;
    // Base grid the adaptive run starts from, and the 2×-ladder the
    // uniform contender climbs until it meets `eps`.
    const BASE_N: usize = 17;
    const LADDER: &[usize] = &[17, 33, 65, 129, 257, 513, 1025];
    const REF_N: usize = 2049;

    let mut dev = resonance_device(CELLS, V_BARRIER);
    let e_res = locate_resonance(&dev);
    // ±20 mV bias straddling the dot level; the 5·kT Fermi window at
    // 100 K puts the resonance mid-window with decayed tails at both
    // ends, so the window itself is identical for every contender.
    dev.config.mu_l = e_res + 0.02;
    dev.config.mu_r = e_res - 0.02;
    let (lo, hi) = dev.fermi_window(5.0);
    println!("resonance at {e_res:.4} eV, window [{lo:.4}, {hi:.4}]");

    let (i_ref, _, _) = uniform_current(&dev, lo, hi, REF_N);
    println!("reference I = {i_ref:.6} µA on {REF_N} points");
    assert!(i_ref.abs() > 0.0, "reference current vanished");

    // The ladder is shared between the targets: solve rungs on demand,
    // memoize `(err, points, secs)`.
    let mut ladder_runs: Vec<(usize, f64, usize, f64)> = Vec::new();

    let mut entries = String::new();
    let mut rows = Vec::new();

    for &(name, eps_rel, tol_mult) in targets {
        let eps = eps_rel * i_ref.abs();

        // ── Uniform contender: smallest ladder rung within eps ──
        let mut uniform = None;
        for idx in 0..LADDER.len() {
            if idx >= ladder_runs.len() {
                let n = LADDER[idx];
                let (i_n, pts, secs) = uniform_current(&dev, lo, hi, n);
                let err = (i_n - i_ref).abs();
                println!("  uniform n={n}: I={i_n:.6} µA, err={err:.2e}");
                ladder_runs.push((n, err, pts, secs));
            }
            let (_, err, pts, secs) = ladder_runs[idx];
            if err <= eps {
                uniform = Some((pts, err, secs));
                break;
            }
        }
        let (uni_pts, uni_err, uni_secs) =
            uniform.unwrap_or_else(|| panic!("no ladder rung met eps={eps:.3e} for {name}"));

        // ── Adaptive contender: refine the BASE_N-point grid ──
        let base = plan_of(&dev, uniform_grid(lo, hi, BASE_N));
        let cfg = RefineConfig {
            tol: tol_mult * eps / CONDUCTANCE_QUANTUM_US,
            budget: 4 * uni_pts,
            max_rounds: 16,
            min_de: 1e-5,
            // Accuracy-driven only: trouble-flag forcing is a robustness
            // aid, and on a clean device it would just burn budget.
            flag_escalated: false,
        };
        let t0 = Instant::now();
        let refined =
            parallel_sweep_refined(&dev, &base, 1, &sweep_opts(), &cfg).expect("refined sweep");
        let ada_secs = t0.elapsed().as_secs_f64();
        assert!(!refined.truncated, "refinement exhausted its budget for {name}");
        let ada_pts = refined.result.records.len();
        let i_ada = current_ua(&dev, &refined.result);
        let ada_err = (i_ada - i_ref).abs();
        println!(
            "  {name}: eps={eps:.2e} | uniform {uni_pts} pts (err {uni_err:.2e}) vs \
             adaptive {ada_pts} pts (err {ada_err:.2e}, {} rounds, {} inserted)",
            refined.rounds, refined.points_added
        );

        // The headline claims, proven before anything is written: the
        // adaptive run resolves the resonance to the same accuracy with
        // measurably fewer solved points.
        assert!(ada_err <= eps, "adaptive missed eps for {name}: {ada_err:.3e} > {eps:.3e}");
        assert!(
            ada_pts < uni_pts,
            "adaptive solved {ada_pts} points but uniform needed only {uni_pts} for {name}"
        );
        let speedup = uni_pts as f64 / ada_pts as f64;

        let _ = writeln!(
            entries,
            "    {{\"kind\": \"points\", \"name\": \"{name}\", \"nb\": {CELLS}, \
             \"n\": {BASE_N}, \"v_barrier_ev\": {V_BARRIER}, \
             \"i_ref_ua\": {i_ref:.6}, \"eps_ua\": {eps:.6}, \
             \"uniform_points\": {uni_pts}, \"uniform_err_ua\": {uni_err:.6}, \
             \"adaptive_points\": {ada_pts}, \"adaptive_err_ua\": {ada_err:.6}, \
             \"adaptive_rounds\": {}, \
             \"points_speedup_adaptive_vs_uniform\": {speedup:.3}}},",
            refined.rounds,
        );
        let _ = writeln!(
            entries,
            "    {{\"kind\": \"latency\", \"name\": \"{name}\", \"nb\": {CELLS}, \
             \"n\": {BASE_N}, \"optional\": true, \
             \"uniform_ms\": {:.1}, \"adaptive_ms\": {:.1}, \
             \"time_speedup_adaptive_vs_uniform\": {:.3}}},",
            uni_secs * 1e3,
            ada_secs * 1e3,
            uni_secs / ada_secs,
        );

        rows.push(Row::new(
            format!("uniform {name}"),
            vec![uni_pts as f64, uni_err / eps, uni_secs * 1e3, 1.0],
        ));
        rows.push(Row::new(
            format!("adaptive {name}"),
            vec![ada_pts as f64, ada_err / eps, ada_secs * 1e3, speedup],
        ));
    }

    let entries = entries.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        "{{\n  \"bench\": \"adaptive energy-grid refinement vs uniform grids at equal \
         integrated-current accuracy\",\n  \
         \"cores\": {cores},\n  \"target_cpu\": \"native\",\n  \"quick\": {quick},\n  \
         \"flags_note\": \"the gated ratios are solved-point counts at equal accuracy \
         (deterministic); latency rows are single warm-machine wall-clock sweeps and are \
         optional for narrow runners\",\n  \"results\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_refine.json");
    print_table(
        "Adaptive refinement vs uniform grid (equal accuracy)",
        &["contender", "points", "err/eps", "ms", "points x"],
        &rows,
    );
    println!("\nwrote {out_path}");
}
