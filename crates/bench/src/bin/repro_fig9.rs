//! Fig. 9: OMEN's three-level parallelization — momentum (top), energy
//! (middle), spatial domain decomposition (bottom) — demonstrated with
//! real simulated-MPI ranks on a UTB device with a transverse k-grid.

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_bench::{print_table, Row};
use qtx_core::{parallel_sweep, Device, SweepPlan};

fn main() {
    let spec = DeviceBuilder::utb(0.8).cells(8).basis(BasisKind::TightBinding).build();
    let mut dev = Device::build(spec).expect("device");
    dev.config.n_kz = 3;
    let dk = dev.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("edge");
    dev.config.mu_l = edge + 0.15;
    dev.config.mu_r = edge + 0.10;

    let plan = SweepPlan::from_device(&dev, 0.03, 0.08);
    println!("momentum points: {}", plan.k_points.len());
    for (i, es) in plan.energies.iter().enumerate() {
        println!("  k[{i}] = {:.3}: {} energy points", plan.k_points[i].0, es.len());
    }
    let n_ranks = 6;
    let alloc = plan.allocate_ranks(n_ranks);
    println!("dynamic rank allocation over {n_ranks} ranks (ref. [45]): {alloc:?}");

    let result = parallel_sweep(&dev, &plan, n_ranks).expect("sweep");
    let rows: Vec<Row> = result
        .spectrum
        .iter()
        .step_by((result.spectrum.len() / 12).max(1))
        .map(|&(e, t)| Row::new(format!("E = {e:+.3}"), vec![t]))
        .collect();
    print_table(
        "Fig. 9 — k-summed transmission from the 3-level parallel sweep",
        &["energy", "sum_k w_k T(E,k)"],
        &rows,
    );
    println!(
        "\n{} samples over {} ranks; virtual comm time {:.3} ms",
        result.samples.len(),
        n_ranks,
        result.comm_seconds * 1e3
    );
    let h = &result.health;
    println!(
        "health: {} points, {} escalated, {} interpolated, {} failed, \
         {} attempts, {} faults injected, worst residual {:.2e}",
        h.total_points,
        h.escalated,
        h.interpolated,
        h.failed,
        h.attempts,
        h.faults_injected,
        h.worst_residual
    );
    println!(
        "scheduler: {} caught panics, {} retries, {} quarantined, {} stragglers",
        h.panics, h.sched_retries, h.quarantined, h.stragglers
    );
    println!("paper: k and E are almost embarrassingly parallel; the spatial level is SplitSolve");
}
