//! Emits `BENCH_qr.json`: blocked compact-WY Householder QR + blocked
//! Hessenberg reduction vs the unblocked scalar baselines, at the kernel
//! level (zgeqrf square + tall-skinny, least-squares apply, zgehrd).
//!
//! The seed's element-indexed `qr_factor` is reproduced verbatim as the
//! fixed before-this-PR baseline; the in-library `qr_factor_unblocked` is
//! the same algorithm after the column-slice rewrite (and what the
//! blocked factorization dispatches to below the crossover /
//! `force_unblocked_qr`), so the A/B runs in one process on identical
//! inputs. Run with `cargo run --release -p qtx-bench --bin bench_qr_json
//! [output-path] [--quick]`; `--quick` shrinks sizes and repetitions for
//! the CI smoke/regression-gate profile.

use qtx_bench::{print_table, Row};
use qtx_linalg::{
    c64, hessenberg, hessenberg_unblocked, qr_factor, qr_factor_unblocked, Complex64, ZMat,
};
use std::fmt::Write as _;
use std::time::Instant;

fn median_secs(mut f: impl FnMut(), reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples[samples.len() / 2]
}

/// The seed's Householder QR: element-indexed reflector generation and
/// per-column dot/axpy application, reproduced verbatim as the fixed
/// before-this-PR baseline (packed factors + τ, like LAPACK zgeqr2).
fn seed_geqrf(a: &ZMat) -> (ZMat, Vec<Complex64>) {
    let (m, n) = (a.rows(), a.cols());
    let mut p = a.clone();
    let mut tau = vec![Complex64::ZERO; n];
    for k in 0..n {
        let alpha = p[(k, k)];
        let mut xnorm_sq = 0.0;
        for i in k + 1..m {
            xnorm_sq += p[(i, k)].norm_sqr();
        }
        if xnorm_sq == 0.0 && alpha.im == 0.0 {
            tau[k] = Complex64::ZERO;
            continue;
        }
        let beta_mag = (alpha.norm_sqr() + xnorm_sq).sqrt();
        let beta = if alpha.re >= 0.0 { -beta_mag } else { beta_mag };
        let tau_k = c64((beta - alpha.re) / beta, -alpha.im / beta);
        tau[k] = tau_k;
        let scale = (alpha - c64(beta, 0.0)).inv();
        for i in k + 1..m {
            p[(i, k)] *= scale;
        }
        p[(k, k)] = c64(beta, 0.0);
        for j in k + 1..n {
            let mut w = p[(k, j)];
            for i in k + 1..m {
                w += p[(i, k)].conj() * p[(i, j)];
            }
            let f = tau_k.conj() * w;
            p[(k, j)] -= f;
            for i in k + 1..m {
                let vik = p[(i, k)];
                p[(i, j)] -= vik * f;
            }
        }
    }
    (p, tau)
}

fn main() {
    let mut out_path = "BENCH_qr.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sizes: &[usize] = if quick { &[64, 128, 256] } else { &[64, 128, 256, 384, 512] };
    let tall: &[(usize, usize)] = if quick { &[(512, 128)] } else { &[(512, 128), (1024, 256)] };
    let hess_sizes: &[usize] = if quick { &[128] } else { &[128, 256, 384] };

    let mut entries = String::new();
    let mut rows = Vec::new();

    // ── Square zgeqrf + least-squares apply, blocked vs baselines ──
    for &n in sizes {
        let a = ZMat::random(n, n, 1);
        let b = ZMat::random(n, n.min(64), 2);
        let reps = (2048 / n).clamp(3, 31);
        let t_blk = median_secs(|| drop(qr_factor(&a)), reps);
        let t_unb = median_secs(|| drop(qr_factor_unblocked(&a)), reps);
        let t_seed = median_secs(|| drop(seed_geqrf(&a)), reps);
        // Correctness cross-check: both paths reproduce A = Q·R.
        let fb = qr_factor(&a);
        let fu = qr_factor_unblocked(&a);
        let qr_diff = (&fb.q_thin() * &fb.r()).max_diff(&a);
        assert!(qr_diff < 1e-8 * n as f64, "blocked QR drift {qr_diff:.2e} at n = {n}");
        let t_ls_blk = median_secs(|| drop(fb.least_squares(&b)), reps);
        let t_ls_unb = median_secs(|| drop(fu.least_squares(&b)), reps);
        let x_diff = fb.least_squares(&b).max_diff(&fu.least_squares(&b));
        assert!(x_diff < 1e-6 * n as f64, "least-squares mismatch at n = {n}");
        let gflops = 8.0 * ((n * n * n) as f64 - (n * n * n) as f64 / 3.0) / t_blk / 1e9;
        let _ = writeln!(
            entries,
            "    {{\"kind\": \"kernel\", \"n\": {n}, \"nrhs\": {}, \
             \"zgeqrf_blocked_ms\": {:.4}, \"zgeqrf_seed_ms\": {:.4}, \"zgeqrf_speedup\": {:.3}, \
             \"zgeqrf_unblocked_ms\": {:.4}, \"zgeqrf_speedup_vs_tuned_unblocked\": {:.3}, \
             \"zgeqrf_blocked_gflops\": {:.2}, \
             \"least_squares_blocked_ms\": {:.4}, \"least_squares_unblocked_ms\": {:.4}, \
             \"least_squares_speedup\": {:.3}}},",
            b.cols(),
            t_blk * 1e3,
            t_seed * 1e3,
            t_seed / t_blk,
            t_unb * 1e3,
            t_unb / t_blk,
            gflops,
            t_ls_blk * 1e3,
            t_ls_unb * 1e3,
            t_ls_unb / t_ls_blk,
        );
        rows.push(Row::new(
            format!("zgeqrf {n}x{n}"),
            vec![t_blk * 1e3, t_seed * 1e3, t_seed / t_blk, gflops],
        ));
        rows.push(Row::new(
            format!("lstsq {n}x{}", b.cols()),
            vec![t_ls_blk * 1e3, t_ls_unb * 1e3, t_ls_unb / t_ls_blk, f64::NAN],
        ));
    }

    // ── Tall-skinny zgeqrf (the FEAST/Beyn mode-matrix shape) ──
    for &(m, n) in tall {
        let a = ZMat::random(m, n, 3);
        let reps = (262_144 / (m * n / 64)).clamp(3, 15);
        let t_blk = median_secs(|| drop(qr_factor(&a)), reps);
        let t_seed = median_secs(|| drop(seed_geqrf(&a)), reps);
        let flops = 8.0 * ((m * n * n) as f64 - (n * n * n) as f64 / 3.0);
        let gflops = flops / t_blk / 1e9;
        let _ = writeln!(
            entries,
            "    {{\"kind\": \"tall\", \"m\": {m}, \"n\": {n}, \
             \"zgeqrf_blocked_ms\": {:.4}, \"zgeqrf_seed_ms\": {:.4}, \"zgeqrf_speedup\": {:.3}, \
             \"zgeqrf_blocked_gflops\": {:.2}}},",
            t_blk * 1e3,
            t_seed * 1e3,
            t_seed / t_blk,
            gflops,
        );
        rows.push(Row::new(
            format!("zgeqrf {m}x{n}"),
            vec![t_blk * 1e3, t_seed * 1e3, t_seed / t_blk, gflops],
        ));
    }

    // ── Hessenberg reduction (eig's front half), blocked vs scalar ──
    for &n in hess_sizes {
        let a = ZMat::random(n, n, 4);
        let reps = (384 / n * 4).clamp(3, 11);
        let t_blk = median_secs(|| drop(hessenberg(&a)), reps);
        let t_unb = median_secs(|| drop(hessenberg_unblocked(&a)), reps);
        let (hb, _) = hessenberg(&a);
        let (hu, _) = hessenberg_unblocked(&a);
        assert!(
            hb.max_diff(&hu) < 1e-8 * a.norm_max().max(1.0) * n as f64,
            "blocked Hessenberg drift at n = {n}"
        );
        let gflops = 80.0 / 3.0 * (n as f64).powi(3) / t_blk / 1e9;
        let _ = writeln!(
            entries,
            "    {{\"kind\": \"hessenberg\", \"n\": {n}, \
             \"zgehrd_blocked_ms\": {:.4}, \"zgehrd_unblocked_ms\": {:.4}, \
             \"zgehrd_speedup\": {:.3}, \"zgehrd_blocked_gflops\": {:.2}}},",
            t_blk * 1e3,
            t_unb * 1e3,
            t_unb / t_blk,
            gflops,
        );
        rows.push(Row::new(
            format!("zgehrd {n}x{n}"),
            vec![t_blk * 1e3, t_unb * 1e3, t_unb / t_blk, gflops],
        ));
    }

    let entries = entries.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        "{{\n  \"bench\": \"blocked compact-WY QR + Hessenberg vs unblocked baseline\",\n  \
         \"cores\": {cores},\n  \"target_cpu\": \"native\",\n  \"quick\": {quick},\n  \
         \"flags_note\": \"speedup = seed_ms / blocked_ms (seed = verbatim pre-PR scalar QR); \
         speedup_vs_tuned_unblocked compares against the slice-rewritten unblocked path the \
         blocked factorization dispatches to below the measured n=192 crossover\",\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_qr.json");
    print_table(
        "QR/Hessenberg: blocked (new) vs unblocked baseline",
        &["case", "new ms", "baseline ms", "speedup", "GF/s"],
        &rows,
    );
    println!("\nwrote {out_path}");
}
