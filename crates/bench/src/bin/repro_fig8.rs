//! Fig. 8: time-to-solution comparison of the three OBC+solver pipelines
//! on Titan at one (E, k) point:
//!
//! (a) Si UTBFET, 23 040 atoms (N_SS = 276 480) on 4 hybrid nodes;
//! (b) Si NWFET, 55 488 atoms (N_SS = 665 856) on 16 hybrid nodes.
//!
//! Headline claims: shift-and-invert+MUMPS → FEAST+SplitSolve speedup of
//! more than 50× in both cases; SplitSolve alone 6–16× faster than MUMPS.
//! A real downscaled comparison with the actual kernels follows.

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_bench::{print_table, Row};
use qtx_core::{Device, PointPolicy, TransportEngine};
use qtx_machine::{fig8_comparison, PaperDevice};
use qtx_obc::{FeastConfig, ObcMethod};
use qtx_solver::SolverKind;
use std::time::Instant;

fn model_tables() {
    for (dev, nodes, fig) in
        [(PaperDevice::utbfet_23040(), 4usize, "(a)"), (PaperDevice::nwfet_55488(), 16usize, "(b)")]
    {
        let cmp = fig8_comparison(&dev, nodes);
        let rows: Vec<Row> = cmp
            .iter()
            .map(|c| Row::new(c.algorithm.clone(), vec![c.obc_s, c.solve_s, c.total_s]))
            .collect();
        print_table(
            &format!("Fig. 8{fig} — {} on {nodes} nodes (model)", dev.label),
            &["algorithm", "OBC (s)", "solve (s)", "total (s)"],
            &rows,
        );
        println!(
            "  total speedup SI+MUMPS -> FEAST+SplitSolve: {:.0}x (paper: >50x)",
            cmp[0].total_s / cmp[2].total_s
        );
        println!("  SplitSolve vs MUMPS: {:.1}x (paper: 6-16x)", cmp[1].solve_s / cmp[2].solve_s);
    }
}

fn real_downscaled() {
    println!("\nreal downscaled algorithm comparison (same matrices, wall-clock):");
    let spec = DeviceBuilder::nanowire(1.0).cells(12).basis(BasisKind::Dft3sp).build();
    let dev = Device::build(spec).expect("device");
    let dk = dev.at_kz(0.0);
    let e = dk.lead_l.dispersive_energy(1.0, 0.3, 0.3).expect("band");
    let mut rows = Vec::new();
    let mut reference = None;
    for (name, obc, solver) in [
        ("shift-invert + BTD-LU", ObcMethod::ShiftInvert, SolverKind::BtdLu),
        ("FEAST + BTD-LU", ObcMethod::Feast(FeastConfig::default()), SolverKind::BtdLu),
        (
            "FEAST + SplitSolve",
            ObcMethod::Feast(FeastConfig::default()),
            SolverKind::SplitSolve { partitions: 2 },
        ),
    ] {
        let mut d = dev.clone();
        d.config.obc = obc;
        d.config.solver = solver;
        let engine = TransportEngine::new(d);
        let t0 = Instant::now();
        let r = engine.solve_point(e, 0.0, &PointPolicy::direct()).into_result().expect("solve");
        let dt = t0.elapsed().as_secs_f64();
        if let Some(t_ref) = reference {
            let t_ref: f64 = t_ref;
            assert!((r.transmission - t_ref).abs() < 1e-5, "algorithms must agree");
        } else {
            reference = Some(r.transmission);
        }
        rows.push(Row::new(name, vec![dt * 1e3, r.transmission]));
    }
    print_table(
        "downscaled NW (DFT basis), one energy point",
        &["pipeline", "wall ms", "T(E)"],
        &rows,
    );
    println!("  all three pipelines produce the same transmission (cross-validated)");
}

fn main() {
    model_tables();
    real_downscaled();
}
