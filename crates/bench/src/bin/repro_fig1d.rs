//! Fig. 1(d): transfer characteristics Id–Vgs of a Si double-gate
//! ultra-thin-body FET.
//!
//! Paper: t_body = 5 nm, Ls = Ld = 20 nm, Lg = 10 nm. Downscaled body and
//! length; the self-consistent Schrödinger–Poisson loop, gate
//! electrostatics and Landauer current are the production code path. The
//! shape to match: exponential subthreshold slope followed by turn-on.

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_bench::{print_table, Row};
use qtx_core::{id_vgs, Device, ScfConfig};

fn main() {
    let spec = DeviceBuilder::utb(0.8).cells(10).basis(BasisKind::TightBinding).build();
    let mut dev = Device::build(spec).expect("device");
    let dk = dev.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("edge");
    dev.config.mu_l = edge + 0.05;
    let cfg = ScfConfig { max_iter: 10, n_energy: 24, vd: 0.05, tol: 3e-3, ..ScfConfig::default() };
    let vgs: Vec<f64> = (0..9).map(|i| -0.45 + i as f64 * 0.1).collect();
    let iv = id_vgs(&mut dev, &cfg, &vgs).expect("Id-Vgs sweep");
    let rows: Vec<Row> = iv
        .iter()
        .map(|p| {
            Row::new(format!("Vgs = {:+.2} V", p.vgs), vec![p.id_ua, p.id_ua.max(1e-9).log10()])
        })
        .collect();
    print_table(
        "Fig. 1(d) — DG UTBFET transfer characteristic",
        &["bias", "Id (µA)", "log10 Id"],
        &rows,
    );
    let on = iv.last().expect("points").id_ua;
    let off = iv.first().expect("points").id_ua;
    println!("\non/off ratio = {:.1}", on / off.max(1e-12));
    println!("paper: Id-Vgs with subthreshold slope and on-state saturation");
    assert!(on > 10.0 * off.max(1e-12), "FET must switch");
}
