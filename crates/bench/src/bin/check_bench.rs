//! CI perf-regression gate over the committed `BENCH_*.json` baselines.
//!
//! Usage: `check_bench <baseline.json> <fresh.json> [--tolerance 0.25]`.
//!
//! Compares a fresh bench run (typically a `--quick` CI profile) against
//! the committed baseline and **fails (exit 1) when a speedup ratio
//! regressed by more than the tolerance**. Only dimensionless `*speedup*`
//! fields are gated — absolute milliseconds and GF/s depend on the
//! runner's hardware, but "blocked is N× faster than the in-binary
//! unblocked baseline" is a property of the code and must not rot.
//! Ratios whose baseline value is below the noise floor (1.1×) are
//! reported but not gated: a 0.95× case flapping to 0.88× on a shared
//! runner is measurement noise, not a regression. Entries are matched by
//! their identity fields (`kind`, `n`, `m`, `nrhs`, `ops`, `name`, `nb`,
//! `s`); baseline entries entirely missing from the fresh run are skipped
//! (the quick profile subsets the sizes), but a **matched** entry that
//! stopped emitting a gated `*speedup*` key the baseline has is a
//! failure, and so is a `kind` that the baseline gates but the fresh run
//! gated nothing of (an entry-level drop that removes a kind's coverage
//! entirely) — a bench silently dropping a ratio must not pass CI.
//! Baseline entries carrying `"optional": true` (ISA-dependent kernel
//! variants that a narrower runner cannot produce) are exempt from the
//! kind-coverage requirement but still value-gated when present.
//! `--tolerance` must be a fraction in `[0, 1)`: 1.0 or more would accept
//! any regression down to zero, and negative values reject noise.
//!
//! A tiny recursive-descent JSON reader lives below because the offline
//! container has no serde_json; the bench files are machine-written and
//! flat, so full spec coverage is not required (but strings, numbers,
//! bools, null, arrays and objects are all handled).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Minimal JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == c => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!("expected '{}' at byte {}, got {:?}", c as char, self.pos, got)),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("bad escape")?;
                    self.pos += 1;
                    match esc {
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            // The bench writers never emit \u escapes;
                            // accept and skip the 4 hex digits.
                            self.pos += 4;
                            out.push('?');
                        }
                        other => out.push(other as char),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 continuation bytes pass through.
                    out.push(c as char);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                got => return Err(format!("expected ',' or ']' at byte {}: {got:?}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                got => return Err(format!("expected ',' or '}}' at byte {}: {got:?}", self.pos)),
            }
        }
    }
}

fn parse_file(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut p = Parser::new(&text);
    p.value().map_err(|e| format!("{path}: {e}"))
}

/// Keys that identify a result entry (everything that is a label rather
/// than a measurement).
const IDENTITY_KEYS: &[&str] = &["kind", "n", "m", "nrhs", "ops", "name", "nb", "s"];

/// Baseline ratios below this are within run-to-run noise and are
/// reported but not gated.
const NOISE_FLOOR: f64 = 1.1;

fn identity(entry: &BTreeMap<String, Json>) -> String {
    let mut parts = Vec::new();
    for &k in IDENTITY_KEYS {
        match entry.get(k) {
            Some(Json::Str(s)) => parts.push(format!("{k}={s}")),
            Some(Json::Num(v)) => parts.push(format!("{k}={v}")),
            _ => {}
        }
    }
    parts.join(" ")
}

fn results(doc: &Json) -> Vec<&BTreeMap<String, Json>> {
    match doc {
        Json::Obj(map) => match map.get("results") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(|e| if let Json::Obj(o) = e { Some(o) } else { None })
                .collect(),
            _ => Vec::new(),
        },
        _ => Vec::new(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.25;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            tolerance =
                it.next().and_then(|v| v.parse().ok()).expect("--tolerance needs a numeric value");
        } else {
            paths.push(a.clone());
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: check_bench <baseline.json> <fresh.json> [--tolerance 0.25]");
        return ExitCode::from(2);
    }
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!(
            "check_bench: --tolerance {tolerance} is nonsensical — it is the accepted \
             fractional regression, so it must lie in [0, 1) (≥ 1.0 would accept a ratio \
             collapsing to zero; negative would fail on noise)"
        );
        return ExitCode::from(2);
    }
    let (base_doc, fresh_doc) = match (parse_file(&paths[0]), parse_file(&paths[1])) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("check_bench: {e}");
            return ExitCode::from(2);
        }
    };
    let base: BTreeMap<String, &BTreeMap<String, Json>> =
        results(&base_doc).into_iter().map(|e| (identity(e), e)).collect();
    let fresh = results(&fresh_doc);
    if fresh.is_empty() {
        eprintln!("check_bench: {} has no results[]", paths[1]);
        return ExitCode::from(2);
    }

    // Kinds that carry at least one gated ratio in the baseline: the
    // fresh run must keep gating *something* of each — a whole entry
    // silently dropped from a bench (the quick profile legitimately
    // subsets sizes, so individual missing entries are fine) must not be
    // able to remove a kind's gating entirely. Entries marked
    // `"optional": true` (ISA-dependent microkernel variants a narrower
    // runner legitimately cannot produce) are excluded from this
    // coverage requirement; when a matching entry *is* present it is
    // still value-gated like any other.
    let gated_kinds: std::collections::BTreeSet<String> = base
        .values()
        .filter(|e| !matches!(e.get("optional"), Some(Json::Bool(true))))
        .filter(|e| {
            e.iter().any(
                |(k, v)| matches!(v, Json::Num(x) if k.contains("speedup") && *x >= NOISE_FLOOR),
            )
        })
        .map(|e| match e.get("kind") {
            Some(Json::Str(s)) => s.clone(),
            _ => String::new(),
        })
        .collect();
    let mut fresh_gated_kinds: std::collections::BTreeSet<String> = Default::default();

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut missing_keys = 0usize;
    for entry in fresh {
        let id = identity(entry);
        let Some(base_entry) = base.get(&id) else {
            println!("  [skip] {id}: no baseline entry");
            continue;
        };
        // A matched entry must still emit every gated ratio the baseline
        // records: a bench that stops measuring a speedup would otherwise
        // pass CI with the ratio silently un-gated.
        for (key, val) in base_entry.iter() {
            let Json::Num(base_v) = val else { continue };
            if key.contains("speedup") && *base_v >= NOISE_FLOOR && !entry.contains_key(key) {
                missing_keys += 1;
                println!(
                    "  [FAIL] {id} {key}: gated ratio present in the baseline \
                     (value {base_v:.3}) but missing from the fresh run — the bench \
                     stopped emitting it"
                );
            }
        }
        for (key, val) in entry {
            if !key.contains("speedup") {
                continue;
            }
            let (Json::Num(fresh_v), Some(Json::Num(base_v))) = (val, base_entry.get(key)) else {
                continue;
            };
            if *base_v < NOISE_FLOOR {
                println!(
                    "  [info] {id} {key}: baseline {base_v:.3} below noise floor, not gated \
                     (fresh {fresh_v:.3})"
                );
                continue;
            }
            compared += 1;
            fresh_gated_kinds.insert(match entry.get("kind") {
                Some(Json::Str(s)) => s.clone(),
                _ => String::new(),
            });
            let floor = base_v * (1.0 - tolerance);
            if *fresh_v < floor {
                regressions += 1;
                println!(
                    "  [FAIL] {id} {key}: {fresh_v:.3} < {floor:.3} \
                     (baseline {base_v:.3}, tolerance {:.0}%)",
                    tolerance * 100.0
                );
            } else if *fresh_v > base_v * (1.0 + tolerance) {
                println!(
                    "  [note] {id} {key}: {fresh_v:.3} beats baseline {base_v:.3} by >{:.0}% — \
                     consider refreshing the committed JSON",
                    tolerance * 100.0
                );
            } else {
                println!("  [ok]   {id} {key}: {fresh_v:.3} (baseline {base_v:.3})");
            }
        }
    }
    let mut missing_kinds = 0usize;
    for kind in &gated_kinds {
        if !fresh_gated_kinds.contains(kind) {
            missing_kinds += 1;
            println!(
                "  [FAIL] kind={kind}: the baseline gates ratios of this kind but the fresh \
                 run compared none — every entry of the kind was dropped or fell out of the \
                 gate, so the bench stopped measuring it"
            );
        }
    }
    println!(
        "check_bench: {} vs {}: {compared} gated ratios, {regressions} regression(s), \
         {missing_keys} missing gated key(s), {missing_kinds} ungated kind(s)",
        paths[0], paths[1]
    );
    if regressions > 0 || missing_keys > 0 || missing_kinds > 0 {
        ExitCode::FAILURE
    } else if compared == 0 {
        eprintln!("check_bench: nothing compared — identity mismatch between files?");
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
