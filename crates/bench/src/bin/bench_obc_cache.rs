//! Self-energy cache benchmark: the Fig. 9 sweep, cold vs warm.
//!
//! The OBC solves dominate the per-point budget (Fig. 8), and in any
//! bias/gate sweep their inputs repeat exactly — so a warm
//! [`TransportEngine`] replays the whole sweep from stored Σ frames.
//! This bin measures that: one cold pass populating the cache, one warm
//! pass through the same engine, with the byte-level store stats and the
//! process-global OBC solve counter before/after each pass.
//!
//! `QTX_OBC_CACHE_BYTES` (when set) is reported but not used: the bench
//! builds its own shared cache so the numbers are self-contained.

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_bench::{print_table, Row};
use qtx_core::{CacheConfig, CachePolicy, Device, SigmaCache, SweepPlan, TransportEngine};
use qtx_obc::obc_solves_total;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let spec = DeviceBuilder::utb(0.8).cells(8).basis(BasisKind::TightBinding).build();
    let mut dev = Device::build(spec).expect("device");
    dev.config.n_kz = 3;
    let dk = dev.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("edge");
    dev.config.mu_l = edge + 0.15;
    dev.config.mu_r = edge + 0.10;

    let plan = SweepPlan::from_device(&dev, 0.03, 0.08);
    println!("plan: {} k-points, {} energy points total", plan.k_points.len(), plan.total_points());
    if let Ok(v) = std::env::var("QTX_OBC_CACHE_BYTES") {
        println!("QTX_OBC_CACHE_BYTES = {v} (informational; this bench uses a private cache)");
    }

    let cache = Arc::new(SigmaCache::new(CacheConfig::default()));
    let engine = TransportEngine::builder(dev).cache(CachePolicy::Shared(cache.clone())).build();

    let mut rows = Vec::new();
    let mut reference = None;
    for pass in ["cold", "warm"] {
        let solves_before = obc_solves_total();
        let t0 = Instant::now();
        let result = engine.sweep(&plan, 6).expect("sweep");
        let secs = t0.elapsed().as_secs_f64();
        let solves = obc_solves_total() - solves_before;
        let h = &result.health;
        rows.push(Row::new(
            pass,
            vec![secs * 1e3, solves as f64, h.cache_hits as f64, h.cache_misses as f64],
        ));
        match &reference {
            None => reference = Some(result),
            Some(cold) => {
                let identical =
                    cold.records.iter().zip(&result.records).all(|(a, b)| a.identity_eq(b));
                assert!(identical, "warm sweep must be bit-identical to the cold sweep");
                assert_eq!(solves, 0, "warm sweep must perform zero OBC solves, did {solves}");
            }
        }
    }
    print_table(
        "OBC self-energy cache — same sweep, cold vs warm engine",
        &["pass", "wall ms", "obc solves", "cache hits", "cache misses"],
        &rows,
    );
    let s = cache.stats();
    println!(
        "store: {} entries, {} bytes, {} evictions; warm records verified bit-identical",
        s.entries, s.bytes, s.evictions
    );
}
