//! Emits `BENCH_gemm.json`: tiled zero-copy zgemm vs the seed kernel,
//! plus a per-variant sweep of the dispatched SIMD microkernels.
//!
//! The seed implementation (cloned operands + column-panel triple loop) is
//! reproduced here verbatim as the baseline; the measured speedups and the
//! machine fingerprint land in a JSON report so `CHANGES.md` numbers stay
//! reproducible. The `kind: "ukr"` entries force each available kernel
//! variant ([`qtx_linalg::force_kernel`]) on the same inputs and gate the
//! within-binary `kernel_speedup` (variant vs forced-scalar) through
//! `check_bench` — hardware-independent properties of the dispatch, unlike
//! the absolute GF/s. Run with `cargo run --release -p qtx-bench --bin
//! bench_gemm_json [output-path] [--quick]`.

use qtx_bench::{print_table, Row};
use qtx_linalg::{
    available_variants, force_kernel, gemm, reset_kernel, Complex64, KernelVariant, Op, ZMat,
};
use std::fmt::Write as _;
use std::time::Instant;

/// The seed's gemm: materialize both operands, then a column-panel loop.
fn seed_gemm(a: &ZMat, op_a: Op, b: &ZMat, op_b: Op, c: &mut ZMat) {
    let a_eff = match op_a {
        Op::None => a.clone(),
        Op::Transpose => a.transpose(),
        Op::Adjoint => a.adjoint(),
    };
    let b_eff = match op_b {
        Op::None => b.clone(),
        Op::Transpose => b.transpose(),
        Op::Adjoint => b.adjoint(),
    };
    let m = a_eff.rows();
    let k = a_eff.cols();
    let a_data = a_eff.as_slice();
    for j in 0..b_eff.cols() {
        let c_col = c.col_mut(j);
        c_col.fill(Complex64::ZERO);
        for (l, &blj) in b_eff.col(j).iter().enumerate().take(k) {
            let a_col = &a_data[l * m..(l + 1) * m];
            for (ci, &ail) in c_col.iter_mut().zip(a_col) {
                *ci = ci.mul_add(ail, blj);
            }
        }
    }
}

fn median_secs(mut f: impl FnMut(), reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let mut out_path = "BENCH_gemm.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sizes: &[usize] = if quick { &[64, 128, 256] } else { &[64, 128, 256, 384, 512] };
    let mut entries = String::new();
    let mut rows = Vec::new();
    for &n in sizes {
        let a = ZMat::random(n, n, 1);
        let b = ZMat::random(n, n, 2);
        let mut c_new = ZMat::zeros(n, n);
        let mut c_old = ZMat::zeros(n, n);
        let reps = (256 / (n / 32)).clamp(3, 31);
        for (op_a, op_b, tag) in [
            (Op::None, Op::None, "NN"),
            (Op::Adjoint, Op::None, "HN"),
            (Op::None, Op::Transpose, "NT"),
        ] {
            let t_new = median_secs(
                || gemm(Complex64::ONE, &a, op_a, &b, op_b, Complex64::ZERO, &mut c_new),
                reps,
            );
            let t_old = median_secs(|| seed_gemm(&a, op_a, &b, op_b, &mut c_old), reps);
            assert!(
                c_new.max_diff(&c_old) < 1e-9 * n as f64,
                "kernel mismatch at n = {n} ops {tag}"
            );
            let gflops = 8.0 * (n as f64).powi(3) / t_new / 1e9;
            let _ = writeln!(
                entries,
                "    {{\"n\": {n}, \"ops\": \"{tag}\", \"tiled_ms\": {:.4}, \"seed_ms\": {:.4}, \"speedup\": {:.3}, \"tiled_gflops\": {:.2}}},",
                t_new * 1e3,
                t_old * 1e3,
                t_old / t_new,
                gflops
            );
            if tag == "NN" {
                rows.push(Row::new(
                    format!("zgemm {n}x{n}"),
                    vec![t_new * 1e3, t_old * 1e3, t_old / t_new, gflops],
                ));
            }
        }
    }
    // Per-variant microkernel sweep: force each available variant on the
    // same NN product, with the forced-scalar time as the in-binary
    // baseline. kernel_speedup is dimensionless → gated by check_bench.
    for &n in sizes {
        if n < 128 {
            continue; // below the packed-path thresholds the ukr barely runs
        }
        let a = ZMat::random(n, n, 5);
        let b = ZMat::random(n, n, 6);
        let mut c = ZMat::zeros(n, n);
        let reps = (256 / (n / 32)).clamp(3, 31);
        assert!(force_kernel(KernelVariant::Scalar));
        let t_scalar = median_secs(
            || gemm(Complex64::ONE, &a, Op::None, &b, Op::None, Complex64::ZERO, &mut c),
            reps,
        );
        for v in available_variants() {
            assert!(force_kernel(v));
            let t = median_secs(
                || gemm(Complex64::ONE, &a, Op::None, &b, Op::None, Complex64::ZERO, &mut c),
                reps,
            );
            let gflops = 8.0 * (n as f64).powi(3) / t / 1e9;
            let _ = writeln!(
                entries,
                "    {{\"kind\": \"ukr\", \"name\": \"{}\", \"n\": {n}, \"optional\": true, \"ms\": {:.4}, \"gflops\": {:.2}, \"kernel_speedup\": {:.3}}},",
                v.name(),
                t * 1e3,
                gflops,
                t_scalar / t
            );
            rows.push(Row::new(
                format!("ukr {} {n}x{n}", v.name()),
                vec![t * 1e3, t_scalar * 1e3, t_scalar / t, gflops],
            ));
        }
        reset_kernel();
    }
    let entries = entries.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        "{{\n  \"bench\": \"zgemm tiled vs seed\",\n  \"cores\": {cores},\n  \"target_cpu\": \"native\",\n  \"flags_note\": \"speedup = seed_ms / tiled_ms, both single run on this machine\",\n  \"results\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_gemm.json");
    print_table(
        "zgemm: tiled (new) vs seed panel loop",
        &["size", "tiled ms", "seed ms", "speedup", "GF/s"],
        &rows,
    );
    println!("\nwrote {out_path}");
}
