//! Emits `BENCH_trmm.json`: the BLAS-3 triangle set (`ztrmm`, `zher2k`)
//! vs the full-gemm emulations they replaced, the RHS-blocked ≤64
//! triangular substitution sweep vs the seed's scalar column-at-a-time
//! substitution, and the SplitSolve nb=8/s=64 ms-per-point figure that
//! sweep dominates (PR 1 recorded 17.2, PR 2 15.2).
//!
//! All gated ratios are within-binary A/Bs on identical inputs, so they
//! are hardware-independent properties of the code: `ztrmm` against a
//! dense gemm of the same (zero-padded) triangle, `zher2k` against its
//! two-gemm expansion, and the blocked `zgetrs` solve against a verbatim
//! reproduction of the seed's scalar substitution. Run with `cargo run
//! --release -p qtx-bench --bin bench_trmm_json [output-path] [--quick]`;
//! `--quick` shrinks sizes and repetitions for the CI smoke/regression
//! profile.

use qtx_bench::{print_table, Row};
use qtx_linalg::{
    c64, gemm, lu_factor, zher2k, ztrmm, Complex64, Diag, LuFactors, Op, Side, UpLo, ZMat,
};
use qtx_solver::{ObcSystem, SplitSolve, Workspace};
use qtx_sparse::Btd;
use std::fmt::Write as _;
use std::time::Instant;

/// Reference ms/pt recorded by earlier PRs on this container (nb=8, s=64).
const PR1_SPLITSOLVE_MS_PER_PT: f64 = 17.2;
const PR2_SPLITSOLVE_MS_PER_PT: f64 = 15.2;

fn median_secs(mut f: impl FnMut(), reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples[samples.len() / 2]
}

/// Well-conditioned triangle: random strict part, heavy diagonal.
fn triangle(n: usize, uplo: UpLo, seed: u64) -> ZMat {
    let r = ZMat::random(n, n, seed);
    let mut t = ZMat::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            let keep = match uplo {
                UpLo::Lower => i > j,
                UpLo::Upper => i < j,
            };
            if keep {
                t[(i, j)] = r[(i, j)].scale(0.5);
            }
        }
        t[(j, j)] = r[(j, j)] + c64(2.0 + n as f64 * 0.05, 0.3);
    }
    t
}

/// The pre-PR emulation of a triangular multiply: one dense gemm of the
/// (zero-padded) triangle into a second staging buffer plus the copy
/// back — exactly what the compact-WY `T` transforms used to do.
fn gemm_emulated_trmm(t: &ZMat, b: &mut ZMat, scratch: &mut ZMat) {
    gemm(Complex64::ONE, t, Op::None, b, Op::None, Complex64::ZERO, scratch);
    b.as_mut_slice().copy_from_slice(scratch.as_slice());
}

/// The seed's scalar forward/backward substitution (`zgetrs` baseline),
/// verbatim column-at-a-time — the pre-RHS-blocking small-solve path.
fn seed_getrs(f: &LuFactors, b: &ZMat) -> ZMat {
    let n = f.lu.rows();
    let mut x = ZMat::zeros(n, b.cols());
    for j in 0..b.cols() {
        for i in 0..n {
            x[(i, j)] = b[(f.perm[i], j)];
        }
    }
    for j in 0..x.cols() {
        for k in 0..n {
            let xkj = x[(k, j)];
            if xkj == Complex64::ZERO {
                continue;
            }
            for i in k + 1..n {
                let lik = f.lu[(i, k)];
                x[(i, j)] -= lik * xkj;
            }
        }
        for k in (0..n).rev() {
            let ukk_inv = f.lu[(k, k)].inv();
            let xkj = x[(k, j)] * ukk_inv;
            x[(k, j)] = xkj;
            for i in 0..k {
                let uik = f.lu[(i, k)];
                x[(i, j)] -= uik * xkj;
            }
        }
    }
    x
}

fn random_system(nb: usize, s: usize, m: usize, seed: u64) -> ObcSystem {
    let mut a = Btd::zeros(nb, s);
    for i in 0..nb {
        a.diag[i] = ZMat::random(s, s, seed + i as u64);
        for d in 0..s {
            a.diag[i][(d, d)] += c64(4.0 + s as f64, 1.0);
        }
    }
    for i in 0..nb - 1 {
        a.upper[i] = ZMat::random(s, s, seed + 100 + i as u64).scaled(c64(0.4, 0.0));
        a.lower[i] = ZMat::random(s, s, seed + 200 + i as u64).scaled(c64(0.4, 0.0));
    }
    ObcSystem {
        a,
        sigma_l: ZMat::random(s, s, seed + 300).scaled(c64(0.3, 0.1)).into(),
        sigma_r: ZMat::random(s, s, seed + 301).scaled(c64(0.3, -0.1)).into(),
        rhs_top: ZMat::random(s, m, seed + 400),
        rhs_bottom: ZMat::random(s, m, seed + 401),
    }
}

fn main() {
    let mut out_path = "BENCH_trmm.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut entries = String::new();
    let mut rows = Vec::new();

    // ── ztrmm vs the dense-gemm emulation (the compact-WY `T` shapes:
    // a kb-sized upper triangle against a wide panel, plus square-ish) ──
    let trmm_shapes: &[(usize, usize)] = if quick {
        &[(48, 256), (128, 128)]
    } else {
        &[(48, 256), (48, 512), (128, 128), (256, 64)]
    };
    for &(n, m) in trmm_shapes {
        let t = triangle(n, UpLo::Upper, 1);
        let b0 = ZMat::random(n, m, 2);
        let mut scratch = ZMat::zeros(n, m);
        let reps = (1 << 20) / (n * m).max(1);
        let reps = reps.clamp(5, 201);
        let t_trmm = median_secs(
            || {
                let mut b = b0.clone();
                ztrmm(
                    Side::Left,
                    UpLo::Upper,
                    Op::None,
                    Diag::NonUnit,
                    Complex64::ONE,
                    t.view(),
                    b.view_mut(),
                );
            },
            reps,
        );
        let t_gemm = median_secs(
            || {
                let mut b = b0.clone();
                gemm_emulated_trmm(&t, &mut b, &mut scratch);
            },
            reps,
        );
        // Correctness cross-check on the measured inputs.
        let mut b1 = b0.clone();
        ztrmm(
            Side::Left,
            UpLo::Upper,
            Op::None,
            Diag::NonUnit,
            Complex64::ONE,
            t.view(),
            b1.view_mut(),
        );
        let mut b2 = b0.clone();
        gemm_emulated_trmm(&t, &mut b2, &mut scratch);
        assert!(b1.max_diff(&b2) < 1e-9 * n as f64, "ztrmm drift at {n}x{m}");
        let gflops = 4.0 * (n * n * m) as f64 / t_trmm / 1e9;
        let _ = writeln!(
            entries,
            "    {{\"kind\": \"trmm\", \"n\": {n}, \"nrhs\": {m}, \
             \"ztrmm_ms\": {:.4}, \"gemm_emulation_ms\": {:.4}, \"ztrmm_speedup\": {:.3}, \
             \"ztrmm_gflops\": {:.2}}},",
            t_trmm * 1e3,
            t_gemm * 1e3,
            t_gemm / t_trmm,
            gflops,
        );
        rows.push(Row::new(
            format!("ztrmm {n}x{m}"),
            vec![t_trmm * 1e3, t_gemm * 1e3, t_gemm / t_trmm, gflops],
        ));
    }

    // ── zher2k vs its two-gemm expansion ──
    let her2k_shapes: &[(usize, usize)] =
        if quick { &[(128, 128)] } else { &[(128, 128), (256, 256)] };
    for &(n, k) in her2k_shapes {
        let a = ZMat::random(n, k, 3);
        let b = ZMat::random(n, k, 4);
        let alpha = c64(0.5, 0.0);
        let reps = ((1 << 24) / (n * n * k).max(1)).clamp(3, 51);
        let mut c1 = ZMat::zeros(n, n);
        let t_her2k =
            median_secs(|| zher2k(alpha, a.view(), b.view(), Op::None, 0.0, &mut c1), reps);
        let mut c2 = ZMat::zeros(n, n);
        let t_gemm2 = median_secs(
            || {
                gemm(alpha, &a, Op::None, &b, Op::Adjoint, Complex64::ZERO, &mut c2);
                gemm(alpha.conj(), &b, Op::None, &a, Op::Adjoint, Complex64::ONE, &mut c2);
            },
            reps,
        );
        assert!(c1.max_diff(&c2) < 1e-9 * k as f64, "zher2k drift at n={n}");
        let gflops = 8.0 * (n * n * k) as f64 / t_her2k / 1e9;
        let _ = writeln!(
            entries,
            "    {{\"kind\": \"her2k\", \"n\": {n}, \"nrhs\": {k}, \
             \"zher2k_ms\": {:.4}, \"two_gemm_ms\": {:.4}, \"zher2k_speedup\": {:.3}, \
             \"zher2k_gflops\": {:.2}}},",
            t_her2k * 1e3,
            t_gemm2 * 1e3,
            t_gemm2 / t_her2k,
            gflops,
        );
        rows.push(Row::new(
            format!("zher2k {n}x{k}"),
            vec![t_her2k * 1e3, t_gemm2 * 1e3, t_gemm2 / t_her2k, gflops],
        ));
    }

    // ── RHS-blocked small substitution: the blocked zgetrs solve vs the
    // seed's scalar column sweep, at the SplitSolve block sizes ──
    let subst_sizes: &[usize] = if quick { &[32, 64] } else { &[32, 64, 96] };
    for &n in subst_sizes {
        let mut a = ZMat::random(n, n, 5);
        for i in 0..n {
            a[(i, i)] += c64(n as f64, n as f64 * 0.5);
        }
        let b = ZMat::random(n, n, 6);
        let f = lu_factor(&a).unwrap();
        let reps = ((1 << 22) / (n * n * n).max(1)).clamp(7, 301);
        let t_new = median_secs(|| drop(f.solve(&b)), reps);
        let t_seed = median_secs(|| drop(seed_getrs(&f, &b)), reps);
        let diff = f.solve(&b).max_diff(&seed_getrs(&f, &b));
        assert!(diff < 1e-8 * n as f64, "substitution mismatch at n = {n}");
        let _ = writeln!(
            entries,
            "    {{\"kind\": \"small_subst\", \"n\": {n}, \"nrhs\": {n}, \
             \"zgetrs_blocked_ms\": {:.4}, \"zgetrs_seed_ms\": {:.4}, \
             \"small_subst_speedup\": {:.3}}},",
            t_new * 1e3,
            t_seed * 1e3,
            t_seed / t_new,
        );
        rows.push(Row::new(
            format!("zgetrs {n}x{n}"),
            vec![t_new * 1e3, t_seed * 1e3, t_seed / t_new, f64::NAN],
        ));
    }

    // ── SplitSolve ms/pt at the PR 1/PR 2 reference configuration ──
    {
        let (nb, s) = (8, 64);
        let points = if quick { 4 } else { 16 };
        let systems: Vec<ObcSystem> =
            (0..points).map(|p| random_system(nb, s, s / 2, 7 + p as u64)).collect();
        let solver = SplitSolve::new(2);
        let ws = Workspace::new();
        let run = |sys: &ObcSystem| drop(solver.solve_ws(sys, None, &ws).unwrap());
        run(&systems[0]); // warm the pool
        let t0 = Instant::now();
        for sys in &systems {
            run(sys);
        }
        let ms = t0.elapsed().as_secs_f64() / systems.len() as f64 * 1e3;
        let _ = writeln!(
            entries,
            "    {{\"kind\": \"solver\", \"name\": \"splitsolve\", \"nb\": {nb}, \"s\": {s}, \
             \"ms_per_point\": {:.3}, \"pr1_ms_per_point\": {PR1_SPLITSOLVE_MS_PER_PT}, \
             \"pr2_ms_per_point\": {PR2_SPLITSOLVE_MS_PER_PT}}},",
            ms,
        );
        rows.push(Row::new(
            format!("splitsolve nb={nb} s={s}"),
            vec![ms, PR2_SPLITSOLVE_MS_PER_PT, PR2_SPLITSOLVE_MS_PER_PT / ms, f64::NAN],
        ));
    }

    let entries = entries.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        "{{\n  \"bench\": \"BLAS-3 triangle set (ztrmm/zher2k) + RHS-blocked small substitution\",\n  \
         \"cores\": {cores},\n  \"target_cpu\": \"native\",\n  \"quick\": {quick},\n  \
         \"flags_note\": \"ztrmm_speedup = dense-gemm-emulation ms / ztrmm ms (within-binary, \
         identical inputs); zher2k_speedup = two-gemm expansion / zher2k; small_subst_speedup = \
         seed scalar column substitution / blocked RHS-panel zgetrs; solver row records warm-pool \
         ms/pt against the PR 1 (17.2) and PR 2 (15.2) figures on this container\",\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_trmm.json");
    print_table(
        "triangle kernels: new vs full-gemm baselines",
        &["case", "new ms", "baseline ms", "speedup", "GF/s"],
        &rows,
    );
    println!("\nwrote {out_path}");
}
