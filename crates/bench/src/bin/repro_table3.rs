//! Table III / Fig. 11(b): OMEN strong scaling on Titan — 59 908 energy
//! points over 756 → 18 564 nodes, plus the tuned Hermitian-kernel run
//! that reached 15.01 PFlop/s.

use qtx_bench::{print_table, Row};
use qtx_machine::experiments::{fig11_table23, TABLE3_PAPER};

fn main() {
    let nodes: Vec<usize> = TABLE3_PAPER[..6].iter().map(|r| r.0).collect();
    let model = fig11_table23(&nodes);
    let rows: Vec<Row> = model
        .iter()
        .zip(TABLE3_PAPER.iter())
        .map(|(m, p)| {
            Row::new(
                format!("{} nodes{}", m.nodes, if p.2.is_nan() { " (zhesv)" } else { "" }),
                vec![p.1, m.time_s, p.2, m.efficiency_pct, p.3, m.pflops],
            )
        })
        .collect();
    print_table(
        "Table III — strong scaling (paper vs model)",
        &["config", "t_paper", "t_model", "eff_paper%", "eff_model%", "PF_paper", "PF_model"],
        &rows,
    );
    let last_lu = &model[5];
    let tuned = &model[6];
    println!(
        "\nstrong-scaling efficiency at 18 564 nodes: {:.1}% (paper 97.3%)",
        last_lu.efficiency_pct
    );
    println!(
        "sustained performance: {:.1} PFlop/s -> {:.1} PFlop/s with the Hermitian kernel (paper 12.8 -> 15.01)",
        last_lu.pflops, tuned.pflops
    );
}
