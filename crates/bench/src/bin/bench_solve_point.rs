//! Per-energy-point solve timing + workspace-reuse accounting.
//!
//! Measures the Eq. 5 solver stack the way a sweep drives it — many energy
//! points against one shared [`qtx_solver::Workspace`] — and reports the
//! cold-vs-warm pool effect: wall time per point and fresh buffer
//! allocations per point (which collapse to ~0 once the pool is warm).

use qtx_bench::{print_table, Row};
use qtx_linalg::{c64, ZMat};
use qtx_solver::{btd_lu_solve_ws, ObcSystem, SplitSolve, Workspace};
use qtx_sparse::Btd;
use std::time::Instant;

fn random_system(nb: usize, s: usize, m: usize, seed: u64) -> ObcSystem {
    let mut a = Btd::zeros(nb, s);
    for i in 0..nb {
        a.diag[i] = ZMat::random(s, s, seed + i as u64);
        for d in 0..s {
            a.diag[i][(d, d)] += c64(4.0 + s as f64, 1.0);
        }
    }
    for i in 0..nb - 1 {
        a.upper[i] = ZMat::random(s, s, seed + 100 + i as u64).scaled(c64(0.4, 0.0));
        a.lower[i] = ZMat::random(s, s, seed + 200 + i as u64).scaled(c64(0.4, 0.0));
    }
    ObcSystem {
        a,
        sigma_l: ZMat::random(s, s, seed + 300).scaled(c64(0.3, 0.1)).into(),
        sigma_r: ZMat::random(s, s, seed + 301).scaled(c64(0.3, -0.1)).into(),
        rhs_top: ZMat::random(s, m, seed + 400),
        rhs_bottom: ZMat::random(s, m, seed + 401),
    }
}

fn main() {
    let points = 32usize;
    let mut rows = Vec::new();
    for &(nb, s) in &[(32usize, 16usize), (16, 32), (8, 64)] {
        let systems: Vec<ObcSystem> =
            (0..points).map(|p| random_system(nb, s, s / 2, 7 + p as u64)).collect();
        let solver = SplitSolve::new(2);

        // Cold: a fresh private pool every point (the pre-workspace shape).
        let t0 = Instant::now();
        let mut cold_allocs = 0;
        for sys in &systems {
            let ws = Workspace::new();
            let _ = solver.solve_ws(sys, None, &ws).unwrap();
            cold_allocs += ws.fresh_allocations();
        }
        let cold = t0.elapsed().as_secs_f64() / points as f64;

        // Warm: one shared pool across the sweep.
        let ws = Workspace::new();
        let t0 = Instant::now();
        for sys in &systems {
            let _ = solver.solve_ws(sys, None, &ws).unwrap();
        }
        let warm = t0.elapsed().as_secs_f64() / points as f64;
        let warm_allocs = ws.fresh_allocations();

        rows.push(Row::new(
            format!("splitsolve nb={nb} s={s}"),
            vec![
                cold * 1e3,
                warm * 1e3,
                (1.0 - warm / cold) * 100.0,
                cold_allocs as f64 / points as f64,
                warm_allocs as f64 / points as f64,
            ],
        ));

        // Same comparison for the block-Thomas baseline.
        let t0 = Instant::now();
        for sys in &systems {
            let _ = btd_lu_solve_ws(sys, &Workspace::new()).unwrap();
        }
        let cold_lu = t0.elapsed().as_secs_f64() / points as f64;
        let ws = Workspace::new();
        let t0 = Instant::now();
        for sys in &systems {
            let _ = btd_lu_solve_ws(sys, &ws).unwrap();
        }
        let warm_lu = t0.elapsed().as_secs_f64() / points as f64;
        rows.push(Row::new(
            format!("btd_lu     nb={nb} s={s}"),
            vec![
                cold_lu * 1e3,
                warm_lu * 1e3,
                (1.0 - warm_lu / cold_lu) * 100.0,
                f64::NAN,
                f64::NAN,
            ],
        ));
    }
    print_table(
        "per-energy-point solve: cold pool vs shared warm pool",
        &["config", "cold ms/pt", "warm ms/pt", "saved %", "allocs/pt cold", "allocs/pt warm"],
        &rows,
    );
}
