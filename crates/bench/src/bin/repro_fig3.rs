//! Fig. 3: Hamiltonian sparsity in the DFT (contracted Gaussian) basis vs
//! tight-binding — "the number of non-zero entries increases by two orders
//! of magnitude in DFT as compared to tight-binding".

use qtx_atomistic::assemble::assemble_device;
use qtx_atomistic::structure::{diamond_supercell, Species, SI_LATTICE};
use qtx_atomistic::BasisKind;
use qtx_bench::{print_table, Row};
use qtx_sparse::{sparsity_stats, spy_string, Csr};

fn main() {
    let mut slab = diamond_supercell(Species::Si, SI_LATTICE, 6, 2, 1);
    slab.z_period = 0.0;
    slab.sort_into_slabs(2.0 * SI_LATTICE);
    let mut rows = Vec::new();
    let mut stats = Vec::new();
    for (name, basis) in
        [("tight-binding", BasisKind::TightBinding), ("DFT (3SP-like)", BasisKind::Dft3sp)]
    {
        let dm = assemble_device(&slab, basis, 2.0 * SI_LATTICE).expect("assemble");
        let csr = Csr::from_dense(&dm.h.to_dense(), 1e-12);
        let st = sparsity_stats(&csr, dm.orbitals_per_slab);
        println!("\n{name} H pattern ({} x {}, nnz {}):", st.dim, st.dim, st.nnz);
        println!("{}", spy_string(&csr, 16, 32));
        rows.push(Row::new(
            name,
            vec![st.dim as f64, st.nnz as f64, st.nnz_per_row, st.bandwidth as f64],
        ));
        stats.push(st);
    }
    print_table(
        "Fig. 3 — sparsity: DFT vs tight-binding",
        &["basis", "dim", "nnz", "nnz/row", "bandwidth"],
        &rows,
    );
    let ratio = stats[1].nnz_ratio(&stats[0]);
    println!("\nnnz(DFT)/nnz(TB) = {ratio:.0}x   (paper: ~100x, 'two orders of magnitude')");
    assert!(ratio > 30.0 && ratio < 1000.0, "ratio {ratio} out of the two-orders band");
}
