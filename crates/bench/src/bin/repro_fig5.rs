//! Fig. 5: the annulus in the complex plane enclosing the propagating and
//! slowly decaying lead modes (red dots); fast-decaying modes (black dots,
//! |λ| < 1/R or |λ| > R) are neglected by FEAST.

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_bench::{print_table, Row};
use qtx_core::Device;
use qtx_obc::{dense_modes, feast_annulus, CompanionPencil, FeastConfig};

fn main() {
    let spec = DeviceBuilder::nanowire(1.0).cells(8).basis(BasisKind::TightBinding).build();
    let dev = Device::build(spec).expect("device");
    let dk = dev.at_kz(0.0);
    let e = dk.lead_l.dispersive_energy(0.9, 0.2, 0.3).expect("band");
    let pencil = CompanionPencil::at_energy(&dk.lead_l, e, 0.0);
    let all = dense_modes(&pencil).expect("dense spectrum");
    let cfg = FeastConfig { r_outer: 4.0, ..FeastConfig::default() };
    let (inside, stats) = feast_annulus(&pencil, cfg).expect("FEAST");

    let mut rows = Vec::new();
    for (lam, _) in &all {
        let mag = lam.abs();
        let status = if (0.25..=4.0).contains(&mag) { 1.0 } else { 0.0 };
        rows.push(Row::new(
            format!("lambda = {:+.3} {:+.3}i", lam.re, lam.im),
            vec![mag, lam.arg(), status],
        ));
    }
    print_table(
        &format!("Fig. 5 — companion spectrum at E = {e:.3} eV (annulus R = 4)"),
        &["eigenvalue", "|lambda|", "arg", "in annulus"],
        &rows,
    );
    let n_prop = all.iter().filter(|(l, _)| (l.abs() - 1.0).abs() < 1e-6).count();
    println!(
        "\nFEAST captured {} annulus modes in {} iterations / {} linear solves (max residual {:.1e})",
        inside.len(),
        stats.iterations,
        stats.linear_solves,
        stats.max_residual
    );
    println!(
        "{n_prop} propagating (unit-circle) modes; fast-decaying modes ignored as in the paper"
    );
    assert!(inside.len() >= n_prop, "FEAST must at least catch the propagating set");
}
