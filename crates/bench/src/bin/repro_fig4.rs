//! Fig. 4: structure of Eq. 5 — the block tri-diagonal matrix
//! `T = E·S − H − Σ^RB` with low-rank boundary corners and a right-hand
//! side whose non-zeros live only in the top and bottom block rows.

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_core::Device;
use qtx_obc::{self_energy, Eta, ObcMethod, Side};
use qtx_solver::ObcSystem;
use qtx_sparse::{spy_string, Csr};

fn main() {
    let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(BasisKind::TightBinding).build();
    let dev = Device::build(spec).expect("device");
    let dk = dev.at_kz(0.0);
    let e = dk.lead_l.dispersive_energy(1.0, 0.2, 0.3).expect("band");
    let obc_l =
        self_energy(&dk.lead_l, e, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).expect("L");
    let obc_r =
        self_energy(&dk.lead_r, e, Eta::ZERO, Side::Right, ObcMethod::ShiftInvert).expect("R");
    let sys = ObcSystem {
        a: dk.es_minus_h(e),
        sigma_l: obc_l.sigma.clone().into(),
        sigma_r: obc_r.sigma.clone().into(),
        rhs_top: obc_l.injection.clone(),
        rhs_bottom: obc_r.injection.clone(),
    };
    let t = Csr::from_dense(&sys.t_dense(), 1e-10);
    let b = Csr::from_dense(&sys.b_dense(), 1e-10);
    println!("T = (E·S − H − Σ^RB), dim {} x {}, nnz {}:", t.rows(), t.cols(), t.nnz());
    println!("{}", spy_string(&t, 20, 40));
    println!("Inj (RHS), {} columns (left + right injected modes):", b.cols());
    println!("{}", spy_string(&b, 20, 12));
    println!("paper: block tri-diagonal T with self-energy corners; RHS non-zero only in the");
    println!("top and bottom block rows — the structure SplitSolve exploits (Fig. 6).");
}
