//! Table II / Fig. 11(a): OMEN weak scaling on Titan — Si DG UTBFET with
//! 23 040 atoms, 21 k-points, 4-node spatial domains, ~13–14 energy
//! points per node.

use qtx_bench::{print_table, Row};
use qtx_machine::experiments::{fig11_weak, TABLE2_PAPER};

fn main() {
    let nodes: Vec<usize> = TABLE2_PAPER.iter().map(|r| r.0).collect();
    let model = fig11_weak(&nodes);
    let rows: Vec<Row> = model
        .iter()
        .zip(TABLE2_PAPER.iter())
        .map(|(m, p)| {
            Row::new(
                format!("{} nodes", m.nodes),
                vec![p.1, m.time_s, p.2, m.points_per_node, p.3, m.time_per_point],
            )
        })
        .collect();
    print_table(
        "Table II — weak scaling (paper vs model)",
        &["config", "t_paper", "t_model", "E/n_paper", "E/n_model", "t/E_paper", "t/E_model"],
        &rows,
    );
    let t0 = model[0].time_per_point;
    let spread = model.iter().map(|r| (r.time_per_point - t0).abs() / t0).fold(0.0f64, f64::max);
    println!(
        "\ntime-per-point spread: {:.1}% (paper: ~5% variation across all nodes)",
        spread * 100.0
    );
}
