//! Fig. 12: (a) machine- and GPU-level power profiles of the 15 PFlop/s
//! run; (b) per-GPU kernel activity during one energy point.

use qtx_accel::{power_profile, AccelRuntime, GpuSpec, TraceSummary};
use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_bench::{print_table, Row};
use qtx_core::{Device, PointPolicy, TransportEngine};
use qtx_machine::fig12_power;
use qtx_solver::SolverKind;

fn main() {
    // (a) power report of the full-machine run (model).
    let p = fig12_power();
    let rows = vec![
        Row::new("machine avg (MW)", vec![7.6, p.machine_avg_mw]),
        Row::new("machine peak (MW)", vec![8.8, p.machine_peak_mw]),
        Row::new("GPU avg (W)", vec![146.0, p.gpu_avg_w]),
        Row::new("machine MFLOPS/W", vec![1975.0, p.machine_mflops_per_w]),
        Row::new("GPU MFLOPS/W", vec![5396.0, p.gpu_mflops_per_w]),
        Row::new("sustained PFlop/s", vec![15.01, p.sustained_pflops]),
    ];
    print_table(
        "Fig. 12(a) — power figures (paper vs model)",
        &["quantity", "paper", "model"],
        &rows,
    );

    // (b) real kernel activity of one energy point on 4 virtual GPUs.
    let spec = DeviceBuilder::nanowire(1.0).cells(16).basis(BasisKind::TightBinding).build();
    let mut dev = Device::build(spec).expect("device");
    dev.config.solver = SolverKind::SplitSolve { partitions: 2 };
    let dk = dev.at_kz(0.0);
    let e = dk.lead_l.dispersive_energy(1.0, 0.2, 0.3).expect("band");
    let rt = AccelRuntime::new(4, GpuSpec::k20x_titan());
    let _ = TransportEngine::new(dev)
        .solve_point(e, 0.0, &PointPolicy::direct().with_runtime(&rt))
        .into_result()
        .expect("solve");
    let records = rt.traces();
    println!("\nFig. 12(b) — GPU activity during one energy point (4 GPUs):");
    println!("{}", TraceSummary::activity_chart(&records, 4, 64));
    let horizon = rt.max_clock();
    let spec_gpu = rt.spec();
    println!("per-GPU utilization and simulated power draw:");
    for d in 0..4 {
        let u = rt.utilization(d, horizon);
        let profile = power_profile(&records, &spec_gpu, d, horizon, 16);
        let avg = qtx_accel::power::mean_power(&profile);
        println!("  GPU{d}: utilization {:5.1}%  avg power {avg:6.1} W", u * 100.0);
    }
    println!("\npaper: high utilization with overlapped compute + H-to-D/D-to-H/D-to-D transfers");
}
