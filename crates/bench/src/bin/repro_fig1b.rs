//! Fig. 1(b): energy-resolved transmission through a Si nanowire,
//! LDA (blue) vs HSE06 hybrid functional (red).
//!
//! Paper: d = 2.2 nm, L = 34.8 nm, 10 560 atoms. Here the cross-section is
//! downscaled for laptop runtimes (same code path end to end: CP2K-lite →
//! FEAST OBCs → SplitSolve → transmission); the observable comparison —
//! the hybrid functional widening the zero-transmission gap — is preserved.

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_bench::{print_table, Row};
use qtx_core::{transmission, Device};
use qtx_cp2k::Functional;

fn gap_width(spectrum: &[(f64, f64)]) -> f64 {
    // Longest zero-transmission stretch (flushed at the window edge).
    let mut best = 0.0f64;
    let mut start: Option<f64> = None;
    for &(e, t) in spectrum {
        if t < 1e-6 {
            start.get_or_insert(e);
        } else if let Some(s) = start.take() {
            best = best.max(e - s);
        }
    }
    if let (Some(s), Some(&(last, _))) = (start, spectrum.last()) {
        best = best.max(last - s);
    }
    best
}

fn main() {
    let energies: Vec<f64> = (0..81).map(|i| -4.0 + i as f64 * 0.1).collect();
    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    let mut spectra = Vec::new();
    for functional in [Functional::Lda, Functional::Hse06] {
        let spec = DeviceBuilder::nanowire(1.0).cells(8).basis(BasisKind::TightBinding).build();
        let dev = Device::build_with_functional(spec, functional).expect("device");
        let mut spectrum = Vec::new();
        for &e in &energies {
            let t = transmission(&dev, e).map(|r| r.transmission).unwrap_or(0.0);
            spectrum.push((e, t));
        }
        gaps.push(gap_width(&spectrum));
        spectra.push((functional, spectrum));
    }
    for &e in energies.iter().step_by(4) {
        let lda = spectra[0].1.iter().find(|(x, _)| (*x - e).abs() < 1e-9).map(|p| p.1);
        let hse = spectra[1].1.iter().find(|(x, _)| (*x - e).abs() < 1e-9).map(|p| p.1);
        rows.push(Row::new(
            format!("E = {e:+.2} eV"),
            vec![lda.unwrap_or(0.0), hse.unwrap_or(0.0)],
        ));
    }
    print_table(
        "Fig. 1(b) — Si nanowire transmission: LDA vs HSE06",
        &["energy", "T_LDA(E)", "T_HSE06(E)"],
        &rows,
    );
    println!("\nzero-transmission gap:  LDA = {:.2} eV,  HSE06 = {:.2} eV", gaps[0], gaps[1]);
    println!("paper: the hybrid functional reopens the LDA gap (red vs blue curves)");
    assert!(gaps[1] > gaps[0] + 0.3, "HSE06 must widen the gap");
}
