//! Emits `BENCH_lu.json`: blocked gemm-powered LU/LDLᴴ vs the unblocked
//! rank-1 baseline, at the kernel level (zgetrf/zgetrs, 64–512) and at
//! the solver level (SplitSolve / block-Thomas ms per energy point, the
//! nb=8/s=64 configuration the PR 1 numbers were recorded at).
//!
//! The unblocked baseline is the same code path the blocked factorization
//! dispatches to below the crossover (`lu_factor_unblocked` /
//! `force_unblocked_factor`), so the A/B runs in one process on identical
//! inputs. Run with `cargo run --release -p qtx-bench --bin bench_lu_json
//! [output-path] [--quick]`; `--quick` shrinks sizes and repetitions for
//! the CI smoke profile.

use qtx_bench::{print_table, Row};
use qtx_linalg::{
    c64, force_unblocked_factor, ldl_factor_nopiv, ldl_factor_nopiv_unblocked, lu_factor,
    lu_factor_unblocked, Complex64, LuFactors, ZMat,
};
use qtx_solver::{btd_lu_solve_ws, ObcSystem, SplitSolve, Workspace};
use qtx_sparse::Btd;
use std::fmt::Write as _;
use std::time::Instant;

/// Reference numbers recorded by PR 1 on this container (nb=8, s=64).
const PR1_SPLITSOLVE_MS_PER_PT: f64 = 17.2;
const PR1_BTD_LU_MS_PER_PT: f64 = 7.0;

fn median_secs(mut f: impl FnMut(), reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples[samples.len() / 2]
}

/// The seed's `zgetrf`: element-indexed pivot/rank-1 loops, reproduced
/// verbatim (modulo the pivot bookkeeping it didn't track) as the fixed
/// before-this-PR baseline. The in-library `lu_factor_unblocked` is this
/// algorithm after the slice/`mul_add` rewrite, so both are reported.
fn seed_getrf(a: &ZMat) -> ZMat {
    let n = a.rows();
    let mut lu = a.clone();
    for k in 0..n {
        let mut p = k;
        let mut best = lu[(k, k)].norm_sqr();
        for i in k + 1..n {
            let mag = lu[(i, k)].norm_sqr();
            if mag > best {
                best = mag;
                p = i;
            }
        }
        assert!(best.sqrt() > 0.0, "seed baseline hit a zero pivot");
        if p != k {
            lu.swap_rows(k, p);
        }
        let pivot_inv = lu[(k, k)].inv();
        for i in k + 1..n {
            let lik = lu[(i, k)] * pivot_inv;
            lu[(i, k)] = lik;
        }
        for j in k + 1..n {
            let ukj = lu[(k, j)];
            if ukj == Complex64::ZERO {
                continue;
            }
            for i in k + 1..n {
                let lik = lu[(i, k)];
                lu[(i, j)] -= lik * ukj;
            }
        }
    }
    lu
}

/// The seed's scalar forward/backward substitution (`zgetrs` baseline),
/// reproduced verbatim so the blocked trsm-based solve has a fixed
/// reference even though the library path changed.
fn seed_getrs(f: &LuFactors, b: &ZMat) -> ZMat {
    let n = f.lu.rows();
    let mut x = ZMat::zeros(n, b.cols());
    for j in 0..b.cols() {
        for i in 0..n {
            x[(i, j)] = b[(f.perm[i], j)];
        }
    }
    for j in 0..x.cols() {
        for k in 0..n {
            let xkj = x[(k, j)];
            if xkj == Complex64::ZERO {
                continue;
            }
            for i in k + 1..n {
                let lik = f.lu[(i, k)];
                x[(i, j)] -= lik * xkj;
            }
        }
        for k in (0..n).rev() {
            let ukk_inv = f.lu[(k, k)].inv();
            let xkj = x[(k, j)] * ukk_inv;
            x[(k, j)] = xkj;
            for i in 0..k {
                let uik = f.lu[(i, k)];
                x[(i, j)] -= uik * xkj;
            }
        }
    }
    x
}

fn diag_dominant(n: usize, seed: u64) -> ZMat {
    let mut a = ZMat::random(n, n, seed);
    for i in 0..n {
        a[(i, i)] += c64(n as f64, n as f64 * 0.5);
    }
    a
}

fn hermitian_pd(n: usize, seed: u64) -> ZMat {
    let g = ZMat::random(n, n, seed);
    let mut a = ZMat::zeros(n, n);
    qtx_linalg::zherk(1.0, g.view(), qtx_linalg::Op::None, 0.0, &mut a);
    for i in 0..n {
        a[(i, i)] += c64(n as f64, 0.0);
    }
    a
}

fn random_system(nb: usize, s: usize, m: usize, seed: u64) -> ObcSystem {
    let mut a = Btd::zeros(nb, s);
    for i in 0..nb {
        a.diag[i] = ZMat::random(s, s, seed + i as u64);
        for d in 0..s {
            a.diag[i][(d, d)] += c64(4.0 + s as f64, 1.0);
        }
    }
    for i in 0..nb - 1 {
        a.upper[i] = ZMat::random(s, s, seed + 100 + i as u64).scaled(c64(0.4, 0.0));
        a.lower[i] = ZMat::random(s, s, seed + 200 + i as u64).scaled(c64(0.4, 0.0));
    }
    ObcSystem {
        a,
        sigma_l: ZMat::random(s, s, seed + 300).scaled(c64(0.3, 0.1)).into(),
        sigma_r: ZMat::random(s, s, seed + 301).scaled(c64(0.3, -0.1)).into(),
        rhs_top: ZMat::random(s, m, seed + 400),
        rhs_bottom: ZMat::random(s, m, seed + 401),
    }
}

/// Warm-pool ms/pt of a solver over `points` energy points.
fn solver_ms_per_point(systems: &[ObcSystem], run: impl Fn(&ObcSystem, &Workspace)) -> f64 {
    let ws = Workspace::new();
    // One warm-up pass fills the pool, then the measured sweep.
    run(&systems[0], &ws);
    let t0 = Instant::now();
    for sys in systems {
        run(sys, &ws);
    }
    t0.elapsed().as_secs_f64() / systems.len() as f64 * 1e3
}

fn main() {
    let mut out_path = "BENCH_lu.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sizes: &[usize] = if quick { &[64, 128, 256] } else { &[64, 128, 256, 384, 512] };
    let points = if quick { 4 } else { 16 };

    let mut entries = String::new();
    let mut rows = Vec::new();

    // ── Kernel level: zgetrf / zhetrf / zgetrs, blocked vs unblocked ──
    for &n in sizes {
        let a = diag_dominant(n, 1);
        let h = hermitian_pd(n, 2);
        let b = ZMat::random(n, n.min(64), 3);
        let reps = (2048 / n).clamp(3, 31);
        let t_f_blk = median_secs(|| drop(lu_factor(&a).unwrap()), reps);
        let t_f_unb = median_secs(|| drop(lu_factor_unblocked(&a).unwrap()), reps);
        let t_f_seed = median_secs(|| drop(seed_getrf(&a)), reps);
        let t_h_blk = median_secs(|| drop(ldl_factor_nopiv(&h).unwrap()), reps);
        let t_h_unb = median_secs(|| drop(ldl_factor_nopiv_unblocked(&h).unwrap()), reps);
        let f = lu_factor(&a).unwrap();
        let t_s_new = median_secs(|| drop(f.solve(&b)), reps);
        let t_s_seed = median_secs(|| drop(seed_getrs(&f, &b)), reps);
        let x_new = f.solve(&b);
        let x_seed = seed_getrs(&f, &b);
        assert!(x_new.max_diff(&x_seed) < 1e-8 * n as f64, "solve mismatch at n = {n}");
        let gflops = (8.0 / 3.0) * (n as f64).powi(3) / t_f_blk / 1e9;
        let _ = writeln!(
            entries,
            "    {{\"kind\": \"kernel\", \"n\": {n}, \"nrhs\": {}, \
             \"zgetrf_blocked_ms\": {:.4}, \"zgetrf_seed_ms\": {:.4}, \"zgetrf_speedup\": {:.3}, \
             \"zgetrf_unblocked_ms\": {:.4}, \"zgetrf_speedup_vs_tuned_unblocked\": {:.3}, \
             \"zgetrf_blocked_gflops\": {:.2}, \
             \"zhetrf_blocked_ms\": {:.4}, \"zhetrf_unblocked_ms\": {:.4}, \"zhetrf_speedup\": {:.3}, \
             \"zgetrs_trsm_ms\": {:.4}, \"zgetrs_seed_ms\": {:.4}, \"zgetrs_speedup\": {:.3}}},",
            b.cols(),
            t_f_blk * 1e3,
            t_f_seed * 1e3,
            t_f_seed / t_f_blk,
            t_f_unb * 1e3,
            t_f_unb / t_f_blk,
            gflops,
            t_h_blk * 1e3,
            t_h_unb * 1e3,
            t_h_unb / t_h_blk,
            t_s_new * 1e3,
            t_s_seed * 1e3,
            t_s_seed / t_s_new,
        );
        rows.push(Row::new(
            format!("zgetrf {n}x{n}"),
            vec![t_f_blk * 1e3, t_f_seed * 1e3, t_f_seed / t_f_blk, gflops],
        ));
        rows.push(Row::new(
            format!("zgetrs {n}x{}", b.cols()),
            vec![t_s_new * 1e3, t_s_seed * 1e3, t_s_seed / t_s_new, f64::NAN],
        ));
    }

    // ── Solver level: ms per energy point. (8, 64) is the PR 1 reference
    // configuration; the larger block sizes are where the paper's
    // DFT-basis workloads live and where the blocked factorization
    // dominates the per-point cost. The quick profile keeps (4, 256)
    // alongside it: since the SIMD microkernel narrowed the s = 64
    // blocked-vs-unblocked gap below the check_bench noise floor, the
    // big-block configuration is the one whose gated solver ratio keeps
    // the kind's CI coverage alive.
    let configs: &[(usize, usize)] =
        if quick { &[(8, 64), (4, 256)] } else { &[(8, 64), (8, 128), (4, 256)] };
    for &(nb, s) in configs {
        let pts = if s > 64 { points.min(8) } else { points };
        let systems: Vec<ObcSystem> =
            (0..pts).map(|p| random_system(nb, s, s / 2, 7 + p as u64)).collect();
        let solver = SplitSolve::new(2);
        let split_run =
            |sys: &ObcSystem, ws: &Workspace| drop(solver.solve_ws(sys, None, ws).unwrap());
        let btd_run = |sys: &ObcSystem, ws: &Workspace| drop(btd_lu_solve_ws(sys, ws).unwrap());

        let split_ms = solver_ms_per_point(&systems, split_run);
        let btd_ms = solver_ms_per_point(&systems, btd_run);
        force_unblocked_factor(true);
        let split_ms_unb = solver_ms_per_point(&systems, split_run);
        let btd_ms_unb = solver_ms_per_point(&systems, btd_run);
        force_unblocked_factor(false);

        let reference =
            (nb == 8 && s == 64).then_some([PR1_SPLITSOLVE_MS_PER_PT, PR1_BTD_LU_MS_PER_PT]);
        for (i, (name, ms, ms_unb)) in
            [("splitsolve", split_ms, split_ms_unb), ("btd_lu", btd_ms, btd_ms_unb)]
                .into_iter()
                .enumerate()
        {
            let pr1 = match reference {
                Some(r) => format!("{}", r[i]),
                None => "null".to_string(),
            };
            let _ = writeln!(
                entries,
                "    {{\"kind\": \"solver\", \"name\": \"{name}\", \"nb\": {nb}, \"s\": {s}, \
                 \"ms_per_point\": {:.3}, \"ms_per_point_unblocked_factor\": {:.3}, \
                 \"speedup_vs_unblocked\": {:.3}, \"pr1_ms_per_point\": {pr1}}},",
                ms,
                ms_unb,
                ms_unb / ms,
            );
            rows.push(Row::new(
                format!("{name} nb={nb} s={s} ms/pt"),
                vec![ms, ms_unb, ms_unb / ms, f64::NAN],
            ));
        }
    }

    let entries = entries.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        "{{\n  \"bench\": \"blocked LU/LDL factorization stack vs unblocked baseline\",\n  \
         \"cores\": {cores},\n  \"target_cpu\": \"native\",\n  \"quick\": {quick},\n  \
         \"flags_note\": \"kernel speedup = unblocked_ms / blocked_ms; solver rows compare \
         warm-pool ms/pt against the same binary with force_unblocked_factor(true) and the \
         recorded PR 1 numbers\",\n  \"results\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_lu.json");
    print_table(
        "LU stack: blocked (new) vs unblocked baseline",
        &["case", "new ms", "baseline ms", "speedup", "GF/s"],
        &rows,
    );
    println!("\nwrote {out_path}");
}
