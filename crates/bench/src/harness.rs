//! Table formatting shared by the `repro_*` binaries.

/// A labelled row of numeric cells.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (first column).
    pub label: String,
    /// Numeric cells, printed with engineering precision.
    pub cells: Vec<f64>,
}

impl Row {
    /// Builds a row.
    pub fn new(label: impl Into<String>, cells: Vec<f64>) -> Self {
        Row { label: label.into(), cells }
    }
}

/// Prints an aligned ASCII table with a title and column headers.
pub fn print_table(title: &str, headers: &[&str], rows: &[Row]) {
    println!("\n=== {title} ===");
    let mut line = format!("{:<26}", headers.first().copied().unwrap_or(""));
    for h in &headers[1..] {
        line.push_str(&format!("{h:>16}"));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(120)));
    for row in rows {
        let mut l = format!("{:<26}", row.label);
        for c in &row.cells {
            if c.abs() >= 1e5 || (c.abs() < 1e-3 && *c != 0.0) {
                l.push_str(&format!("{c:>16.4e}"));
            } else {
                l.push_str(&format!("{c:>16.4}"));
            }
        }
        println!("{l}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_hold_cells() {
        let r = Row::new("a", vec![1.0, 2.0]);
        assert_eq!(r.cells.len(), 2);
        print_table("t", &["c0", "c1", "c2"], &[r]);
    }
}
