//! Node-level kernel benchmarks: the `zgemm`/`zgesv`/`zhesv` workloads of
//! §3.C and the §5.E Hermitian saving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qtx_linalg::{ldl_factor_nopiv, lu_factor, lu_factor_nopiv, matmul, qr_factor, ZMat};
use std::hint::black_box;

fn hermitian_pd(n: usize, seed: u64) -> ZMat {
    let g = ZMat::random(n, n, seed);
    let mut a = &g * &g.adjoint();
    for i in 0..n {
        a[(i, i)] += qtx_linalg::c64(n as f64, 0.0);
    }
    a.hermitianize();
    a
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("zgemm");
    g.sample_size(10);
    for n in [32usize, 64, 128, 256, 384] {
        let a = ZMat::random(n, n, 1);
        let b = ZMat::random(n, n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(matmul(&a, &b)));
        });
    }
    // Transform paths: packing folds the transpose/adjoint in, so these
    // should track the Op::None numbers closely.
    let n = 256;
    let a = ZMat::random(n, n, 3);
    let b = ZMat::random(n, n, 4);
    for (label, op_a, op_b) in [
        ("NT", qtx_linalg::Op::None, qtx_linalg::Op::Transpose),
        ("HN", qtx_linalg::Op::Adjoint, qtx_linalg::Op::None),
    ] {
        g.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
            let mut c_out = ZMat::zeros(n, n);
            bench.iter(|| {
                qtx_linalg::gemm(
                    qtx_linalg::Complex64::ONE,
                    &a,
                    op_a,
                    &b,
                    op_b,
                    qtx_linalg::Complex64::ZERO,
                    &mut c_out,
                );
                black_box(&c_out);
            });
        });
    }
    g.finish();
}

fn bench_factorizations(c: &mut Criterion) {
    let mut g = c.benchmark_group("factorization");
    g.sample_size(20);
    for n in [48usize, 96, 192] {
        let a = hermitian_pd(n, 3);
        g.bench_with_input(BenchmarkId::new("zgesv (pivoted LU)", n), &n, |bench, _| {
            bench.iter(|| black_box(lu_factor(&a).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("zgetrf unblocked baseline", n), &n, |bench, _| {
            bench.iter(|| black_box(qtx_linalg::lu_factor_unblocked(&a).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("zgesv_nopiv (MAGMA-style)", n), &n, |bench, _| {
            bench.iter(|| black_box(lu_factor_nopiv(&a).unwrap()));
        });
        // The §5.E kernel: Hermitian LDLᴴ at half the LU flops.
        g.bench_with_input(BenchmarkId::new("zhesv_nopiv (Hermitian)", n), &n, |bench, _| {
            bench.iter(|| black_box(ldl_factor_nopiv(&a).unwrap()));
        });
    }
    // The blocked solve path: trsm-powered multi-RHS back-substitution.
    let n = 192;
    let a = hermitian_pd(n, 7);
    let b = ZMat::random(n, 64, 8);
    let f = lu_factor(&a).unwrap();
    let ws = qtx_linalg::Workspace::new();
    g.bench_function("zgetrs 192x64 solve_into (pooled)", |bench| {
        bench.iter(|| {
            let mut x = ws.take_scratch(n, 64);
            f.solve_into(b.view(), &mut x);
            black_box(&x);
            ws.recycle(x);
        });
    });
    g.finish();
}

fn bench_qr_eig(c: &mut Criterion) {
    let mut g = c.benchmark_group("qr_eig");
    g.sample_size(10);
    let a = ZMat::random(64, 32, 5);
    g.bench_function("qr_64x32", |bench| bench.iter(|| black_box(qr_factor(&a))));
    // Blocked compact-WY path (n above the crossover) vs the scalar
    // baseline on the same input.
    let big = ZMat::random(256, 256, 7);
    g.bench_function("qr_256 blocked", |bench| bench.iter(|| black_box(qr_factor(&big))));
    g.bench_function("qr_256 unblocked", |bench| {
        bench.iter(|| black_box(qtx_linalg::qr_factor_unblocked(&big)))
    });
    g.bench_function("hessenberg_192 blocked", |bench| {
        let h = ZMat::random(192, 192, 8);
        bench.iter(|| black_box(qtx_linalg::hessenberg(&h)))
    });
    let m = ZMat::random(32, 32, 6);
    g.bench_function("eig_32", |bench| bench.iter(|| black_box(qtx_linalg::eig(&m).unwrap())));
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_factorizations, bench_qr_eig);
criterion_main!(benches);
