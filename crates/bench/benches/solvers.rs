//! Eq. 5 solver benchmark: SplitSolve (1/2/4 partitions) vs the
//! MUMPS-like BTD-LU vs block cyclic reduction — the green bars of Fig. 8
//! and the partition study of Fig. 7, at laptop scale with real kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qtx_linalg::{c64, ZMat};
use qtx_solver::{bcr_solve, btd_lu_solve, ObcSystem, SplitSolve};
use qtx_sparse::Btd;
use std::hint::black_box;

fn system(nb: usize, s: usize, m: usize) -> ObcSystem {
    let mut a = Btd::zeros(nb, s);
    for i in 0..nb {
        a.diag[i] = ZMat::random(s, s, 10 + i as u64);
        for d in 0..s {
            a.diag[i][(d, d)] += c64(6.0, 1.0);
        }
    }
    for i in 0..nb - 1 {
        a.upper[i] = ZMat::random(s, s, 60 + i as u64).scaled(c64(0.35, 0.0));
        a.lower[i] = ZMat::random(s, s, 90 + i as u64).scaled(c64(0.35, 0.0));
    }
    ObcSystem {
        a,
        sigma_l: ZMat::random(s, s, 300).scaled(c64(0.25, 0.1)).into(),
        sigma_r: ZMat::random(s, s, 301).scaled(c64(0.25, -0.1)).into(),
        rhs_top: ZMat::random(s, m, 302),
        rhs_bottom: ZMat::random(s, m, 303),
    }
}

fn bench_solvers(c: &mut Criterion) {
    let sys = system(16, 48, 8);
    let mut g = c.benchmark_group("eq5_solvers");
    g.sample_size(10);
    for p in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("splitsolve", p), &p, |b, &p| {
            let solver = SplitSolve::new(p);
            b.iter(|| black_box(solver.solve(&sys, None).unwrap()));
        });
    }
    g.bench_function("btd_lu (MUMPS-like)", |b| b.iter(|| black_box(btd_lu_solve(&sys).unwrap())));
    g.bench_function("bcr (legacy OMEN)", |b| b.iter(|| black_box(bcr_solve(&sys).unwrap())));
    g.finish();
}

fn bench_block_size_scaling(c: &mut Criterion) {
    // The Fig. 3 consequence: DFT blocks are bigger, and the s³ kernels
    // dominate — measure the block-size scaling of one SplitSolve run.
    let mut g = c.benchmark_group("splitsolve_block_scaling");
    g.sample_size(10);
    for s in [16usize, 32, 64] {
        let sys = system(8, s, 4);
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, _| {
            let solver = SplitSolve::new(2);
            b.iter(|| black_box(solver.solve(&sys, None).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_solvers, bench_block_size_scaling);
criterion_main!(benches);
