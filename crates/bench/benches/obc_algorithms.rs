//! OBC algorithm benchmark: FEAST vs shift-and-invert vs Sancho–Rubio
//! decimation on the same lead — the algorithmic content of Fig. 8's
//! orange (OBC) bars.

use criterion::{criterion_group, criterion_main, Criterion};
use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_core::Device;
use qtx_obc::{
    self_energy, self_energy_decimation, CompanionPencil, Eta, FeastConfig, LeadBlocks, ObcMethod,
    Side,
};
use std::hint::black_box;

fn dft_lead() -> (LeadBlocks, f64) {
    let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(BasisKind::Dft3sp).build();
    let dev = Device::build(spec).expect("device");
    let dk = dev.at_kz(0.0);
    let e = dk.lead_l.bands_at(1.1).into_iter().find(|&b| b > 1.0).expect("band");
    (dk.lead_l, e)
}

fn bench_obc(c: &mut Criterion) {
    let (lead, e) = dft_lead();
    let mut g = c.benchmark_group("obc_self_energy");
    g.sample_size(10);
    g.bench_function("feast_annulus", |b| {
        b.iter(|| {
            black_box(
                self_energy(
                    &lead,
                    e,
                    Eta::ZERO,
                    Side::Left,
                    ObcMethod::Feast(FeastConfig::default()),
                )
                .unwrap(),
            )
        })
    });
    g.bench_function("shift_invert_dense", |b| {
        b.iter(|| {
            black_box(self_energy(&lead, e, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap())
        })
    });
    g.bench_function("sancho_rubio_decimation", |b| {
        b.iter(|| black_box(self_energy_decimation(&lead, e, 1e-8, Side::Left).unwrap()))
    });
    g.finish();
}

fn bench_feast_pieces(c: &mut Criterion) {
    let (lead, e) = dft_lead();
    let pencil = CompanionPencil::at_energy(&lead, e, 0.0);
    let mut g = c.benchmark_group("feast_pieces");
    g.sample_size(10);
    let z = qtx_linalg::Complex64::from_polar(1.0, 0.37);
    g.bench_function("poly_factorization", |b| {
        b.iter(|| black_box(pencil.factor_poly(z).unwrap()))
    });
    let f = pencil.factor_poly(z).unwrap();
    let y = qtx_linalg::ZMat::random(pencil.nbc(), 16, 9);
    g.bench_function("shifted_solve_16rhs", |b| {
        b.iter(|| black_box(pencil.solve_shifted(&f, z, &y)))
    });
    g.finish();
}

criterion_group!(benches, bench_obc, bench_feast_pieces);
criterion_main!(benches);
