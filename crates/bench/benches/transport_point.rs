//! End-to-end energy-point benchmark: the full OBC + Eq. 5 pipeline per
//! (E, k) pixel in the tight-binding vs DFT-like basis — the cost gap that
//! motivated the whole paper (Fig. 3 → Fig. 8).

use criterion::{criterion_group, criterion_main, Criterion};
use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_core::{Device, PointPolicy, TransportEngine};
use qtx_obc::ObcMethod;
use std::hint::black_box;

fn device(basis: BasisKind) -> (Device, f64) {
    let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(basis).build();
    let dev = Device::build(spec).expect("device");
    let dk = dev.at_kz(0.0);
    let e = dk.lead_l.bands_at(1.0).into_iter().find(|&b| b > 0.5).expect("band");
    (dev, e)
}

fn bench_energy_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("energy_point");
    g.sample_size(10);
    for (name, basis) in
        [("tight_binding", BasisKind::TightBinding), ("dft_3sp", BasisKind::Dft3sp)]
    {
        let (dev, e) = device(basis);
        let engine = TransportEngine::new(dev);
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(engine.solve_point(e, 0.0, &PointPolicy::direct()).into_result().unwrap())
            })
        });
    }
    g.finish();
}

fn bench_obc_method_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: the OBC algorithm is the knob that moved the
    // paper from 1000-atom to 50 000-atom systems.
    let (dev, e) = device(BasisKind::Dft3sp);
    let mut g = c.benchmark_group("obc_ablation_full_point");
    g.sample_size(10);
    for (name, obc) in [("feast", ObcMethod::default()), ("shift_invert", ObcMethod::ShiftInvert)] {
        let mut d = dev.clone();
        d.config.obc = obc;
        let engine = TransportEngine::new(d);
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(engine.solve_point(e, 0.0, &PointPolicy::direct()).into_result().unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_energy_point, bench_obc_method_ablation);
criterion_main!(benches);
