//! Device geometry generators (Fig. 1(a) and 1(c)).
//!
//! * [`nanowire`] — gate-all-around Si nanowire FET: a cylinder of
//!   diameter `d` carved from the diamond lattice, transport along
//!   `<100>`/x, confined in y and z.
//! * [`utb_film`] — double-gate ultra-thin-body FET: a film of thickness
//!   `t_body` confined in y, periodic out-of-plane (z).
//!
//! Both produce structures whose unit cell repeats identically along x, so
//! the lead/device Hamiltonian blocks of §2.B follow by translation.

use crate::basis::BasisKind;
use crate::structure::{diamond_supercell, Species, Structure, SI_LATTICE};
use serde::{Deserialize, Serialize};

/// Geometric description of a transport device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceGeometry {
    /// "nanowire" or "utb" (or "battery" from the battery module).
    pub kind: String,
    /// Nanowire diameter or film thickness (nm).
    pub cross_section: f64,
    /// Number of unit cells along transport.
    pub n_cells: usize,
    /// Unit-cell length along x (nm).
    pub cell_len: f64,
    /// Whether z is periodic (UTB) or confined (nanowire).
    pub z_periodic: bool,
}

impl DeviceGeometry {
    /// Device length along transport (nm).
    pub fn length(&self) -> f64 {
        self.n_cells as f64 * self.cell_len
    }
}

/// A fully specified device: unit-cell structure + basis + extent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// One transport unit cell (periodic along x).
    pub unit_cell: Structure,
    /// Geometry metadata.
    pub geometry: DeviceGeometry,
    /// Basis the matrices will be assembled in.
    pub basis: BasisKind,
}

/// Builder for the two FET families of Fig. 1. Produces a [`DeviceSpec`]
/// consumed by `qtx-cp2k` (matrix generation) and `qtx-core` (transport).
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    kind: String,
    cross_section: f64,
    n_cells: usize,
    basis: BasisKind,
}

impl DeviceBuilder {
    /// Gate-all-around nanowire of diameter `d` nm (Fig. 1(a)).
    pub fn nanowire(d: f64) -> Self {
        DeviceBuilder {
            kind: "nanowire".into(),
            cross_section: d,
            n_cells: 8,
            basis: BasisKind::Dft3sp,
        }
    }

    /// Ultra-thin-body film of thickness `t_body` nm (Fig. 1(c)).
    pub fn utb(t_body: f64) -> Self {
        DeviceBuilder {
            kind: "utb".into(),
            cross_section: t_body,
            n_cells: 8,
            basis: BasisKind::Dft3sp,
        }
    }

    /// Sets the number of transport unit cells.
    pub fn cells(mut self, n: usize) -> Self {
        self.n_cells = n;
        self
    }

    /// Sets the basis.
    pub fn basis(mut self, basis: BasisKind) -> Self {
        self.basis = basis;
        self
    }

    /// Builds the device specification.
    pub fn build(self) -> DeviceSpec {
        let unit_cell = match self.kind.as_str() {
            "nanowire" => nanowire(self.cross_section),
            "utb" => utb_film(self.cross_section),
            other => panic!("unknown device kind {other}"),
        };
        let z_periodic = unit_cell.z_period > 0.0;
        DeviceSpec {
            geometry: DeviceGeometry {
                kind: self.kind,
                cross_section: self.cross_section,
                n_cells: self.n_cells,
                cell_len: unit_cell.x_period,
                z_periodic,
            },
            unit_cell,
            basis: self.basis,
        }
    }
}

/// Carves one transport unit cell of a Si nanowire of diameter `d` (nm).
/// The carve criterion depends only on (y, z), so every cell along x is
/// identical — the translational symmetry the lead construction needs.
pub fn nanowire(d: f64) -> Structure {
    let a = SI_LATTICE;
    let n_tr = ((d / a).ceil() as usize + 1).max(1);
    let mut s = diamond_supercell(Species::Si, a, 1, n_tr, n_tr);
    let c = n_tr as f64 * a / 2.0;
    let r2 = (d / 2.0) * (d / 2.0);
    s.atoms.retain(|at| {
        let dy = at.pos[1] - c;
        let dz = at.pos[2] - c;
        dy * dy + dz * dz <= r2 + 1e-12
    });
    s.z_period = 0.0; // confined cross-section
    s.label = format!("Si NW d={d}nm unit cell");
    s.sort_into_slabs(a);
    s
}

/// Carves one transport unit cell of an ultra-thin body of thickness
/// `t_body` (nm), periodic along z with one conventional cell.
pub fn utb_film(t_body: f64) -> Structure {
    let a = SI_LATTICE;
    let n_y = ((t_body / a).ceil() as usize + 1).max(1);
    let mut s = diamond_supercell(Species::Si, a, 1, n_y, 1);
    let c = n_y as f64 * a / 2.0;
    s.atoms.retain(|at| (at.pos[1] - c).abs() <= t_body / 2.0 + 1e-12);
    s.z_period = a; // periodic out-of-plane (Fig. 1(c))
    s.label = format!("Si UTB t={t_body}nm unit cell");
    s.sort_into_slabs(a);
    s
}

/// Estimates the total atom count of a full-length device, used to check
/// the paper-scale structures (55 488-atom nanowire, 23 040-atom UTB)
/// without building them atom by atom.
pub fn full_device_atom_count(spec: &DeviceSpec) -> usize {
    spec.unit_cell.len() * spec.geometry.n_cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanowire_cross_section_is_round() {
        let s = nanowire(1.5);
        assert!(!s.is_empty());
        let b = s.bounds();
        let width_y = b[1].1 - b[1].0;
        let width_z = b[2].1 - b[2].0;
        assert!(width_y <= 1.5 + 1e-9);
        assert!((width_y - width_z).abs() < 0.3, "roughly isotropic cross-section");
    }

    #[test]
    fn nanowire_atom_count_scales_with_area() {
        let small = nanowire(1.0).len() as f64;
        let large = nanowire(2.0).len() as f64;
        let ratio = large / small;
        assert!(ratio > 2.5 && ratio < 6.0, "area scaling, got {ratio}");
    }

    #[test]
    fn paper_scale_nanowire_atom_count() {
        // The paper's largest structure: d = 3.2 nm, L = 104.3 nm,
        // 55 488 atoms. Our carve (no H passivation shell) must land in
        // the same range: tens of thousands of atoms.
        let cell = nanowire(3.2);
        let cells = (104.3 / SI_LATTICE).round() as usize;
        let total = cell.len() * cells;
        assert!(
            (30_000..90_000).contains(&total),
            "paper-scale NW atom count {total} (paper: 55 488)"
        );
    }

    #[test]
    fn utb_film_is_z_periodic() {
        let s = utb_film(1.0);
        assert!(s.z_period > 0.0);
        assert!(!s.is_empty());
        let b = s.bounds();
        assert!(b[1].1 - b[1].0 <= 1.0 + 1e-9, "confined in y");
    }

    #[test]
    fn paper_scale_utb_atom_count() {
        // Fig. 8(a): t_body = 5 nm, L = 78.2 nm, 23 040 atoms. The model
        // counts only the crystalline Si body (per-z-cell column), so
        // normalize to the paper's 3-D count via the z extent: the paper
        // device is one z-cell wide in the periodic direction too.
        let cell = utb_film(5.0);
        let cells = (78.2 / SI_LATTICE).round() as usize;
        let total = cell.len() * cells;
        assert!(
            (10_000..40_000).contains(&total),
            "paper-scale UTB atom count {total} (paper: 23 040)"
        );
    }

    #[test]
    fn builder_produces_consistent_spec() {
        let spec = DeviceBuilder::nanowire(1.2).cells(12).basis(BasisKind::TightBinding).build();
        assert_eq!(spec.geometry.n_cells, 12);
        assert_eq!(spec.basis, BasisKind::TightBinding);
        assert!(!spec.geometry.z_periodic);
        assert!((spec.geometry.cell_len - SI_LATTICE).abs() < 1e-12);
        let spec_utb = DeviceBuilder::utb(1.0).cells(6).build();
        assert!(spec_utb.geometry.z_periodic);
    }

    #[test]
    fn unit_cells_tile_identically() {
        // Every atom of the unit cell must map into [0, cell_len).
        let s = nanowire(1.2);
        for at in &s.atoms {
            assert!(at.pos[0] >= -1e-9 && at.pos[0] < s.x_period + 1e-9);
        }
    }
}
