//! Cell-list neighbour search.
//!
//! Two-centre integrals couple every atom pair within the basis cutoff;
//! the DFT-like basis reaches several coordination shells, so an O(N)
//! cell-list search replaces the naive O(N²) pair scan for the large
//! structures used in the atom-count validations.

use crate::structure::Structure;

/// Neighbour list with periodic images along `x` and optionally `z`.
#[derive(Debug, Clone)]
pub struct NeighborList {
    /// `pairs[i]` lists `(j, dx_images, dz_images, distance)` compressed as
    /// `(j, image_x, image_z, r)`: atom `i` couples to atom `j` displaced
    /// by `image_x · x_period` and `image_z · z_period`.
    pairs: Vec<Vec<(usize, i32, i32, f64)>>,
}

impl NeighborList {
    /// Builds the neighbour list of `s` with interaction cutoff `rcut`.
    ///
    /// `x_images`/`z_images` control how many periodic images are scanned
    /// along the transport / out-of-plane axes (0 = finite).
    pub fn build(s: &Structure, rcut: f64, x_images: i32, z_images: i32) -> Self {
        let n = s.len();
        let mut pairs = vec![Vec::new(); n];
        if n == 0 {
            return NeighborList { pairs };
        }
        // Cell list over the base image.
        let bounds = s.bounds();
        let cell = rcut.max(1e-6);
        let dims: [usize; 3] = std::array::from_fn(|d| {
            (((bounds[d].1 - bounds[d].0) / cell).floor() as usize + 1).max(1)
        });
        let cell_of = |pos: &[f64; 3]| -> [usize; 3] {
            std::array::from_fn(|d| {
                (((pos[d] - bounds[d].0) / cell).floor() as usize).min(dims[d] - 1)
            })
        };
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); dims[0] * dims[1] * dims[2]];
        let flat = |c: [usize; 3]| (c[0] * dims[1] + c[1]) * dims[2] + c[2];
        for (i, a) in s.atoms.iter().enumerate() {
            buckets[flat(cell_of(&a.pos))].push(i);
        }
        let rcut2 = rcut * rcut;
        for (i, a) in s.atoms.iter().enumerate() {
            for ix in -x_images..=x_images {
                for iz in -z_images..=z_images {
                    let shifted = [
                        a.pos[0] + ix as f64 * s.x_period,
                        a.pos[1],
                        a.pos[2] + iz as f64 * s.z_period,
                    ];
                    // Scan the 3×3×3 cell neighbourhood of the shifted point.
                    let c = [
                        ((shifted[0] - bounds[0].0) / cell).floor() as i64,
                        ((shifted[1] - bounds[1].0) / cell).floor() as i64,
                        ((shifted[2] - bounds[2].0) / cell).floor() as i64,
                    ];
                    for dx in -1..=1i64 {
                        for dy in -1..=1i64 {
                            for dz in -1..=1i64 {
                                let cc = [c[0] + dx, c[1] + dy, c[2] + dz];
                                if cc.iter().zip(&dims).any(|(&v, &dim)| v < 0 || v >= dim as i64) {
                                    continue;
                                }
                                let bucket = &buckets
                                    [flat([cc[0] as usize, cc[1] as usize, cc[2] as usize])];
                                for &j in bucket {
                                    if ix == 0 && iz == 0 && j == i {
                                        continue;
                                    }
                                    let b = &s.atoms[j];
                                    // Note reversed roles: we displace i and
                                    // record the image on j's side, so store
                                    // the pair as i → j with image (-ix,-iz).
                                    let d2 = (shifted[0] - b.pos[0]).powi(2)
                                        + (shifted[1] - b.pos[1]).powi(2)
                                        + (shifted[2] - b.pos[2]).powi(2);
                                    if d2 <= rcut2 {
                                        pairs[i].push((j, -ix, -iz, d2.sqrt()));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        NeighborList { pairs }
    }

    /// Neighbours of atom `i`.
    pub fn of(&self, i: usize) -> &[(usize, i32, i32, f64)] {
        &self.pairs[i]
    }

    /// Total directed pair count.
    pub fn pair_count(&self) -> usize {
        self.pairs.iter().map(Vec::len).sum()
    }

    /// Coordination number of atom `i` within `r`.
    pub fn coordination(&self, i: usize, r: f64) -> usize {
        self.pairs[i].iter().filter(|&&(_, _, _, d)| d <= r).count()
    }

    /// Widest slab distance any stored pair crosses, given each atom's
    /// slab index. The assembly layer uses this as its pre-flight check
    /// that every coupling fits the block tri-diagonal envelope (span ≤ 1)
    /// before a single block is written.
    pub fn max_slab_span(&self, atom_slab: &[usize]) -> usize {
        let mut span = 0usize;
        for (i, nbrs) in self.pairs.iter().enumerate() {
            for &(j, _, _, _) in nbrs {
                span = span.max(atom_slab[i].abs_diff(atom_slab[j]));
            }
        }
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{diamond_supercell, Species, SI_LATTICE};

    #[test]
    fn diamond_first_shell_coordination_is_four() {
        let s = diamond_supercell(Species::Si, SI_LATTICE, 3, 3, 3);
        let nn = SI_LATTICE * 3f64.sqrt() / 4.0;
        let list = NeighborList::build(&s, nn * 1.05, 0, 0);
        // Interior atoms have exactly 4 nearest neighbours.
        let center = s
            .atoms
            .iter()
            .enumerate()
            .min_by_key(|(_, a)| {
                let mid = 1.5 * SI_LATTICE;
                (((a.pos[0] - mid).powi(2) + (a.pos[1] - mid).powi(2) + (a.pos[2] - mid).powi(2))
                    * 1e9) as i64
            })
            .unwrap()
            .0;
        assert_eq!(list.coordination(center, nn * 1.05), 4);
    }

    #[test]
    fn symmetry_of_pairs_without_images() {
        let s = diamond_supercell(Species::Si, SI_LATTICE, 2, 1, 1);
        let list = NeighborList::build(&s, 0.4, 0, 0);
        for i in 0..s.len() {
            for &(j, _, _, d) in list.of(i) {
                assert!(
                    list.of(j).iter().any(|&(k, _, _, d2)| k == i && (d2 - d).abs() < 1e-12),
                    "pair ({i},{j}) not symmetric"
                );
            }
        }
    }

    #[test]
    fn periodic_images_add_pairs() {
        let s = diamond_supercell(Species::Si, SI_LATTICE, 1, 1, 1);
        let finite = NeighborList::build(&s, 0.3, 0, 0);
        let periodic = NeighborList::build(&s, 0.3, 1, 0);
        assert!(periodic.pair_count() > finite.pair_count());
    }

    #[test]
    fn matches_brute_force() {
        let s = diamond_supercell(Species::Si, SI_LATTICE, 2, 2, 1);
        let rcut = 0.45;
        let list = NeighborList::build(&s, rcut, 0, 0);
        let mut brute = 0usize;
        for i in 0..s.len() {
            for j in 0..s.len() {
                if i == j {
                    continue;
                }
                let d2: f64 = (0..3).map(|k| (s.atoms[i].pos[k] - s.atoms[j].pos[k]).powi(2)).sum();
                if d2.sqrt() <= rcut {
                    brute += 1;
                }
            }
        }
        assert_eq!(list.pair_count(), brute);
    }
}
