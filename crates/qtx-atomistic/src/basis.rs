//! Localized basis sets and two-centre integrals.
//!
//! CP2K expands the Kohn–Sham wave functions in contracted Gaussian
//! orbitals (Eq. 2); the resulting `H`/`S` matrices carry ~100× more
//! non-zeros than a nearest-neighbour tight-binding basis (Fig. 3) and
//! couple unit cells up to `NBW ≥ 2` apart (Eq. 6). This module implements
//! a transferable two-centre parameterization with exactly those
//! properties — the documented substitution for a full Gaussian integral
//! engine:
//!
//! * overlap `S_ij(r) = s0 · exp(−(r − r_bond)/λ_s)` with a hard cutoff,
//!   which matches the exponential tail of contracted Gaussians;
//! * hopping `H_ij(r) = t_ij · exp(−(r − r_bond)/λ_h)` with per-orbital
//!   couplings giving a semiconducting spectrum (valence/conduction
//!   manifolds separated by a tunable gap);
//! * a short-cutoff 2-orbital variant standing in for the sp³
//!   tight-binding model of OMEN's legacy solvers.

use crate::structure::Species;
use serde::{Deserialize, Serialize};

/// Which basis the matrices are assembled in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BasisKind {
    /// Nearest-neighbour, 2 orbitals/atom (bonding/anti-bonding pair).
    TightBinding,
    /// DFT-like contracted-Gaussian basis: 6 orbitals/atom, long cutoff.
    Dft3sp,
}

/// Numerical parameters of a basis for one species.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BasisParams {
    /// Orbitals per atom.
    pub n_orb: usize,
    /// Interaction cutoff (nm).
    pub rcut: f64,
    /// On-site energies per orbital (eV).
    pub onsite: Vec<f64>,
    /// Hopping prefactor between like orbitals (eV); sign alternates with
    /// the orbital manifold to bend valence bands down and conduction
    /// bands up.
    pub t0: f64,
    /// Cross-manifold hopping prefactor (eV).
    pub t_cross: f64,
    /// Hopping decay length (nm).
    pub lambda_h: f64,
    /// Overlap prefactor at the bond length.
    pub s0: f64,
    /// Overlap decay length (nm).
    pub lambda_s: f64,
    /// Reference bond length (nm).
    pub r_bond: f64,
    /// Ideal bulk coordination; under-coordinated (surface) atoms get
    /// their on-site energies split away from the gap by
    /// `passivation_shift`, mimicking the hydrogen passivation of the
    /// paper's fabricated nanowires (dangling-bond states removed).
    pub ideal_coordination: usize,
    /// Per-missing-bond on-site split applied to surface atoms (eV).
    pub passivation_shift: f64,
}

impl BasisKind {
    /// Orbitals per atom in this basis.
    pub fn orbitals_per_atom(self) -> usize {
        match self {
            BasisKind::TightBinding => 2,
            BasisKind::Dft3sp => 6,
        }
    }

    /// Interaction range in unit cells for a cell of length `cell_len`:
    /// the paper's `NBW` (≥ 2 for DFT bases, 1 for tight-binding).
    pub fn nbw(self, species: Species, cell_len: f64) -> usize {
        let rcut = self.params(species).rcut;
        ((rcut / cell_len).ceil() as usize).max(1)
    }

    /// Parameter set for a species. Values are an empirical stand-in for
    /// self-consistent CP2K integrals (see module docs); the SnO/Li values
    /// encode the insulating character of lithiated regions (Fig. 1(f)).
    pub fn params(self, species: Species) -> BasisParams {
        // On-site manifold separation. These are *not* spectroscopic
        // gaps: the transport gap is the manifold separation minus one
        // full bandwidth (≈ 2·z_eff·t0), tuned here to land at ~1 eV for
        // bulk Si — cf. DESIGN.md's substitution notes.
        let (gap_center, gap) = match self {
            BasisKind::TightBinding => match species {
                Species::Si => (0.0, 10.0),
                Species::Sn => (0.0, 9.4),
                Species::O => (-0.4, 9.8),
                // Li-oxide region: wide gap, almost no current (Fig. 1(f)).
                Species::Li => (0.2, 16.0),
            },
            BasisKind::Dft3sp => match species {
                Species::Si => (0.0, 13.0),
                Species::Sn => (0.0, 12.2),
                Species::O => (-0.4, 12.6),
                Species::Li => (0.2, 20.0),
            },
        };
        let coordination = match species {
            Species::Si => 4,
            _ => 6, // rock-salt-like SnO/Li sublattice
        };
        match self {
            BasisKind::TightBinding => BasisParams {
                n_orb: 2,
                rcut: 0.26,
                onsite: vec![gap_center - gap / 2.0, gap_center + gap / 2.0],
                t0: 1.125,
                t_cross: 0.15,
                lambda_h: 0.08,
                s0: 0.0, // orthogonal TB: S = I
                lambda_s: 0.08,
                r_bond: 0.235,
                ideal_coordination: coordination,
                passivation_shift: 0.9,
            },
            BasisKind::Dft3sp => BasisParams {
                n_orb: 6,
                rcut: 0.72,
                onsite: (0..6)
                    .map(|o| {
                        let manifold = if o < 3 { -1.0 } else { 1.0 };
                        let spread = 0.35 * (o % 3) as f64;
                        gap_center + manifold * (gap / 2.0 + spread)
                    })
                    .collect(),
                t0: 0.55,
                t_cross: 0.08,
                lambda_h: 0.10,
                s0: 0.12,
                lambda_s: 0.07,
                r_bond: 0.235,
                ideal_coordination: coordination,
                passivation_shift: 0.9,
            },
        }
    }

    /// Two-centre Hamiltonian block `H_ij` (n_orb × n_orb, eV) between an
    /// atom of species `si` and one of species `sj` at distance `r`.
    /// Returns `None` beyond the cutoff.
    pub fn h_block(self, si: Species, sj: Species, r: f64) -> Option<Vec<f64>> {
        let pi = self.params(si);
        let pj = self.params(sj);
        let rcut = 0.5 * (pi.rcut + pj.rcut);
        if r > rcut || r < 1e-9 {
            return None;
        }
        let n = pi.n_orb;
        let radial = (-(r - pi.r_bond) / pi.lambda_h).exp();
        let t0 = 0.5 * (pi.t0 + pj.t0);
        let t_cross = 0.5 * (pi.t_cross + pj.t_cross);
        let mut block = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                let same_manifold = (a < n / 2) == (b < n / 2);
                let val = if a == b {
                    // Valence manifold: positive hopping (band max at Γ);
                    // conduction manifold: negative (band min at Γ).
                    let sign = if a < n / 2 { 1.0 } else { -1.0 };
                    sign * t0 * radial
                } else if same_manifold {
                    0.3 * t0 * radial / (1.0 + (a as f64 - b as f64).abs())
                } else {
                    t_cross * radial
                };
                block[a * n + b] = val;
            }
        }
        Some(block)
    }

    /// Two-centre overlap block `S_ij` at distance `r` (`None` beyond
    /// cutoff; tight-binding is orthogonal so all off-site blocks vanish).
    pub fn s_block(self, si: Species, sj: Species, r: f64) -> Option<Vec<f64>> {
        let pi = self.params(si);
        let pj = self.params(sj);
        let rcut = 0.5 * (pi.rcut + pj.rcut);
        if r > rcut || r < 1e-9 || pi.s0 == 0.0 {
            return None;
        }
        let n = pi.n_orb;
        let s0 = 0.5 * (pi.s0 + pj.s0);
        let radial = s0 * (-(r - pi.r_bond) / pi.lambda_s).exp();
        let mut block = vec![0.0; n * n];
        for a in 0..n {
            // Overlap predominantly between like orbitals.
            block[a * n + a] = radial;
        }
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orbital_counts() {
        assert_eq!(BasisKind::TightBinding.orbitals_per_atom(), 2);
        assert_eq!(BasisKind::Dft3sp.orbitals_per_atom(), 6);
    }

    #[test]
    fn nbw_matches_paper_expectations() {
        use crate::structure::SI_LATTICE;
        // Tight-binding couples only nearest cells; DFT reaches ≥ 2 (Eq. 6:
        // "NBW typically ≥ 2").
        assert_eq!(BasisKind::TightBinding.nbw(Species::Si, SI_LATTICE), 1);
        assert!(BasisKind::Dft3sp.nbw(Species::Si, SI_LATTICE) >= 2);
    }

    #[test]
    fn blocks_vanish_beyond_cutoff() {
        let b = BasisKind::Dft3sp;
        assert!(b.h_block(Species::Si, Species::Si, 10.0).is_none());
        assert!(b.h_block(Species::Si, Species::Si, 0.3).is_some());
        assert!(b.s_block(Species::Si, Species::Si, 10.0).is_none());
    }

    #[test]
    fn hopping_decays_with_distance() {
        let b = BasisKind::Dft3sp;
        let h1 = b.h_block(Species::Si, Species::Si, 0.24).unwrap();
        let h2 = b.h_block(Species::Si, Species::Si, 0.45).unwrap();
        assert!(h1[0].abs() > h2[0].abs() * 2.0);
    }

    #[test]
    fn tight_binding_is_orthogonal() {
        assert!(BasisKind::TightBinding.s_block(Species::Si, Species::Si, 0.235).is_none());
    }

    #[test]
    fn onsite_energies_have_a_gap() {
        for kind in [BasisKind::TightBinding, BasisKind::Dft3sp] {
            let p = kind.params(Species::Si);
            let n = p.n_orb;
            let max_valence = p.onsite[..n / 2].iter().cloned().fold(f64::MIN, f64::max);
            let min_conduction = p.onsite[n / 2..].iter().cloned().fold(f64::MAX, f64::min);
            assert!(min_conduction - max_valence > 1.0, "basis {kind:?} lacks a gap");
        }
    }

    #[test]
    fn lithium_region_is_insulating() {
        let p = BasisKind::Dft3sp.params(Species::Li);
        let si = BasisKind::Dft3sp.params(Species::Si);
        let gap = |p: &BasisParams| {
            let n = p.n_orb;
            p.onsite[n / 2..].iter().cloned().fold(f64::MAX, f64::min)
                - p.onsite[..n / 2].iter().cloned().fold(f64::MIN, f64::max)
        };
        assert!(gap(&p) > 1.5 * gap(&si));
    }

    #[test]
    fn h_block_symmetric_for_same_species() {
        let b = BasisKind::Dft3sp;
        let h = b.h_block(Species::Si, Species::Si, 0.3).unwrap();
        let n = 6;
        for a in 0..n {
            for c in 0..n {
                assert!((h[a * n + c] - h[c * n + a]).abs() < 1e-12);
            }
        }
    }
}
