//! Atomic structures on crystal lattices.
//!
//! Lengths are in nanometres, energies in electron-volts throughout the
//! workspace. Transport is always along `x` (the paper's convention,
//! Fig. 1(a)); `y`/`z` are confinement or periodic directions.

use serde::{Deserialize, Serialize};

/// Chemical species appearing in the paper's workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Species {
    /// Silicon (nanowire and UTB channels).
    Si,
    /// Tin (SnO battery anode).
    Sn,
    /// Oxygen (SnO battery anode).
    O,
    /// Lithium (inserted during lithiation).
    Li,
}

impl Species {
    /// Covalent-ish radius used by the neighbour heuristics (nm).
    pub fn radius(self) -> f64 {
        match self {
            Species::Si => 0.111,
            Species::Sn => 0.139,
            Species::O => 0.066,
            Species::Li => 0.128,
        }
    }

    /// Display symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Species::Si => "Si",
            Species::Sn => "Sn",
            Species::O => "O",
            Species::Li => "Li",
        }
    }
}

/// One atom: species + Cartesian position (nm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Atom {
    /// Chemical species.
    pub species: Species,
    /// Position in nm; `pos[0]` is the transport direction.
    pub pos: [f64; 3],
}

/// A finite atomic structure, optionally periodic along `x` (leads) and/or
/// `z` (UTB out-of-plane direction).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Structure {
    /// The atoms, sorted by slab when produced by the device builders.
    pub atoms: Vec<Atom>,
    /// Length of the periodic repeat unit along `x` (nm); 0 if aperiodic.
    pub x_period: f64,
    /// Out-of-plane period along `z` (nm); 0 if confined.
    pub z_period: f64,
    /// Human-readable label ("Si NWFET d=2.2nm", ...).
    pub label: String,
}

/// Lattice constant of diamond silicon (nm).
pub const SI_LATTICE: f64 = 0.5431;

/// Lattice constant of the rock-salt-like SnO model crystal (nm).
pub const SNO_LATTICE: f64 = 0.48;

impl Structure {
    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True when the structure has no atoms (carving removed everything).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Extent along each axis as `(min, max)` pairs.
    pub fn bounds(&self) -> [(f64, f64); 3] {
        let mut b = [(f64::INFINITY, f64::NEG_INFINITY); 3];
        for a in &self.atoms {
            for (bd, &p) in b.iter_mut().zip(&a.pos) {
                bd.0 = bd.0.min(p);
                bd.1 = bd.1.max(p);
            }
        }
        b
    }

    /// Sorts atoms lexicographically by (slab index along x, y, z) so that
    /// slab-contiguous orbital ordering produces a block tri-diagonal
    /// Hamiltonian. `slab_len` is the slab thickness in nm.
    pub fn sort_into_slabs(&mut self, slab_len: f64) {
        let eps = 1e-9;
        self.atoms.sort_by(|a, b| {
            let sa = ((a.pos[0] + eps) / slab_len).floor() as i64;
            let sb = ((b.pos[0] + eps) / slab_len).floor() as i64;
            (sa, ord(a.pos[1]), ord(a.pos[2])).cmp(&(sb, ord(b.pos[1]), ord(b.pos[2])))
        });
    }

    /// Partitions atom indices into slabs of thickness `slab_len` along x.
    /// Returns one index range per slab (may be empty for vacuum slabs).
    pub fn slab_ranges(&self, slab_len: f64) -> Vec<std::ops::Range<usize>> {
        let eps = 1e-9;
        let n_slabs = self
            .atoms
            .iter()
            .map(|a| ((a.pos[0] + eps) / slab_len).floor() as usize)
            .max()
            .map_or(0, |m| m + 1);
        let mut ranges = vec![0..0; n_slabs];
        let mut start = 0usize;
        for (s, range) in ranges.iter_mut().enumerate() {
            let mut end = start;
            while end < self.atoms.len()
                && ((self.atoms[end].pos[0] + eps) / slab_len).floor() as usize == s
            {
                end += 1;
            }
            *range = start..end;
            start = end;
        }
        assert_eq!(start, self.atoms.len(), "atoms must be slab-sorted first");
        ranges
    }

    /// Atom count per species.
    pub fn composition(&self) -> Vec<(Species, usize)> {
        let mut counts: Vec<(Species, usize)> = Vec::new();
        for a in &self.atoms {
            match counts.iter_mut().find(|(s, _)| *s == a.species) {
                Some((_, c)) => *c += 1,
                None => counts.push((a.species, 1)),
            }
        }
        counts
    }
}

fn ord(x: f64) -> i64 {
    (x * 1e6).round() as i64
}

/// Generates a diamond-lattice supercell of `nx × ny × nz` conventional
/// cubic cells (8 atoms each) of the given species, anchored at the origin.
pub fn diamond_supercell(species: Species, a: f64, nx: usize, ny: usize, nz: usize) -> Structure {
    // Fractional coordinates of the 8 atoms in the conventional cell.
    const FRAC: [[f64; 3]; 8] = [
        [0.0, 0.0, 0.0],
        [0.0, 0.5, 0.5],
        [0.5, 0.0, 0.5],
        [0.5, 0.5, 0.0],
        [0.25, 0.25, 0.25],
        [0.25, 0.75, 0.75],
        [0.75, 0.25, 0.75],
        [0.75, 0.75, 0.25],
    ];
    let mut atoms = Vec::with_capacity(8 * nx * ny * nz);
    for ix in 0..nx {
        for iy in 0..ny {
            for iz in 0..nz {
                for f in FRAC.iter() {
                    atoms.push(Atom {
                        species,
                        pos: [
                            (ix as f64 + f[0]) * a,
                            (iy as f64 + f[1]) * a,
                            (iz as f64 + f[2]) * a,
                        ],
                    });
                }
            }
        }
    }
    Structure {
        atoms,
        x_period: nx as f64 * a,
        z_period: nz as f64 * a,
        label: format!("{} diamond {nx}x{ny}x{nz}", species.symbol()),
    }
}

/// Generates a rock-salt-like SnO supercell (alternating Sn/O sites).
pub fn sno_supercell(a: f64, nx: usize, ny: usize, nz: usize) -> Structure {
    let mut atoms = Vec::with_capacity(8 * nx * ny * nz);
    for ix in 0..nx {
        for iy in 0..ny {
            for iz in 0..nz {
                for (f, parity) in [
                    ([0.0, 0.0, 0.0], 0),
                    ([0.5, 0.5, 0.0], 0),
                    ([0.5, 0.0, 0.5], 0),
                    ([0.0, 0.5, 0.5], 0),
                    ([0.5, 0.0, 0.0], 1),
                    ([0.0, 0.5, 0.0], 1),
                    ([0.0, 0.0, 0.5], 1),
                    ([0.5, 0.5, 0.5], 1),
                ] {
                    atoms.push(Atom {
                        species: if parity == 0 { Species::Sn } else { Species::O },
                        pos: [
                            (ix as f64 + f[0]) * a,
                            (iy as f64 + f[1]) * a,
                            (iz as f64 + f[2]) * a,
                        ],
                    });
                }
            }
        }
    }
    Structure {
        atoms,
        x_period: nx as f64 * a,
        z_period: nz as f64 * a,
        label: format!("SnO rock-salt {nx}x{ny}x{nz}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_cell_has_eight_atoms() {
        let s = diamond_supercell(Species::Si, SI_LATTICE, 1, 1, 1);
        assert_eq!(s.len(), 8);
        // Si atomic density ≈ 50 atoms/nm³.
        let density = 8.0 / SI_LATTICE.powi(3);
        assert!((density - 49.94).abs() < 0.5, "density = {density}");
    }

    #[test]
    fn nearest_neighbor_distance_in_diamond() {
        let s = diamond_supercell(Species::Si, SI_LATTICE, 2, 2, 2);
        let expected = SI_LATTICE * 3f64.sqrt() / 4.0;
        let mut min_d = f64::INFINITY;
        for i in 0..s.len() {
            for j in i + 1..s.len() {
                let d: f64 = (0..3)
                    .map(|k| (s.atoms[i].pos[k] - s.atoms[j].pos[k]).powi(2))
                    .sum::<f64>()
                    .sqrt();
                min_d = min_d.min(d);
            }
        }
        assert!((min_d - expected).abs() < 1e-12, "min distance {min_d} vs {expected}");
    }

    #[test]
    fn slab_sorting_and_ranges() {
        let mut s = diamond_supercell(Species::Si, SI_LATTICE, 3, 1, 1);
        s.sort_into_slabs(SI_LATTICE);
        let ranges = s.slab_ranges(SI_LATTICE);
        assert_eq!(ranges.len(), 3);
        for r in &ranges {
            assert_eq!(r.len(), 8, "each conventional cell holds 8 atoms");
        }
        // Atoms in slab k all lie within [k·a, (k+1)·a).
        for (k, r) in ranges.iter().enumerate() {
            for a in &s.atoms[r.clone()] {
                assert!(a.pos[0] >= k as f64 * SI_LATTICE - 1e-9);
                assert!(a.pos[0] < (k + 1) as f64 * SI_LATTICE + 1e-9);
            }
        }
    }

    #[test]
    fn sno_cell_is_stoichiometric() {
        let s = sno_supercell(SNO_LATTICE, 2, 1, 1);
        let comp = s.composition();
        let sn = comp.iter().find(|(sp, _)| *sp == Species::Sn).unwrap().1;
        let o = comp.iter().find(|(sp, _)| *sp == Species::O).unwrap().1;
        assert_eq!(sn, o, "SnO is 1:1");
        assert_eq!(sn + o, 16);
    }

    #[test]
    fn bounds_cover_cell() {
        let s = diamond_supercell(Species::Si, SI_LATTICE, 2, 1, 1);
        let b = s.bounds();
        assert!(b[0].1 - b[0].0 <= 2.0 * SI_LATTICE);
        assert!(b[0].1 > SI_LATTICE, "atoms in the second cell exist");
    }
}
