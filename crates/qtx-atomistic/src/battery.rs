//! Lithiation of SnO battery anodes (Fig. 1(e)/(f)).
//!
//! The paper's second application domain is the electronic conductivity of
//! lithium-ion battery electrodes: Fig. 1(e) compares measured and
//! simulated volume expansion of SnO during lithiation, Fig. 1(f) shows
//! the electronic current avoiding the insulating central Li-oxide.
//!
//! The model here follows the computational study the paper cites
//! (Pedersen & Luisier, ref. [37]): lithium inserts into the central
//! region of an SnO slab, converting it progressively into a wide-gap
//! Li-oxide, while the electrode volume grows linearly with capacity.
//! Structure relaxation is replaced by an affine dilation of the lattice —
//! what transport sees is the species change (gap widening) plus the
//! geometry change, both of which are captured.

use crate::structure::{sno_supercell, Species, Structure, SNO_LATTICE};
use qtx_linalg::Pcg64;
use serde::{Deserialize, Serialize};

/// Theoretical capacity of SnO at full conversion (mAh/g), used to convert
/// capacity into lithium fraction.
pub const SNO_FULL_CAPACITY: f64 = 1273.0;

/// Linear volume-expansion coefficient per unit lithium fraction, fitted
/// to the measured curve of Ebner et al. (ref. [36]): ~58% expansion at
/// C = 1000 mAh/g.
pub const EXPANSION_PER_X: f64 = 0.745;

/// Outcome of a lithiation step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LithiationReport {
    /// Capacity in mAh/g.
    pub capacity: f64,
    /// Lithium fraction x in Li_x·SnO.
    pub li_fraction: f64,
    /// Relative volume V/V₀.
    pub volume_expansion: f64,
    /// Number of sites converted to Li.
    pub n_li: usize,
    /// Total atoms after lithiation.
    pub n_atoms: usize,
}

/// Predicted volume expansion at a given capacity (the Fig. 1(e) curve).
pub fn volume_expansion(capacity: f64) -> f64 {
    1.0 + EXPANSION_PER_X * (capacity / SNO_FULL_CAPACITY)
}

/// Builds a lithiated SnO slab: an `nx`-cell SnO wire whose central
/// `central_fraction` of cells receives Li substitution at the fraction
/// implied by `capacity` (mAh/g). Positions are dilated isotropically in
/// the cross-section by the cube root of the volume expansion.
///
/// Sn sites are converted (the conversion reaction Li + SnO → Li₂O + Sn is
/// modeled as a species change on the cation sublattice), deterministic
/// under `seed`.
pub fn lithiate(
    nx: usize,
    ny: usize,
    capacity: f64,
    central_fraction: f64,
    seed: u64,
) -> (Structure, LithiationReport) {
    assert!((0.0..=SNO_FULL_CAPACITY).contains(&capacity), "capacity out of range");
    let mut s = sno_supercell(SNO_LATTICE, nx, ny, 1);
    s.z_period = 0.0;
    let x_fraction = capacity / SNO_FULL_CAPACITY;
    let expansion = volume_expansion(capacity);
    let lateral = expansion.cbrt();

    let len = s.x_period;
    let lo = len * (0.5 - central_fraction / 2.0);
    let hi = len * (0.5 + central_fraction / 2.0);
    let mut rng = Pcg64::new(seed);
    let mut n_li = 0usize;
    for at in s.atoms.iter_mut() {
        // Dilate the cross-section (transport length is kept so the same
        // number of slabs tile the device).
        at.pos[1] *= lateral;
        at.pos[2] *= lateral;
        if at.species == Species::Sn
            && at.pos[0] >= lo
            && at.pos[0] <= hi
            && rng.uniform() < x_fraction
        {
            at.species = Species::Li;
            n_li += 1;
        }
    }
    s.label = format!("Li_x SnO slab (C={capacity:.0} mAh/g, x={x_fraction:.2})");
    s.sort_into_slabs(SNO_LATTICE);
    let report = LithiationReport {
        capacity,
        li_fraction: x_fraction,
        volume_expansion: expansion,
        n_li,
        n_atoms: s.len(),
    };
    (s, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_curve_is_linear_and_calibrated() {
        assert!((volume_expansion(0.0) - 1.0).abs() < 1e-12);
        let e1000 = volume_expansion(1000.0);
        assert!((e1000 - 1.585).abs() < 0.01, "≈58% at 1000 mAh/g, got {e1000}");
    }

    #[test]
    fn zero_capacity_changes_nothing_chemically() {
        let (s, rep) = lithiate(6, 2, 0.0, 0.5, 1);
        assert_eq!(rep.n_li, 0);
        assert!((rep.volume_expansion - 1.0).abs() < 1e-12);
        assert!(s.atoms.iter().all(|a| a.species != Species::Li));
    }

    #[test]
    fn lithiation_confined_to_central_region() {
        let (s, rep) = lithiate(8, 2, 1000.0, 0.4, 2);
        assert!(rep.n_li > 0);
        let len = 8.0 * SNO_LATTICE;
        for a in &s.atoms {
            if a.species == Species::Li {
                assert!(a.pos[0] >= len * 0.3 - 1e-9 && a.pos[0] <= len * 0.7 + 1e-9);
            }
        }
    }

    #[test]
    fn li_fraction_tracks_capacity() {
        let (_, r1) = lithiate(10, 3, 400.0, 1.0, 3);
        let (_, r2) = lithiate(10, 3, 1200.0, 1.0, 3);
        assert!(r2.n_li > r1.n_li * 2, "higher capacity → more Li ({} vs {})", r2.n_li, r1.n_li);
    }

    #[test]
    fn cross_section_dilates() {
        let (s0, _) = lithiate(4, 2, 0.0, 0.5, 4);
        let (s1, rep) = lithiate(4, 2, 1000.0, 0.5, 4);
        let w0 = s0.bounds()[1].1 - s0.bounds()[1].0;
        let w1 = s1.bounds()[1].1 - s1.bounds()[1].0;
        assert!((w1 / w0 - rep.volume_expansion.cbrt()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let (a, _) = lithiate(6, 2, 800.0, 0.5, 7);
        let (b, _) = lithiate(6, 2, 800.0, 0.5, 7);
        assert_eq!(a.atoms.len(), b.atoms.len());
        for (x, y) in a.atoms.iter().zip(&b.atoms) {
            assert_eq!(x.species, y.species);
        }
    }
}
