//! # qtx-atomistic — structures, basis sets and matrix assembly
//!
//! The paper studies three families of nanostructures (Fig. 1): 3-D
//! gate-all-around Si nanowire FETs, 2-D double-gate ultra-thin-body FETs
//! (periodic out-of-plane) and lithiated SnO battery anodes. This crate
//! generates those geometries on real crystal lattices, runs neighbour
//! searches, and assembles Hamiltonian/overlap matrices in two bases:
//!
//! * [`BasisKind::TightBinding`] — nearest-neighbour, 2 orbitals/atom, the
//!   basis OMEN's legacy solvers were optimized for;
//! * [`BasisKind::Dft3sp`] — a contracted-Gaussian-like basis with
//!   6 orbitals/atom and an interaction range spanning `NBW ≥ 2` unit cells,
//!   reproducing the ~100× non-zero blow-up of Fig. 3.
//!
//! The basis parameterization is the documented substitution for CP2K's
//! self-consistent 3SP/LDA matrices (see `DESIGN.md`): what the transport
//! solvers consume is only the block structure, Hermiticity, positive
//! definite overlap and a semiconducting spectrum, all of which are
//! reproduced here and refined self-consistently by `qtx-cp2k`.

pub mod assemble;
pub mod basis;
pub mod battery;
pub mod devices;
pub mod neighbors;
pub mod structure;

pub use assemble::{
    assemble_device, assemble_unit_cell, AssembleError, BtdAssembler, DeviceMatrices,
    UnitCellMatrices,
};
pub use basis::{BasisKind, BasisParams};
pub use battery::{lithiate, LithiationReport};
pub use devices::{nanowire, utb_film, DeviceBuilder, DeviceGeometry};
pub use neighbors::NeighborList;
pub use structure::{diamond_supercell, sno_supercell, Atom, Species, Structure};
