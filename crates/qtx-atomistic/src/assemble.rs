//! Hamiltonian/overlap assembly into unit-cell blocks and device BTD form.
//!
//! §2.B: a localized basis makes `H`/`S` "sparse, usually block
//! tri-diagonal"; the lead blocks `H_{q,q+l}, S_{q,q+l}` for
//! `l = −NBW..NBW` enter the polynomial eigenvalue problem Eq. 6, and the
//! paper notes CP2K provides no k-dependence, so periodic transverse
//! directions are folded in here (momentum phase on the z-images) exactly
//! as OMEN "first cuts all the needed blocks from 3-D simulations and then
//! generates H(k) and S(k)".

use crate::basis::BasisKind;
use crate::neighbors::NeighborList;
use crate::structure::Structure;
use qtx_linalg::{c64, Complex64, ZMat};
use qtx_sparse::{Btd, CsrBuilder, SparseShapeError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a structure could not be assembled into BTD device matrices.
/// Surfaced as a value (not a panic) so a sweep driver can skip a bad
/// geometry or report it instead of aborting mid-run.
#[derive(Debug, Clone, PartialEq)]
pub enum AssembleError {
    /// The structure holds no atoms.
    EmptyStructure,
    /// Slab length below the basis cutoff — couplings would skip slabs.
    SlabTooShort {
        /// Requested slab length (nm).
        slab_len: f64,
        /// Basis interaction cutoff (nm).
        rcut: f64,
    },
    /// A transport device needs at least two slabs.
    TooFewSlabs {
        /// Slabs the binning produced.
        got: usize,
    },
    /// A slab's orbital count differs from the first slab's.
    HeterogeneousSlab {
        /// Offending slab index.
        slab: usize,
        /// Orbitals found in it.
        got: usize,
        /// Orbitals in slab 0.
        expected: usize,
    },
    /// A neighbor pair couples atoms more than one slab apart.
    CouplingSkipsSlabs {
        /// Widest slab distance a pair crosses.
        span: usize,
    },
    /// The accumulated pattern violated the sparse layout contract.
    Shape(SparseShapeError),
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::EmptyStructure => write!(f, "structure holds no atoms"),
            AssembleError::SlabTooShort { slab_len, rcut } => {
                write!(f, "slab length {slab_len} below basis cutoff {rcut}")
            }
            AssembleError::TooFewSlabs { got } => {
                write!(f, "need at least two slabs, got {got}")
            }
            AssembleError::HeterogeneousSlab { slab, got, expected } => write!(
                f,
                "slab {slab} has {got} orbitals vs {expected}; use homogeneous cross-sections"
            ),
            AssembleError::CouplingSkipsSlabs { span } => {
                write!(f, "coupling skips {span} slabs; enlarge slab_len")
            }
            AssembleError::Shape(e) => write!(f, "sparse layout violation: {e}"),
        }
    }
}

impl std::error::Error for AssembleError {}

impl From<SparseShapeError> for AssembleError {
    fn from(e: SparseShapeError) -> Self {
        AssembleError::Shape(e)
    }
}

/// Unit-cell Hamiltonian/overlap blocks of a periodic lead.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnitCellMatrices {
    /// Interaction range in cells (Eq. 6's `NBW`).
    pub nbw: usize,
    /// Orbitals per unit cell.
    pub n_orb: usize,
    /// `h[l] = H_{q,q+l}` for `l = 0..=nbw` (negative l by Hermiticity).
    pub h: Vec<ZMat>,
    /// `s[l] = S_{q,q+l}`.
    pub s: Vec<ZMat>,
    /// Atoms per unit cell.
    pub atoms_per_cell: usize,
    /// Cell length along transport (nm).
    pub cell_len: f64,
}

/// Device-wide block tri-diagonal Hamiltonian/overlap matrices.
#[derive(Debug, Clone)]
pub struct DeviceMatrices {
    /// Block tri-diagonal Hamiltonian (slab blocks of `NBW` cells).
    pub h: Btd,
    /// Matching overlap matrix.
    pub s: Btd,
    /// Orbitals per slab (the BTD block size).
    pub orbitals_per_slab: usize,
    /// Orbital offset of each atom inside its slab (atom index → offset).
    pub atom_orbital_offset: Vec<usize>,
    /// Slab index of each atom.
    pub atom_slab: Vec<usize>,
    /// Stored orbital-level entries `(nnz_h, nnz_s)` of the assembled
    /// sparse patterns, before block densification — the number footprint
    /// diagnostics compare against `dim²`.
    pub nnz: (usize, usize),
}

/// Orbital-level accumulator that assembles device matrices straight from
/// neighbor-list contributions into [`Btd`] form. Contributions are pushed
/// at *global* orbital coordinates (`slab·bs + offset`); duplicates sum.
/// [`BtdAssembler::finish`] compresses the triplets, validates them
/// against the block tri-diagonal envelope and densifies the blocks — the
/// single point where the layout decision is made. There is no dense
/// `dim×dim` staging matrix anywhere in this path.
#[derive(Debug, Clone)]
pub struct BtdAssembler {
    nb: usize,
    bs: usize,
    h: CsrBuilder,
    s: CsrBuilder,
}

impl BtdAssembler {
    /// Accumulator for an `nb`-slab device with `bs` orbitals per slab.
    pub fn new(nb: usize, bs: usize) -> Self {
        let dim = nb * bs;
        BtdAssembler { nb, bs, h: CsrBuilder::new(dim, dim), s: CsrBuilder::new(dim, dim) }
    }

    /// Adds a Hamiltonian contribution at global orbital `(row, col)`.
    #[inline]
    pub fn add_h(&mut self, row: usize, col: usize, v: Complex64) {
        self.h.push(row, col, v);
    }

    /// Adds an overlap contribution at global orbital `(row, col)`.
    #[inline]
    pub fn add_s(&mut self, row: usize, col: usize, v: Complex64) {
        self.s.push(row, col, v);
    }

    /// Compresses and validates the accumulated patterns into `(H, S, nnz)`.
    pub fn finish(self) -> Result<(Btd, Btd, (usize, usize)), SparseShapeError> {
        let (nb, bs) = (self.nb, self.bs);
        let h_csr = self.h.try_build()?;
        let s_csr = self.s.try_build()?;
        let nnz = (h_csr.nnz(), s_csr.nnz());
        let h = Btd::from_csr(&h_csr, nb, bs)?;
        let s = Btd::from_csr(&s_csr, nb, bs)?;
        Ok((h, s, nnz))
    }
}

/// Assembles the unit-cell blocks `H_l(k), S_l(k)` of a periodic cell.
///
/// `kz` is the transverse momentum in units where the phase per z-image is
/// `exp(i·kz·m)` (i.e. `kz = k·z_period`); pass 0.0 for confined systems.
pub fn assemble_unit_cell(cell: &Structure, basis: BasisKind, kz: f64) -> UnitCellMatrices {
    assert!(cell.x_period > 0.0, "unit cell must be x-periodic");
    let n_orb_atom = basis.orbitals_per_atom();
    let n_atoms = cell.len();
    let n_orb = n_atoms * n_orb_atom;
    let first_species = cell.atoms.first().expect("non-empty cell").species;
    let nbw = basis.nbw(first_species, cell.x_period);
    let z_images = if cell.z_period > 0.0 { 1 } else { 0 };
    let rcut = basis.params(first_species).rcut;
    let list = NeighborList::build(cell, rcut, nbw as i32, z_images);

    let mut h: Vec<ZMat> = (0..=nbw).map(|_| ZMat::zeros(n_orb, n_orb)).collect();
    let mut s: Vec<ZMat> = (0..=nbw).map(|_| ZMat::zeros(n_orb, n_orb)).collect();

    // On-site terms with surface passivation: atoms missing bulk
    // neighbours get their dangling-bond states pushed out of the gap
    // (the paper's structures are hydrogen-passivated; mid-gap surface
    // states would otherwise contaminate the transport window).
    for (i, at) in cell.atoms.iter().enumerate() {
        let p = basis.params(at.species);
        let nn = 1.15 * p.r_bond;
        let coord = list.of(i).iter().filter(|&&(_, _, _, r)| r <= nn).count();
        let missing = p.ideal_coordination.saturating_sub(coord) as f64;
        for o in 0..n_orb_atom {
            let idx = i * n_orb_atom + o;
            let manifold = if o < n_orb_atom / 2 { -1.0 } else { 1.0 };
            let shift = manifold * missing * p.passivation_shift;
            h[0][(idx, idx)] = c64(p.onsite[o] + shift, 0.0);
            s[0][(idx, idx)] = Complex64::ONE;
        }
    }

    // Two-centre terms; accumulate only x-images l ≥ 0 (negative by
    // Hermiticity), all z-images with the Bloch phase.
    for i in 0..n_atoms {
        let si = cell.atoms[i].species;
        for &(j, img_x, img_z, r) in list.of(i) {
            if img_x < 0 {
                continue;
            }
            let l = img_x as usize;
            if l > nbw {
                continue;
            }
            let sj = cell.atoms[j].species;
            let phase = Complex64::from_phase(kz * img_z as f64);
            if let Some(hb) = basis.h_block(si, sj, r) {
                for a in 0..n_orb_atom {
                    for b in 0..n_orb_atom {
                        let v = phase.scale(hb[a * n_orb_atom + b]);
                        let (ri, cj) = (i * n_orb_atom + a, j * n_orb_atom + b);
                        h[l][(ri, cj)] += v;
                    }
                }
            }
            if let Some(sb) = basis.s_block(si, sj, r) {
                for a in 0..n_orb_atom {
                    for b in 0..n_orb_atom {
                        let v = phase.scale(sb[a * n_orb_atom + b]);
                        let (ri, cj) = (i * n_orb_atom + a, j * n_orb_atom + b);
                        s[l][(ri, cj)] += v;
                    }
                }
            }
        }
    }
    // H_0(k)/S_0(k) must be exactly Hermitian (round the accumulation).
    h[0].hermitianize();
    s[0].hermitianize();
    UnitCellMatrices { nbw, n_orb, h, s, atoms_per_cell: n_atoms, cell_len: cell.x_period }
}

impl UnitCellMatrices {
    /// Folds `NBW` consecutive cells into one superblock so that the
    /// folded chain is nearest-neighbour: returns `(D, U, L)` with
    /// `L = Uᴴ`, each of size `nbw·n_orb`. This is the transformation that
    /// turns Eq. 6 into a quadratic pencil and the device matrix into the
    /// strict BTD form SplitSolve consumes.
    pub fn folded(&self) -> (ZMat, ZMat, ZMat) {
        let nf = self.nbw * self.n_orb;
        let mut d = ZMat::zeros(nf, nf);
        let mut u = ZMat::zeros(nf, nf);
        for a in 0..self.nbw {
            for b in 0..self.nbw {
                let (r0, c0) = (a * self.n_orb, b * self.n_orb);
                if b >= a {
                    d.set_block(r0, c0, &self.h[b - a]);
                } else {
                    d.set_block(r0, c0, &self.h[a - b].adjoint());
                }
                // Coupling from cell a of slab q to cell b of slab q+1:
                // separation l = nbw + b − a ∈ [1, 2·nbw−1]; nonzero when
                // l ≤ nbw, i.e. b ≤ a.
                let l = self.nbw + b - a;
                if l <= self.nbw && l >= 1 {
                    u.set_block(r0, c0, &self.h[l]);
                }
            }
        }
        let lmat = u.adjoint();
        (d, u, lmat)
    }

    /// Folded overlap blocks `(Ds, Us, Ls)` in the same superblock layout.
    pub fn folded_overlap(&self) -> (ZMat, ZMat, ZMat) {
        let clone = UnitCellMatrices {
            nbw: self.nbw,
            n_orb: self.n_orb,
            h: self.s.clone(),
            s: self.s.clone(),
            atoms_per_cell: self.atoms_per_cell,
            cell_len: self.cell_len,
        };
        clone.folded()
    }

    /// Builds homogeneous device BTD matrices spanning `n_slabs` folded
    /// superblocks (the ideal wire before gates/doping shift the diagonal).
    pub fn device_btd(&self, n_slabs: usize) -> (Btd, Btd) {
        let (d, u, l) = self.folded();
        let (ds, us, ls) = self.folded_overlap();
        (Btd::uniform(n_slabs, &d, &u, &l), Btd::uniform(n_slabs, &ds, &us, &ls))
    }
}

/// Assembles BTD Hamiltonian/overlap matrices for a finite (possibly
/// inhomogeneous) structure by binning atoms into slabs of `slab_len` nm.
/// All slabs must carry the same orbital count; the slab length must be at
/// least the basis cutoff so couplings never skip a slab.
///
/// Contributions flow from the neighbor list straight into a
/// [`BtdAssembler`] — orbital-level triplets compressed to CSR and
/// densified per block — so nothing `dim×dim` is ever staged and every
/// layout violation surfaces as a typed [`AssembleError`].
pub fn assemble_device(
    structure: &Structure,
    basis: BasisKind,
    slab_len: f64,
) -> Result<DeviceMatrices, AssembleError> {
    let n_orb_atom = basis.orbitals_per_atom();
    let first = structure.atoms.first().ok_or(AssembleError::EmptyStructure)?.species;
    let rcut = basis.params(first).rcut;
    if slab_len + 1e-9 < rcut {
        return Err(AssembleError::SlabTooShort { slab_len, rcut });
    }
    let ranges = structure.slab_ranges(slab_len);
    let nb = ranges.len();
    if nb < 2 {
        return Err(AssembleError::TooFewSlabs { got: nb });
    }
    let orbs_per_slab = ranges[0].len() * n_orb_atom;
    for (k, r) in ranges.iter().enumerate() {
        if r.len() * n_orb_atom != orbs_per_slab {
            return Err(AssembleError::HeterogeneousSlab {
                slab: k,
                got: r.len() * n_orb_atom,
                expected: orbs_per_slab,
            });
        }
    }
    let mut atom_slab = vec![0usize; structure.len()];
    let mut atom_off = vec![0usize; structure.len()];
    for (k, r) in ranges.iter().enumerate() {
        for (local, idx) in r.clone().enumerate() {
            atom_slab[idx] = k;
            atom_off[idx] = local * n_orb_atom;
        }
    }
    let z_images = if structure.z_period > 0.0 { 1 } else { 0 };
    let list = NeighborList::build(structure, rcut, 0, z_images);
    let span = list.max_slab_span(&atom_slab);
    if span > 1 {
        return Err(AssembleError::CouplingSkipsSlabs { span });
    }

    let mut asm = BtdAssembler::new(nb, orbs_per_slab);
    // On-site terms with the same surface-passivation rule as the
    // unit-cell assembly.
    for (i, at) in structure.atoms.iter().enumerate() {
        let p = basis.params(at.species);
        let nn = 1.15 * p.r_bond;
        let coord = list.of(i).iter().filter(|&&(_, _, _, r)| r <= nn).count();
        let missing = p.ideal_coordination.saturating_sub(coord) as f64;
        let row0 = atom_slab[i] * orbs_per_slab + atom_off[i];
        for o in 0..n_orb_atom {
            let manifold = if o < n_orb_atom / 2 { -1.0 } else { 1.0 };
            let shift = manifold * missing * p.passivation_shift;
            asm.add_h(row0 + o, row0 + o, c64(p.onsite[o] + shift, 0.0));
            asm.add_s(row0 + o, row0 + o, Complex64::ONE);
        }
    }
    // Pairs (z-phase at kz = 0; the device sweep folds k in the leads).
    for i in 0..structure.len() {
        let si = structure.atoms[i].species;
        let ri = atom_slab[i] * orbs_per_slab + atom_off[i];
        for &(j, _ix, _iz, r) in list.of(i) {
            let sj = structure.atoms[j].species;
            let cj = atom_slab[j] * orbs_per_slab + atom_off[j];
            if let Some(hb) = basis.h_block(si, sj, r) {
                for a in 0..n_orb_atom {
                    for b in 0..n_orb_atom {
                        asm.add_h(ri + a, cj + b, c64(hb[a * n_orb_atom + b], 0.0));
                    }
                }
            }
            if let Some(sb) = basis.s_block(si, sj, r) {
                for a in 0..n_orb_atom {
                    for b in 0..n_orb_atom {
                        asm.add_s(ri + a, cj + b, c64(sb[a * n_orb_atom + b], 0.0));
                    }
                }
            }
        }
    }
    let (h, s, nnz) = asm.finish()?;
    Ok(DeviceMatrices {
        h,
        s,
        orbitals_per_slab: orbs_per_slab,
        atom_orbital_offset: atom_off,
        atom_slab,
        nnz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{nanowire, utb_film};
    use crate::structure::{diamond_supercell, Species, SI_LATTICE};

    #[test]
    fn unit_cell_blocks_are_hermitian_consistent() {
        let cell = nanowire(0.8);
        let ucm = assemble_unit_cell(&cell, BasisKind::TightBinding, 0.0);
        assert_eq!(ucm.nbw, 1);
        assert!(ucm.h[0].hermitian_defect() < 1e-12);
        assert!(ucm.s[0].hermitian_defect() < 1e-12);
        // TB overlap is the identity.
        assert!(ucm.s[0].max_diff(&ZMat::identity(ucm.n_orb)) < 1e-12);
        assert!(ucm.s[1].norm_max() < 1e-12);
    }

    #[test]
    fn dft_basis_reaches_two_cells() {
        let cell = nanowire(1.2);
        let ucm = assemble_unit_cell(&cell, BasisKind::Dft3sp, 0.0);
        assert!(ucm.nbw >= 2, "DFT basis must couple ≥ 2 cells (paper §3.A)");
        assert!(ucm.h[1].norm_max() > 1e-6, "first-neighbour coupling present");
        assert!(ucm.h[2].norm_max() > 1e-9, "second-neighbour coupling present");
        assert!(ucm.h[0].norm_max() > ucm.h[2].norm_max(), "decay with distance");
    }

    #[test]
    fn folded_blocks_shapes_and_hermiticity() {
        let cell = nanowire(0.8);
        let ucm = assemble_unit_cell(&cell, BasisKind::Dft3sp, 0.0);
        let (d, u, l) = ucm.folded();
        let nf = ucm.nbw * ucm.n_orb;
        assert_eq!((d.rows(), d.cols()), (nf, nf));
        assert!(d.hermitian_defect() < 1e-12);
        assert!(l.max_diff(&u.adjoint()) < 1e-15);
    }

    #[test]
    fn folded_chain_matches_direct_assembly() {
        // A 4-cell homogeneous bulk chain assembled directly as a device
        // must equal the folded unit-cell tiling.
        let mut bulk = diamond_supercell(Species::Si, SI_LATTICE, 4, 1, 1);
        bulk.z_period = 0.0;
        bulk.sort_into_slabs(SI_LATTICE);
        let dev = assemble_device(&bulk, BasisKind::TightBinding, SI_LATTICE).expect("assemble");

        let mut cell = diamond_supercell(Species::Si, SI_LATTICE, 1, 1, 1);
        cell.z_period = 0.0;
        cell.sort_into_slabs(SI_LATTICE);
        let ucm = assemble_unit_cell(&cell, BasisKind::TightBinding, 0.0);
        let (h_uniform, _s) = ucm.device_btd(4);

        // Interior diagonal blocks must match the bulk cell exactly.
        assert!(dev.h.diag[1].max_diff(&h_uniform.diag[1]) < 1e-10);
        assert!(dev.h.upper[1].max_diff(&h_uniform.upper[1]) < 1e-10);
    }

    #[test]
    fn utb_k_dependence_changes_matrix() {
        let cell = utb_film(0.8);
        let g = assemble_unit_cell(&cell, BasisKind::Dft3sp, 0.0);
        let x = assemble_unit_cell(&cell, BasisKind::Dft3sp, std::f64::consts::PI);
        assert!(g.h[0].max_diff(&x.h[0]) > 1e-9, "kz must modulate H(k)");
        // Both must stay Hermitian.
        assert!(x.h[0].hermitian_defect() < 1e-12);
    }

    #[test]
    fn nanowire_has_no_k_dependence() {
        let cell = nanowire(0.8);
        let g = assemble_unit_cell(&cell, BasisKind::Dft3sp, 0.0);
        let x = assemble_unit_cell(&cell, BasisKind::Dft3sp, 1.0);
        assert!(g.h[0].max_diff(&x.h[0]) < 1e-14, "confined systems ignore kz");
    }

    #[test]
    fn device_btd_is_hermitian() {
        let mut bulk = diamond_supercell(Species::Si, SI_LATTICE, 4, 1, 1);
        bulk.z_period = 0.0;
        bulk.sort_into_slabs(SI_LATTICE);
        let dev = assemble_device(&bulk, BasisKind::Dft3sp, 2.0 * SI_LATTICE).expect("assemble");
        assert!(dev.h.hermitian_defect() < 1e-10);
        assert!(dev.s.hermitian_defect() < 1e-10);
        // The sparse pattern never densifies: well under dim² entries.
        let dim = dev.h.dim();
        assert!(dev.nnz.0 > 0 && dev.nnz.0 < dim * dim);
    }

    #[test]
    fn small_slab_rejected() {
        let mut bulk = diamond_supercell(Species::Si, SI_LATTICE, 4, 1, 1);
        bulk.sort_into_slabs(SI_LATTICE);
        match assemble_device(&bulk, BasisKind::Dft3sp, 0.1) {
            Err(AssembleError::SlabTooShort { .. }) => {}
            other => panic!("expected SlabTooShort, got {other:?}"),
        }
    }

    #[test]
    fn assembler_rejects_out_of_envelope_pushes() {
        let mut asm = BtdAssembler::new(3, 2);
        asm.add_h(0, 0, Complex64::ONE);
        asm.add_h(0, 5, Complex64::ONE); // two slabs away
        match asm.finish() {
            Err(SparseShapeError::OutsideEnvelope { row: 0, col: 5 }) => {}
            other => panic!("expected OutsideEnvelope, got {other:?}"),
        }
    }

    #[test]
    fn assembler_matches_legacy_block_writes() {
        // The CSR-routed assembly must reproduce what direct dense block
        // writes produce for the same contributions.
        let mut asm = BtdAssembler::new(3, 2);
        let mut reference = Btd::zeros(3, 2);
        let entries =
            [(0usize, 1usize, 0.5), (1, 0, 0.5), (2, 3, -1.25), (3, 2, -1.25), (4, 4, 2.0)];
        for &(r, c, v) in &entries {
            asm.add_h(r, c, c64(v, 0.0));
            let (bi, bj) = (r / 2, c / 2);
            let (lr, lc) = (r % 2, c % 2);
            match bj as isize - bi as isize {
                0 => reference.diag[bi][(lr, lc)] += c64(v, 0.0),
                1 => reference.upper[bi][(lr, lc)] += c64(v, 0.0),
                _ => reference.lower[bj][(lr, lc)] += c64(v, 0.0),
            }
        }
        let (h, _s, nnz) = asm.finish().expect("in envelope");
        assert_eq!(nnz.0, entries.len());
        assert!(h.to_dense().max_diff(&reference.to_dense()) < 1e-15);
    }
}
