//! Sparse × dense matrix multiply through the packed microkernel.
//!
//! `C ← α·op(A)·op(B) + β·C` with `A` in CSR form and `B`, `C` dense.
//! The inner loop is the same register-blocked `(mr, nr)` micro-kernel the
//! dense [`qtx_linalg::gemm`] dispatches to: for each strip of `mr` sparse
//! rows we gather the union of referenced columns, pack the strip into a
//! planar A-panel (element `(i, l)` at `l·mr + i`, zero-padded rows) and
//! the matching rows of `op(B)` into planar B-panels (element `(l, j)` at
//! `l·nr + j`), then let the active kernel accumulate the tile. Only the
//! columns a strip actually touches enter the panel, so the flop count
//! scales with `nnz·n`, not `m·k·n` — this is what lets the assembly layer
//! keep matrices sparse without giving up the SIMD dispatch.

use qtx_linalg::kernel::{active_kernel, Acc, MR_MAX, NR_MAX};
use qtx_linalg::{c64, Complex64, Op, ZMat};

use crate::csr::Csr;

/// Columns per packed panel chunk; bounds the scratch panels regardless of
/// how wide a strip's column union gets.
const KC: usize = 256;

fn op_shape(op: Op, m: &ZMat) -> (usize, usize) {
    match op {
        Op::None => (m.rows(), m.cols()),
        _ => (m.cols(), m.rows()),
    }
}

#[inline]
fn op_b_at(op: Op, b: &ZMat, r: usize, c: usize) -> Complex64 {
    match op {
        Op::None => b[(r, c)],
        Op::Transpose => b[(c, r)],
        Op::Adjoint => b[(c, r)].conj(),
    }
}

/// `C ← α·op(A)·op(B) + β·C` with sparse `A`. Shapes must agree with the
/// dense [`qtx_linalg::gemm`] contract: `op(A)` is `m×k`, `op(B)` is
/// `k×n`, `C` is `m×n`.
pub fn spmm(
    alpha: Complex64,
    a: &Csr,
    op_a: Op,
    b: &ZMat,
    op_b: Op,
    beta: Complex64,
    c: &mut ZMat,
) {
    // Op on the sparse operand is realized once, up front; the adjoint's
    // conjugation is folded into A-panel packing.
    let at;
    let (a_eff, conj_a) = match op_a {
        Op::None => (a, false),
        Op::Transpose => {
            at = a.transpose();
            (&at, false)
        }
        Op::Adjoint => {
            at = a.transpose();
            (&at, true)
        }
    };
    let (m, k) = (a_eff.rows(), a_eff.cols());
    let (bk, n) = op_shape(op_b, b);
    assert_eq!(bk, k, "spmm: inner dimensions disagree");
    assert_eq!((c.rows(), c.cols()), (m, n), "spmm: output shape mismatch");

    if beta == Complex64::ZERO {
        c.as_mut_slice().fill(Complex64::ZERO);
    } else if beta != Complex64::ONE {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
    if m == 0 || n == 0 || a_eff.nnz() == 0 || alpha == Complex64::ZERO {
        return;
    }

    let kern = active_kernel();
    let (mr, nr) = (kern.mr, kern.nr);
    let mut ap_re = vec![0.0f64; KC * mr];
    let mut ap_im = vec![0.0f64; KC * mr];
    let mut bp_re = vec![0.0f64; KC * nr];
    let mut bp_im = vec![0.0f64; KC * nr];
    let mut union: Vec<usize> = Vec::new();

    for i0 in (0..m).step_by(mr) {
        let mr_eff = mr.min(m - i0);
        // Union of columns the strip references, sorted — the packed
        // "k" axis for this strip.
        union.clear();
        for i in 0..mr_eff {
            union.extend(a_eff.row(i0 + i).map(|(col, _)| col));
        }
        union.sort_unstable();
        union.dedup();

        for chunk in union.chunks(KC) {
            let kc = chunk.len();
            ap_re[..kc * mr].fill(0.0);
            ap_im[..kc * mr].fill(0.0);
            for i in 0..mr_eff {
                // Both the row's columns and `chunk` are sorted: advance a
                // cursor through the chunk instead of searching.
                let mut l = 0usize;
                for (col, v) in a_eff.row(i0 + i) {
                    while l < kc && chunk[l] < col {
                        l += 1;
                    }
                    if l >= kc {
                        break;
                    }
                    if chunk[l] == col {
                        ap_re[l * mr + i] = v.re;
                        ap_im[l * mr + i] = if conj_a { -v.im } else { v.im };
                    }
                }
            }
            for j0 in (0..n).step_by(nr) {
                let nr_eff = nr.min(n - j0);
                for (l, &row) in chunk.iter().enumerate() {
                    for j in 0..nr {
                        let v = if j < nr_eff {
                            op_b_at(op_b, b, row, j0 + j)
                        } else {
                            Complex64::ZERO
                        };
                        bp_re[l * nr + j] = v.re;
                        bp_im[l * nr + j] = v.im;
                    }
                }
                let mut acc_re: Acc = [[0.0; MR_MAX]; NR_MAX];
                let mut acc_im: Acc = [[0.0; MR_MAX]; NR_MAX];
                kern.run(kc, &ap_re, &ap_im, &bp_re, &bp_im, &mut acc_re, &mut acc_im);
                for j in 0..nr_eff {
                    for i in 0..mr_eff {
                        c[(i0 + i, j0 + j)] += alpha * c64(acc_re[j][i], acc_im[j][i]);
                    }
                }
            }
        }
    }
    qtx_linalg::flops::flops_add(8 * a_eff.nnz() as u64 * n as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_linalg::gemm;

    fn sparse_random(rows: usize, cols: usize, keep: f64, seed: u64) -> Csr {
        let dense = ZMat::random(rows, cols, seed);
        // Thin the matrix deterministically so the union/packing paths see
        // genuinely sparse strips.
        let mut b = crate::csr::CsrBuilder::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let v = dense[(i, j)];
                if (v.re + 1.0) / 2.0 < keep {
                    b.push(i, j, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn matches_gemm_for_all_op_combos() {
        let a = sparse_random(13, 9, 0.4, 7);
        let ad = a.to_dense();
        let alpha = c64(0.7, -0.3);
        let beta = c64(-0.2, 0.5);
        for op_a in [Op::None, Op::Transpose, Op::Adjoint] {
            for op_b in [Op::None, Op::Transpose, Op::Adjoint] {
                let (m, k) = op_shape(op_a, &ad);
                let n = 11;
                let b = match op_b {
                    Op::None => ZMat::random(k, n, 21),
                    _ => ZMat::random(n, k, 21),
                };
                let seed_c = ZMat::random(m, n, 33);
                let mut c_sp = seed_c.clone();
                let mut c_ref = seed_c;
                spmm(alpha, &a, op_a, &b, op_b, beta, &mut c_sp);
                gemm(alpha, &ad, op_a, &b, op_b, beta, &mut c_ref);
                assert!(
                    c_sp.max_diff(&c_ref) < 1e-12,
                    "spmm vs gemm mismatch for {op_a:?}/{op_b:?}: {}",
                    c_sp.max_diff(&c_ref)
                );
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let a = Csr::identity(4);
        let b = ZMat::random(4, 3, 5);
        let mut c = ZMat::from_fn(4, 3, |_, _| c64(f64::NAN, f64::NAN));
        spmm(Complex64::ONE, &a, Op::None, &b, Op::None, Complex64::ZERO, &mut c);
        assert!(c.max_diff(&b) < 1e-15);
    }

    #[test]
    fn wide_strip_exercises_panel_chunking() {
        // One strip whose column union exceeds KC forces the chunked path.
        let n_cols = 2 * KC + 17;
        let mut b = crate::csr::CsrBuilder::new(3, n_cols);
        for j in 0..n_cols {
            b.push(j % 3, j, c64(1.0 + (j % 7) as f64, -0.5));
        }
        let a = b.build();
        let ad = a.to_dense();
        let x = ZMat::random(n_cols, 2, 9);
        let mut c_sp = ZMat::zeros(3, 2);
        let mut c_ref = ZMat::zeros(3, 2);
        spmm(Complex64::ONE, &a, Op::None, &x, Op::None, Complex64::ZERO, &mut c_sp);
        gemm(Complex64::ONE, &ad, Op::None, &x, Op::None, Complex64::ZERO, &mut c_ref);
        assert!(c_sp.max_diff(&c_ref) < 1e-10);
    }
}
