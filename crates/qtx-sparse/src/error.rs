//! Typed shape errors for the sparse constructors.
//!
//! The sweep layer escalates per-point failures instead of aborting, so
//! the constructors that used to `assert!` now report malformed shapes as
//! values the solver ladder can propagate (`qtx-solver`) or surface as
//! assembly diagnostics (`qtx-atomistic`).

use std::fmt;

/// A structural violation detected while building a sparse matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseShapeError {
    /// A block tri-diagonal matrix needs at least one diagonal block.
    EmptyDiag,
    /// Off-diagonal block vectors must hold exactly `nb − 1` blocks.
    BlockCountMismatch {
        /// Which band is malformed (`"upper"` or `"lower"`).
        which: &'static str,
        /// Blocks required (`nb − 1`).
        expected: usize,
        /// Blocks supplied.
        got: usize,
    },
    /// All blocks of a uniform BTD matrix must share one square shape.
    NonUniformBlock {
        /// Which band the offending block sits in.
        which: &'static str,
        /// Index of the offending block within its band.
        index: usize,
        /// Shape found.
        got: (usize, usize),
        /// Shape required.
        expected: (usize, usize),
    },
    /// Two operands (or a matrix and its target layout) disagree in shape.
    DimensionMismatch {
        /// Shape expected by the operation.
        expected: (usize, usize),
        /// Shape supplied.
        got: (usize, usize),
    },
    /// A stored entry falls outside the block tri-diagonal envelope.
    OutsideEnvelope {
        /// Global row of the offending entry.
        row: usize,
        /// Global column of the offending entry.
        col: usize,
    },
    /// A triplet addresses coordinates beyond the declared matrix shape.
    IndexOutOfBounds {
        /// Row addressed.
        row: usize,
        /// Column addressed.
        col: usize,
        /// Declared matrix shape.
        dims: (usize, usize),
    },
}

impl fmt::Display for SparseShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseShapeError::EmptyDiag => write!(f, "need at least one diagonal block"),
            SparseShapeError::BlockCountMismatch { which, expected, got } => {
                write!(f, "{which} band has {got} blocks, need {expected}")
            }
            SparseShapeError::NonUniformBlock { which, index, got, expected } => write!(
                f,
                "non-uniform {which} block {index}: {}×{} vs required {}×{}",
                got.0, got.1, expected.0, expected.1
            ),
            SparseShapeError::DimensionMismatch { expected, got } => write!(
                f,
                "dimension mismatch: got {}×{}, expected {}×{}",
                got.0, got.1, expected.0, expected.1
            ),
            SparseShapeError::OutsideEnvelope { row, col } => {
                write!(f, "entry ({row},{col}) outside the BTD envelope")
            }
            SparseShapeError::IndexOutOfBounds { row, col, dims } => {
                write!(f, "entry ({row},{col}) outside a {}×{} matrix", dims.0, dims.1)
            }
        }
    }
}

impl std::error::Error for SparseShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseShapeError::OutsideEnvelope { row: 3, col: 9 };
        assert_eq!(e.to_string(), "entry (3,9) outside the BTD envelope");
        let e = SparseShapeError::DimensionMismatch { expected: (4, 4), got: (4, 5) };
        assert!(e.to_string().contains("4×5"));
    }
}
