//! Compressed sparse row matrices over complex entries.

use qtx_linalg::{Complex64, ZMat};
use serde::{Deserialize, Serialize};

use crate::error::SparseShapeError;

/// A complex matrix in compressed sparse row format.
///
/// Entries within a row are kept sorted by column index; duplicate
/// insertions are summed at build time (useful when accumulating
/// two-centre integrals from overlapping neighbour shells).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Complex64>,
}

/// Builder accumulating COO triplets before compression.
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, Complex64)>,
}

impl CsrBuilder {
    /// Creates a builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CsrBuilder { rows, cols, triplets: Vec::new() }
    }

    /// Accumulates `value` at `(row, col)`; duplicates are summed.
    pub fn push(&mut self, row: usize, col: usize, value: Complex64) {
        debug_assert!(row < self.rows && col < self.cols);
        if value != Complex64::ZERO {
            self.triplets.push((row, col, value));
        }
    }

    /// Like [`CsrBuilder::build`], but validates every accumulated triplet
    /// against the declared shape first — the entry point for assembly
    /// paths that must survive malformed input (neighbor lists feeding the
    /// block-sparse device builder) instead of relying on debug assertions.
    pub fn try_build(self) -> Result<Csr, SparseShapeError> {
        let dims = (self.rows, self.cols);
        for &(r, c, _) in &self.triplets {
            if r >= self.rows || c >= self.cols {
                return Err(SparseShapeError::IndexOutOfBounds { row: r, col: c, dims });
            }
        }
        Ok(self.build())
    }

    /// Compresses into CSR form, summing duplicate coordinates.
    pub fn build(mut self) -> Csr {
        self.triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<Complex64> = Vec::with_capacity(self.triplets.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in self.triplets {
            if last == Some((r, c)) {
                *values.last_mut().expect("non-empty on duplicate") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
                last = Some((r, c));
            }
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Csr { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }
}

impl Csr {
    /// An empty matrix with no stored entries.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Csr { rows, cols, row_ptr: vec![0; rows + 1], col_idx: Vec::new(), values: Vec::new() }
    }

    /// Identity in sparse form.
    pub fn identity(n: usize) -> Self {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, Complex64::ONE);
        }
        b.build()
    }

    /// Builds from a dense matrix, dropping entries below `tol` in
    /// magnitude.
    pub fn from_dense(m: &ZMat, tol: f64) -> Self {
        let mut b = CsrBuilder::new(m.rows(), m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let v = m[(i, j)];
                if v.abs() > tol {
                    b.push(i, j, v);
                }
            }
        }
        b.build()
    }

    /// Densifies (small matrices / tests only).
    pub fn to_dense(&self) -> ZMat {
        let mut m = ZMat::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                m[(r, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored entries of row `r` as `(col, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, Complex64)> + '_ {
        (self.row_ptr[r]..self.row_ptr[r + 1]).map(move |k| (self.col_idx[k], self.values[k]))
    }

    /// Random access (O(log nnz_row)); zero if not stored.
    pub fn get(&self, r: usize, c: usize) -> Complex64 {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        match self.col_idx[lo..hi].binary_search(&c) {
            Ok(k) => self.values[lo + k],
            Err(_) => Complex64::ZERO,
        }
    }

    /// Sparse matrix–vector product `y = A·x`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![Complex64::ZERO; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc = acc.mul_add(self.values[k], x[self.col_idx[k]]);
            }
            *yr = acc;
        }
        qtx_linalg::flops::flops_add(8 * self.nnz() as u64);
        y
    }

    /// Extracts the dense sub-block `rows r0..r0+h, cols c0..c0+w`.
    pub fn dense_block(&self, r0: usize, c0: usize, h: usize, w: usize) -> ZMat {
        let mut m = ZMat::zeros(h, w);
        for i in 0..h {
            for (c, v) in self.row(r0 + i) {
                if c >= c0 && c < c0 + w {
                    m[(i, c - c0)] = v;
                }
            }
        }
        m
    }

    /// Hermitian defect `max |A_ij − conj(A_ji)|` over stored entries.
    pub fn hermitian_defect(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                worst = worst.max((v - self.get(c, r).conj()).abs());
            }
        }
        worst
    }

    /// Returns `α·A + β·B` (pattern union), or a typed shape error when
    /// the operands disagree in dimension.
    pub fn linear_combination(
        alpha: Complex64,
        a: &Csr,
        beta: Complex64,
        b: &Csr,
    ) -> Result<Csr, SparseShapeError> {
        if (a.rows, a.cols) != (b.rows, b.cols) {
            return Err(SparseShapeError::DimensionMismatch {
                expected: (a.rows, a.cols),
                got: (b.rows, b.cols),
            });
        }
        let mut builder = CsrBuilder::new(a.rows, a.cols);
        for r in 0..a.rows {
            for (c, v) in a.row(r) {
                builder.push(r, c, alpha * v);
            }
            for (c, v) in b.row(r) {
                builder.push(r, c, beta * v);
            }
        }
        Ok(builder.build())
    }

    /// Plain transpose in CSR form (`Aᵀ`), used by the SpMM dispatcher to
    /// realize `Op::Transpose`/`Op::Adjoint` on the sparse operand.
    pub fn transpose(&self) -> Csr {
        let mut b = CsrBuilder::new(self.cols, self.rows);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                b.push(c, r, v);
            }
        }
        b.build()
    }

    /// Maximum column distance from the diagonal (matrix bandwidth).
    pub fn bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for r in 0..self.rows {
            for (c, _) in self.row(r) {
                bw = bw.max(r.abs_diff(c));
            }
        }
        bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_linalg::c64;

    #[test]
    fn build_and_access() {
        let mut b = CsrBuilder::new(3, 3);
        b.push(0, 0, c64(1.0, 0.0));
        b.push(2, 1, c64(0.0, -2.0));
        b.push(1, 2, c64(3.0, 0.0));
        let m = b.build();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(2, 1), c64(0.0, -2.0));
        assert_eq!(m.get(0, 1), Complex64::ZERO);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 0, c64(1.0, 0.0));
        b.push(0, 0, c64(2.5, 1.0));
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), c64(3.5, 1.0));
    }

    #[test]
    fn dense_roundtrip() {
        let d = ZMat::random(6, 5, 3);
        let s = Csr::from_dense(&d, 0.0);
        assert!(s.to_dense().max_diff(&d) < 1e-15);
        assert_eq!(s.nnz(), 30);
    }

    #[test]
    fn matvec_matches_dense() {
        let d = ZMat::random(7, 7, 4);
        let s = Csr::from_dense(&d, 0.5); // drop small entries
        let dd = s.to_dense();
        let x: Vec<Complex64> = (0..7).map(|i| c64(i as f64, 1.0)).collect();
        let ys = s.matvec(&x);
        let yd = dd.matvec(&x);
        for (a, b) in ys.iter().zip(&yd) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_matvec() {
        let id = Csr::identity(5);
        let x: Vec<Complex64> = (0..5).map(|i| c64(i as f64, -2.0)).collect();
        let y = id.matvec(&x);
        assert_eq!(x, y);
    }

    #[test]
    fn dense_block_extraction() {
        let d = ZMat::random(8, 8, 6);
        let s = Csr::from_dense(&d, 0.0);
        let blk = s.dense_block(2, 3, 4, 5);
        assert!(blk.max_diff(&d.block(2, 3, 4, 5)) < 1e-15);
    }

    #[test]
    fn linear_combination_energy_shift() {
        // T = E·S − H, the expression assembled before every solve.
        let h = ZMat::random(5, 5, 7);
        let s_mat = ZMat::identity(5);
        let hs = Csr::from_dense(&h, 0.0);
        let ss = Csr::from_dense(&s_mat, 0.0);
        let e = c64(0.35, 0.0);
        let t = Csr::linear_combination(e, &ss, c64(-1.0, 0.0), &hs).expect("same shape");
        let expected = &s_mat.scaled(e) - &h;
        assert!(t.to_dense().max_diff(&expected) < 1e-14);
        let short = Csr::zeros(5, 4);
        assert!(matches!(
            Csr::linear_combination(e, &ss, c64(-1.0, 0.0), &short),
            Err(SparseShapeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn try_build_rejects_out_of_bounds_triplets() {
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 0, c64(1.0, 0.0));
        b.triplets.push((5, 0, c64(1.0, 0.0))); // bypass push's debug check
        assert!(matches!(
            b.try_build(),
            Err(SparseShapeError::IndexOutOfBounds { row: 5, col: 0, dims: (2, 2) })
        ));
    }

    #[test]
    fn transpose_matches_dense() {
        let d = ZMat::random(5, 3, 11);
        let s = Csr::from_dense(&d, 0.0);
        assert!(s.transpose().to_dense().max_diff(&d.transpose()) < 1e-15);
    }

    #[test]
    fn bandwidth_of_tridiagonal() {
        let mut b = CsrBuilder::new(6, 6);
        for i in 0..6 {
            b.push(i, i, Complex64::ONE);
            if i + 1 < 6 {
                b.push(i, i + 1, Complex64::ONE);
                b.push(i + 1, i, Complex64::ONE);
            }
        }
        assert_eq!(b.build().bandwidth(), 1);
    }

    #[test]
    fn hermitian_defect_detects_asymmetry() {
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 1, c64(1.0, 1.0));
        b.push(1, 0, c64(1.0, -1.0)); // = conj → Hermitian
        let m = b.build();
        assert!(m.hermitian_defect() < 1e-15);
        let mut b2 = CsrBuilder::new(2, 2);
        b2.push(0, 1, c64(1.0, 1.0));
        let m2 = b2.build();
        assert!(m2.hermitian_defect() > 1.0);
    }
}
