//! Sparsity analytics — the quantitative content of Fig. 3.
//!
//! The paper's Fig. 3 contrasts the Hamiltonian of a UTBFET in the
//! contracted-Gaussian (DFT) basis with the tight-binding one: "the number
//! of non-zero entries increases by two orders of magnitude in DFT as
//! compared to tight-binding." These helpers measure exactly that.

use crate::btd::Btd;
use crate::csr::Csr;
use serde::{Deserialize, Serialize};

// Matrix-byte counters, re-exported here because the sparsity layer is
// where footprint questions are asked: the acceptance gate for the
// boundary-block-only transport path asserts `peak_matrix_bytes()` scales
// with `bandwidth·n` rather than `n²`.
pub use qtx_linalg::zmat::{
    live_bytes as live_matrix_bytes, peak_bytes as peak_matrix_bytes,
    reset_peak_bytes as reset_peak_matrix_bytes,
};

/// Summary statistics of a sparse matrix pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsityStats {
    /// Matrix dimension (rows).
    pub dim: usize,
    /// Stored non-zero count.
    pub nnz: usize,
    /// Fill fraction `nnz / dim²`.
    pub fill: f64,
    /// Average non-zeros per row.
    pub nnz_per_row: f64,
    /// Matrix bandwidth (max |i − j| over stored entries).
    pub bandwidth: usize,
    /// Number of block layers when interpreted with `block_size` rows per
    /// layer (0 when not requested).
    pub coupling_range_blocks: usize,
}

/// Computes sparsity statistics; `block_size` (orbital count per slab) is
/// used to express the interaction range in unit-cell blocks — the paper's
/// `NBW` (Eq. 6), typically 1 for tight-binding and ≥ 2 for DFT.
pub fn sparsity_stats(m: &Csr, block_size: usize) -> SparsityStats {
    let dim = m.rows();
    let nnz = m.nnz();
    let bandwidth = m.bandwidth();
    SparsityStats {
        dim,
        nnz,
        fill: nnz as f64 / (dim as f64 * dim as f64),
        nnz_per_row: nnz as f64 / dim as f64,
        bandwidth,
        coupling_range_blocks: if block_size == 0 { 0 } else { bandwidth.div_ceil(block_size) },
    }
}

impl SparsityStats {
    /// Ratio of non-zero counts against another pattern (Fig. 3 headline:
    /// DFT/TB ≈ 100).
    pub fn nnz_ratio(&self, other: &SparsityStats) -> f64 {
        self.nnz as f64 / other.nnz.max(1) as f64
    }
}

/// Storage accounting for a block tri-diagonal matrix — the numbers the
/// footprint benchmarks and the `bandwidth·n` acceptance assertions read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BtdStats {
    /// Number of diagonal blocks.
    pub nb: usize,
    /// Block size.
    pub bs: usize,
    /// Total matrix dimension `nb·bs`.
    pub dim: usize,
    /// Complex entries actually stored (all three bands).
    pub entries: usize,
    /// Bytes of those entries (16 bytes per complex).
    pub bytes: usize,
    /// Bytes an equivalent dense `dim×dim` matrix would occupy.
    pub dense_bytes: usize,
    /// `bytes / dense_bytes` — tends to `3·bs/n` for long devices.
    pub fill: f64,
}

/// Computes the storage accounting of a BTD matrix.
pub fn btd_stats(m: &Btd) -> BtdStats {
    let (nb, bs) = (m.num_blocks(), m.block_size());
    let dim = m.dim();
    let entries = m.storage_entries();
    let bytes = entries * std::mem::size_of::<qtx_linalg::Complex64>();
    let dense_bytes = dense_matrix_bytes(dim);
    let fill = bytes as f64 / dense_bytes.max(1) as f64;
    BtdStats { nb, bs, dim, entries, bytes, dense_bytes, fill }
}

/// Bytes a dense complex `dim×dim` matrix occupies — the `n²` yardstick
/// the BTD and boundary-only paths are measured against.
pub fn dense_matrix_bytes(dim: usize) -> usize {
    dim * dim * std::mem::size_of::<qtx_linalg::Complex64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use qtx_linalg::Complex64;

    fn banded(n: usize, half_bw: usize) -> Csr {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(half_bw)..(i + half_bw + 1).min(n) {
                b.push(i, j, Complex64::ONE);
            }
        }
        b.build()
    }

    #[test]
    fn stats_of_tridiagonal() {
        let m = banded(10, 1);
        let s = sparsity_stats(&m, 1);
        assert_eq!(s.dim, 10);
        assert_eq!(s.nnz, 28);
        assert_eq!(s.bandwidth, 1);
        assert_eq!(s.coupling_range_blocks, 1);
    }

    #[test]
    fn ratio_between_wide_and_narrow_band() {
        let narrow = sparsity_stats(&banded(50, 1), 1);
        let wide = sparsity_stats(&banded(50, 10), 1);
        assert!(wide.nnz_ratio(&narrow) > 5.0);
        assert!(narrow.nnz_ratio(&narrow) == 1.0);
    }

    #[test]
    fn coupling_range_counts_blocks() {
        // bandwidth 6 with block size 3 → reaches 2 blocks away.
        let m = banded(30, 6);
        let s = sparsity_stats(&m, 3);
        assert_eq!(s.coupling_range_blocks, 2);
    }

    #[test]
    fn btd_accounting_beats_dense_for_long_chains() {
        let m = Btd::zeros(20, 4);
        let s = btd_stats(&m);
        assert_eq!(s.dim, 80);
        assert_eq!(s.entries, 16 * (20 + 19 + 19));
        assert_eq!(s.bytes, s.entries * 16);
        assert_eq!(s.dense_bytes, 80 * 80 * 16);
        assert!(s.fill < 0.15, "fill {}", s.fill);
        // Doubling the chain keeps bytes linear while dense grows n².
        let s2 = btd_stats(&Btd::zeros(40, 4));
        assert_eq!(s2.bytes, s.bytes * (40 + 39 + 39) / (20 + 19 + 19));
        assert_eq!(s2.dense_bytes, 4 * s.dense_bytes);
    }

    #[test]
    fn peak_counter_sees_btd_allocation() {
        reset_peak_matrix_bytes();
        let before = live_matrix_bytes();
        let m = Btd::zeros(6, 3);
        assert!(live_matrix_bytes() >= before + m.storage_entries() * 16);
        assert!(peak_matrix_bytes() >= live_matrix_bytes());
        drop(m);
        assert_eq!(live_matrix_bytes(), before);
    }

    #[test]
    fn fill_fraction() {
        let m = banded(4, 3); // fully dense 4×4
        let s = sparsity_stats(&m, 0);
        assert!((s.fill - 1.0).abs() < 1e-15);
        assert!((s.nnz_per_row - 4.0).abs() < 1e-15);
    }
}
