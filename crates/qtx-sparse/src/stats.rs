//! Sparsity analytics — the quantitative content of Fig. 3.
//!
//! The paper's Fig. 3 contrasts the Hamiltonian of a UTBFET in the
//! contracted-Gaussian (DFT) basis with the tight-binding one: "the number
//! of non-zero entries increases by two orders of magnitude in DFT as
//! compared to tight-binding." These helpers measure exactly that.

use crate::csr::Csr;
use serde::{Deserialize, Serialize};

/// Summary statistics of a sparse matrix pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsityStats {
    /// Matrix dimension (rows).
    pub dim: usize,
    /// Stored non-zero count.
    pub nnz: usize,
    /// Fill fraction `nnz / dim²`.
    pub fill: f64,
    /// Average non-zeros per row.
    pub nnz_per_row: f64,
    /// Matrix bandwidth (max |i − j| over stored entries).
    pub bandwidth: usize,
    /// Number of block layers when interpreted with `block_size` rows per
    /// layer (0 when not requested).
    pub coupling_range_blocks: usize,
}

/// Computes sparsity statistics; `block_size` (orbital count per slab) is
/// used to express the interaction range in unit-cell blocks — the paper's
/// `NBW` (Eq. 6), typically 1 for tight-binding and ≥ 2 for DFT.
pub fn sparsity_stats(m: &Csr, block_size: usize) -> SparsityStats {
    let dim = m.rows();
    let nnz = m.nnz();
    let bandwidth = m.bandwidth();
    SparsityStats {
        dim,
        nnz,
        fill: nnz as f64 / (dim as f64 * dim as f64),
        nnz_per_row: nnz as f64 / dim as f64,
        bandwidth,
        coupling_range_blocks: if block_size == 0 { 0 } else { bandwidth.div_ceil(block_size) },
    }
}

impl SparsityStats {
    /// Ratio of non-zero counts against another pattern (Fig. 3 headline:
    /// DFT/TB ≈ 100).
    pub fn nnz_ratio(&self, other: &SparsityStats) -> f64 {
        self.nnz as f64 / other.nnz.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use qtx_linalg::Complex64;

    fn banded(n: usize, half_bw: usize) -> Csr {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(half_bw)..(i + half_bw + 1).min(n) {
                b.push(i, j, Complex64::ONE);
            }
        }
        b.build()
    }

    #[test]
    fn stats_of_tridiagonal() {
        let m = banded(10, 1);
        let s = sparsity_stats(&m, 1);
        assert_eq!(s.dim, 10);
        assert_eq!(s.nnz, 28);
        assert_eq!(s.bandwidth, 1);
        assert_eq!(s.coupling_range_blocks, 1);
    }

    #[test]
    fn ratio_between_wide_and_narrow_band() {
        let narrow = sparsity_stats(&banded(50, 1), 1);
        let wide = sparsity_stats(&banded(50, 10), 1);
        assert!(wide.nnz_ratio(&narrow) > 5.0);
        assert!(narrow.nnz_ratio(&narrow) == 1.0);
    }

    #[test]
    fn coupling_range_counts_blocks() {
        // bandwidth 6 with block size 3 → reaches 2 blocks away.
        let m = banded(30, 6);
        let s = sparsity_stats(&m, 3);
        assert_eq!(s.coupling_range_blocks, 2);
    }

    #[test]
    fn fill_fraction() {
        let m = banded(4, 3); // fully dense 4×4
        let s = sparsity_stats(&m, 0);
        assert!((s.fill - 1.0).abs() < 1e-15);
        assert!((s.nnz_per_row - 4.0).abs() < 1e-15);
    }
}
