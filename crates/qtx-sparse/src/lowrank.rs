//! Rank-revealing compression for lead self-energies.
//!
//! Off resonance, the retarded self-energy `Σ = τ·g_s·τᴴ` of a
//! semi-infinite lead is numerically low-rank: only the handful of
//! propagating and slowly-decaying modes contribute, while the fast
//! evanescent ones fall below any sensible tolerance. [`CompressedSigma`]
//! stores the truncated factor form `Σ ≈ U·Vᴴ` together with an *honest*
//! spectral-norm error bound (the Frobenius norm of the discarded
//! residual, which dominates its 2-norm), so every downstream consumer —
//! solver corrections, cache frames, transmission bounds — can account
//! for exactly how much self-energy it gave up.

use qtx_linalg::{gemm, Complex64, Op, ZMat};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// A lead self-energy block, either dense (exact) or in truncated factor
/// form `Σ ≈ U·Vᴴ` with a recorded error bound `‖Σ − U·Vᴴ‖₂ ≤ bound`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CompressedSigma {
    /// The exact dense block; `bound() == 0`.
    Dense(ZMat),
    /// Truncated factors: `u` is `n×r`, `v` is `n×r`, `Σ ≈ u·vᴴ`.
    Factored {
        /// Left factor (orthonormal columns).
        u: ZMat,
        /// Right factor.
        v: ZMat,
        /// Frobenius norm of the discarded residual — an upper bound on
        /// the spectral norm of the approximation error.
        bound: f64,
    },
}

impl CompressedSigma {
    /// Compresses `sigma` with relative tolerance `tol` (on the Frobenius
    /// norm). `tol ≤ 0` disables compression and stores the dense block
    /// bit-for-bit. Compression also falls back to dense when the revealed
    /// rank would not save memory (`r ≥ n/2`) — the factor form must never
    /// cost more than what it replaces.
    pub fn compress(sigma: &ZMat, tol: f64) -> CompressedSigma {
        let (n, m) = (sigma.rows(), sigma.cols());
        if tol <= 0.0 || n == 0 || m == 0 {
            return CompressedSigma::Dense(sigma.clone());
        }
        let threshold = tol * sigma.norm_fro();
        let max_rank = (n.min(m)) / 2;
        let mut resid = sigma.clone();
        let mut u_cols: Vec<Vec<Complex64>> = Vec::new();
        let mut v_cols: Vec<Vec<Complex64>> = Vec::new();
        loop {
            let rnorm = resid.norm_fro();
            if rnorm <= threshold {
                let r = u_cols.len();
                let u = ZMat::from_fn(n, r, |i, k| u_cols[k][i]);
                let v = ZMat::from_fn(m, r, |j, k| v_cols[k][j]);
                return CompressedSigma::Factored { u, v, bound: rnorm };
            }
            if u_cols.len() >= max_rank {
                return CompressedSigma::Dense(sigma.clone());
            }
            // Column-pivoted deflation: peel off the residual's dominant
            // column as the next left basis vector.
            let (mut pivot, mut best) = (0usize, -1.0f64);
            for j in 0..m {
                let nj: f64 = resid.col(j).iter().map(|z| z.norm_sqr()).sum();
                if nj > best {
                    best = nj;
                    pivot = j;
                }
            }
            if best <= 0.0 {
                // Residual is exactly zero columns beyond threshold — done.
                let r = u_cols.len();
                let u = ZMat::from_fn(n, r, |i, k| u_cols[k][i]);
                let v = ZMat::from_fn(m, r, |j, k| v_cols[k][j]);
                return CompressedSigma::Factored { u, v, bound: rnorm };
            }
            let scale = 1.0 / best.sqrt();
            let uk: Vec<Complex64> = resid.col(pivot).iter().map(|&z| z * scale).collect();
            // w = ukᴴ·R, then deflate R ← R − uk·w (rank-one update).
            let mut wk = vec![Complex64::ZERO; m];
            for (j, w) in wk.iter_mut().enumerate() {
                let mut acc = Complex64::ZERO;
                for (i, &ui) in uk.iter().enumerate() {
                    acc += ui.conj() * resid[(i, j)];
                }
                *w = acc;
            }
            for j in 0..m {
                let w = wk[j];
                for (i, &ui) in uk.iter().enumerate() {
                    resid[(i, j)] -= ui * w;
                }
            }
            u_cols.push(uk);
            v_cols.push(wk.iter().map(|w| w.conj()).collect());
        }
    }

    /// Recorded spectral-norm error bound (`0` for the dense form).
    pub fn bound(&self) -> f64 {
        match self {
            CompressedSigma::Dense(_) => 0.0,
            CompressedSigma::Factored { bound, .. } => *bound,
        }
    }

    /// Numerical rank of the stored representation.
    pub fn rank(&self) -> usize {
        match self {
            CompressedSigma::Dense(m) => m.rows().min(m.cols()),
            CompressedSigma::Factored { u, .. } => u.cols(),
        }
    }

    /// Row count of the (square, for self-energies) represented block.
    pub fn dim(&self) -> usize {
        match self {
            CompressedSigma::Dense(m) => m.rows(),
            CompressedSigma::Factored { u, .. } => u.rows(),
        }
    }

    /// Bytes of complex storage held by this representation.
    pub fn bytes(&self) -> usize {
        let entries = match self {
            CompressedSigma::Dense(m) => m.rows() * m.cols(),
            CompressedSigma::Factored { u, v, .. } => u.rows() * u.cols() + v.rows() * v.cols(),
        };
        entries * std::mem::size_of::<Complex64>()
    }

    /// True when the factor form is in effect.
    pub fn is_compressed(&self) -> bool {
        matches!(self, CompressedSigma::Factored { .. })
    }

    /// The dense block, borrowing when it is already materialized. This is
    /// the *lazy expansion* point: solvers that genuinely need the dense
    /// block (wave-function back-substitution, residual checks) pay for it
    /// here; the boundary-only transmission path never calls it.
    pub fn dense(&self) -> Cow<'_, ZMat> {
        match self {
            CompressedSigma::Dense(m) => Cow::Borrowed(m),
            CompressedSigma::Factored { .. } => Cow::Owned(self.to_dense()),
        }
    }

    /// Materializes the represented block.
    pub fn to_dense(&self) -> ZMat {
        match self {
            CompressedSigma::Dense(m) => m.clone(),
            CompressedSigma::Factored { u, v, .. } => {
                let mut out = ZMat::zeros(u.rows(), v.rows());
                gemm(Complex64::ONE, u, Op::None, v, Op::Adjoint, Complex64::ZERO, &mut out);
                out
            }
        }
    }

    /// `target ← target + α·Σ` without materializing the factor form: the
    /// rank-`r` update runs as a single `(n×r)·(r×n)` gemm.
    pub fn add_scaled_into(&self, alpha: Complex64, target: &mut ZMat) {
        match self {
            CompressedSigma::Dense(m) => target.axpy(alpha, m),
            CompressedSigma::Factored { u, v, .. } => {
                gemm(alpha, u, Op::None, v, Op::Adjoint, Complex64::ONE, target);
            }
        }
    }

    /// First entry `Σ₀₀` — a cheap deterministic fingerprint used by the
    /// fault-injection chokepoints. Identical to indexing for the dense
    /// form.
    pub fn probe(&self) -> Complex64 {
        match self {
            CompressedSigma::Dense(m) => {
                if m.rows() == 0 || m.cols() == 0 {
                    Complex64::ZERO
                } else {
                    m[(0, 0)]
                }
            }
            CompressedSigma::Factored { u, v, .. } => {
                let mut acc = Complex64::ZERO;
                for k in 0..u.cols() {
                    acc += u[(0, k)] * v[(0, k)].conj();
                }
                acc
            }
        }
    }
}

impl From<ZMat> for CompressedSigma {
    fn from(m: ZMat) -> Self {
        CompressedSigma::Dense(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_linalg::c64;

    /// A numerically low-rank "self-energy": rank-3 outer products plus
    /// tiny noise, mimicking a lead off resonance.
    fn low_rank_sigma(n: usize, noise: f64) -> ZMat {
        let a = ZMat::random(n, 3, 17);
        let b = ZMat::random(n, 3, 23);
        let mut s = ZMat::zeros(n, n);
        gemm(Complex64::ONE, &a, Op::None, &b, Op::Adjoint, Complex64::ZERO, &mut s);
        let dust = ZMat::random(n, n, 31);
        s.axpy(c64(noise, 0.0), &dust);
        s
    }

    #[test]
    fn reconstruction_stays_within_recorded_bound() {
        let sigma = low_rank_sigma(16, 1e-9);
        let comp = CompressedSigma::compress(&sigma, 1e-6);
        assert!(comp.is_compressed(), "rank-3 + dust must compress");
        assert!(comp.rank() <= 5, "rank {} too high", comp.rank());
        let err = (&comp.to_dense() - &sigma).norm_fro();
        assert!(
            err <= comp.bound() * (1.0 + 1e-12) + 1e-14,
            "reconstruction error {err} exceeds recorded bound {}",
            comp.bound()
        );
        assert!(comp.bytes() < 16 * 16 * std::mem::size_of::<Complex64>());
    }

    #[test]
    fn tol_zero_is_bitwise_dense() {
        let sigma = low_rank_sigma(8, 0.1);
        let comp = CompressedSigma::compress(&sigma, 0.0);
        match &comp {
            CompressedSigma::Dense(m) => assert_eq!(m, &sigma),
            _ => panic!("tol = 0 must store dense"),
        }
        assert_eq!(comp.bound(), 0.0);
        assert_eq!(comp.probe(), sigma[(0, 0)]);
    }

    #[test]
    fn full_rank_input_falls_back_to_dense() {
        // A well-conditioned random matrix has no low-rank structure at
        // tight tolerance: compression must refuse rather than bloat.
        let sigma = ZMat::random(10, 10, 3);
        let comp = CompressedSigma::compress(&sigma, 1e-12);
        assert!(!comp.is_compressed());
        assert_eq!(comp.bound(), 0.0);
    }

    #[test]
    fn add_scaled_matches_dense_axpy() {
        let sigma = low_rank_sigma(12, 1e-10);
        let comp = CompressedSigma::compress(&sigma, 1e-7);
        let base = ZMat::random(12, 12, 41);
        let alpha = c64(-1.0, 0.25);
        let mut via_factor = base.clone();
        comp.add_scaled_into(alpha, &mut via_factor);
        let mut via_dense = base;
        via_dense.axpy(alpha, &comp.to_dense());
        assert!(via_factor.max_diff(&via_dense) < 1e-10);
    }

    #[test]
    fn probe_matches_expanded_entry() {
        let sigma = low_rank_sigma(9, 1e-10);
        let comp = CompressedSigma::compress(&sigma, 1e-7);
        assert!((comp.probe() - comp.to_dense()[(0, 0)]).abs() < 1e-12);
    }
}
