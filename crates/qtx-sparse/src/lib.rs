//! # qtx-sparse — sparse matrix substrate
//!
//! DFT Hamiltonians in a contracted-Gaussian basis are "usually block
//! tri-diagonal" (§2.B) with roughly 100× more non-zero entries than their
//! tight-binding counterparts (Fig. 3). This crate provides the two
//! representations the transport stack uses:
//!
//! * [`Csr`] — classic compressed sparse row storage, the exchange format
//!   between the DFT substrate and the transport driver, plus sparsity
//!   analytics (Fig. 3) and spy-pattern rendering (Fig. 4).
//! * [`Btd`] — block tri-diagonal storage with dense blocks, the native
//!   layout of the Schrödinger matrix `T = E·S − H − Σ^RB` that SplitSolve
//!   and the RGF kernels consume.

pub mod btd;
pub mod csr;
pub mod error;
pub mod lowrank;
pub mod spmm;
pub mod spy;
pub mod stats;

pub use btd::Btd;
pub use csr::{Csr, CsrBuilder};
pub use error::SparseShapeError;
pub use lowrank::CompressedSigma;
pub use spmm::spmm;
pub use spy::spy_string;
pub use stats::{
    btd_stats, dense_matrix_bytes, live_matrix_bytes, peak_matrix_bytes, reset_peak_matrix_bytes,
    sparsity_stats, BtdStats, SparsityStats,
};
