//! Block tri-diagonal matrices with dense blocks.
//!
//! The Schrödinger matrix `T = E·S − H − Σ^RB` of a layered device is block
//! tri-diagonal after grouping the atomistic layers into unit-cell slabs
//! (Fig. 4). SplitSolve, the RGF sweep, the MUMPS-like direct solver and
//! the BCR baseline all operate on this layout.

use qtx_linalg::{Complex64, ZMat};
use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::error::SparseShapeError;

/// A square block tri-diagonal matrix with `nb` diagonal blocks of equal
/// size `bs` (uniform block size — the transport slabs are homogeneous).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Btd {
    /// Diagonal blocks `A_{i,i}`, length `nb`.
    pub diag: Vec<ZMat>,
    /// Super-diagonal blocks `A_{i,i+1}`, length `nb − 1`.
    pub upper: Vec<ZMat>,
    /// Sub-diagonal blocks `A_{i+1,i}`, length `nb − 1`.
    pub lower: Vec<ZMat>,
}

impl Btd {
    /// Builds from block vectors, validating shapes. Malformed inputs are
    /// reported as [`SparseShapeError`] so a sweep can skip the offending
    /// point instead of aborting mid-run.
    pub fn new(
        diag: Vec<ZMat>,
        upper: Vec<ZMat>,
        lower: Vec<ZMat>,
    ) -> Result<Self, SparseShapeError> {
        if diag.is_empty() {
            return Err(SparseShapeError::EmptyDiag);
        }
        let bs = diag[0].rows();
        for (which, band) in [("upper", &upper), ("lower", &lower)] {
            if band.len() != diag.len() - 1 {
                return Err(SparseShapeError::BlockCountMismatch {
                    which,
                    expected: diag.len() - 1,
                    got: band.len(),
                });
            }
        }
        for (which, band) in [("diagonal", &diag), ("upper", &upper), ("lower", &lower)] {
            for (index, b) in band.iter().enumerate() {
                if (b.rows(), b.cols()) != (bs, bs) {
                    return Err(SparseShapeError::NonUniformBlock {
                        which,
                        index,
                        got: (b.rows(), b.cols()),
                        expected: (bs, bs),
                    });
                }
            }
        }
        Ok(Btd { diag, upper, lower })
    }

    /// Zero matrix with `nb` blocks of size `bs`.
    pub fn zeros(nb: usize, bs: usize) -> Self {
        Btd {
            diag: vec![ZMat::zeros(bs, bs); nb],
            upper: vec![ZMat::zeros(bs, bs); nb.saturating_sub(1)],
            lower: vec![ZMat::zeros(bs, bs); nb.saturating_sub(1)],
        }
    }

    /// Number of diagonal blocks.
    pub fn num_blocks(&self) -> usize {
        self.diag.len()
    }

    /// Size of each (square) block.
    pub fn block_size(&self) -> usize {
        self.diag[0].rows()
    }

    /// Total matrix dimension `nb·bs` (the paper's `N_SS`).
    pub fn dim(&self) -> usize {
        self.num_blocks() * self.block_size()
    }

    /// Builds a BTD matrix for a homogeneous chain: every diagonal block
    /// `d`, every coupling `u` (upper) / `l` (lower). This is the ideal
    /// lead/device of a periodic wire.
    pub fn uniform(nb: usize, d: &ZMat, u: &ZMat, l: &ZMat) -> Self {
        Btd {
            diag: vec![d.clone(); nb],
            upper: vec![u.clone(); nb - 1],
            lower: vec![l.clone(); nb - 1],
        }
    }

    /// Densifies (tests and small references only).
    pub fn to_dense(&self) -> ZMat {
        let bs = self.block_size();
        let n = self.dim();
        let mut m = ZMat::zeros(n, n);
        for (i, d) in self.diag.iter().enumerate() {
            m.set_block(i * bs, i * bs, d);
        }
        for (i, u) in self.upper.iter().enumerate() {
            m.set_block(i * bs, (i + 1) * bs, u);
        }
        for (i, l) in self.lower.iter().enumerate() {
            m.set_block((i + 1) * bs, i * bs, l);
        }
        m
    }

    /// Extracts the BTD structure from a CSR matrix. Any stored entry
    /// outside the block tri-diagonal envelope is reported as
    /// [`SparseShapeError::OutsideEnvelope`] — this is the chokepoint that
    /// makes the layout decision: once a matrix passes, every downstream
    /// solver may assume the envelope.
    pub fn from_csr(csr: &Csr, nb: usize, bs: usize) -> Result<Self, SparseShapeError> {
        if csr.rows() != nb * bs || csr.cols() != nb * bs {
            return Err(SparseShapeError::DimensionMismatch {
                expected: (nb * bs, nb * bs),
                got: (csr.rows(), csr.cols()),
            });
        }
        let mut btd = Btd::zeros(nb, bs);
        for r in 0..csr.rows() {
            let bi = r / bs;
            for (c, v) in csr.row(r) {
                let bj = c / bs;
                let (lr, lc) = (r % bs, c % bs);
                match bj as isize - bi as isize {
                    0 => btd.diag[bi][(lr, lc)] = v,
                    1 => btd.upper[bi][(lr, lc)] = v,
                    -1 => btd.lower[bj][(lr, lc)] = v,
                    _ => return Err(SparseShapeError::OutsideEnvelope { row: r, col: c }),
                }
            }
        }
        Ok(btd)
    }

    /// Block-level matrix–vector product `y = A·x`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        let bs = self.block_size();
        let nb = self.num_blocks();
        assert_eq!(x.len(), self.dim());
        let mut y = vec![Complex64::ZERO; self.dim()];
        for i in 0..nb {
            let xi = &x[i * bs..(i + 1) * bs];
            let yi = self.diag[i].matvec(xi);
            for (dst, v) in y[i * bs..(i + 1) * bs].iter_mut().zip(yi) {
                *dst += v;
            }
            if i + 1 < nb {
                let xn = &x[(i + 1) * bs..(i + 2) * bs];
                let yu = self.upper[i].matvec(xn);
                for (dst, v) in y[i * bs..(i + 1) * bs].iter_mut().zip(yu) {
                    *dst += v;
                }
                let yl = self.lower[i].matvec(xi);
                for (dst, v) in y[(i + 1) * bs..(i + 2) * bs].iter_mut().zip(yl) {
                    *dst += v;
                }
            }
        }
        y
    }

    /// Hermitian defect over the block structure.
    pub fn hermitian_defect(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for d in &self.diag {
            worst = worst.max(d.hermitian_defect());
        }
        for (u, l) in self.upper.iter().zip(&self.lower) {
            worst = worst.max(u.max_diff(&l.adjoint()));
        }
        worst
    }

    /// Applies `self ← α·self` blockwise.
    pub fn scale(&mut self, alpha: Complex64) {
        for b in self.diag.iter_mut().chain(self.upper.iter_mut()).chain(self.lower.iter_mut()) {
            *b = b.scaled(alpha);
        }
    }

    /// `E·S − H` assembled blockwise: the matrix `A` of SplitSolve before
    /// boundary conditions are added (§3.B).
    pub fn es_minus_h(energy: Complex64, s: &Btd, h: &Btd) -> Btd {
        assert_eq!(s.num_blocks(), h.num_blocks());
        let nb = s.num_blocks();
        let mut out = Btd::zeros(nb, s.block_size());
        for i in 0..nb {
            out.diag[i] = &s.diag[i].scaled(energy) - &h.diag[i];
        }
        for i in 0..nb - 1 {
            out.upper[i] = &s.upper[i].scaled(energy) - &h.upper[i];
            out.lower[i] = &s.lower[i].scaled(energy) - &h.lower[i];
        }
        out
    }

    /// Memory footprint in complex entries (for the accelerator memory
    /// model — A is distributed over the GPUs and stored in their memory).
    pub fn storage_entries(&self) -> usize {
        let bs2 = self.block_size() * self.block_size();
        bs2 * (self.diag.len() + self.upper.len() + self.lower.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_linalg::c64;

    fn sample_btd(nb: usize, bs: usize) -> Btd {
        let mut btd = Btd::zeros(nb, bs);
        for i in 0..nb {
            btd.diag[i] = ZMat::random(bs, bs, 100 + i as u64);
            for d in 0..bs {
                btd.diag[i][(d, d)] += c64(4.0, 0.0);
            }
        }
        for i in 0..nb - 1 {
            btd.upper[i] = ZMat::random(bs, bs, 200 + i as u64);
            btd.lower[i] = ZMat::random(bs, bs, 300 + i as u64);
        }
        btd
    }

    #[test]
    fn dims_and_storage() {
        let b = Btd::zeros(5, 3);
        assert_eq!(b.dim(), 15);
        assert_eq!(b.num_blocks(), 5);
        assert_eq!(b.block_size(), 3);
        assert_eq!(b.storage_entries(), 9 * (5 + 4 + 4));
    }

    #[test]
    fn dense_roundtrip_via_csr() {
        let b = sample_btd(4, 3);
        let dense = b.to_dense();
        let csr = Csr::from_dense(&dense, 0.0);
        let back = Btd::from_csr(&csr, 4, 3).expect("inside envelope");
        assert!(back.to_dense().max_diff(&dense) < 1e-15);
    }

    #[test]
    fn from_csr_rejects_out_of_envelope() {
        let mut dense = ZMat::zeros(6, 6);
        dense[(0, 5)] = c64(1.0, 0.0); // far corner, outside tri-diagonal
        let csr = Csr::from_dense(&dense, 0.0);
        match Btd::from_csr(&csr, 3, 2) {
            Err(SparseShapeError::OutsideEnvelope { row: 0, col: 5 }) => {}
            other => panic!("expected OutsideEnvelope, got {other:?}"),
        }
    }

    #[test]
    fn new_reports_typed_shape_errors() {
        assert!(matches!(Btd::new(vec![], vec![], vec![]), Err(SparseShapeError::EmptyDiag)));
        let d = ZMat::zeros(2, 2);
        let err = Btd::new(vec![d.clone(), d.clone()], vec![], vec![ZMat::zeros(2, 2)]);
        assert!(matches!(err, Err(SparseShapeError::BlockCountMismatch { which: "upper", .. })));
        let err = Btd::new(vec![d.clone(), d], vec![ZMat::zeros(3, 2)], vec![ZMat::zeros(2, 2)]);
        assert!(matches!(
            err,
            Err(SparseShapeError::NonUniformBlock { which: "upper", index: 0, .. })
        ));
    }

    #[test]
    fn matvec_matches_dense() {
        let b = sample_btd(5, 2);
        let x: Vec<Complex64> = (0..10).map(|i| c64(i as f64 * 0.3, -0.1 * i as f64)).collect();
        let y_btd = b.matvec(&x);
        let y_dense = b.to_dense().matvec(&x);
        for (u, v) in y_btd.iter().zip(&y_dense) {
            assert!((*u - *v).abs() < 1e-12);
        }
    }

    #[test]
    fn hermitian_defect_zero_for_hermitian() {
        let mut b = sample_btd(3, 2);
        for d in b.diag.iter_mut() {
            d.hermitianize();
        }
        let lowers: Vec<ZMat> = b.upper.iter().map(|u| u.adjoint()).collect();
        b.lower = lowers;
        assert!(b.hermitian_defect() < 1e-15);
    }

    #[test]
    fn es_minus_h_identity_overlap() {
        let h = sample_btd(3, 2);
        let mut s = Btd::zeros(3, 2);
        for d in s.diag.iter_mut() {
            *d = ZMat::identity(2);
        }
        let e = c64(0.7, 0.0);
        let t = Btd::es_minus_h(e, &s, &h);
        let expected = &s.to_dense().scaled(e) - &h.to_dense();
        assert!(t.to_dense().max_diff(&expected) < 1e-14);
    }

    #[test]
    fn uniform_chain_blocks_identical() {
        let d = ZMat::random(3, 3, 1);
        let u = ZMat::random(3, 3, 2);
        let l = u.adjoint();
        let b = Btd::uniform(6, &d, &u, &l);
        assert_eq!(b.num_blocks(), 6);
        for i in 0..5 {
            assert_eq!(b.upper[i], u);
        }
    }
}
