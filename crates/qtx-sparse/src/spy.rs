//! Text spy plots of sparsity patterns (Figs. 3 and 4).
//!
//! The reproduction binaries print coarse-grained spy plots of the
//! Hamiltonian/overlap patterns and of the `T·x = b` system of Eq. 5 so
//! the block tri-diagonal + low-rank-corner + sparse-RHS structure is
//! visible in a terminal.

use crate::csr::Csr;

/// Renders an `height × width` character raster of the matrix pattern.
/// Each cell aggregates a sub-block of entries; density is mapped onto the
/// ramp `· ░ ▒ ▓ █` (empty cells print as spaces).
pub fn spy_string(m: &Csr, height: usize, width: usize) -> String {
    let rows = m.rows().max(1);
    let cols = m.cols().max(1);
    let h = height.min(rows).max(1);
    let w = width.min(cols).max(1);
    let mut counts = vec![0usize; h * w];
    for r in 0..m.rows() {
        let cell_r = r * h / rows;
        for (c, _) in m.row(r) {
            let cell_c = c * w / cols;
            counts[cell_r * w + cell_c] += 1;
        }
    }
    let cell_capacity = ((rows as f64 / h as f64) * (cols as f64 / w as f64)).max(1.0);
    let mut out = String::with_capacity(h * (w + 1));
    for i in 0..h {
        for j in 0..w {
            let density = counts[i * w + j] as f64 / cell_capacity;
            out.push(match density {
                d if d <= 0.0 => ' ',
                d if d < 0.25 => '·',
                d if d < 0.5 => '░',
                d if d < 0.75 => '▒',
                d if d < 1.0 => '▓',
                _ => '█',
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use qtx_linalg::Complex64;

    #[test]
    fn diagonal_pattern_renders_diagonal() {
        let mut b = CsrBuilder::new(16, 16);
        for i in 0..16 {
            b.push(i, i, Complex64::ONE);
        }
        let s = spy_string(&b.build(), 4, 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        for (i, line) in lines.iter().enumerate() {
            for (j, ch) in line.chars().enumerate() {
                if i == j {
                    assert_ne!(ch, ' ', "diagonal cell ({i},{j}) should be filled");
                } else {
                    assert_eq!(ch, ' ', "off-diagonal cell ({i},{j}) should be empty");
                }
            }
        }
    }

    #[test]
    fn full_matrix_saturates() {
        let mut b = CsrBuilder::new(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                b.push(i, j, Complex64::ONE);
            }
        }
        let s = spy_string(&b.build(), 2, 2);
        assert!(s.chars().filter(|&c| c == '█').count() == 4);
    }

    #[test]
    fn empty_matrix_blank() {
        let m = Csr::zeros(10, 10);
        let s = spy_string(&m, 3, 3);
        assert!(s.chars().all(|c| c == ' ' || c == '\n'));
    }
}
