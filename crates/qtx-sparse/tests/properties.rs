//! Property battery for the sparse substrate: CSR round-trips, the SpMM
//! microkernel against dense gemm over every `Op` pairing, spy/stats
//! goldens, and honesty of the Σ-compression error bound.

use proptest::prelude::*;
use qtx_sparse::{
    btd_stats, sparsity_stats, spmm, spy_string, Btd, CompressedSigma, Csr, CsrBuilder,
};

use qtx_linalg::{c64, gemm, Complex64, Op, ZMat};

/// Deterministically thins a random dense matrix so the sparse paths see
/// genuinely ragged strips (keep fraction in `(0, 1]`).
fn sparse_random(rows: usize, cols: usize, keep: f64, seed: u64) -> Csr {
    let dense = ZMat::random(rows, cols, seed);
    let mut b = CsrBuilder::new(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            let v = dense[(i, j)];
            if (v.re + 1.0) / 2.0 < keep {
                b.push(i, j, v);
            }
        }
    }
    b.build()
}

const OPS: [Op; 3] = [Op::None, Op::Transpose, Op::Adjoint];

fn op_dims(op: Op, rows: usize, cols: usize) -> (usize, usize) {
    match op {
        Op::None => (rows, cols),
        _ => (cols, rows),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CSR ↔ dense round-trip is exact: `from_dense` at zero tolerance
    /// stores every entry bit-for-bit and `to_dense` restores them, with
    /// the nnz count matching the number of non-zeros.
    #[test]
    fn csr_dense_roundtrip(
        rows in 1usize..24,
        cols in 1usize..24,
        keep in 0.05f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let s = sparse_random(rows, cols, keep, seed);
        let d = s.to_dense();
        let back = Csr::from_dense(&d, 0.0);
        prop_assert!(back.nnz() == s.nnz());
        prop_assert!(back.to_dense().max_diff(&d) == 0.0);
        // Transpose round-trip too: (Aᵀ)ᵀ = A exactly.
        prop_assert!(s.transpose().transpose().to_dense().max_diff(&d) == 0.0);
    }

    /// The packed SpMM microkernel agrees with dense gemm on the full
    /// `C ← α·op(A)·op(B) + β·C` surface for all 9 op pairings.
    #[test]
    fn spmm_matches_gemm_all_ops(
        rows in 1usize..20,
        cols in 1usize..20,
        n in 1usize..16,
        keep in 0.1f64..0.9,
        opsel in 0u32..9,
        seed in 0u64..1_000_000,
    ) {
        let (op_a, op_b) = (OPS[(opsel / 3) as usize], OPS[(opsel % 3) as usize]);
        let a = sparse_random(rows, cols, keep, seed);
        let ad = a.to_dense();
        let (m, k) = op_dims(op_a, rows, cols);
        let b = match op_b {
            Op::None => ZMat::random(k, n, seed + 1),
            _ => ZMat::random(n, k, seed + 1),
        };
        let alpha = c64(0.7, -0.3);
        let beta = c64(-0.4, 0.2);
        let c0 = ZMat::random(m, n, seed + 2);
        let mut c_sp = c0.clone();
        let mut c_ref = c0;
        spmm(alpha, &a, op_a, &b, op_b, beta, &mut c_sp);
        gemm(alpha, &ad, op_a, &b, op_b, beta, &mut c_ref);
        prop_assert!(
            c_sp.max_diff(&c_ref) < 1e-11,
            "spmm vs gemm drift {} for {:?}/{:?}", c_sp.max_diff(&c_ref), op_a, op_b
        );
    }

    /// Σ-compression bound honesty: whatever representation `compress`
    /// chooses, the reconstruction error never exceeds the recorded bound,
    /// and the bound itself respects the requested relative tolerance.
    #[test]
    fn sigma_compression_bound_is_honest(
        n in 2usize..20,
        rank in 1usize..4,
        log_noise in -12.0f64..-6.0,
        log_tol in -9.0f64..-3.0,
        seed in 0u64..1_000_000,
    ) {
        let noise = 10f64.powf(log_noise);
        let tol = 10f64.powf(log_tol);
        let a = ZMat::random(n, rank, seed);
        let b = ZMat::random(n, rank, seed + 7);
        let mut sigma = ZMat::zeros(n, n);
        gemm(Complex64::ONE, &a, Op::None, &b, Op::Adjoint, Complex64::ZERO, &mut sigma);
        sigma.axpy(c64(noise, 0.0), &ZMat::random(n, n, seed + 13));
        let comp = CompressedSigma::compress(&sigma, tol);
        let err = (&comp.to_dense() - &sigma).norm_fro();
        prop_assert!(
            err <= comp.bound() * (1.0 + 1e-12) + 1e-14,
            "reconstruction error {err} exceeds recorded bound {}", comp.bound()
        );
        prop_assert!(
            comp.bound() <= tol * sigma.norm_fro() * (1.0 + 1e-12),
            "bound {} exceeds requested tolerance {}", comp.bound(), tol * sigma.norm_fro()
        );
        if comp.is_compressed() {
            // The factor form must never cost more than the dense block.
            prop_assert!(comp.bytes() <= n * n * std::mem::size_of::<Complex64>());
            prop_assert!(comp.rank() <= n / 2);
        }
        // tol = 0 is always the exact dense block, bit-for-bit.
        let exact = CompressedSigma::compress(&sigma, 0.0);
        prop_assert!(exact.bound() == 0.0);
        prop_assert!(exact.to_dense().max_diff(&sigma) == 0.0);
    }
}

/// Golden spy render of a block tri-diagonal pattern: the band must light
/// up exactly the diagonal and its neighbors at one cell per block.
#[test]
fn spy_golden_btd_band() {
    let nb = 6;
    let bs = 4;
    let mut b = CsrBuilder::new(nb * bs, nb * bs);
    for blk in 0..nb {
        for i in 0..bs {
            for j in 0..bs {
                b.push(blk * bs + i, blk * bs + j, Complex64::ONE);
                if blk + 1 < nb {
                    b.push(blk * bs + i, (blk + 1) * bs + j, Complex64::ONE);
                    b.push((blk + 1) * bs + i, blk * bs + j, Complex64::ONE);
                }
            }
        }
    }
    let s = spy_string(&b.build(), nb, nb);
    let golden = concat!("██    \n", "███   \n", " ███  \n", "  ███ \n", "   ███\n", "    ██\n",);
    assert_eq!(s, golden, "spy render drifted:\n{s}");
}

/// Golden sparsity statistics of the same BTD band, cross-checked against
/// the closed-form entry count `bs²·(3·nb − 2)`.
#[test]
fn stats_golden_btd_band() {
    let nb = 8;
    let bs = 3;
    let mut b = CsrBuilder::new(nb * bs, nb * bs);
    for blk in 0..nb {
        for i in 0..bs {
            for j in 0..bs {
                b.push(blk * bs + i, blk * bs + j, Complex64::ONE);
                if blk + 1 < nb {
                    b.push(blk * bs + i, (blk + 1) * bs + j, Complex64::ONE);
                    b.push((blk + 1) * bs + i, blk * bs + j, Complex64::ONE);
                }
            }
        }
    }
    let s = sparsity_stats(&b.build(), bs);
    assert_eq!(s.dim, nb * bs);
    assert_eq!(s.nnz, bs * bs * (3 * nb - 2));
    assert_eq!(s.bandwidth, 2 * bs - 1);
    assert_eq!(s.coupling_range_blocks, 2);
    let btd = btd_stats(&Btd::zeros(nb, bs));
    assert_eq!(btd.entries, bs * bs * (3 * nb - 2));
    assert_eq!(btd.bytes, btd.entries * std::mem::size_of::<Complex64>());
    assert_eq!(btd.dense_bytes, (nb * bs) * (nb * bs) * std::mem::size_of::<Complex64>());
}
