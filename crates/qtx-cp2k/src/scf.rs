//! Self-consistent charge loop ("Quickstep-lite").
//!
//! The Kohn–Sham self-consistency that matters to transport is the
//! feedback between occupation and on-site potential: Mulliken populations
//! shift the on-site energies through the Hartree term, which shifts the
//! populations back. This loop implements exactly that cycle on the
//! unit-cell Hamiltonian:
//!
//! 1. diagonalize the folded `H(k=0)` against `S`,
//! 2. occupy the lowest half of the spectrum (charge neutrality),
//! 3. compute Mulliken charges `q_a = Σ_{µ∈a} (P·S)_{µµ}`,
//! 4. shift on-site energies by `U·(q_a − q⁰_a)` with damping,
//! 5. repeat until the charges stop moving.
//!
//! The final matrices — plus the functional's gap correction — are what
//! OMEN imports (Fig. 2).

use crate::functional::Functional;
use crate::hsfile::HsFile;
use qtx_atomistic::assemble::assemble_unit_cell;
use qtx_atomistic::devices::DeviceSpec;
use qtx_linalg::{c64, eig_generalized, gemm, Complex64, Op, Result, ZMat};
use serde::{Deserialize, Serialize};

/// Convergence record of the charge self-consistency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScfReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Final max |Δq| (electrons).
    pub charge_residual: f64,
    /// Whether the loop met its tolerance.
    pub converged: bool,
    /// Mulliken charge per atom at exit.
    pub mulliken: Vec<f64>,
}

/// A CP2K-lite run: structure + basis → self-consistent H/S + transfer file.
#[derive(Debug, Clone)]
pub struct Cp2kRun {
    spec: DeviceSpec,
    functional: Functional,
    /// On-site Hartree kernel U (eV per electron of charge imbalance).
    pub hubbard_u: f64,
    /// Linear mixing factor.
    pub mixing: f64,
    /// Charge tolerance (electrons).
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Skip the SCF loop (large cells / benchmarking).
    pub skip_scf: bool,
}

impl Cp2kRun {
    /// Creates a run with production-ish defaults.
    pub fn new(spec: DeviceSpec) -> Self {
        Cp2kRun {
            spec,
            functional: Functional::Lda,
            hubbard_u: 1.2,
            mixing: 0.4,
            tol: 1e-6,
            max_iter: 60,
            skip_scf: false,
        }
    }

    /// Selects the exchange-correlation functional.
    pub fn functional(mut self, f: Functional) -> Self {
        self.functional = f;
        self
    }

    /// Disables the self-consistency (matrices straight from the
    /// parameterization) — used by the performance benchmarks where only
    /// the matrix structure matters.
    pub fn without_scf(mut self) -> Self {
        self.skip_scf = true;
        self
    }

    /// Runs the charge loop and produces the OMEN transfer file.
    pub fn generate(&self) -> Result<HsFile> {
        let mut ucm = assemble_unit_cell(&self.spec.unit_cell, self.spec.basis, 0.0);
        let n_orb_atom = self.spec.basis.orbitals_per_atom();
        let n_atoms = self.spec.unit_cell.len();
        let mut report = ScfReport {
            iterations: 0,
            charge_residual: 0.0,
            converged: true,
            mulliken: vec![0.0; n_atoms],
        };
        if !self.skip_scf {
            // Reference (neutral) populations: half filling per atom.
            let q0 = n_orb_atom as f64 / 2.0;
            let mut shifts = vec![0.0; n_atoms];
            let mut converged = false;
            for it in 0..self.max_iter {
                report.iterations = it + 1;
                let q = mulliken_charges(&ucm.h[0], &ucm.s[0], n_atoms, n_orb_atom, &shifts)?;
                let residual = q.iter().map(|&qi| (qi - q0).abs()).fold(0.0f64, f64::max);
                report.charge_residual = residual;
                report.mulliken = q.clone();
                if residual < self.tol {
                    converged = true;
                    break;
                }
                for (a, &qa) in q.iter().enumerate() {
                    // Hartree: excess electrons push on-site energies up.
                    let target = self.hubbard_u * (qa - q0);
                    shifts[a] += self.mixing * (target - shifts[a]);
                }
            }
            report.converged = converged;
            // Fold the converged shifts into the stored Hamiltonian.
            apply_onsite_shifts(&mut ucm.h[0], &ucm.s[0], &report.mulliken, n_orb_atom, {
                let q0v = q0;
                let u = self.hubbard_u;
                move |qa| u * (qa - q0v)
            });
        }
        // Functional correction: rigid shift of the conduction manifold.
        let dg = self.functional.gap_correction();
        if dg != 0.0 {
            if let Some(block) = ucm.h.first_mut() {
                // On-site (H_0) block only; conduction orbitals are the
                // upper half of each atom's set.
                for a in 0..n_atoms {
                    for o in n_orb_atom / 2..n_orb_atom {
                        let idx = a * n_orb_atom + o;
                        block[(idx, idx)] += c64(dg, 0.0);
                    }
                }
            }
        }
        Ok(HsFile {
            label: self.spec.unit_cell.label.clone(),
            functional: self.functional,
            geometry: self.spec.geometry.clone(),
            basis: self.spec.basis,
            unit_cell: ucm,
            scf: report,
        })
    }
}

/// Mulliken populations `q_a = Σ_{µ∈a} Re(P·S)_{µµ}` with the density
/// matrix built from the lowest-half generalized eigenvectors of
/// `(H + diag(shifts))·c = E·S·c`.
fn mulliken_charges(
    h0: &ZMat,
    s0: &ZMat,
    n_atoms: usize,
    n_orb_atom: usize,
    shifts: &[f64],
) -> Result<Vec<f64>> {
    let n = h0.rows();
    let mut h = h0.clone();
    for (a, &shift) in shifts.iter().enumerate().take(n_atoms) {
        for o in 0..n_orb_atom {
            let i = a * n_orb_atom + o;
            h[(i, i)] += c64(shift, 0.0);
        }
    }
    let dec = eig_generalized(&h, s0)?;
    // Order states by energy; occupy the lowest half (spin-degenerate
    // neutrality at half filling of the model basis).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| dec.values[i].re.partial_cmp(&dec.values[j].re).unwrap());
    let n_occ = n / 2;
    // P = Σ_occ c·cᴴ (normalized so cᴴ·S·c = 1).
    let mut p = ZMat::zeros(n, n);
    for &k in order.iter().take(n_occ) {
        let v: Vec<Complex64> = (0..n).map(|i| dec.vectors[(i, k)]).collect();
        let sv = s0.matvec(&v);
        let norm: Complex64 = v.iter().zip(&sv).map(|(a, b)| a.conj() * *b).sum();
        let scale = 1.0 / norm.re.max(1e-12);
        for i in 0..n {
            for j in 0..n {
                p[(i, j)] += (v[i] * v[j].conj()).scale(scale);
            }
        }
    }
    // q_a = Σ_{µ∈a} (P·S)_{µµ}.
    let mut ps = ZMat::zeros(n, n);
    gemm(Complex64::ONE, &p, Op::None, s0, Op::None, Complex64::ZERO, &mut ps);
    let mut q = vec![0.0; n_atoms];
    for (a, qa) in q.iter_mut().enumerate().take(n_atoms) {
        for o in 0..n_orb_atom {
            let i = a * n_orb_atom + o;
            *qa += ps[(i, i)].re;
        }
    }
    Ok(q)
}

/// Adds the converged Hartree shifts to the on-site block.
fn apply_onsite_shifts(
    h0: &mut ZMat,
    _s0: &ZMat,
    mulliken: &[f64],
    n_orb_atom: usize,
    shift_of: impl Fn(f64) -> f64,
) {
    for (a, &qa) in mulliken.iter().enumerate() {
        let dv = shift_of(qa);
        for o in 0..n_orb_atom {
            let i = a * n_orb_atom + o;
            h0[(i, i)] += c64(dv, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_atomistic::{BasisKind, DeviceBuilder};

    fn small_spec() -> DeviceSpec {
        DeviceBuilder::nanowire(0.8).cells(4).basis(BasisKind::TightBinding).build()
    }

    #[test]
    fn scf_converges_on_homogeneous_cell() {
        let hs = Cp2kRun::new(small_spec()).generate().unwrap();
        assert!(hs.scf.converged, "residual {}", hs.scf.charge_residual);
        // Homogeneous Si: every atom stays neutral (1 e per orbital pair).
        for &q in &hs.scf.mulliken {
            assert!((q - 1.0).abs() < 0.2, "Mulliken {q}");
        }
    }

    #[test]
    fn skip_scf_matches_raw_assembly() {
        let spec = small_spec();
        let raw = assemble_unit_cell(&spec.unit_cell, spec.basis, 0.0);
        let hs = Cp2kRun::new(spec).without_scf().generate().unwrap();
        assert!(hs.unit_cell.h[0].max_diff(&raw.h[0]) < 1e-12);
    }

    #[test]
    fn hse06_widens_gap_relative_to_lda() {
        let lda = Cp2kRun::new(small_spec()).without_scf().generate().unwrap();
        let hse = Cp2kRun::new(small_spec())
            .without_scf()
            .functional(Functional::Hse06)
            .generate()
            .unwrap();
        // Conduction on-site entries move up by the gap correction.
        let n_orb_atom = 2;
        let idx = n_orb_atom / 2; // first conduction orbital of atom 0
        let d = (hse.unit_cell.h[0][(idx, idx)] - lda.unit_cell.h[0][(idx, idx)]).re;
        assert!((d - 0.65).abs() < 1e-12, "shift {d}");
        // Valence entries untouched.
        assert!((hse.unit_cell.h[0][(0, 0)] - lda.unit_cell.h[0][(0, 0)]).abs() < 1e-12);
    }

    #[test]
    fn scf_keeps_hamiltonian_hermitian() {
        let hs = Cp2kRun::new(small_spec()).generate().unwrap();
        assert!(hs.unit_cell.h[0].hermitian_defect() < 1e-10);
    }
}
