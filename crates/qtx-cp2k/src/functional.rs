//! Exchange-correlation functional knob.
//!
//! The paper computes everything with a 3SP basis in the LDA (ref. [34])
//! but stresses that "the SplitSolve algorithm works with any basis set
//! and functional": Fig. 1(b) compares LDA to the HSE06 hybrid and
//! Fig. 1(e)/(f) uses PBE. At the level the transport solvers see, the
//! functional choice shifts band edges — LDA famously underestimates the
//! gap, hybrids reopen it — so the substitution applies the documented
//! gap corrections to the conduction manifold on-site energies.

use serde::{Deserialize, Serialize};

/// Supported exchange-correlation treatments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Functional {
    /// Local density approximation (the paper's production choice).
    Lda,
    /// PBE generalized-gradient approximation (battery workloads).
    Pbe,
    /// HSE06-like screened hybrid: opens the LDA gap back up.
    Hse06,
}

impl Functional {
    /// Rigid shift (eV) applied to the conduction manifold relative to the
    /// LDA baseline — the Si LDA→HSE06 gap reopening is ≈ +0.6–0.7 eV.
    pub fn gap_correction(self) -> f64 {
        match self {
            Functional::Lda => 0.0,
            Functional::Pbe => 0.08,
            Functional::Hse06 => 0.65,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Functional::Lda => "LDA",
            Functional::Pbe => "PBE",
            Functional::Hse06 => "HSE06",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_opens_the_gap() {
        assert_eq!(Functional::Lda.gap_correction(), 0.0);
        assert!(Functional::Hse06.gap_correction() > 0.5);
        assert!(Functional::Pbe.gap_correction() < Functional::Hse06.gap_correction());
    }
}
