//! The CP2K → OMEN binary transfer file (Fig. 2).
//!
//! "The coupling between the two packages currently occurs through a
//! transfer of binary files" (§4). The format here is a simple
//! length-prefixed little-endian layout built with the `bytes` crate: a
//! magic tag, metadata, then the unit-cell `H_l`/`S_l` blocks. `qtx-core`
//! plays OMEN's role and reads these files back ("not all the nodes
//! running OMEN load the Hamiltonian ... the resulting data are then
//! distributed to all the available MPI ranks with MPI_Bcast").

use crate::functional::Functional;
use crate::scf::ScfReport;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use qtx_atomistic::assemble::UnitCellMatrices;
use qtx_atomistic::devices::DeviceGeometry;
use qtx_atomistic::BasisKind;
use qtx_linalg::{c64, ZMat};

/// Magic prefix of the transfer format.
const MAGIC: &[u8; 8] = b"QTXHS\x01\0\0";

/// The transferred content: everything OMEN needs to build leads and
/// device matrices.
#[derive(Debug, Clone)]
pub struct HsFile {
    /// Human-readable structure label.
    pub label: String,
    /// Functional the matrices were generated with.
    pub functional: Functional,
    /// Device geometry metadata.
    pub geometry: DeviceGeometry,
    /// Basis kind.
    pub basis: BasisKind,
    /// Unit-cell Hamiltonian/overlap blocks.
    pub unit_cell: UnitCellMatrices,
    /// Self-consistency record.
    pub scf: ScfReport,
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u64_le(s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> String {
    let len = buf.get_u64_le() as usize;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).expect("utf8 label")
}

fn put_zmat(buf: &mut BytesMut, m: &ZMat) {
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for z in m.as_slice() {
        buf.put_f64_le(z.re);
        buf.put_f64_le(z.im);
    }
}

fn get_zmat(buf: &mut Bytes) -> ZMat {
    let rows = buf.get_u64_le() as usize;
    let cols = buf.get_u64_le() as usize;
    let mut m = ZMat::zeros(rows, cols);
    for j in 0..cols {
        for i in 0..rows {
            let re = buf.get_f64_le();
            let im = buf.get_f64_le();
            m[(i, j)] = c64(re, im);
        }
    }
    m
}

impl HsFile {
    /// Serializes to the binary transfer format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        put_string(&mut buf, &self.label);
        buf.put_u8(match self.functional {
            Functional::Lda => 0,
            Functional::Pbe => 1,
            Functional::Hse06 => 2,
        });
        buf.put_u8(match self.basis {
            BasisKind::TightBinding => 0,
            BasisKind::Dft3sp => 1,
        });
        put_string(&mut buf, &self.geometry.kind);
        buf.put_f64_le(self.geometry.cross_section);
        buf.put_u64_le(self.geometry.n_cells as u64);
        buf.put_f64_le(self.geometry.cell_len);
        buf.put_u8(self.geometry.z_periodic as u8);
        // Unit cell matrices.
        let uc = &self.unit_cell;
        buf.put_u64_le(uc.nbw as u64);
        buf.put_u64_le(uc.n_orb as u64);
        buf.put_u64_le(uc.atoms_per_cell as u64);
        buf.put_f64_le(uc.cell_len);
        for l in 0..=uc.nbw {
            put_zmat(&mut buf, &uc.h[l]);
            put_zmat(&mut buf, &uc.s[l]);
        }
        // SCF report.
        buf.put_u64_le(self.scf.iterations as u64);
        buf.put_f64_le(self.scf.charge_residual);
        buf.put_u8(self.scf.converged as u8);
        buf.put_u64_le(self.scf.mulliken.len() as u64);
        for &q in &self.scf.mulliken {
            buf.put_f64_le(q);
        }
        buf.to_vec()
    }

    /// Deserializes from the binary transfer format.
    pub fn from_bytes(data: &[u8]) -> std::io::Result<HsFile> {
        let mut buf = Bytes::copy_from_slice(data);
        if buf.len() < 8 || &buf.split_to(8)[..] != MAGIC {
            return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "bad magic"));
        }
        let label = get_string(&mut buf);
        let functional = match buf.get_u8() {
            0 => Functional::Lda,
            1 => Functional::Pbe,
            _ => Functional::Hse06,
        };
        let basis = match buf.get_u8() {
            0 => BasisKind::TightBinding,
            _ => BasisKind::Dft3sp,
        };
        let kind = get_string(&mut buf);
        let cross_section = buf.get_f64_le();
        let n_cells = buf.get_u64_le() as usize;
        let cell_len = buf.get_f64_le();
        let z_periodic = buf.get_u8() != 0;
        let nbw = buf.get_u64_le() as usize;
        let n_orb = buf.get_u64_le() as usize;
        let atoms_per_cell = buf.get_u64_le() as usize;
        let uc_cell_len = buf.get_f64_le();
        let mut h = Vec::with_capacity(nbw + 1);
        let mut s = Vec::with_capacity(nbw + 1);
        for _ in 0..=nbw {
            h.push(get_zmat(&mut buf));
            s.push(get_zmat(&mut buf));
        }
        let iterations = buf.get_u64_le() as usize;
        let charge_residual = buf.get_f64_le();
        let converged = buf.get_u8() != 0;
        let nq = buf.get_u64_le() as usize;
        let mulliken = (0..nq).map(|_| buf.get_f64_le()).collect();
        Ok(HsFile {
            label,
            functional,
            geometry: DeviceGeometry { kind, cross_section, n_cells, cell_len, z_periodic },
            basis,
            unit_cell: UnitCellMatrices { nbw, n_orb, h, s, atoms_per_cell, cell_len: uc_cell_len },
            scf: ScfReport { iterations, charge_residual, converged, mulliken },
        })
    }

    /// Writes the transfer file to disk.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a transfer file from disk.
    pub fn load(path: &std::path::Path) -> std::io::Result<HsFile> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::Cp2kRun;
    use qtx_atomistic::{BasisKind, DeviceBuilder};

    fn sample() -> HsFile {
        let spec = DeviceBuilder::nanowire(0.8).cells(4).basis(BasisKind::TightBinding).build();
        Cp2kRun::new(spec).without_scf().generate().unwrap()
    }

    #[test]
    fn roundtrip_preserves_matrices() {
        let hs = sample();
        let bytes = hs.to_bytes();
        let back = HsFile::from_bytes(&bytes).unwrap();
        assert_eq!(back.unit_cell.nbw, hs.unit_cell.nbw);
        assert_eq!(back.unit_cell.n_orb, hs.unit_cell.n_orb);
        for l in 0..=hs.unit_cell.nbw {
            assert!(back.unit_cell.h[l].max_diff(&hs.unit_cell.h[l]) < 1e-15);
            assert!(back.unit_cell.s[l].max_diff(&hs.unit_cell.s[l]) < 1e-15);
        }
        assert_eq!(back.label, hs.label);
        assert_eq!(back.geometry.n_cells, 4);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(HsFile::from_bytes(b"NOTQTXHS-whatever").is_err());
    }

    #[test]
    fn file_roundtrip_on_disk() {
        let hs = sample();
        let dir = std::env::temp_dir().join("qtx_hsfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cell.qtxhs");
        hs.save(&path).unwrap();
        let back = HsFile::load(&path).unwrap();
        assert!(back.unit_cell.h[0].max_diff(&hs.unit_cell.h[0]) < 1e-15);
        std::fs::remove_file(&path).ok();
    }
}
