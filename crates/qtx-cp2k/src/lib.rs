//! # qtx-cp2k — the DFT substrate ("CP2K-lite", §2.A, Fig. 2)
//!
//! In the paper, CP2K builds the nanostructure, relaxes it, solves the
//! Kohn–Sham equation (Eq. 1) in a contracted-Gaussian basis (Eq. 2) and
//! ships the Hamiltonian/overlap matrices to OMEN through binary files.
//! This crate is the documented substitution for Quickstep: it starts from
//! the two-centre parameterization of `qtx-atomistic`, runs a small
//! **self-consistent charge loop** (Mulliken charges → on-site Hartree
//! shifts → new H, mirroring the Kohn–Sham self-consistency at the level
//! transport actually sees), applies the **exchange-correlation
//! functional knob** (LDA baseline, PBE, HSE06-like hybrid gap opening —
//! Fig. 1(b)), and writes/reads the **binary H/S transfer files** of
//! Fig. 2.
//!
//! ```
//! use qtx_atomistic::{BasisKind, DeviceBuilder};
//! use qtx_cp2k::{Cp2kRun, Functional};
//!
//! let spec = DeviceBuilder::nanowire(0.8).cells(6).basis(BasisKind::TightBinding).build();
//! let hs = Cp2kRun::new(spec).functional(Functional::Lda).generate().unwrap();
//! assert!(hs.unit_cell.n_orb > 0);
//! ```

pub mod functional;
pub mod hsfile;
pub mod scf;

pub use functional::Functional;
pub use hsfile::HsFile;
pub use scf::{Cp2kRun, ScfReport};
