//! Determinism battery for the supervised work-stealing scheduler.
//!
//! The scheduler's contract (`docs/scheduler.md`): a sweep's records are a
//! pure function of the plan — the pool's width, steal order, and timing
//! never leak into the results. These properties drive randomized sweep
//! plans through fresh pools of 1, 2, and 4 workers and require the
//! record sets to be `identity_eq` and the health accounting equal.
//!
//! The same invariance *under fault campaigns* (including the injected
//! `sched_panic` site) lives in `fault_tolerance.rs`, which owns the
//! process-global campaign configuration.

use proptest::prelude::*;
use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_core::cache::CacheConfig;
use qtx_core::refine::parallel_sweep_refined;
use qtx_core::{
    parallel_sweep_resumable, Batching, CachePolicy, Device, RefineConfig, RefinedSweep, Scheduler,
    SchedulerConfig, SigmaCache, SweepOptions, SweepPlan, SweepResult,
};
use std::sync::Arc;

fn small_device() -> Device {
    let spec = DeviceBuilder::nanowire(0.8).cells(6).basis(BasisKind::TightBinding).build();
    let mut d = Device::build(spec).unwrap();
    let dk = d.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("conduction edge");
    d.config.mu_l = edge + 0.15;
    d.config.mu_r = edge + 0.10;
    d
}

fn sweep_on_fresh_pool(dev: &Device, plan: &SweepPlan, workers: usize) -> SweepResult {
    let opts = SweepOptions::builder()
        .scheduler(Arc::new(Scheduler::new(SchedulerConfig {
            workers,
            ..SchedulerConfig::default()
        })))
        .build()
        .unwrap();
    parallel_sweep_resumable(dev, plan, 3, &opts).unwrap()
}

fn assert_runs_identical(reference: &SweepResult, other: &SweepResult, label: &str) {
    assert_eq!(other.records.len(), reference.records.len(), "{label}: record count");
    for (a, b) in other.records.iter().zip(&reference.records) {
        assert!(
            a.identity_eq(b),
            "{label}: record (k={}, e={}) diverged:\n{a:?}\nvs\n{b:?}",
            a.k_idx,
            a.e_idx
        );
    }
    assert_eq!(other.health, reference.health, "{label}: health accounting");
    assert_eq!(other.spectrum, reference.spectrum, "{label}: spectrum");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized energy windows: the 1-worker pool defines the reference
    /// ordering; 2- and 4-worker pools must reproduce it bit-for-bit.
    #[test]
    fn sweep_records_are_invariant_under_worker_count(
        d_min_milli in 20usize..45,
        width_milli in 60usize..120,
    ) {
        let dev = small_device();
        let d_min = d_min_milli as f64 * 1e-3;
        let d_max = d_min + width_milli as f64 * 1e-3;
        let plan = SweepPlan::from_device(&dev, d_min, d_max);
        prop_assert!(plan.total_points() > 0);
        let reference = sweep_on_fresh_pool(&dev, &plan, 1);
        for workers in [2usize, 4] {
            let run = sweep_on_fresh_pool(&dev, &plan, workers);
            assert_runs_identical(&reference, &run, &format!("{workers} workers"));
        }
    }
}

/// The non-randomized smoke version stays cheap enough for every CI leg.
#[test]
fn default_plan_is_invariant_under_worker_count() {
    let dev = small_device();
    let plan = SweepPlan::from_device(&dev, 0.05, 0.15);
    let reference = sweep_on_fresh_pool(&dev, &plan, 1);
    for workers in [2usize, 4] {
        let run = sweep_on_fresh_pool(&dev, &plan, workers);
        assert_runs_identical(&reference, &run, &format!("{workers} workers"));
    }
}

/// Fresh pool + fresh shared Σ-cache: batched/overlapped sweeps and
/// refined sweeps must not let cache races or chunk boundaries leak into
/// the records.
fn options_on_fresh_pool(workers: usize, batching: Batching) -> SweepOptions {
    SweepOptions::builder()
        .scheduler(Arc::new(Scheduler::new(SchedulerConfig {
            workers,
            ..SchedulerConfig::default()
        })))
        .cache(CachePolicy::Shared(Arc::new(SigmaCache::new(CacheConfig::default()))))
        .batching(batching)
        .build()
        .unwrap()
}

fn refine_cfg() -> RefineConfig {
    // Tight tolerance on a coarse base grid: refinement must actually
    // fire for these tests to mean anything (asserted below).
    RefineConfig { tol: 1e-4, budget: 24, max_rounds: 3, min_de: 1e-3, flag_escalated: true }
}

fn refined_on_fresh_pool(dev: &Device, plan: &SweepPlan, workers: usize) -> RefinedSweep {
    let opts = options_on_fresh_pool(workers, Batching::Auto);
    parallel_sweep_refined(dev, plan, 3, &opts, &refine_cfg()).unwrap()
}

fn assert_refined_identical(reference: &RefinedSweep, other: &RefinedSweep, label: &str) {
    assert_runs_identical(&reference.result, &other.result, label);
    assert_eq!(other.rounds, reference.rounds, "{label}: rounds");
    assert_eq!(other.points_added, reference.points_added, "{label}: points added");
    assert_eq!(other.plan.energies.len(), reference.plan.energies.len(), "{label}: momenta");
    for (a, b) in other.plan.energies.iter().zip(&reference.plan.energies) {
        let a_bits: Vec<u64> = a.iter().map(|e| e.to_bits()).collect();
        let b_bits: Vec<u64> = b.iter().map(|e| e.to_bits()).collect();
        assert_eq!(a_bits, b_bits, "{label}: refined grid energies (bitwise)");
    }
}

/// Batching is a scheduling concern only: chunked tasks (with the
/// Σ-prefetch/interior-solve overlap split) must reproduce the per-point
/// records bit-for-bit.
#[test]
fn batched_sweeps_match_per_point_bit_for_bit() {
    let dev = small_device();
    let plan = SweepPlan::from_device(&dev, 0.05, 0.15);
    let reference =
        parallel_sweep_resumable(&dev, &plan, 3, &options_on_fresh_pool(2, Batching::PerPoint))
            .unwrap();
    for (workers, batching) in
        [(1, Batching::Auto), (4, Batching::Auto), (2, Batching::Fixed(3)), (4, Batching::Fixed(7))]
    {
        let run =
            parallel_sweep_resumable(&dev, &plan, 3, &options_on_fresh_pool(workers, batching))
                .unwrap();
        assert_runs_identical(&reference, &run, &format!("{workers} workers, {batching:?}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Adaptive refinement composed over randomized base grids: the
    /// refined grid and every record must be invariant under the worker
    /// count, including the refinement-inserted points.
    #[test]
    fn refined_sweep_is_invariant_under_worker_count(
        d_min_milli in 30usize..50,
        width_milli in 80usize..140,
    ) {
        let dev = small_device();
        let d_min = d_min_milli as f64 * 1e-3;
        let d_max = d_min + width_milli as f64 * 1e-3;
        let plan = SweepPlan::from_device(&dev, d_min, d_max);
        prop_assert!(plan.total_points() > 0);
        let reference = refined_on_fresh_pool(&dev, &plan, 1);
        prop_assert!(reference.points_added > 0, "refinement must fire to be tested");
        for workers in [2usize, 4] {
            let run = refined_on_fresh_pool(&dev, &plan, workers);
            assert_refined_identical(&reference, &run, &format!("{workers} workers"));
        }
    }
}

/// A refined sweep killed mid-refinement and resumed must converge to the
/// bit-identical grid and records of an uninterrupted run.
#[test]
fn refined_sweep_kill_resume_is_bit_identical() {
    let dev = small_device();
    let plan = SweepPlan::from_device(&dev, 0.05, 0.15);
    let reference = refined_on_fresh_pool(&dev, &plan, 2);
    assert!(reference.points_added > 0, "refinement must fire to be tested");

    let dir = std::env::temp_dir().join("qtx-refine-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("refined.qtxswp");
    std::fs::remove_file(&ckpt).ok();

    // Kill three points into the first refinement round.
    let kill_after = plan.total_points() + 3;
    assert!(
        kill_after < plan.total_points() + reference.points_added,
        "kill must land mid-refinement"
    );
    let kill_opts = SweepOptions::builder()
        .scheduler(Arc::new(Scheduler::new(SchedulerConfig {
            workers: 2,
            ..SchedulerConfig::default()
        })))
        .cache(CachePolicy::Shared(Arc::new(SigmaCache::new(CacheConfig::default()))))
        .batching(Batching::Auto)
        .checkpoint(&ckpt)
        .max_new_points(kill_after)
        .build()
        .unwrap();
    let partial = parallel_sweep_refined(&dev, &plan, 3, &kill_opts, &refine_cfg()).unwrap();
    assert!(partial.truncated, "the kill budget must actually truncate the run");
    assert_eq!(partial.result.records.len(), kill_after);

    // Resume on a different worker count, no kill budget.
    let resume_opts = SweepOptions::builder()
        .scheduler(Arc::new(Scheduler::new(SchedulerConfig {
            workers: 4,
            ..SchedulerConfig::default()
        })))
        .cache(CachePolicy::Shared(Arc::new(SigmaCache::new(CacheConfig::default()))))
        .batching(Batching::Auto)
        .checkpoint(&ckpt)
        .build()
        .unwrap();
    let resumed = parallel_sweep_refined(&dev, &plan, 3, &resume_opts, &refine_cfg()).unwrap();
    assert!(!resumed.truncated);
    assert_refined_identical(&reference, &resumed, "kill/resume");
    std::fs::remove_file(&ckpt).ok();
}

/// The checkpoint fingerprint must cover the refinement config: a
/// checkpoint written under one tolerance is rejected under another
/// (and by the flat sweep) instead of silently mixing schedules.
#[test]
fn refined_checkpoint_fingerprint_covers_refine_config() {
    let dev = small_device();
    let plan = SweepPlan::from_device(&dev, 0.05, 0.15);
    let dir = std::env::temp_dir().join("qtx-refine-fingerprint-test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("refined-fp.qtxswp");
    std::fs::remove_file(&ckpt).ok();

    let opts = SweepOptions::builder().checkpoint(&ckpt).build().unwrap();
    let cfg = refine_cfg();
    parallel_sweep_refined(&dev, &plan, 3, &opts, &cfg).unwrap();
    assert!(ckpt.exists());

    // Same plan, different tolerance: loudly rejected.
    let other = RefineConfig { tol: cfg.tol * 0.5, ..cfg };
    let err = parallel_sweep_refined(&dev, &plan, 3, &opts, &other).unwrap_err();
    assert!(
        matches!(
            &err,
            qtx_core::TransportError::Checkpoint(qtx_core::CheckpointError::PlanMismatch { .. })
        ),
        "expected PlanMismatch, got {err:?}"
    );
    // The flat sweep must reject a refined checkpoint too.
    let flat_err = parallel_sweep_resumable(&dev, &plan, 3, &opts).unwrap_err();
    assert!(matches!(
        &flat_err,
        qtx_core::TransportError::Checkpoint(qtx_core::CheckpointError::PlanMismatch { .. })
    ));
    std::fs::remove_file(&ckpt).ok();
}
