//! Determinism battery for the supervised work-stealing scheduler.
//!
//! The scheduler's contract (`docs/scheduler.md`): a sweep's records are a
//! pure function of the plan — the pool's width, steal order, and timing
//! never leak into the results. These properties drive randomized sweep
//! plans through fresh pools of 1, 2, and 4 workers and require the
//! record sets to be `identity_eq` and the health accounting equal.
//!
//! The same invariance *under fault campaigns* (including the injected
//! `sched_panic` site) lives in `fault_tolerance.rs`, which owns the
//! process-global campaign configuration.

use proptest::prelude::*;
use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_core::{
    parallel_sweep_resumable, Device, Scheduler, SchedulerConfig, SweepOptions, SweepPlan,
    SweepResult,
};
use std::sync::Arc;

fn small_device() -> Device {
    let spec = DeviceBuilder::nanowire(0.8).cells(6).basis(BasisKind::TightBinding).build();
    let mut d = Device::build(spec).unwrap();
    let dk = d.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("conduction edge");
    d.config.mu_l = edge + 0.15;
    d.config.mu_r = edge + 0.10;
    d
}

fn sweep_on_fresh_pool(dev: &Device, plan: &SweepPlan, workers: usize) -> SweepResult {
    let opts = SweepOptions::builder()
        .scheduler(Arc::new(Scheduler::new(SchedulerConfig {
            workers,
            ..SchedulerConfig::default()
        })))
        .build()
        .unwrap();
    parallel_sweep_resumable(dev, plan, 3, &opts).unwrap()
}

fn assert_runs_identical(reference: &SweepResult, other: &SweepResult, label: &str) {
    assert_eq!(other.records.len(), reference.records.len(), "{label}: record count");
    for (a, b) in other.records.iter().zip(&reference.records) {
        assert!(
            a.identity_eq(b),
            "{label}: record (k={}, e={}) diverged:\n{a:?}\nvs\n{b:?}",
            a.k_idx,
            a.e_idx
        );
    }
    assert_eq!(other.health, reference.health, "{label}: health accounting");
    assert_eq!(other.spectrum, reference.spectrum, "{label}: spectrum");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized energy windows: the 1-worker pool defines the reference
    /// ordering; 2- and 4-worker pools must reproduce it bit-for-bit.
    #[test]
    fn sweep_records_are_invariant_under_worker_count(
        d_min_milli in 20usize..45,
        width_milli in 60usize..120,
    ) {
        let dev = small_device();
        let d_min = d_min_milli as f64 * 1e-3;
        let d_max = d_min + width_milli as f64 * 1e-3;
        let plan = SweepPlan::from_device(&dev, d_min, d_max);
        prop_assert!(plan.total_points() > 0);
        let reference = sweep_on_fresh_pool(&dev, &plan, 1);
        for workers in [2usize, 4] {
            let run = sweep_on_fresh_pool(&dev, &plan, workers);
            assert_runs_identical(&reference, &run, &format!("{workers} workers"));
        }
    }
}

/// The non-randomized smoke version stays cheap enough for every CI leg.
#[test]
fn default_plan_is_invariant_under_worker_count() {
    let dev = small_device();
    let plan = SweepPlan::from_device(&dev, 0.05, 0.15);
    let reference = sweep_on_fresh_pool(&dev, &plan, 1);
    for workers in [2usize, 4] {
        let run = sweep_on_fresh_pool(&dev, &plan, workers);
        assert_runs_identical(&reference, &run, &format!("{workers} workers"));
    }
}
