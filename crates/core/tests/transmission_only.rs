//! Acceptance battery for the boundary-block-only transmission path: T(E)
//! parity with the dense Caroli route (bit-identical with compression
//! off, within the recorded Σ bound with it on) and the `bandwidth·n`
//! peak-memory scaling that retiring dense staging buys.

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_core::engine::{PointPolicy, TransportEngine};
use qtx_core::{caroli_transmission, transport, Device, DeviceK, TransportConfig, METHOD_BOUNDARY};
use qtx_linalg::{c64, gemm, Complex64, Op, ZMat};
use qtx_obc::{LeadBlocks, ObcMethod};
use qtx_sparse::{peak_matrix_bytes, reset_peak_matrix_bytes, Btd};
use std::sync::{Mutex, MutexGuard};

/// The peak-byte counter is process-global; every test that reads it (or
/// allocates heavily enough to disturb a concurrent reader) serializes
/// here.
static PEAK_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    PEAK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn nanowire(cells: usize) -> Device {
    let spec = DeviceBuilder::nanowire(0.8).cells(cells).basis(BasisKind::TightBinding).build();
    Device::build(spec).unwrap()
}

/// An 8-orbital lead whose inter-cell coupling has rank 2, so
/// `Σ = τ·g·τᴴ` is genuinely low-rank and compression has something to
/// shed (a full-rank coupling would only exercise the dense fallback).
fn block_lead() -> LeadBlocks {
    let nf = 8;
    let mut h00 = ZMat::zeros(nf, nf);
    let r = ZMat::random(nf, nf, 11);
    for i in 0..nf {
        for j in 0..nf {
            h00[(i, j)] = 0.1 * (r[(i, j)] + r[(j, i)].conj());
        }
        h00[(i, i)] += c64(2.0 + i as f64 * 0.1, 0.0);
    }
    let a = ZMat::random(nf, 2, 13);
    let b = ZMat::random(nf, 2, 17);
    let mut h01 = ZMat::zeros(nf, nf);
    gemm(c64(0.2, 0.0), &a, Op::None, &b, Op::Adjoint, Complex64::ZERO, &mut h01);
    LeadBlocks::new(h00, h01, ZMat::identity(nf), ZMat::zeros(nf, nf))
}

/// A homogeneous chain of `nb` copies of the block lead's unit cell,
/// assembled by hand the way external pipelines feed `from_device_k`.
fn block_device_k(nb: usize) -> DeviceK {
    let lead = block_lead();
    let s = lead.h00.rows();
    let mut h = Btd::zeros(nb, s);
    let mut ov = Btd::zeros(nb, s);
    for i in 0..nb {
        h.diag[i] = lead.h00.clone();
        ov.diag[i] = ZMat::identity(s);
    }
    for i in 0..nb - 1 {
        h.upper[i] = lead.h01.clone();
        h.lower[i] = lead.h01.adjoint();
    }
    DeviceK { lead_l: lead.clone(), lead_r: lead, h, s: ov, kz: 0.0 }
}

#[test]
fn uncompressed_boundary_path_is_bit_identical_to_caroli() {
    let _guard = lock();
    let d = nanowire(8);
    let dk = d.at_kz(0.0);
    let e = dk.lead_l.dispersive_energy(1.0, 0.2, 0.3).expect("conduction band");
    let reference = caroli_transmission(&dk, e, d.config.obc).unwrap();
    let engine = TransportEngine::builder(d).cache(qtx_core::CachePolicy::Off).build();
    let rs = engine.solve_point(e, 0.0, &PointPolicy::transmission_only());
    assert_eq!(rs.outcome.method_used, METHOD_BOUNDARY);
    assert_eq!(rs.outcome.method_name(), "boundary-caroli");
    assert_eq!(rs.outcome.interp_bound, 0.0, "tol 0 must record a zero bound");
    let r = rs.into_result().unwrap();
    assert_eq!(r.transmission, reference, "compression off must be bit-identical");
    assert!(r.transmission > 0.5, "conduction band must transmit");
    // The transmission-only point carries no scattering states.
    assert_eq!(r.psi.rows(), 0);
}

#[test]
fn boundary_path_agrees_with_wave_function_route() {
    let _guard = lock();
    let d = nanowire(8);
    let e = d.at_kz(0.0).lead_l.dispersive_energy(1.0, 0.2, 0.3).expect("conduction band");
    let engine = TransportEngine::builder(d).cache(qtx_core::CachePolicy::Off).build();
    let wf = engine.solve_point(e, 0.0, &PointPolicy::direct()).into_result().unwrap();
    let bd = engine.solve_point(e, 0.0, &PointPolicy::transmission_only()).into_result().unwrap();
    assert!(
        (wf.transmission - bd.transmission).abs() < 1e-6,
        "WF {} vs boundary {}",
        wf.transmission,
        bd.transmission
    );
}

#[test]
fn compressed_sigma_stays_within_recorded_bound() {
    let _guard = lock();
    let dk = block_device_k(12);
    let cfg = TransportConfig { obc: ObcMethod::Decimation, ..TransportConfig::default() };
    let e = 0.3;
    let exact = transport::caroli_from_sigmas;
    // Reference: exact Σ through the same boundary kernel.
    let engine = TransportEngine::from_device_k(block_device_k(12), cfg);
    let rs_exact = engine.solve_point(e, 0.0, &PointPolicy::transmission_only());
    assert_eq!(rs_exact.outcome.interp_bound, 0.0);
    let t_exact = rs_exact.into_result().unwrap().transmission;
    // Compressed: the rank-2 coupling caps rank(Σ) at 2 of 8, so the
    // factor form genuinely engages and records a non-zero bound.
    let policy = PointPolicy::transmission_only().with_sigma_compression(1e-8);
    let rs = engine.solve_point(e, 0.0, &policy);
    let bound = rs.outcome.interp_bound;
    assert!(bound > 0.0, "rank-2 Σ at tol 1e-8 must compress");
    assert!(bound < 1e-6, "bound {bound} out of scale for tol 1e-8");
    let t_comp = rs.into_result().unwrap().transmission;
    assert!(
        (t_comp - t_exact).abs() <= 1e4 * bound + 1e-12,
        "ΔT {} exceeds condition-scaled Σ bound {bound}",
        (t_comp - t_exact).abs()
    );
    // Silence the unused-import-style warning for the exact fn reference:
    // the dense Caroli route must agree with the engine's exact pass too.
    let sig_l =
        qtx_obc::self_energy(&dk.lead_l, e, qtx_obc::Eta(0.0), qtx_obc::Side::Left, cfg.obc)
            .unwrap()
            .sigma;
    let sig_r =
        qtx_obc::self_energy(&dk.lead_r, e, qtx_obc::Eta(0.0), qtx_obc::Side::Right, cfg.obc)
            .unwrap()
            .sigma;
    let t_dense = exact(&dk, e, 0.0, &sig_l, &sig_r).unwrap();
    assert_eq!(t_dense, t_exact, "engine exact pass must match the dense Caroli route");
}

#[test]
fn peak_matrix_bytes_scale_with_bandwidth_times_n() {
    let _guard = lock();
    let lengths = [16usize, 64];
    let mut peaks = [0usize; 2];
    for (slot, &nb) in peaks.iter_mut().zip(&lengths) {
        let cfg = TransportConfig { obc: ObcMethod::Decimation, ..TransportConfig::default() };
        let engine = TransportEngine::from_device_k(block_device_k(nb), cfg);
        // Warm up the thread-local workspace and the OBC machinery so the
        // measured pass sees steady-state allocation behavior.
        engine.solve_point(0.3, 0.0, &PointPolicy::transmission_only()).into_result().unwrap();
        reset_peak_matrix_bytes();
        engine.solve_point(0.3, 0.0, &PointPolicy::transmission_only()).into_result().unwrap();
        *slot = peak_matrix_bytes();
    }
    let ratio = peaks[1] as f64 / peaks[0] as f64;
    let linear = (lengths[1] / lengths[0]) as f64;
    assert!(
        ratio < 2.0 * linear,
        "peak bytes grew {ratio:.1}× over a {linear}× device — dense (n²) staging is back \
         (peaks: {peaks:?})"
    );
    assert!(
        ratio > 0.5 * linear,
        "peak bytes barely grew ({ratio:.2}× over {linear}×) — the counter is not seeing \
         the solve (peaks: {peaks:?})"
    );
}
