//! Fault-injection battery for the per-point escalation ladder, the sweep
//! health accounting, graceful degradation, and checkpoint/resume.
//!
//! Builds only with the `fault-inject` feature:
//! `cargo test -p qtx-core --features fault-inject --test fault_tolerance`.
//!
//! The injection campaign configuration is process-global, so every test
//! that arms it runs under one mutex; this file is its own test process,
//! which keeps the campaigns away from the (parallel) unit tests.

#![cfg(feature = "fault-inject")]

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_core::transport::{ETA_BUMP, METHOD_FAILED};
use qtx_core::{
    landauer_current_counted_ua, parallel_sweep, parallel_sweep_resumable, Device, PointPolicy,
    PointRecord, SweepOptions, SweepPlan, SweepResult, TransportEngine, CONDUCTANCE_QUANTUM_US,
};
use qtx_core::{Scheduler, SchedulerConfig};
use qtx_linalg::fault::{self, FaultConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A fresh pinned-width pool, isolated from the process-global one so
/// campaign quarantines cannot leak across tests.
fn pool(workers: usize) -> Arc<Scheduler> {
    Arc::new(Scheduler::new(SchedulerConfig { workers, ..SchedulerConfig::default() }))
}

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the given campaign armed, disarming afterwards even on
/// panic-free early returns. Serializes all campaign users.
fn with_faults<T>(cfg: Option<FaultConfig>, f: impl FnOnce() -> T) -> T {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::set_config(cfg);
    let out = f();
    fault::set_config(None);
    out
}

fn small_device() -> Device {
    let spec = DeviceBuilder::nanowire(0.8).cells(6).basis(BasisKind::TightBinding).build();
    let mut d = Device::build(spec).unwrap();
    let dk = d.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("conduction edge");
    d.config.mu_l = edge + 0.15;
    d.config.mu_r = edge + 0.10;
    d
}

fn small_plan(dev: &Device) -> SweepPlan {
    SweepPlan::from_device(dev, 0.05, 0.15)
}

/// Engine over a clone of the device (the unified point-solve entry; the
/// fault chokepoints sit below it, so campaigns behave identically).
fn engine(dev: &Device) -> TransportEngine {
    TransportEngine::new(dev.clone())
}

fn by_point(result: &SweepResult) -> HashMap<(u32, u32), PointRecord> {
    result.records.iter().map(|r| ((r.k_idx, r.e_idx), *r)).collect()
}

#[test]
fn eta_bump_rung_recovers_points() {
    // Fail half of all self-energy builds: the η-bump retry draws a fresh
    // key (η enters the injection key), so rung 1 rescues points whose
    // exact-energy OBC build was hit.
    let dev = small_device();
    let plan = small_plan(&dev);
    let mut cfg = FaultConfig::new(0.5, 11);
    cfg.sites.factor_poly = false;
    cfg.sites.splitsolve = false;
    let outcomes = with_faults(Some(cfg), || {
        plan.energies[0]
            .iter()
            .map(|&e| (e, engine(&dev).solve_point(e, 0.0, &PointPolicy::robust())))
            .collect::<Vec<_>>()
    });
    let mut rung1 = 0;
    for (e, rs) in &outcomes {
        let Some(rs_result) = rs.result.as_ref() else {
            // Every rung (the decimation one included) draws its own
            // self_energy key, so at 50% a point can legitimately exhaust
            // the whole ladder — but then it must say so, typed.
            assert!(rs.outcome.failed());
            assert!(rs.error.as_ref().is_some_and(|err| err.is_injected()));
            continue;
        };
        let clean = engine(&dev)
            .solve_point(*e, 0.0, &PointPolicy::direct())
            .into_result()
            .unwrap()
            .transmission;
        match rs.outcome.method_used {
            0 => assert_eq!(
                rs_result.transmission.to_bits(),
                clean.to_bits(),
                "untouched rung 0 must be bit-identical to the plain solve"
            ),
            1 => {
                rung1 += 1;
                assert_eq!(rs.outcome.eta, ETA_BUMP);
                assert_eq!(rs.outcome.attempts, 2);
                assert!(
                    (rs_result.transmission - clean).abs() < 1e-3,
                    "η = {ETA_BUMP} must barely move T: {} vs {clean}",
                    rs_result.transmission
                );
            }
            _ => {} // deeper rungs are legitimate at 50% too
        }
    }
    assert!(rung1 > 0, "no point recovered on the configured+eta rung at 50%/seed 11");
}

#[test]
fn ladder_escalates_to_shift_invert_when_contours_fail() {
    // Kill every contour-quadrature factorization: FEAST (configured,
    // broadened, widened) and Beyn all die, the dense shift-invert rung
    // does not use factor_poly and lands the point.
    let dev = small_device();
    let plan = small_plan(&dev);
    let e = plan.energies[0][plan.energies[0].len() / 2];
    let clean = engine(&dev)
        .solve_point(e, 0.0, &PointPolicy::direct())
        .into_result()
        .unwrap()
        .transmission;
    let mut cfg = FaultConfig::new(1.0, 3);
    cfg.sites.self_energy = false;
    cfg.sites.splitsolve = false;
    let rs = with_faults(Some(cfg), || engine(&dev).solve_point(e, 0.0, &PointPolicy::robust()));
    let result = rs.result.expect("shift-invert rung must recover the point");
    assert_eq!(rs.outcome.method_used, 4, "expected the shift-invert rung");
    assert_eq!(rs.outcome.method_name(), "shift-invert");
    assert!(rs.outcome.escalated());
    assert!(rs.outcome.escalations >= 3, "FEAST×3 and Beyn rungs must have been burned");
    assert_eq!(rs.outcome.eta, ETA_BUMP);
    assert!(rs.error.is_none());
    assert!((result.transmission - clean).abs() < 1e-3, "{} vs {clean}", result.transmission);
}

#[test]
fn total_blackout_degrades_gracefully() {
    // Every chokepoint fails every call: no rung can succeed, the sweep
    // must flag the points instead of inventing T = 0 samples.
    let dev = small_device();
    let mut plan = small_plan(&dev);
    plan.energies[0].truncate(3);
    let result =
        with_faults(Some(FaultConfig::new(1.0, 5)), || parallel_sweep(&dev, &plan, 2).unwrap());
    assert_eq!(result.health.total_points, 3);
    assert_eq!(result.health.failed, 3, "nothing can be interpolated when every point died");
    assert_eq!(result.health.interpolated, 0);
    assert!(result.health.faults_injected > 0);
    assert!(result.spectrum.is_empty(), "failed points must not enter the spectrum");
    assert!(result.samples.iter().all(|s| s.3.is_nan()), "failed samples stay NaN, never 0");
    assert!(result.records.iter().all(|r| r.method == METHOD_FAILED));
    // The degraded spectrum integrates to zero current, loudly countable.
    let (i, skipped) = landauer_current_counted_ua(
        &result.samples.iter().map(|s| (s.2, s.3)).collect::<Vec<_>>(),
        dev.config.mu_l,
        dev.config.mu_r,
        300.0,
    );
    assert_eq!(skipped, 3);
    assert_eq!(i, 0.0);
}

#[test]
fn faulty_sweep_matches_clean_within_bounds() {
    // The acceptance scenario: a 20% seeded campaign across all three
    // chokepoints. The sweep must finish, count every injected fault, and
    // stay within the recorded interpolation bounds of the fault-free run.
    let dev = small_device();
    let plan = small_plan(&dev);
    let clean = parallel_sweep(&dev, &plan, 3).unwrap();
    assert_eq!(clean.health.escalated + clean.health.failed + clean.health.interpolated, 0);
    let before = fault::injected_total();
    let faulty =
        with_faults(Some(FaultConfig::new(0.2, 7)), || parallel_sweep(&dev, &plan, 3).unwrap());
    let observed = fault::injected_total() - before;
    assert!(observed > 0, "a 20% campaign over a full sweep must fire");
    assert_eq!(faulty.health.faults_injected, observed, "health must count every injected fault");
    assert!(
        faulty.health.escalated + faulty.health.interpolated > 0,
        "20% injection must visibly exercise the ladder"
    );
    assert_eq!(faulty.health.total_points, plan.total_points());
    assert_eq!(
        faulty.health.failed, 0,
        "with healthy neighbors available nothing should stay failed"
    );

    // Point-by-point: untouched points are bit-identical, recovered points
    // close, interpolated points within their recorded bound.
    let clean_map = by_point(&clean);
    let mut bound_integral = 0.0;
    let de_max = plan.energies[0].windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max);
    for r in &faulty.records {
        let c = clean_map[&(r.k_idx, r.e_idx)];
        match (r.status, r.method) {
            (qtx_core::sweep::STATUS_OK, 0) => {
                assert_eq!(r.t.to_bits(), c.t.to_bits(), "rung 0 is bit-identical");
            }
            (qtx_core::sweep::STATUS_OK, _) => {
                assert!((r.t - c.t).abs() < 1e-3, "escalated point strayed: {} vs {}", r.t, c.t);
            }
            (qtx_core::sweep::STATUS_INTERPOLATED, _) => {
                // The recorded bound covers the interpolation error; the
                // neighbor sources themselves were solved at η = 1e-6 and
                // carry the same O(η) deviation the escalated points do.
                assert!(
                    (r.t - c.t).abs() <= r.interp_bound + 1e-3,
                    "interpolated point outside its own bound: |{} - {}| > {}",
                    r.t,
                    c.t,
                    r.interp_bound
                );
                bound_integral += r.w * r.interp_bound * de_max;
            }
            _ => unreachable!("no failed points in this campaign"),
        }
    }

    // Current-level acceptance: the faulty current matches the fault-free
    // one within the accumulated interpolation bound (plus the tiny η and
    // trapezoid slack of the escalated points).
    let current = |r: &SweepResult| {
        landauer_current_counted_ua(&r.spectrum, dev.config.mu_l, dev.config.mu_r, 300.0).0
    };
    let (i_clean, i_faulty) = (current(&clean), current(&faulty));
    let tolerance = CONDUCTANCE_QUANTUM_US * bound_integral + 1e-3;
    assert!(
        (i_faulty - i_clean).abs() <= tolerance,
        "current off: {i_faulty} vs {i_clean} µA (tolerance {tolerance})"
    );
}

#[test]
fn checkpoint_resume_is_bit_identical_under_faults() {
    // Kill a sweep a third of the way through (deterministically, via the
    // canonical-order point limit), then resume from its checkpoint. The
    // union must be bit-identical (modulo wall time) to an uninterrupted
    // run under the same campaign — injection decisions are keyed on the
    // math, not on call order, so the resumed half sees the same faults.
    let dev = small_device();
    let plan = small_plan(&dev);
    let campaign = FaultConfig::new(0.2, 7);
    let uninterrupted = with_faults(Some(campaign), || parallel_sweep(&dev, &plan, 3).unwrap());

    let dir = std::env::temp_dir().join("qtx-fault-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.qtxswp");
    std::fs::remove_file(&path).ok();

    let kill_after = plan.total_points() / 3;
    assert!(kill_after > 0);
    let partial = with_faults(Some(campaign), || {
        let opts = SweepOptions::builder()
            .checkpoint(path.clone())
            .max_new_points(kill_after)
            .scheduler(pool(2))
            .build()
            .unwrap();
        parallel_sweep_resumable(&dev, &plan, 3, &opts).unwrap()
    });
    assert_eq!(partial.records.len(), kill_after, "the kill limit bounds the partial run");
    assert!(path.exists(), "killed run must leave its checkpoint behind");

    let resumed = with_faults(Some(campaign), || {
        let opts =
            SweepOptions::builder().checkpoint(path.clone()).scheduler(pool(2)).build().unwrap();
        parallel_sweep_resumable(&dev, &plan, 3, &opts).unwrap()
    });
    assert_eq!(resumed.records.len(), uninterrupted.records.len());
    for (a, b) in resumed.records.iter().zip(&uninterrupted.records) {
        assert!(
            a.identity_eq(b),
            "resumed point (k={}, e={}) diverged from the uninterrupted run:\n{a:?}\nvs\n{b:?}",
            a.k_idx,
            a.e_idx
        );
    }
    assert_eq!(resumed.health, {
        let mut h = uninterrupted.health.clone();
        // The run-scoped fields (faults drawn, scheduler accounting) only
        // cover the points each process actually computed; everything
        // derived from the records themselves must agree.
        h.faults_injected = resumed.health.faults_injected;
        h.panics = resumed.health.panics;
        h.sched_retries = resumed.health.sched_retries;
        h.quarantined = resumed.health.quarantined;
        h
    });

    // Resuming a *complete* checkpoint is a no-op: no new faults drawn,
    // same records again.
    let before = fault::injected_total();
    let replay = with_faults(Some(campaign), || {
        let opts =
            SweepOptions::builder().checkpoint(path.clone()).scheduler(pool(2)).build().unwrap();
        parallel_sweep_resumable(&dev, &plan, 3, &opts).unwrap()
    });
    assert_eq!(fault::injected_total(), before, "a cached resume must not recompute");
    assert!(replay.records.iter().zip(&resumed.records).all(|(a, b)| a.identity_eq(b)));
    std::fs::remove_file(&path).ok();
}

/// A campaign that only arms the opt-in scheduler-panic site.
fn panic_campaign(rate: f64, seed: u64) -> FaultConfig {
    let mut cfg = FaultConfig::new(rate, seed);
    cfg.sites.factor_poly = false;
    cfg.sites.self_energy = false;
    cfg.sites.splitsolve = false;
    cfg.sites.sched_panic = true;
    cfg
}

#[test]
fn injected_panics_are_isolated_counted_and_quarantined() {
    // Every scheduler attempt at every point panics (rate 1.0): the pool
    // must absorb each one, burn the retry budget, quarantine the points,
    // and hand the sweep failed records — never unwind into the caller.
    let dev = small_device();
    let mut plan = small_plan(&dev);
    plan.energies[0].truncate(3);
    let sched = pool(2);
    let opts = SweepOptions::builder().scheduler(sched.clone()).build().unwrap();
    let result = with_faults(Some(panic_campaign(1.0, 13)), || {
        parallel_sweep_resumable(&dev, &plan, 2, &opts).unwrap()
    });
    assert_eq!(result.health.total_points, 3);
    assert_eq!(result.health.failed, 3, "all-panic points cannot be interpolated");
    assert_eq!(result.health.quarantined, 3);
    // Default budget: 1 first try + 2 retries, each one a caught panic.
    assert_eq!(result.health.panics, 9);
    assert!(result.samples.iter().all(|s| s.3.is_nan()));
    assert_eq!(sched.poisoned_count(), 3, "exhausted keys enter the poison set");

    // The pool survives the barrage: the same sweep, disarmed, on the
    // same pool is clean — a poisoned key only loses its retries, the
    // first attempt still runs.
    let clean = with_faults(None, || parallel_sweep_resumable(&dev, &plan, 2, &opts).unwrap());
    assert_eq!(clean.health.failed, 0);
    assert_eq!(clean.health.panics, 0);
    assert_eq!(clean.health.quarantined, 0);
}

#[test]
fn partial_panic_campaign_recovers_via_retry() {
    // A 40% panic rate: the attempt number enters the injection key, so a
    // scheduler retry re-draws and most points land. Recovered points are
    // bit-identical to the fault-free sweep — a panicked attempt leaves
    // no trace in the math.
    let dev = small_device();
    let plan = small_plan(&dev);
    let clean = with_faults(None, || parallel_sweep(&dev, &plan, 3).unwrap());
    let opts = SweepOptions::builder().scheduler(pool(2)).build().unwrap();
    let faulty = with_faults(Some(panic_campaign(0.4, 17)), || {
        parallel_sweep_resumable(&dev, &plan, 3, &opts).unwrap()
    });
    assert!(faulty.health.panics > 0, "a 40% campaign over a full sweep must fire");
    assert_eq!(faulty.health.total_points, plan.total_points());
    let clean_map = by_point(&clean);
    for r in &faulty.records {
        if r.status == qtx_core::sweep::STATUS_OK {
            let c = clean_map[&(r.k_idx, r.e_idx)];
            assert_eq!(
                r.t.to_bits(),
                c.t.to_bits(),
                "point (k={}, e={}) solved after a panic must be bit-identical",
                r.k_idx,
                r.e_idx
            );
        }
    }
}

#[test]
fn sweep_is_bit_identical_across_worker_counts_under_faults() {
    // The acceptance invariant, under both the ladder campaign and the
    // panic site at once: fresh pools of width 1, 2, and 4 produce
    // identical record sets and identical health.
    let dev = small_device();
    let plan = small_plan(&dev);
    let mut campaign = FaultConfig::new(0.2, 7);
    campaign.sites.sched_panic = true;
    let runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&w| {
            with_faults(Some(campaign), || {
                let opts = SweepOptions::builder().scheduler(pool(w)).build().unwrap();
                parallel_sweep_resumable(&dev, &plan, 3, &opts).unwrap()
            })
        })
        .collect();
    for r in &runs[1..] {
        assert_eq!(r.records.len(), runs[0].records.len());
        for (a, b) in r.records.iter().zip(&runs[0].records) {
            assert!(
                a.identity_eq(b),
                "worker-count changed a record (k={}, e={}):\n{a:?}\nvs\n{b:?}",
                a.k_idx,
                a.e_idx
            );
        }
        assert_eq!(r.health, runs[0].health, "health must not depend on pool width");
    }
}

#[test]
fn env_hook_format_matches_acceptance_string() {
    // The documented QTX_FAULT_INJECT syntax parses to the acceptance
    // campaign (the env read itself is a process-global Once exercised by
    // the CI fault-inject job).
    let cfg = FaultConfig::parse("rate=0.2,seed=7,sites=factor_poly|self_energy|splitsolve")
        .expect("documented format must parse");
    assert_eq!(cfg.rate, 0.2);
    assert_eq!(cfg.seed, 7);
    assert!(cfg.sites.factor_poly && cfg.sites.self_energy && cfg.sites.splitsolve);
    assert_eq!(FaultConfig::parse("0.2").map(|c| c.rate), Some(0.2));
    assert!(FaultConfig::parse("sites=bogus").is_none());
}
