//! Correctness battery for the content-addressed self-energy cache behind
//! [`TransportEngine`] (`docs/cache.md`).
//!
//! The contracts under test:
//!
//! * a warm engine replays a whole sweep with **zero** OBC solves
//!   (`qtx_obc::obc_solves_total` delta) and bit-identical records;
//! * cache-on and cache-off runs are bit-identical at any worker count —
//!   the cache is invisible in the results, only in the wall clock;
//! * interpolation serves only validated intervals, reports its error
//!   bound, and refuses grids that straddle a band edge;
//! * a byte budget small enough to thrash still never corrupts a value;
//! * fault-injected solves are never cached (`fault-inject` builds).
//!
//! `obc_solves_total()` is process-global, so every test serializes on
//! one file-local lock.

use qtx_atomistic::{BasisKind, DeviceBuilder};
use qtx_core::transport::METHOD_CACHE_INTERP;
use qtx_core::{
    parallel_sweep_resumable, CacheConfig, CachePolicy, Device, PointPolicy, Scheduler,
    SchedulerConfig, SigmaCache, SweepOptions, SweepOptionsError, SweepPlan, SweepResult,
    TransportEngine,
};
use qtx_obc::obc_solves_total;
use std::sync::{Arc, Mutex};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn pool(workers: usize) -> Arc<Scheduler> {
    Arc::new(Scheduler::new(SchedulerConfig { workers, ..SchedulerConfig::default() }))
}

fn small_device() -> Device {
    let spec = DeviceBuilder::nanowire(0.8).cells(6).basis(BasisKind::TightBinding).build();
    let mut d = Device::build(spec).unwrap();
    let dk = d.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("conduction edge");
    d.config.mu_l = edge + 0.15;
    d.config.mu_r = edge + 0.10;
    d
}

fn small_plan(dev: &Device) -> SweepPlan {
    SweepPlan::from_device(dev, 0.05, 0.15)
}

fn assert_identity(a: &SweepResult, b: &SweepResult, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: record count");
    for (x, y) in a.records.iter().zip(&b.records) {
        assert!(
            x.identity_eq(y),
            "{label}: record (k={}, e={}) diverged:\n{x:?}\nvs\n{y:?}",
            x.k_idx,
            x.e_idx
        );
    }
}

/// The PR's acceptance criterion: a second identical sweep through a warm
/// engine performs **zero** self-energy solves and reproduces every
/// record bit for bit.
#[test]
fn warm_sweep_performs_zero_obc_solves_and_is_bit_identical() {
    let _g = lock();
    let dev = small_device();
    let plan = small_plan(&dev);
    let engine = TransportEngine::builder(dev)
        .cache(CachePolicy::Shared(Arc::new(SigmaCache::new(CacheConfig::default()))))
        .scheduler(pool(2))
        .build();
    let cold = engine.sweep(&plan, 3).expect("cold sweep");
    assert!(cold.health.cache_misses > 0, "cold sweep must populate the cache");

    let before = obc_solves_total();
    let warm = engine.sweep(&plan, 3).expect("warm sweep");
    let solves = obc_solves_total() - before;
    assert_eq!(solves, 0, "warm sweep must perform zero self-energy solves, did {solves}");
    assert_identity(&cold, &warm, "warm replay");
    assert_eq!(warm.spectrum, cold.spectrum, "spectrum");
    assert!(warm.health.cache_hits > 0, "warm sweep must report its hits");
    assert_eq!(warm.health.cache_misses, 0, "warm sweep must not miss");
}

/// Cache-on and cache-off cold runs are bit-identical for any worker
/// count: a hit replays the stored frame, so the cache can never move a
/// result — not even by one ULP.
#[test]
fn cached_runs_are_bit_identical_to_uncached_at_any_worker_count() {
    let _g = lock();
    let dev = small_device();
    let plan = small_plan(&dev);
    let uncached = {
        let opts =
            SweepOptions::builder().scheduler(pool(1)).cache(CachePolicy::Off).build().unwrap();
        parallel_sweep_resumable(&dev, &plan, 3, &opts).expect("uncached")
    };
    for workers in [1usize, 2, 4] {
        let cache = Arc::new(SigmaCache::new(CacheConfig::default()));
        let opts = SweepOptions::builder()
            .scheduler(pool(workers))
            .cache(CachePolicy::Shared(cache))
            .build()
            .unwrap();
        let cached = parallel_sweep_resumable(&dev, &plan, 3, &opts).expect("cached");
        assert_identity(&uncached, &cached, &format!("cached w={workers}"));
    }
}

/// Exact point hits through the engine replay the stored solve
/// bit-identically, and the deprecated free function agrees with the
/// engine's direct policy (the forwarding contract).
#[test]
fn point_hits_replay_bit_identically_and_forwarders_agree() {
    let _g = lock();
    let dev = small_device();
    let dk = dev.at_kz(0.0);
    let e = dk.lead_l.dispersive_energy(1.0, 0.2, 0.3).expect("band");
    let engine = TransportEngine::builder(dev.clone())
        .cache(CachePolicy::Shared(Arc::new(SigmaCache::new(CacheConfig::default()))))
        .build();
    let miss = engine.solve_point(e, 0.0, &PointPolicy::direct()).into_result().unwrap();
    let hit = engine.solve_point(e, 0.0, &PointPolicy::direct()).into_result().unwrap();
    assert_eq!(miss.transmission.to_bits(), hit.transmission.to_bits());
    assert_eq!(hit.sigma_l.max_diff(&miss.sigma_l), 0.0);
    assert_eq!(hit.sigma_r.max_diff(&miss.sigma_r), 0.0);
    let stats = engine.cache_stats().expect("cache on");
    assert!(stats.hits >= 2, "second solve must hit both sides: {stats:?}");

    #[allow(deprecated)]
    let legacy = qtx_core::solve_energy_point(&dk, e, &dev.config).unwrap();
    assert_eq!(legacy.transmission.to_bits(), miss.transmission.to_bits(), "forwarder drifted");
}

/// The interpolation layer under the engine: anchors + a validation solve
/// make an interval servable; the served point reports
/// [`METHOD_CACHE_INTERP`], a bound within the configured tolerance, and
/// a transmission close to the real solve.
#[test]
fn interpolating_policy_serves_validated_intervals_within_bound() {
    let _g = lock();
    let dev = small_device();
    let dk = dev.at_kz(0.0);
    let e0 = dk.lead_l.dispersive_energy(1.0, 0.2, 0.3).expect("band");
    // Σ interpolation error grows as the spacing squared (~8e-5 at
    // 0.02 eV on this lead); 5 meV anchors land it near 5e-6.
    let e1 = e0 + 0.005;
    let engine = TransportEngine::builder(dev.clone())
        .cache_config(CacheConfig {
            interp_max_de: 0.01,
            interp_tol: 1e-5,
            ..CacheConfig::default()
        })
        .build();
    // Anchors, then the mid-interval validation solve.
    for e in [e0, e1, 0.5 * (e0 + e1)] {
        engine.solve_point(e, 0.0, &PointPolicy::direct()).into_result().unwrap();
    }
    assert_eq!(engine.cache_stats().unwrap().validations, 2, "one validation per side");

    let eq = e0 + 0.25 * (e1 - e0);
    let interp = engine.solve_point(eq, 0.0, &PointPolicy::interpolating());
    assert_eq!(
        interp.outcome.method_used, METHOD_CACHE_INTERP,
        "validated bracket must serve the interpolant: {:?}",
        interp.outcome
    );
    assert!(interp.outcome.interp_bound > 0.0);
    assert!(interp.outcome.interp_bound <= 1e-5, "bound {}", interp.outcome.interp_bound);
    let t_interp = interp.result.as_ref().unwrap().transmission;

    // Ground truth from an uncached engine: the interpolated transmission
    // must sit on top of the real one (Σ is bounded by interp_tol and the
    // transmission is smooth inside the bracket).
    let reference = TransportEngine::builder(dev).cache(CachePolicy::Off).build();
    let t_ref =
        reference.solve_point(eq, 0.0, &PointPolicy::direct()).into_result().unwrap().transmission;
    assert!(
        (t_interp - t_ref).abs() < 1e-3,
        "interpolated T = {t_interp} strayed from the real T = {t_ref}"
    );

    // A non-interpolating policy at the same energy must still solve.
    let real = engine.solve_point(eq, 0.0, &PointPolicy::robust());
    assert_ne!(real.outcome.method_used, METHOD_CACHE_INTERP);
}

/// A bracket straddling the lead band edge fails its validation and is
/// never served: the policy silently falls back to a real solve.
#[test]
fn band_edge_straddling_bracket_falls_back_to_a_real_solve() {
    let _g = lock();
    let dev = small_device();
    let dk = dev.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("edge");
    let (e0, e1) = (edge - 0.01, edge + 0.01);
    let engine = TransportEngine::builder(dev)
        .cache_config(CacheConfig {
            interp_max_de: 0.05,
            interp_tol: 1e-5,
            ..CacheConfig::default()
        })
        .build();
    for e in [e0, e1, 0.5 * (e0 + e1)] {
        // Below the edge there may be nothing to solve; errors are fine —
        // error outcomes must simply never become cache entries.
        let _ = engine.solve_point(e, 0.0, &PointPolicy::robust());
    }
    let probe = engine.solve_point(e0 + 0.25 * (e1 - e0), 0.0, &PointPolicy::interpolating());
    assert_ne!(
        probe.outcome.method_used, METHOD_CACHE_INTERP,
        "edge-straddling interval must not serve interpolants"
    );
    assert_eq!(probe.outcome.interp_bound, 0.0);
}

/// A budget so small the sweep constantly evicts: slower, never wrong.
#[test]
fn thrashing_byte_budget_never_corrupts_a_sweep() {
    let _g = lock();
    let dev = small_device();
    let plan = small_plan(&dev);
    let uncached = {
        let opts =
            SweepOptions::builder().scheduler(pool(1)).cache(CachePolicy::Off).build().unwrap();
        parallel_sweep_resumable(&dev, &plan, 3, &opts).expect("uncached")
    };
    let cache = Arc::new(SigmaCache::new(CacheConfig {
        max_bytes: 4 << 10, // a handful of frames at most
        ..CacheConfig::default()
    }));
    let opts = SweepOptions::builder()
        .scheduler(pool(2))
        .cache(CachePolicy::Shared(cache.clone()))
        .build()
        .unwrap();
    let thrashed = parallel_sweep_resumable(&dev, &plan, 3, &opts).expect("thrashed");
    assert_identity(&uncached, &thrashed, "thrashing budget");
    let stats = cache.stats();
    assert!(stats.evictions > 0, "budget must actually thrash: {stats:?}");
    assert!(stats.bytes <= 4 << 10, "budget overrun: {stats:?}");
}

/// Builder validation: the incompatible-knob combinations are typed
/// errors, not silent misconfigurations.
#[test]
fn sweep_options_builder_rejects_incompatible_knobs() {
    match SweepOptions::builder().max_new_points(4).build() {
        Err(SweepOptionsError::MaxNewPointsWithoutCheckpoint { max_new_points: 4 }) => {}
        other => panic!("expected MaxNewPointsWithoutCheckpoint, got {other:?}"),
    }
    match SweepOptions::builder().checkpoint("x.ckpt").max_new_points(0).build() {
        Err(SweepOptionsError::ZeroMaxNewPoints) => {}
        other => panic!("expected ZeroMaxNewPoints, got {other:?}"),
    }
    // The error type round-trips through Display for operator logs.
    let err = SweepOptions::builder().max_new_points(7).build().unwrap_err();
    assert!(err.to_string().contains("checkpoint"), "{err}");
    // And the valid combinations build.
    assert!(SweepOptions::builder().checkpoint("x.ckpt").max_new_points(1).build().is_ok());
    assert!(SweepOptions::builder().build().is_ok());
}

/// While a fault campaign is armed the cache stands down entirely:
/// nothing is consulted, nothing is stored — a later hit must never
/// replay a solve that went through the injection chokepoints.
#[cfg(feature = "fault-inject")]
#[test]
fn fault_injected_solves_are_never_cached() {
    use qtx_linalg::fault::{self, FaultConfig};
    let _g = lock();
    let dev = small_device();
    let dk = dev.at_kz(0.0);
    let e = dk.lead_l.dispersive_energy(1.0, 0.2, 0.3).expect("band");
    let cache = Arc::new(SigmaCache::new(CacheConfig::default()));
    let engine = TransportEngine::builder(dev).cache(CachePolicy::Shared(cache.clone())).build();
    // Campaign armed with every chokepoint disabled: no fault can fire,
    // but the bypass must still keep the cache untouched.
    let mut campaign = FaultConfig::new(1.0, 1);
    campaign.sites.factor_poly = false;
    campaign.sites.self_energy = false;
    campaign.sites.splitsolve = false;
    campaign.sites.sched_panic = false;
    fault::set_config(Some(campaign));
    let under_campaign = engine.solve_point(e, 0.0, &PointPolicy::robust());
    fault::set_config(None);
    assert!(under_campaign.result.is_some(), "site-free campaign must still solve");
    let stats = cache.stats();
    assert_eq!(
        (stats.entries, stats.hits, stats.misses),
        (0, 0, 0),
        "campaign solves must bypass the cache entirely: {stats:?}"
    );
    // Disarmed: the same solve now populates the cache.
    engine.solve_point(e, 0.0, &PointPolicy::robust());
    assert!(cache.stats().entries > 0, "disarmed solves must cache again");
}
