//! Supervised work-stealing scheduler for energy-point workloads.
//!
//! The paper's scaling story layers momentum/energy parallelism above the
//! per-point solvers (§4, Fig. 9). PR 6 made each *point* fault-tolerant
//! (escalation ladder, checkpoint/resume); this module makes the
//! *execution layer* match: a persistent, supervised worker pool replaces
//! the rayon shim's spawn-per-call scoped threads for
//! [`crate::sweep::parallel_sweep`], and is reusable for any batch of
//! independent tasks.
//!
//! Robustness machinery, per task:
//!
//! * every attempt runs under `catch_unwind` — a panicking solve becomes a
//!   typed [`TransportError::Panic`] and a fallback value, never a torn
//!   sweep;
//! * failed attempts are re-enqueued with capped exponential backoff, up
//!   to a per-batch retry budget;
//! * tasks that exhaust the budget are **quarantined**: the batch still
//!   completes with the fallback value (the sweep hands those points to
//!   its interpolation path), and the task's stable key is remembered so a
//!   later batch skips straight to a single attempt;
//! * a supervisor thread promotes delayed retries and enforces per-point
//!   soft deadlines (derived from `qtx-machine`'s [`qtx_machine::DeadlineModel`]
//!   by the sweep), marking overdue tasks as **stragglers**;
//! * the completion queue is bounded, so a fast pool cannot buffer
//!   unbounded results ahead of a slow consumer (backpressure), and
//!   shutdown is cooperative.
//!
//! # Determinism contract
//!
//! Results are **bit-identical for any worker count**. Tasks are pure
//! functions of their item (and attempt number); the pool only decides
//! *where* and *when* an attempt runs, never *what* it computes. Reports
//! are re-assembled in item order, the steal order is a seeded
//! permutation, and every retry/quarantine decision depends only on the
//! attempt outcomes — which are deterministic even under the
//! `fault-inject` harness, whose draws are keyed on mathematical identity
//! rather than call order. Only wall-time-derived fields (`straggler`)
//! may differ between schedules.

use crate::error::TransportError;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the data if a previous holder panicked (the
/// pool must keep serving batches after a caught task panic).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pool construction knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Seed of the per-worker steal-order permutations.
    pub seed: u64,
    /// Scheduler-level retries per task after a failed or panicking
    /// attempt, before quarantine. Each sweep attempt is a *full*
    /// escalation-ladder walk, so this multiplies the ladder.
    pub max_retries: u32,
    /// First-retry backoff (ms); doubles per retry.
    pub backoff_base_ms: f64,
    /// Backoff ceiling (ms).
    pub backoff_cap_ms: f64,
    /// Bounded completion-queue capacity (backpressure on the pool).
    pub completion_capacity: usize,
    /// Supervisor wake period (ms): retry promotion + deadline scans.
    pub supervisor_poll_ms: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            seed: 0x51ED_0BAD_C0FF_EE07,
            max_retries: 2,
            backoff_base_ms: 2.0,
            backoff_cap_ms: 50.0,
            completion_capacity: 128,
            supervisor_poll_ms: 2,
        }
    }
}

impl SchedulerConfig {
    /// Default config with the `QTX_SCHED_WORKERS` override applied.
    pub fn from_env() -> Self {
        let mut cfg = SchedulerConfig::default();
        if let Ok(v) = std::env::var("QTX_SCHED_WORKERS") {
            match parse_workers(&v) {
                Some(n) => cfg.workers = n,
                None => eprintln!("QTX_SCHED_WORKERS: invalid value {v:?}; using default"),
            }
        }
        cfg
    }
}

/// Parses a `QTX_SCHED_WORKERS` value: a positive thread count.
pub fn parse_workers(v: &str) -> Option<usize> {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// What one task attempt produced.
pub enum TaskAttempt<R> {
    /// Terminal success — `R` is the task's result.
    Done(R),
    /// The attempt ran to completion but failed (e.g. an exhausted
    /// escalation ladder). Carries the best-effort value to use if the
    /// retry budget runs out.
    Retry(R),
}

/// Per-task outcome of [`Scheduler::execute`].
#[derive(Debug, Clone)]
pub struct TaskReport<R> {
    /// The task's value (from `Done`, the last `Retry`, or the panic
    /// fallback).
    pub value: R,
    /// Scheduler-level attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Attempts that ended in a caught panic.
    pub panics: u32,
    /// The retry budget ran out; `value` is a best-effort fallback.
    pub quarantined: bool,
    /// The supervisor saw an attempt exceed the soft deadline
    /// (wall-time-derived — excluded from determinism comparisons).
    pub straggler: bool,
}

/// Run-scoped accounting over a batch, for [`crate::sweep::SweepHealth`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Caught panics across all attempts.
    pub panics: u64,
    /// Scheduler-level retries (attempts beyond each task's first).
    pub retries: u64,
    /// Tasks that exhausted their retry budget.
    pub quarantined: usize,
    /// Tasks flagged by the deadline supervisor.
    pub stragglers: usize,
}

/// Aggregates the run-scoped counters of a batch's reports.
pub fn stats_of<R>(reports: &[TaskReport<R>]) -> BatchStats {
    let mut s = BatchStats::default();
    for r in reports {
        s.panics += r.panics as u64;
        s.retries += (r.attempts - 1) as u64;
        s.quarantined += usize::from(r.quarantined);
        s.stragglers += usize::from(r.straggler);
    }
    s
}

/// Per-batch execution knobs.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Soft per-task deadline (ms) enforced by the supervisor; `None`
    /// disables straggler detection.
    pub deadline_ms: Option<f64>,
    /// Stable per-item identities for cross-batch quarantine (parallel to
    /// the item vector). Items whose key was quarantined by an earlier
    /// batch get a zero retry budget — one attempt, then fallback.
    pub keys: Option<Vec<u64>>,
    /// Overrides [`SchedulerConfig::max_retries`] for this batch.
    pub max_retries: Option<u32>,
    /// Intra-batch dependencies (parallel to the item vector):
    /// `deps[i] = Some(j)` holds task `i` back until task `j` has
    /// *finished* — whatever its outcome; retries, quarantine and panic
    /// fallbacks all count as finished, so a dependent is never stranded.
    /// Every dependency must point backwards (`j < i`), which makes cycles
    /// unrepresentable and lets the inline (nested-batch) path satisfy
    /// dependencies by plain index order. The sweep's OBC/interior overlap
    /// split rides on this: the Σ-prefetch task precedes its interior
    /// solve in the item vector.
    pub deps: Option<Vec<Option<u32>>>,
}

/// Order-sensitive stable key for [`BatchOptions::keys`] (splitmix64
/// chain over the bit patterns — independent of the `fault-inject`
/// feature).
pub fn stable_key(parts: &[f64]) -> u64 {
    let mut h = 0x923f_ac5d_17ce_55a1u64;
    for p in parts {
        h = splitmix(h ^ p.to_bits());
    }
    h
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

thread_local! {
    /// True on pool worker threads: a nested `execute` (a task that
    /// itself sweeps) runs inline instead of deadlocking on its own pool.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// One enqueued attempt.
#[derive(Debug, Clone, Copy)]
struct Task {
    idx: u32,
    /// Attempts already consumed (0 on the first try).
    attempt: u32,
    /// Caught panics so far.
    panics: u32,
}

enum Step {
    Ran,
    Idle,
    Drained,
}

/// Worker-facing view of a batch (type-erased so the pool threads need
/// not know `T`/`R`).
trait BatchRun: Send + Sync {
    fn run_next(&self, worker: usize) -> Step;
    /// Promotes due retries and scans deadlines; true if work was made
    /// runnable.
    fn supervise(&self) -> bool;
}

/// Bounded MPSC channel: workers push completions, `execute` pops.
struct CompletionQueue<I> {
    q: Mutex<VecDeque<I>>,
    cap: usize,
    space: Condvar,
    ready: Condvar,
}

impl<I> CompletionQueue<I> {
    fn new(cap: usize) -> Self {
        CompletionQueue {
            q: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            space: Condvar::new(),
            ready: Condvar::new(),
        }
    }

    /// Blocks while the queue is full (backpressure) unless the batch was
    /// abandoned by its consumer.
    fn push(&self, item: I, abandoned: &AtomicBool) {
        let mut q = lock(&self.q);
        while q.len() >= self.cap && !abandoned.load(Ordering::SeqCst) {
            let (g, _) = self
                .space
                .wait_timeout(q, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner());
            q = g;
        }
        q.push_back(item);
        self.ready.notify_one();
    }

    fn pop_timeout(&self, d: Duration) -> Option<I> {
        let mut q = lock(&self.q);
        if q.is_empty() {
            let (g, _) = self.ready.wait_timeout(q, d).unwrap_or_else(|e| e.into_inner());
            q = g;
        }
        let item = q.pop_front();
        if item.is_some() {
            self.space.notify_one();
        }
        item
    }
}

/// The typed state of one `execute` call, shared with the pool.
struct Batch<T, R> {
    items: Vec<T>,
    #[allow(clippy::type_complexity)]
    run: Box<dyn Fn(usize, &T, u32) -> TaskAttempt<R> + Send + Sync>,
    #[allow(clippy::type_complexity)]
    on_panic: Box<dyn Fn(usize, &T, u32, &TransportError) -> R + Send + Sync>,
    /// Per-item retry budgets (0 for items with quarantined keys).
    budgets: Vec<u32>,
    backoff_base_ms: f64,
    backoff_cap_ms: f64,
    deadline: Option<Duration>,
    keys: Option<Vec<u64>>,
    /// Reverse dependency map: `dependents[j]` holds the tasks to enqueue
    /// once task `j` finishes (empty for dependency-free batches).
    dependents: Vec<Vec<u32>>,
    /// Per-worker deques: owner pops the front, thieves pop the back.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Seeded victim permutation per worker.
    steal_order: Vec<Vec<usize>>,
    /// Backoff parking lot, promoted by the supervisor.
    delayed: Mutex<Vec<(Instant, Task)>>,
    /// What each worker is running, for deadline scans.
    #[allow(clippy::type_complexity)]
    inflight: Vec<Mutex<Option<(usize, Instant)>>>,
    straggler: Vec<AtomicBool>,
    completed: AtomicUsize,
    out: CompletionQueue<(usize, TaskReport<R>)>,
    /// Keys newly quarantined by this batch.
    new_poison: Mutex<Vec<u64>>,
    /// Set when the consumer gave up (or finished): pushers stop blocking.
    abandoned: AtomicBool,
    /// A fallback closure panicked — the batch cannot complete.
    poisoned_fallback: Mutex<Option<String>>,
}

impl<T: Send + Sync, R: Send> Batch<T, R> {
    fn pop_task(&self, worker: usize) -> Option<Task> {
        if let Some(t) = lock(&self.deques[worker]).pop_front() {
            return Some(t);
        }
        for &victim in &self.steal_order[worker] {
            if let Some(t) = lock(&self.deques[victim]).pop_back() {
                return Some(t);
            }
        }
        None
    }

    fn backoff_ms(&self, retries_done: u32) -> f64 {
        let exp = retries_done.saturating_sub(1).min(20) as i32;
        (self.backoff_base_ms * 2f64.powi(exp)).min(self.backoff_cap_ms)
    }

    fn requeue(&self, task: Task) {
        let backoff = self.backoff_ms(task.attempt);
        if backoff <= 0.0 {
            lock(&self.deques[task.idx as usize % self.deques.len()]).push_back(task);
        } else {
            lock(&self.delayed)
                .push((Instant::now() + Duration::from_secs_f64(backoff / 1000.0), task));
        }
    }

    fn quarantine_key(&self, idx: usize) {
        if let Some(keys) = &self.keys {
            lock(&self.new_poison).push(keys[idx]);
        }
    }

    fn finish(&self, idx: usize, value: R, attempts: u32, panics: u32, quarantined: bool) {
        // Release dependents before reporting: any outcome (success,
        // quarantine, panic fallback) satisfies the dependency.
        if let Some(waiters) = self.dependents.get(idx) {
            for &d in waiters {
                lock(&self.deques[d as usize % self.deques.len()]).push_back(Task {
                    idx: d,
                    attempt: 0,
                    panics: 0,
                });
            }
        }
        let report = TaskReport {
            value,
            attempts,
            panics,
            quarantined,
            straggler: self.straggler[idx].load(Ordering::Relaxed),
        };
        self.out.push((idx, report), &self.abandoned);
        self.completed.fetch_add(1, Ordering::SeqCst);
    }

    fn execute_task(&self, worker: usize, task: Task) {
        let idx = task.idx as usize;
        *lock(&self.inflight[worker]) = Some((idx, Instant::now()));
        // Charge the shim's nesting cap while the task runs, so point
        // solves on pool workers never multiply threads through nested
        // scoped spawns.
        let outcome = {
            let _pool = rayon::enter_pool_worker();
            catch_unwind(AssertUnwindSafe(|| (self.run)(idx, &self.items[idx], task.attempt)))
        };
        *lock(&self.inflight[worker]) = None;
        let attempts = task.attempt + 1;
        let budget = self.budgets[idx];
        match outcome {
            Ok(TaskAttempt::Done(value)) => self.finish(idx, value, attempts, task.panics, false),
            Ok(TaskAttempt::Retry(value)) => {
                if task.attempt < budget {
                    self.requeue(Task { idx: task.idx, attempt: attempts, panics: task.panics });
                } else {
                    self.quarantine_key(idx);
                    self.finish(idx, value, attempts, task.panics, true);
                }
            }
            Err(payload) => {
                let panics = task.panics + 1;
                if task.attempt < budget {
                    self.requeue(Task { idx: task.idx, attempt: attempts, panics });
                } else {
                    let err = TransportError::Panic { what: panic_text(payload.as_ref()) };
                    let fallback = catch_unwind(AssertUnwindSafe(|| {
                        (self.on_panic)(idx, &self.items[idx], attempts, &err)
                    }));
                    match fallback {
                        Ok(value) => {
                            self.quarantine_key(idx);
                            self.finish(idx, value, attempts, panics, true);
                        }
                        Err(p2) => {
                            // The fallback is contractually infallible; if
                            // it panics anyway, poison the batch loudly
                            // instead of hanging the consumer.
                            *lock(&self.poisoned_fallback) = Some(panic_text(p2.as_ref()));
                            self.abandoned.store(true, Ordering::SeqCst);
                        }
                    }
                }
            }
        }
    }
}

impl<T: Send + Sync, R: Send> BatchRun for Batch<T, R> {
    fn run_next(&self, worker: usize) -> Step {
        if self.completed.load(Ordering::SeqCst) >= self.items.len() {
            return Step::Drained;
        }
        match self.pop_task(worker) {
            Some(task) => {
                self.execute_task(worker, task);
                Step::Ran
            }
            None => {
                if self.completed.load(Ordering::SeqCst) >= self.items.len() {
                    Step::Drained
                } else {
                    Step::Idle
                }
            }
        }
    }

    fn supervise(&self) -> bool {
        let now = Instant::now();
        let mut moved = false;
        {
            let mut delayed = lock(&self.delayed);
            let mut i = 0;
            while i < delayed.len() {
                if delayed[i].0 <= now {
                    let (_, task) = delayed.swap_remove(i);
                    lock(&self.deques[task.idx as usize % self.deques.len()]).push_back(task);
                    moved = true;
                } else {
                    i += 1;
                }
            }
        }
        if let Some(deadline) = self.deadline {
            for slot in &self.inflight {
                if let Some((idx, started)) = *lock(slot) {
                    if now.duration_since(started) > deadline {
                        self.straggler[idx].store(true, Ordering::Relaxed);
                    }
                }
            }
        }
        moved
    }
}

/// State shared between the pool threads and `execute`.
struct Shared {
    /// The active batch (one at a time; `execute` calls serialize).
    slot: Mutex<Option<Arc<dyn BatchRun>>>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Parks the calling pool thread until woken or `d` elapses.
    fn park(&self, d: Duration) {
        let guard = lock(&self.slot);
        let _ = self.wake.wait_timeout(guard, d).unwrap_or_else(|e| e.into_inner());
    }
}

/// Clears the batch slot when `execute` leaves (even by unwind), so pool
/// threads never keep a stale batch alive.
struct SlotGuard<'a> {
    shared: &'a Shared,
    abandoned: &'a AtomicBool,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.abandoned.store(true, Ordering::SeqCst);
        *lock(&self.shared.slot) = None;
        self.shared.wake.notify_all();
    }
}

/// The persistent, supervised work-stealing pool.
pub struct Scheduler {
    cfg: SchedulerConfig,
    shared: Arc<Shared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Serializes concurrent `execute` calls onto the one batch slot.
    batch_serial: Mutex<()>,
    /// Stable keys of tasks that exhausted a retry budget (poison points).
    poisoned: Mutex<HashSet<u64>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.cfg.workers)
            .field("seed", &self.cfg.seed)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Spawns the worker pool and its supervisor.
    pub fn new(cfg: SchedulerConfig) -> Scheduler {
        let mut cfg = cfg;
        cfg.workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(None),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut threads = Vec::with_capacity(cfg.workers + 1);
        for w in 0..cfg.workers {
            let sh = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("qtx-sched-{w}"))
                    .spawn(move || worker_loop(&sh, w))
                    .expect("spawn scheduler worker"),
            );
        }
        let sh = shared.clone();
        let poll = Duration::from_millis(cfg.supervisor_poll_ms.max(1));
        threads.push(
            std::thread::Builder::new()
                .name("qtx-sched-supervisor".into())
                .spawn(move || supervisor_loop(&sh, poll))
                .expect("spawn scheduler supervisor"),
        );
        Scheduler {
            cfg,
            shared,
            threads: Mutex::new(threads),
            batch_serial: Mutex::new(()),
            poisoned: Mutex::new(HashSet::new()),
        }
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// Keys quarantined so far (poison points remembered across batches).
    pub fn poisoned_count(&self) -> usize {
        lock(&self.poisoned).len()
    }

    /// Runs one batch: `run(idx, &item, attempt)` per task (with retries
    /// and panic isolation as configured), `on_panic(idx, &item,
    /// attempts, &err)` building the fallback value when a task's budget
    /// ends on a panic. Returns reports in item order. Results are
    /// bit-identical for any worker count (see the module docs).
    pub fn execute<T, R>(
        &self,
        items: Vec<T>,
        opts: &BatchOptions,
        run: impl Fn(usize, &T, u32) -> TaskAttempt<R> + Send + Sync + 'static,
        on_panic: impl Fn(usize, &T, u32, &TransportError) -> R + Send + Sync + 'static,
    ) -> Vec<TaskReport<R>>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if let Some(keys) = &opts.keys {
            assert_eq!(keys.len(), n, "BatchOptions::keys must parallel the item vector");
        }
        let mut dependents: Vec<Vec<u32>> = Vec::new();
        if let Some(deps) = &opts.deps {
            assert_eq!(deps.len(), n, "BatchOptions::deps must parallel the item vector");
            dependents = vec![Vec::new(); n];
            for (i, dep) in deps.iter().enumerate() {
                if let Some(j) = dep {
                    assert!(
                        (*j as usize) < i,
                        "BatchOptions::deps must point backwards (task {i} depends on {j})"
                    );
                    dependents[*j as usize].push(i as u32);
                }
            }
        }
        let budgets = self.budgets(n, opts);
        if IN_POOL.with(|c| c.get()) {
            // A task is executing a nested batch on a pool thread:
            // blocking on our own workers would deadlock, so run inline.
            return self.execute_inline(&items, opts, &budgets, &run, &on_panic);
        }
        let _serial = lock(&self.batch_serial);

        let batch = Arc::new(Batch {
            budgets,
            run: Box::new(run),
            on_panic: Box::new(on_panic),
            backoff_base_ms: self.cfg.backoff_base_ms,
            backoff_cap_ms: self.cfg.backoff_cap_ms,
            deadline: opts.deadline_ms.map(|ms| Duration::from_secs_f64(ms.max(0.0) / 1000.0)),
            keys: opts.keys.clone(),
            dependents,
            deques: seed_deques(n, self.cfg.workers, opts.deps.as_deref()),
            steal_order: steal_orders(self.cfg.workers, self.cfg.seed),
            delayed: Mutex::new(Vec::new()),
            inflight: (0..self.cfg.workers).map(|_| Mutex::new(None)).collect(),
            straggler: (0..n).map(|_| AtomicBool::new(false)).collect(),
            completed: AtomicUsize::new(0),
            out: CompletionQueue::new(self.cfg.completion_capacity),
            new_poison: Mutex::new(Vec::new()),
            abandoned: AtomicBool::new(false),
            poisoned_fallback: Mutex::new(None),
            items,
        });
        *lock(&self.shared.slot) = Some(batch.clone() as Arc<dyn BatchRun>);
        self.shared.wake.notify_all();
        let _slot = SlotGuard { shared: self.shared.as_ref(), abandoned: &batch.abandoned };

        let mut reports: Vec<Option<TaskReport<R>>> = (0..n).map(|_| None).collect();
        let mut got = 0usize;
        while got < n {
            match batch.out.pop_timeout(Duration::from_millis(50)) {
                Some((idx, report)) => {
                    reports[idx] = Some(report);
                    got += 1;
                }
                None => {
                    if let Some(what) = lock(&batch.poisoned_fallback).take() {
                        panic!("scheduler fallback closure panicked: {what}");
                    }
                }
            }
        }
        self.absorb_poison(&batch.new_poison);
        reports.into_iter().map(|r| r.expect("report for every task")).collect()
    }

    /// Per-item retry budgets: the batch default, zeroed for items whose
    /// key is already quarantined.
    fn budgets(&self, n: usize, opts: &BatchOptions) -> Vec<u32> {
        let default = opts.max_retries.unwrap_or(self.cfg.max_retries);
        match &opts.keys {
            Some(keys) => {
                let poisoned = lock(&self.poisoned);
                keys.iter()
                    .take(n)
                    .map(|k| if poisoned.contains(k) { 0 } else { default })
                    .collect()
            }
            None => vec![default; n],
        }
    }

    fn absorb_poison(&self, new_poison: &Mutex<Vec<u64>>) {
        let fresh = std::mem::take(&mut *lock(new_poison));
        if !fresh.is_empty() {
            lock(&self.poisoned).extend(fresh);
        }
    }

    /// Sequential twin of the pool path, used for nested batches. Same
    /// retry/quarantine/panic semantics; no backoff sleeps (a nested
    /// batch must not stall the worker running it) and deadlines are
    /// checked after the fact.
    fn execute_inline<T, R>(
        &self,
        items: &[T],
        opts: &BatchOptions,
        budgets: &[u32],
        run: &(impl Fn(usize, &T, u32) -> TaskAttempt<R> + Send + Sync),
        on_panic: &(impl Fn(usize, &T, u32, &TransportError) -> R + Send + Sync),
    ) -> Vec<TaskReport<R>> {
        let deadline = opts.deadline_ms.map(|ms| Duration::from_secs_f64(ms.max(0.0) / 1000.0));
        let mut new_poison: Vec<u64> = Vec::new();
        let reports = items
            .iter()
            .enumerate()
            .map(|(idx, item)| {
                let mut attempt = 0u32;
                let mut panics = 0u32;
                let mut straggler = false;
                loop {
                    let started = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| run(idx, item, attempt)));
                    if let Some(d) = deadline {
                        straggler |= started.elapsed() > d;
                    }
                    let attempts = attempt + 1;
                    match outcome {
                        Ok(TaskAttempt::Done(value)) => {
                            return TaskReport {
                                value,
                                attempts,
                                panics,
                                quarantined: false,
                                straggler,
                            };
                        }
                        Ok(TaskAttempt::Retry(value)) => {
                            if attempt < budgets[idx] {
                                attempt = attempts;
                            } else {
                                if let Some(keys) = &opts.keys {
                                    new_poison.push(keys[idx]);
                                }
                                return TaskReport {
                                    value,
                                    attempts,
                                    panics,
                                    quarantined: true,
                                    straggler,
                                };
                            }
                        }
                        Err(payload) => {
                            panics += 1;
                            if attempt < budgets[idx] {
                                attempt = attempts;
                            } else {
                                let err =
                                    TransportError::Panic { what: panic_text(payload.as_ref()) };
                                let value = on_panic(idx, item, attempts, &err);
                                if let Some(keys) = &opts.keys {
                                    new_poison.push(keys[idx]);
                                }
                                return TaskReport {
                                    value,
                                    attempts,
                                    panics,
                                    quarantined: true,
                                    straggler,
                                };
                            }
                        }
                    }
                }
            })
            .collect();
        if !new_poison.is_empty() {
            lock(&self.poisoned).extend(new_poison);
        }
        reports
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for handle in lock(&self.threads).drain(..) {
            let _ = handle.join();
        }
    }
}

/// Initial task distribution: round-robin over the worker deques, in
/// canonical item order (owner pops the front, so worker `w` walks items
/// `w, w + W, w + 2W, …` — stealing rebalances from the back). Tasks with
/// a dependency are held back; [`Batch::finish`] enqueues them when their
/// dependency completes.
fn seed_deques(
    n: usize,
    workers: usize,
    deps: Option<&[Option<u32>]>,
) -> Vec<Mutex<VecDeque<Task>>> {
    let mut deques: Vec<VecDeque<Task>> = (0..workers).map(|_| VecDeque::new()).collect();
    for idx in 0..n {
        if deps.is_some_and(|d| d[idx].is_some()) {
            continue;
        }
        deques[idx % workers].push_back(Task { idx: idx as u32, attempt: 0, panics: 0 });
    }
    deques.into_iter().map(Mutex::new).collect()
}

/// Seeded Fisher–Yates victim permutation per worker (deterministic steal
/// order, part of the reproducibility story).
fn steal_orders(workers: usize, seed: u64) -> Vec<Vec<usize>> {
    (0..workers)
        .map(|w| {
            let mut order: Vec<usize> = (0..workers).filter(|&v| v != w).collect();
            let mut state = splitmix(seed ^ (w as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            for i in (1..order.len()).rev() {
                state = splitmix(state);
                order.swap(i, (state % (i as u64 + 1)) as usize);
            }
            order
        })
        .collect()
}

fn worker_loop(shared: &Shared, worker: usize) {
    IN_POOL.with(|c| c.set(true));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let batch = lock(&shared.slot).clone();
        match batch {
            Some(b) => match b.run_next(worker) {
                Step::Ran => {}
                Step::Idle => shared.park(Duration::from_millis(1)),
                Step::Drained => shared.park(Duration::from_millis(1)),
            },
            None => shared.park(Duration::from_millis(5)),
        }
    }
}

fn supervisor_loop(shared: &Shared, poll: Duration) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let batch = lock(&shared.slot).clone();
        if let Some(b) = batch {
            if b.supervise() {
                shared.wake.notify_all();
            }
        }
        std::thread::sleep(poll);
    }
}

static GLOBAL: OnceLock<Arc<Scheduler>> = OnceLock::new();

/// The process-wide pool (workers from `QTX_SCHED_WORKERS` or the core
/// count), created on first use and kept for the process lifetime.
pub fn global() -> &'static Arc<Scheduler> {
    GLOBAL.get_or_init(|| Arc::new(Scheduler::new(SchedulerConfig::from_env())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(workers: usize) -> Scheduler {
        Scheduler::new(SchedulerConfig {
            workers,
            backoff_base_ms: 0.5,
            backoff_cap_ms: 2.0,
            ..SchedulerConfig::default()
        })
    }

    fn values<R: Copy>(reports: &[TaskReport<R>]) -> Vec<R> {
        reports.iter().map(|r| r.value).collect()
    }

    #[test]
    fn results_arrive_in_item_order_for_any_worker_count() {
        for workers in [1usize, 2, 4] {
            let s = sched(workers);
            let items: Vec<u64> = (0..37).collect();
            let reports = s.execute(
                items,
                &BatchOptions::default(),
                |_, &x, _| TaskAttempt::Done(x * x),
                |_, _, _, _| 0,
            );
            assert_eq!(values(&reports), (0..37).map(|x: u64| x * x).collect::<Vec<_>>());
            assert!(reports.iter().all(|r| r.attempts == 1 && !r.quarantined && r.panics == 0));
        }
    }

    #[test]
    fn retries_consume_budget_then_succeed() {
        let s = sched(2);
        // Item value = number of failing attempts before success.
        let items: Vec<u32> = vec![0, 1, 2, 0, 2];
        let reports = s.execute(
            items.clone(),
            &BatchOptions::default(),
            |_, &fails, attempt| {
                if attempt < fails {
                    TaskAttempt::Retry(u32::MAX)
                } else {
                    TaskAttempt::Done(attempt)
                }
            },
            |_, _, _, _| u32::MAX,
        );
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.attempts, items[i] + 1, "item {i}");
            assert_eq!(r.value, items[i], "item {i} succeeded on its last allowed attempt");
            assert!(!r.quarantined);
        }
        let stats = stats_of(&reports);
        assert_eq!(stats.retries, 5);
        assert_eq!(stats.quarantined, 0);
    }

    #[test]
    fn exhausted_budget_quarantines_with_last_value() {
        let s = sched(3);
        let reports = s.execute(
            vec![(); 4],
            &BatchOptions::default(),
            |idx, _, attempt| {
                if idx == 2 {
                    TaskAttempt::Retry(100 + attempt)
                } else {
                    TaskAttempt::Done(idx as u32)
                }
            },
            |_, _, _, _| u32::MAX,
        );
        assert_eq!(reports[2].attempts, 3, "default budget: 1 try + 2 retries");
        assert!(reports[2].quarantined);
        assert_eq!(reports[2].value, 102, "fallback is the *last* attempt's value");
        assert!(reports.iter().enumerate().all(|(i, r)| i == 2 || !r.quarantined));
        assert_eq!(stats_of(&reports).quarantined, 1);
    }

    #[test]
    fn panics_are_isolated_and_pool_survives() {
        let s = sched(2);
        let reports = s.execute(
            (0..8u32).collect(),
            &BatchOptions { max_retries: Some(1), ..Default::default() },
            |_, &x, _| {
                if x == 3 {
                    panic!("task {x} exploded");
                }
                TaskAttempt::Done(x)
            },
            |_, &x, attempts, err| {
                assert!(matches!(err, TransportError::Panic { what } if what.contains("exploded")));
                assert_eq!(attempts, 2);
                x + 1000
            },
        );
        assert_eq!(reports[3].value, 1003);
        assert_eq!(reports[3].panics, 2, "both attempts panicked");
        assert!(reports[3].quarantined);
        assert!(reports.iter().enumerate().all(|(i, r)| i == 3 || r.panics == 0));
        // The pool must keep serving batches after a caught panic.
        let again = s.execute(
            vec![7u32],
            &BatchOptions::default(),
            |_, &x, _| TaskAttempt::Done(x),
            |_, _, _, _| 0,
        );
        assert_eq!(again[0].value, 7);
        assert_eq!(again[0].panics, 0);
    }

    #[test]
    fn poisoned_keys_skip_retries_in_later_batches() {
        let s = sched(2);
        let opts = BatchOptions { keys: Some(vec![11, 22, 33]), ..Default::default() };
        let run = |_: usize, &x: &u32, _: u32| {
            if x == 1 {
                TaskAttempt::Retry(0u32)
            } else {
                TaskAttempt::Done(x)
            }
        };
        let first = s.execute(vec![0u32, 1, 2], &opts, run, |_, _, _, _| 0);
        assert_eq!(first[1].attempts, 3, "fresh key gets the full budget");
        assert_eq!(s.poisoned_count(), 1);
        let second = s.execute(vec![0u32, 1, 2], &opts, run, |_, _, _, _| 0);
        assert_eq!(second[1].attempts, 1, "poisoned key: one attempt, no retries");
        assert!(second[1].quarantined);
        assert_eq!(second[0].attempts, 1);
        assert_eq!(s.poisoned_count(), 1, "no duplicate poison entries");
    }

    #[test]
    fn nested_execute_runs_inline_without_deadlock() {
        let s = Arc::new(sched(2));
        let inner = s.clone();
        let reports = s.execute(
            (0..4u64).collect(),
            &BatchOptions::default(),
            move |_, &x, _| {
                let sub = inner.execute(
                    vec![x, x + 1],
                    &BatchOptions::default(),
                    |_, &y, _| TaskAttempt::Done(y * 10),
                    |_, _, _, _| 0,
                );
                TaskAttempt::Done(sub[0].value + sub[1].value)
            },
            |_, _, _, _| 0,
        );
        assert_eq!(values(&reports), vec![10, 30, 50, 70]);
    }

    #[test]
    fn supervisor_marks_deadline_stragglers() {
        let s = Scheduler::new(SchedulerConfig {
            workers: 2,
            supervisor_poll_ms: 1,
            ..SchedulerConfig::default()
        });
        let opts = BatchOptions { deadline_ms: Some(5.0), ..Default::default() };
        let reports = s.execute(
            vec![1u64, 80],
            &opts,
            |_, &ms, _| {
                std::thread::sleep(Duration::from_millis(ms));
                TaskAttempt::Done(ms)
            },
            |_, _, _, _| 0,
        );
        assert!(reports[1].straggler, "an 80 ms task must trip a 5 ms deadline");
        assert_eq!(values(&reports), vec![1, 80], "stragglers still complete normally");
    }

    #[test]
    fn bounded_completion_queue_applies_backpressure() {
        let s = Scheduler::new(SchedulerConfig {
            workers: 4,
            completion_capacity: 1,
            ..SchedulerConfig::default()
        });
        let reports = s.execute(
            (0..200u64).collect(),
            &BatchOptions::default(),
            |_, &x, _| TaskAttempt::Done(x),
            |_, _, _, _| 0,
        );
        assert_eq!(values(&reports), (0..200).collect::<Vec<u64>>());
    }

    #[test]
    fn dependent_tasks_run_after_their_dependency() {
        for workers in [1usize, 3] {
            let s = sched(workers);
            let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
            let trace = order.clone();
            let opts = BatchOptions {
                deps: Some(vec![None, Some(0), None, Some(2), Some(1)]),
                ..Default::default()
            };
            let reports = s.execute(
                (0..5u64).collect(),
                &opts,
                move |idx, &x, _| {
                    lock(&trace).push(idx);
                    TaskAttempt::Done(x * 10)
                },
                |_, _, _, _| 0,
            );
            assert_eq!(values(&reports), vec![0, 10, 20, 30, 40]);
            let ran = lock(&order).clone();
            let pos = |i: usize| ran.iter().position(|&r| r == i).expect("every task ran");
            assert!(pos(0) < pos(1), "1 depends on 0: {ran:?}");
            assert!(pos(2) < pos(3), "3 depends on 2: {ran:?}");
            assert!(pos(1) < pos(4), "4 depends on 1: {ran:?}");
        }
    }

    #[test]
    fn dependents_are_released_by_failed_dependencies() {
        let s = sched(2);
        let opts = BatchOptions {
            deps: Some(vec![None, Some(0)]),
            max_retries: Some(0),
            ..Default::default()
        };
        let reports = s.execute(
            vec![10u32, 11],
            &opts,
            |idx, &x, _| {
                if idx == 0 {
                    panic!("dependency failed");
                }
                TaskAttempt::Done(x)
            },
            |_, _, _, _| 100,
        );
        assert_eq!(reports[0].value, 100, "failed dependency falls back");
        assert!(reports[0].quarantined);
        assert_eq!(reports[1].value, 11, "dependent still runs after the failure");
        assert!(!reports[1].quarantined);
    }

    #[test]
    fn worker_env_parse() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 1 "), Some(1));
        assert_eq!(parse_workers("0"), None);
        assert_eq!(parse_workers("many"), None);
    }

    #[test]
    fn stable_key_is_order_sensitive() {
        assert_ne!(stable_key(&[1.0, 2.0]), stable_key(&[2.0, 1.0]));
        assert_eq!(stable_key(&[1.0, 2.0]), stable_key(&[1.0, 2.0]));
    }
}
