//! # qtx-core — the OMEN-like quantum transport driver (§2, §4)
//!
//! "OMEN is a massively parallel, one-, two-, and three-dimensional
//! quantum transport simulator that self-consistently solves the
//! Schrödinger and Poisson equations in nanostructures" (§4). This crate
//! is that driver:
//!
//! * [`Device`] — builds leads and block tri-diagonal device matrices from
//!   the CP2K-lite transfer data, including the in-OMEN `H(k)/S(k)`
//!   folding for periodic transverse directions (§2.B) and the per-slab
//!   electrostatic potential;
//! * [`transport`] — one (E, k) pixel: FEAST/shift-invert OBCs, the
//!   SplitSolve/BTD-LU/BCR solve of Eq. 5, wave-function transmission with
//!   the Caroli (RGF/NEGF, Eq. 4) cross-check;
//! * [`EnergyGrid`] — OMEN's automatic energy grid ("not an input
//!   parameter, but automatically generated based on the minimum and
//!   maximum allowed distance between two consecutive energy points",
//!   Fig. 11 caption);
//! * [`observables`] — charge density, current maps and spectral currents
//!   (Fig. 10);
//! * [`scf`] — the self-consistent Schrödinger–Poisson loop and Id–Vgs
//!   sweeps (Fig. 1(d));
//! * [`sweep`] — the three-level momentum/energy/domain parallelization of
//!   Fig. 9 over the simulated MPI fabric, with dynamic node-per-k
//!   allocation (ref. [45]).

pub mod cache;
pub mod checkpoint;
pub mod device;
pub mod energygrid;
pub mod engine;
pub mod error;
pub mod landauer;
pub mod observables;
pub mod refine;
pub mod scf;
pub mod scheduler;
pub mod sweep;
pub mod transport;

pub use cache::{global as global_sigma_cache, CacheConfig, CachePolicy, CacheStats, SigmaCache};
pub use checkpoint::CheckpointError;
pub use device::{Device, DeviceK, TransportConfig};
pub use energygrid::EnergyGrid;
pub use engine::{PointPolicy, TransportEngine, TransportEngineBuilder};
pub use error::{TransportError, TransportResult};
pub use landauer::{
    fermi, landauer_current_counted_ua, landauer_current_ua, landauer_integrate,
    LandauerIntegration, CONDUCTANCE_QUANTUM_US,
};
pub use observables::{ChargeAndCurrent, SpectralData};
pub use refine::{parallel_sweep_refined, refined_fingerprint, RefineConfig, RefinedSweep};
pub use scf::{id_vgs, schrodinger_poisson, IvPoint, ScfConfig, ScfResult};
pub use scheduler::{
    BatchOptions, BatchStats, Scheduler, SchedulerConfig, TaskAttempt, TaskReport,
};
pub use sweep::{
    parallel_sweep, parallel_sweep_resumable, Batching, PointRecord, SweepHealth, SweepOptions,
    SweepOptionsBuilder, SweepOptionsError, SweepPlan, SweepResult,
};
pub use transport::{
    caroli_transmission, EnergyPointResult, PointOutcome, RobustSolve, LADDER_METHOD_NAMES,
    METHOD_BOUNDARY, METHOD_CACHE_INTERP, METHOD_FAILED,
};
#[allow(deprecated)]
pub use transport::{solve_energy_point, solve_energy_point_robust};

/// Convenience one-shot ballistic transmission at a single energy with
/// default configuration (quickstart API).
pub fn transmission(device: &Device, energy: f64) -> TransportResult<EnergyPointResult> {
    let dk = device.at_kz(0.0);
    transport::solve_point_direct(
        &dk,
        energy,
        &device.config,
        None,
        cache::env_handle(&dk).as_ref(),
    )
}
