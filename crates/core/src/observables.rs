//! Charge density, current maps and spectral currents (Fig. 10).
//!
//! From the flux-normalized scattering states `ψ^i(E)` of Eq. 5, the
//! occupied-state sums give the atomically resolved observables the paper
//! plots for the 55 488-atom nanowire:
//!
//! * electron distribution `n_q` (Fig. 10(a)),
//! * current map: bond currents `J_q` between slabs (Fig. 10(b)),
//! * spectral current `j(E, x)` (Fig. 10(c)).
//!
//! Each propagating injection carries `dE/2π` of current per unit
//! transmission (flux normalization), occupied by its source contact.

use crate::device::DeviceK;
use crate::landauer::fermi;
use crate::transport::EnergyPointResult;
use qtx_linalg::{c64, Complex64};

/// Aggregated charge/current data over an energy grid.
#[derive(Debug, Clone)]
pub struct ChargeAndCurrent {
    /// Electrons per slab (arbitrary normalization of the model basis).
    pub density: Vec<f64>,
    /// Bond current between slab `q` and `q+1`, energy-integrated.
    pub bond_current: Vec<f64>,
}

/// Energy- and position-resolved spectral current (Fig. 10(c)).
#[derive(Debug, Clone)]
pub struct SpectralData {
    /// Energies (rows).
    pub energies: Vec<f64>,
    /// `current[e][q]` = spectral current between slabs q, q+1.
    pub current: Vec<Vec<f64>>,
    /// `density[e][q]` = spectral electron density.
    pub density: Vec<Vec<f64>>,
}

/// Bond current carried by one scattering state between slabs `q`,`q+1`:
/// `j_q(ψ) = 2·Im[ψ_qᴴ·T_{q,q+1}·ψ_{q+1}]` with `T = E·S − H` (the sign
/// convention is pinned by the conservation test: for a left-injected
/// mode, `j_q` equals its transmission at every `q`).
pub fn bond_current_of_state(
    dk: &DeviceK,
    e: f64,
    psi: &qtx_linalg::ZMat,
    col: usize,
    q: usize,
) -> f64 {
    let s = dk.h.block_size();
    let t01 = {
        let mut t = dk.s.upper[q].scaled(c64(e, 0.0));
        t.axpy(-Complex64::ONE, &dk.h.upper[q]);
        t
    };
    let psi_q: Vec<Complex64> = (0..s).map(|i| psi[(q * s + i, col)]).collect();
    let psi_q1: Vec<Complex64> = (0..s).map(|i| psi[((q + 1) * s + i, col)]).collect();
    let t_psi = t01.matvec(&psi_q1);
    let mut acc = Complex64::ZERO;
    for i in 0..s {
        acc += psi_q[i].conj() * t_psi[i];
    }
    2.0 * acc.im
}

/// Slab-resolved density of one scattering state (`ψᴴ·S·ψ` per slab).
pub fn density_of_state(dk: &DeviceK, psi: &qtx_linalg::ZMat, col: usize, q: usize) -> f64 {
    let s = dk.h.block_size();
    let psi_q: Vec<Complex64> = (0..s).map(|i| psi[(q * s + i, col)]).collect();
    let s_psi = dk.s.diag[q].matvec(&psi_q);
    let mut acc = 0.0;
    for i in 0..s {
        acc += (psi_q[i].conj() * s_psi[i]).re;
    }
    acc
}

/// Accumulates charge and current over solved energy points with contact
/// occupations `(μ_L, μ_R, T)`.
pub fn accumulate(
    dk: &DeviceK,
    points: &[EnergyPointResult],
    energies_weights: &[f64],
    mu_l: f64,
    mu_r: f64,
    temp: f64,
) -> ChargeAndCurrent {
    let nb = dk.h.num_blocks();
    let mut density = vec![0.0; nb];
    let mut bond = vec![0.0; nb.saturating_sub(1)];
    let norm = 1.0 / (2.0 * std::f64::consts::PI);
    for (p, &we) in points.iter().zip(energies_weights) {
        for col in 0..p.psi.cols() {
            let from_left = col < p.m_left;
            let f = if from_left { fermi(p.e, mu_l, temp) } else { fermi(p.e, mu_r, temp) };
            if f < 1e-14 {
                continue;
            }
            for (q, dq) in density.iter_mut().enumerate() {
                *dq += we * norm * f * density_of_state(dk, &p.psi, col, q);
            }
            for (q, bq) in bond.iter_mut().enumerate() {
                let j = bond_current_of_state(dk, p.e, &p.psi, col, q);
                // Right-injected states flow leftwards: their own f
                // multiplies a negative j, so signs come out naturally.
                *bq += we * norm * f * j;
            }
        }
    }
    ChargeAndCurrent { density, bond_current: bond }
}

/// Builds the spectral map of Fig. 10(c).
pub fn spectral_map(
    dk: &DeviceK,
    points: &[EnergyPointResult],
    mu_l: f64,
    mu_r: f64,
    temp: f64,
) -> SpectralData {
    let nb = dk.h.num_blocks();
    let mut energies = Vec::with_capacity(points.len());
    let mut current = Vec::with_capacity(points.len());
    let mut density = Vec::with_capacity(points.len());
    for p in points {
        energies.push(p.e);
        let mut jrow = vec![0.0; nb.saturating_sub(1)];
        let mut nrow = vec![0.0; nb];
        for col in 0..p.psi.cols() {
            let from_left = col < p.m_left;
            let f = if from_left { fermi(p.e, mu_l, temp) } else { fermi(p.e, mu_r, temp) };
            for (q, j) in jrow.iter_mut().enumerate() {
                *j += f * bond_current_of_state(dk, p.e, &p.psi, col, q);
            }
            for (q, n) in nrow.iter_mut().enumerate() {
                *n += f * density_of_state(dk, &p.psi, col, q);
            }
        }
        current.push(jrow);
        density.push(nrow);
    }
    SpectralData { energies, current, density }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::transport::solve_point_direct;
    use qtx_atomistic::{BasisKind, DeviceBuilder};

    fn device_with_barrier() -> (Device, f64) {
        let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(BasisKind::TightBinding).build();
        let mut d = Device::build(spec).unwrap();
        let mut v = vec![0.0; d.n_slabs];
        v[3] = 0.25;
        v[4] = 0.25;
        d.set_potential(&v);
        // A conduction-band energy crossed at k = 1.0.
        let dk = d.at_kz(0.0);
        let e = dk.lead_l.dispersive_energy(1.0, 0.2, 0.3).expect("conduction band");
        (d, e)
    }

    #[test]
    fn bond_current_is_conserved_and_equals_transmission() {
        let (d, e) = device_with_barrier();
        let dk = d.at_kz(0.0);
        let r = solve_point_direct(&dk, e, &d.config, None, None).unwrap();
        assert!(r.m_left >= 1);
        // Sum over left-injected columns.
        let nb = dk.h.num_blocks();
        for q in 0..nb - 1 {
            let j: f64 =
                (0..r.m_left).map(|col| bond_current_of_state(&dk, e, &r.psi, col, q)).sum();
            assert!(
                (j - r.transmission).abs() < 1e-6,
                "slab {q}: J = {j} vs T = {}",
                r.transmission
            );
        }
    }

    #[test]
    fn right_injection_carries_negative_current() {
        let (d, e) = device_with_barrier();
        let dk = d.at_kz(0.0);
        let r = solve_point_direct(&dk, e, &d.config, None, None).unwrap();
        let m_r = r.psi.cols() - r.m_left;
        assert!(m_r >= 1);
        let j: f64 =
            (r.m_left..r.psi.cols()).map(|col| bond_current_of_state(&dk, e, &r.psi, col, 2)).sum();
        assert!(j < 0.0, "right-injected current flows to −x: {j}");
        assert!((j + r.transmission_rl).abs() < 1e-6);
    }

    #[test]
    fn equilibrium_net_current_vanishes() {
        let (d, e) = device_with_barrier();
        let dk = d.at_kz(0.0);
        let r = solve_point_direct(&dk, e, &d.config, None, None).unwrap();
        let cc = accumulate(&dk, &[r], &[1.0], 0.0, 0.0, 300.0);
        for j in &cc.bond_current {
            assert!(j.abs() < 1e-9, "equilibrium current {j}");
        }
    }

    #[test]
    fn bias_drives_positive_current_and_charge_piles_at_source() {
        let (d, e) = device_with_barrier();
        let dk = d.at_kz(0.0);
        let r = solve_point_direct(&dk, e, &d.config, None, None).unwrap();
        // μ_L above the probe energy, μ_R far below: only left injection.
        let cc = accumulate(&dk, std::slice::from_ref(&r), &[1.0], e + 0.3, e - 1.0, 300.0);
        for j in &cc.bond_current {
            assert!(*j > 0.0, "forward bias current {j}");
        }
        // Density must be higher before the barrier than after it.
        assert!(cc.density[1] > cc.density[6], "{:?}", cc.density);
    }

    #[test]
    fn spectral_map_shapes() {
        let (d, e) = device_with_barrier();
        let dk = d.at_kz(0.0);
        let r1 = solve_point_direct(&dk, e, &d.config, None, None).unwrap();
        let r2 = solve_point_direct(&dk, e + 0.05, &d.config, None, None).unwrap();
        let sm = spectral_map(&dk, &[r1, r2], 5.0, 5.0, 300.0);
        assert_eq!(sm.energies.len(), 2);
        assert_eq!(sm.current[0].len(), dk.h.num_blocks() - 1);
        assert_eq!(sm.density[0].len(), dk.h.num_blocks());
    }
}
