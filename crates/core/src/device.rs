//! Device assembly: leads + BTD matrices + electrostatics hooks.

use qtx_atomistic::assemble::assemble_unit_cell;
use qtx_atomistic::devices::DeviceSpec;
use qtx_cp2k::{Cp2kRun, Functional, HsFile};
use qtx_linalg::{c64, Complex64, Result, ZMat};
use qtx_obc::{LeadBlocks, ObcMethod};
use qtx_solver::SolverKind;
use qtx_sparse::Btd;

/// Runtime configuration of the transport engine.
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// OBC algorithm (FEAST by default — the production path).
    pub obc: ObcMethod,
    /// Eq. 5 solver (SplitSolve by default).
    pub solver: SolverKind,
    /// Electron temperature (K).
    pub temperature: f64,
    /// Left contact chemical potential (eV).
    pub mu_l: f64,
    /// Right contact chemical potential (eV).
    pub mu_r: f64,
    /// Transverse momentum points (1 for confined cross-sections).
    pub n_kz: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            obc: ObcMethod::default(),
            solver: SolverKind::SplitSolve { partitions: 2 },
            temperature: 300.0,
            mu_l: 0.0,
            mu_r: 0.0,
            n_kz: 1,
        }
    }
}

/// A transport device: CP2K-lite matrices + geometry + potential profile.
#[derive(Debug, Clone)]
pub struct Device {
    /// Structure + basis specification (kept for H(k) regeneration).
    pub spec: DeviceSpec,
    /// CP2K-lite output at `kz = 0` (SCF + functional corrections).
    pub base: HsFile,
    /// Diagonal correction (SCF + functional) to re-apply at `kz ≠ 0`.
    onsite_delta: Vec<Complex64>,
    /// Folded superblocks along transport (`n_cells / NBW`).
    pub n_slabs: usize,
    /// Per-slab electrostatic potential energy (eV) added to the diagonal.
    pub potential: Vec<f64>,
    /// Engine configuration.
    pub config: TransportConfig,
}

/// Momentum-resolved device: leads + BTD Hamiltonian/overlap at fixed kz.
#[derive(Debug, Clone)]
pub struct DeviceK {
    /// Left lead (with the left-contact potential folded in).
    pub lead_l: LeadBlocks,
    /// Right lead.
    pub lead_r: LeadBlocks,
    /// Device Hamiltonian (folded superblocks, potential applied).
    pub h: Btd,
    /// Device overlap.
    pub s: Btd,
    /// Transverse momentum (phase per z-period).
    pub kz: f64,
}

impl Device {
    /// Builds a device by running CP2K-lite with the given functional.
    pub fn build_with_functional(spec: DeviceSpec, functional: Functional) -> Result<Device> {
        let base = Cp2kRun::new(spec.clone())
            .functional(functional)
            .generate()
            .map_err(|_| qtx_linalg::LinalgError::NoConvergence { remaining: 1 })?;
        Ok(Self::from_hsfile(spec, base))
    }

    /// Builds with the default LDA functional.
    pub fn build(spec: DeviceSpec) -> Result<Device> {
        Self::build_with_functional(spec, Functional::Lda)
    }

    /// Wraps precomputed CP2K-lite output (the OMEN import path, Fig. 2).
    pub fn from_hsfile(spec: DeviceSpec, base: HsFile) -> Device {
        // Diagonal delta between the self-consistent H and the raw
        // parameterized assembly: on-site terms are kz-independent, so
        // storing the difference lets `at_kz` regenerate H(k) exactly.
        let raw = assemble_unit_cell(&spec.unit_cell, spec.basis, 0.0);
        let n = raw.n_orb;
        let onsite_delta: Vec<Complex64> =
            (0..n).map(|i| base.unit_cell.h[0][(i, i)] - raw.h[0][(i, i)]).collect();
        let nbw = base.unit_cell.nbw;
        let n_slabs = (spec.geometry.n_cells / nbw).max(2);
        Device {
            spec,
            base,
            onsite_delta,
            n_slabs,
            potential: vec![0.0; n_slabs],
            config: TransportConfig::default(),
        }
    }

    /// Folded superblock size (`NBW · n_orb`).
    pub fn block_size(&self) -> usize {
        self.base.unit_cell.nbw * self.base.unit_cell.n_orb
    }

    /// Total Schrödinger dimension `N_SS`.
    pub fn n_ss(&self) -> usize {
        self.block_size() * self.n_slabs
    }

    /// Total atoms in the transport region.
    pub fn n_atoms(&self) -> usize {
        self.base.unit_cell.atoms_per_cell * self.base.unit_cell.nbw * self.n_slabs
    }

    /// Sets the per-slab potential profile (length `n_slabs`).
    pub fn set_potential(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.n_slabs, "potential length mismatch");
        self.potential.copy_from_slice(v);
    }

    /// Transverse momentum points `(kz, weight)` (Monkhorst-Pack-like line
    /// for the UTB's periodic z, a single Γ point for nanowires).
    pub fn kz_points(&self) -> Vec<(f64, f64)> {
        if !self.spec.geometry.z_periodic || self.config.n_kz <= 1 {
            return vec![(0.0, 1.0)];
        }
        let nk = self.config.n_kz;
        // Sample [0, π] exploiting time-reversal symmetry; end points get
        // half weight.
        (0..nk)
            .map(|i| {
                let k = std::f64::consts::PI * i as f64 / (nk - 1) as f64;
                let w = if i == 0 || i == nk - 1 { 0.5 } else { 1.0 };
                (k, w)
            })
            .collect()
    }

    /// Builds the momentum-resolved lead/device matrices at `kz`.
    pub fn at_kz(&self, kz: f64) -> DeviceK {
        let ucm = if kz == 0.0 {
            self.base.unit_cell.clone()
        } else {
            let mut u = assemble_unit_cell(&self.spec.unit_cell, self.spec.basis, kz);
            for (i, &d) in self.onsite_delta.iter().enumerate() {
                u.h[0][(i, i)] += d;
            }
            u
        };
        let (d, up, lo) = ucm.folded();
        let (ds, us, ls) = ucm.folded_overlap();
        let nf = d.rows();
        // Leads sit at the contact potentials (flat extensions).
        let v_l = *self.potential.first().unwrap_or(&0.0);
        let v_r = *self.potential.last().unwrap_or(&0.0);
        let shift = |h: &ZMat, s: &ZMat, v: f64| -> ZMat {
            let mut out = h.clone();
            out.axpy(c64(v, 0.0), s);
            out
        };
        let lead_l =
            LeadBlocks::new(shift(&d, &ds, v_l), shift(&up, &us, v_l), ds.clone(), us.clone());
        let lead_r =
            LeadBlocks::new(shift(&d, &ds, v_r), shift(&up, &us, v_r), ds.clone(), us.clone());
        // Device: H_qq += V_q·S_qq ; H_{q,q+1} += (V_q+V_{q+1})/2 · S_{q,q+1}.
        let mut h = Btd::uniform(self.n_slabs, &d, &up, &lo);
        let s = Btd::uniform(self.n_slabs, &ds, &us, &ls);
        for q in 0..self.n_slabs {
            h.diag[q].axpy(c64(self.potential[q], 0.0), &s.diag[q]);
            if q + 1 < self.n_slabs {
                let vm = 0.5 * (self.potential[q] + self.potential[q + 1]);
                h.upper[q].axpy(c64(vm, 0.0), &s.upper[q]);
                h.lower[q].axpy(c64(vm, 0.0), &s.lower[q]);
            }
        }
        let _ = nf;
        DeviceK { lead_l, lead_r, h, s, kz }
    }

    /// Fermi window `(E_lo, E_hi)` covering both contacts ± `n_kt` thermal
    /// widths.
    pub fn fermi_window(&self, n_kt: f64) -> (f64, f64) {
        let kt = crate::landauer::KB_EV * self.config.temperature;
        let lo = self.config.mu_l.min(self.config.mu_r) - n_kt * kt;
        let hi = self.config.mu_l.max(self.config.mu_r) + n_kt * kt;
        (lo, hi)
    }
}

impl DeviceK {
    /// Dimension of the full Schrödinger matrix.
    pub fn n_ss(&self) -> usize {
        self.h.dim()
    }

    /// Builds the OBC-free part `A = E·S − H` of Eq. 5.
    pub fn es_minus_h(&self, e: f64) -> Btd {
        Btd::es_minus_h(c64(e, 0.0), &self.s, &self.h)
    }

    /// `A = (E + iη)·S − H`: the broadened system the escalation ladder
    /// retries with when the exact-energy solve hits a resonance pole.
    pub fn es_minus_h_eta(&self, e: f64, eta: f64) -> Btd {
        Btd::es_minus_h(c64(e, eta), &self.s, &self.h)
    }
}

/// Which contact a quantity refers to (re-export sugar).
pub use qtx_obc::Side;

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_atomistic::{BasisKind, DeviceBuilder};

    fn small_device() -> Device {
        let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(BasisKind::TightBinding).build();
        Device::build(spec).unwrap()
    }

    #[test]
    fn device_shapes_are_consistent() {
        let d = small_device();
        assert_eq!(d.n_slabs, 8); // TB: NBW = 1 → one cell per slab
        let dk = d.at_kz(0.0);
        assert_eq!(dk.h.num_blocks(), 8);
        assert_eq!(dk.h.block_size(), d.block_size());
        assert_eq!(dk.n_ss(), d.n_ss());
        assert!(dk.h.hermitian_defect() < 1e-10);
    }

    #[test]
    fn potential_shifts_diagonal_by_v_times_s() {
        let mut d = small_device();
        let dk0 = d.at_kz(0.0);
        let v = vec![0.25; d.n_slabs];
        d.set_potential(&v);
        let dk1 = d.at_kz(0.0);
        // H' − H = 0.25·S on the diagonal blocks.
        let expected = {
            let mut m = dk0.h.diag[3].clone();
            m.axpy(c64(0.25, 0.0), &dk0.s.diag[3]);
            m
        };
        assert!(dk1.h.diag[3].max_diff(&expected) < 1e-12);
        // Leads follow their contact potentials.
        assert!(dk1.lead_l.h00.max_diff(&expected) < 1e-12);
    }

    #[test]
    fn nanowire_has_single_kz_point() {
        let d = small_device();
        assert_eq!(d.kz_points(), vec![(0.0, 1.0)]);
    }

    #[test]
    fn utb_generates_kz_line() {
        let spec = DeviceBuilder::utb(0.8).cells(8).basis(BasisKind::TightBinding).build();
        let mut d = Device::build(spec).unwrap();
        d.config.n_kz = 5;
        let ks = d.kz_points();
        assert_eq!(ks.len(), 5);
        assert_eq!(ks[0].0, 0.0);
        assert!((ks[4].0 - std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(ks[0].1, 0.5);
        // H(k) differs from H(0) but stays Hermitian.
        let dk = d.at_kz(ks[2].0);
        assert!(dk.h.hermitian_defect() < 1e-10);
        assert!(dk.h.diag[0].max_diff(&d.at_kz(0.0).h.diag[0]) > 1e-9);
    }

    #[test]
    fn scf_delta_survives_kz_regeneration() {
        // The kz≠0 path must re-apply the CP2K-lite on-site corrections.
        let spec = DeviceBuilder::utb(0.8).cells(8).basis(BasisKind::TightBinding).build();
        let d = Device::build_with_functional(spec, Functional::Hse06).unwrap();
        let dk = d.at_kz(0.7);
        // Conduction on-site of atom 0 must carry the +0.65 eV correction:
        // compare against a plain rebuild without corrections.
        let raw = assemble_unit_cell(&d.spec.unit_cell, d.spec.basis, 0.7);
        let diff = (dk.h.diag[0][(1, 1)] - raw.h[0][(1, 1)]).re;
        assert!(diff > 0.5, "correction lost: {diff}");
    }

    #[test]
    fn atom_and_orbital_counts() {
        let d = small_device();
        assert_eq!(d.n_atoms(), d.base.unit_cell.atoms_per_cell * 8);
        assert_eq!(d.n_ss(), d.base.unit_cell.n_orb * 8);
    }
}
