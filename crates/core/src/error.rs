//! Top-level transport failure taxonomy.
//!
//! Every layer below reports typed, diagnostic-carrying errors
//! (`LinalgError` → `ObcError` / `SolveError`); this module folds them
//! into the one error the driver reasons about. The escalation ladder in
//! [`crate::transport`] consumes these to decide the next rung, and the
//! sweep health accounting in [`crate::sweep`] records what survived.

use qtx_linalg::LinalgError;
use qtx_obc::{ObcError, Side};
use qtx_solver::SolveError;

/// What went wrong at one (E, k) transport pixel.
#[derive(Debug)]
pub enum TransportError {
    /// The OBC algorithm failed for one contact.
    Obc {
        /// Which contact.
        side: Side,
        /// The diagnostic-carrying OBC error.
        source: ObcError,
    },
    /// The Eq. 5 solver failed.
    Solve(SolveError),
    /// A dense kernel failed outside the OBC/solver layers.
    Linalg(LinalgError),
    /// A gathered sweep payload failed frame validation (torn record).
    Payload(qtx_mpi::FrameError),
    /// A sweep checkpoint file was unreadable or inconsistent.
    Checkpoint(crate::checkpoint::CheckpointError),
    /// A scheduler worker caught a panicking point solve; the panic
    /// payload is preserved as text. Unlike the typed failures above this
    /// carries no ladder diagnostics — the solve never returned.
    Panic {
        /// The panic payload, rendered to text.
        what: String,
    },
    /// Every rung of the escalation ladder was exhausted.
    Exhausted {
        /// Energy of the abandoned point (eV).
        e: f64,
        /// Transverse momentum of the abandoned point.
        kz: f64,
        /// Total solve attempts across all rungs.
        attempts: u32,
        /// The failure of the last rung tried.
        last: Box<TransportError>,
    },
}

impl TransportError {
    /// True when the root cause is a deterministically injected fault.
    pub fn is_injected(&self) -> bool {
        match self {
            TransportError::Obc { source, .. } => source.is_injected(),
            TransportError::Solve(e) => e.is_injected(),
            TransportError::Linalg(e) => e.is_injected(),
            TransportError::Payload(_) | TransportError::Checkpoint(_) => false,
            // A panic may *originate* from the injected `sched_panic`
            // site, but it carries no typed provenance — the sweep health
            // counts panics separately from injected ladder faults.
            TransportError::Panic { .. } => false,
            TransportError::Exhausted { last, .. } => last.is_injected(),
        }
    }
}

impl From<SolveError> for TransportError {
    fn from(e: SolveError) -> Self {
        TransportError::Solve(e)
    }
}

impl From<LinalgError> for TransportError {
    fn from(e: LinalgError) -> Self {
        TransportError::Linalg(e)
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Obc { side, source } => write!(f, "OBC failure ({side:?}): {source}"),
            TransportError::Solve(e) => write!(f, "solver failure: {e}"),
            TransportError::Linalg(e) => write!(f, "linear-algebra failure: {e}"),
            TransportError::Payload(e) => write!(f, "gathered sweep payload invalid: {e}"),
            TransportError::Checkpoint(e) => write!(f, "sweep checkpoint invalid: {e}"),
            TransportError::Panic { what } => write!(f, "worker caught a panicking solve: {what}"),
            TransportError::Exhausted { e, kz, attempts, last } => write!(
                f,
                "escalation ladder exhausted at E={e} kz={kz} after {attempts} attempts: {last}"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

/// Result alias for the transport driver.
pub type TransportResult<T> = std::result::Result<T, TransportError>;
