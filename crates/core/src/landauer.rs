//! Landauer–Büttiker current integration.

/// Boltzmann constant (eV/K).
pub const KB_EV: f64 = 8.617_333_262e-5;

/// Conductance quantum with spin degeneracy, `2e²/h` in µS.
pub const CONDUCTANCE_QUANTUM_US: f64 = 77.480_917;

/// Fermi–Dirac occupation at energy `e` (eV) for chemical potential `mu`
/// and temperature `t` (K).
pub fn fermi(e: f64, mu: f64, t: f64) -> f64 {
    let kt = KB_EV * t.max(1e-9);
    let x = (e - mu) / kt;
    if x > 40.0 {
        0.0
    } else if x < -40.0 {
        1.0
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Ballistic two-terminal current (µA) from a transmission spectrum:
/// `I = (2e/h) ∫ T(E)·[f_L(E) − f_R(E)] dE` via trapezoid integration.
/// `spectrum` holds `(E, T(E))` pairs sorted by energy.
///
/// Non-finite samples (a failed sweep point that escaped interpolation)
/// are skipped rather than poisoning the whole integral; in debug builds
/// that path asserts, because a curated spectrum should never contain
/// them. Use [`landauer_current_counted_ua`] to observe the skip count.
pub fn landauer_current_ua(spectrum: &[(f64, f64)], mu_l: f64, mu_r: f64, temp: f64) -> f64 {
    let (i, skipped) = landauer_current_counted_ua(spectrum, mu_l, mu_r, temp);
    debug_assert!(skipped == 0, "{skipped} non-finite spectrum samples reached the integrator");
    i
}

/// [`landauer_current_ua`] plus the number of non-finite `(E, T)` samples
/// that were dropped from the integration.
pub fn landauer_current_counted_ua(
    spectrum: &[(f64, f64)],
    mu_l: f64,
    mu_r: f64,
    temp: f64,
) -> (f64, usize) {
    let clean: Vec<(f64, f64)> =
        spectrum.iter().copied().filter(|&(e, t)| e.is_finite() && t.is_finite()).collect();
    let skipped = spectrum.len() - clean.len();
    if clean.len() < 2 {
        return (0.0, skipped);
    }
    let integrand = |e: f64, t: f64| -> f64 { t * (fermi(e, mu_l, temp) - fermi(e, mu_r, temp)) };
    let mut acc = 0.0;
    for w in clean.windows(2) {
        let (e0, t0) = w[0];
        let (e1, t1) = w[1];
        acc += 0.5 * (integrand(e0, t0) + integrand(e1, t1)) * (e1 - e0);
    }
    // (2e/h)·1 eV = 77.48 µA.
    (CONDUCTANCE_QUANTUM_US * acc, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_limits() {
        assert!((fermi(-1.0, 0.0, 300.0) - 1.0).abs() < 1e-10);
        assert!(fermi(1.0, 0.0, 300.0) < 1e-10);
        assert!((fermi(0.0, 0.0, 300.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fermi_monotone_in_energy() {
        let mut last = 2.0;
        for i in 0..50 {
            let e = -0.5 + i as f64 * 0.02;
            let f = fermi(e, 0.0, 300.0);
            assert!(f <= last);
            last = f;
        }
    }

    #[test]
    fn zero_bias_means_zero_current() {
        let spectrum: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 0.01, 1.0)).collect();
        let i = landauer_current_ua(&spectrum, 0.3, 0.3, 300.0);
        assert!(i.abs() < 1e-12);
    }

    #[test]
    fn unit_transmission_linear_response() {
        // T = 1 over a wide window: I ≈ G0·V for small bias.
        let spectrum: Vec<(f64, f64)> = (0..4000).map(|i| (-1.0 + i as f64 * 5e-4, 1.0)).collect();
        let v = 0.01;
        let i = landauer_current_ua(&spectrum, v / 2.0, -v / 2.0, 10.0);
        let g = i / v; // µA / V = µS
        assert!((g - CONDUCTANCE_QUANTUM_US).abs() < 0.5, "g = {g}");
    }

    #[test]
    fn non_finite_samples_are_skipped_and_counted() {
        let mut spectrum: Vec<(f64, f64)> = (0..200).map(|i| (i as f64 * 0.005, 1.0)).collect();
        let reference = landauer_current_ua(&spectrum, 0.6, 0.4, 300.0);
        // Poison two samples outside the bias window: the counted variant
        // drops them without materially changing the integral.
        spectrum[190].1 = f64::NAN;
        spectrum[195].1 = f64::INFINITY;
        let (i, skipped) = landauer_current_counted_ua(&spectrum, 0.6, 0.4, 300.0);
        assert_eq!(skipped, 2);
        assert!(i.is_finite());
        assert!((i - reference).abs() < 1e-6, "{i} vs {reference}");
    }

    #[test]
    fn current_sign_follows_bias() {
        let spectrum: Vec<(f64, f64)> = (0..200).map(|i| (i as f64 * 0.005, 1.0)).collect();
        let fwd = landauer_current_ua(&spectrum, 0.6, 0.4, 300.0);
        let rev = landauer_current_ua(&spectrum, 0.4, 0.6, 300.0);
        assert!(fwd > 0.0);
        assert!((fwd + rev).abs() < 1e-12, "antisymmetric under bias reversal");
    }
}
