//! Landauer–Büttiker current integration.

/// Boltzmann constant (eV/K).
pub const KB_EV: f64 = 8.617_333_262e-5;

/// Conductance quantum with spin degeneracy, `2e²/h` in µS.
pub const CONDUCTANCE_QUANTUM_US: f64 = 77.480_917;

/// Fermi–Dirac occupation at energy `e` (eV) for chemical potential `mu`
/// and temperature `t` (K).
pub fn fermi(e: f64, mu: f64, t: f64) -> f64 {
    let kt = KB_EV * t.max(1e-9);
    let x = (e - mu) / kt;
    if x > 40.0 {
        0.0
    } else if x < -40.0 {
        1.0
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Ballistic two-terminal current (µA) from a transmission spectrum:
/// `I = (2e/h) ∫ T(E)·[f_L(E) − f_R(E)] dE` via trapezoid integration.
/// `spectrum` holds `(E, T(E))` pairs, ideally sorted by energy —
/// misordered or duplicated energies are repaired defensively (see
/// [`landauer_integrate`]).
///
/// Non-finite samples (a failed sweep point that escaped interpolation)
/// are skipped rather than poisoning the whole integral; in debug builds
/// that path asserts, because a curated spectrum should never contain
/// them (nor duplicate energies). Use [`landauer_current_counted_ua`] or
/// [`landauer_integrate`] to observe the defensive accounting instead.
pub fn landauer_current_ua(spectrum: &[(f64, f64)], mu_l: f64, mu_r: f64, temp: f64) -> f64 {
    let out = landauer_integrate(spectrum, mu_l, mu_r, temp);
    debug_assert!(
        out.skipped == 0,
        "{} non-finite spectrum samples reached the integrator",
        out.skipped
    );
    debug_assert!(
        out.deduped == 0,
        "{} duplicate-energy spectrum samples reached the integrator",
        out.deduped
    );
    out.current_ua
}

/// [`landauer_current_ua`] plus the number of non-finite `(E, T)` samples
/// that were dropped from the integration (the historical tuple API;
/// [`landauer_integrate`] reports the full accounting).
pub fn landauer_current_counted_ua(
    spectrum: &[(f64, f64)],
    mu_l: f64,
    mu_r: f64,
    temp: f64,
) -> (f64, usize) {
    let out = landauer_integrate(spectrum, mu_l, mu_r, temp);
    (out.current_ua, out.skipped)
}

/// Decomposed result of [`landauer_integrate`]: the current plus the
/// integrator's defensive accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LandauerIntegration {
    /// Integrated current (µA).
    pub current_ua: f64,
    /// Samples dropped for a non-finite energy or transmission.
    pub skipped: usize,
    /// Samples dropped as exact-energy duplicates (the first occurrence
    /// in input order wins).
    pub deduped: usize,
    /// Trapezoid intervals that silently bridge at least one dropped
    /// sample — wide steps whose local error the sample count hides. A
    /// dropped sample with a non-finite *energy* cannot be located and
    /// counts only as `skipped`.
    pub bridged: usize,
}

/// Full trapezoid integration with defensive input repair: non-finite
/// samples are dropped (and the intervals that bridge them counted),
/// energies are sorted, and exact duplicates collapse to their first
/// occurrence — an unsorted or duplicated spectrum must never produce
/// negative or zero trapezoid widths.
pub fn landauer_integrate(
    spectrum: &[(f64, f64)],
    mu_l: f64,
    mu_r: f64,
    temp: f64,
) -> LandauerIntegration {
    // Partition: finite samples enter the integration; dropped ones are
    // remembered by energy so bridging intervals can be counted.
    let mut clean: Vec<(f64, f64)> = Vec::with_capacity(spectrum.len());
    let mut dropped_es: Vec<f64> = Vec::new();
    for &(e, t) in spectrum {
        if e.is_finite() && t.is_finite() {
            clean.push((e, t));
        } else if e.is_finite() {
            dropped_es.push(e);
        }
    }
    let skipped = spectrum.len() - clean.len();
    // Defensive ordering: stable sort keeps input order among equal
    // energies, so the dedup below keeps the first occurrence.
    clean.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite energies"));
    let before = clean.len();
    clean.dedup_by(|later, first| later.0 == first.0);
    let deduped = before - clean.len();
    dropped_es.sort_by(|a, b| a.partial_cmp(b).expect("finite energies"));
    if clean.len() < 2 {
        return LandauerIntegration { current_ua: 0.0, skipped, deduped, bridged: 0 };
    }
    let integrand = |e: f64, t: f64| -> f64 { t * (fermi(e, mu_l, temp) - fermi(e, mu_r, temp)) };
    let mut acc = 0.0;
    let mut bridged = 0usize;
    for w in clean.windows(2) {
        let (e0, t0) = w[0];
        let (e1, t1) = w[1];
        debug_assert!(e1 > e0, "post-repair grid must be strictly increasing: {e0} vs {e1}");
        acc += 0.5 * (integrand(e0, t0) + integrand(e1, t1)) * (e1 - e0);
        // A dropped sample strictly inside this interval means the
        // trapezoid silently spans a missing point.
        let lo = dropped_es.partition_point(|&d| d <= e0);
        if dropped_es.get(lo).is_some_and(|&d| d < e1) {
            bridged += 1;
        }
    }
    // (2e/h)·1 eV = 77.48 µA.
    LandauerIntegration { current_ua: CONDUCTANCE_QUANTUM_US * acc, skipped, deduped, bridged }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_limits() {
        assert!((fermi(-1.0, 0.0, 300.0) - 1.0).abs() < 1e-10);
        assert!(fermi(1.0, 0.0, 300.0) < 1e-10);
        assert!((fermi(0.0, 0.0, 300.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fermi_monotone_in_energy() {
        let mut last = 2.0;
        for i in 0..50 {
            let e = -0.5 + i as f64 * 0.02;
            let f = fermi(e, 0.0, 300.0);
            assert!(f <= last);
            last = f;
        }
    }

    #[test]
    fn zero_bias_means_zero_current() {
        let spectrum: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 0.01, 1.0)).collect();
        let i = landauer_current_ua(&spectrum, 0.3, 0.3, 300.0);
        assert!(i.abs() < 1e-12);
    }

    #[test]
    fn unit_transmission_linear_response() {
        // T = 1 over a wide window: I ≈ G0·V for small bias.
        let spectrum: Vec<(f64, f64)> = (0..4000).map(|i| (-1.0 + i as f64 * 5e-4, 1.0)).collect();
        let v = 0.01;
        let i = landauer_current_ua(&spectrum, v / 2.0, -v / 2.0, 10.0);
        let g = i / v; // µA / V = µS
        assert!((g - CONDUCTANCE_QUANTUM_US).abs() < 0.5, "g = {g}");
    }

    #[test]
    fn non_finite_samples_are_skipped_and_counted() {
        let mut spectrum: Vec<(f64, f64)> = (0..200).map(|i| (i as f64 * 0.005, 1.0)).collect();
        let reference = landauer_current_ua(&spectrum, 0.6, 0.4, 300.0);
        // Poison two samples outside the bias window: the counted variant
        // drops them without materially changing the integral.
        spectrum[190].1 = f64::NAN;
        spectrum[195].1 = f64::INFINITY;
        let (i, skipped) = landauer_current_counted_ua(&spectrum, 0.6, 0.4, 300.0);
        assert_eq!(skipped, 2);
        assert!(i.is_finite());
        assert!((i - reference).abs() < 1e-6, "{i} vs {reference}");
    }

    #[test]
    fn unsorted_and_duplicated_energies_are_repaired() {
        let sorted: Vec<(f64, f64)> = (0..50).map(|i| (i as f64 * 0.01, 1.0 + i as f64)).collect();
        let reference = landauer_current_ua(&sorted, 0.3, 0.1, 300.0);
        // Deterministically shuffled copy plus a conflicting duplicate:
        // the pre-fix integrator trusted input order, so negative widths
        // silently corrupted the integral.
        let mut messy = sorted.clone();
        messy.swap(3, 40);
        messy.swap(11, 27);
        messy.swap(0, 49);
        messy.push((0.25, -7.0)); // duplicate energy, conflicting T — first wins
        let (i_tuple, _) = landauer_current_counted_ua(&messy, 0.3, 0.1, 300.0);
        assert!(
            (i_tuple - reference).abs() < 1e-12 * reference.abs().max(1.0),
            "{i_tuple} vs {reference}"
        );
        let out = landauer_integrate(&messy, 0.3, 0.1, 300.0);
        assert_eq!(out.deduped, 1);
        assert_eq!(out.skipped, 0);
        assert_eq!(out.bridged, 0);
        assert!((out.current_ua - reference).abs() < 1e-12 * reference.abs().max(1.0));
    }

    #[test]
    fn bridged_intervals_are_counted() {
        let mut spectrum: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 0.005, 1.0)).collect();
        spectrum[40].1 = f64::NAN; // interior drop → one bridging interval
        spectrum[60].1 = f64::NAN;
        spectrum[61].1 = f64::NAN; // adjacent drops share one wide interval
        let out = landauer_integrate(&spectrum, 0.3, 0.1, 300.0);
        assert_eq!(out.skipped, 3);
        assert_eq!(out.bridged, 2);
        assert_eq!(out.deduped, 0);
        assert!(out.current_ua.is_finite());
        // A NaN-energy sample cannot be located: skipped, not bridged.
        spectrum.push((f64::NAN, 1.0));
        let out2 = landauer_integrate(&spectrum, 0.3, 0.1, 300.0);
        assert_eq!(out2.skipped, 4);
        assert_eq!(out2.bridged, 2);
    }

    #[test]
    fn current_sign_follows_bias() {
        let spectrum: Vec<(f64, f64)> = (0..200).map(|i| (i as f64 * 0.005, 1.0)).collect();
        let fwd = landauer_current_ua(&spectrum, 0.6, 0.4, 300.0);
        let rev = landauer_current_ua(&spectrum, 0.4, 0.6, 300.0);
        assert!(fwd > 0.0);
        assert!((fwd + rev).abs() < 1e-12, "antisymmetric under bias reversal");
    }
}
