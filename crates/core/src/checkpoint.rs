//! Versioned sweep checkpoints.
//!
//! A production sweep can run for hours on thousands of ranks; a node
//! failure must not restart it from scratch. Completed [`PointRecord`]s
//! are persisted *pre-interpolation* so a killed-and-resumed sweep
//! re-derives every downstream quantity (interpolations, health, spectra)
//! from exactly the same raw records as an uninterrupted run — the resume
//! is bit-identical modulo wall time.
//!
//! File layout (all little-endian):
//!
//! ```text
//! bytes 0..8    magic   b"QTXSWP01"   (version in the tag)
//! bytes 8..16   u64     plan fingerprint (FNV-1a over the k/E grids)
//! bytes 16..24  u64     record count
//! bytes 24..    count × 80-byte PointRecord frames
//! ```
//!
//! The fingerprint pins a checkpoint to one exact [`SweepPlan`]: resuming
//! against a different grid is rejected loudly instead of silently mixing
//! incompatible points. Saves go through a temp file + atomic rename so a
//! crash mid-write never leaves a torn checkpoint behind.

use crate::error::{TransportError, TransportResult};
use crate::sweep::{PointRecord, SweepPlan, POINT_RECORD_BYTES};
use std::path::Path;

/// File magic; the version lives in the last two bytes.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"QTXSWP01";

const HEADER_BYTES: usize = 24;

/// Why a checkpoint could not be used.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure while reading or writing.
    Io(std::io::Error),
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The file is shorter or longer than its header claims.
    Truncated {
        /// Bytes the header implies.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The checkpoint was produced for a different sweep plan.
    PlanMismatch {
        /// Fingerprint of the plan being resumed.
        expected: u64,
        /// Fingerprint stored in the file.
        got: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::BadMagic => write!(f, "not a QTXSWP01 checkpoint"),
            CheckpointError::Truncated { expected, got } => {
                write!(f, "checkpoint truncated: header implies {expected} bytes, file has {got}")
            }
            CheckpointError::PlanMismatch { expected, got } => write!(
                f,
                "checkpoint belongs to a different sweep plan \
                 (fingerprint {got:#018x}, plan is {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for TransportError {
    fn from(e: CheckpointError) -> Self {
        TransportError::Checkpoint(e)
    }
}

/// FNV-1a over the plan's momentum/weight/energy bit patterns — any grid
/// change (count, order, or a single ULP of one energy) changes it.
pub fn plan_fingerprint(plan: &SweepPlan) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bits: u64| {
        h ^= bits;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (i, &(kz, w)) in plan.k_points.iter().enumerate() {
        mix(i as u64);
        mix(kz.to_bits());
        mix(w.to_bits());
        for &e in &plan.energies[i] {
            mix(e.to_bits());
        }
    }
    h
}

/// Serializes `records` for `plan` into the checkpoint byte format.
pub fn encode(plan: &SweepPlan, records: &[PointRecord]) -> Vec<u8> {
    encode_with_fingerprint(plan_fingerprint(plan), records)
}

/// [`encode`] against an explicit fingerprint — adaptive refinement pins
/// its checkpoints to `(plan, refinement config)` instead of the bare
/// plan, so a plain-sweep checkpoint and a refined-sweep checkpoint of
/// the same base grid can never be confused for each other.
pub fn encode_with_fingerprint(fingerprint: u64, records: &[PointRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + records.len() * POINT_RECORD_BYTES);
    buf.extend_from_slice(&CHECKPOINT_MAGIC);
    buf.extend_from_slice(&fingerprint.to_le_bytes());
    buf.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in records {
        r.encode_into(&mut buf);
    }
    buf
}

/// Parses checkpoint bytes, validating magic, plan fingerprint, and exact
/// length before touching a single record.
pub fn parse(buf: &[u8], plan: &SweepPlan) -> TransportResult<Vec<PointRecord>> {
    parse_with_fingerprint(buf, plan_fingerprint(plan))
}

/// [`parse`] against an explicit fingerprint (see
/// [`encode_with_fingerprint`]).
pub fn parse_with_fingerprint(buf: &[u8], fingerprint: u64) -> TransportResult<Vec<PointRecord>> {
    if buf.len() < HEADER_BYTES {
        return Err(CheckpointError::Truncated { expected: HEADER_BYTES, got: buf.len() }.into());
    }
    if buf[..8] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic.into());
    }
    let got_fp = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    if got_fp != fingerprint {
        return Err(CheckpointError::PlanMismatch { expected: fingerprint, got: got_fp }.into());
    }
    let count = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")) as usize;
    let expected_len = HEADER_BYTES + count * POINT_RECORD_BYTES;
    if buf.len() != expected_len {
        return Err(CheckpointError::Truncated { expected: expected_len, got: buf.len() }.into());
    }
    let frames = qtx_mpi::exact_frames(&buf[HEADER_BYTES..], POINT_RECORD_BYTES)
        .map_err(TransportError::Payload)?;
    frames.map(|f| PointRecord::decode(f).map_err(TransportError::Payload)).collect()
}

/// Loads and validates a checkpoint for `plan`.
pub fn load(path: &Path, plan: &SweepPlan) -> TransportResult<Vec<PointRecord>> {
    load_with_fingerprint(path, plan_fingerprint(plan))
}

/// [`load`] against an explicit fingerprint (see
/// [`encode_with_fingerprint`]).
pub fn load_with_fingerprint(path: &Path, fingerprint: u64) -> TransportResult<Vec<PointRecord>> {
    let buf = std::fs::read(path).map_err(CheckpointError::Io)?;
    parse_with_fingerprint(&buf, fingerprint)
}

/// Atomically writes a checkpoint: temp file in the same directory, then
/// rename over the target.
pub fn save(path: &Path, plan: &SweepPlan, records: &[PointRecord]) -> TransportResult<()> {
    save_with_fingerprint(path, plan_fingerprint(plan), records)
}

/// [`save`] against an explicit fingerprint (see
/// [`encode_with_fingerprint`]).
pub fn save_with_fingerprint(
    path: &Path,
    fingerprint: u64,
    records: &[PointRecord],
) -> TransportResult<()> {
    let buf = encode_with_fingerprint(fingerprint, records);
    let tmp = path.with_extension("qtxswp.tmp");
    std::fs::write(&tmp, &buf).map_err(CheckpointError::Io)?;
    std::fs::rename(&tmp, path).map_err(CheckpointError::Io)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::STATUS_OK;

    fn plan() -> SweepPlan {
        SweepPlan {
            k_points: vec![(0.0, 1.0), (0.5, 2.0)],
            energies: vec![vec![0.1, 0.2], vec![0.3]],
        }
    }

    fn record(k_idx: u32, e_idx: u32) -> PointRecord {
        PointRecord {
            k_idx,
            e_idx,
            kz: 0.0,
            w: 1.0,
            e: 0.1,
            t: 1.5,
            method: 0,
            status: STATUS_OK,
            attempts: 1,
            escalations: 0,
            residual: 1e-12,
            eta: 0.0,
            wall_ms: 3.0,
            interp_bound: 0.0,
        }
    }

    #[test]
    fn roundtrip_preserves_records() {
        let p = plan();
        let records = vec![record(0, 0), record(0, 1), record(1, 0)];
        let buf = encode(&p, &records);
        let back = parse(&buf, &p).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn fingerprint_pins_the_grid() {
        let p = plan();
        let mut other = plan();
        other.energies[1][0] += 1e-15; // one ULP-ish nudge
        assert_ne!(plan_fingerprint(&p), plan_fingerprint(&other));
        let buf = encode(&p, &[record(0, 0)]);
        let err = parse(&buf, &other).unwrap_err();
        assert!(matches!(err, TransportError::Checkpoint(CheckpointError::PlanMismatch { .. })));
    }

    #[test]
    fn corruption_is_rejected() {
        let p = plan();
        let buf = encode(&p, &[record(0, 0)]);
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            parse(&bad, &p).unwrap_err(),
            TransportError::Checkpoint(CheckpointError::BadMagic)
        ));
        // Truncated body.
        let torn = &buf[..buf.len() - 7];
        assert!(matches!(
            parse(torn, &p).unwrap_err(),
            TransportError::Checkpoint(CheckpointError::Truncated { .. })
        ));
        // Header-only stub.
        assert!(matches!(
            parse(&buf[..10], &p).unwrap_err(),
            TransportError::Checkpoint(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let p = plan();
        let records = vec![record(0, 0), record(1, 0)];
        let dir = std::env::temp_dir().join("qtx-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.qtxswp");
        save(&path, &p, &records).unwrap();
        let back = load(&path, &p).unwrap();
        assert_eq!(back, records);
        assert!(!path.with_extension("qtxswp.tmp").exists(), "temp file cleaned up");
        std::fs::remove_file(&path).ok();
    }
}
