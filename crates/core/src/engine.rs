//! The unified transport front door.
//!
//! Before this module, callers juggled three free functions
//! (`solve_energy_point`, `solve_energy_point_with_runtime`,
//! `solve_energy_point_robust`), a hand-rolled `SweepOptions` literal and
//! a process-global scheduler — and each call re-derived the shared state
//! (folded `DeviceK`, lead content hashes, cache resolution) from
//! scratch. [`TransportEngine`] owns that state once:
//!
//! * the device and its [`TransportConfig`];
//! * the momentum-folded `DeviceK` builds, memoized per `kz`;
//! * the optional scheduler pool shared by its sweeps;
//! * the optional content-addressed self-energy cache
//!   ([`crate::cache::SigmaCache`]) with the lead hashes computed once.
//!
//! Point solves go through [`TransportEngine::solve_point`] with a
//! [`PointPolicy`] (direct / robust ladder / interpolation-enabled);
//! sweeps go through [`TransportEngine::sweep`] /
//! [`TransportEngine::sweep_resumable`] and inherit the engine's
//! scheduler and cache unless the options override them. The old free
//! functions survive as `#[deprecated]` forwarders.

use crate::cache::{CacheConfig, CacheHandle, CachePolicy, CacheStats, SigmaCache};
use crate::device::{Device, DeviceK, TransportConfig};
use crate::error::TransportResult;
use crate::scheduler::Scheduler;
use crate::sweep::{parallel_sweep_resumable, SweepOptions, SweepPlan, SweepResult};
use crate::transport::{
    self, caroli_from_sigmas, EnergyPointResult, PointOutcome, RobustSolve, METHOD_CACHE_INTERP,
};
use qtx_accel::AccelRuntime;
use qtx_linalg::ZMat;
use qtx_obc::Side;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How [`TransportEngine::solve_point`] attacks one (E, kz) pixel.
///
/// `#[non_exhaustive]`: build through the constructors
/// ([`PointPolicy::direct`], [`PointPolicy::robust`],
/// [`PointPolicy::interpolating`]) plus [`PointPolicy::with_runtime`].
#[derive(Clone, Copy, Default)]
#[non_exhaustive]
pub struct PointPolicy<'rt> {
    /// Walk the escalation ladder on failure instead of returning the
    /// first error.
    pub robust: bool,
    /// Allow serving Σ from validated cache interpolation intervals
    /// (see `docs/cache.md` for the error contract). Never affects
    /// sweeps — only explicit point queries opt in.
    pub allow_interp: bool,
    /// Accelerator runtime for the Eq. 5 solve (direct path only; the
    /// ladder always runs on the host, matching the pre-engine behavior).
    pub runtime: Option<&'rt AccelRuntime>,
}

impl PointPolicy<'static> {
    /// Single attempt with the configured method; errors surface as-is.
    pub fn direct() -> Self {
        PointPolicy { robust: false, allow_interp: false, runtime: None }
    }

    /// Full escalation ladder (the sweep's per-point behavior).
    pub fn robust() -> Self {
        PointPolicy { robust: true, allow_interp: false, runtime: None }
    }

    /// Ladder + cache interpolation: a point bracketed by a validated
    /// interval skips the OBC solves entirely and reports
    /// [`METHOD_CACHE_INTERP`] with its error bound in
    /// [`PointOutcome::interp_bound`].
    pub fn interpolating() -> Self {
        PointPolicy { robust: true, allow_interp: true, runtime: None }
    }
}

impl<'rt> PointPolicy<'rt> {
    /// Attaches an accelerator runtime (used by the direct path).
    pub fn with_runtime<'a>(self, rt: &'a AccelRuntime) -> PointPolicy<'a> {
        PointPolicy { robust: self.robust, allow_interp: self.allow_interp, runtime: Some(rt) }
    }
}

impl std::fmt::Debug for PointPolicy<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PointPolicy")
            .field("robust", &self.robust)
            .field("allow_interp", &self.allow_interp)
            .field("runtime", &self.runtime.is_some())
            .finish()
    }
}

/// Builder of [`TransportEngine`]; see [`TransportEngine::builder`].
pub struct TransportEngineBuilder {
    device: Device,
    config: Option<TransportConfig>,
    scheduler: Option<Arc<Scheduler>>,
    cache: CachePolicy,
    cache_config: Option<CacheConfig>,
}

impl TransportEngineBuilder {
    /// Overrides the device's transport configuration.
    pub fn config(mut self, cfg: TransportConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    /// Scheduler pool the engine's sweeps run on (defaults to the
    /// process-global pool at sweep time).
    pub fn scheduler(mut self, sched: Arc<Scheduler>) -> Self {
        self.scheduler = Some(sched);
        self
    }

    /// Cache policy ([`CachePolicy::Auto`] honors `QTX_OBC_CACHE_BYTES`).
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self
    }

    /// Creates a private cache with these knobs (the way to enable the
    /// interpolation layer, which the env-armed global cache keeps off).
    pub fn cache_config(mut self, cfg: CacheConfig) -> Self {
        self.cache_config = Some(cfg);
        self
    }

    /// Finishes the engine. Infallible — every knob combination is
    /// meaningful ([`Self::cache_config`] takes precedence over
    /// [`Self::cache`] when both are set).
    pub fn build(self) -> TransportEngine {
        let mut device = self.device;
        if let Some(cfg) = self.config {
            device.config = cfg;
        }
        let cache = match self.cache_config {
            Some(cfg) => Some(Arc::new(SigmaCache::new(cfg))),
            None => self.cache.resolve(),
        };
        TransportEngine {
            device,
            scheduler: self.scheduler,
            cache,
            dks: Mutex::new(HashMap::new()),
        }
    }
}

/// A transport session over one device: the single front door for point
/// solves and sweeps. Cheap to share behind an `Arc`; all interior state
/// is synchronized.
pub struct TransportEngine {
    device: Device,
    scheduler: Option<Arc<Scheduler>>,
    cache: Option<Arc<SigmaCache>>,
    /// Folded `DeviceK` (plus its cache handle with the lead hashes
    /// computed once), memoized per `kz` bit pattern.
    dks: Mutex<HashMap<u64, FoldedK>>,
}

/// A folded device at one `kz` together with its per-lead cache handle.
type FoldedK = (Arc<DeviceK>, Option<CacheHandle>);

impl std::fmt::Debug for TransportEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransportEngine")
            .field("config", &self.device.config)
            .field("cache", &self.cache)
            .finish_non_exhaustive()
    }
}

impl TransportEngine {
    /// Starts building an engine over `device`.
    pub fn builder(device: Device) -> TransportEngineBuilder {
        TransportEngineBuilder {
            device,
            config: None,
            scheduler: None,
            cache: CachePolicy::Auto,
            cache_config: None,
        }
    }

    /// An engine with all defaults (env-armed cache, global scheduler).
    pub fn new(device: Device) -> TransportEngine {
        TransportEngine::builder(device).build()
    }

    /// The device this engine solves on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The active transport configuration.
    pub fn config(&self) -> &TransportConfig {
        &self.device.config
    }

    /// Counter snapshot of the engine's cache, `None` when caching is off.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The engine's cache, if any (share it across engines via
    /// [`CachePolicy::Shared`] to keep Σ warm between sessions).
    pub fn cache(&self) -> Option<&Arc<SigmaCache>> {
        self.cache.as_ref()
    }

    fn dk_at(&self, kz: f64) -> (Arc<DeviceK>, Option<CacheHandle>) {
        let mut dks = self.dks.lock().expect("engine dk map");
        dks.entry(kz.to_bits())
            .or_insert_with(|| {
                let dk = Arc::new(self.device.at_kz(kz));
                let handle = self.cache.as_ref().map(|c| CacheHandle::for_dk(c.clone(), &dk));
                (dk, handle)
            })
            .clone()
    }

    /// Solves one (E, kz) pixel under `policy`. Always returns a
    /// [`RobustSolve`] so callers see the same record shape whichever
    /// path produced the point; collapse with [`RobustSolve::into_result`]
    /// when only the result matters.
    pub fn solve_point(&self, e: f64, kz: f64, policy: &PointPolicy<'_>) -> RobustSolve {
        let (dk, handle) = self.dk_at(kz);
        let cfg = &self.device.config;
        if policy.allow_interp {
            if let Some(h) = &handle {
                if let Some(rs) = self.try_interp_point(&dk, h, e) {
                    return rs;
                }
            }
        }
        if policy.robust {
            return transport::solve_point_robust_raw(&dk, e, cfg, handle.as_ref());
        }
        let start = Instant::now();
        match transport::solve_point_direct(&dk, e, cfg, policy.runtime, handle.as_ref()) {
            Ok(result) => RobustSolve {
                result: Some(result),
                outcome: PointOutcome {
                    method_used: 0,
                    attempts: 1,
                    escalations: 0,
                    residual: 0.0,
                    eta: 0.0,
                    interp_bound: 0.0,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                },
                error: None,
            },
            Err(error) => RobustSolve {
                result: None,
                outcome: PointOutcome {
                    method_used: transport::METHOD_FAILED,
                    attempts: 1,
                    escalations: 0,
                    residual: f64::INFINITY,
                    eta: 0.0,
                    interp_bound: 0.0,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                },
                error: Some(error),
            },
        }
    }

    /// Interpolation fast path: both sides must be servable from the
    /// cache (an exact stored frame counts; at least one side must come
    /// from a validated interval for this to beat the plain hit path).
    /// The transmission then comes from the mode-free Caroli route, like
    /// the decimation rung — interpolated Σ carries no mode sets.
    fn try_interp_point(&self, dk: &DeviceK, h: &CacheHandle, e: f64) -> Option<RobustSolve> {
        let start = Instant::now();
        let cfg = &self.device.config;
        let side_sigma = |side: Side| -> Option<(ZMat, f64)> {
            let hash = h.hash_of(side);
            if let Some(exact) = h.cache().lookup_exact(hash, e, 0.0, side, cfg.obc) {
                return Some((exact.sigma, 0.0));
            }
            h.cache().try_interpolate(hash, e, 0.0, side, cfg.obc)
        };
        let (sigma_l, bound_l) = side_sigma(Side::Left)?;
        let (sigma_r, bound_r) = side_sigma(Side::Right)?;
        let bound = bound_l.max(bound_r);
        if bound == 0.0 {
            // Both sides were exact hits: let the normal path produce the
            // full wave-function result instead of the Caroli fallback.
            return None;
        }
        let t = caroli_from_sigmas(dk, e, 0.0, &sigma_l, &sigma_r).ok()?;
        if !t.is_finite() {
            return None;
        }
        Some(RobustSolve {
            result: Some(EnergyPointResult {
                e,
                kz: dk.kz,
                transmission: t,
                transmission_rl: t,
                reflection: 0.0,
                channels: (0, 0),
                psi: ZMat::zeros(0, 0),
                m_left: 0,
                sigma_l,
                sigma_r,
            }),
            outcome: PointOutcome {
                method_used: METHOD_CACHE_INTERP,
                attempts: 1,
                escalations: 0,
                residual: 0.0,
                eta: 0.0,
                interp_bound: bound,
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
            },
            error: None,
        })
    }

    /// Runs a sweep with default options (engine scheduler + cache).
    pub fn sweep(&self, plan: &SweepPlan, n_ranks: usize) -> TransportResult<SweepResult> {
        self.sweep_resumable(plan, n_ranks, &SweepOptions::default())
    }

    /// [`Self::sweep`] with explicit options. `opts.scheduler = None`
    /// inherits the engine's pool; `opts.cache = Auto` inherits the
    /// engine's cache (or stays off when the engine has none — an
    /// engine-level "Auto" has already been resolved at build time).
    pub fn sweep_resumable(
        &self,
        plan: &SweepPlan,
        n_ranks: usize,
        opts: &SweepOptions,
    ) -> TransportResult<SweepResult> {
        let mut o = opts.clone();
        if o.scheduler.is_none() {
            o.scheduler = self.scheduler.clone();
        }
        if matches!(o.cache, CachePolicy::Auto) {
            o.cache = match &self.cache {
                Some(c) => CachePolicy::Shared(c.clone()),
                None => CachePolicy::Off,
            };
        }
        parallel_sweep_resumable(&self.device, plan, n_ranks, &o)
    }
}
