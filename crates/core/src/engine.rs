//! The unified transport front door.
//!
//! Before this module, callers juggled three free functions
//! (`solve_energy_point`, `solve_energy_point_with_runtime`,
//! `solve_energy_point_robust`), a hand-rolled `SweepOptions` literal and
//! a process-global scheduler — and each call re-derived the shared state
//! (folded `DeviceK`, lead content hashes, cache resolution) from
//! scratch. [`TransportEngine`] owns that state once:
//!
//! * the device and its [`TransportConfig`];
//! * the momentum-folded `DeviceK` builds, memoized per `kz`;
//! * the optional scheduler pool shared by its sweeps;
//! * the optional content-addressed self-energy cache
//!   ([`crate::cache::SigmaCache`]) with the lead hashes computed once.
//!
//! Point solves go through [`TransportEngine::solve_point`] with a
//! [`PointPolicy`] (direct / robust ladder / interpolation-enabled);
//! sweeps go through [`TransportEngine::sweep`] /
//! [`TransportEngine::sweep_resumable`] and inherit the engine's
//! scheduler and cache unless the options override them. The old free
//! functions survive as `#[deprecated]` forwarders.

use crate::cache::{CacheConfig, CacheHandle, CachePolicy, CacheStats, SigmaCache};
use crate::device::{Device, DeviceK, TransportConfig};
use crate::error::TransportError;
use crate::error::TransportResult;
use crate::scheduler::Scheduler;
use crate::sweep::{parallel_sweep_resumable, SweepOptions, SweepPlan, SweepResult};
use crate::transport::{
    self, caroli_from_sigmas, EnergyPointResult, PointOutcome, RobustSolve, METHOD_BOUNDARY,
    METHOD_CACHE_INTERP,
};
use qtx_accel::AccelRuntime;
use qtx_linalg::ZMat;
use qtx_obc::Side;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How [`TransportEngine::solve_point`] attacks one (E, kz) pixel.
///
/// `#[non_exhaustive]`: build through the constructors
/// ([`PointPolicy::direct`], [`PointPolicy::robust`],
/// [`PointPolicy::interpolating`]) plus [`PointPolicy::with_runtime`].
#[derive(Clone, Copy, Default)]
#[non_exhaustive]
pub struct PointPolicy<'rt> {
    /// Walk the escalation ladder on failure instead of returning the
    /// first error.
    pub robust: bool,
    /// Allow serving Σ from validated cache interpolation intervals
    /// (see `docs/cache.md` for the error contract). Never affects
    /// sweeps — only explicit point queries opt in.
    pub allow_interp: bool,
    /// Skip the scattering-state solve entirely and compute T(E) through
    /// the boundary-block RGF with compressed Σ (the sparsity fast path;
    /// see `docs/sparsity.md`). The result carries no wave functions.
    pub transmission_only: bool,
    /// Relative tolerance for compressing self-energies on the
    /// transmission-only path when the engine has no cache (a cache
    /// applies its own configured tolerance). `0.0` keeps Σ exact and the
    /// transmission bit-identical to the dense Caroli route.
    pub sigma_compress_tol: f64,
    /// Accelerator runtime for the Eq. 5 solve (direct path only; the
    /// ladder always runs on the host, matching the pre-engine behavior).
    pub runtime: Option<&'rt AccelRuntime>,
}

impl PointPolicy<'static> {
    /// Single attempt with the configured method; errors surface as-is.
    pub fn direct() -> Self {
        PointPolicy::default()
    }

    /// Full escalation ladder (the sweep's per-point behavior).
    pub fn robust() -> Self {
        PointPolicy { robust: true, ..PointPolicy::default() }
    }

    /// Ladder + cache interpolation: a point bracketed by a validated
    /// interval skips the OBC solves entirely and reports
    /// [`METHOD_CACHE_INTERP`] with its error bound in
    /// [`PointOutcome::interp_bound`].
    pub fn interpolating() -> Self {
        PointPolicy { robust: true, allow_interp: true, ..PointPolicy::default() }
    }

    /// Boundary-block-only NEGF: only `G_{0,0}`, `G_{0,n−1}`, `G_{n−1,n−1}`
    /// are ever materialized and Σ stays in its compressed form end to
    /// end. The point reports [`transport::METHOD_BOUNDARY`] with the
    /// recorded Σ-compression bound in [`PointOutcome::interp_bound`].
    pub fn transmission_only() -> Self {
        PointPolicy { transmission_only: true, ..PointPolicy::default() }
    }
}

impl<'rt> PointPolicy<'rt> {
    /// Attaches an accelerator runtime (used by the direct path).
    pub fn with_runtime<'a>(self, rt: &'a AccelRuntime) -> PointPolicy<'a> {
        PointPolicy {
            robust: self.robust,
            allow_interp: self.allow_interp,
            transmission_only: self.transmission_only,
            sigma_compress_tol: self.sigma_compress_tol,
            runtime: Some(rt),
        }
    }

    /// Sets the Σ-compression tolerance used by the cacheless
    /// transmission-only path.
    pub fn with_sigma_compression(mut self, tol: f64) -> Self {
        self.sigma_compress_tol = tol;
        self
    }
}

impl std::fmt::Debug for PointPolicy<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PointPolicy")
            .field("robust", &self.robust)
            .field("allow_interp", &self.allow_interp)
            .field("transmission_only", &self.transmission_only)
            .field("sigma_compress_tol", &self.sigma_compress_tol)
            .field("runtime", &self.runtime.is_some())
            .finish()
    }
}

/// Builder of [`TransportEngine`]; see [`TransportEngine::builder`].
pub struct TransportEngineBuilder {
    device: Device,
    config: Option<TransportConfig>,
    scheduler: Option<Arc<Scheduler>>,
    cache: CachePolicy,
    cache_config: Option<CacheConfig>,
}

impl TransportEngineBuilder {
    /// Overrides the device's transport configuration.
    pub fn config(mut self, cfg: TransportConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    /// Scheduler pool the engine's sweeps run on (defaults to the
    /// process-global pool at sweep time).
    pub fn scheduler(mut self, sched: Arc<Scheduler>) -> Self {
        self.scheduler = Some(sched);
        self
    }

    /// Cache policy ([`CachePolicy::Auto`] honors `QTX_OBC_CACHE_BYTES`).
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self
    }

    /// Creates a private cache with these knobs (the way to enable the
    /// interpolation layer, which the env-armed global cache keeps off).
    pub fn cache_config(mut self, cfg: CacheConfig) -> Self {
        self.cache_config = Some(cfg);
        self
    }

    /// Finishes the engine. Infallible — every knob combination is
    /// meaningful ([`Self::cache_config`] takes precedence over
    /// [`Self::cache`] when both are set).
    pub fn build(self) -> TransportEngine {
        let mut device = self.device;
        if let Some(cfg) = self.config {
            device.config = cfg;
        }
        let cache = match self.cache_config {
            Some(cfg) => Some(Arc::new(SigmaCache::new(cfg))),
            None => self.cache.resolve(),
        };
        TransportEngine {
            config: device.config,
            device: Some(device),
            scheduler: self.scheduler,
            cache,
            dks: Mutex::new(HashMap::new()),
        }
    }
}

/// A transport session over one device: the single front door for point
/// solves and sweeps. Cheap to share behind an `Arc`; all interior state
/// is synchronized.
pub struct TransportEngine {
    /// `None` for an engine fixed on pre-folded `DeviceK`s
    /// ([`TransportEngine::from_device_k`]): point solves work on the
    /// seeded momenta, sweeps (which re-fold per kz) are unavailable.
    device: Option<Device>,
    config: TransportConfig,
    scheduler: Option<Arc<Scheduler>>,
    cache: Option<Arc<SigmaCache>>,
    /// Folded `DeviceK` (plus its cache handle with the lead hashes
    /// computed once), memoized per `kz` bit pattern.
    dks: Mutex<HashMap<u64, FoldedK>>,
}

/// A folded device at one `kz` together with its per-lead cache handle.
type FoldedK = (Arc<DeviceK>, Option<CacheHandle>);

impl std::fmt::Debug for TransportEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransportEngine")
            .field("config", &self.config)
            .field("cache", &self.cache)
            .finish_non_exhaustive()
    }
}

impl TransportEngine {
    /// Starts building an engine over `device`.
    pub fn builder(device: Device) -> TransportEngineBuilder {
        TransportEngineBuilder {
            device,
            config: None,
            scheduler: None,
            cache: CachePolicy::Auto,
            cache_config: None,
        }
    }

    /// An engine with all defaults (env-armed cache, global scheduler).
    pub fn new(device: Device) -> TransportEngine {
        TransportEngine::builder(device).build()
    }

    /// An engine fixed on one pre-folded [`DeviceK`] — the migration path
    /// for pipelines that assemble lead/device blocks by hand and never
    /// had a [`Device`]. Point solves work at the seeded `kz` (and any
    /// other `kz` the caller seeds through additional `from_device_k`
    /// engines); [`Self::sweep`] is unavailable and errors. The cache
    /// resolves through [`CachePolicy::Auto`], like [`Self::new`].
    pub fn from_device_k(dk: DeviceK, config: TransportConfig) -> TransportEngine {
        let cache = CachePolicy::Auto.resolve();
        let kz = dk.kz;
        let dk = Arc::new(dk);
        let handle = cache.as_ref().map(|c| CacheHandle::for_dk(c.clone(), &dk));
        let dks = Mutex::new(HashMap::from([(kz.to_bits(), (dk, handle))]));
        TransportEngine { device: None, config, scheduler: None, cache, dks }
    }

    /// The device this engine solves on — `None` for a fixed-`DeviceK`
    /// engine ([`Self::from_device_k`]).
    pub fn device(&self) -> Option<&Device> {
        self.device.as_ref()
    }

    /// The active transport configuration.
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// Counter snapshot of the engine's cache, `None` when caching is off.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The engine's cache, if any (share it across engines via
    /// [`CachePolicy::Shared`] to keep Σ warm between sessions).
    pub fn cache(&self) -> Option<&Arc<SigmaCache>> {
        self.cache.as_ref()
    }

    /// The folded [`DeviceK`] at `kz`: always available on a device-backed
    /// engine (folding and memoizing on first use), only at seeded momenta
    /// on a fixed-`DeviceK` engine. Observable post-processing
    /// (`bond_current_of_state` and friends) borrows the blocks from here
    /// instead of keeping a second copy outside the engine.
    pub fn device_k(&self, kz: f64) -> Option<Arc<DeviceK>> {
        self.dk_at(kz).map(|(dk, _)| dk)
    }

    fn dk_at(&self, kz: f64) -> Option<(Arc<DeviceK>, Option<CacheHandle>)> {
        let mut dks = self.dks.lock().expect("engine dk map");
        match (dks.get(&kz.to_bits()), &self.device) {
            (Some(found), _) => Some(found.clone()),
            (None, Some(device)) => {
                let dk = Arc::new(device.at_kz(kz));
                let handle = self.cache.as_ref().map(|c| CacheHandle::for_dk(c.clone(), &dk));
                let folded = (dk, handle);
                dks.insert(kz.to_bits(), folded.clone());
                Some(folded)
            }
            // Fixed-`DeviceK` engine queried off its seeded momentum:
            // nothing to fold from.
            (None, None) => None,
        }
    }

    /// Solves one (E, kz) pixel under `policy`. Always returns a
    /// [`RobustSolve`] so callers see the same record shape whichever
    /// path produced the point; collapse with [`RobustSolve::into_result`]
    /// when only the result matters.
    pub fn solve_point(&self, e: f64, kz: f64, policy: &PointPolicy<'_>) -> RobustSolve {
        let start = Instant::now();
        let Some((dk, handle)) = self.dk_at(kz) else {
            return RobustSolve {
                result: None,
                outcome: PointOutcome {
                    method_used: transport::METHOD_FAILED,
                    attempts: 0,
                    escalations: 0,
                    residual: f64::INFINITY,
                    eta: 0.0,
                    interp_bound: 0.0,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                },
                error: Some(TransportError::Panic {
                    what: format!(
                        "engine fixed on a pre-folded DeviceK has no device to fold kz={kz}"
                    ),
                }),
            };
        };
        let cfg = &self.config;
        if policy.transmission_only {
            return self.boundary_point(&dk, handle.as_ref(), e, policy.sigma_compress_tol);
        }
        if policy.allow_interp {
            if let Some(h) = &handle {
                if let Some(rs) = self.try_interp_point(&dk, h, e) {
                    return rs;
                }
            }
        }
        if policy.robust {
            return transport::solve_point_robust_raw(&dk, e, cfg, handle.as_ref());
        }
        let start = Instant::now();
        match transport::solve_point_direct(&dk, e, cfg, policy.runtime, handle.as_ref()) {
            Ok(result) => RobustSolve {
                result: Some(result),
                outcome: PointOutcome {
                    method_used: 0,
                    attempts: 1,
                    escalations: 0,
                    residual: 0.0,
                    eta: 0.0,
                    interp_bound: 0.0,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                },
                error: None,
            },
            Err(error) => RobustSolve {
                result: None,
                outcome: PointOutcome {
                    method_used: transport::METHOD_FAILED,
                    attempts: 1,
                    escalations: 0,
                    residual: f64::INFINITY,
                    eta: 0.0,
                    interp_bound: 0.0,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                },
                error: Some(error),
            },
        }
    }

    /// Transmission-only fast path: Σ flows compressed from the cache (or
    /// a fresh solve) into the boundary-block RGF; only three Green's
    /// function blocks are ever materialized. The recorded Σ-compression
    /// bound rides in [`PointOutcome::interp_bound`].
    fn boundary_point(
        &self,
        dk: &DeviceK,
        handle: Option<&CacheHandle>,
        e: f64,
        compress_tol: f64,
    ) -> RobustSolve {
        let start = Instant::now();
        match transport::solve_point_transmission_only(dk, e, &self.config, handle, compress_tol) {
            Ok((result, bound)) => RobustSolve {
                result: Some(result),
                outcome: PointOutcome {
                    method_used: METHOD_BOUNDARY,
                    attempts: 1,
                    escalations: 0,
                    residual: 0.0,
                    eta: 0.0,
                    interp_bound: bound,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                },
                error: None,
            },
            Err(error) => RobustSolve {
                result: None,
                outcome: PointOutcome {
                    method_used: transport::METHOD_FAILED,
                    attempts: 1,
                    escalations: 0,
                    residual: f64::INFINITY,
                    eta: 0.0,
                    interp_bound: 0.0,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                },
                error: Some(error),
            },
        }
    }

    /// Interpolation fast path: both sides must be servable from the
    /// cache (an exact stored frame counts; at least one side must come
    /// from a validated interval for this to beat the plain hit path).
    /// The transmission then comes from the mode-free Caroli route, like
    /// the decimation rung — interpolated Σ carries no mode sets.
    fn try_interp_point(&self, dk: &DeviceK, h: &CacheHandle, e: f64) -> Option<RobustSolve> {
        let start = Instant::now();
        let cfg = &self.config;
        let side_sigma = |side: Side| -> Option<(ZMat, f64)> {
            let hash = h.hash_of(side);
            if let Some(exact) = h.cache().lookup_exact(hash, e, 0.0, side, cfg.obc) {
                return Some((exact.sigma, 0.0));
            }
            h.cache().try_interpolate(hash, e, 0.0, side, cfg.obc)
        };
        let (sigma_l, bound_l) = side_sigma(Side::Left)?;
        let (sigma_r, bound_r) = side_sigma(Side::Right)?;
        let bound = bound_l.max(bound_r);
        if bound == 0.0 {
            // Both sides were exact hits: let the normal path produce the
            // full wave-function result instead of the Caroli fallback.
            return None;
        }
        let t = caroli_from_sigmas(dk, e, 0.0, &sigma_l, &sigma_r).ok()?;
        if !t.is_finite() {
            return None;
        }
        Some(RobustSolve {
            result: Some(EnergyPointResult {
                e,
                kz: dk.kz,
                transmission: t,
                transmission_rl: t,
                reflection: 0.0,
                channels: (0, 0),
                psi: ZMat::zeros(0, 0),
                m_left: 0,
                sigma_l,
                sigma_r,
            }),
            outcome: PointOutcome {
                method_used: METHOD_CACHE_INTERP,
                attempts: 1,
                escalations: 0,
                residual: 0.0,
                eta: 0.0,
                interp_bound: bound,
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
            },
            error: None,
        })
    }

    /// Runs a sweep with default options (engine scheduler + cache).
    pub fn sweep(&self, plan: &SweepPlan, n_ranks: usize) -> TransportResult<SweepResult> {
        self.sweep_resumable(plan, n_ranks, &SweepOptions::default())
    }

    /// [`Self::sweep`] with explicit options. `opts.scheduler = None`
    /// inherits the engine's pool; `opts.cache = Auto` inherits the
    /// engine's cache (or stays off when the engine has none — an
    /// engine-level "Auto" has already been resolved at build time).
    pub fn sweep_resumable(
        &self,
        plan: &SweepPlan,
        n_ranks: usize,
        opts: &SweepOptions,
    ) -> TransportResult<SweepResult> {
        let Some(device) = &self.device else {
            return Err(TransportError::Panic {
                what: "sweeps need a full Device; this engine is fixed on a pre-folded DeviceK \
                       (TransportEngine::from_device_k)"
                    .into(),
            });
        };
        parallel_sweep_resumable(device, plan, n_ranks, &self.inherit(opts))
    }

    /// [`Self::sweep_resumable`] with adaptive energy-grid refinement
    /// (see [`crate::refine::parallel_sweep_refined`]); the engine's pool
    /// and cache are inherited the same way.
    pub fn sweep_refined(
        &self,
        base: &SweepPlan,
        n_ranks: usize,
        opts: &SweepOptions,
        cfg: &crate::refine::RefineConfig,
    ) -> TransportResult<crate::refine::RefinedSweep> {
        let Some(device) = &self.device else {
            return Err(TransportError::Panic {
                what: "sweeps need a full Device; this engine is fixed on a pre-folded DeviceK \
                       (TransportEngine::from_device_k)"
                    .into(),
            });
        };
        crate::refine::parallel_sweep_refined(device, base, n_ranks, &self.inherit(opts), cfg)
    }

    /// Fills unset sweep options from the engine: `scheduler = None`
    /// inherits the engine's pool; `cache = Auto` inherits the engine's
    /// cache (or stays off when the engine has none — an engine-level
    /// "Auto" has already been resolved at build time).
    fn inherit(&self, opts: &SweepOptions) -> SweepOptions {
        let mut o = opts.clone();
        if o.scheduler.is_none() {
            o.scheduler = self.scheduler.clone();
        }
        if matches!(o.cache, CachePolicy::Auto) {
            o.cache = match &self.cache {
                Some(c) => CachePolicy::Shared(c.clone()),
                None => CachePolicy::Off,
            };
        }
        o
    }
}
