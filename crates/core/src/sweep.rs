//! Three-level parallel (k, E, domain) sweep (§4, Fig. 9) with
//! per-point fault tolerance.
//!
//! "The momentum k and energy E points are almost embarrassingly parallel,
//! while FEAST+SplitSolve provides a 1-D spatial domain decomposition."
//! The sweep distributes simulated MPI ranks over momentum groups with the
//! dynamic node-per-k allocation of ref. [45] (groups sized by their
//! energy-point counts), splits each group's communicator over its energy
//! points, and leaves the spatial level to SplitSolve's partitions inside
//! each rank.
//!
//! Every point runs through the escalation ladder of
//! [`crate::transport::solve_energy_point_robust`]; its [`PointOutcome`]
//! travels in an 80-byte record through the gather tree. Unrecoverable
//! points are interpolated from their healthy neighbors in energy (with an
//! explicit error bound) instead of silently contributing `T = 0`, and the
//! aggregate [`SweepHealth`] reports what the ladder had to do. A sweep
//! can checkpoint completed records and resume bit-identically (see
//! [`crate::checkpoint`]).
//!
//! Since PR 7 the point solves run on the persistent supervised pool of
//! [`crate::scheduler`] (panic isolation, retry/backoff, deadlines,
//! quarantine — see `docs/scheduler.md`); the simulated MPI ranks then
//! only encode and gather the finished records, so `n_ranks` models the
//! Fig. 9 communication topology while `QTX_SCHED_WORKERS` (or
//! [`SweepOptions::scheduler`]) controls the real compute threads.

use crate::cache::{CacheHandle, CachePolicy, SigmaCache};
use crate::checkpoint;
use crate::device::Device;
use crate::energygrid::EnergyGrid;
use crate::error::{TransportError, TransportResult};
use crate::scheduler::{self, Scheduler};
use crate::transport::{solve_point_robust_raw, METHOD_FAILED};
use qtx_mpi::{run_world, Comm, CostModel};
use qtx_obc::Side;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

/// Work description of one sweep.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Momentum points `(kz, weight)`.
    pub k_points: Vec<(f64, f64)>,
    /// Energy grid per momentum (k-dependent sizes allowed, §5.D:
    /// "the total number of energy points ... varies with the momentum").
    pub energies: Vec<Vec<f64>>,
}

impl SweepPlan {
    /// Builds a plan from a device: its kz set and an automatic grid per k.
    pub fn from_device(dev: &Device, d_min: f64, d_max: f64) -> SweepPlan {
        let k_points = dev.kz_points();
        let (lo_w, hi_w) = dev.fermi_window(10.0);
        let energies = k_points
            .iter()
            .map(|&(kz, _)| {
                let dk = dev.at_kz(kz);
                let (band_lo, band_hi) = dk.lead_l.band_window(16);
                let lo = lo_w.max(band_lo - 0.02);
                let hi = hi_w.min(band_hi + 0.02);
                if hi <= lo {
                    Vec::new()
                } else {
                    EnergyGrid::auto(&dk.lead_l, lo, hi, d_min, d_max).points
                }
            })
            .collect();
        SweepPlan { k_points, energies }
    }

    /// Total energy points across momenta (the Table III workload count).
    pub fn total_points(&self) -> usize {
        self.energies.iter().map(Vec::len).sum()
    }

    /// Dynamic node allocation (ref. [45]): ranks per momentum
    /// proportional to its energy-point count, with at least one rank per
    /// non-empty momentum.
    ///
    /// Contract (so shard-sizing callers need no edge-case guards):
    ///
    /// * empty momenta always get 0 ranks — ranks are never parked on
    ///   workless groups;
    /// * a plan with zero total points (or `n_ranks == 0`) allocates
    ///   all-zero;
    /// * with `n_ranks ≥` the number of non-empty momenta the allocation
    ///   sums to exactly `n_ranks` (more ranks than points simply
    ///   over-subscribe the largest groups);
    /// * with fewer ranks than non-empty momenta the minimum-one rule
    ///   wins and the sum equals the non-empty count (the sweep's pooled
    ///   fallback path handles that regime instead).
    pub fn allocate_ranks(&self, n_ranks: usize) -> Vec<usize> {
        let nk = self.k_points.len();
        let mut alloc = vec![0usize; nk];
        let total = self.total_points();
        if n_ranks == 0 || total == 0 {
            return alloc;
        }
        let mut assigned = 0usize;
        for (i, es) in self.energies.iter().enumerate() {
            if es.is_empty() {
                continue;
            }
            let share = ((es.len() as f64 / total as f64) * n_ranks as f64).floor() as usize;
            alloc[i] = share.max(1);
            assigned += alloc[i];
        }
        // Distribute leftovers to the largest non-empty groups.
        let mut order: Vec<usize> = (0..nk).filter(|&i| !self.energies[i].is_empty()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.energies[i].len()));
        let mut idx = 0;
        while assigned < n_ranks {
            alloc[order[idx % order.len()]] += 1;
            assigned += 1;
            idx += 1;
        }
        while assigned > n_ranks {
            // Trim over-assignment (when minimums exceeded the budget).
            if let Some(&i) = order.iter().find(|&&i| alloc[i] > 1) {
                alloc[i] -= 1;
                assigned -= 1;
            } else {
                break;
            }
        }
        alloc
    }

    /// Canonical work list: every `(k_idx, e_idx)` pair in `(k, E)` order.
    /// Checkpoints, resume skipping, and deterministic kill limits are all
    /// defined against this ordering.
    pub fn canonical_points(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.total_points());
        for (k_idx, es) in self.energies.iter().enumerate() {
            for e_idx in 0..es.len() {
                out.push((k_idx as u32, e_idx as u32));
            }
        }
        out
    }
}

/// Point status: the ladder produced it directly.
pub const STATUS_OK: u8 = 0;
/// Point status: every rung failed and no neighbor could patch it.
pub const STATUS_FAILED: u8 = 1;
/// Point status: failed, then interpolated from healthy neighbors.
pub const STATUS_INTERPOLATED: u8 = 2;

/// Serialized size of one [`PointRecord`].
pub const POINT_RECORD_BYTES: usize = 80;

/// One sweep point with its full robustness record — the 80-byte unit of
/// both the gather payloads and the checkpoint file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointRecord {
    /// Momentum index into [`SweepPlan::k_points`].
    pub k_idx: u32,
    /// Energy index into that momentum's grid.
    pub e_idx: u32,
    /// Transverse momentum.
    pub kz: f64,
    /// Momentum weight.
    pub w: f64,
    /// Energy (eV).
    pub e: f64,
    /// Transmission (`NaN` while `status == STATUS_FAILED`).
    pub t: f64,
    /// Ladder rung that produced the point ([`crate::transport::LADDER_METHOD_NAMES`]).
    pub method: u8,
    /// One of [`STATUS_OK`], [`STATUS_FAILED`], [`STATUS_INTERPOLATED`].
    pub status: u8,
    /// Solve attempts spent on the point.
    pub attempts: u16,
    /// Ladder escalations spent on the point.
    pub escalations: u32,
    /// Max-norm residual of the accepted solve.
    pub residual: f64,
    /// Broadening η of the accepted solve.
    pub eta: f64,
    /// Wall time (ms) — excluded from checkpoint identity.
    pub wall_ms: f64,
    /// Error bound of the interpolated value (0 for solved points).
    pub interp_bound: f64,
}

impl PointRecord {
    /// Appends the little-endian 80-byte frame.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.k_idx.to_le_bytes());
        out.extend_from_slice(&self.e_idx.to_le_bytes());
        for v in [self.kz, self.w, self.e, self.t] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.push(self.method);
        out.push(self.status);
        out.extend_from_slice(&self.attempts.to_le_bytes());
        out.extend_from_slice(&self.escalations.to_le_bytes());
        for v in [self.residual, self.eta, self.wall_ms, self.interp_bound] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Decodes one exact 80-byte frame. Truncated or oversized frames are
    /// a typed [`qtx_mpi::FrameError`] (mirroring
    /// [`qtx_mpi::exact_frames`]) instead of a panic — a crafted or torn
    /// record stream must never unwind a sweep or a checkpoint load.
    pub fn decode(frame: &[u8]) -> Result<PointRecord, qtx_mpi::FrameError> {
        if frame.len() != POINT_RECORD_BYTES {
            return Err(qtx_mpi::FrameError {
                frame_size: POINT_RECORD_BYTES,
                payload_len: frame.len(),
            });
        }
        use qtx_mpi::frame::{read_f64, read_u16, read_u32};
        Ok(PointRecord {
            k_idx: read_u32(frame, 0),
            e_idx: read_u32(frame, 4),
            kz: read_f64(frame, 8),
            w: read_f64(frame, 16),
            e: read_f64(frame, 24),
            t: read_f64(frame, 32),
            method: frame[40],
            status: frame[41],
            attempts: read_u16(frame, 42),
            escalations: read_u32(frame, 44),
            residual: read_f64(frame, 48),
            eta: read_f64(frame, 56),
            wall_ms: read_f64(frame, 64),
            interp_bound: read_f64(frame, 72),
        })
    }

    /// Bit-level identity of everything except wall time (timing differs
    /// between a killed-and-resumed run and an uninterrupted one; the
    /// physics must not).
    pub fn identity_eq(&self, other: &PointRecord) -> bool {
        self.k_idx == other.k_idx
            && self.e_idx == other.e_idx
            && self.kz.to_bits() == other.kz.to_bits()
            && self.w.to_bits() == other.w.to_bits()
            && self.e.to_bits() == other.e.to_bits()
            && self.t.to_bits() == other.t.to_bits()
            && self.method == other.method
            && self.status == other.status
            && self.attempts == other.attempts
            && self.escalations == other.escalations
            && self.residual.to_bits() == other.residual.to_bits()
            && self.eta.to_bits() == other.eta.to_bits()
            && self.interp_bound.to_bits() == other.interp_bound.to_bits()
    }
}

/// Aggregate robustness accounting of one sweep.
///
/// The per-record counters (`total_points` … `max_interp_bound`) are
/// derived from the canonical record set and are bit-identical across
/// resumes and worker counts. The scheduler counters (`panics`,
/// `sched_retries`, `quarantined`, `faults_injected`) are **run-scoped**:
/// they count what *this process* did, so a resumed run reports only its
/// own share. `stragglers` is wall-time-derived and therefore excluded
/// from equality.
#[derive(Debug, Clone, Default)]
pub struct SweepHealth {
    /// Points the sweep produced (solved + interpolated + failed).
    pub total_points: usize,
    /// Points solved by a rung above the configured method.
    pub escalated: usize,
    /// Points no rung and no neighbor could produce.
    pub failed: usize,
    /// Points patched by neighbor interpolation.
    pub interpolated: usize,
    /// Solve attempts summed over all points.
    pub attempts: u64,
    /// Deterministically injected faults observed during this run
    /// (0 unless the `fault-inject` harness is armed).
    pub faults_injected: u64,
    /// Panicking point solves caught by the scheduler this run.
    pub panics: u64,
    /// Scheduler-level retries (full extra ladder walks) this run.
    pub sched_retries: u64,
    /// Points whose scheduler retry budget ran out this run — handed to
    /// the interpolation path as poison points.
    pub quarantined: usize,
    /// Points the deadline supervisor flagged as overdue this run
    /// (wall-time-derived — excluded from [`PartialEq`]).
    pub stragglers: usize,
    /// Self-energy cache hits this run (0 when no cache is armed).
    /// Hit/miss splits are scheduling-dependent — two workers racing the
    /// same key may both miss — so all three cache counters are excluded
    /// from [`PartialEq`], like `stragglers`.
    pub cache_hits: u64,
    /// Self-energy cache misses (real OBC solves) this run.
    pub cache_misses: u64,
    /// Interpolated self-energies served this run (always 0 on the sweep
    /// path, which never interpolates Σ; present for engine-level sweeps
    /// sharing a cache with interpolating point queries).
    pub cache_interp: u64,
    /// Worst accepted residual across solved points.
    pub worst_residual: f64,
    /// Largest interpolation error bound.
    pub max_interp_bound: f64,
}

/// Everything except `stragglers` (wall-time-derived) and the cache
/// counters (scheduling-dependent): both may legitimately differ between
/// two otherwise bit-identical schedules.
impl PartialEq for SweepHealth {
    fn eq(&self, other: &Self) -> bool {
        self.total_points == other.total_points
            && self.escalated == other.escalated
            && self.failed == other.failed
            && self.interpolated == other.interpolated
            && self.attempts == other.attempts
            && self.faults_injected == other.faults_injected
            && self.panics == other.panics
            && self.sched_retries == other.sched_retries
            && self.quarantined == other.quarantined
            && self.worst_residual == other.worst_residual
            && self.max_interp_bound == other.max_interp_bound
    }
}

impl SweepHealth {
    pub(crate) fn from_records(
        records: &[PointRecord],
        faults_injected: u64,
        stats: scheduler::BatchStats,
        cache: (u64, u64, u64),
    ) -> SweepHealth {
        let mut h = SweepHealth {
            total_points: records.len(),
            faults_injected,
            panics: stats.panics,
            sched_retries: stats.retries,
            quarantined: stats.quarantined,
            stragglers: stats.stragglers,
            cache_hits: cache.0,
            cache_misses: cache.1,
            cache_interp: cache.2,
            ..Default::default()
        };
        for r in records {
            h.attempts += r.attempts as u64;
            match r.status {
                STATUS_FAILED => h.failed += 1,
                STATUS_INTERPOLATED => h.interpolated += 1,
                _ => {
                    if r.method != 0 {
                        h.escalated += 1;
                    }
                    if r.residual.is_finite() {
                        h.worst_residual = h.worst_residual.max(r.residual);
                    }
                }
            }
            if r.interp_bound.is_finite() {
                h.max_interp_bound = h.max_interp_bound.max(r.interp_bound);
            }
        }
        h
    }
}

/// Aggregated sweep output.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// `(kz, weight, energy, transmission)` tuples in canonical
    /// `(k_idx, e_idx)` order (`NaN` transmission for failed points).
    pub samples: Vec<(f64, f64, f64, f64)>,
    /// k-summed transmission spectrum, sorted by energy (failed points
    /// excluded).
    pub spectrum: Vec<(f64, f64)>,
    /// Virtual communication seconds (max over ranks).
    pub comm_seconds: f64,
    /// Per-point robustness records, canonical order.
    pub records: Vec<PointRecord>,
    /// Aggregate robustness accounting.
    pub health: SweepHealth,
}

/// How the sweep groups energy points into scheduler tasks.
///
/// Batching amortizes the per-task fixed costs (deque traffic, inflight
/// bookkeeping, one warm Σ-cache anchor and workspace pool per chunk) over
/// neighboring energy points of the same momentum — the
/// factorization-structure reuse of §5.B: consecutive points share the
/// same block structure, so their solves profit from staying on one
/// worker. Batching never changes *what* is computed: every point still
/// solves independently, in canonical order within its chunk, and results
/// are bit-identical to [`Batching::PerPoint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Batching {
    /// One scheduler task per energy point — the PR-6/7 fault-tolerance
    /// semantics (per-point retries, quarantine and panic fallbacks) that
    /// the fault battery pins. The default.
    #[default]
    PerPoint,
    /// Chunk size from the `qtx-machine` FLOP ledger
    /// ([`qtx_machine::DeadlineModel::batch_points`]): enough points per
    /// task to fill the deadline floor, so paper-scale devices stay
    /// per-point while small devices batch aggressively.
    Auto,
    /// Fixed number of points per task (clamped to ≥ 1).
    Fixed(usize),
}

/// Knobs of [`parallel_sweep_resumable`]. Construct through
/// [`SweepOptions::builder`] — the struct is `#[non_exhaustive]` so new
/// knobs (like `cache`) can land without breaking downstream literals,
/// and the builder rejects incompatible combinations with a typed error
/// instead of letting them silently misbehave at sweep time.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct SweepOptions {
    /// Checkpoint file: loaded (if present) before sweeping, written
    /// after. Completed points are never recomputed.
    pub checkpoint: Option<PathBuf>,
    /// Stop after at most this many *new* points, in canonical order —
    /// the deterministic "kill" used by the resume property tests.
    pub max_new_points: Option<usize>,
    /// Pool to solve on; `None` uses the process-wide
    /// [`crate::scheduler::global`] pool. Tests pass explicit pools to
    /// pin worker counts.
    pub scheduler: Option<Arc<Scheduler>>,
    /// Self-energy cache policy for the point solves.
    pub cache: CachePolicy,
    /// Energy-point batching (see [`Batching`]). With a cache armed and
    /// any non-[`Batching::PerPoint`] mode, each chunk additionally
    /// splits into an OBC Σ-prefetch task and a dependent interior-solve
    /// task, overlapping boundary and interior work across chunks.
    pub batching: Batching,
}

impl SweepOptions {
    /// Starts a validated builder.
    pub fn builder() -> SweepOptionsBuilder {
        SweepOptionsBuilder::default()
    }
}

/// Invalid knob combinations [`SweepOptionsBuilder::build`] rejects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepOptionsError {
    /// `max_new_points` caps how much *new* work lands in the checkpoint
    /// before the sweep stops; without a checkpoint the capped run's
    /// remainder would simply be discarded.
    MaxNewPointsWithoutCheckpoint {
        /// The offending cap.
        max_new_points: usize,
    },
    /// A zero cap would checkpoint forever without progressing.
    ZeroMaxNewPoints,
}

impl std::fmt::Display for SweepOptionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepOptionsError::MaxNewPointsWithoutCheckpoint { max_new_points } => write!(
                f,
                "max_new_points ({max_new_points}) requires a checkpoint: the capped run's \
                 progress would otherwise be discarded"
            ),
            SweepOptionsError::ZeroMaxNewPoints => {
                write!(f, "max_new_points must be at least 1")
            }
        }
    }
}

impl std::error::Error for SweepOptionsError {}

/// Builder of [`SweepOptions`]; see [`SweepOptions::builder`].
#[derive(Debug, Clone, Default)]
pub struct SweepOptionsBuilder {
    checkpoint: Option<PathBuf>,
    max_new_points: Option<usize>,
    scheduler: Option<Arc<Scheduler>>,
    cache: CachePolicy,
    batching: Batching,
}

impl SweepOptionsBuilder {
    /// Checkpoint file to resume from / persist to.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Deterministic kill: stop after this many new points.
    pub fn max_new_points(mut self, n: usize) -> Self {
        self.max_new_points = Some(n);
        self
    }

    /// Explicit scheduler pool (tests pin worker counts with this).
    pub fn scheduler(mut self, sched: Arc<Scheduler>) -> Self {
        self.scheduler = Some(sched);
        self
    }

    /// Self-energy cache policy.
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self
    }

    /// Energy-point batching mode (see [`Batching`]).
    pub fn batching(mut self, batching: Batching) -> Self {
        self.batching = batching;
        self
    }

    /// Validates and produces the options.
    pub fn build(self) -> Result<SweepOptions, SweepOptionsError> {
        match self.max_new_points {
            Some(0) => return Err(SweepOptionsError::ZeroMaxNewPoints),
            Some(n) if self.checkpoint.is_none() => {
                return Err(SweepOptionsError::MaxNewPointsWithoutCheckpoint { max_new_points: n })
            }
            _ => {}
        }
        Ok(SweepOptions {
            checkpoint: self.checkpoint,
            max_new_points: self.max_new_points,
            scheduler: self.scheduler,
            cache: self.cache,
            batching: self.batching,
        })
    }
}

/// Runs the sweep over `n_ranks` simulated MPI ranks.
///
/// With at least one rank per momentum the hierarchy of Fig. 9 applies
/// (k-groups → energy distribution). With fewer ranks than momenta, all
/// ranks pool and stride the flattened (k, E) work list — "each
/// point/iteration is processed sequentially" (§5.D).
pub fn parallel_sweep(
    dev: &Device,
    plan: &SweepPlan,
    n_ranks: usize,
) -> TransportResult<SweepResult> {
    parallel_sweep_resumable(dev, plan, n_ranks, &SweepOptions::default())
}

/// [`parallel_sweep`] with checkpoint/resume support. The union of a
/// killed run's checkpoint and its resumed completion is bit-identical
/// (modulo wall time) to an uninterrupted sweep.
pub fn parallel_sweep_resumable(
    dev: &Device,
    plan: &SweepPlan,
    n_ranks: usize,
    opts: &SweepOptions,
) -> TransportResult<SweepResult> {
    // Resume: load completed records, skip their (k, E) pairs.
    let mut done: Vec<PointRecord> = match &opts.checkpoint {
        Some(path) if path.exists() => checkpoint::load(path, plan)?,
        _ => Vec::new(),
    };
    let done_set: HashSet<(u32, u32)> = done.iter().map(|r| (r.k_idx, r.e_idx)).collect();
    let mut todo: Vec<(u32, u32)> =
        plan.canonical_points().into_iter().filter(|p| !done_set.contains(p)).collect();
    if let Some(limit) = opts.max_new_points {
        todo.truncate(limit);
    }

    let cache = opts.cache.resolve();
    let phase = solve_phase(dev, plan, todo, n_ranks, opts, cache.as_ref())?;
    done.extend(phase.records);
    done.sort_by_key(|r| (r.k_idx, r.e_idx));

    // Persist raw (pre-interpolation) records: the resumed run re-derives
    // interpolations over the full set, keeping the union bit-identical.
    if let Some(path) = &opts.checkpoint {
        checkpoint::save(path, plan, &done)?;
    }

    interpolate_failures(&mut done);
    let health =
        SweepHealth::from_records(&done, phase.faults_injected, phase.stats, phase.cache_delta);
    Ok(finalize(done, health, phase.comm_seconds))
}

/// Output of one [`solve_phase`] round: the freshly computed records plus
/// the run-scoped accounting deltas measured around the round.
pub(crate) struct SolvePhase {
    /// Decoded records for exactly the requested `todo` points.
    pub records: Vec<PointRecord>,
    /// Scheduler accounting for the round.
    pub stats: scheduler::BatchStats,
    /// Fault-injection draws that fired during the round.
    pub faults_injected: u64,
    /// `(hits, misses, interp_hits)` Σ-cache delta for the round.
    pub cache_delta: (u64, u64, u64),
    /// Virtual communication seconds (max over ranks).
    pub comm_seconds: f64,
}

/// One compute + communication round: solves `todo` on the supervised
/// pool, routes the finished records through the Fig. 9 rank topology
/// (virtual comm cost only — no recomputation), and decodes the gathered
/// frames. Both the plain resumable sweep and each adaptive-refinement
/// round run through this single path, so a refined sweep inherits every
/// robustness and determinism property of the flat one.
pub(crate) fn solve_phase(
    dev: &Device,
    plan: &SweepPlan,
    todo: Vec<(u32, u32)>,
    n_ranks: usize,
    opts: &SweepOptions,
    cache: Option<&Arc<SigmaCache>>,
) -> TransportResult<SolvePhase> {
    // Fault injection and cache counters are measured as deltas around
    // the round so a resumed run reports only its own share.
    let cache_before = cache.map(|c| c.stats());
    let injected_before = qtx_linalg::fault::injected_total();
    let (computed, stats) = compute_records(dev, plan, &todo, opts, cache);
    let faults_injected = qtx_linalg::fault::injected_total() - injected_before;
    let cache_delta = match (cache, cache_before) {
        (Some(c), Some(before)) => {
            let after = c.stats();
            (
                after.hits - before.hits,
                after.misses - before.misses,
                after.interp_hits - before.interp_hits,
            )
        }
        _ => (0, 0, 0),
    };

    let todo: Arc<HashSet<(u32, u32)>> = Arc::new(todo.into_iter().collect());
    let records: Arc<HashMap<(u32, u32), PointRecord>> =
        Arc::new(computed.into_iter().map(|r| ((r.k_idx, r.e_idx), r)).collect());
    let non_empty = plan.energies.iter().filter(|e| !e.is_empty()).count();
    let (payload_parts, comm_seconds) = if todo.is_empty() {
        (Vec::new(), 0.0)
    } else if n_ranks < non_empty.max(1) {
        pooled_worker(plan, n_ranks, todo, records)
    } else {
        hierarchical_worker(plan, n_ranks, todo, records)
    };

    // Decode the gathered frames, loudly rejecting torn payloads.
    let mut fresh = Vec::new();
    for part in &payload_parts {
        for frame in
            qtx_mpi::exact_frames(part, POINT_RECORD_BYTES).map_err(TransportError::Payload)?
        {
            fresh.push(PointRecord::decode(frame).map_err(TransportError::Payload)?);
        }
    }
    Ok(SolvePhase { records: fresh, stats, faults_injected, cache_delta, comm_seconds })
}

/// One scheduler chunk: a run of consecutive energy points of one
/// momentum, plus the shared structure they solve against. With
/// [`Batching::PerPoint`] every chunk holds exactly one point and the
/// scheduler semantics reduce to the historical per-point contract.
struct ChunkSpec {
    k_idx: u32,
    kz: f64,
    w: f64,
    /// `(e_idx, energy)` pairs, canonical (ascending `e_idx`) order.
    points: Vec<(u32, f64)>,
    dk: Arc<crate::device::DeviceK>,
    cfg: crate::device::TransportConfig,
    cache: Option<CacheHandle>,
}

impl ChunkSpec {
    /// Warms the Σ-cache for every point of the chunk at the first-rung
    /// parameters (η = 0, the configured OBC method) — exactly the keys
    /// the interior solve's ladder hits first. Failures are ignored: the
    /// solve task re-derives (and properly reports) any Σ this pass could
    /// not produce.
    fn prefetch_sigma(&self) {
        for &(_, e) in &self.points {
            let _ = crate::cache::cached_self_energy(
                self.cache.as_ref(),
                &self.dk.lead_l,
                e,
                0.0,
                Side::Left,
                self.cfg.obc,
            );
            let _ = crate::cache::cached_self_energy(
                self.cache.as_ref(),
                &self.dk.lead_r,
                e,
                0.0,
                Side::Right,
                self.cfg.obc,
            );
        }
    }
}

/// The two task flavors of the compute phase. A `Sigma` task prefetches a
/// chunk's boundary self-energies into the shared cache; its dependent
/// `Solve` task then runs the interior solves with warm Σ anchors —
/// overlapping one chunk's OBC work with another's interior work.
enum SweepTask {
    Sigma(Arc<ChunkSpec>),
    Solve(Arc<ChunkSpec>),
}

/// One robust point solve, packaged for the wire.
fn solve_record(c: &ChunkSpec, e_idx: u32, e: f64) -> PointRecord {
    let rs = solve_point_robust_raw(&c.dk, e, &c.cfg, c.cache.as_ref());
    let o = rs.outcome;
    PointRecord {
        k_idx: c.k_idx,
        e_idx,
        kz: c.kz,
        w: c.w,
        e,
        t: rs.result.as_ref().map_or(f64::NAN, |r| r.transmission),
        method: o.method_used,
        status: if o.method_used == METHOD_FAILED { STATUS_FAILED } else { STATUS_OK },
        attempts: o.attempts,
        escalations: o.escalations as u32,
        residual: o.residual,
        eta: o.eta,
        wall_ms: o.wall_ms,
        interp_bound: 0.0,
    }
}

/// Wire record for a point whose every scheduler attempt panicked: the
/// solve never returned, so no ladder diagnostics exist — the point is
/// failed and the interpolation path takes over.
fn panic_record(c: &ChunkSpec, e_idx: u32, e: f64, attempts: u32) -> PointRecord {
    PointRecord {
        k_idx: c.k_idx,
        e_idx,
        kz: c.kz,
        w: c.w,
        e,
        t: f64::NAN,
        method: METHOD_FAILED,
        status: STATUS_FAILED,
        attempts: attempts.min(u16::MAX as u32) as u16,
        escalations: 0,
        residual: f64::INFINITY,
        eta: 0.0,
        wall_ms: 0.0,
        interp_bound: 0.0,
    }
}

/// Soft per-point deadline from the `qtx-machine` FLOP ledger over this
/// device's actual block dimensions (§5.B: per-point work is
/// deterministic, so overdue means straggler, not noise).
fn point_deadline_ms(dk: &crate::device::DeviceK) -> f64 {
    let s = dk.h.block_size();
    qtx_machine::DeadlineModel::default().soft_deadline_ms(s, dk.h.num_blocks(), s)
}

/// Solves every `todo` point on the supervised pool, in canonical order,
/// returning the records plus the run-scoped scheduler accounting.
///
/// Escalation-ladder exhaustion surfaces as a scheduler retry (a fresh
/// full ladder walk, after backoff); a point that also exhausts the
/// scheduler budget — or whose key was quarantined by an earlier batch —
/// keeps its last failed record and flows into the interpolation path.
fn compute_records(
    dev: &Device,
    plan: &SweepPlan,
    todo: &[(u32, u32)],
    opts: &SweepOptions,
    cache: Option<&Arc<SigmaCache>>,
) -> (Vec<PointRecord>, scheduler::BatchStats) {
    if todo.is_empty() {
        return (Vec::new(), scheduler::BatchStats::default());
    }
    let sched: Arc<Scheduler> =
        opts.scheduler.clone().unwrap_or_else(|| scheduler::global().clone());
    // One folded-device build (and one pair of lead content hashes) per
    // momentum, shared across its points. Consecutive same-k runs of the
    // canonical todo list chunk into scheduler tasks.
    let mut dks: HashMap<u32, (Arc<crate::device::DeviceK>, Option<CacheHandle>)> = HashMap::new();
    let mut chunks: Vec<Arc<ChunkSpec>> = Vec::new();
    let mut i = 0usize;
    while i < todo.len() {
        let k_idx = todo[i].0;
        let mut j = i;
        while j < todo.len() && todo[j].0 == k_idx {
            j += 1;
        }
        let (kz, w) = plan.k_points[k_idx as usize];
        let (dk, handle) = dks
            .entry(k_idx)
            .or_insert_with(|| {
                let dk = Arc::new(dev.at_kz(kz));
                let handle = cache.map(|c| CacheHandle::for_dk(c.clone(), &dk));
                (dk, handle)
            })
            .clone();
        let size = match opts.batching {
            Batching::PerPoint => 1,
            Batching::Fixed(n) => n.max(1),
            Batching::Auto => {
                let s = dk.h.block_size();
                qtx_machine::DeadlineModel::default().batch_points(s, dk.h.num_blocks(), s)
            }
        };
        for run in todo[i..j].chunks(size) {
            let points = run
                .iter()
                .map(|&(_, e_idx)| (e_idx, plan.energies[k_idx as usize][e_idx as usize]))
                .collect();
            chunks.push(Arc::new(ChunkSpec {
                k_idx,
                kz,
                w,
                points,
                dk: dk.clone(),
                cfg: dev.config,
                cache: handle.clone(),
            }));
        }
        i = j;
    }
    // OBC/interior overlap: with a cache to carry the prefetched Σ and any
    // batching beyond the pinned per-point contract, every chunk splits
    // into a Σ-prefetch task and a dependent interior-solve task.
    let overlap = !matches!(opts.batching, Batching::PerPoint) && cache.is_some();
    /// Salts Σ-task keys away from their solve task's quarantine key.
    const SIGMA_KEY_SALT: u64 = 0x0051_063A_0BC0_FFEE;
    let mut items: Vec<SweepTask> = Vec::with_capacity(chunks.len() * if overlap { 2 } else { 1 });
    let mut keys: Vec<u64> = Vec::with_capacity(items.capacity());
    let mut deps: Vec<Option<u32>> = Vec::with_capacity(items.capacity());
    let mut max_len = 1usize;
    for c in &chunks {
        max_len = max_len.max(c.points.len());
        // Quarantine keys on the chunk's math identity (not plan indices),
        // matching how the fault harness keys its draws; a 1-point chunk
        // reproduces the historical per-point key exactly.
        let mut parts = vec![c.kz];
        parts.extend(c.points.iter().map(|&(_, e)| e));
        let solve_key = scheduler::stable_key(&parts);
        if overlap {
            items.push(SweepTask::Sigma(c.clone()));
            keys.push(solve_key ^ SIGMA_KEY_SALT);
            deps.push(None);
            let sigma_idx = (items.len() - 1) as u32;
            items.push(SweepTask::Solve(c.clone()));
            keys.push(solve_key);
            deps.push(Some(sigma_idx));
        } else {
            items.push(SweepTask::Solve(c.clone()));
            keys.push(solve_key);
            deps.push(None);
        }
    }
    let batch = scheduler::BatchOptions {
        deadline_ms: Some(point_deadline_ms(&chunks[0].dk) * max_len as f64),
        keys: Some(keys),
        max_retries: None,
        deps: if overlap { Some(deps) } else { None },
    };
    let reports = sched.execute(
        items,
        &batch,
        |_, task, attempt| match task {
            SweepTask::Sigma(c) => {
                c.prefetch_sigma();
                scheduler::TaskAttempt::Done(Vec::new())
            }
            SweepTask::Solve(c) => {
                let mut records = Vec::with_capacity(c.points.len());
                let mut any_failed = false;
                for &(e_idx, e) in &c.points {
                    // Opt-in injected panic site: fires *before* the
                    // ladder so the pool's catch_unwind is what must
                    // absorb it. The attempt number enters the key — a
                    // retry re-draws.
                    if qtx_linalg::fault::should_fail(
                        "sched_panic",
                        qtx_linalg::fault::key_of(&[c.kz, e, attempt as f64]),
                    ) {
                        panic!("injected scheduler panic at E={e} kz={} attempt {attempt}", c.kz);
                    }
                    let record = solve_record(c, e_idx, e);
                    any_failed |= record.status == STATUS_FAILED;
                    records.push(record);
                }
                if any_failed {
                    scheduler::TaskAttempt::Retry(records)
                } else {
                    scheduler::TaskAttempt::Done(records)
                }
            }
        },
        |_, task, attempts, _err| match task {
            SweepTask::Sigma(_) => Vec::new(),
            SweepTask::Solve(c) => {
                c.points.iter().map(|&(e_idx, e)| panic_record(c, e_idx, e, attempts)).collect()
            }
        },
    );
    let stats = scheduler::stats_of(&reports);
    (reports.into_iter().flat_map(|r| r.value).collect(), stats)
}

/// Fig. 9 hierarchy: k-groups sized by workload, energies round-robin
/// inside each group, two-level gather to world root. Ranks only encode
/// and gather the pool-computed records.
fn hierarchical_worker(
    plan: &SweepPlan,
    n_ranks: usize,
    todo: Arc<HashSet<(u32, u32)>>,
    records: Arc<HashMap<(u32, u32), PointRecord>>,
) -> (Vec<Vec<u8>>, f64) {
    let alloc = plan.allocate_ranks(n_ranks);
    // Map world rank → (k-group, rank within group). Empty momenta get no
    // ranks (see `allocate_ranks`); the fallback momentum for any
    // over-resize is the last worked one.
    let mut owner = Vec::with_capacity(n_ranks);
    for (k_idx, &n) in alloc.iter().enumerate() {
        for _ in 0..n {
            owner.push(k_idx);
        }
    }
    let fallback = (0..alloc.len()).rev().find(|&i| alloc[i] > 0).unwrap_or(0);
    owner.resize(n_ranks, fallback);
    let owner = Arc::new(owner);
    let plan = Arc::new(plan.clone());
    let outputs = run_world(n_ranks, CostModel::gemini(), move |comm: Comm| {
        let k_idx = owner[comm.rank()];
        // Momentum-level communicator (top of Fig. 9).
        let k_comm = comm.split(k_idx, comm.rank());
        let energies = &plan.energies[k_idx];
        // Energy-level distribution: round-robin inside the k-group.
        let mut payload = Vec::new();
        for i in 0..energies.len() {
            let point = (k_idx as u32, i as u32);
            if i % k_comm.size() == k_comm.rank() && todo.contains(&point) {
                records[&point].encode_into(&mut payload);
            }
        }
        // Gather the group's records at the group root, then at world 0.
        let group_gathered = k_comm.gather(0, payload);
        let group_payload: Vec<u8> = group_gathered.map(|v| v.concat()).unwrap_or_default();
        let world_gathered = comm.gather(0, group_payload);
        let t_comm = comm.comm_time();
        (world_gathered, t_comm)
    });
    collect_outputs(outputs)
}

/// Fallback for rank-starved sweeps: every rank strides the flattened
/// (k, E) list; momenta are processed one after the other.
fn pooled_worker(
    plan: &SweepPlan,
    n_ranks: usize,
    todo: Arc<HashSet<(u32, u32)>>,
    records: Arc<HashMap<(u32, u32), PointRecord>>,
) -> (Vec<Vec<u8>>, f64) {
    let plan = Arc::new(plan.clone());
    let outputs = run_world(n_ranks.max(1), CostModel::gemini(), move |comm: Comm| {
        let mut payload = Vec::new();
        let mut idx = 0usize;
        for k_idx in 0..plan.k_points.len() {
            for e_idx in 0..plan.energies[k_idx].len() {
                let point = (k_idx as u32, e_idx as u32);
                if idx % comm.size() == comm.rank() && todo.contains(&point) {
                    records[&point].encode_into(&mut payload);
                }
                idx += 1;
            }
        }
        let gathered = comm.gather(0, payload);
        (gathered, comm.comm_time())
    });
    collect_outputs(outputs)
}

/// Flattens rank outputs into root payload parts + max virtual comm time.
fn collect_outputs(outputs: Vec<(Option<Vec<Vec<u8>>>, f64)>) -> (Vec<Vec<u8>>, f64) {
    let mut parts = Vec::new();
    let mut comm_seconds = 0.0f64;
    for (gathered, t) in outputs {
        comm_seconds = comm_seconds.max(t);
        if let Some(p) = gathered {
            parts.extend(p);
        }
    }
    (parts, comm_seconds)
}

/// Patches failed points from their healthy neighbors along the energy
/// axis of the same momentum: linear interpolation between the bracketing
/// solved points, nearest-value extrapolation at the grid edges. The
/// recorded bound is the transmission variation between the sources —
/// honest for the smooth-between-resonances spectra these grids resolve.
pub(crate) fn interpolate_failures(records: &mut [PointRecord]) {
    let n = records.len();
    let mut i = 0;
    while i < n {
        let k = records[i].k_idx;
        let mut j = i;
        while j < n && records[j].k_idx == k {
            j += 1;
        }
        let oks: Vec<usize> = (i..j).filter(|&x| records[x].status == STATUS_OK).collect();
        for x in i..j {
            if records[x].status != STATUS_FAILED {
                continue;
            }
            let prev = oks.iter().rev().filter(|&&o| o < x).copied().collect::<Vec<_>>();
            let next = oks.iter().filter(|&&o| o > x).copied().collect::<Vec<_>>();
            let (t, bound) = match (prev.first(), next.first()) {
                (Some(&p), Some(&q)) => {
                    let (e0, t0) = (records[p].e, records[p].t);
                    let (e1, t1) = (records[q].e, records[q].t);
                    let t = if e1 > e0 {
                        t0 + (t1 - t0) * (records[x].e - e0) / (e1 - e0)
                    } else {
                        0.5 * (t0 + t1)
                    };
                    (t, (t1 - t0).abs())
                }
                (Some(&p), None) | (None, Some(&p)) => {
                    // One-sided: copy the nearest healthy value; bound it
                    // by the variation to the next-nearest when available.
                    let second = if prev.first() == Some(&p) { prev.get(1) } else { next.get(1) };
                    let bound =
                        second.map_or(records[p].t.abs(), |&s| (records[p].t - records[s].t).abs());
                    (records[p].t, bound)
                }
                (None, None) => continue, // whole momentum failed — stays failed
            };
            records[x].t = t;
            records[x].interp_bound = bound;
            records[x].status = STATUS_INTERPOLATED;
        }
        i = j;
    }
}

pub(crate) fn finalize(
    records: Vec<PointRecord>,
    health: SweepHealth,
    comm_seconds: f64,
) -> SweepResult {
    let samples: Vec<(f64, f64, f64, f64)> =
        records.iter().map(|r| (r.kz, r.w, r.e, r.t)).collect();
    // k-summed spectrum over usable (solved or interpolated) points.
    let mut spectrum: Vec<(f64, f64)> = Vec::new();
    let mut sorted: Vec<(f64, f64, f64)> = records
        .iter()
        .filter(|r| r.status != STATUS_FAILED && r.t.is_finite())
        .map(|r| (r.e, r.w, r.t))
        .collect();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for (e, w, t) in sorted {
        match spectrum.last_mut() {
            Some((le, lt)) if (*le - e).abs() < 1e-12 => *lt += w * t,
            _ => spectrum.push((e, w * t)),
        }
    }
    SweepResult { samples, spectrum, comm_seconds, records, health }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::solve_point_direct;
    use qtx_atomistic::{BasisKind, DeviceBuilder};

    fn small_device() -> Device {
        let spec = DeviceBuilder::nanowire(0.8).cells(6).basis(BasisKind::TightBinding).build();
        let mut d = Device::build(spec).unwrap();
        // Park the Fermi level in the conduction band so the window has
        // propagating states.
        let dk = d.at_kz(0.0);
        let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("edge");
        d.config.mu_l = edge + 0.15;
        d.config.mu_r = edge + 0.10;
        d
    }

    #[test]
    fn plan_counts_and_allocation() {
        let d = small_device();
        let plan = SweepPlan::from_device(&d, 0.02, 0.1);
        assert_eq!(plan.k_points.len(), 1, "nanowire: Γ only");
        assert!(plan.total_points() > 5);
        let alloc = plan.allocate_ranks(4);
        assert_eq!(alloc.iter().sum::<usize>(), 4);
        assert_eq!(plan.canonical_points().len(), plan.total_points());
    }

    #[test]
    fn allocation_is_proportional_to_workload() {
        let plan = SweepPlan {
            k_points: vec![(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)],
            energies: vec![vec![0.0; 60], vec![0.0; 30], vec![0.0; 10]],
        };
        let alloc = plan.allocate_ranks(10);
        assert_eq!(alloc.iter().sum::<usize>(), 10);
        assert!(alloc[0] > alloc[1]);
        assert!(alloc[1] > alloc[2]);
        assert!(alloc[2] >= 1);
    }

    #[test]
    fn allocation_edge_cases_honor_the_contract() {
        // More ranks than points: everything still sums to n_ranks, and
        // empty momenta stay at zero.
        let plan = SweepPlan {
            k_points: vec![(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)],
            energies: vec![vec![0.0; 2], Vec::new(), vec![0.0; 1]],
        };
        let alloc = plan.allocate_ranks(16);
        assert_eq!(alloc.iter().sum::<usize>(), 16);
        assert_eq!(alloc[1], 0, "empty momentum never parks ranks");
        assert!(alloc[0] >= 1 && alloc[2] >= 1);
        // Fewer ranks than non-empty momenta: minimum-one wins.
        let alloc = plan.allocate_ranks(1);
        assert_eq!(alloc, vec![1, 0, 1]);
        // Zero ranks allocates nothing.
        assert_eq!(plan.allocate_ranks(0), vec![0, 0, 0]);
        // Zero total points allocates nothing regardless of ranks.
        let empty = SweepPlan {
            k_points: vec![(0.0, 1.0), (1.0, 1.0)],
            energies: vec![Vec::new(), Vec::new()],
        };
        assert_eq!(empty.allocate_ranks(8), vec![0, 0]);
        // Degenerate plan with no momenta at all.
        let none = SweepPlan { k_points: Vec::new(), energies: Vec::new() };
        assert!(none.allocate_ranks(4).is_empty());
        assert!(none.canonical_points().is_empty());
    }

    #[test]
    fn sweep_matches_serial_reference() {
        let d = small_device();
        let plan = SweepPlan::from_device(&d, 0.05, 0.15);
        let result = parallel_sweep(&d, &plan, 3).unwrap();
        assert_eq!(result.samples.len(), plan.total_points());
        // A healthy sweep reports a clean bill.
        assert_eq!(result.health.failed, 0);
        assert_eq!(result.health.interpolated, 0);
        assert_eq!(result.health.escalated, 0);
        assert_eq!(result.health.attempts, plan.total_points() as u64);
        // Serial reference for a few points.
        let dk = d.at_kz(0.0);
        for &(kz, _w, e, t) in result.samples.iter().take(4) {
            assert_eq!(kz, 0.0);
            let reference = solve_point_direct(&dk, e, &d.config, None, None).unwrap().transmission;
            assert!((t - reference).abs() < 1e-9, "E={e}: {t} vs {reference}");
        }
        assert!(result.comm_seconds > 0.0);
    }

    #[test]
    fn spectrum_is_sorted_and_weighted() {
        let d = small_device();
        let plan = SweepPlan::from_device(&d, 0.05, 0.15);
        let result = parallel_sweep(&d, &plan, 2).unwrap();
        for w in result.spectrum.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(result.spectrum.len(), plan.total_points());
    }

    #[test]
    fn point_record_roundtrips_through_wire_format() {
        let r = PointRecord {
            k_idx: 3,
            e_idx: 41,
            kz: 0.7,
            w: 0.5,
            e: -0.125,
            t: 1.996,
            method: 4,
            status: STATUS_INTERPOLATED,
            attempts: 5,
            escalations: 4,
            residual: 3.5e-12,
            eta: 1e-6,
            wall_ms: 17.25,
            interp_bound: 0.03,
        };
        let mut buf = Vec::new();
        r.encode_into(&mut buf);
        assert_eq!(buf.len(), POINT_RECORD_BYTES);
        let back = PointRecord::decode(&buf).unwrap();
        assert_eq!(back, r);
        assert!(back.identity_eq(&r));
        // Crafted payloads: truncated and oversized frames are typed
        // errors, never a panic or a silently-garbled record.
        for bad in [&buf[..buf.len() - 1], &[buf.as_slice(), &[0u8]].concat()[..]] {
            let err = PointRecord::decode(bad).unwrap_err();
            assert_eq!(err.frame_size, POINT_RECORD_BYTES);
            assert_eq!(err.payload_len, bad.len());
        }
        assert!(PointRecord::decode(&[]).is_err());
    }

    #[test]
    fn torn_gather_payload_is_rejected_loudly() {
        // A record stream with trailing garbage must surface as a typed
        // error, not silently decode to fewer samples.
        let r = PointRecord {
            k_idx: 0,
            e_idx: 0,
            kz: 0.0,
            w: 1.0,
            e: 0.5,
            t: 1.0,
            method: 0,
            status: STATUS_OK,
            attempts: 1,
            escalations: 0,
            residual: 0.0,
            eta: 0.0,
            wall_ms: 1.0,
            interp_bound: 0.0,
        };
        let mut payload = Vec::new();
        r.encode_into(&mut payload);
        payload.extend_from_slice(&[0xde, 0xad, 0xbe]); // torn frame
        let err = qtx_mpi::exact_frames(&payload, POINT_RECORD_BYTES).unwrap_err();
        assert_eq!(err.payload_len, POINT_RECORD_BYTES + 3);
    }

    #[test]
    fn interpolation_patches_interior_and_edge_failures() {
        let mk = |e_idx: u32, e: f64, t: f64, status: u8| PointRecord {
            k_idx: 0,
            e_idx,
            kz: 0.0,
            w: 1.0,
            e,
            t,
            method: if status == STATUS_FAILED { METHOD_FAILED } else { 0 },
            status,
            attempts: 1,
            escalations: 0,
            residual: 0.0,
            eta: 0.0,
            wall_ms: 0.0,
            interp_bound: 0.0,
        };
        let mut records = vec![
            mk(0, 0.0, f64::NAN, STATUS_FAILED), // leading edge
            mk(1, 0.1, 1.0, STATUS_OK),
            mk(2, 0.2, f64::NAN, STATUS_FAILED), // interior
            mk(3, 0.3, 2.0, STATUS_OK),
            mk(4, 0.4, f64::NAN, STATUS_FAILED), // trailing edge
        ];
        interpolate_failures(&mut records);
        // Interior: linear midpoint between 1.0 and 2.0.
        assert_eq!(records[2].status, STATUS_INTERPOLATED);
        assert!((records[2].t - 1.5).abs() < 1e-12);
        assert!((records[2].interp_bound - 1.0).abs() < 1e-12);
        // Edges: nearest healthy value, bounded by neighbor variation.
        assert_eq!(records[0].status, STATUS_INTERPOLATED);
        assert_eq!(records[0].t, 1.0);
        assert_eq!(records[4].status, STATUS_INTERPOLATED);
        assert_eq!(records[4].t, 2.0);
        assert!((records[0].interp_bound - 1.0).abs() < 1e-12);
        let health =
            SweepHealth::from_records(&records, 0, scheduler::BatchStats::default(), (0, 0, 0));
        assert_eq!(health.interpolated, 3);
        assert_eq!(health.failed, 0);
        assert!((health.max_interp_bound - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_failed_momentum_stays_failed() {
        let mk = |e_idx: u32| PointRecord {
            k_idx: 0,
            e_idx,
            kz: 0.0,
            w: 1.0,
            e: e_idx as f64 * 0.1,
            t: f64::NAN,
            method: METHOD_FAILED,
            status: STATUS_FAILED,
            attempts: 6,
            escalations: 5,
            residual: f64::INFINITY,
            eta: 1e-6,
            wall_ms: 0.0,
            interp_bound: 0.0,
        };
        let mut records = vec![mk(0), mk(1)];
        interpolate_failures(&mut records);
        assert!(records.iter().all(|r| r.status == STATUS_FAILED));
        let health =
            SweepHealth::from_records(&records, 0, scheduler::BatchStats::default(), (0, 0, 0));
        assert_eq!(health.failed, 2);
        let result = finalize(records, health, 0.0);
        assert!(result.spectrum.is_empty(), "failed points never enter the spectrum");
        assert!(result.samples.iter().all(|s| s.3.is_nan()));
    }
}
