//! Three-level parallel (k, E, domain) sweep (§4, Fig. 9).
//!
//! "The momentum k and energy E points are almost embarrassingly parallel,
//! while FEAST+SplitSolve provides a 1-D spatial domain decomposition."
//! The sweep distributes simulated MPI ranks over momentum groups with the
//! dynamic node-per-k allocation of ref. [45] (groups sized by their
//! energy-point counts), splits each group's communicator over its energy
//! points, and leaves the spatial level to SplitSolve's partitions inside
//! each rank.

use crate::device::Device;
use crate::energygrid::EnergyGrid;
use crate::transport::solve_energy_point;
use qtx_mpi::{run_world, Comm, CostModel};
use std::sync::Arc;

/// Work description of one sweep.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Momentum points `(kz, weight)`.
    pub k_points: Vec<(f64, f64)>,
    /// Energy grid per momentum (k-dependent sizes allowed, §5.D:
    /// "the total number of energy points ... varies with the momentum").
    pub energies: Vec<Vec<f64>>,
}

impl SweepPlan {
    /// Builds a plan from a device: its kz set and an automatic grid per k.
    pub fn from_device(dev: &Device, d_min: f64, d_max: f64) -> SweepPlan {
        let k_points = dev.kz_points();
        let (lo_w, hi_w) = dev.fermi_window(10.0);
        let energies = k_points
            .iter()
            .map(|&(kz, _)| {
                let dk = dev.at_kz(kz);
                let (band_lo, band_hi) = dk.lead_l.band_window(16);
                let lo = lo_w.max(band_lo - 0.02);
                let hi = hi_w.min(band_hi + 0.02);
                if hi <= lo {
                    Vec::new()
                } else {
                    EnergyGrid::auto(&dk.lead_l, lo, hi, d_min, d_max).points
                }
            })
            .collect();
        SweepPlan { k_points, energies }
    }

    /// Total energy points across momenta (the Table III workload count).
    pub fn total_points(&self) -> usize {
        self.energies.iter().map(Vec::len).sum()
    }

    /// Dynamic node allocation (ref. [45]): ranks per momentum
    /// proportional to its energy-point count, with at least one rank per
    /// non-empty momentum.
    pub fn allocate_ranks(&self, n_ranks: usize) -> Vec<usize> {
        let total = self.total_points().max(1);
        let nk = self.k_points.len();
        let mut alloc = vec![0usize; nk];
        let mut assigned = 0usize;
        for (i, es) in self.energies.iter().enumerate() {
            let share = ((es.len() as f64 / total as f64) * n_ranks as f64).floor() as usize;
            alloc[i] = share.max(usize::from(!es.is_empty()));
            assigned += alloc[i];
        }
        // Distribute leftovers to the largest groups.
        let mut order: Vec<usize> = (0..nk).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.energies[i].len()));
        let mut idx = 0;
        while assigned < n_ranks && nk > 0 {
            alloc[order[idx % nk]] += 1;
            assigned += 1;
            idx += 1;
        }
        while assigned > n_ranks {
            // Trim over-assignment (when minimums exceeded the budget).
            if let Some(&i) = order.iter().find(|&&i| alloc[i] > 1) {
                alloc[i] -= 1;
                assigned -= 1;
            } else {
                break;
            }
        }
        alloc
    }
}

/// Aggregated sweep output.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// `(kz, weight, energy, transmission)` tuples from all ranks.
    pub samples: Vec<(f64, f64, f64, f64)>,
    /// k-summed transmission spectrum, sorted by energy.
    pub spectrum: Vec<(f64, f64)>,
    /// Virtual communication seconds (max over ranks).
    pub comm_seconds: f64,
}

/// Runs the sweep over `n_ranks` simulated MPI ranks.
///
/// With at least one rank per momentum the hierarchy of Fig. 9 applies
/// (k-groups → energy distribution). With fewer ranks than momenta, all
/// ranks pool and stride the flattened (k, E) work list — "each
/// point/iteration is processed sequentially" (§5.D).
pub fn parallel_sweep(dev: &Device, plan: &SweepPlan, n_ranks: usize) -> SweepResult {
    let non_empty = plan.energies.iter().filter(|e| !e.is_empty()).count();
    if n_ranks < non_empty.max(1) {
        return pooled_sweep(dev, plan, n_ranks);
    }
    let alloc = plan.allocate_ranks(n_ranks);
    // Map world rank → (k-group, rank within group).
    let mut owner = Vec::with_capacity(n_ranks);
    for (k_idx, &n) in alloc.iter().enumerate() {
        for _ in 0..n {
            owner.push(k_idx);
        }
    }
    owner.resize(n_ranks, alloc.len().saturating_sub(1));
    let owner = Arc::new(owner);
    let dev = Arc::new(dev.clone());
    let plan = Arc::new(plan.clone());
    let outputs = run_world(n_ranks, CostModel::gemini(), move |comm: Comm| {
        let k_idx = owner[comm.rank()];
        // Momentum-level communicator (top of Fig. 9).
        let k_comm = comm.split(k_idx, comm.rank());
        let (kz, w) = plan.k_points[k_idx];
        let energies = &plan.energies[k_idx];
        // Energy-level distribution: round-robin inside the k-group.
        let dk = dev.at_kz(kz);
        let mut local: Vec<(f64, f64, f64, f64)> = Vec::new();
        for (i, &e) in energies.iter().enumerate() {
            if i % k_comm.size() == k_comm.rank() {
                let t =
                    solve_energy_point(&dk, e, &dev.config).map(|r| r.transmission).unwrap_or(0.0);
                local.push((kz, w, e, t));
            }
        }
        // Gather the group's samples at the group root, then at world 0.
        let mut payload = Vec::new();
        for (kz, w, e, t) in &local {
            payload.extend_from_slice(&kz.to_le_bytes());
            payload.extend_from_slice(&w.to_le_bytes());
            payload.extend_from_slice(&e.to_le_bytes());
            payload.extend_from_slice(&t.to_le_bytes());
        }
        let group_gathered = k_comm.gather(0, payload);
        let group_payload: Vec<u8> = group_gathered.map(|v| v.concat()).unwrap_or_default();
        let world_gathered = comm.gather(0, group_payload);
        let t_comm = comm.comm_time();
        (world_gathered, t_comm)
    });
    let mut samples = Vec::new();
    let mut comm_seconds = 0.0f64;
    for (gathered, t) in outputs {
        comm_seconds = comm_seconds.max(t);
        if let Some(parts) = gathered {
            for part in parts {
                for chunk in part.chunks_exact(32) {
                    let f = |r: std::ops::Range<usize>| {
                        f64::from_le_bytes(chunk[r].try_into().expect("8 bytes"))
                    };
                    samples.push((f(0..8), f(8..16), f(16..24), f(24..32)));
                }
            }
        }
    }
    finalize(samples, comm_seconds)
}

fn finalize(samples: Vec<(f64, f64, f64, f64)>, comm_seconds: f64) -> SweepResult {
    // k-summed spectrum.
    let mut spectrum: Vec<(f64, f64)> = Vec::new();
    let mut sorted = samples.clone();
    sorted.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    for (_, w, e, t) in sorted {
        match spectrum.last_mut() {
            Some((le, lt)) if (*le - e).abs() < 1e-12 => *lt += w * t,
            _ => spectrum.push((e, w * t)),
        }
    }
    SweepResult { samples, spectrum, comm_seconds }
}

/// Fallback for rank-starved sweeps: every rank strides the flattened
/// (k, E) list; momenta are processed one after the other.
fn pooled_sweep(dev: &Device, plan: &SweepPlan, n_ranks: usize) -> SweepResult {
    let dev = Arc::new(dev.clone());
    let plan = Arc::new(plan.clone());
    let outputs = run_world(n_ranks.max(1), CostModel::gemini(), move |comm: Comm| {
        let mut local = Vec::new();
        let mut idx = 0usize;
        for (k_idx, &(kz, w)) in plan.k_points.iter().enumerate() {
            if plan.energies[k_idx].is_empty() {
                continue;
            }
            let dk = dev.at_kz(kz);
            for &e in &plan.energies[k_idx] {
                if idx % comm.size() == comm.rank() {
                    let t = solve_energy_point(&dk, e, &dev.config)
                        .map(|r| r.transmission)
                        .unwrap_or(0.0);
                    local.push((kz, w, e, t));
                }
                idx += 1;
            }
        }
        let mut payload = Vec::new();
        for (kz, w, e, t) in &local {
            payload.extend_from_slice(&kz.to_le_bytes());
            payload.extend_from_slice(&w.to_le_bytes());
            payload.extend_from_slice(&e.to_le_bytes());
            payload.extend_from_slice(&t.to_le_bytes());
        }
        let gathered = comm.gather(0, payload);
        (gathered, comm.comm_time())
    });
    let mut samples = Vec::new();
    let mut comm_seconds = 0.0f64;
    for (gathered, t) in outputs {
        comm_seconds = comm_seconds.max(t);
        if let Some(parts) = gathered {
            for part in parts {
                for chunk in part.chunks_exact(32) {
                    let f = |r: std::ops::Range<usize>| {
                        f64::from_le_bytes(chunk[r].try_into().expect("8 bytes"))
                    };
                    samples.push((f(0..8), f(8..16), f(16..24), f(24..32)));
                }
            }
        }
    }
    finalize(samples, comm_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_atomistic::{BasisKind, DeviceBuilder};

    fn small_device() -> Device {
        let spec = DeviceBuilder::nanowire(0.8).cells(6).basis(BasisKind::TightBinding).build();
        let mut d = Device::build(spec).unwrap();
        // Park the Fermi level in the conduction band so the window has
        // propagating states.
        let dk = d.at_kz(0.0);
        let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("edge");
        d.config.mu_l = edge + 0.15;
        d.config.mu_r = edge + 0.10;
        d
    }

    #[test]
    fn plan_counts_and_allocation() {
        let d = small_device();
        let plan = SweepPlan::from_device(&d, 0.02, 0.1);
        assert_eq!(plan.k_points.len(), 1, "nanowire: Γ only");
        assert!(plan.total_points() > 5);
        let alloc = plan.allocate_ranks(4);
        assert_eq!(alloc.iter().sum::<usize>(), 4);
    }

    #[test]
    fn allocation_is_proportional_to_workload() {
        let plan = SweepPlan {
            k_points: vec![(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)],
            energies: vec![vec![0.0; 60], vec![0.0; 30], vec![0.0; 10]],
        };
        let alloc = plan.allocate_ranks(10);
        assert_eq!(alloc.iter().sum::<usize>(), 10);
        assert!(alloc[0] > alloc[1]);
        assert!(alloc[1] > alloc[2]);
        assert!(alloc[2] >= 1);
    }

    #[test]
    fn sweep_matches_serial_reference() {
        let d = small_device();
        let plan = SweepPlan::from_device(&d, 0.05, 0.15);
        let result = parallel_sweep(&d, &plan, 3);
        assert_eq!(result.samples.len(), plan.total_points());
        // Serial reference for a few points.
        let dk = d.at_kz(0.0);
        for &(kz, _w, e, t) in result.samples.iter().take(4) {
            assert_eq!(kz, 0.0);
            let reference = solve_energy_point(&dk, e, &d.config).unwrap().transmission;
            assert!((t - reference).abs() < 1e-9, "E={e}: {t} vs {reference}");
        }
        assert!(result.comm_seconds > 0.0);
    }

    #[test]
    fn spectrum_is_sorted_and_weighted() {
        let d = small_device();
        let plan = SweepPlan::from_device(&d, 0.05, 0.15);
        let result = parallel_sweep(&d, &plan, 2);
        for w in result.spectrum.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(result.spectrum.len(), plan.total_points());
    }
}
