//! Self-consistent Schrödinger–Poisson loop and Id–Vgs sweeps (Fig. 1(d)).
//!
//! OMEN "self-consistently solves the Schrödinger and Poisson equations"
//! (§4): each iteration sweeps the energy grid, accumulates the transport
//! charge, feeds it to the gated 1-D Poisson solver of `qtx-poisson`, and
//! damps the potential update until the profile stops moving. "An entire
//! simulation involves roughly 40-50 iterations for 10 bias points"
//! (§5.B) — the same loop at laptop scale drives the transfer
//! characteristics of Fig. 1(d).

use crate::device::Device;
use crate::energygrid::EnergyGrid;
use crate::error::TransportResult;
use crate::landauer::landauer_current_ua;
use crate::observables::accumulate;
use crate::scheduler::{self, BatchOptions, TaskAttempt};
use crate::transport::solve_point_direct;
use qtx_poisson::{gated_poisson_1d, GateSpec};
use std::sync::Arc;

/// SCF controls.
#[derive(Debug, Clone)]
pub struct ScfConfig {
    /// Maximum Schrödinger–Poisson iterations.
    pub max_iter: usize,
    /// Convergence threshold on `max|ΔV|` (V).
    pub tol: f64,
    /// Damping factor for the potential update.
    pub mixing: f64,
    /// Gate window as slab-index fractions `(start, end)` of the device.
    pub gate_window: (f64, f64),
    /// Gate voltage (V), work function already folded in.
    pub vg: f64,
    /// Drain bias (V) applied to the right contact.
    pub vd: f64,
    /// Electrostatic screening length (nm).
    pub lambda: f64,
    /// Charge-to-potential coupling (V·slab per accumulated electron) —
    /// absorbs `q/ε` and the cross-section area of the model.
    pub charge_coupling: f64,
    /// Energy grid resolution (points).
    pub n_energy: usize,
}

impl Default for ScfConfig {
    fn default() -> Self {
        ScfConfig {
            max_iter: 25,
            tol: 2e-3,
            mixing: 0.5,
            gate_window: (0.375, 0.625),
            vg: 0.0,
            vd: 0.05,
            // Thin-body electrostatic screening length: strong gate
            // control needs λ below the grid spacing (~a/2 for GAA).
            lambda: 0.25,
            charge_coupling: 0.15,
            n_energy: 40,
        }
    }
}

/// Outcome of a self-consistent solve.
#[derive(Debug, Clone)]
pub struct ScfResult {
    /// Converged (or last) potential profile (eV, electron energy).
    pub potential: Vec<f64>,
    /// Ballistic current at the final iteration (µA).
    pub current_ua: f64,
    /// Transmission spectrum `(E, T)` of the final iteration.
    pub spectrum: Vec<(f64, f64)>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final `max|ΔV|`.
    pub residual: f64,
    /// Converged flag.
    pub converged: bool,
}

/// One Id(Vgs) sample.
#[derive(Debug, Clone, Copy)]
pub struct IvPoint {
    /// Gate voltage (V).
    pub vgs: f64,
    /// Drain current (µA).
    pub id_ua: f64,
}

/// Runs the Schrödinger–Poisson loop on a device (modifies its potential).
pub fn schrodinger_poisson(dev: &mut Device, cfg: &ScfConfig) -> TransportResult<ScfResult> {
    let nb = dev.n_slabs;
    let gate = GateSpec {
        start: ((nb as f64) * cfg.gate_window.0) as usize,
        end: (((nb as f64) * cfg.gate_window.1) as usize).min(nb),
        // Electron potential energy: a positive gate voltage *lowers* the
        // electron barrier, so the electrostatic solve works in volts and
        // the sign flip happens when applying to H.
        vg: cfg.vg,
        lambda: cfg.lambda,
    };
    let kt_window = 10.0;
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    let mut spectrum = Vec::new();
    let dx = dev.base.unit_cell.cell_len * dev.base.unit_cell.nbw as f64;
    // Contact electrostatics: source grounded, drain at +Vd.
    let (v_s, v_d) = (0.0, cfg.vd);
    // Bias enters the occupations too.
    dev.config.mu_r = dev.config.mu_l - cfg.vd;
    for it in 0..cfg.max_iter {
        iterations = it + 1;
        // 1. Transport sweep on the current potential.
        let dk = dev.at_kz(0.0);
        let (e_lo, e_hi) = {
            let (lo, hi) = dev.fermi_window(kt_window);
            // Clip to where the leads actually conduct.
            let (band_lo, band_hi) = dk.lead_l.band_window(24);
            (lo.max(band_lo - 0.05), hi.min(band_hi + 0.05))
        };
        if e_hi <= e_lo {
            // Gap fully covers the bias window: no current flows.
            let pot = dev.potential.clone();
            return Ok(ScfResult {
                potential: pot,
                current_ua: 0.0,
                spectrum: Vec::new(),
                iterations,
                residual: 0.0,
                converged: true,
            });
        }
        let grid = EnergyGrid::uniform(e_lo, e_hi, cfg.n_energy.max(2));
        let cfg_t = dev.config;
        // Panic-isolated solves on the supervised pool: typed errors
        // propagate as before (no retries — the SCF loop owns recovery),
        // a panicking point surfaces as `TransportError::Panic` instead of
        // tearing down the whole iteration.
        let dk_shared = Arc::new(dk);
        let run_dk = Arc::clone(&dk_shared);
        // Env-armed self-energy cache: the gate potential folds into the
        // channel, not the leads, so Σ(E) survives across SCF iterations
        // and bias points — exactly the reuse the cache is for. (The
        // handle re-hashes the leads each iteration; if a model ever does
        // shift them, the content address changes and nothing stale is
        // served.)
        let cache = crate::cache::env_handle(&dk_shared);
        let reports = scheduler::global().execute(
            grid.points.clone(),
            &BatchOptions { max_retries: Some(0), ..Default::default() },
            move |_, &e, _| {
                TaskAttempt::Done(solve_point_direct(&run_dk, e, &cfg_t, None, cache.as_ref()))
            },
            |_, _, _, err| Err(crate::error::TransportError::Panic { what: err.to_string() }),
        );
        let points: Vec<_> =
            reports.into_iter().map(|r| r.value).collect::<TransportResult<Vec<_>>>()?;
        let dk = Arc::try_unwrap(dk_shared).unwrap_or_else(|arc| (*arc).clone());
        spectrum = points.iter().map(|p| (p.e, p.transmission)).collect();
        // 2. Charge per slab.
        let de = (e_hi - e_lo) / (cfg.n_energy.max(2) - 1) as f64;
        let weights = vec![de; points.len()];
        let cc = accumulate(
            &dk,
            &points,
            &weights,
            dev.config.mu_l,
            dev.config.mu_r,
            dev.config.temperature,
        );
        // 3. Electrostatics: electrons screen the gate (negative charge).
        let rho: Vec<f64> = cc.density.iter().map(|n| -cfg.charge_coupling * n).collect();
        let v_new = gated_poisson_1d(&rho, dx, &gate, v_s, v_d, 1e-10);
        // 4. Electron potential energy U = −V, damped update.
        let mut worst: f64 = 0.0;
        let mut u = dev.potential.clone();
        for q in 0..nb {
            let target = -v_new[q];
            let delta = target - u[q];
            worst = worst.max(delta.abs());
            u[q] += cfg.mixing * delta;
        }
        dev.set_potential(&u);
        residual = worst;
        if worst < cfg.tol {
            break;
        }
    }
    let current =
        landauer_current_ua(&spectrum, dev.config.mu_l, dev.config.mu_r, dev.config.temperature);
    Ok(ScfResult {
        potential: dev.potential.clone(),
        current_ua: current,
        spectrum,
        iterations,
        residual,
        converged: residual < cfg.tol,
    })
}

/// Sweeps the gate voltage and returns the transfer characteristic
/// Id–Vgs of Fig. 1(d). Each bias point restarts from the previous
/// converged potential (the production continuation strategy).
pub fn id_vgs(
    dev: &mut Device,
    cfg: &ScfConfig,
    vgs_list: &[f64],
) -> TransportResult<Vec<IvPoint>> {
    let mut out = Vec::with_capacity(vgs_list.len());
    for &vg in vgs_list {
        let mut c = cfg.clone();
        c.vg = vg;
        let r = schrodinger_poisson(dev, &c)?;
        out.push(IvPoint { vgs: vg, id_ua: r.current_ua });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_atomistic::{BasisKind, DeviceBuilder};

    fn fet() -> Device {
        let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(BasisKind::TightBinding).build();
        let mut d = Device::build(spec).unwrap();
        // Fermi level just above the lowest *dispersive* conduction edge
        // (n-type contacts); flat passivation bands carry no current.
        let dk = d.at_kz(0.0);
        let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("conduction edge");
        d.config.mu_l = edge + 0.05;
        d
    }

    fn fast_cfg() -> ScfConfig {
        ScfConfig { max_iter: 8, n_energy: 14, tol: 5e-3, vd: 0.05, ..ScfConfig::default() }
    }

    #[test]
    fn scf_converges_and_reports_positive_current() {
        let mut d = fet();
        let mut cfg = fast_cfg();
        cfg.vg = 0.3; // on-state
        let r = schrodinger_poisson(&mut d, &cfg).unwrap();
        assert!(r.iterations >= 2);
        assert!(r.current_ua >= 0.0, "forward bias drives positive current");
        assert!(!r.spectrum.is_empty());
        assert!(r.residual < 0.1, "potential motion {}", r.residual);
    }

    #[test]
    fn gate_modulates_current() {
        // The FET behaviour of Fig. 1(d): a negative gate raises the
        // channel barrier and chokes the current; near flat-band the wire
        // conducts ballistically. (Far positive gates dig a well that
        // itself reflects — the ON state sits near flat-band here.)
        let off = {
            let mut d = fet();
            let mut cfg = fast_cfg();
            cfg.vg = -0.4;
            schrodinger_poisson(&mut d, &cfg).unwrap().current_ua
        };
        let on = {
            let mut d = fet();
            let mut cfg = fast_cfg();
            cfg.vg = 0.15;
            schrodinger_poisson(&mut d, &cfg).unwrap().current_ua
        };
        assert!(on > 5.0 * off.max(1e-12), "gate must modulate: on = {on} µA, off = {off} µA");
    }

    #[test]
    fn id_vgs_is_monotone_for_nfet() {
        // Subthreshold-to-on branch of the transfer characteristic.
        let mut d = fet();
        let cfg = fast_cfg();
        let iv = id_vgs(&mut d, &cfg, &[-0.4, -0.15, 0.1]).unwrap();
        assert_eq!(iv.len(), 3);
        assert!(iv[0].id_ua <= iv[1].id_ua + 1e-9, "{iv:?}");
        assert!(iv[1].id_ua <= iv[2].id_ua + 1e-9, "{iv:?}");
    }

    #[test]
    fn gate_pulls_channel_potential_down() {
        let mut d = fet();
        let mut cfg = fast_cfg();
        cfg.vg = 0.5;
        let r = schrodinger_poisson(&mut d, &cfg).unwrap();
        let mid = d.n_slabs / 2;
        // Electron potential energy in the gated channel goes negative
        // (barrier lowered) for positive Vg.
        assert!(r.potential[mid] < 0.0, "channel U = {}", r.potential[mid]);
    }
}
