//! Content-addressed lead self-energy cache.
//!
//! In any bias/gate sweep the leads never change, so `Σ(E)` per lead is
//! recomputed thousands of times for identical inputs — the SC'15 paper
//! spends most of its per-point budget on exactly this OBC work. This
//! module amortizes it: every self-energy build is keyed by the **content
//! hash of the lead blocks** ([`qtx_obc::LeadBlocks::content_hash`]) ×
//! energy × broadening η × contact side × a fingerprint of the OBC method
//! and its numerical knobs. A hit replays the stored
//! [`qtx_obc::frame`] byte frame and is therefore *bit-identical* to the
//! solve it replaced; downstream transmission, residuals and records do
//! not move by a single bit.
//!
//! Three layers:
//!
//! * **Exact store** — serialized [`ObcResult`] frames under an LRU
//!   byte budget (`QTX_OBC_CACHE_BYTES`, `k`/`m`/`g` suffixes). Errors
//!   and fault-injected solves are never cached.
//! * **Interpolation** (opt-in, [`CacheConfig::interp_max_de`] > 0) —
//!   linear interpolation of Σ between two cached *anchor* energies of
//!   the same (lead, η, side, method) family. An interval becomes usable
//!   only after a **validation solve**: the first fresh solve landing
//!   strictly inside it doubles as ground truth, the observed error is
//!   inflated to a whole-interval bound (parabolic error model of linear
//!   interpolation, clamped to [1, 64]×) and recorded; intervals whose
//!   bound exceeds [`CacheConfig::interp_tol`] stay unusable — e.g. a
//!   grid straddling a resonance or band edge. Interpolation is never
//!   used on the sweep path (records must stay bit-identical); the
//!   [`crate::engine::TransportEngine`] exposes it behind
//!   [`crate::engine::PointPolicy`].
//! * **Fault-campaign bypass** — while a `fault-inject` campaign is
//!   armed, the cache stands down entirely (no lookups, no inserts):
//!   cached hits would skip the chokepoint draws inside the solves and
//!   change the campaign's injection accounting, breaking the fault
//!   battery's bit-identity contracts.
//!
//! See `docs/cache.md` for the full key-derivation and error-contract
//! write-up.

use crate::device::DeviceK;
use qtx_linalg::ZMat;
use qtx_obc::{
    decode_obc_result_parts, encode_obc_result_compressed, Eta, LeadBlocks, ObcFrameParts,
    ObcMethod, ObcOutcome, ObcResult, Side,
};
use qtx_sparse::CompressedSigma;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Construction knobs of a [`SigmaCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Byte budget of the stored frames; the least-recently-used entry is
    /// evicted when an insert would exceed it.
    pub max_bytes: usize,
    /// Maximum anchor spacing (eV) an interpolation interval may span;
    /// `0.0` (the default) disables the interpolation layer entirely.
    pub interp_max_de: f64,
    /// Largest recorded error bound an interval may carry and still be
    /// served by [`SigmaCache::try_interpolate`].
    pub interp_tol: f64,
    /// Relative tolerance for storing Σ as truncated `U·Vᴴ` factors
    /// (`QTXOBC02` frames). `0.0` (the default) keeps every frame exact
    /// and bit-identical; a positive value shrinks entries with the
    /// numerical rank of the lead at the recorded error bound.
    pub sigma_compress_tol: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_bytes: 256 << 20,
            interp_max_de: 0.0,
            interp_tol: 1e-6,
            sigma_compress_tol: 0.0,
        }
    }
}

/// Counter snapshot of one cache (monotone process-lifetime totals plus
/// the current store occupancy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact hits served from stored frames.
    pub hits: u64,
    /// Lookups that fell through to a real solve.
    pub misses: u64,
    /// Queries served by the interpolation layer.
    pub interp_hits: u64,
    /// Interval validation solves performed.
    pub validations: u64,
    /// Entries evicted under the byte budget.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Bytes currently stored.
    pub bytes: usize,
}

fn mix(mut h: u64, v: u64) -> u64 {
    h ^= v;
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Stable fingerprint of an OBC method *and* every numerical knob that
/// changes its output: two configurations hash equal iff an identical
/// lead/energy/η input is guaranteed the identical Σ.
fn method_fingerprint(method: ObcMethod) -> u64 {
    match method {
        ObcMethod::Feast(c) => {
            let mut h = mix(0, 1);
            for v in [
                c.np as u64,
                c.r_outer.to_bits(),
                c.subspace as u64,
                c.max_refine as u64,
                c.tol.to_bits(),
            ] {
                h = mix(h, v);
            }
            h
        }
        ObcMethod::Beyn(c) => {
            let mut h = mix(0, 2);
            for v in [
                c.np as u64,
                c.r_outer.to_bits(),
                c.probes as u64,
                c.rank_tol.to_bits(),
                c.residual_tol.to_bits(),
            ] {
                h = mix(h, v);
            }
            h
        }
        ObcMethod::ShiftInvert => mix(0, 3),
        ObcMethod::Decimation => mix(0, 4),
    }
}

fn side_tag(side: Side) -> u8 {
    match side {
        Side::Left => 0,
        Side::Right => 1,
    }
}

/// Interpolation family: everything of the key except the energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FamKey {
    lead: u64,
    eta: u64,
    side: u8,
    fp: u64,
}

/// Full content address of one stored self-energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    fam: FamKey,
    e: u64,
}

impl Key {
    fn new(lead_hash: u64, e: f64, eta: f64, side: Side, method: ObcMethod) -> Key {
        Key {
            fam: FamKey {
                lead: lead_hash,
                eta: eta.to_bits(),
                side: side_tag(side),
                fp: method_fingerprint(method),
            },
            e: e.to_bits(),
        }
    }
}

struct Entry {
    frame: Vec<u8>,
    stamp: u64,
    /// Anchors define interpolation intervals; validation solves are
    /// stored non-anchor so existing brackets stay stable.
    anchor: bool,
}

/// Validation state of one anchor interval `(e0, e1)`.
#[derive(Debug, Clone, Copy)]
struct Interval {
    bound: f64,
    usable: bool,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Key, Entry>,
    /// Sorted anchor energies per family.
    families: HashMap<FamKey, Vec<f64>>,
    /// `(family, e0 bits, e1 bits)` → validation state. Entries are pure
    /// functions of content-addressed inputs, so a state recorded once
    /// stays valid even if its anchors are later evicted and re-solved.
    intervals: HashMap<(FamKey, u64, u64), Interval>,
    bytes: usize,
    tick: u64,
}

/// Shared, thread-safe, content-addressed store of lead self-energies.
/// Cheap to share (`Arc`); one coarse mutex guards the store — the guarded
/// work is map bookkeeping and frame decode, orders of magnitude below the
/// dense solves it elides.
pub struct SigmaCache {
    cfg: CacheConfig,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    interp_hits: AtomicU64,
    validations: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for SigmaCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigmaCache").field("cfg", &self.cfg).field("stats", &self.stats()).finish()
    }
}

impl SigmaCache {
    /// An empty cache with the given knobs.
    pub fn new(cfg: CacheConfig) -> SigmaCache {
        SigmaCache {
            cfg,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            interp_hits: AtomicU64::new(0),
            validations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("sigma cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            interp_hits: self.interp_hits.load(Ordering::Relaxed),
            validations: self.validations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }

    /// Cache-fronted self-energy: an exact hit replays the stored frame
    /// (bit-identical to the solve it replaced, `stats: None`); a miss
    /// runs the real [`qtx_obc::self_energy`] and stores the result.
    /// Errors are returned untouched and never cached.
    ///
    /// `lead_hash` must be `lead.content_hash()` (hoisted out so sweeps
    /// hash each lead once, not once per energy point).
    pub fn self_energy(
        &self,
        lead: &LeadBlocks,
        lead_hash: u64,
        e: f64,
        eta: f64,
        side: Side,
        method: ObcMethod,
    ) -> ObcOutcome<ObcResult> {
        let key = Key::new(lead_hash, e, eta, side, method);
        if let Some(found) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found.into_result());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = qtx_obc::self_energy(lead, e, Eta(eta), side, method)?;
        self.insert(key, e, &fresh);
        Ok(fresh)
    }

    /// Like [`SigmaCache::self_energy`] but keeps Σ in its stored
    /// representation: a compressed (`QTXOBC02`) hit returns the factors
    /// without expanding them, so a boundary-block solver that consumes
    /// `U·Vᴴ` directly never pays for the dense block. The returned
    /// parts always match what a subsequent exact hit would serve.
    pub fn self_energy_parts(
        &self,
        lead: &LeadBlocks,
        lead_hash: u64,
        e: f64,
        eta: f64,
        side: Side,
        method: ObcMethod,
    ) -> ObcOutcome<ObcFrameParts> {
        let key = Key::new(lead_hash, e, eta, side, method);
        if let Some(found) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = qtx_obc::self_energy(lead, e, Eta(eta), side, method)?;
        self.insert(key, e, &fresh);
        // Mirror the stored frame: the same deterministic compression the
        // encoder applied, so a miss and a later hit hand back the same Σ.
        let sigma = CompressedSigma::compress(&fresh.sigma, self.cfg.sigma_compress_tol);
        Ok(ObcFrameParts {
            sigma,
            injection: fresh.injection,
            inc_modes: fresh.inc_modes,
            out_modes: fresh.out_modes,
        })
    }

    /// Exact lookup without a solve fallback (the engine's interpolating
    /// pre-pass uses this to prefer stored frames over interpolants).
    pub fn lookup_exact(
        &self,
        lead_hash: u64,
        e: f64,
        eta: f64,
        side: Side,
        method: ObcMethod,
    ) -> Option<ObcResult> {
        let key = Key::new(lead_hash, e, eta, side, method);
        let found = self.lookup(&key)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(found.into_result())
    }

    fn lookup(&self, key: &Key) -> Option<ObcFrameParts> {
        let mut inner = self.inner.lock().expect("sigma cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(key)?;
        entry.stamp = tick;
        match decode_obc_result_parts(&entry.frame) {
            Ok(r) => Some(r),
            Err(_) => {
                // A frame we encoded ourselves cannot fail to decode; if
                // it somehow does (memory corruption), drop the entry and
                // fall back to a fresh solve rather than panicking.
                debug_assert!(false, "sigma cache frame failed to decode");
                let entry = inner.map.remove(key).expect("entry present");
                inner.bytes -= entry.frame.len();
                if entry.anchor {
                    Self::drop_anchor(&mut inner, key);
                }
                None
            }
        }
    }

    fn drop_anchor(inner: &mut Inner, key: &Key) {
        if let Some(fam) = inner.families.get_mut(&key.fam) {
            let e = f64::from_bits(key.e);
            if let Some(pos) = fam.iter().position(|a| a.to_bits() == e.to_bits()) {
                fam.remove(pos);
            }
            if fam.is_empty() {
                inner.families.remove(&key.fam);
            }
        }
    }

    /// Stores a fresh solve. When the new energy lands strictly inside an
    /// existing unvalidated anchor interval of its family, the solve
    /// doubles as that interval's validation (and is stored *non-anchor*
    /// so the bracket stays in place); otherwise it becomes a new anchor.
    fn insert(&self, key: Key, e: f64, fresh: &ObcResult) {
        let frame = encode_obc_result_compressed(fresh, self.cfg.sigma_compress_tol);
        let mut inner = self.inner.lock().expect("sigma cache lock");
        if inner.map.contains_key(&key) {
            return; // concurrent identical solve already landed
        }
        let mut anchor = true;
        if self.cfg.interp_max_de > 0.0 {
            if let Some((e0, e1)) = bracket(inner.families.get(&key.fam), e) {
                if e1 - e0 <= self.cfg.interp_max_de {
                    let ikey = (key.fam, e0.to_bits(), e1.to_bits());
                    anchor = false; // inside a bracket: never re-anchor
                    if !inner.intervals.contains_key(&ikey) {
                        if let Some(iv) = self.validate(&inner, key.fam, e0, e1, e, fresh) {
                            inner.intervals.insert(ikey, iv);
                            self.validations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        if anchor {
            let fam = inner.families.entry(key.fam).or_default();
            let pos = fam.partition_point(|&a| a < e);
            if fam.get(pos).is_none_or(|&a| a.to_bits() != e.to_bits()) {
                fam.insert(pos, e);
            }
        }
        inner.tick += 1;
        let stamp = inner.tick;
        inner.bytes += frame.len();
        inner.map.insert(key, Entry { frame, stamp, anchor });
        // LRU eviction down to the byte budget. Evicting an anchor removes
        // it from its family bracket list; recorded interval states stay
        // (they remain valid — the inputs are content-addressed).
        while inner.bytes > self.cfg.max_bytes && !inner.map.is_empty() {
            let victim =
                *inner.map.iter().min_by_key(|(_, v)| v.stamp).map(|(k, _)| k).expect("non-empty");
            let entry = inner.map.remove(&victim).expect("victim present");
            inner.bytes -= entry.frame.len();
            if entry.anchor {
                Self::drop_anchor(&mut inner, &victim);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// First-use validation of interval `(e0, e1)`: compares the linear
    /// interpolant at `e` against the fresh ground-truth Σ and inflates
    /// the observed error to a whole-interval bound with the parabolic
    /// error profile of linear interpolation —
    /// `err(x) ≈ c·(x−e0)·(e1−x)` peaks at mid-interval, so
    /// `bound = err(e) · h²/(4·(e−e0)·(e1−e))`, clamped to `[1, 64]×`
    /// (the cap guards against a validation point so close to an anchor
    /// that the inflation explodes on noise).
    fn validate(
        &self,
        inner: &Inner,
        fam: FamKey,
        e0: f64,
        e1: f64,
        e: f64,
        fresh: &ObcResult,
    ) -> Option<Interval> {
        let s0 = self.peek_sigma(inner, fam, e0)?;
        let s1 = self.peek_sigma(inner, fam, e1)?;
        let interp = lerp_sigma(&s0, &s1, (e - e0) / (e1 - e0))?;
        let observed = interp.max_diff(&fresh.sigma);
        let h = e1 - e0;
        let inflate = (h * h / (4.0 * (e - e0) * (e1 - e))).clamp(1.0, 64.0);
        let bound = observed * inflate;
        Some(Interval { bound, usable: bound.is_finite() && bound <= self.cfg.interp_tol })
    }

    fn peek_sigma(&self, inner: &Inner, fam: FamKey, e: f64) -> Option<ZMat> {
        let entry = inner.map.get(&Key { fam, e: e.to_bits() })?;
        decode_obc_result_parts(&entry.frame).ok().map(|p| p.into_result().sigma)
    }

    /// Pure interpolation lookup: serves Σ only from a **validated,
    /// usable** interval whose both anchors are still stored, together
    /// with the interval's recorded error bound. Never solves, never
    /// validates — a query that cannot be served returns `None` and the
    /// caller falls back to [`SigmaCache::self_energy`].
    pub fn try_interpolate(
        &self,
        lead_hash: u64,
        e: f64,
        eta: f64,
        side: Side,
        method: ObcMethod,
    ) -> Option<(ZMat, f64)> {
        let fam = Key::new(lead_hash, e, eta, side, method).fam;
        let inner = self.inner.lock().expect("sigma cache lock");
        let (e0, e1) = bracket(inner.families.get(&fam), e)?;
        if e1 - e0 > self.cfg.interp_max_de {
            return None;
        }
        let iv = *inner.intervals.get(&(fam, e0.to_bits(), e1.to_bits()))?;
        if !iv.usable {
            return None;
        }
        let s0 = self.peek_sigma(&inner, fam, e0)?;
        let s1 = self.peek_sigma(&inner, fam, e1)?;
        let sigma = lerp_sigma(&s0, &s1, (e - e0) / (e1 - e0))?;
        self.interp_hits.fetch_add(1, Ordering::Relaxed);
        Some((sigma, iv.bound))
    }
}

/// Anchors strictly bracketing `e` (`e0 < e < e1`), if any.
fn bracket(anchors: Option<&Vec<f64>>, e: f64) -> Option<(f64, f64)> {
    let anchors = anchors?;
    let pos = anchors.partition_point(|&a| a < e);
    if pos == 0 || pos >= anchors.len() {
        return None;
    }
    let (e0, e1) = (anchors[pos - 1], anchors[pos]);
    if e0 < e && e < e1 {
        Some((e0, e1))
    } else {
        None // exact anchor energy: not an interpolation query
    }
}

fn lerp_sigma(s0: &ZMat, s1: &ZMat, t: f64) -> Option<ZMat> {
    if s0.rows() != s1.rows() || s0.cols() != s1.cols() {
        return None;
    }
    let data = s0
        .as_slice()
        .iter()
        .zip(s1.as_slice())
        .map(|(a, b)| *a * (1.0 - t) + *b * t)
        .collect::<Vec<_>>();
    Some(ZMat::from_recycled_buffer(s0.rows(), s0.cols(), data))
}

/// How a sweep / engine resolves its cache.
#[derive(Debug, Clone, Default)]
pub enum CachePolicy {
    /// Use the process-global env-armed cache
    /// ([`global`], `QTX_OBC_CACHE_BYTES`) when present, else no cache.
    #[default]
    Auto,
    /// Never cache (forces the exact pre-cache code path).
    Off,
    /// Use this specific cache (share one across engines/sweeps to keep
    /// Σ warm between them).
    Shared(Arc<SigmaCache>),
}

impl CachePolicy {
    /// The cache this policy denotes, if any.
    pub fn resolve(&self) -> Option<Arc<SigmaCache>> {
        match self {
            CachePolicy::Auto => global().cloned(),
            CachePolicy::Off => None,
            CachePolicy::Shared(c) => Some(c.clone()),
        }
    }
}

/// Parses `QTX_OBC_CACHE_BYTES` values: a plain byte count or a number
/// with a `k`/`m`/`g` suffix (case-insensitive, powers of 1024).
fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let (digits, mult) = match s.as_bytes()[s.len() - 1].to_ascii_lowercase() {
        b'k' => (&s[..s.len() - 1], 1usize << 10),
        b'm' => (&s[..s.len() - 1], 1 << 20),
        b'g' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    let n: usize = digits.trim().parse().ok()?;
    n.checked_mul(mult)
}

/// The process-global cache, armed iff `QTX_OBC_CACHE_BYTES` parses to a
/// byte budget (read once, on first use). Interpolation stays off for the
/// global cache — it is an opt-in per-engine contract.
pub fn global() -> Option<&'static Arc<SigmaCache>> {
    static GLOBAL: OnceLock<Option<Arc<SigmaCache>>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let budget = std::env::var("QTX_OBC_CACHE_BYTES").ok().and_then(|v| {
                let parsed = parse_bytes(&v);
                if parsed.is_none() {
                    eprintln!("QTX_OBC_CACHE_BYTES: unparsable value {v:?}; cache disarmed");
                }
                parsed
            })?;
            Some(Arc::new(SigmaCache::new(CacheConfig {
                max_bytes: budget,
                ..CacheConfig::default()
            })))
        })
        .as_ref()
}

/// A cache bound to one momentum-resolved device: the two lead hashes are
/// computed once and reused for every energy point solved against `dk`.
#[derive(Clone)]
pub(crate) struct CacheHandle {
    cache: Arc<SigmaCache>,
    hash_l: u64,
    hash_r: u64,
}

impl CacheHandle {
    pub(crate) fn for_dk(cache: Arc<SigmaCache>, dk: &DeviceK) -> CacheHandle {
        CacheHandle { hash_l: dk.lead_l.content_hash(), hash_r: dk.lead_r.content_hash(), cache }
    }

    pub(crate) fn cache(&self) -> &Arc<SigmaCache> {
        &self.cache
    }

    pub(crate) fn hash_of(&self, side: Side) -> u64 {
        match side {
            Side::Left => self.hash_l,
            Side::Right => self.hash_r,
        }
    }
}

/// [`CacheHandle`] for the env-armed global cache, if armed.
pub(crate) fn env_handle(dk: &DeviceK) -> Option<CacheHandle> {
    global().map(|c| CacheHandle::for_dk(c.clone(), dk))
}

/// The one chokepoint every transport path funnels its self-energy builds
/// through: consults `handle` when caching is on, falls back to the plain
/// solve when it is not — and **always** bypasses the cache while a
/// fault-injection campaign is armed, so fault batteries observe exactly
/// the uncached sequence of chokepoint draws.
pub(crate) fn cached_self_energy(
    handle: Option<&CacheHandle>,
    lead: &LeadBlocks,
    e: f64,
    eta: f64,
    side: Side,
    method: ObcMethod,
) -> ObcOutcome<ObcResult> {
    match handle {
        Some(h) if !qtx_linalg::fault::armed() => {
            h.cache.self_energy(lead, h.hash_of(side), e, eta, side, method)
        }
        _ => qtx_obc::self_energy(lead, e, Eta(eta), side, method),
    }
}

/// [`cached_self_energy`] for the transmission-only path: hands back
/// frame *parts* so a Σ that compressed inside the cache reaches the
/// solver still factored. Without a handle the fresh solve is compressed
/// here with `compress_tol` (the cache applies its own configured
/// tolerance, which wins when a handle is present). Same fault-injection
/// bypass as the dense chokepoint.
pub(crate) fn cached_self_energy_parts(
    handle: Option<&CacheHandle>,
    lead: &LeadBlocks,
    e: f64,
    eta: f64,
    side: Side,
    method: ObcMethod,
    compress_tol: f64,
) -> ObcOutcome<ObcFrameParts> {
    match handle {
        Some(h) if !qtx_linalg::fault::armed() => {
            h.cache.self_energy_parts(lead, h.hash_of(side), e, eta, side, method)
        }
        _ => {
            let fresh = qtx_obc::self_energy(lead, e, Eta(eta), side, method)?;
            let sigma = CompressedSigma::compress(&fresh.sigma, compress_tol);
            Ok(ObcFrameParts {
                sigma,
                injection: fresh.injection,
                inc_modes: fresh.inc_modes,
                out_modes: fresh.out_modes,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_obc::FeastConfig;

    fn chain() -> LeadBlocks {
        LeadBlocks::chain_1d(0.0, -1.0)
    }

    /// An 8-orbital lead with a rank-2 inter-cell coupling, so
    /// `Σ = τ·g·τᴴ` is genuinely low-rank and the compressed frame path
    /// has something to shed (a 1×1 chain Σ can never compress).
    fn block_lead() -> LeadBlocks {
        use qtx_linalg::{c64, gemm, Op};
        let nf = 8;
        let mut h00 = ZMat::zeros(nf, nf);
        let r = ZMat::random(nf, nf, 11);
        for i in 0..nf {
            for j in 0..nf {
                h00[(i, j)] = 0.1 * (r[(i, j)] + r[(j, i)].conj());
            }
            h00[(i, i)] += c64(2.0 + i as f64 * 0.1, 0.0);
        }
        let a = ZMat::random(nf, 2, 13);
        let b = ZMat::random(nf, 2, 17);
        let mut h01 = ZMat::zeros(nf, nf);
        gemm(c64(0.2, 0.0), &a, Op::None, &b, Op::Adjoint, qtx_linalg::Complex64::ZERO, &mut h01);
        LeadBlocks::new(h00, h01, ZMat::identity(nf), ZMat::zeros(nf, nf))
    }

    #[test]
    fn compressed_entries_shrink_and_parts_stay_lazy() {
        let lead = block_lead();
        let h = lead.content_hash();
        let tol = 1e-8;
        let exact = SigmaCache::new(CacheConfig::default());
        let packed =
            SigmaCache::new(CacheConfig { sigma_compress_tol: tol, ..CacheConfig::default() });
        let args = (0.3, 1e-6, Side::Left, ObcMethod::Decimation);
        let truth =
            exact.self_energy(&lead, h, args.0, args.1, args.2, args.3).expect("exact solve");
        let miss =
            packed.self_energy_parts(&lead, h, args.0, args.1, args.2, args.3).expect("miss");
        let hit = packed.self_energy_parts(&lead, h, args.0, args.1, args.2, args.3).expect("hit");
        for (label, parts) in [("miss", &miss), ("hit", &hit)] {
            assert!(parts.sigma.is_compressed(), "{label} must carry factors");
            let err = (&parts.sigma.to_dense() - &truth.sigma).norm_fro();
            assert!(err <= parts.sigma.bound() + 1e-14, "{label}: err {err} beyond bound");
        }
        assert!(
            packed.stats().bytes < exact.stats().bytes,
            "compressed frames must occupy fewer bytes ({} vs {})",
            packed.stats().bytes,
            exact.stats().bytes
        );
        // The dense-facing API still works off the same compressed entry,
        // expanding within the recorded bound.
        let dense_hit =
            packed.self_energy(&lead, h, args.0, args.1, args.2, args.3).expect("dense hit");
        let err = (&dense_hit.sigma - &truth.sigma).norm_fro();
        assert!(err <= hit.sigma.bound() + 1e-14);
        // Default tolerance stays bit-identical through the parts API too.
        let exact_hit =
            exact.self_energy_parts(&lead, h, args.0, args.1, args.2, args.3).expect("hit");
        assert!(!exact_hit.sigma.is_compressed());
        assert_eq!(exact_hit.sigma.to_dense().max_diff(&truth.sigma), 0.0);
    }

    #[test]
    fn hit_replays_the_stored_solve_bit_identically() {
        let cache = SigmaCache::new(CacheConfig::default());
        let lead = chain();
        let h = lead.content_hash();
        let fresh = qtx_obc::self_energy(&lead, 0.5, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert)
            .unwrap();
        let miss =
            cache.self_energy(&lead, h, 0.5, 0.0, Side::Left, ObcMethod::ShiftInvert).unwrap();
        let hit =
            cache.self_energy(&lead, h, 0.5, 0.0, Side::Left, ObcMethod::ShiftInvert).unwrap();
        assert_eq!(miss.sigma.max_diff(&fresh.sigma), 0.0);
        assert_eq!(hit.sigma.max_diff(&fresh.sigma), 0.0);
        assert_eq!(hit.injection.max_diff(&fresh.injection), 0.0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn key_separates_energy_eta_side_and_method() {
        let cache = SigmaCache::new(CacheConfig::default());
        let lead = chain();
        let h = lead.content_hash();
        for (e, eta, side, m) in [
            (0.5, 0.0, Side::Left, ObcMethod::ShiftInvert),
            (0.6, 0.0, Side::Left, ObcMethod::ShiftInvert),
            (0.5, 1e-6, Side::Left, ObcMethod::ShiftInvert),
            (0.5, 0.0, Side::Right, ObcMethod::ShiftInvert),
            (0.5, 0.0, Side::Left, ObcMethod::Feast(FeastConfig::default())),
        ] {
            cache.self_energy(&lead, h, e, eta, side, m).unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 5, 5));
        // A knob change re-fingerprints even within one method.
        let wide = FeastConfig { np: FeastConfig::default().np * 2, ..FeastConfig::default() };
        cache.self_energy(&lead, h, 0.5, 0.0, Side::Left, ObcMethod::Feast(wide)).unwrap();
        assert_eq!(cache.stats().entries, 6);
    }

    #[test]
    fn tiny_budget_evicts_lru_without_corruption() {
        let one_frame = {
            let r =
                qtx_obc::self_energy(&chain(), 0.5, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert)
                    .unwrap();
            qtx_obc::encode_obc_result(&r).len()
        };
        // Room for roughly two frames: the third insert must evict.
        let cache = SigmaCache::new(CacheConfig {
            max_bytes: 2 * one_frame + one_frame / 2,
            ..CacheConfig::default()
        });
        let lead = chain();
        let h = lead.content_hash();
        let energies = [0.4, 0.5, 0.6, 0.7];
        for &e in &energies {
            cache.self_energy(&lead, h, e, 0.0, Side::Left, ObcMethod::ShiftInvert).unwrap();
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "four frames through a two-frame budget must evict");
        assert!(s.bytes <= cache.config().max_bytes);
        // Every energy — evicted and resident alike — still returns the
        // exact solve.
        for &e in &energies {
            let got =
                cache.self_energy(&lead, h, e, 0.0, Side::Left, ObcMethod::ShiftInvert).unwrap();
            let fresh =
                qtx_obc::self_energy(&lead, e, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert)
                    .unwrap();
            assert_eq!(got.sigma.max_diff(&fresh.sigma), 0.0, "E = {e}");
        }
    }

    #[test]
    fn interpolation_validates_then_serves_within_bound() {
        let cache = SigmaCache::new(CacheConfig {
            interp_max_de: 0.05,
            interp_tol: 1e-3,
            ..CacheConfig::default()
        });
        let lead = chain();
        let h = lead.content_hash();
        let m = ObcMethod::ShiftInvert;
        let (e0, e1) = (0.50, 0.52);
        // Two anchors; nothing to interpolate from yet.
        cache.self_energy(&lead, h, e0, 0.0, Side::Left, m).unwrap();
        cache.self_energy(&lead, h, e1, 0.0, Side::Left, m).unwrap();
        assert!(cache.try_interpolate(h, 0.51, 0.0, Side::Left, m).is_none(), "unvalidated");
        // Mid-interval solve doubles as the validation.
        cache.self_energy(&lead, h, 0.51, 0.0, Side::Left, m).unwrap();
        assert_eq!(cache.stats().validations, 1);
        // Off-center query: served, and the recorded bound covers the
        // true error against a fresh solve.
        let eq = e0 + 0.25 * (e1 - e0);
        let (sigma, bound) = cache.try_interpolate(h, eq, 0.0, Side::Left, m).expect("usable");
        assert!(bound <= 1e-3, "smooth mid-band interval must validate usable");
        let fresh = qtx_obc::self_energy(&lead, eq, Eta::ZERO, Side::Left, m).unwrap();
        let err = sigma.max_diff(&fresh.sigma);
        assert!(err <= bound, "interpolant strayed outside its recorded bound: {err} > {bound}");
        assert_eq!(cache.stats().interp_hits, 1);
        // The validation solve was stored non-anchor: the bracket still
        // spans (e0, e1), not (e0, 0.51).
        let (sigma2, _) =
            cache.try_interpolate(h, 0.515, 0.0, Side::Left, m).expect("same interval");
        assert!(sigma2.max_diff(&fresh.sigma) < 1.0, "sane values");
    }

    #[test]
    fn band_edge_straddling_interval_is_rejected() {
        // The 1-D chain band edge sits at |E| = 2: Σ switches character
        // (propagating ↔ evanescent) across it, so a linear interpolant
        // across the edge is garbage and the validation must say so.
        let cache = SigmaCache::new(CacheConfig {
            interp_max_de: 0.5,
            interp_tol: 1e-3,
            ..CacheConfig::default()
        });
        let lead = chain();
        let h = lead.content_hash();
        let m = ObcMethod::ShiftInvert;
        cache.self_energy(&lead, h, 1.9, 0.0, Side::Left, m).unwrap();
        cache.self_energy(&lead, h, 2.1, 0.0, Side::Left, m).unwrap();
        cache.self_energy(&lead, h, 2.0, 0.0, Side::Left, m).unwrap(); // validation
        assert_eq!(cache.stats().validations, 1);
        assert!(
            cache.try_interpolate(h, 1.95, 0.0, Side::Left, m).is_none(),
            "edge-straddling interval must be unusable"
        );
    }

    #[test]
    fn env_budget_format_parses() {
        assert_eq!(parse_bytes("65536"), Some(65536));
        assert_eq!(parse_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_bytes("64K"), Some(64 << 10));
        assert_eq!(parse_bytes("256m"), Some(256 << 20));
        assert_eq!(parse_bytes("2g"), Some(2 << 30));
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("lots"), None);
    }
}
