//! Adaptive energy-grid refinement.
//!
//! The automatic grid of [`crate::EnergyGrid`] refines *a priori* around
//! lead subband edges. This module refines *a posteriori*: after a sweep
//! round solves its points, the integrator inspects the records — local
//! transmission jumps, curvature, and the ladder's own escalation flags —
//! and feeds bisection points back into the plan until every interval's
//! error estimate clears the tolerance or the point budget is spent.
//! Resonances the edge heuristic cannot see (a quantum-dot level in the
//! middle of a band) get resolved with a handful of extra points instead
//! of a uniformly finer grid.
//!
//! # Determinism
//!
//! Each round's refinement set is a pure function of the solved record
//! set, which is itself bit-identical for any worker count (the
//! [`crate::scheduler`] contract). Candidate intervals are scored and
//! selected in a canonical order, so the refined grid — and therefore the
//! whole refined sweep — is bit-identical across worker counts *and*
//! across kill/resume: a resumed run replays the same derivations from
//! the same checkpointed records. Checkpoints are pinned to
//! [`refined_fingerprint`] (base plan ⊕ refinement config), so a flat
//! sweep's checkpoint can never silently resume a refined one or vice
//! versa, and two refined sweeps with different tolerances never mix.

use crate::checkpoint::{self, plan_fingerprint};
use crate::device::Device;
use crate::error::TransportResult;
use crate::scheduler::BatchStats;
use crate::sweep::{
    finalize, interpolate_failures, solve_phase, PointRecord, SweepHealth, SweepOptions, SweepPlan,
    SweepResult, STATUS_OK,
};
use std::collections::HashSet;

/// Knobs of [`parallel_sweep_refined`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineConfig {
    /// Per-interval error tolerance (transmission·eV): an interval whose
    /// estimated integration error exceeds this gets bisected.
    pub tol: f64,
    /// Total refinement-point budget across all rounds and momenta.
    pub budget: usize,
    /// Maximum refinement rounds (each round sweeps, estimates, bisects).
    pub max_rounds: usize,
    /// Never bisect an interval at or below twice this spacing — the
    /// resolution floor, mirroring the automatic grid's `d_min`.
    pub min_de: f64,
    /// Force refinement next to points the escalation ladder struggled
    /// with (escalated rung, interpolated, or failed): trouble spots are
    /// where the integrand is least trustworthy.
    pub flag_escalated: bool,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { tol: 1e-4, budget: 256, max_rounds: 8, min_de: 1e-4, flag_escalated: true }
    }
}

impl RefineConfig {
    /// FNV-1a over every knob's bit pattern — any config change changes
    /// it, so checkpoints pin the refinement schedule, not just the grid.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bits: u64| {
            h ^= bits;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.tol.to_bits());
        mix(self.budget as u64);
        mix(self.max_rounds as u64);
        mix(self.min_de.to_bits());
        mix(u64::from(self.flag_escalated));
        h
    }
}

/// Checkpoint fingerprint of a refined sweep: the base plan's fingerprint
/// chained with the refinement config's. Refinement-inserted points are
/// deliberately *not* part of it — they are re-derived on resume, and
/// mid-refinement checkpoints must stay loadable under one stable
/// identity.
pub fn refined_fingerprint(base: &SweepPlan, cfg: &RefineConfig) -> u64 {
    let mut h = plan_fingerprint(base);
    h ^= cfg.fingerprint();
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    h
}

/// Output of [`parallel_sweep_refined`].
#[derive(Debug, Clone)]
pub struct RefinedSweep {
    /// The aggregated sweep over the refined grid. `samples` and
    /// `records` are in `(k, E)` energy order (refinement-inserted points
    /// interleave their base neighbors), not `(k_idx, e_idx)` order.
    pub result: SweepResult,
    /// The refined plan: the base grids plus every inserted point.
    /// Inserted energies are *appended* to their momentum's grid, so
    /// `e_idx` keeps counting past the base grid — index order is
    /// insertion order, not energy order.
    pub plan: SweepPlan,
    /// Refinement rounds that ran (0 = the base sweep already met `tol`).
    pub rounds: usize,
    /// Points inserted beyond the base plan.
    pub points_added: usize,
    /// Points of the base plan.
    pub base_points: usize,
    /// The run stopped early on [`SweepOptions::max_new_points`] (the
    /// deterministic kill); resume with the same checkpoint to finish.
    pub truncated: bool,
}

/// One scored bisection candidate.
struct Candidate {
    k_idx: u32,
    /// Lower-endpoint energy (tie-break key, unique within a momentum).
    e0: f64,
    mid: f64,
    est: f64,
}

/// Scores every interval of every momentum against the solved records and
/// returns the midpoints to insert, best-first, capped at `limit`.
///
/// Pure function of `(records, cfg)`: records are compared and sorted by
/// energy bit patterns only, so any two runs holding bit-identical
/// records derive bit-identical refinements.
fn select_refinements(
    plan: &SweepPlan,
    records: &[PointRecord],
    cfg: &RefineConfig,
    limit: usize,
) -> Vec<(u32, f64)> {
    if limit == 0 {
        return Vec::new();
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for k_idx in 0..plan.k_points.len() as u32 {
        // Energy-sorted view of this momentum's records (e_idx order is
        // insertion order once refinement points append). Records beyond
        // the current plan are ignored: a resumed run's checkpoint may
        // hold points from rounds the replay has not re-derived yet, and
        // the derivation must see exactly what the uninterrupted run's
        // did at the same round.
        let n_e = plan.energies[k_idx as usize].len() as u32;
        let mut rs: Vec<&PointRecord> =
            records.iter().filter(|r| r.k_idx == k_idx && r.e_idx < n_e).collect();
        rs.sort_by(|a, b| a.e.partial_cmp(&b.e).expect("finite grid energies"));
        for i in 0..rs.len().saturating_sub(1) {
            let (r0, r1) = (rs[i], rs[i + 1]);
            let de = r1.e - r0.e;
            if de <= 2.0 * cfg.min_de {
                continue; // at the resolution floor
            }
            // Base estimate: ΔE·(½|ΔT| + ΔE·|T″|/12) — the unresolved
            // transmission jump plus the trapezoid curvature error, both
            // in transmission·eV. Curvature from the flanking divided
            // differences where the neighbors exist and are finite.
            let mut est = 0.0f64;
            if r0.t.is_finite() && r1.t.is_finite() {
                let slope = (r1.t - r0.t).abs();
                let tdd = curvature(rs.get(i.wrapping_sub(1)).copied(), r0, r1).max(curvature(
                    rs.get(i + 2).copied(),
                    r1,
                    r0,
                ));
                est = de * (0.5 * slope + de * tdd / 12.0);
            }
            // Trouble flags: an endpoint the ladder escalated on (or that
            // failed outright, or arrived via interpolation) forces the
            // interval above the tolerance — the integrand there is least
            // trustworthy exactly where refinement is cheapest to justify.
            let troubled = |r: &PointRecord| r.status != STATUS_OK || r.method != 0;
            if cfg.flag_escalated && (troubled(r0) || troubled(r1)) {
                est = est.max(2.0 * cfg.tol);
            }
            if est > cfg.tol {
                candidates.push(Candidate { k_idx, e0: r0.e, mid: 0.5 * (r0.e + r1.e), est });
            }
        }
    }
    // Canonical selection order: worst interval first; ties broken on the
    // (unique) momentum/lower-endpoint identity so the cut at `limit` is
    // schedule-independent.
    candidates.sort_by(|a, b| {
        b.est
            .partial_cmp(&a.est)
            .expect("finite estimates")
            .then(a.k_idx.cmp(&b.k_idx))
            .then(a.e0.to_bits().cmp(&b.e0.to_bits()))
    });
    candidates.truncate(limit);
    candidates.into_iter().map(|c| (c.k_idx, c.mid)).collect()
}

/// |T″| from the second divided difference over `(flank, a, b)`; 0 when
/// no finite flanking point exists.
fn curvature(flank: Option<&PointRecord>, a: &PointRecord, b: &PointRecord) -> f64 {
    match flank {
        Some(f) if f.t.is_finite() => {
            let d_ab = (b.t - a.t) / (b.e - a.e);
            let d_fa = (a.t - f.t) / (a.e - f.e);
            (2.0 * (d_ab - d_fa) / (b.e - f.e)).abs()
        }
        _ => 0.0,
    }
}

/// [`crate::parallel_sweep_resumable`] with adaptive grid refinement:
/// sweeps the base plan, then repeatedly bisects the intervals whose
/// estimated integration error exceeds `cfg.tol` until every interval
/// clears it, the point budget is spent, or `cfg.max_rounds` rounds ran.
///
/// Checkpoint/resume and `max_new_points` kills work exactly as in the
/// flat sweep, across round boundaries: the checkpoint holds the solved
/// records under the [`refined_fingerprint`] identity, and a resumed run
/// re-derives the same refined grid from them bit-identically.
pub fn parallel_sweep_refined(
    dev: &Device,
    base: &SweepPlan,
    n_ranks: usize,
    opts: &SweepOptions,
    cfg: &RefineConfig,
) -> TransportResult<RefinedSweep> {
    let fp = refined_fingerprint(base, cfg);
    let mut done: Vec<PointRecord> = match &opts.checkpoint {
        Some(path) if path.exists() => checkpoint::load_with_fingerprint(path, fp)?,
        _ => Vec::new(),
    };
    let mut plan = base.clone();
    let base_points = base.total_points();
    let cache = opts.cache.resolve();

    let mut rounds = 0usize;
    let mut points_added = 0usize;
    let mut new_solved = 0usize;
    let mut truncated = false;
    let mut stats = BatchStats::default();
    let mut faults_injected = 0u64;
    let mut cache_delta = (0u64, 0u64, 0u64);
    let mut comm_seconds = 0.0f64;

    loop {
        // Solve everything the current plan wants and the checkpoint does
        // not already hold, honoring the deterministic kill budget.
        let done_set: HashSet<(u32, u32)> = done.iter().map(|r| (r.k_idx, r.e_idx)).collect();
        let mut todo: Vec<(u32, u32)> =
            plan.canonical_points().into_iter().filter(|p| !done_set.contains(p)).collect();
        if let Some(limit) = opts.max_new_points {
            let remaining = limit.saturating_sub(new_solved);
            if todo.len() > remaining {
                todo.truncate(remaining);
                truncated = true;
            }
        }
        if !todo.is_empty() {
            let phase = solve_phase(dev, &plan, todo, n_ranks, opts, cache.as_ref())?;
            new_solved += phase.records.len();
            done.extend(phase.records);
            done.sort_by_key(|r| (r.k_idx, r.e_idx));
            stats.panics += phase.stats.panics;
            stats.retries += phase.stats.retries;
            stats.quarantined += phase.stats.quarantined;
            stats.stragglers += phase.stats.stragglers;
            faults_injected += phase.faults_injected;
            cache_delta.0 += phase.cache_delta.0;
            cache_delta.1 += phase.cache_delta.1;
            cache_delta.2 += phase.cache_delta.2;
            comm_seconds += phase.comm_seconds;
            if let Some(path) = &opts.checkpoint {
                checkpoint::save_with_fingerprint(path, fp, &done)?;
            }
        }
        if truncated {
            // Killed mid-round: derive nothing from the partial record
            // set — the resumed run completes the round first and then
            // replays the same derivation an uninterrupted run makes.
            break;
        }
        if rounds >= cfg.max_rounds {
            break;
        }
        let mids = select_refinements(&plan, &done, cfg, cfg.budget - points_added);
        if mids.is_empty() {
            break;
        }
        for &(k_idx, mid) in &mids {
            plan.energies[k_idx as usize].push(mid);
        }
        points_added += mids.len();
        rounds += 1;
    }

    // Final assembly in (k, E) energy order: refinement-inserted e_idx
    // values count past the base grid, so index order interleaves wrong —
    // interpolation and the spectrum both want energy neighbors adjacent.
    done.sort_by(|a, b| {
        a.k_idx.cmp(&b.k_idx).then(a.e.partial_cmp(&b.e).expect("finite grid energies"))
    });
    interpolate_failures(&mut done);
    let health = SweepHealth::from_records(&done, faults_injected, stats, cache_delta);
    let result = finalize(done, health, comm_seconds);
    Ok(RefinedSweep { result, plan, rounds, points_added, base_points, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(k_idx: u32, e_idx: u32, e: f64, t: f64) -> PointRecord {
        PointRecord {
            k_idx,
            e_idx,
            kz: 0.0,
            w: 1.0,
            e,
            t,
            method: 0,
            status: STATUS_OK,
            attempts: 1,
            escalations: 0,
            residual: 0.0,
            eta: 0.0,
            wall_ms: 0.0,
            interp_bound: 0.0,
        }
    }

    fn flat_plan(n: usize) -> SweepPlan {
        SweepPlan {
            k_points: vec![(0.0, 1.0)],
            energies: vec![(0..n).map(|i| i as f64 * 0.1).collect()],
        }
    }

    #[test]
    fn smooth_records_need_no_refinement() {
        let plan = flat_plan(5);
        let records: Vec<PointRecord> = (0..5).map(|i| record(0, i, i as f64 * 0.1, 1.0)).collect();
        let cfg = RefineConfig::default();
        assert!(select_refinements(&plan, &records, &cfg, 100).is_empty());
    }

    #[test]
    fn a_jump_is_bisected_at_the_midpoint() {
        let plan = flat_plan(4);
        let mut records: Vec<PointRecord> =
            (0..4).map(|i| record(0, i, i as f64 * 0.1, 0.0)).collect();
        records[2].t = 1.0; // spike at e = 0.2
        let cfg = RefineConfig { tol: 1e-3, ..Default::default() };
        let mids = select_refinements(&plan, &records, &cfg, 100);
        assert!(mids.iter().any(|&(_, m)| (m - 0.15).abs() < 1e-12), "{mids:?}");
        assert!(mids.iter().any(|&(_, m)| (m - 0.25).abs() < 1e-12), "{mids:?}");
        // The spike's two slope intervals outrank the curvature-only
        // flank, and the limit cuts the canonical order deterministically.
        let one = select_refinements(&plan, &records, &cfg, 1);
        assert_eq!(one.len(), 1);
        assert!((one[0].1 - 0.15).abs() < 1e-12 || (one[0].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn resolution_floor_stops_refinement() {
        let plan = flat_plan(2);
        let records = vec![record(0, 0, 0.0, 0.0), record(0, 1, 0.1, 1.0)];
        let cfg = RefineConfig { tol: 1e-6, min_de: 0.06, ..Default::default() };
        assert!(
            select_refinements(&plan, &records, &cfg, 100).is_empty(),
            "ΔE = 0.1 ≤ 2·min_de never bisects"
        );
    }

    #[test]
    fn escalated_endpoints_force_refinement() {
        let plan = flat_plan(3);
        let mut records: Vec<PointRecord> =
            (0..3).map(|i| record(0, i, i as f64 * 0.1, 1.0)).collect();
        records[1].method = 2; // the ladder escalated here
        let cfg = RefineConfig::default();
        let mids = select_refinements(&plan, &records, &cfg, 100);
        assert_eq!(mids.len(), 2, "both intervals touching the trouble spot: {mids:?}");
        let off = RefineConfig { flag_escalated: false, ..cfg };
        assert!(select_refinements(&plan, &records, &off, 100).is_empty());
    }

    #[test]
    fn fingerprints_pin_config_and_plan() {
        let plan = flat_plan(4);
        let cfg = RefineConfig::default();
        let fp = refined_fingerprint(&plan, &cfg);
        assert_ne!(fp, plan_fingerprint(&plan), "refined identity ≠ flat identity");
        let tighter = RefineConfig { tol: 1e-5, ..cfg };
        assert_ne!(fp, refined_fingerprint(&plan, &tighter));
        let other_plan = flat_plan(5);
        assert_ne!(fp, refined_fingerprint(&other_plan, &cfg));
    }
}
