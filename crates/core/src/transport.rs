//! One (E, k) transport pixel: OBCs + Eq. 5 solve + observables.
//!
//! The production pipeline mirrors the paper's interleaving: Step 1 of
//! SplitSolve (`Q = A⁻¹B`) only needs `A = E·S − H`, so it runs while the
//! OBC algorithm (FEAST on the CPUs) produces `Σ^RB` and `Inj`; the
//! post-processing then combines them (Fig. 6's timeline). Transmission is
//! computed two independent ways:
//!
//! * **Wave function** (Eq. 5): solve for the scattering states injected
//!   from each contact, project the outgoing block on the lead modes, sum
//!   `|t|²` over propagating channels (flux-normalized modes make the
//!   amplitudes probabilities directly);
//! * **NEGF/Caroli** (Eq. 4): `T = Tr[Γ_L·G_{0,n−1}·Γ_R·G_{0,n−1}ᴴ]` via
//!   the RGF kernel — the cross-check used throughout the test suite.

use crate::cache::{self, CacheHandle};
use crate::device::{DeviceK, TransportConfig};
use crate::error::{TransportError, TransportResult};
use qtx_accel::AccelRuntime;
use qtx_linalg::{qr_least_squares, Complex64, LinalgError, ZMat};
use qtx_obc::{self_energy, BeynConfig, Eta, LeadBlocks, ModeSet, ObcMethod, ObcResult, Side};
use qtx_solver::{
    bcr_solve, btd_lu_solve_ws, rgf_boundary_ws, ObcSystem, SolverKind, SplitSolve, Workspace,
};
use qtx_sparse::CompressedSigma;
use std::time::Instant;

thread_local! {
    /// Per-thread solver scratch pool: energy points swept on the same
    /// thread (the common sweep layout) recycle one set of block
    /// temporaries instead of reallocating them every point.
    static SOLVER_WS: Workspace = Workspace::new();
}

/// Everything computed at one (E, k) pixel.
#[derive(Debug, Clone)]
pub struct EnergyPointResult {
    /// Energy (eV).
    pub e: f64,
    /// Transverse momentum.
    pub kz: f64,
    /// Total left→right transmission (sum over incoming left modes).
    pub transmission: f64,
    /// Right→left transmission (= `transmission` at equilibrium symmetry).
    pub transmission_rl: f64,
    /// Total reflection of left-injected modes.
    pub reflection: f64,
    /// Propagating channel counts `(left lead, right lead)`.
    pub channels: (usize, usize),
    /// Scattering wave functions, one column per injected mode
    /// (left-injected columns first), `N_SS × (m_L + m_R)`.
    pub psi: ZMat,
    /// Number of left-injected columns inside `psi`.
    pub m_left: usize,
    /// The assembled system (kept for observable post-processing).
    pub sigma_l: ZMat,
    /// Right self-energy.
    pub sigma_r: ZMat,
}

/// Expansion coefficients of a boundary block over a mode set.
fn project_onto_modes(modes: &[ModeSet], block: &[Complex64]) -> Vec<Complex64> {
    if modes.is_empty() {
        return Vec::new();
    }
    let nf = block.len();
    let mut u = ZMat::zeros(nf, modes.len());
    for (j, m) in modes.iter().enumerate() {
        for i in 0..nf {
            u[(i, j)] = m.u[i];
        }
    }
    let mut b = ZMat::zeros(nf, 1);
    b.col_mut(0).copy_from_slice(block);
    let c = qr_least_squares(&u, &b);
    c.col(0).to_vec()
}

/// Solves one energy point on a momentum-resolved device.
#[deprecated(
    since = "0.1.0",
    note = "use `TransportEngine::solve_point` with `PointPolicy::direct()` — the engine owns \
            the scheduler, workspace pool and self-energy cache this free function has to \
            re-resolve on every call"
)]
pub fn solve_energy_point(
    dk: &DeviceK,
    e: f64,
    cfg: &TransportConfig,
) -> TransportResult<EnergyPointResult> {
    solve_point_direct(dk, e, cfg, None, cache::env_handle(dk).as_ref())
}

/// Same as [`solve_energy_point`] with an attached accelerator runtime
/// (for the virtual-time experiments).
#[deprecated(
    since = "0.1.0",
    note = "use `TransportEngine::solve_point` with `PointPolicy::direct().with_runtime(rt)`"
)]
pub fn solve_energy_point_with_runtime(
    dk: &DeviceK,
    e: f64,
    cfg: &TransportConfig,
    rt: Option<&AccelRuntime>,
) -> TransportResult<EnergyPointResult> {
    solve_point_direct(dk, e, cfg, rt, cache::env_handle(dk).as_ref())
}

/// The raw single-attempt entry every public path funnels into: builds
/// both lead self-energies (through the cache when a handle is given) and
/// runs the Eq. 5 solve with the configured method at exact energy.
pub(crate) fn solve_point_direct(
    dk: &DeviceK,
    e: f64,
    cfg: &TransportConfig,
    rt: Option<&AccelRuntime>,
    cache: Option<&CacheHandle>,
) -> TransportResult<EnergyPointResult> {
    let obc_l = cache::cached_self_energy(cache, &dk.lead_l, e, 0.0, Side::Left, cfg.obc)
        .map_err(|source| TransportError::Obc { side: Side::Left, source })?;
    let obc_r = cache::cached_self_energy(cache, &dk.lead_r, e, 0.0, Side::Right, cfg.obc)
        .map_err(|source| TransportError::Obc { side: Side::Right, source })?;
    solve_with_obc(dk, e, cfg, &obc_l, &obc_r, rt)
}

/// Inner solve with precomputed OBCs (lets the sweep reuse them and lets
/// tests swap algorithms).
pub fn solve_with_obc(
    dk: &DeviceK,
    e: f64,
    cfg: &TransportConfig,
    obc_l: &ObcResult,
    obc_r: &ObcResult,
    rt: Option<&AccelRuntime>,
) -> TransportResult<EnergyPointResult> {
    Ok(solve_with_obc_eta(dk, e, 0.0, cfg, obc_l, obc_r, rt)?.0)
}

/// [`solve_with_obc`] at finite broadening `η` (the system becomes
/// `(E + iη)S − H − Σ`), additionally returning the max-norm residual of
/// the scattering states — the quality figure the escalation ladder and
/// the sweep health report record.
pub fn solve_with_obc_eta(
    dk: &DeviceK,
    e: f64,
    eta: f64,
    cfg: &TransportConfig,
    obc_l: &ObcResult,
    obc_r: &ObcResult,
    rt: Option<&AccelRuntime>,
) -> TransportResult<(EnergyPointResult, f64)> {
    let a = if eta == 0.0 { dk.es_minus_h(e) } else { dk.es_minus_h_eta(e, eta) };
    let sys = ObcSystem {
        a,
        sigma_l: obc_l.sigma.clone().into(),
        sigma_r: obc_r.sigma.clone().into(),
        rhs_top: obc_l.injection.clone(),
        rhs_bottom: obc_r.injection.clone(),
    };
    let psi = SOLVER_WS.with(|ws| -> TransportResult<ZMat> {
        Ok(match cfg.solver {
            SolverKind::SplitSolve { partitions } => {
                let p = partitions.min(sys.num_blocks().next_power_of_two() / 2).max(1);
                let p = if p.is_power_of_two() { p } else { 1 };
                SplitSolve::new(p.min(sys.num_blocks())).solve_ws(&sys, rt, ws)?.0
            }
            SolverKind::BtdLu => btd_lu_solve_ws(&sys, ws)?,
            SolverKind::Bcr => bcr_solve(&sys)?,
        })
    })?;
    let s = sys.block_size();
    let n = sys.dim();
    let m_left = obc_l.injection.cols();
    let m_right = obc_r.injection.cols();
    // Left→right: project the last block on the right-going mode set.
    let mut t_lr = 0.0;
    let mut r_l = 0.0;
    for j in 0..m_left {
        let last: Vec<Complex64> = (0..s).map(|i| psi[(n - s + i, j)]).collect();
        let coeffs = project_onto_modes(&obc_r.out_modes, &last);
        for (c, m) in coeffs.iter().zip(&obc_r.out_modes) {
            if m.propagating {
                t_lr += c.norm_sqr();
            }
        }
        // Reflection: scattered part of the first block over left-going
        // modes (subtract the incident mode).
        let inc = &obc_l.inc_modes[j];
        let first: Vec<Complex64> = (0..s).map(|i| psi[(i, j)] - inc.u[i]).collect();
        let rc = project_onto_modes(&obc_l.out_modes, &first);
        for (c, m) in rc.iter().zip(&obc_l.out_modes) {
            if m.propagating {
                r_l += c.norm_sqr();
            }
        }
    }
    // Right→left: right-injected columns projected on left-going modes at
    // the first block.
    let mut t_rl = 0.0;
    for j in 0..m_right {
        let col = m_left + j;
        let first: Vec<Complex64> = (0..s).map(|i| psi[(i, col)]).collect();
        let coeffs = project_onto_modes(&obc_l.out_modes, &first);
        for (c, m) in coeffs.iter().zip(&obc_l.out_modes) {
            if m.propagating {
                t_rl += c.norm_sqr();
            }
        }
    }
    if !(t_lr.is_finite() && t_rl.is_finite() && r_l.is_finite()) {
        return Err(TransportError::Linalg(LinalgError::NonFinite {
            op: "transmission",
            count: 1,
        }));
    }
    let residual = btd_residual(&sys, &psi);
    Ok((
        EnergyPointResult {
            e,
            kz: dk.kz,
            transmission: t_lr,
            transmission_rl: t_rl,
            reflection: r_l,
            channels: (m_left, m_right),
            psi,
            m_left,
            sigma_l: obc_l.sigma.clone(),
            sigma_r: obc_r.sigma.clone(),
        },
        residual,
    ))
}

/// Max-norm residual `‖T·ψ − b‖_max` evaluated block row by block row —
/// O(n_b·s²·m), never densifying `T` (the `ObcSystem::residual` check
/// does, which is fine for tests but not for every sweep point).
fn btd_residual(sys: &ObcSystem, x: &ZMat) -> f64 {
    let s = sys.block_size();
    let nb = sys.num_blocks();
    let m = sys.num_rhs();
    if m == 0 {
        return 0.0;
    }
    let xb = |i: usize| x.block(i * s, 0, s, m);
    let mut worst = 0.0f64;
    for i in 0..nb {
        let mut r = &sys.a.diag[i] * &xb(i);
        if i + 1 < nb {
            r.axpy(Complex64::ONE, &(&sys.a.upper[i] * &xb(i + 1)));
        }
        if i > 0 {
            r.axpy(Complex64::ONE, &(&sys.a.lower[i - 1] * &xb(i - 1)));
        }
        if i == 0 {
            r.axpy(-Complex64::ONE, &(&*sys.sigma_l.dense() * &xb(0)));
            for c in 0..sys.rhs_top.cols() {
                for row in 0..s {
                    r[(row, c)] -= sys.rhs_top[(row, c)];
                }
            }
        }
        if i == nb - 1 {
            r.axpy(-Complex64::ONE, &(&*sys.sigma_r.dense() * &xb(nb - 1)));
            let off = sys.rhs_top.cols();
            for c in 0..sys.rhs_bottom.cols() {
                for row in 0..s {
                    r[(row, off + c)] -= sys.rhs_bottom[(row, c)];
                }
            }
        }
        worst = worst.max(r.norm_max());
    }
    worst
}

/// NEGF/Caroli transmission through the RGF kernel (Eq. 4 route).
pub fn caroli_transmission(dk: &DeviceK, e: f64, obc: ObcMethod) -> TransportResult<f64> {
    let obc_l = self_energy(&dk.lead_l, e, Eta::ZERO, Side::Left, obc)
        .map_err(|source| TransportError::Obc { side: Side::Left, source })?;
    let obc_r = self_energy(&dk.lead_r, e, Eta::ZERO, Side::Right, obc)
        .map_err(|source| TransportError::Obc { side: Side::Right, source })?;
    caroli_from_sigmas(dk, e, 0.0, &obc_l.sigma, &obc_r.sigma)
}

/// Caroli transmission from already-computed self-energies — shared by
/// [`caroli_transmission`] and the decimation rung of the escalation
/// ladder (whose Σ comes without modes, so the wave-function route is
/// unavailable).
pub fn caroli_from_sigmas(
    dk: &DeviceK,
    e: f64,
    eta: f64,
    sigma_l: &ZMat,
    sigma_r: &ZMat,
) -> TransportResult<f64> {
    let a = if eta == 0.0 { dk.es_minus_h(e) } else { dk.es_minus_h_eta(e, eta) };
    let sys = ObcSystem {
        a,
        sigma_l: sigma_l.clone().into(),
        sigma_r: sigma_r.clone().into(),
        rhs_top: ZMat::zeros(dk.h.block_size(), 0),
        rhs_bottom: ZMat::zeros(dk.h.block_size(), 0),
    };
    caroli_of_system(&sys)
}

/// `Γ = i(Σ − Σᴴ)` from a possibly-factored Σ. The broadening matrix is
/// one `s × s` block — expanding a compressed Σ here costs bandwidth²,
/// never n².
fn gamma_of(sigma: &CompressedSigma) -> ZMat {
    let sig = sigma.dense();
    &sig.scaled(Complex64::I) - &sig.adjoint().scaled(Complex64::I)
}

/// Caroli transmission of an assembled open system through the
/// boundary-block-only RGF: the only Green's function blocks ever
/// materialized are `G_{0,0}`, `G_{0,n−1}` and `G_{n−1,n−1}`.
fn caroli_of_system(sys: &ObcSystem) -> TransportResult<f64> {
    let gl = gamma_of(&sys.sigma_l);
    let gr = gamma_of(&sys.sigma_r);
    // T = Tr[Γ_L·G_{0,n−1}·Γ_R·G_{0,n−1}ᴴ]: the inner sandwich
    // A_R = G·Γ_R·Gᴴ is Hermitian (Γ_R is), so it collapses to one
    // rank-2k update zher2k(½, G·Γ_R, G) = ½(G·Γ_R·Gᴴ + G·Γ_Rᴴ·Gᴴ) at
    // half the flops of the two gemms, and the trace of the remaining
    // product is the Frobenius inner product Σᵢⱼ (Γ_L)ᵢⱼ·(A_R)ⱼᵢ — no
    // third gemm at all. Both temporaries cycle through the per-thread
    // pool, like the RGF solve that produced G.
    let t = SOLVER_WS.with(|ws| -> TransportResult<Complex64> {
        let g = rgf_boundary_ws(sys, ws)?;
        let s = gr.rows();
        let ggr = ws.matmul(&g.corner, &gr);
        let mut a_r = ws.take_scratch(s, s);
        qtx_linalg::zher2k(
            Complex64::new(0.5, 0.0),
            ggr.view(),
            g.corner.view(),
            qtx_linalg::Op::None,
            0.0,
            &mut a_r,
        );
        ws.recycle(ggr);
        let mut t = Complex64::ZERO;
        for j in 0..s {
            for i in 0..s {
                t = t.mul_add(gl[(i, j)], a_r[(j, i)]);
            }
        }
        ws.recycle(a_r);
        Ok(t)
    })?;
    Ok(t.re)
}

/// Transmission-only solve through the boundary-block RGF path: Σ flows
/// from the cache (or a fresh OBC solve) in its compressed representation
/// straight into [`ObcSystem`], no scattering-state system is ever formed,
/// and the dense working set stays at bandwidth·n. Returns the point plus
/// the worse of the two Σ-compression bounds (0 when compression is off —
/// then the transmission is bit-identical to the Caroli route over exact
/// self-energies).
pub(crate) fn solve_point_transmission_only(
    dk: &DeviceK,
    e: f64,
    cfg: &TransportConfig,
    cache: Option<&CacheHandle>,
    compress_tol: f64,
) -> TransportResult<(EnergyPointResult, f64)> {
    let parts_l = cache::cached_self_energy_parts(
        cache,
        &dk.lead_l,
        e,
        0.0,
        Side::Left,
        cfg.obc,
        compress_tol,
    )
    .map_err(|source| TransportError::Obc { side: Side::Left, source })?;
    let parts_r = cache::cached_self_energy_parts(
        cache,
        &dk.lead_r,
        e,
        0.0,
        Side::Right,
        cfg.obc,
        compress_tol,
    )
    .map_err(|source| TransportError::Obc { side: Side::Right, source })?;
    let bound = parts_l.sigma.bound().max(parts_r.sigma.bound());
    let channels = (
        parts_l.inc_modes.iter().filter(|m| m.propagating).count(),
        parts_r.inc_modes.iter().filter(|m| m.propagating).count(),
    );
    let s = dk.h.block_size();
    let sys = ObcSystem {
        a: dk.es_minus_h(e),
        sigma_l: parts_l.sigma,
        sigma_r: parts_r.sigma,
        rhs_top: ZMat::zeros(s, 0),
        rhs_bottom: ZMat::zeros(s, 0),
    };
    let t = caroli_of_system(&sys)?;
    if !t.is_finite() {
        return Err(TransportError::Linalg(LinalgError::NonFinite { op: "caroli", count: 1 }));
    }
    Ok((
        EnergyPointResult {
            e,
            kz: dk.kz,
            transmission: t,
            transmission_rl: t,
            reflection: 0.0,
            channels,
            psi: ZMat::zeros(0, 0),
            m_left: 0,
            sigma_l: sys.sigma_l.to_dense(),
            sigma_r: sys.sigma_r.to_dense(),
        },
        bound,
    ))
}

/// Lead band edges helper re-exported for grid building.
pub fn lead_of(dk: &DeviceK, side: Side) -> &LeadBlocks {
    match side {
        Side::Left => &dk.lead_l,
        Side::Right => &dk.lead_r,
    }
}

// ---------------------------------------------------------------------------
// Per-point escalation ladder.
// ---------------------------------------------------------------------------

/// Broadening applied from the second rung on: large enough to step off a
/// resonance pole, small enough that `|T(E+iη) − T(E)|` stays far below
/// the transmission tolerances used throughout the test suite.
pub const ETA_BUMP: f64 = 1e-6;

/// Human-readable names of the ladder rungs, indexed by
/// [`PointOutcome::method_used`]. `cache-interp` sits *after* `failed` so
/// the rung codes of existing checkpoints stay valid — it is not a ladder
/// rung but the engine's interpolated-Σ fast path.
pub const LADDER_METHOD_NAMES: [&str; 9] = [
    "configured",
    "configured+eta",
    "feast-wide",
    "beyn",
    "shift-invert",
    "decimation-caroli",
    "failed",
    "cache-interp",
    "boundary-caroli",
];

/// `method_used` value marking a point every rung gave up on.
pub const METHOD_FAILED: u8 = 6;

/// `method_used` value of a point served from interpolated cached
/// self-energies (engine-only; never appears in sweep records).
pub const METHOD_CACHE_INTERP: u8 = 7;

/// `method_used` value of a transmission-only point solved through the
/// boundary-block RGF with compressed self-energies (engine-only; never
/// appears in sweep records).
pub const METHOD_BOUNDARY: u8 = 8;

/// Robustness record of one (E, k) point: which rung produced the
/// result, how hard the ladder had to work, and how good the answer is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointOutcome {
    /// Index into [`LADDER_METHOD_NAMES`] of the method that succeeded
    /// ([`METHOD_FAILED`] when none did).
    pub method_used: u8,
    /// Total solve attempts, the first one included.
    pub attempts: u16,
    /// Ladder steps taken beyond the configured method.
    pub escalations: u16,
    /// Max-norm residual of the accepted scattering states
    /// (`+inf` for a failed point, `0` for the mode-free Caroli rung).
    pub residual: f64,
    /// Broadening η the accepted attempt ran with.
    pub eta: f64,
    /// Recorded error bound of the interpolated self-energies when
    /// `method_used == METHOD_CACHE_INTERP` (the worse of the two sides);
    /// `0` for every real solve.
    pub interp_bound: f64,
    /// Wall time spent on the point, all attempts included (ms). Excluded
    /// from checkpoint identity — timing is not physics.
    pub wall_ms: f64,
}

impl PointOutcome {
    /// Rung name for logs and health reports.
    pub fn method_name(&self) -> &'static str {
        LADDER_METHOD_NAMES[(self.method_used as usize).min(LADDER_METHOD_NAMES.len() - 1)]
    }

    /// True when the configured method did not produce this point.
    pub fn escalated(&self) -> bool {
        self.method_used != 0
    }

    /// True when no rung produced the point.
    pub fn failed(&self) -> bool {
        self.method_used == METHOD_FAILED
    }
}

/// Result of a robust (escalation-ladder) solve: the point (if any rung
/// succeeded), the ladder record, and the terminal error when exhausted.
#[derive(Debug)]
pub struct RobustSolve {
    /// The accepted solve, `None` when every rung failed.
    pub result: Option<EnergyPointResult>,
    /// The ladder record — always present, success or not.
    pub outcome: PointOutcome,
    /// The last rung's error when `result` is `None`.
    pub error: Option<TransportError>,
}

impl RobustSolve {
    /// Collapses into a plain `Result`, discarding the ladder record.
    pub fn into_result(self) -> TransportResult<EnergyPointResult> {
        match self.result {
            Some(r) => Ok(r),
            None => Err(self.error.unwrap_or(TransportError::Panic {
                what: "robust solve failed without error".into(),
            })),
        }
    }
}

/// The rungs tried in order: configured method at exact energy, the same
/// with broadening, a wider FEAST quadrature (when FEAST is configured),
/// the Beyn single-shot contour, then dense shift-invert. Rungs equal to
/// an earlier one are skipped. The Sancho–Rubio + Caroli last resort is
/// handled separately (it produces no scattering states).
fn ladder_rungs(cfg: &TransportConfig) -> Vec<(u8, f64, ObcMethod)> {
    let mut rungs = vec![(0u8, 0.0, cfg.obc), (1, ETA_BUMP, cfg.obc)];
    if let ObcMethod::Feast(fc) = cfg.obc {
        let mut wide = fc;
        wide.np *= 2;
        wide.max_refine = fc.max_refine.max(1) * 2;
        rungs.push((2, ETA_BUMP, ObcMethod::Feast(wide)));
    }
    if !matches!(cfg.obc, ObcMethod::Beyn(_)) {
        rungs.push((3, ETA_BUMP, ObcMethod::Beyn(BeynConfig::default())));
    }
    if cfg.obc != ObcMethod::ShiftInvert {
        rungs.push((4, ETA_BUMP, ObcMethod::ShiftInvert));
    }
    rungs
}

/// One ladder attempt: OBCs and Eq. 5 with the given method/broadening.
/// Each rung consults the cache at its *own* (η, method) key, so an
/// escalated re-solve never aliases the exact-energy entry.
fn try_rung(
    dk: &DeviceK,
    e: f64,
    eta: f64,
    method: ObcMethod,
    cfg: &TransportConfig,
    cache: Option<&CacheHandle>,
) -> TransportResult<(EnergyPointResult, f64)> {
    let obc_l = cache::cached_self_energy(cache, &dk.lead_l, e, eta, Side::Left, method)
        .map_err(|source| TransportError::Obc { side: Side::Left, source })?;
    let obc_r = cache::cached_self_energy(cache, &dk.lead_r, e, eta, Side::Right, method)
        .map_err(|source| TransportError::Obc { side: Side::Right, source })?;
    let mut c = *cfg;
    c.obc = method;
    solve_with_obc_eta(dk, e, eta, &c, &obc_l, &obc_r, None)
}

/// Last-resort rung: Sancho–Rubio decimation Σ (no modes, so no
/// injection) + the NEGF/Caroli transmission. The returned point carries
/// an empty `psi`; observables needing wave functions see zero columns.
fn decimation_caroli_rung(
    dk: &DeviceK,
    e: f64,
    cache: Option<&CacheHandle>,
) -> TransportResult<EnergyPointResult> {
    let obc_l = cache::cached_self_energy(
        cache,
        &dk.lead_l,
        e,
        ETA_BUMP,
        Side::Left,
        ObcMethod::Decimation,
    )
    .map_err(|source| TransportError::Obc { side: Side::Left, source })?;
    let obc_r = cache::cached_self_energy(
        cache,
        &dk.lead_r,
        e,
        ETA_BUMP,
        Side::Right,
        ObcMethod::Decimation,
    )
    .map_err(|source| TransportError::Obc { side: Side::Right, source })?;
    let t = caroli_from_sigmas(dk, e, ETA_BUMP, &obc_l.sigma, &obc_r.sigma)?;
    if !t.is_finite() {
        return Err(TransportError::Linalg(LinalgError::NonFinite { op: "caroli", count: 1 }));
    }
    Ok(EnergyPointResult {
        e,
        kz: dk.kz,
        transmission: t,
        transmission_rl: t,
        reflection: 0.0,
        channels: (0, 0),
        psi: ZMat::zeros(0, 0),
        m_left: 0,
        sigma_l: obc_l.sigma,
        sigma_r: obc_r.sigma,
    })
}

/// Fault-tolerant energy-point solve: walks the escalation ladder until a
/// rung produces a finite answer, recording every attempt. The first rung
/// is bit-identical to [`solve_point_direct`], so a healthy sweep through
/// this entry matches the plain one exactly.
#[deprecated(
    since = "0.1.0",
    note = "use `TransportEngine::solve_point` with `PointPolicy::robust()`"
)]
pub fn solve_energy_point_robust(dk: &DeviceK, e: f64, cfg: &TransportConfig) -> RobustSolve {
    solve_point_robust_raw(dk, e, cfg, cache::env_handle(dk).as_ref())
}

/// The raw escalation-ladder entry (shared by the engine, the sweep
/// workers and the deprecated free function). Exhausted points and any
/// rung that errors are never cached — only accepted solves are.
pub(crate) fn solve_point_robust_raw(
    dk: &DeviceK,
    e: f64,
    cfg: &TransportConfig,
    cache: Option<&CacheHandle>,
) -> RobustSolve {
    let start = Instant::now();
    let mut attempts: u16 = 0;
    let mut escalations: u16 = 0;
    let mut last_err: Option<TransportError> = None;
    for (code, eta, method) in ladder_rungs(cfg) {
        if attempts > 0 {
            escalations += 1;
        }
        attempts += 1;
        match try_rung(dk, e, eta, method, cfg, cache) {
            Ok((result, residual)) => {
                return RobustSolve {
                    result: Some(result),
                    outcome: PointOutcome {
                        method_used: code,
                        attempts,
                        escalations,
                        residual,
                        eta,
                        interp_bound: 0.0,
                        wall_ms: start.elapsed().as_secs_f64() * 1e3,
                    },
                    error: None,
                };
            }
            Err(err) => last_err = Some(err),
        }
    }
    escalations += 1;
    attempts += 1;
    match decimation_caroli_rung(dk, e, cache) {
        Ok(result) => RobustSolve {
            result: Some(result),
            outcome: PointOutcome {
                method_used: 5,
                attempts,
                escalations,
                residual: 0.0,
                eta: ETA_BUMP,
                interp_bound: 0.0,
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
            },
            error: None,
        },
        Err(err) => {
            let last = Box::new(last_err.unwrap_or(err));
            RobustSolve {
                result: None,
                outcome: PointOutcome {
                    method_used: METHOD_FAILED,
                    attempts,
                    escalations,
                    residual: f64::INFINITY,
                    eta: ETA_BUMP,
                    interp_bound: 0.0,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                },
                error: Some(TransportError::Exhausted {
                    e,
                    kz: dk.kz,
                    attempts: attempts as u32,
                    last,
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use qtx_atomistic::{BasisKind, DeviceBuilder};
    use qtx_obc::FeastConfig;

    fn chain_device() -> Device {
        let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(BasisKind::TightBinding).build();
        Device::build(spec).unwrap()
    }

    /// Energies guaranteed to cross a *dispersive* conduction band
    /// (flat passivation bands carry no current and are skipped).
    fn probe_energies(lead: &LeadBlocks, n: usize) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 0..n {
            let k = 0.6 + 0.5 * i as f64;
            if let Some(e) = lead.dispersive_energy(k, 0.2, 0.3) {
                out.push(e);
            }
        }
        assert!(!out.is_empty(), "no conduction band found");
        out
    }

    #[test]
    fn clean_device_transmission_is_integer_channels() {
        // Ballistic homogeneous wire: T(E) equals the number of
        // propagating channels and reflection vanishes.
        let d = chain_device();
        let dk = d.at_kz(0.0);
        for e in probe_energies(&dk.lead_l, 2) {
            let r = solve_point_direct(&dk, e, &d.config, None, None).unwrap();
            assert!(r.channels.0 > 0, "E={e} should propagate");
            assert!(
                (r.transmission - r.channels.0 as f64).abs() < 1e-6,
                "E={e}: T={} vs channels {}",
                r.transmission,
                r.channels.0
            );
            assert!(r.reflection < 1e-6, "E={e}: R={}", r.reflection);
        }
    }

    #[test]
    fn gap_energy_transmits_nothing() {
        let d = chain_device();
        let dk = d.at_kz(0.0);
        let r = solve_point_direct(&dk, 0.0, &d.config, None, None).unwrap();
        assert_eq!(r.channels.0, 0);
        assert_eq!(r.transmission, 0.0);
    }

    #[test]
    fn wavefunction_matches_caroli() {
        let mut d = chain_device();
        // A potential barrier makes the comparison non-trivial (T < N).
        let mut v = vec![0.0; d.n_slabs];
        for (q, vq) in v.iter_mut().enumerate() {
            if (3..5).contains(&q) {
                *vq = 0.3;
            }
        }
        d.set_potential(&v);
        let dk = d.at_kz(0.0);
        for e in probe_energies(&dk.lead_l, 3) {
            let wf = solve_point_direct(&dk, e, &d.config, None, None).unwrap();
            let neg = caroli_transmission(&dk, e, d.config.obc).unwrap();
            assert!(
                (wf.transmission - neg).abs() < 1e-5,
                "E={e}: WF {} vs Caroli {neg}",
                wf.transmission
            );
            if wf.channels.0 > 0 {
                assert!(wf.transmission < wf.channels.0 as f64, "barrier must reflect");
                // Unitarity: T + R = channel count.
                assert!(
                    (wf.transmission + wf.reflection - wf.channels.0 as f64).abs() < 1e-6,
                    "E={e}: T+R = {}",
                    wf.transmission + wf.reflection
                );
            }
        }
    }

    #[test]
    fn solver_kinds_agree() {
        let mut d = chain_device();
        let v: Vec<f64> = (0..d.n_slabs).map(|q| 0.05 * q as f64).collect();
        d.set_potential(&v);
        let dk = d.at_kz(0.0);
        let e = probe_energies(&dk.lead_l, 1)[0] + 0.11;
        let mut results = Vec::new();
        for solver in [SolverKind::SplitSolve { partitions: 2 }, SolverKind::BtdLu, SolverKind::Bcr]
        {
            let mut cfg = d.config;
            cfg.solver = solver;
            results.push(solve_point_direct(&dk, e, &cfg, None, None).unwrap().transmission);
        }
        assert!((results[0] - results[1]).abs() < 1e-8, "{results:?}");
        assert!((results[0] - results[2]).abs() < 1e-8, "{results:?}");
    }

    #[test]
    fn feast_obc_matches_shift_invert_end_to_end() {
        let d = chain_device();
        let dk = d.at_kz(0.0);
        let e = probe_energies(&dk.lead_l, 1)[0];
        let mut cfg_feast = d.config;
        cfg_feast.obc = qtx_obc::ObcMethod::Feast(FeastConfig::default());
        let mut cfg_si = d.config;
        cfg_si.obc = qtx_obc::ObcMethod::ShiftInvert;
        let t_feast = solve_point_direct(&dk, e, &cfg_feast, None, None).unwrap().transmission;
        let t_si = solve_point_direct(&dk, e, &cfg_si, None, None).unwrap().transmission;
        assert!((t_feast - t_si).abs() < 1e-6, "{t_feast} vs {t_si}");
    }

    #[test]
    fn left_right_symmetry_at_zero_bias() {
        let mut d = chain_device();
        let mut v = vec![0.0; d.n_slabs];
        v[4] = 0.2;
        d.set_potential(&v);
        let dk = d.at_kz(0.0);
        let e = probe_energies(&dk.lead_l, 1)[0] + 0.07;
        let r = solve_point_direct(&dk, e, &d.config, None, None).unwrap();
        assert!(
            (r.transmission - r.transmission_rl).abs() < 1e-6,
            "L→R {} vs R→L {}",
            r.transmission,
            r.transmission_rl
        );
    }
}
