//! `QTX_FORCE_KERNEL` startup-override contract, in its own test binary
//! so no other test's runtime forcing can race the assertion.
//!
//! This is the test the CI forced-scalar job leans on: with
//! `QTX_FORCE_KERNEL=scalar` in the environment it fails loudly if the
//! dispatch silently stops honoring the override, and the numerical
//! check below then exercises the scalar packed path end to end.

use qtx_linalg::{active_variant, best_variant, Complex64, KernelVariant, ZMat};

/// The startup default must be: the env-named variant when it parses and
/// the host supports it, the best available variant otherwise. The
/// `scalar` case is asserted *literally* — not through
/// `KernelVariant::parse`, which the implementation also uses — so a
/// vocabulary regression cannot make both sides fall back in lockstep
/// and leave the CI forced-scalar job silently green.
#[test]
fn env_override_pins_the_startup_default() {
    let env = std::env::var("QTX_FORCE_KERNEL").ok();
    if env.as_deref() == Some("scalar") {
        // Scalar is always available: the CI job's exact contract.
        assert_eq!(
            active_variant(),
            KernelVariant::Scalar,
            "QTX_FORCE_KERNEL=scalar must pin the scalar kernel"
        );
        return;
    }
    let expected = match &env {
        Some(val) => match KernelVariant::parse(val) {
            Some(v) if qtx_linalg::kernel::variant_available(v) => v,
            // Unknown word or absent ISA: graceful fall-through to best.
            _ => best_variant(),
        },
        None => best_variant(),
    };
    assert_eq!(active_variant(), expected, "dispatch default ignored QTX_FORCE_KERNEL={env:?}");
}

/// Whatever variant the environment selected must produce a correct
/// packed product (shape chosen to engage the microkernel).
#[test]
fn env_selected_kernel_is_numerically_sound() {
    let (m, n, k) = (66, 65, 67);
    let a = ZMat::random(m, k, 1);
    let b = ZMat::random(k, n, 2);
    let c = qtx_linalg::matmul(&a, &b);
    let mut reference = ZMat::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = Complex64::ZERO;
            for l in 0..k {
                s += a[(i, l)] * b[(l, j)];
            }
            reference[(i, j)] = s;
        }
    }
    assert!(
        c.max_diff(&reference) < 1e-10,
        "{:?} kernel drifted from naive: {:.2e}",
        active_variant(),
        c.max_diff(&reference)
    );
}
