//! The BLAS-3 triangle-set suites, re-run with the microkernel pinned to
//! each variant the host supports.
//!
//! `trmm`'s staged-dense diagonal blocks, `herk`'s and `her2k`'s
//! triangle grids all consume the packed gemm path, so a defect in any
//! dispatched variant (a masked lane, a bad edge tile, an out-of-bounds
//! panel read) would surface here as a wrong triangle, a poisoned-value
//! leak, or a fresh allocation. Mirrors the modules' own suites —
//! garbage in the unreferenced triangle, poison on the unit diagonal,
//! allocation-free warm calls — but inside a per-variant forcing loop.
//! Forcing is process-global, so everything serializes on one lock.

use qtx_linalg::{
    available_variants, c64, force_kernel, gemm, reset_kernel, zher2k, zherk, ztrmm, Complex64,
    Diag, Op, Side, UpLo, ZMat,
};
use std::sync::{Mutex, MutexGuard};

static KERNEL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Random triangle with poison outside the stored triangle (and on the
/// diagonal for `Diag::Unit`): the kernels must never read either.
fn triangle_with_garbage(n: usize, uplo: UpLo, diag: Diag, seed: u64) -> ZMat {
    let mut t = ZMat::random(n, n, seed);
    for j in 0..n {
        for i in 0..n {
            let stored = match uplo {
                UpLo::Lower => i > j,
                UpLo::Upper => i < j,
            };
            if !stored && i != j {
                t[(i, j)] = c64(1e30, -1e30);
            }
        }
        if diag == Diag::Unit {
            t[(j, j)] = c64(-7.5e20, 3.0e20);
        }
    }
    t
}

/// Materialized `op(tri(A))` for the gemm reference.
fn effective(a: &ZMat, uplo: UpLo, op: Op, diag: Diag) -> ZMat {
    let n = a.rows();
    let mut eff = ZMat::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            let stored = match uplo {
                UpLo::Lower => i >= j,
                UpLo::Upper => i <= j,
            };
            if stored {
                eff[(i, j)] = a[(i, j)];
            }
        }
    }
    if diag == Diag::Unit {
        for i in 0..n {
            eff[(i, i)] = Complex64::ONE;
        }
    }
    match op {
        Op::None => eff,
        Op::Transpose => eff.transpose(),
        Op::Adjoint => eff.adjoint(),
    }
}

/// One ztrmm-vs-materialized-gemm check (poisoned other-triangle).
fn check_trmm(side: Side, uplo: UpLo, op: Op, diag: Diag, n: usize, m: usize, seed: u64) {
    let a = triangle_with_garbage(n, uplo, diag, seed);
    let b0 = match side {
        Side::Left => ZMat::random(n, m, seed + 1),
        Side::Right => ZMat::random(m, n, seed + 1),
    };
    let alpha = c64(0.8, -0.3);
    let mut b = b0.clone();
    ztrmm(side, uplo, op, diag, alpha, a.view(), b.view_mut());
    let eff = effective(&a, uplo, op, diag);
    let mut expected = match side {
        Side::Left => ZMat::zeros(n, m),
        Side::Right => ZMat::zeros(m, n),
    };
    match side {
        Side::Left => gemm(alpha, &eff, Op::None, &b0, Op::None, Complex64::ZERO, &mut expected),
        Side::Right => gemm(alpha, &b0, Op::None, &eff, Op::None, Complex64::ZERO, &mut expected),
    }
    let scale = expected.norm_max().max(1.0);
    assert!(
        b.max_diff(&expected) < 1e-10 * scale * n as f64,
        "side {side:?} uplo {uplo:?} op {op:?} diag {diag:?} n {n} m {m}: {:.2e}",
        b.max_diff(&expected)
    );
}

/// trmm: every Side/UpLo/Op/Diag combination, blocked sizes, both the
/// staged-dense diagonal path (wide B) and the scalar sweep (narrow B),
/// with poison in the unreferenced triangle/diagonal — per variant.
#[test]
fn trmm_garbage_triangle_suite_under_every_variant() {
    let _guard = lock();
    for v in available_variants() {
        assert!(force_kernel(v), "{v:?} vanished");
        for side in [Side::Left, Side::Right] {
            for uplo in [UpLo::Lower, UpLo::Upper] {
                for op in [Op::None, Op::Transpose, Op::Adjoint] {
                    for diag in [Diag::Unit, Diag::NonUnit] {
                        // m = 9 staged-dense, m = 5 RHS-blocked scalar.
                        check_trmm(side, uplo, op, diag, 150, 9, 77);
                        check_trmm(side, uplo, op, diag, 150, 5, 78);
                    }
                }
            }
        }
    }
    reset_kernel();
}

/// herk: result matches the gemm expansion and β = 0 ignores a garbage
/// upper triangle — per variant.
#[test]
fn herk_suite_under_every_variant() {
    let _guard = lock();
    for v in available_variants() {
        assert!(force_kernel(v), "{v:?} vanished");
        for op in [Op::None, Op::Adjoint] {
            let (n, k) = (97usize, 33usize);
            let a = match op {
                Op::None => ZMat::random(n, k, 3),
                _ => ZMat::random(k, n, 3),
            };
            let mut c = ZMat::random(n, n, 4); // garbage, β = 0
            zherk(0.7, a.view(), op, 0.0, &mut c);
            let mut expected = ZMat::zeros(n, n);
            let flip = if op == Op::None { Op::Adjoint } else { Op::None };
            gemm(c64(0.7, 0.0), &a, op, &a, flip, Complex64::ZERO, &mut expected);
            assert!(c.max_diff(&expected) < 1e-9, "{v:?} op {op:?}: {:.2e}", c.max_diff(&expected));
            assert!(c.hermitian_defect() < 1e-12, "{v:?}: result must be Hermitian");
        }
    }
    reset_kernel();
}

/// her2k: matches its two-gemm expansion with a garbage (β = 0) output —
/// per variant.
#[test]
fn her2k_suite_under_every_variant() {
    let _guard = lock();
    let alpha = c64(0.6, -0.8);
    for v in available_variants() {
        assert!(force_kernel(v), "{v:?} vanished");
        for op in [Op::None, Op::Adjoint] {
            let (n, k) = (97usize, 33usize);
            let (a, b) = match op {
                Op::None => (ZMat::random(n, k, 5), ZMat::random(n, k, 6)),
                _ => (ZMat::random(k, n, 5), ZMat::random(k, n, 6)),
            };
            let mut c = ZMat::random(n, n, 7); // garbage, β = 0
            zher2k(alpha, a.view(), b.view(), op, 0.0, &mut c);
            let flip = if op == Op::None { Op::Adjoint } else { Op::None };
            let mut expected = ZMat::zeros(n, n);
            gemm(alpha, &a, op, &b, flip, Complex64::ZERO, &mut expected);
            gemm(alpha.conj(), &b, op, &a, flip, Complex64::ONE, &mut expected);
            assert!(
                c.max_diff(&expected) < 1e-9 * k as f64,
                "{v:?} op {op:?}: {:.2e}",
                c.max_diff(&expected)
            );
            assert!(c.hermitian_defect() < 1e-12, "{v:?}: result must be Hermitian");
        }
    }
    reset_kernel();
}

/// The allocation-free property must hold under every variant: packing
/// scratch is raw `f64` buffers whatever the tile shape, so no kernel
/// may introduce a `ZMat` allocation on the warm path. (The seed-gemm
/// A/B baseline clones by design and bypasses the dispatch.)
#[cfg(not(feature = "seed-gemm"))]
#[test]
fn triangle_set_is_allocation_free_under_every_variant() {
    use qtx_linalg::alloc_count;
    let _guard = lock();
    for v in available_variants() {
        assert!(force_kernel(v), "{v:?} vanished");
        let tri = triangle_with_garbage(96, UpLo::Lower, Diag::NonUnit, 11);
        let a = ZMat::random(96, 64, 12);
        let b = ZMat::random(96, 64, 13);
        let mut bt = ZMat::random(96, 12, 14);
        let mut ch = ZMat::zeros(64, 64);
        let mut c2 = ZMat::zeros(96, 96);
        // Warm-up so the per-thread triangular scratch is grown already.
        ztrmm(
            Side::Left,
            UpLo::Lower,
            Op::None,
            Diag::NonUnit,
            Complex64::ONE,
            tri.view(),
            bt.view_mut(),
        );
        let before = alloc_count();
        ztrmm(
            Side::Left,
            UpLo::Lower,
            Op::None,
            Diag::NonUnit,
            Complex64::ONE,
            tri.view(),
            bt.view_mut(),
        );
        zherk(1.0, a.view(), Op::Adjoint, 0.0, &mut ch);
        zher2k(Complex64::ONE, a.view(), b.view(), Op::None, 0.0, &mut c2);
        assert_eq!(alloc_count(), before, "{v:?}: triangle kernel allocated a ZMat");
    }
    reset_kernel();
}
