//! Kernel-equivalence battery: every dispatched SIMD microkernel variant
//! must agree with the scalar baseline on the full gemm surface.
//!
//! The comparison is run at the `gemm` level (not just the raw tile) so
//! packing, edge-tile handling and the α/β write-back are covered too:
//! all 9 `Op` combinations, ragged shapes (m, n, k not multiples of any
//! variant's MR/NR or of the 2× k-unroll), and the α/β edge cases
//! (0, 1, complex).
//!
//! # Tolerance
//!
//! Every variant performs the per-lane reduction in the same fused
//! operation order as the scalar kernel (see the `kernel` module's
//! numerical contract), so when the scalar path itself compiles with
//! hardware FMA — the repo default, `target-cpu=native` — the results
//! are expected bit-identical modulo nothing at all. The assertions
//! still allow the one documented reassociation: a build whose scalar
//! fallback lacks FMA rounds each multiply and add separately, which
//! shifts every k-step by at most one ulp per fused pair. That bounds
//! the elementwise difference by `2k·ε·max|a|·max|b|·|α|`; the checks
//! use `8k·ε·scale` for slack and nothing looser.
//!
//! Forcing is process-global, so every test serializes on [`lock`] and
//! restores the default before releasing it.

use proptest::prelude::*;
use qtx_linalg::{
    available_variants, best_variant, c64, force_kernel, gemm, reset_kernel, Complex64,
    KernelVariant, Op, ZMat, EPS,
};
use std::sync::{Mutex, MutexGuard};

static KERNEL_LOCK: Mutex<()> = Mutex::new(());

/// Serializes kernel forcing across this binary's test threads (a
/// poisoned lock just means another case failed — keep going).
fn lock() -> MutexGuard<'static, ()> {
    KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Documented equivalence tolerance for a k-deep product (see module
/// docs): one extra rounding per fused pair on the non-FMA fallback.
fn tol(k: usize, amax: f64, bmax: f64, alpha: Complex64) -> f64 {
    8.0 * EPS * k as f64 * amax.max(1e-300) * bmax.max(1e-300) * alpha.abs().max(1.0) + 1e-300
}

/// Runs one gemm with the given variant forced; caller holds [`lock`].
#[allow(clippy::too_many_arguments)]
fn gemm_forced(
    v: KernelVariant,
    alpha: Complex64,
    a: &ZMat,
    op_a: Op,
    b: &ZMat,
    op_b: Op,
    beta: Complex64,
    c0: &ZMat,
) -> ZMat {
    assert!(force_kernel(v), "{v:?} vanished mid-test");
    let mut c = c0.clone();
    gemm(alpha, a, op_a, b, op_b, beta, &mut c);
    c
}

/// Shapes here always hit the packed path: k ≥ 25 with m·n ≥ 64·64
/// engages the tall-panel packing exception even below the volume
/// cutoff, so the dispatched microkernel really runs.
fn operands(m: usize, n: usize, k: usize, op_a: Op, op_b: Op, seed: u64) -> (ZMat, ZMat) {
    let a = match op_a {
        Op::None => ZMat::random(m, k, seed),
        _ => ZMat::random(k, m, seed),
    };
    let b = match op_b {
        Op::None => ZMat::random(k, n, seed + 1),
        _ => ZMat::random(n, k, seed + 1),
    };
    (a, b)
}

#[allow(clippy::too_many_arguments)]
fn check_variant_vs_scalar(
    v: KernelVariant,
    m: usize,
    n: usize,
    k: usize,
    op_a: Op,
    op_b: Op,
    alpha: Complex64,
    beta: Complex64,
    seed: u64,
) -> Result<(), String> {
    let (a, b) = operands(m, n, k, op_a, op_b, seed);
    let c0 = ZMat::random(m, n, seed + 2);
    let _guard = lock();
    let reference = gemm_forced(KernelVariant::Scalar, alpha, &a, op_a, &b, op_b, beta, &c0);
    let dispatched = gemm_forced(v, alpha, &a, op_a, &b, op_b, beta, &c0);
    reset_kernel();
    let diff = dispatched.max_diff(&reference);
    let bound = tol(k, a.norm_max(), b.norm_max(), alpha);
    if diff > bound {
        return Err(format!(
            "{v:?} vs scalar drift {diff:.3e} > {bound:.3e} \
             (m={m} n={n} k={k} ops={op_a:?}/{op_b:?} α={alpha} β={beta})"
        ));
    }
    Ok(())
}

const OPS: [Op; 3] = [Op::None, Op::Transpose, Op::Adjoint];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized sweep: every available SIMD variant against the forced
    /// scalar baseline, across all 9 op pairings and ragged shapes, with
    /// the general complex α/β accumulation form.
    #[test]
    fn dispatched_matches_scalar_randomized(
        m in 64usize..100,
        n in 64usize..100,
        k in 25usize..120,
        opsel in 0u32..9,
        seed in 0u64..1_000_000,
    ) {
        let (op_a, op_b) = (OPS[(opsel / 3) as usize], OPS[(opsel % 3) as usize]);
        let alpha = c64(0.7, -0.4);
        let beta = c64(-0.2, 0.9);
        for v in available_variants() {
            if v == KernelVariant::Scalar {
                continue;
            }
            if let Err(e) = check_variant_vs_scalar(v, m, n, k, op_a, op_b, alpha, beta, seed) {
                prop_assert!(false, "{}", e);
            }
        }
    }
}

/// Ragged edge tiles: shapes chosen to straddle every variant's MR (4,
/// 8), NR (4, 6, 8) and the 2× k-unroll — remainder rows, remainder
/// columns and an odd trailing k-step all at once.
#[test]
fn ragged_edge_tiles_match_scalar() {
    let alpha = c64(0.5, 1.0);
    let beta = c64(1.5, -0.5);
    for &(m, n, k) in &[
        (64usize, 64usize, 25usize), // exact 8× tiles, odd k (unroll tail)
        (65, 64, 48),                // one remainder row
        (71, 67, 49),                // remainder rows + cols for all nr ∈ {4,6,8}
        (72, 66, 47),                // multiple of 8 rows, nr=6 exact / nr=8 ragged
        (79, 65, 26),                // worst-case row tail (7) and col tail
    ] {
        for &op_a in &OPS {
            for &op_b in &OPS {
                for v in available_variants() {
                    if v == KernelVariant::Scalar {
                        continue; // the baseline itself — nothing to compare
                    }
                    check_variant_vs_scalar(v, m, n, k, op_a, op_b, alpha, beta, 7)
                        .unwrap_or_else(|e| panic!("{e}"));
                }
            }
        }
    }
}

/// α/β edge cases (0, 1, complex) in all 16 pairings: β = 0 must ignore
/// a poisoned C, α = 0 must reduce to the β-scaling, and the mixed
/// complex cases must accumulate identically to the scalar baseline.
#[test]
fn alpha_beta_edges_match_scalar() {
    let specials = [Complex64::ZERO, Complex64::ONE, c64(0.5, -1.0), c64(2.0, 0.25)];
    let (m, n, k) = (67, 66, 33);
    for &alpha in &specials {
        for &beta in &specials {
            for v in available_variants() {
                if v == KernelVariant::Scalar {
                    continue; // the baseline itself — nothing to compare
                }
                check_variant_vs_scalar(v, m, n, k, Op::None, Op::Adjoint, alpha, beta, 11)
                    .unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }
}

/// β = 0 with NaN-poisoned C: the packed path must never read the output
/// under β = 0, whichever kernel is dispatched.
#[test]
fn beta_zero_ignores_poisoned_output() {
    let (m, n, k) = (64, 64, 40);
    let a = ZMat::random(m, k, 3);
    let b = ZMat::random(k, n, 4);
    let _guard = lock();
    for v in available_variants() {
        assert!(force_kernel(v));
        let mut c = ZMat::from_fn(m, n, |_, _| c64(f64::NAN, f64::INFINITY));
        gemm(Complex64::ONE, &a, Op::None, &b, Op::None, Complex64::ZERO, &mut c);
        assert!(
            c.as_slice().iter().all(|z| z.is_finite()),
            "{v:?}: β = 0 read the poisoned output"
        );
    }
    reset_kernel();
}

/// The QTX_FORCE_KERNEL satellite's forcing test: the scalar and the
/// best-available variant must agree on a randomized gemm sweep. Skips
/// gracefully (with a note) when the host has no SIMD variant at all.
#[test]
fn forced_scalar_and_best_available_agree() {
    let best = best_variant();
    if best == KernelVariant::Scalar {
        eprintln!("skipping: host has no SIMD kernel variant (scalar only)");
        return;
    }
    for trial in 0..8u64 {
        let m = 64 + (trial as usize * 13) % 40;
        let n = 64 + (trial as usize * 29) % 40;
        let k = 25 + (trial as usize * 41) % 100;
        let op_a = OPS[trial as usize % 3];
        let op_b = OPS[(trial as usize / 3) % 3];
        check_variant_vs_scalar(best, m, n, k, op_a, op_b, c64(0.9, 0.2), c64(0.1, -0.7), trial)
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

/// Forcing an ISA the host lacks must fail softly — `false`, selection
/// unchanged — which is what lets the per-variant test matrices skip
/// gracefully on narrower machines.
#[test]
fn forcing_an_absent_isa_is_a_soft_no() {
    let _guard = lock();
    reset_kernel();
    let before = qtx_linalg::active_variant();
    for v in [KernelVariant::Avx2, KernelVariant::Avx512] {
        if !qtx_linalg::kernel::variant_available(v) {
            assert!(!force_kernel(v), "{v:?} unavailable but force succeeded");
            assert_eq!(qtx_linalg::active_variant(), before, "failed force changed selection");
        }
    }
    reset_kernel();
}
