//! # qtx-linalg — dense complex linear algebra substrate
//!
//! The paper's node-level kernels are BLAS/LAPACK (`zgemm`, `zggev`,
//! `zgesv`) on the CPUs and cuBLAS/MAGMA (`d/zgemm`, `zgesv_nopiv_gpu`,
//! `zhesv_nopiv_gpu`) on the GPUs (§3.C, §5.E). No BLAS/LAPACK binding is
//! available in this environment, so this crate implements the required
//! kernels from scratch:
//!
//! * [`Complex64`] — a minimal, `#[repr(C)]` double-precision complex type.
//! * [`ZMat`] — column-major dense complex matrices with views and
//!   Hermitian helpers.
//! * [`gemm`] — blocked, optionally rayon-parallel complex matrix-matrix
//!   multiplication with `N`/`T`/`H` operand transforms (the `zgemm`
//!   workhorse of both FEAST and SplitSolve), including the strided
//!   [`gemm::gemm_into`] entry the factorizations accumulate through.
//! * [`kernel`] — the runtime-dispatched register-tile microkernel under
//!   the packed gemm path: explicit AVX-512 (8×8) and AVX2+FMA (4×6)
//!   `std::arch` variants with the portable scalar 8×4 loop as fallback
//!   and A/B baseline (`QTX_FORCE_KERNEL` / [`force_kernel`] pin one).
//! * [`trsm`] — triangular solves over borrowed views (left/right,
//!   lower/upper, `N`/`T`/`H`, unit/non-unit), cache-blocked on the gemm
//!   microkernel; the substrate of every factor/solve below.
//! * [`trmm`] — in-place triangular multiply (`ztrmm`): the compact-WY
//!   `T`-factor products of the blocked QR/Hessenberg kernels at half the
//!   flops of the square gemm they replaced.
//! * [`herk`] — Hermitian rank-k update (`zherk`): the FEAST/Beyn Gram
//!   matrices at half the flops of a general product.
//! * [`her2k`] — Hermitian rank-2k update (`zher2k`): the sandwich
//!   products of the transport observables (`G·Γ·Gᴴ`) at half the flops
//!   of the two gemms they replaced.
//! * [`lu`] — partial-pivoting LU (`zgesv`), pivot-free LU
//!   (`zgesv_nopiv`, the MAGMA kernel used in Algorithm 1) and inverses.
//!   Blocked right-looking (panel + `laswp` + trsm + gemm trailing
//!   update) above a size crossover, with workspace-borrowing
//!   [`lu::LuFactors::solve_into`] / [`lu::zgesv_into`] solves.
//! * [`ldl`] — pivot-free LDLᴴ for Hermitian systems (`zhesv_nopiv`, the
//!   §5.E optimization that lifted Titan from 12.8 to 15 PFlop/s), same
//!   blocked structure at half the flops.
//! * [`qr`] — blocked compact-WY Householder QR (panel + `T`-via-trsm +
//!   gemm trailing updates above a measured ~192 crossover, scalar baseline
//!   behind [`qr::force_unblocked_qr`]), orthonormalization and least
//!   squares, with workspace-borrowing factor/apply entry points.
//! * [`eig`] — blocked (`zlahr2`-style) Hessenberg reduction + implicitly
//!   shifted complex QR (Schur form), eigenvectors, and the generalized
//!   solver used by the FEAST Rayleigh–Ritz step (`zggev`-lite), all with
//!   pooled `_ws` forms.
//! * [`flops`] — deterministic FLOP accounting mirroring the paper's
//!   PAPI/CUPTI measurement methodology (§5.B).
//!
//! All kernels count their floating-point operations; the counters are
//! what the machine model in `qtx-machine` consumes.

pub mod complex;
pub mod eig;
pub mod fault;
pub mod flops;
pub mod gemm;
pub mod her2k;
pub mod herk;
pub mod kernel;
pub mod ldl;
pub mod lu;
pub mod qr;
pub mod rng;
pub mod trmm;
pub mod trsm;
pub mod workspace;
pub mod zmat;

pub use complex::{c64, Complex64};
pub use eig::{
    eig, eig_generalized, eig_generalized_ws, eig_ws, eigenvalues, hessenberg,
    hessenberg_unblocked, hessenberg_ws, schur, schur_ws, EigDecomposition, SchurDecomposition,
};
pub use flops::{flops_reset, flops_thread, flops_total, FlopScope};
pub use gemm::{gemm, gemm_into, gemm_view, gemv, matmul, Op};
pub use her2k::zher2k;
pub use herk::zherk;
pub use kernel::{
    active_variant, available_variants, best_variant, force_kernel, reset_kernel, KernelVariant,
};
pub use ldl::{
    ldl_factor_nopiv, ldl_factor_nopiv_unblocked, ldl_factor_nopiv_ws, ldl_solve, zhesv_nopiv,
    zhesv_nopiv_into, LdlFactors,
};
pub use lu::{
    force_unblocked_factor, laswp, lu_factor, lu_factor_nopiv, lu_factor_nopiv_unblocked,
    lu_factor_nopiv_ws, lu_factor_owned, lu_factor_owned_ws, lu_factor_unblocked, lu_factor_ws,
    lu_inverse, lu_solve, zgesv, zgesv_into, zgesv_nopiv, zgesv_nopiv_into, LuFactors,
};
pub use qr::{
    force_unblocked_qr, orthonormality_defect, orthonormalize, orthonormalize_ws, pinv_apply, qr,
    qr_factor, qr_factor_unblocked, qr_factor_ws, qr_least_squares, QrFactors,
};
pub use rng::Pcg64;
pub use trmm::ztrmm;
pub use trsm::{trsm, Diag, Side, UpLo};
pub use workspace::Workspace;
pub use zmat::{alloc_count, live_bytes, peak_bytes, reset_peak_bytes, ZMat, ZMatMut, ZMatRef};

/// Machine epsilon for `f64`, re-exported for tolerance bookkeeping.
pub const EPS: f64 = f64::EPSILON;

/// Error type for linear-algebra failures (singular pivots, non-convergent
/// eigen-iterations, dimension mismatches caught at runtime).
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A pivot fell below the breakdown threshold during factorization.
    SingularPivot { index: usize, magnitude: f64 },
    /// The QR eigen-iteration failed to deflate within the iteration cap.
    NoConvergence { remaining: usize },
    /// Matrix dimensions are inconsistent for the requested operation.
    DimensionMismatch { expected: (usize, usize), got: (usize, usize) },
    /// A kernel produced NaN/Inf entries (`count` of them) where finite
    /// values were required.
    NonFinite { op: &'static str, count: usize },
    /// A deterministic fault-injection hit (see [`fault`]); only produced
    /// by `fault-inject` builds with an armed campaign.
    Injected { site: &'static str },
    /// A lower-level failure annotated with the operation and operand
    /// shape it occurred in (the matrix/size/pivot context the failure
    /// taxonomy carries up the solve stack).
    Context { op: &'static str, dim: (usize, usize), source: Box<LinalgError> },
}

impl LinalgError {
    /// Wraps the error with the operation name and operand shape.
    pub fn with_context(self, op: &'static str, dim: (usize, usize)) -> LinalgError {
        LinalgError::Context { op, dim, source: Box::new(self) }
    }

    /// Innermost cause, stripping any [`LinalgError::Context`] layers.
    pub fn root(&self) -> &LinalgError {
        match self {
            LinalgError::Context { source, .. } => source.root(),
            other => other,
        }
    }

    /// True for errors manufactured by fault injection (at any depth).
    pub fn is_injected(&self) -> bool {
        matches!(self.root(), LinalgError::Injected { .. })
    }
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::SingularPivot { index, magnitude } => {
                write!(f, "singular pivot at index {index} (|pivot| = {magnitude:.3e})")
            }
            LinalgError::NoConvergence { remaining } => {
                write!(f, "eigen-iteration failed to converge ({remaining} eigenvalues remaining)")
            }
            LinalgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected:?}, got {got:?}")
            }
            LinalgError::NonFinite { op, count } => {
                write!(f, "{op} produced {count} non-finite entries")
            }
            LinalgError::Injected { site } => {
                write!(f, "fault injected at site {site:?}")
            }
            LinalgError::Context { op, dim, source } => {
                write!(f, "{op} on a {}x{} matrix: {source}", dim.0, dim.1)
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, LinalgError>;
