//! Hermitian rank-k update (`zherk`).
//!
//! The FEAST pipeline builds several Gram matrices — `PᴴP` for the
//! rank-revealing orthonormalization of the contour projector output and
//! `A₀ᴴA₀` in Beyn's moment factorization — whose results are Hermitian by
//! construction. A general `zgemm` computes both triangles; `zherk`
//! computes only the lower one through the tiled gemm kernel and mirrors
//! it, halving the flops exactly as the ROADMAP's "dedicated `zherk` for
//! the FEAST Gram matrix" item asks. (The Rayleigh–Ritz reductions `QᴴAQ`
//! / `QᴴBQ` are not Hermitian as wholes — the companion pencil's `A` and
//! `B` are not Hermitian — but FEAST assembles them blockwise from the
//! companion structure, and the `Q₂ᴴQ₂` term of the `B`-projection does
//! come through this kernel.)

use crate::complex::c64;
use crate::flops::{counts, flops_add};
use crate::gemm::{gemm_into_unc, Op};
use crate::zmat::{ZMat, ZMatRef};

/// Block edge of the triangle tiling (matches the factorization panels).
const NB: usize = 64;

/// `C ← α·A·Aᴴ + β·C` (`op = Op::None`) or `C ← α·Aᴴ·A + β·C`
/// (`op = Op::Adjoint`), with real `α`, `β` — BLAS `zherk`.
///
/// Only the lower triangle of `C` is read (like BLAS); the full Hermitian
/// result is written back, diagonal forced real. `Op::Transpose` is
/// rejected: `AᵀA` is complex-symmetric, not Hermitian.
pub fn zherk(alpha: f64, a: ZMatRef<'_>, op: Op, beta: f64, c: &mut ZMat) {
    assert!(op != Op::Transpose, "zherk: use Op::None (A·Aᴴ) or Op::Adjoint (Aᴴ·A)");
    let (n, k) = match op {
        Op::None => (a.rows(), a.cols()),
        _ => (a.cols(), a.rows()),
    };
    assert_eq!((c.rows(), c.cols()), (n, n), "zherk output shape mismatch");
    flops_add(counts::zherk(n, k));
    let (alpha, beta) = (c64(alpha, 0.0), c64(beta, 0.0));
    // Lower-triangle block grid: each (i ≥ j) block is one gemm on the
    // packed microkernel; diagonal blocks are computed in full (the waste
    // is NB²/2 per diagonal block, negligible against the n²k/2 saved).
    let mut j0 = 0;
    while j0 < n {
        let jb = NB.min(n - j0);
        let mut i0 = j0;
        while i0 < n {
            let ib = NB.min(n - i0);
            let (ai, aj) = match op {
                Op::None => (a.sub(i0, 0, ib, k), a.sub(j0, 0, jb, k)),
                _ => (a.sub(0, i0, k, ib), a.sub(0, j0, k, jb)),
            };
            let (op_i, op_j) = match op {
                Op::None => (Op::None, Op::Adjoint),
                _ => (Op::Adjoint, Op::None),
            };
            gemm_into_unc(alpha, ai, op_i, aj, op_j, beta, c.block_view_mut(i0, j0, ib, jb));
            i0 += ib;
        }
        j0 += jb;
    }
    // Mirror the strict lower triangle up and pin the diagonal real.
    for j in 0..n {
        for i in 0..j {
            c[(i, j)] = c[(j, i)].conj();
        }
        let d = c[(j, j)];
        c[(j, j)] = c64(d.re, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::gemm::gemm;
    use crate::zmat::{alloc_count, ZMat};

    fn reference(alpha: f64, a: &ZMat, op: Op, beta: f64, c0: &ZMat) -> ZMat {
        let mut c = c0.clone();
        // Make the β·C term Hermitian the way zherk reads it (lower only).
        c.hermitianize();
        gemm(c64(alpha, 0.0), a, op, a, flip(op), c64(beta, 0.0), &mut c);
        c
    }

    fn flip(op: Op) -> Op {
        match op {
            Op::None => Op::Adjoint,
            _ => Op::None,
        }
    }

    #[test]
    fn matches_gemm_both_transposes() {
        for op in [Op::None, Op::Adjoint] {
            for (n, k) in [(5usize, 9usize), (9, 5), (97, 33), (130, 70)] {
                let a = match op {
                    Op::None => ZMat::random(n, k, 3),
                    _ => ZMat::random(k, n, 3),
                };
                let mut c = ZMat::random(n, n, 4);
                c.hermitianize();
                let expected = reference(0.7, &a, op, 0.3, &c);
                zherk(0.7, a.view(), op, 0.3, &mut c);
                assert!(
                    c.max_diff(&expected) < 1e-9,
                    "op {op:?} n {n} k {k}: {:.2e}",
                    c.max_diff(&expected)
                );
                assert!(c.hermitian_defect() < 1e-12, "result must be Hermitian");
            }
        }
    }

    #[test]
    fn beta_zero_ignores_garbage_upper_triangle() {
        let a = ZMat::random(40, 20, 7);
        let mut c = ZMat::random(40, 40, 8); // arbitrary contents, β = 0
        zherk(1.0, a.view(), Op::None, 0.0, &mut c);
        let mut expected = ZMat::zeros(40, 40);
        gemm(Complex64::ONE, &a, Op::None, &a, Op::Adjoint, Complex64::ZERO, &mut expected);
        assert!(c.max_diff(&expected) < 1e-10);
    }

    // The seed-gemm A/B kernel clones its operands by design, so the
    // zero-allocation property only holds for the production gemm.
    #[cfg(not(feature = "seed-gemm"))]
    #[test]
    fn allocation_free() {
        // With borrowed operands and a preallocated output, zherk must not
        // allocate a single ZMat (packing uses raw scratch, like gemm).
        let a = ZMat::random(96, 64, 11);
        let mut c = ZMat::zeros(64, 64);
        let before = alloc_count();
        zherk(1.0, a.view(), Op::Adjoint, 0.0, &mut c);
        assert_eq!(alloc_count(), before, "zherk allocated a ZMat");
    }

    #[test]
    fn counts_half_the_gemm_flops() {
        let a = ZMat::random(30, 12, 13);
        let mut c = ZMat::zeros(30, 30);
        let scope = crate::flops::FlopScope::start();
        zherk(1.0, a.view(), Op::None, 0.0, &mut c);
        let herk_flops = scope.elapsed();
        assert!(herk_flops >= counts::zherk(30, 12));
        assert!(counts::zherk(30, 12) * 2 == counts::zgemm(30, 30, 12));
    }
}
