//! Triangular solves with multiple right-hand sides (`ztrsm`).
//!
//! The blocked LU/LDLᴴ factorizations and their solves decompose into two
//! kernels: gemm trailing updates and triangular solves against the
//! factor panels. This module provides the latter in full BLAS generality
//! — left/right application, lower/upper storage, `N`/`T`/`H` operand
//! transform, unit/non-unit diagonal — operating **in place** on a
//! [`ZMatMut`] view so a panel of a larger matrix can be solved without
//! copying it out.
//!
//! Cache blocking follows the same recipe as the factorizations: the
//! triangle is cut into `NB × NB` diagonal blocks solved with a scalar
//! forward/backward sweep, and everything off-diagonal becomes a rank-`NB`
//! [`crate::gemm`] update that runs on the dispatched packed microkernel. For a
//! left-side solve the freshly solved block rows are staged through a
//! small scratch buffer (raw `Vec`, no [`crate::zmat::ZMat`] allocation)
//! because the trailing gemm writes other rows of the same columns; the
//! right-side solve splits `B` at a column boundary instead, which is
//! aliasing-free in column-major storage and needs no staging.

use crate::complex::Complex64;
use crate::flops::{counts, flops_add};
use crate::gemm::{gemm_into_unc, Op};
use crate::zmat::{ZMatMut, ZMatRef};

/// Which side the triangular matrix is applied from, as in BLAS `SIDE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `op(A)·X = B`.
    Left,
    /// Solve `X·op(A) = B`.
    Right,
}

/// Which triangle of `A` holds the data, as in BLAS `UPLO`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpLo {
    /// The lower triangle of `A` is referenced.
    Lower,
    /// The upper triangle of `A` is referenced.
    Upper,
}

/// Whether the triangle has an implicit unit diagonal, as in BLAS `DIAG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are implicitly one (never read) — the `L` factor.
    Unit,
    /// Diagonal entries are read and divided by — the `U` factor.
    NonUnit,
}

/// Diagonal-block edge of the blocked sweep; matches the factorization
/// panel width so factor panels and solve blocks tile identically.
const NB: usize = 32;

/// Solves `op(A)·X = B` (left) or `X·op(A) = B` (right) in place,
/// overwriting `B` with `X`. Only the `uplo` triangle of `A` is read.
pub fn trsm(side: Side, uplo: UpLo, op: Op, diag: Diag, a: ZMatRef<'_>, b: ZMatMut<'_>) {
    let nrhs = match side {
        Side::Left => b.cols(),
        Side::Right => b.rows(),
    };
    flops_add(counts::ztrsm(a.rows(), nrhs));
    trsm_unc(side, uplo, op, diag, a, b);
}

/// [`trsm`] without FLOP accounting (the factorization-internal entry; the
/// factorizations and `zgetrs`-style solves count themselves by formula).
pub(crate) fn trsm_unc(side: Side, uplo: UpLo, op: Op, diag: Diag, a: ZMatRef<'_>, b: ZMatMut<'_>) {
    assert_eq!(a.rows(), a.cols(), "trsm triangle must be square");
    match side {
        Side::Left => {
            assert_eq!(b.rows(), a.rows(), "trsm left: B row count mismatch");
            trsm_left(uplo, op, diag, a, b);
        }
        Side::Right => {
            assert_eq!(b.cols(), a.rows(), "trsm right: B column count mismatch");
            trsm_right(uplo, op, diag, a, b);
        }
    }
}

/// Element `op(A)[i, j]` read through the view (shared with
/// [`crate::trmm`], which addresses the stored triangle the same way).
#[inline(always)]
pub(crate) fn aeff(a: ZMatRef<'_>, op: Op, i: usize, j: usize) -> Complex64 {
    match op {
        Op::None => a.at(i, j),
        Op::Transpose => a.at(j, i),
        Op::Adjoint => a.at(j, i).conj(),
    }
}

/// Whether `op(A)` is effectively lower triangular (forward sweep).
#[inline]
pub(crate) fn effectively_lower(uplo: UpLo, op: Op) -> bool {
    (uplo == UpLo::Lower) == (op == Op::None)
}

fn trsm_left(uplo: UpLo, op: Op, diag: Diag, a: ZMatRef<'_>, mut b: ZMatMut<'_>) {
    let n = a.rows();
    let m = b.cols();
    if n == 0 || m == 0 {
        return;
    }
    let forward = effectively_lower(uplo, op);
    // Staging buffer for solved block rows (the trailing gemm reads them
    // while writing the remaining rows of the same columns of B), carved
    // from the warm per-thread scratch — fully written before it is read.
    crate::workspace::with_tri_scratch(NB.min(n) * m, |xbuf| {
        let mut done = 0;
        while done < n {
            let kb = NB.min(n - done);
            let k0 = if forward { done } else { n - done - kb };
            solve_diag_left(a, op, diag, forward, k0, kb, &mut b);
            let (r0, rows) = if forward { (k0 + kb, n - k0 - kb) } else { (0, k0) };
            if rows > 0 {
                for j in 0..m {
                    xbuf[j * kb..(j + 1) * kb].copy_from_slice(&b.col(j)[k0..k0 + kb]);
                }
                let x = ZMatRef::from_slice(&xbuf[..kb * m], kb, m, kb);
                // Off-diagonal block op(A)[r0.., k0..k0+kb], addressed
                // through the stored triangle.
                let (asub, aop) = match op {
                    Op::None => (a.sub(r0, k0, rows, kb), Op::None),
                    _ => (a.sub(k0, r0, kb, rows), op),
                };
                let c = b.rb().sub_mut(r0, 0, rows, m);
                gemm_into_unc(-Complex64::ONE, asub, aop, x, Op::None, Complex64::ONE, c);
            }
            done += kb;
        }
    });
}

/// RHS-panel width of the scalar substitution sweeps: each pass over the
/// diagonal triangle solves this many right-hand-side columns at once,
/// loading every `A` column once per panel instead of once per column and
/// keeping four independent `mul_add` chains in flight (the ≤64-block
/// sweep is latency-bound on a single chain otherwise — this is the
/// SplitSolve s = 64 hot loop through the LU/LDLᴴ solves).
const RHS_BLK: usize = 4;

/// Scalar sweep on one diagonal block for the left-side solve: rows
/// `k0..k0+kb` of `B`, forward (effectively lower) or backward, processed
/// in [`RHS_BLK`]-column panels (remainder columns one at a time).
fn solve_diag_left(
    a: ZMatRef<'_>,
    op: Op,
    diag: Diag,
    forward: bool,
    k0: usize,
    kb: usize,
    b: &mut ZMatMut<'_>,
) {
    let m = b.cols();
    let mut j = 0;
    while j + RHS_BLK <= m {
        let cols = b.cols_mut_array::<RHS_BLK>(j);
        solve_diag_left_panel(a, op, diag, forward, k0, kb, cols);
        j += RHS_BLK;
    }
    while j < m {
        let cols = b.cols_mut_array::<1>(j);
        solve_diag_left_panel(a, op, diag, forward, k0, kb, cols);
        j += 1;
    }
}

/// One [`RHS_BLK`]-wide (or remainder-width) panel of the substitution
/// sweep. Both branches walk **columns of the stored triangle** so the
/// inner loops run over contiguous slices: `Op::None` scatters the solved
/// entries down/up their own column (classic substitution), while the
/// transposed ops gather dot products against column `gt` of the storage
/// — the `Lᴴ` backward sweep of the LDLᴴ solve stays contiguous this way.
/// Every `A` element is loaded once and fed to all `K` columns' FMA
/// chains.
fn solve_diag_left_panel<const K: usize>(
    a: ZMatRef<'_>,
    op: Op,
    diag: Diag,
    forward: bool,
    k0: usize,
    kb: usize,
    mut cols: [&mut [Complex64]; K],
) {
    for t in 0..kb {
        let t = if forward { t } else { kb - 1 - t };
        let gt = k0 + t;
        let acol = a.col(gt);
        match op {
            Op::None => {
                let mut neg = [Complex64::ZERO; K];
                if diag == Diag::NonUnit {
                    let dinv = acol[gt].inv();
                    for (c, n) in cols.iter_mut().zip(neg.iter_mut()) {
                        let x = c[gt] * dinv;
                        c[gt] = x;
                        *n = -x;
                    }
                } else {
                    for (c, n) in cols.iter().zip(neg.iter_mut()) {
                        *n = -c[gt];
                    }
                }
                if neg.iter().all(|n| *n == Complex64::ZERO) {
                    continue;
                }
                let (lo, hi) = if forward { (gt + 1, k0 + kb) } else { (k0, gt) };
                for (i, &ai) in (lo..hi).zip(&acol[lo..hi]) {
                    for (c, &n) in cols.iter_mut().zip(&neg) {
                        c[i] = c[i].mul_add(ai, n);
                    }
                }
            }
            Op::Transpose | Op::Adjoint => {
                let (lo, hi) = if forward { (k0, gt) } else { (gt + 1, k0 + kb) };
                let mut s = [Complex64::ZERO; K];
                if op == Op::Adjoint {
                    for (i, &ai) in (lo..hi).zip(&acol[lo..hi]) {
                        let ac = ai.conj();
                        for (c, sq) in cols.iter().zip(s.iter_mut()) {
                            *sq = sq.mul_add(ac, c[i]);
                        }
                    }
                } else {
                    for (i, &ai) in (lo..hi).zip(&acol[lo..hi]) {
                        for (c, sq) in cols.iter().zip(s.iter_mut()) {
                            *sq = sq.mul_add(ai, c[i]);
                        }
                    }
                }
                let dinv =
                    if diag == Diag::NonUnit { aeff(a, op, gt, gt).inv() } else { Complex64::ONE };
                for (c, &sq) in cols.iter_mut().zip(&s) {
                    let mut x = c[gt] - sq;
                    if diag == Diag::NonUnit {
                        x *= dinv;
                    }
                    c[gt] = x;
                }
            }
        }
    }
}

fn trsm_right(uplo: UpLo, op: Op, diag: Diag, a: ZMatRef<'_>, mut b: ZMatMut<'_>) {
    let n = a.rows();
    let m = b.rows();
    if n == 0 || m == 0 {
        return;
    }
    // X·op(A) = B with op(A) effectively *upper* solves column blocks
    // forward (X₁·A₁₁ = B₁ first), effectively lower backward.
    let forward = !effectively_lower(uplo, op);
    let mut done = 0;
    while done < n {
        let kb = NB.min(n - done);
        let k0 = if forward { done } else { n - done - kb };
        solve_diag_right(a, op, diag, forward, k0, kb, &mut b);
        let (c0, cols) = if forward { (k0 + kb, n - k0 - kb) } else { (0, k0) };
        if cols > 0 {
            // Columns of B split aliasing-free at a column boundary: the
            // solved block columns are read, the remaining ones updated.
            let (x, c) = if forward {
                let (left, right) = b.rb().split_at_col(k0 + kb);
                (left.sub_mut(0, k0, m, kb), right)
            } else {
                let (left, right) = b.rb().split_at_col(k0);
                (right.sub_mut(0, 0, m, kb), left)
            };
            let (asub, aop) = match op {
                Op::None => (a.sub(k0, c0, kb, cols), Op::None),
                _ => (a.sub(c0, k0, cols, kb), op),
            };
            gemm_into_unc(-Complex64::ONE, x.as_ref(), Op::None, asub, aop, Complex64::ONE, c);
        }
        done += kb;
    }
}

/// Scalar sweep on one diagonal block for the right-side solve: columns
/// `k0..k0+kb` of `B`, running column AXPYs (contiguous in memory).
fn solve_diag_right(
    a: ZMatRef<'_>,
    op: Op,
    diag: Diag,
    forward: bool,
    k0: usize,
    kb: usize,
    b: &mut ZMatMut<'_>,
) {
    for t in 0..kb {
        let t = if forward { t } else { kb - 1 - t };
        let gt = k0 + t;
        let (lo, hi) = if forward { (0, t) } else { (t + 1, kb) };
        for u in lo..hi {
            let gu = k0 + u;
            let f = aeff(a, op, gu, gt);
            if f == Complex64::ZERO {
                continue;
            }
            let (cu, ct) = if gu < gt {
                b.two_cols_mut(gu, gt)
            } else {
                let (ct, cu) = b.two_cols_mut(gt, gu);
                (cu, ct)
            };
            for (x, y) in ct.iter_mut().zip(cu.iter()) {
                *x -= *y * f;
            }
        }
        if diag == Diag::NonUnit {
            let inv = aeff(a, op, gt, gt).inv();
            for x in b.col_mut(gt).iter_mut() {
                *x *= inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::gemm::matmul;
    use crate::zmat::ZMat;

    /// Well-conditioned triangle: random strict part, heavy diagonal.
    fn triangle(n: usize, uplo: UpLo, seed: u64) -> ZMat {
        let r = ZMat::random(n, n, seed);
        let mut t = ZMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let keep = match uplo {
                    UpLo::Lower => i > j,
                    UpLo::Upper => i < j,
                };
                if keep {
                    t[(i, j)] = r[(i, j)].scale(0.5);
                }
            }
            t[(j, j)] = r[(j, j)] + c64(2.0 + n as f64 * 0.05, 0.3);
        }
        t
    }

    fn materialize(a: &ZMat, op: Op) -> ZMat {
        match op {
            Op::None => a.clone(),
            Op::Transpose => a.transpose(),
            Op::Adjoint => a.adjoint(),
        }
    }

    /// Reference check `op(A)·X = B` (left) or `X·op(A) = B` (right).
    fn check(side: Side, uplo: UpLo, op: Op, diag: Diag, n: usize, m: usize, seed: u64) {
        let mut a = triangle(n, uplo, seed);
        if diag == Diag::Unit {
            for i in 0..n {
                a[(i, i)] = c64(7.5, -2.0); // must never be read
            }
        }
        let b0 = match side {
            Side::Left => ZMat::random(n, m, seed + 1),
            Side::Right => ZMat::random(m, n, seed + 1),
        };
        let mut x = b0.clone();
        trsm(side, uplo, op, diag, a.view(), x.view_mut());
        // Rebuild B from X with a clean materialized triangle.
        let mut eff = a.clone();
        for j in 0..n {
            for i in 0..n {
                let stored = match uplo {
                    UpLo::Lower => i >= j,
                    UpLo::Upper => i <= j,
                };
                if !stored {
                    eff[(i, j)] = Complex64::ZERO;
                }
            }
        }
        if diag == Diag::Unit {
            for i in 0..n {
                eff[(i, i)] = Complex64::ONE;
            }
        }
        let eff = materialize(&eff, op);
        let rebuilt = match side {
            Side::Left => matmul(&eff, &x),
            Side::Right => matmul(&x, &eff),
        };
        let scale = b0.norm_max().max(1.0) * n as f64;
        assert!(
            rebuilt.max_diff(&b0) < 1e-10 * scale,
            "side {side:?} uplo {uplo:?} op {op:?} diag {diag:?} n {n}: {:.2e}",
            rebuilt.max_diff(&b0)
        );
    }

    #[test]
    fn all_variants_small() {
        for side in [Side::Left, Side::Right] {
            for uplo in [UpLo::Lower, UpLo::Upper] {
                for op in [Op::None, Op::Transpose, Op::Adjoint] {
                    for diag in [Diag::Unit, Diag::NonUnit] {
                        check(side, uplo, op, diag, 13, 5, 42);
                    }
                }
            }
        }
    }

    #[test]
    fn all_variants_blocked_path() {
        // n > NB exercises the block loop + gemm trailing updates,
        // deliberately not a multiple of the block edge.
        for side in [Side::Left, Side::Right] {
            for uplo in [UpLo::Lower, UpLo::Upper] {
                for op in [Op::None, Op::Adjoint] {
                    for diag in [Diag::Unit, Diag::NonUnit] {
                        check(side, uplo, op, diag, 150, 9, 77);
                    }
                }
            }
        }
    }

    #[test]
    fn solves_in_place_on_a_sub_block() {
        // The factorization use-case: solve only a panel of a larger
        // matrix through a block_view_mut.
        let a = triangle(6, UpLo::Lower, 5);
        let mut big = ZMat::random(10, 8, 6);
        let before = big.clone();
        let x_ref = {
            let mut x = big.block(2, 1, 6, 4);
            trsm(Side::Left, UpLo::Lower, Op::None, Diag::NonUnit, a.view(), x.view_mut());
            x
        };
        trsm(
            Side::Left,
            UpLo::Lower,
            Op::None,
            Diag::NonUnit,
            a.view(),
            big.block_view_mut(2, 1, 6, 4),
        );
        assert!(big.block(2, 1, 6, 4).max_diff(&x_ref) == 0.0, "panel solve differs");
        // Everything outside the panel is untouched.
        for j in 0..8 {
            for i in 0..10 {
                if (2..8).contains(&i) && (1..5).contains(&j) {
                    continue;
                }
                assert_eq!(big[(i, j)], before[(i, j)], "({i},{j}) clobbered");
            }
        }
    }

    #[test]
    fn counts_flops() {
        let a = triangle(20, UpLo::Upper, 9);
        let mut b = ZMat::random(20, 3, 10);
        let scope = crate::flops::FlopScope::start();
        trsm(Side::Left, UpLo::Upper, Op::None, Diag::NonUnit, a.view(), b.view_mut());
        assert!(scope.elapsed() >= counts::ztrsm(20, 3));
    }
}
