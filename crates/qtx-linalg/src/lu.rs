//! LU factorization and linear solves (`zgesv`, `zgesv_nopiv`).
//!
//! Two variants are provided, matching the paper's kernel choices:
//!
//! * **Partial pivoting** (`zgesv`): the robust general solver used on the
//!   CPU side (FEAST linear systems at the contour integration points).
//! * **No pivoting** (`zgesv_nopiv`): the MAGMA GPU kernel used inside
//!   SplitSolve's Algorithm 1, valid because the shifted diagonal blocks
//!   `A_ii − A_{i,i+1}X_{i+1}` of transport matrices are strongly
//!   diagonally dominant at complex energies. The pivot-free path is what
//!   makes the hybrid CPU+GPU factorization stream-friendly (§5.A).

use crate::complex::Complex64;
use crate::flops::{counts, flops_add};
use crate::zmat::ZMat;
use crate::{LinalgError, Result};

/// Breakdown threshold relative to the matrix scale.
const PIVOT_TOL: f64 = 1e-300;

/// An LU factorization `P·A = L·U` stored packed in a single matrix.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Packed L (unit lower, implicit diagonal) and U factors.
    pub lu: ZMat,
    /// Row permutation: `perm[k]` is the pivot row chosen at step `k`.
    pub perm: Vec<usize>,
    /// Whether pivoting was used (false for the `nopiv` variant).
    pub pivoted: bool,
}

/// Factors `A` with partial pivoting.
pub fn lu_factor(a: &ZMat) -> Result<LuFactors> {
    let n = a.rows();
    assert!(a.is_square(), "LU requires a square matrix");
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    flops_add(counts::zgetrf(n));
    for k in 0..n {
        // Pivot search down column k.
        let mut p = k;
        let mut best = lu[(k, k)].norm_sqr();
        for i in k + 1..n {
            let mag = lu[(i, k)].norm_sqr();
            if mag > best {
                best = mag;
                p = i;
            }
        }
        if best.sqrt() < PIVOT_TOL {
            return Err(LinalgError::SingularPivot { index: k, magnitude: best.sqrt() });
        }
        if p != k {
            lu.swap_rows(k, p);
            perm.swap(k, p);
        }
        let pivot_inv = lu[(k, k)].inv();
        for i in k + 1..n {
            let lik = lu[(i, k)] * pivot_inv;
            lu[(i, k)] = lik;
        }
        // Rank-1 trailing update, column by column for cache friendliness.
        for j in k + 1..n {
            let ukj = lu[(k, j)];
            if ukj == Complex64::ZERO {
                continue;
            }
            for i in k + 1..n {
                let lik = lu[(i, k)];
                lu[(i, j)] -= lik * ukj;
            }
        }
    }
    Ok(LuFactors { lu, perm, pivoted: true })
}

/// Factors `A` without pivoting (the `zgesv_nopiv_gpu` analogue).
///
/// Fails with [`LinalgError::SingularPivot`] if a diagonal entry collapses;
/// callers that cannot guarantee diagonal dominance should use
/// [`lu_factor`] instead.
pub fn lu_factor_nopiv(a: &ZMat) -> Result<LuFactors> {
    let n = a.rows();
    assert!(a.is_square(), "LU requires a square matrix");
    let mut lu = a.clone();
    let scale = a.norm_max().max(1.0);
    flops_add(counts::zgetrf(n));
    for k in 0..n {
        let piv = lu[(k, k)];
        if piv.abs() < 1e-14 * scale {
            return Err(LinalgError::SingularPivot { index: k, magnitude: piv.abs() });
        }
        let pivot_inv = piv.inv();
        for i in k + 1..n {
            let lik = lu[(i, k)] * pivot_inv;
            lu[(i, k)] = lik;
        }
        for j in k + 1..n {
            let ukj = lu[(k, j)];
            if ukj == Complex64::ZERO {
                continue;
            }
            for i in k + 1..n {
                let lik = lu[(i, k)];
                lu[(i, j)] -= lik * ukj;
            }
        }
    }
    Ok(LuFactors { lu, perm: (0..n).collect(), pivoted: false })
}

impl LuFactors {
    /// Solves `A·X = B` for multiple right-hand sides using the factors.
    pub fn solve(&self, b: &ZMat) -> ZMat {
        let n = self.lu.rows();
        assert_eq!(b.rows(), n, "rhs row count mismatch");
        flops_add(counts::zgetrs(n, b.cols()));
        let mut x = ZMat::zeros(n, b.cols());
        // Apply the permutation: x = P·b.
        for j in 0..b.cols() {
            for i in 0..n {
                x[(i, j)] = b[(self.perm[i], j)];
            }
        }
        // Forward substitution with unit-lower L.
        for j in 0..x.cols() {
            for k in 0..n {
                let xkj = x[(k, j)];
                if xkj == Complex64::ZERO {
                    continue;
                }
                for i in k + 1..n {
                    let lik = self.lu[(i, k)];
                    x[(i, j)] -= lik * xkj;
                }
            }
            // Backward substitution with U.
            for k in (0..n).rev() {
                let ukk_inv = self.lu[(k, k)].inv();
                let xkj = x[(k, j)] * ukk_inv;
                x[(k, j)] = xkj;
                for i in 0..k {
                    let uik = self.lu[(i, k)];
                    x[(i, j)] -= uik * xkj;
                }
            }
        }
        x
    }

    /// Solves for a single right-hand-side vector.
    pub fn solve_vec(&self, b: &[Complex64]) -> Vec<Complex64> {
        let n = self.lu.rows();
        let mut bm = ZMat::zeros(n, 1);
        bm.col_mut(0).copy_from_slice(b);
        self.solve(&bm).col(0).to_vec()
    }

    /// Determinant from the factorization (sign from the permutation).
    pub fn determinant(&self) -> Complex64 {
        let n = self.lu.rows();
        let mut det = Complex64::ONE;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        // Permutation parity.
        let mut visited = vec![false; n];
        let mut swaps = 0;
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut len = 0;
            let mut i = start;
            while !visited[i] {
                visited[i] = true;
                i = self.perm[i];
                len += 1;
            }
            swaps += len - 1;
        }
        if swaps % 2 == 1 {
            det = -det;
        }
        det
    }
}

/// One-shot solve `A·X = B` with partial pivoting (LAPACK `zgesv`).
pub fn zgesv(a: &ZMat, b: &ZMat) -> Result<ZMat> {
    Ok(lu_factor(a)?.solve(b))
}

/// One-shot solve without pivoting (MAGMA `zgesv_nopiv_gpu` analogue).
pub fn zgesv_nopiv(a: &ZMat, b: &ZMat) -> Result<ZMat> {
    Ok(lu_factor_nopiv(a)?.solve(b))
}

/// Alias used by callers that want the factor-then-solve split explicit.
pub fn lu_solve(f: &LuFactors, b: &ZMat) -> ZMat {
    f.solve(b)
}

/// Matrix inverse through LU (used for small reduced systems only; the
/// transport solvers never invert large matrices explicitly).
pub fn lu_inverse(a: &ZMat) -> Result<ZMat> {
    let f = lu_factor(a)?;
    Ok(f.solve(&ZMat::identity(a.rows())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn diag_dominant(n: usize, seed: u64) -> ZMat {
        let mut a = ZMat::random(n, n, seed);
        for i in 0..n {
            a[(i, i)] += c64(n as f64, n as f64 * 0.5);
        }
        a
    }

    #[test]
    fn pivoted_solve_reconstructs_rhs() {
        let a = ZMat::random(12, 12, 21);
        let x_true = ZMat::random(12, 3, 22);
        let b = &a * &x_true;
        let x = zgesv(&a, &b).unwrap();
        assert!(x.max_diff(&x_true) < 1e-9);
    }

    #[test]
    fn nopiv_solve_on_dominant_matrix() {
        let a = diag_dominant(15, 31);
        let x_true = ZMat::random(15, 2, 32);
        let b = &a * &x_true;
        let x = zgesv_nopiv(&a, &b).unwrap();
        assert!(x.max_diff(&x_true) < 1e-9);
    }

    #[test]
    fn nopiv_detects_zero_pivot() {
        // First diagonal entry exactly zero and no dominance: must error.
        let mut a = ZMat::identity(3);
        a[(0, 0)] = Complex64::ZERO;
        a[(0, 1)] = Complex64::ONE;
        a[(1, 0)] = Complex64::ONE;
        assert!(matches!(lu_factor_nopiv(&a), Err(LinalgError::SingularPivot { .. })));
        // Pivoted factorization handles the same matrix fine.
        assert!(lu_factor(&a).is_ok());
    }

    #[test]
    fn inverse_roundtrip() {
        let a = diag_dominant(9, 41);
        let inv = lu_inverse(&a).unwrap();
        let id = &a * &inv;
        assert!(id.max_diff(&ZMat::identity(9)) < 1e-9);
    }

    #[test]
    fn determinant_of_diagonal() {
        let d = ZMat::from_diag(&[c64(2.0, 0.0), c64(0.0, 3.0), c64(-1.0, 0.0)]);
        let f = lu_factor(&d).unwrap();
        // det = 2 * 3i * (-1) = -6i
        assert!((f.determinant() - c64(0.0, -6.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_under_permutation() {
        // Permutation matrix swapping rows 0,1: determinant -1.
        let mut p = ZMat::zeros(2, 2);
        p[(0, 1)] = Complex64::ONE;
        p[(1, 0)] = Complex64::ONE;
        let f = lu_factor(&p).unwrap();
        assert!((f.determinant() - c64(-1.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut a = ZMat::zeros(4, 4);
        a[(0, 0)] = Complex64::ONE; // rank 1
        assert!(matches!(lu_factor(&a), Err(LinalgError::SingularPivot { .. })));
    }

    #[test]
    fn factors_reconstruct_matrix() {
        let a = ZMat::random(8, 8, 55);
        let f = lu_factor(&a).unwrap();
        let n = 8;
        // Rebuild P·A = L·U.
        let mut l = ZMat::identity(n);
        let mut u = ZMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                if i > j {
                    l[(i, j)] = f.lu[(i, j)];
                } else {
                    u[(i, j)] = f.lu[(i, j)];
                }
            }
        }
        let pa = {
            let mut pa = ZMat::zeros(n, n);
            for j in 0..n {
                for i in 0..n {
                    pa[(i, j)] = a[(f.perm[i], j)];
                }
            }
            pa
        };
        assert!((&l * &u).max_diff(&pa) < 1e-10);
    }

    #[test]
    fn multiple_rhs_agree_with_vector_solves() {
        let a = diag_dominant(6, 77);
        let b = ZMat::random(6, 4, 78);
        let f = lu_factor(&a).unwrap();
        let x = f.solve(&b);
        for j in 0..4 {
            let xj = f.solve_vec(b.col(j));
            for i in 0..6 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-11);
            }
        }
    }
}
