//! LU factorization and linear solves (`zgesv`, `zgesv_nopiv`).
//!
//! Two variants are provided, matching the paper's kernel choices:
//!
//! * **Partial pivoting** (`zgesv`): the robust general solver used on the
//!   CPU side (FEAST linear systems at the contour integration points).
//! * **No pivoting** (`zgesv_nopiv`): the MAGMA GPU kernel used inside
//!   SplitSolve's Algorithm 1, valid because the shifted diagonal blocks
//!   `A_ii − A_{i,i+1}X_{i+1}` of transport matrices are strongly
//!   diagonally dominant at complex energies. The pivot-free path is what
//!   makes the hybrid CPU+GPU factorization stream-friendly (§5.A).
//!
//! Both run **blocked right-looking** above a size crossover: column
//! ranges split recursively (flat `NB`-panel peeling below a strip
//! width, halving above it), each merge being a scalar-panel factor with
//! full-row pivot interchanges ([`laswp`]-style), a [`crate::trsm`]
//! solve of the `U₁₂` panel and one gemm trailing update on the tiled
//! [`crate::gemm`] microkernel — the same decomposition MAGMA's `zgetrf`
//! uses on the paper's GPUs, with the recursion pushing the large-`n`
//! flops into large-`k` gemms. Below the crossover (and behind
//! [`force_unblocked_factor`], the A/B baseline switch used by
//! `bench_lu_json`) the unblocked rank-1 loop runs unchanged.
//!
//! Solves follow the same split: [`LuFactors::solve_in_place`] applies the
//! pivot sequence and two blocked triangular solves directly in the
//! caller's buffer, and [`LuFactors::solve_into`]/[`zgesv_into`] borrow
//! everything — including the factorization's own working copy, via
//! [`lu_factor_ws`] — from a [`Workspace`], so a factor+solve loop over
//! energy points performs zero fresh matrix allocations once the pool is
//! warm.

use crate::complex::Complex64;
use crate::flops::{counts, flops_add};
use crate::gemm::{gemm_into_unc, Op};
use crate::trsm::{trsm_unc, Diag, Side, UpLo};
use crate::workspace::Workspace;
use crate::zmat::{ZMat, ZMatMut, ZMatRef};
use crate::{LinalgError, Result};
use std::sync::atomic::{AtomicBool, Ordering};

/// Breakdown threshold relative to the matrix scale.
const PIVOT_TOL: f64 = 1e-300;

/// Panel width of the blocked factorization: strips this narrow are
/// factored with the scalar rank-1 loop.
const NB: usize = 32;

/// Column widths up to this peel `NB`-panels left to right (flat
/// blocking, whose trailing updates are wide enough for the packed gemm
/// path); wider ranges split in half recursively so the merge gemm runs
/// at large `k` (Toledo's recursive LU shape). The hybrid keeps every
/// update gemm on the packed microkernel: pure recursion would drown in
/// small `32×32×m` bottom-level merges below the packing threshold.
const STRIP: usize = 128;

/// Smallest order that takes the blocked path; below it the panel/trsm
/// bookkeeping costs more than the gemm saves (measured on this
/// container's 1-core AVX-512 CPU via `bench_lu_json`, crossover ≈ 96).
const BLOCK_MIN: usize = 96;

/// A/B baseline switch: `true` forces every factorization (LU and LDLᴴ)
/// through the unblocked rank-1 path regardless of size.
static FORCE_UNBLOCKED: AtomicBool = AtomicBool::new(false);

/// Routes all factorizations through the unblocked baseline (or back).
/// Benchmark-only: `bench_lu_json` uses it to measure blocked-vs-unblocked
/// speedups end to end at the solver level in one process.
pub fn force_unblocked_factor(on: bool) {
    FORCE_UNBLOCKED.store(on, Ordering::Relaxed);
}

/// Whether the unblocked baseline is currently forced.
pub(crate) fn unblocked_forced() -> bool {
    FORCE_UNBLOCKED.load(Ordering::Relaxed)
}

/// An LU factorization `P·A = L·U` stored packed in a single matrix.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Packed L (unit lower, implicit diagonal) and U factors.
    pub lu: ZMat,
    /// Row permutation as a gather map: row `i` of the factored matrix is
    /// row `perm[i]` of the input.
    pub perm: Vec<usize>,
    /// LAPACK-style pivot sequence: at step `k`, rows `k` and `ipiv[k]`
    /// were interchanged ([`laswp`] consumes this ordering).
    pub ipiv: Vec<usize>,
    /// Whether pivoting was used (false for the `nopiv` variant).
    pub pivoted: bool,
}

/// Applies a pivot interchange sequence to a right-hand side in place
/// (LAPACK `zlaswp`): for `k` ascending, swaps rows `k` and `ipiv[k]`.
pub fn laswp(x: &mut ZMat, ipiv: &[usize]) {
    for (k, &p) in ipiv.iter().enumerate() {
        if p != k {
            x.swap_rows(k, p);
        }
    }
}

/// Factors `A` with partial pivoting.
pub fn lu_factor(a: &ZMat) -> Result<LuFactors> {
    lu_factor_owned(a.clone(), true)
}

/// [`lu_factor`] with the working copy **and** the pivot index buffers
/// borrowed from `ws` — the zero-churn form for factor loops; hand
/// everything back with [`LuFactors::recycle_into`] when the factors are
/// spent.
pub fn lu_factor_ws(a: &ZMat, ws: &Workspace) -> Result<LuFactors> {
    factor_entry(ws.copy_of(a), true, Some(ws))
}

/// Factors a matrix the caller already owns, in place (no copy at all).
pub fn lu_factor_owned(a: ZMat, pivot: bool) -> Result<LuFactors> {
    factor_entry(a, pivot, None)
}

/// [`lu_factor_owned`] with the pivot index buffers (`perm` + `ipiv`)
/// borrowed from the `ws` index pool — the form callers that already
/// pooled the matrix itself (e.g. `factor_poly_ws`) use so a warm factor
/// loop allocates nothing at all; return everything with
/// [`LuFactors::recycle_into`].
pub fn lu_factor_owned_ws(a: ZMat, pivot: bool, ws: &Workspace) -> Result<LuFactors> {
    factor_entry(a, pivot, Some(ws))
}

/// Factors `A` without pivoting (the `zgesv_nopiv_gpu` analogue).
///
/// Fails with [`LinalgError::SingularPivot`] if a diagonal entry collapses;
/// callers that cannot guarantee diagonal dominance should use
/// [`lu_factor`] instead.
pub fn lu_factor_nopiv(a: &ZMat) -> Result<LuFactors> {
    lu_factor_owned(a.clone(), false)
}

/// [`lu_factor_nopiv`] with the working copy borrowed from `ws`.
pub fn lu_factor_nopiv_ws(a: &ZMat, ws: &Workspace) -> Result<LuFactors> {
    factor_entry(ws.copy_of(a), false, Some(ws))
}

/// The unblocked rank-1-update baseline, kept callable for A/B
/// measurements and the blocked-vs-unblocked property tests.
pub fn lu_factor_unblocked(a: &ZMat) -> Result<LuFactors> {
    let n = a.rows();
    let mut lu = a.clone();
    flops_add(counts::zgetrf(n));
    let (mut perm, mut ipiv): (Vec<usize>, Vec<usize>) = ((0..n).collect(), (0..n).collect());
    factor_unblocked(&mut lu, true, &mut perm, &mut ipiv)?;
    Ok(LuFactors { lu, perm, ipiv, pivoted: true })
}

/// Unblocked pivot-free baseline (see [`lu_factor_unblocked`]).
pub fn lu_factor_nopiv_unblocked(a: &ZMat) -> Result<LuFactors> {
    let n = a.rows();
    let mut lu = a.clone();
    flops_add(counts::zgetrf(n));
    let (mut perm, mut ipiv): (Vec<usize>, Vec<usize>) = ((0..n).collect(), (0..n).collect());
    factor_unblocked(&mut lu, false, &mut perm, &mut ipiv)?;
    Ok(LuFactors { lu, perm, ipiv, pivoted: false })
}

/// Shared entry: counts, dispatches on size, pools the pivot index
/// buffers when a workspace is supplied, recycles everything on error.
fn factor_entry(mut lu: ZMat, pivot: bool, ws: Option<&Workspace>) -> Result<LuFactors> {
    let n = lu.rows();
    assert!(lu.is_square(), "LU requires a square matrix");
    flops_add(counts::zgetrf(n));
    let (mut perm, mut ipiv) = match ws {
        Some(ws) => (ws.take_index(n), ws.take_index(n)),
        None => ((0..n).collect(), (0..n).collect()),
    };
    let factored = if n < BLOCK_MIN || unblocked_forced() {
        factor_unblocked(&mut lu, pivot, &mut perm, &mut ipiv)
    } else {
        factor_blocked(&mut lu, pivot, &mut perm, &mut ipiv)
    };
    match factored {
        Ok(()) => Ok(LuFactors { lu, perm, ipiv, pivoted: pivot }),
        Err(e) => {
            if let Some(ws) = ws {
                ws.recycle(lu);
                ws.recycle_index(perm);
                ws.recycle_index(ipiv);
            }
            // Annotate with the op and operand shape so the failure
            // taxonomy upstairs (ObcError/SolveError) reports *which*
            // factorization of *what size* broke, not just "singular".
            Err(e.with_context(if pivot { "zgetrf" } else { "zgetrf_nopiv" }, (n, n)))
        }
    }
}

/// The seed's unblocked rank-1-update loop, pivoted or not, filling the
/// caller-provided (identity-initialized) pivot buffers.
fn factor_unblocked(
    lu: &mut ZMat,
    pivot: bool,
    perm: &mut [usize],
    ipiv: &mut [usize],
) -> Result<()> {
    let n = lu.rows();
    let scale = if pivot { 0.0 } else { lu.norm_max().max(1.0) };
    for k in 0..n {
        pivot_step(lu, perm, ipiv, pivot, scale, k, n)?;
        // Rank-1 trailing update, column by column for cache friendliness.
        rank1_update(lu, k, k + 1, n);
    }
    Ok(())
}

/// Rank-1 trailing update `A[k+1.., j] −= L[k+1.., k]·U[k, j]` for columns
/// `j ∈ col_lo..col_hi`, run over contiguous column slices so the inner
/// loop vectorizes (the unblocked path's hottest loop).
#[inline]
fn rank1_update(lu: &mut ZMat, k: usize, col_lo: usize, col_hi: usize) {
    let n = lu.rows();
    for j in col_lo..col_hi {
        let ukj = lu[(k, j)];
        if ukj == Complex64::ZERO {
            continue;
        }
        let neg = -ukj;
        let (colk, colj) = lu.two_cols_mut(k, j);
        for (cj, &ck) in colj[k + 1..n].iter_mut().zip(&colk[k + 1..n]) {
            *cj = cj.mul_add(ck, neg);
        }
    }
}

/// One elimination step shared by the unblocked loop and the blocked
/// panel: pivot search/interchange (full rows), breakdown check,
/// multiplier scaling of column `k` below the diagonal.
#[inline]
fn pivot_step(
    lu: &mut ZMat,
    perm: &mut [usize],
    ipiv: &mut [usize],
    pivot: bool,
    scale: f64,
    k: usize,
    row_end: usize,
) -> Result<()> {
    if pivot {
        let mut p = k;
        let mut best = lu[(k, k)].norm_sqr();
        for i in k + 1..row_end {
            let mag = lu[(i, k)].norm_sqr();
            if mag > best {
                best = mag;
                p = i;
            }
        }
        if best.sqrt() < PIVOT_TOL {
            return Err(LinalgError::SingularPivot { index: k, magnitude: best.sqrt() });
        }
        if p != k {
            lu.swap_rows(k, p);
            perm.swap(k, p);
        }
        ipiv[k] = p;
    } else {
        let piv = lu[(k, k)];
        if piv.abs() < 1e-14 * scale {
            return Err(LinalgError::SingularPivot { index: k, magnitude: piv.abs() });
        }
    }
    let pivot_inv = lu[(k, k)].inv();
    for lik in lu.col_mut(k)[k + 1..row_end].iter_mut() {
        *lik *= pivot_inv;
    }
    Ok(())
}

/// Recursive blocked right-looking factorization.
///
/// The column range splits in half until it reaches the `NB`-wide scalar
/// base case; each merge is one `trsm` on `U₁₂` plus one gemm trailing
/// update with `k` equal to the half-width — so the bulk of the flops run
/// through the packed microkernel at large `k` instead of the thin
/// panel-width `k` of flat blocking. Pivot interchanges are applied
/// across all `n` columns immediately, so the matrix state at every
/// recursion level matches the unblocked algorithm's.
fn factor_blocked(
    lu: &mut ZMat,
    pivot: bool,
    perm: &mut [usize],
    ipiv: &mut [usize],
) -> Result<()> {
    let n = lu.rows();
    let scale = if pivot { 0.0 } else { lu.norm_max().max(1.0) };
    // Staging buffer for U₁₂ (raw scratch, not a ZMat): the merge gemm
    // reads it while writing other rows of the same columns.
    let mut u12buf: Vec<Complex64> = Vec::new();
    factor_cols(lu, 0, n, pivot, scale, perm, ipiv, &mut u12buf)
}

/// Factors columns `c0..c1` (rows `c0..n`), assuming all columns left of
/// `c0` are factored and their updates applied to this range.
#[allow(clippy::too_many_arguments)]
fn factor_cols(
    lu: &mut ZMat,
    c0: usize,
    c1: usize,
    pivot: bool,
    scale: f64,
    perm: &mut [usize],
    ipiv: &mut [usize],
    u12buf: &mut Vec<Complex64>,
) -> Result<()> {
    let n = lu.rows();
    let w = c1 - c0;
    if w <= NB {
        // Scalar strip: rank-1 updates restricted to the strip's columns.
        for k in c0..c1 {
            pivot_step(lu, perm, ipiv, pivot, scale, k, n)?;
            rank1_update(lu, k, k + 1, c1);
        }
        return Ok(());
    }
    // Narrow ranges peel one panel (flat blocking); wide ranges split in
    // half (rounded to a panel multiple) so the merge gemm gets large `k`.
    let h = if w <= STRIP { NB } else { (w / 2).div_ceil(NB) * NB };
    factor_cols(lu, c0, c0 + h, pivot, scale, perm, ipiv, u12buf)?;
    let mid = c0 + h;
    let nr = c1 - mid;
    let rows = n - mid;
    {
        // Split the storage at column `mid`: L₁₁/L₂₁ live left of the
        // split, U₁₂ and the trailing block right of it.
        let ld = n;
        let data = lu.as_mut_slice();
        let (left, right) = data.split_at_mut(mid * ld);
        let right = &mut right[..nr * ld];
        let l11 = ZMatRef::from_slice(&left[c0 * ld + c0..], h, h, ld);
        let u12 = ZMatMut::from_slice(&mut right[c0..], h, nr, ld);
        trsm_unc(Side::Left, UpLo::Lower, Op::None, Diag::Unit, l11, u12);
        // Stage U₁₂ for the gemm (it reads rows c0..mid of the columns
        // the update writes below).
        u12buf.resize(h * nr, Complex64::ZERO);
        for jj in 0..nr {
            u12buf[jj * h..(jj + 1) * h].copy_from_slice(&right[jj * ld + c0..jj * ld + c0 + h]);
        }
        let u12v = ZMatRef::from_slice(u12buf, h, nr, h);
        let l21 = ZMatRef::from_slice(&left[c0 * ld + mid..], rows, h, ld);
        let a22 = ZMatMut::from_slice(&mut right[mid..], rows, nr, ld);
        gemm_into_unc(-Complex64::ONE, l21, Op::None, u12v, Op::None, Complex64::ONE, a22);
    }
    factor_cols(lu, mid, c1, pivot, scale, perm, ipiv, u12buf)
}

impl LuFactors {
    /// Solves `A·X = B` for multiple right-hand sides using the factors.
    pub fn solve(&self, b: &ZMat) -> ZMat {
        let mut x = b.clone();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A·X = B` writing the solution into a caller-provided buffer
    /// (typically borrowed from a [`Workspace`]); `x` is fully overwritten,
    /// so unzeroed scratch is fine.
    pub fn solve_into(&self, b: ZMatRef<'_>, x: &mut ZMat) {
        assert_eq!((x.rows(), x.cols()), (b.rows(), b.cols()), "solve_into output shape mismatch");
        x.view_mut().copy_from_view(b);
        self.solve_in_place(x);
    }

    /// Solves `A·X = B` in place: `x` holds `B` on entry and `X` on exit.
    /// Pivot interchanges ([`laswp`]) followed by two blocked triangular
    /// solves — the off-diagonal sweeps run on the gemm microkernel and
    /// the ≤64-block diagonal substitution is RHS-register-blocked
    /// (4-column panels in [`crate::trsm`]), the sweep that dominates
    /// SplitSolve's per-block solves at s = 64.
    pub fn solve_in_place(&self, x: &mut ZMat) {
        let n = self.lu.rows();
        assert_eq!(x.rows(), n, "rhs row count mismatch");
        flops_add(counts::zgetrs(n, x.cols()));
        if self.pivoted {
            laswp(x, &self.ipiv);
        }
        trsm_unc(Side::Left, UpLo::Lower, Op::None, Diag::Unit, self.lu.view(), x.view_mut());
        trsm_unc(Side::Left, UpLo::Upper, Op::None, Diag::NonUnit, self.lu.view(), x.view_mut());
    }

    /// Solves for a single right-hand-side vector.
    pub fn solve_vec(&self, b: &[Complex64]) -> Vec<Complex64> {
        let n = self.lu.rows();
        let mut bm = ZMat::zeros(n, 1);
        bm.col_mut(0).copy_from_slice(b);
        self.solve_in_place(&mut bm);
        bm.col(0).to_vec()
    }

    /// Determinant from the factorization; the sign comes from the parity
    /// of the pivot interchange sequence (`ipiv[k] ≠ k` counts one swap),
    /// which stays correct on the blocked path where `perm` is assembled
    /// from [`laswp`]-ordered panel swaps.
    pub fn determinant(&self) -> Complex64 {
        let n = self.lu.rows();
        let mut det = Complex64::ONE;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        let swaps = self.ipiv.iter().enumerate().filter(|&(k, &p)| p != k).count();
        if swaps % 2 == 1 {
            det = -det;
        }
        det
    }

    /// Consumes the factors, returning every backing buffer — the packed
    /// matrix and both pivot index vectors — to the pool, so warm factor
    /// loops recycle the `O(n)` pivot churn along with the `O(n²)` matrix.
    pub fn recycle_into(self, ws: &Workspace) {
        ws.recycle(self.lu);
        ws.recycle_index(self.perm);
        ws.recycle_index(self.ipiv);
    }
}

/// One-shot solve `A·X = B` with partial pivoting (LAPACK `zgesv`).
pub fn zgesv(a: &ZMat, b: &ZMat) -> Result<ZMat> {
    Ok(lu_factor(a)?.solve(b))
}

/// One-shot solve without pivoting (MAGMA `zgesv_nopiv_gpu` analogue).
pub fn zgesv_nopiv(a: &ZMat, b: &ZMat) -> Result<ZMat> {
    Ok(lu_factor_nopiv(a)?.solve(b))
}

/// One-shot pivoted solve with **every** temporary — the factorization's
/// working copy included — borrowed from `ws`, writing the solution into
/// the caller's buffer. The zero-allocation form the per-block solves in
/// SplitSolve/RGF/BTD-LU call once per block per energy point.
pub fn zgesv_into(a: &ZMat, b: &ZMat, x: &mut ZMat, ws: &Workspace) -> Result<()> {
    let f = lu_factor_ws(a, ws)?;
    f.solve_into(b.view(), x);
    f.recycle_into(ws);
    Ok(())
}

/// [`zgesv_into`] without pivoting.
pub fn zgesv_nopiv_into(a: &ZMat, b: &ZMat, x: &mut ZMat, ws: &Workspace) -> Result<()> {
    let f = lu_factor_nopiv_ws(a, ws)?;
    f.solve_into(b.view(), x);
    f.recycle_into(ws);
    Ok(())
}

/// Alias used by callers that want the factor-then-solve split explicit.
pub fn lu_solve(f: &LuFactors, b: &ZMat) -> ZMat {
    f.solve(b)
}

/// Matrix inverse through LU (used for small reduced systems only; the
/// transport solvers never invert large matrices explicitly).
pub fn lu_inverse(a: &ZMat) -> Result<ZMat> {
    let f = lu_factor(a)?;
    let mut x = ZMat::identity(a.rows());
    f.solve_in_place(&mut x);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn diag_dominant(n: usize, seed: u64) -> ZMat {
        let mut a = ZMat::random(n, n, seed);
        for i in 0..n {
            a[(i, i)] += c64(n as f64, n as f64 * 0.5);
        }
        a
    }

    #[test]
    fn pivoted_solve_reconstructs_rhs() {
        let a = ZMat::random(12, 12, 21);
        let x_true = ZMat::random(12, 3, 22);
        let b = &a * &x_true;
        let x = zgesv(&a, &b).unwrap();
        assert!(x.max_diff(&x_true) < 1e-9);
    }

    #[test]
    fn nopiv_solve_on_dominant_matrix() {
        let a = diag_dominant(15, 31);
        let x_true = ZMat::random(15, 2, 32);
        let b = &a * &x_true;
        let x = zgesv_nopiv(&a, &b).unwrap();
        assert!(x.max_diff(&x_true) < 1e-9);
    }

    #[test]
    fn nopiv_detects_zero_pivot() {
        // First diagonal entry exactly zero and no dominance: must error.
        let mut a = ZMat::identity(3);
        a[(0, 0)] = Complex64::ZERO;
        a[(0, 1)] = Complex64::ONE;
        a[(1, 0)] = Complex64::ONE;
        assert!(matches!(
            lu_factor_nopiv(&a),
            Err(ref e) if matches!(e.root(), LinalgError::SingularPivot { .. })
        ));
        // Pivoted factorization handles the same matrix fine.
        assert!(lu_factor(&a).is_ok());
    }

    #[test]
    fn inverse_roundtrip() {
        let a = diag_dominant(9, 41);
        let inv = lu_inverse(&a).unwrap();
        let id = &a * &inv;
        assert!(id.max_diff(&ZMat::identity(9)) < 1e-9);
    }

    #[test]
    fn determinant_of_diagonal() {
        let d = ZMat::from_diag(&[c64(2.0, 0.0), c64(0.0, 3.0), c64(-1.0, 0.0)]);
        let f = lu_factor(&d).unwrap();
        // det = 2 * 3i * (-1) = -6i
        assert!((f.determinant() - c64(0.0, -6.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_under_permutation() {
        // Permutation matrix swapping rows 0,1: determinant -1.
        let mut p = ZMat::zeros(2, 2);
        p[(0, 1)] = Complex64::ONE;
        p[(1, 0)] = Complex64::ONE;
        let f = lu_factor(&p).unwrap();
        assert!((f.determinant() - c64(-1.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_consistent_across_blocked_and_unblocked() {
        // Large enough for the blocked path; the permutation-parity sign
        // must agree with the unblocked baseline.
        let n = BLOCK_MIN + 30;
        let a = diag_dominant(n, 71);
        let det_b = lu_factor(&a).unwrap().determinant();
        let det_u = lu_factor_unblocked(&a).unwrap().determinant();
        let rel = (det_b - det_u).abs() / det_u.abs().max(1e-300);
        assert!(rel < 1e-6, "blocked {det_b} vs unblocked {det_u}");
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut a = ZMat::zeros(4, 4);
        a[(0, 0)] = Complex64::ONE; // rank 1
        assert!(matches!(
            lu_factor(&a),
            Err(ref e) if matches!(e.root(), LinalgError::SingularPivot { .. })
        ));
    }

    #[test]
    fn factors_reconstruct_matrix() {
        let a = ZMat::random(8, 8, 55);
        let f = lu_factor(&a).unwrap();
        let n = 8;
        // Rebuild P·A = L·U.
        let mut l = ZMat::identity(n);
        let mut u = ZMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                if i > j {
                    l[(i, j)] = f.lu[(i, j)];
                } else {
                    u[(i, j)] = f.lu[(i, j)];
                }
            }
        }
        let pa = {
            let mut pa = ZMat::zeros(n, n);
            for j in 0..n {
                for i in 0..n {
                    pa[(i, j)] = a[(f.perm[i], j)];
                }
            }
            pa
        };
        assert!((&l * &u).max_diff(&pa) < 1e-10);
    }

    #[test]
    fn blocked_factors_reconstruct_matrix() {
        let n = BLOCK_MIN + 37; // straddles several panels with remainder
        let a = ZMat::random(n, n, 56);
        let f = lu_factor(&a).unwrap();
        let mut l = ZMat::identity(n);
        let mut u = ZMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                if i > j {
                    l[(i, j)] = f.lu[(i, j)];
                } else {
                    u[(i, j)] = f.lu[(i, j)];
                }
            }
        }
        let mut pa = ZMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                pa[(i, j)] = a[(f.perm[i], j)];
            }
        }
        let diff = (&l * &u).max_diff(&pa);
        assert!(diff < 1e-8 * n as f64, "{diff:.2e}");
    }

    #[test]
    fn ipiv_and_perm_agree() {
        // Applying the ipiv swap sequence to the identity gather must
        // reproduce the perm gather map, on both paths.
        for n in [17usize, BLOCK_MIN + 5] {
            let a = ZMat::random(n, n, 60 + n as u64);
            let f = lu_factor(&a).unwrap();
            let mut gather: Vec<usize> = (0..n).collect();
            for (k, &p) in f.ipiv.iter().enumerate() {
                gather.swap(k, p);
            }
            assert_eq!(gather, f.perm, "n = {n}");
        }
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = diag_dominant(20, 91);
        let b = ZMat::random(20, 5, 92);
        let f = lu_factor(&a).unwrap();
        let x_ref = f.solve(&b);
        let ws = Workspace::new();
        let mut x = ws.take(20, 5);
        f.solve_into(b.view(), &mut x);
        assert!(x.max_diff(&x_ref) == 0.0, "same code path must be bit-identical");
        // And through the one-shot pooled entry.
        let mut x2 = ws.take(20, 5);
        zgesv_into(&a, &b, &mut x2, &ws).unwrap();
        assert!(x2.max_diff(&x_ref) < 1e-9);
    }

    #[test]
    fn ws_factor_recycles_on_error() {
        let ws = Workspace::new();
        let a = ZMat::zeros(4, 4); // singular
        assert!(lu_factor_ws(&a, &ws).is_err());
        assert_eq!(ws.pooled(), 1, "working copy returned to the pool on error");
    }

    #[test]
    fn multiple_rhs_agree_with_vector_solves() {
        let a = diag_dominant(6, 77);
        let b = ZMat::random(6, 4, 78);
        let f = lu_factor(&a).unwrap();
        let x = f.solve(&b);
        for j in 0..4 {
            let xj = f.solve_vec(b.col(j));
            for i in 0..6 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn blocked_matches_unblocked_solution() {
        let n = BLOCK_MIN + 60;
        let a = ZMat::random(n, n, 123);
        let b = ZMat::random(n, 3, 124);
        let xb = lu_factor(&a).unwrap().solve(&b);
        let xu = lu_factor_unblocked(&a).unwrap().solve(&b);
        assert!(xb.max_diff(&xu) < 1e-6 * n as f64, "{:.2e}", xb.max_diff(&xu));
    }
}
