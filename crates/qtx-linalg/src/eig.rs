//! Dense complex eigensolvers (`zgeev`/`zggev`-lite).
//!
//! The shift-and-invert OBC baseline and FEAST's Rayleigh–Ritz step both
//! end in a dense non-Hermitian eigenvalue problem (§3.A, Eq. 7). LAPACK's
//! `zggev` is unavailable here, so this module implements the classic
//! pipeline from scratch:
//!
//! 1. Householder reduction to upper Hessenberg form — **blocked** above
//!    the ~96 crossover shared with the LU stack: panels of 32
//!    reflectors are aggregated `zlahr2`-style (the panel loop maintains
//!    the compact-WY triangle `T` and the product `Y = A·V·T` so panel
//!    columns see their two-sided updates immediately while everything
//!    else is deferred), then the trailing matrix takes one `Y·Vᴴ`
//!    right-update gemm and one `I − V·Tᴴ·Vᴴ` left-update WY sweep on the
//!    same gemm/trsm kernels as the blocked QR — every `·T` product runs
//!    as an in-place [`crate::trmm`] on the upper triangle — and `Q`
//!    accumulates one panel at a time through two more gemms,
//! 2. explicitly shifted QR iteration with Givens rotations and Wilkinson
//!    shifts to the (complex) Schur form `A = Z·T·Zᴴ`,
//! 3. eigenvector recovery by triangular back-substitution,
//! 4. generalized problems `A·x = λ·B·x` by a `B⁻¹A` reduction (the FEAST
//!    reduced matrices `QᴴBQ` are well conditioned by construction).
//!
//! Every stage has a workspace-borrowing `_ws` form ([`hessenberg_ws`],
//! [`schur_ws`], [`eig_ws`], [`eig_generalized_ws`]) whose dense
//! temporaries — working copies, `Q`/`Z` accumulators, panel staging,
//! eigenvector matrix — all cycle through the caller's pool, so the FEAST
//! Rayleigh–Ritz step inside a warm OBC iteration allocates no fresh
//! matrices.

use crate::complex::{c64, Complex64};
use crate::flops::{counts, flops_add};
use crate::gemm::{gemm_into_unc, Op};
use crate::lu::{lu_factor_owned_ws, lu_factor_ws};
use crate::qr::{apply_panel_wy, qr_unblocked_forced, stage_v, zlarfg};
use crate::trmm::trmm_unc;
use crate::trsm::{Diag, Side, UpLo};
use crate::workspace::Workspace;
use crate::zmat::ZMat;
use crate::{LinalgError, Result};

/// Panel width of the blocked Hessenberg reduction (matches the QR/LU
/// stacks so the staging buffers tile identically).
const NB: usize = 32;

/// Smallest order that takes the blocked path (same crossover family as
/// `lu::BLOCK_MIN`; below it the `Y`/`T` bookkeeping costs more than the
/// trailing gemms save).
const BLOCK_MIN: usize = 96;

/// Once fewer than this many reflectors remain, the tail runs scalar
/// (LAPACK's `NX` switch): the shrinking trailing blocks no longer feed
/// the packed gemm path efficiently.
const NX: usize = 64;

/// A complex Schur decomposition `A = Z·T·Zᴴ` with unitary `Z` and upper
/// triangular `T`.
#[derive(Debug, Clone)]
pub struct SchurDecomposition {
    /// Upper triangular factor; eigenvalues on the diagonal.
    pub t: ZMat,
    /// Unitary Schur vectors.
    pub z: ZMat,
}

/// Eigenvalues and right eigenvectors of a dense complex matrix.
#[derive(Debug, Clone)]
pub struct EigDecomposition {
    /// Eigenvalues (unsorted).
    pub values: Vec<Complex64>,
    /// Right eigenvectors, column `k` pairs with `values[k]`, unit 2-norm.
    pub vectors: ZMat,
}

/// Reduces `a` to upper Hessenberg form `H = Qᴴ·A·Q`, returning `(H, Q)`.
pub fn hessenberg(a: &ZMat) -> (ZMat, ZMat) {
    hessenberg_ws(a, &Workspace::new())
}

/// [`hessenberg`] with `H`, `Q` and all panel staging borrowed from `ws`
/// (recycle both returned matrices when spent).
pub fn hessenberg_ws(a: &ZMat, ws: &Workspace) -> (ZMat, ZMat) {
    let n = a.rows();
    assert!(a.is_square());
    flops_add(counts::zgehrd(n));
    let mut h = ws.copy_of(a);
    let mut q = ws.take(n, n);
    for i in 0..n {
        q[(i, i)] = Complex64::ONE;
    }
    let kmax = n.saturating_sub(2);
    if n >= BLOCK_MIN && !qr_unblocked_forced() {
        let k0 = hess_blocked_panels(&mut h, &mut q, kmax, ws);
        hess_scalar_steps(&mut h, &mut q, k0, kmax);
    } else {
        hess_scalar_steps(&mut h, &mut q, 0, kmax);
    }
    (h, q)
}

/// The scalar one-reflector-at-a-time baseline, kept callable for A/B
/// measurements (`bench_qr_json`) and blocked-vs-unblocked tests.
pub fn hessenberg_unblocked(a: &ZMat) -> (ZMat, ZMat) {
    let n = a.rows();
    assert!(a.is_square());
    flops_add(counts::zgehrd(n));
    let mut h = a.clone();
    let mut q = ZMat::identity(n);
    hess_scalar_steps(&mut h, &mut q, 0, n.saturating_sub(2));
    (h, q)
}

/// Scalar Hessenberg steps `k ∈ lo..hi`: generate the reflector zeroing
/// column `k` below the subdiagonal, apply it two-sided and accumulate
/// `Q` — the seed algorithm, used below the crossover and for the tail of
/// the blocked path (which leaves the matrix fully updated).
fn hess_scalar_steps(h: &mut ZMat, q: &mut ZMat, lo: usize, hi: usize) {
    let n = h.rows();
    for k in lo..hi {
        // Reflector zeroing column k below the subdiagonal (shared
        // zlarfg: β lands on the subdiagonal, the tail becomes v).
        let tau = zlarfg(&mut h.col_mut(k)[k + 1..n]);
        if tau == Complex64::ZERO {
            continue;
        }
        let colk = h.col_mut(k);
        let mut v = vec![Complex64::ONE; n - k - 1];
        v[1..].copy_from_slice(&colk[k + 2..n]);
        colk[k + 2..n].fill(Complex64::ZERO);
        // H ← Hᴴ_refl · H = (I − τ̄ v vᴴ) H  on rows k+1.., columns k+1..
        for j in k + 1..n {
            let mut w = Complex64::ZERO;
            for i in k + 1..n {
                w += v[i - k - 1].conj() * h[(i, j)];
            }
            let f = tau.conj() * w;
            for i in k + 1..n {
                let vi = v[i - k - 1];
                h[(i, j)] -= vi * f;
            }
        }
        // H ← H · H_refl = H (I − τ v vᴴ)  on columns k+1.., all rows.
        for i in 0..n {
            let mut w = Complex64::ZERO;
            for j in k + 1..n {
                w += h[(i, j)] * v[j - k - 1];
            }
            let f = w * tau;
            for j in k + 1..n {
                let vj = v[j - k - 1];
                h[(i, j)] -= f * vj.conj();
            }
        }
        // Accumulate Q ← Q · H_refl.
        for i in 0..n {
            let mut w = Complex64::ZERO;
            for j in k + 1..n {
                w += q[(i, j)] * v[j - k - 1];
            }
            let f = w * tau;
            for j in k + 1..n {
                let vj = v[j - k - 1];
                q[(i, j)] -= f * vj.conj();
            }
        }
    }
}

/// Runs compact-WY panels until fewer than [`NX`] reflectors remain;
/// returns the first unreduced column (where the scalar tail picks up).
fn hess_blocked_panels(h: &mut ZMat, q: &mut ZMat, kmax: usize, ws: &Workspace) -> usize {
    let n = h.rows();
    let mut vbuf = ws.take_scratch(n, NB);
    let mut ybuf = ws.take_scratch(n, NB);
    let mut ytbuf = ws.take_scratch(n, NB);
    let mut tbuf = ws.take_scratch(NB, NB);
    let mut bbuf = ws.take_scratch(n, 1);
    let mut wbuf = ws.take_scratch(NB, n);
    let mut k0 = 0;
    while kmax - k0 > NX {
        let ib = NB.min(kmax - k0);
        hess_panel(h, k0, ib, &mut tbuf, &mut ybuf, &mut bbuf);
        let rb = k0 + 1;
        let nv = n - rb;
        let pe = k0 + ib;
        // V = unit-lower-trapezoid of the panel (packed one row below the
        // diagonal: the source block's own diagonal is the subdiagonal β).
        stage_v(&h.block_view(rb, k0, nv, ib), &mut vbuf);
        let v = vbuf.block_view(0, 0, nv, ib);
        let t = tbuf.block_view(0, 0, ib, ib);
        // Top rows of Y (untouched so far): Y[0..rb] = (A[0..rb, rb..n]·V)·T
        // — the gemm lands in place, then the upper-triangular `T` factor
        // applies as one right-side ztrmm (half the flops of the square
        // gemm this used to be, and no second staging buffer).
        {
            let mut yt = ybuf.block_view_mut(0, 0, rb, ib);
            gemm_into_unc(
                Complex64::ONE,
                h.block_view(0, rb, rb, nv),
                Op::None,
                v,
                Op::None,
                Complex64::ZERO,
                yt.rb(),
            );
            trmm_unc(Side::Right, UpLo::Upper, Op::None, Diag::NonUnit, Complex64::ONE, t, yt.rb());
        }
        // Right update of the trailing columns (all rows): A −= Y·Vᴴ,
        // restricted to the V rows owning columns pe..n.
        gemm_into_unc(
            -Complex64::ONE,
            ybuf.block_view(0, 0, n, ib),
            Op::None,
            vbuf.block_view(ib - 1, 0, nv - ib + 1, ib),
            Op::Adjoint,
            Complex64::ONE,
            h.block_view_mut(0, pe, n, n - pe),
        );
        // Right update of the panel columns' top rows (rows 0..rb of
        // columns rb..rb+ib−1; rows rb.. were updated inside the panel).
        if ib > 1 {
            let mut w = ytbuf.block_view_mut(0, 0, rb, ib);
            gemm_into_unc(
                Complex64::ONE,
                ybuf.block_view(0, 0, rb, ib),
                Op::None,
                vbuf.block_view(0, 0, ib, ib),
                Op::Adjoint,
                Complex64::ZERO,
                w.rb(),
            );
            for tcol in 0..ib - 1 {
                for (dst, s) in h.col_mut(rb + tcol)[..rb].iter_mut().zip(w.col(tcol)) {
                    *dst -= *s;
                }
            }
        }
        // Left update of the trailing block: A ← (I − V·Tᴴ·Vᴴ)·A.
        apply_panel_wy(v, t, true, h.block_view_mut(rb, pe, nv, n - pe), &mut wbuf);
        // Accumulate Q ← Q·(I − V·T·Vᴴ): one gemm, the in-place `·T`
        // ztrmm (which replaced the square gemm and its buffer), one gemm.
        {
            let mut wq = ytbuf.block_view_mut(0, 0, n, ib);
            gemm_into_unc(
                Complex64::ONE,
                q.block_view(0, rb, n, nv),
                Op::None,
                v,
                Op::None,
                Complex64::ZERO,
                wq.rb(),
            );
            trmm_unc(Side::Right, UpLo::Upper, Op::None, Diag::NonUnit, Complex64::ONE, t, wq.rb());
            gemm_into_unc(
                -Complex64::ONE,
                wq.as_ref(),
                Op::None,
                v,
                Op::Adjoint,
                Complex64::ONE,
                q.block_view_mut(0, rb, n, nv),
            );
        }
        // The packed reflector tails are spent (later panels never read
        // them): zero the below-subdiagonal storage so `h` leaves as a
        // genuine Hessenberg matrix, matching the unblocked path.
        for t in 0..ib {
            let sub = rb + t;
            h.col_mut(k0 + t)[sub + 1..n].fill(Complex64::ZERO);
        }
        k0 += ib;
    }
    ws.recycle(vbuf);
    ws.recycle(ybuf);
    ws.recycle(ytbuf);
    ws.recycle(tbuf);
    ws.recycle(bbuf);
    ws.recycle(wbuf);
    k0
}

/// `zlahr2`-style panel reduction: generates `ib` reflectors starting at
/// column `k0`, keeping only the panel columns current. On exit the panel
/// columns hold the reduced Hessenberg values on top and the packed
/// reflector tails below the subdiagonal, `t[0..ib, 0..ib]` holds the
/// compact-WY triangle (zeros below the diagonal, so dense gemms may read
/// it), and `y[rb..n, 0..ib]` holds the lower rows of `Y = A·V·T` — the
/// deferred right-update aggregate the caller turns into trailing gemms.
fn hess_panel(h: &mut ZMat, k0: usize, ib: usize, t: &mut ZMat, y: &mut ZMat, bbuf: &mut ZMat) {
    let n = h.rows();
    let rb = k0 + 1;
    let mut ei = Complex64::ZERO;
    let mut svec = [Complex64::ZERO; NB];
    let mut wvec = [Complex64::ZERO; NB];
    for j in 0..ib {
        let c = k0 + j;
        if j > 0 {
            // Work on a copy of column c so the V columns stay readable.
            bbuf.col_mut(0)[rb..n].copy_from_slice(&h.col(c)[rb..n]);
            let b = &mut bbuf.col_mut(0)[..n];
            // (a) pending right-updates: b[rb..n] −= Y[rb..n, 0..j]·w̄
            // with w = row rb+j−1 of the unit-lower V (last entry 1).
            for (s, w) in wvec[..j].iter_mut().enumerate() {
                *w = if s == j - 1 { Complex64::ONE } else { h[(rb + j - 1, k0 + s)].conj() };
            }
            for (s, &f) in wvec[..j].iter().enumerate() {
                if f == Complex64::ZERO {
                    continue;
                }
                for (bi, yi) in b[rb..n].iter_mut().zip(&y.col(s)[rb..n]) {
                    *bi -= *yi * f;
                }
            }
            // (b) pending left-updates: b ← (I − V·Tᴴ·Vᴴ)·b.
            //     w = V1ᴴ·b1 + V2ᴴ·b2  (V1 unit lower j×j — its diagonal
            //     is implicit in the `acc` seed — V2 the stored tails).
            for i in 0..j {
                let mut acc = b[rb + i];
                for r in i + 1..j {
                    acc = acc.mul_add(h[(rb + r, k0 + i)].conj(), b[rb + r]);
                }
                let tail = Complex64::dot_conj(&h.col(k0 + i)[rb + j..n], &b[rb + j..n]);
                wvec[i] = acc + tail;
            }
            // w ← Tᴴ·w (conjugate-transposed upper triangle).
            for i in (0..j).rev() {
                let mut acc = Complex64::ZERO;
                for (l, w) in wvec.iter().enumerate().take(i + 1) {
                    acc = acc.mul_add(t[(l, i)].conj(), *w);
                }
                svec[i] = acc;
            }
            wvec[..j].copy_from_slice(&svec[..j]);
            // b2 −= V2·w ; b1 −= V1·w.
            for (i, &w) in wvec[..j].iter().enumerate() {
                if w == Complex64::ZERO {
                    continue;
                }
                let col = &h.col(k0 + i)[rb + j..n];
                for (bi, vi) in b[rb + j..n].iter_mut().zip(col) {
                    *bi -= *vi * w;
                }
            }
            for r in (0..j).rev() {
                let mut acc = wvec[r]; // unit diagonal of V1
                for (i, &w) in wvec[..r].iter().enumerate() {
                    acc = acc.mul_add(h[(rb + r, k0 + i)], w);
                }
                b[rb + r] -= acc;
            }
            h.col_mut(c)[rb..n].copy_from_slice(&bbuf.col(0)[rb..n]);
            // Restore the previous column's subdiagonal β.
            h[(rb + j - 1, k0 + j - 1)] = ei;
        }
        // Generate reflector j on h[rb+j.., c] (shared zlarfg), saving
        // the subdiagonal β as `ei` and storing an explicit unit head for
        // the Y/T products below.
        let tau_j = {
            let col = &mut h.col_mut(c)[rb + j..n];
            let t = zlarfg(col);
            ei = col[0];
            col[0] = Complex64::ONE;
            t
        };
        // Y[rb..n, j] = A[rb..n, c+1..n]·v  (v has its unit stored).
        gemm_into_unc(
            Complex64::ONE,
            h.block_view(rb, c + 1, n - rb, n - c - 1),
            Op::None,
            h.block_view(rb + j, c, n - rb - j, 1),
            Op::None,
            Complex64::ZERO,
            y.block_view_mut(rb, j, n - rb, 1),
        );
        // s = V[j.., 0..j]ᴴ·v (tail dots, contiguous columns).
        for (i, s) in svec[..j].iter_mut().enumerate() {
            *s = Complex64::dot_conj(&h.col(k0 + i)[rb + j..n], &h.col(c)[rb + j..n]);
        }
        // Y[rb..n, j] ← τ_j·(Y[rb..n, j] − Y[rb..n, 0..j]·s).
        for (s_idx, &s) in svec[..j].iter().enumerate() {
            if s == Complex64::ZERO {
                continue;
            }
            let (ys, yj) = y.two_cols_mut(s_idx, j);
            for (yj, yi) in yj[rb..n].iter_mut().zip(&ys[rb..n]) {
                *yj -= *yi * s;
            }
        }
        for z in y.col_mut(j)[rb..n].iter_mut() {
            *z *= tau_j;
        }
        // T(0..j, j) = −τ_j·T(0..j,0..j)·s ; T(j,j) = τ_j; zeros below.
        for i in 0..j {
            let mut acc = Complex64::ZERO;
            for (l, &s) in svec.iter().enumerate().take(j).skip(i) {
                acc = acc.mul_add(t[(i, l)], s);
            }
            wvec[i] = acc;
        }
        let tcol = t.col_mut(j);
        tcol.fill(Complex64::ZERO);
        for (ti, &wi) in tcol[..j].iter_mut().zip(&wvec[..j]) {
            *ti = -(tau_j * wi);
        }
        tcol[j] = tau_j;
    }
    // Restore the last column's subdiagonal β.
    h[(rb + ib - 1, k0 + ib - 1)] = ei;
}

/// A complex Givens rotation `[[c, s], [-s̄, c]]` with real `c ≥ 0`.
#[derive(Clone, Copy)]
struct Givens {
    c: f64,
    s: Complex64,
}

impl Givens {
    /// Computes the rotation that maps `(f, g)` to `(r, 0)`.
    fn compute(f: Complex64, g: Complex64) -> (Givens, Complex64) {
        if g == Complex64::ZERO {
            return (Givens { c: 1.0, s: Complex64::ZERO }, f);
        }
        if f == Complex64::ZERO {
            return (Givens { c: 0.0, s: Complex64::ONE }, g);
        }
        let fa = f.abs();
        let d = (f.norm_sqr() + g.norm_sqr()).sqrt();
        let c = fa / d;
        let s = (f / fa) * g.conj() / d;
        let r = (f / fa) * d;
        (Givens { c, s }, r)
    }

    /// Applies the rotation to the row pair `(x, y)` element-wise.
    #[inline(always)]
    fn rotate(&self, x: Complex64, y: Complex64) -> (Complex64, Complex64) {
        (x.scale(self.c) + self.s * y, y.scale(self.c) - self.s.conj() * x)
    }
}

/// Computes the complex Schur decomposition of `a`.
pub fn schur(a: &ZMat) -> Result<SchurDecomposition> {
    schur_ws(a, &Workspace::new())
}

/// [`schur`] with `T`, `Z` and the Hessenberg staging borrowed from `ws`
/// (both are recycled back into the pool on a convergence failure).
pub fn schur_ws(a: &ZMat, ws: &Workspace) -> Result<SchurDecomposition> {
    assert!(a.is_square());
    let (mut t, mut z) = hessenberg_ws(a, ws);
    match schur_iterate(&mut t, &mut z) {
        Ok(()) => Ok(SchurDecomposition { t, z }),
        Err(e) => {
            ws.recycle(t);
            ws.recycle(z);
            Err(e)
        }
    }
}

/// The shifted-QR deflation loop, in place on the Hessenberg pair.
fn schur_iterate(t: &mut ZMat, z: &mut ZMat) -> Result<()> {
    let n = t.rows();
    if n <= 1 {
        return Ok(());
    }
    flops_add(25 * (n as u64).pow(3));
    let scale = t.norm_max().max(1e-300);
    let small = f64::EPSILON * scale;
    let max_total_iters = 60 * n;
    let mut hi = n - 1;
    let mut iters_here = 0usize;
    let mut total_iters = 0usize;
    while hi > 0 {
        if total_iters > max_total_iters {
            return Err(LinalgError::NoConvergence { remaining: hi + 1 });
        }
        // Deflation scan: find the start `lo` of the active block.
        let mut lo = hi;
        while lo > 0 {
            let sub = t[(lo, lo - 1)].abs();
            let local = t[(lo - 1, lo - 1)].abs() + t[(lo, lo)].abs();
            if sub <= f64::EPSILON * local.max(small) {
                t[(lo, lo - 1)] = Complex64::ZERO;
                break;
            }
            lo -= 1;
        }
        if lo == hi {
            // Eigenvalue at `hi` has converged.
            hi -= 1;
            iters_here = 0;
            continue;
        }
        iters_here += 1;
        total_iters += 1;
        // Wilkinson shift from the trailing 2×2 of the active block, with
        // an exceptional shift every 10 stalled iterations.
        let mu = if iters_here.is_multiple_of(10) {
            t[(hi, hi)] + c64(1.5 * t[(hi, hi - 1)].abs(), 0.5 * t[(hi, hi - 1)].abs())
        } else {
            let a11 = t[(hi - 1, hi - 1)];
            let a12 = t[(hi - 1, hi)];
            let a21 = t[(hi, hi - 1)];
            let a22 = t[(hi, hi)];
            let tr_half = (a11 + a22).scale(0.5);
            let disc = ((a11 - a22).scale(0.5).powi(2) + a12 * a21).sqrt();
            let l1 = tr_half + disc;
            let l2 = tr_half - disc;
            if (l1 - a22).abs() <= (l2 - a22).abs() {
                l1
            } else {
                l2
            }
        };
        // Explicit shifted QR sweep on the block [lo, hi].
        for k in lo..=hi {
            t[(k, k)] -= mu;
        }
        let mut rotations = Vec::with_capacity(hi - lo);
        for k in lo..hi {
            let (g, r) = Givens::compute(t[(k, k)], t[(k + 1, k)]);
            t[(k, k)] = r;
            t[(k + 1, k)] = Complex64::ZERO;
            for j in k + 1..n {
                let (x, y) = g.rotate(t[(k, j)], t[(k + 1, j)]);
                t[(k, j)] = x;
                t[(k + 1, j)] = y;
            }
            rotations.push(g);
        }
        // Right-multiply by the adjoint rotations: T ← T·Gᴴ, Z ← Z·Gᴴ.
        for (idx, g) in rotations.iter().enumerate() {
            let k = lo + idx;
            let row_end = (k + 2).min(hi + 1);
            for i in 0..row_end {
                let x = t[(i, k)];
                let y = t[(i, k + 1)];
                t[(i, k)] = x.scale(g.c) + y * g.s.conj();
                t[(i, k + 1)] = y.scale(g.c) - x * g.s;
            }
            for i in 0..n {
                let x = z[(i, k)];
                let y = z[(i, k + 1)];
                z[(i, k)] = x.scale(g.c) + y * g.s.conj();
                z[(i, k + 1)] = y.scale(g.c) - x * g.s;
            }
        }
        for k in lo..=hi {
            t[(k, k)] += mu;
        }
    }
    // Clean any numerically negligible subdiagonals.
    for k in 1..n {
        t[(k, k - 1)] = Complex64::ZERO;
    }
    Ok(())
}

/// Computes eigenvalues and right eigenvectors of a dense complex matrix.
pub fn eig(a: &ZMat) -> Result<EigDecomposition> {
    eig_ws(a, &Workspace::new())
}

/// [`eig`] over pooled scratch: the Schur factors are recycled into `ws`
/// after the eigenvector recovery and the returned `vectors` matrix is
/// itself pool-backed (recycle it when spent).
pub fn eig_ws(a: &ZMat, ws: &Workspace) -> Result<EigDecomposition> {
    let n = a.rows();
    let dec = schur_ws(a, ws)?;
    let t = &dec.t;
    let values: Vec<Complex64> = (0..n).map(|i| t[(i, i)]).collect();
    // Back-substitute for eigenvectors in the Schur basis, then rotate.
    let mut vecs = ws.take(n, n);
    let scale = t.norm_max().max(1.0);
    let smlnum = (f64::EPSILON * scale).max(1e-280);
    for k in 0..n {
        let lambda = values[k];
        let mut y = vec![Complex64::ZERO; n];
        y[k] = Complex64::ONE;
        for i in (0..k).rev() {
            // (T(i,i) − λ)·y_i = −Σ_{j>i} T(i,j)·y_j
            let mut rhs = Complex64::ZERO;
            for j in i + 1..=k {
                rhs += t[(i, j)] * y[j];
            }
            let mut denom = t[(i, i)] - lambda;
            if denom.abs() < smlnum {
                denom = c64(smlnum, smlnum);
            }
            y[i] = -rhs / denom;
        }
        // v = Z·y, normalized.
        let v = dec.z.matvec(&y);
        let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        for (i, zv) in v.into_iter().enumerate() {
            vecs[(i, k)] = zv / norm;
        }
    }
    ws.recycle(dec.t);
    ws.recycle(dec.z);
    Ok(EigDecomposition { values, vectors: vecs })
}

/// Eigenvalues only (skips eigenvector recovery).
pub fn eigenvalues(a: &ZMat) -> Result<Vec<Complex64>> {
    let ws = Workspace::new();
    let dec = schur_ws(a, &ws)?;
    Ok((0..a.rows()).map(|i| dec.t[(i, i)]).collect())
}

/// Solves the generalized problem `A·x = λ·B·x` by reduction to the
/// standard problem `B⁻¹A·x = λ·x` (LAPACK `zggev` replacement; valid for
/// invertible `B`, which holds for the FEAST reduced matrices and the
/// companion pencils with invertible leading coupling block).
pub fn eig_generalized(a: &ZMat, b: &ZMat) -> Result<EigDecomposition> {
    eig_generalized_ws(a, b, &Workspace::new())
}

/// [`eig_generalized`] with the `B` factorization, the reduced matrix and
/// the eigensolver scratch all borrowed from `ws`.
pub fn eig_generalized_ws(a: &ZMat, b: &ZMat, ws: &Workspace) -> Result<EigDecomposition> {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    let f = match lu_factor_ws(b, ws) {
        Ok(f) => f,
        Err(_) => {
            // Regularize a numerically singular B: shift by ε·‖B‖ and warn
            // through the error path if that also fails.
            let eps = 1e-12 * b.norm_max().max(1.0);
            let mut b_reg = ws.copy_of(b);
            for i in 0..b.rows() {
                b_reg[(i, i)] += c64(eps, eps);
            }
            lu_factor_owned_ws(b_reg, true, ws)?
        }
    };
    let mut c = ws.take_scratch(a.rows(), a.cols());
    f.solve_into(a.view(), &mut c);
    f.recycle_into(ws);
    let result = eig_ws(&c, ws);
    ws.recycle(c);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Op};

    fn residual(a: &ZMat, e: &EigDecomposition) -> f64 {
        let n = a.rows();
        let mut worst: f64 = 0.0;
        for k in 0..n {
            let v: Vec<Complex64> = (0..n).map(|i| e.vectors[(i, k)]).collect();
            let av = a.matvec(&v);
            let lv: Vec<Complex64> = v.iter().map(|&z| z * e.values[k]).collect();
            let r = av.iter().zip(&lv).map(|(x, y)| (*x - *y).norm_sqr()).sum::<f64>().sqrt();
            worst = worst.max(r);
        }
        worst
    }

    fn check_hessenberg_invariants(a: &ZMat, h: &ZMat, q: &ZMat, tol: f64) {
        let n = a.rows();
        // Q unitary.
        let mut qhq = ZMat::zeros(n, n);
        gemm(Complex64::ONE, q, Op::Adjoint, q, Op::None, Complex64::ZERO, &mut qhq);
        assert!(qhq.max_diff(&ZMat::identity(n)) < tol, "QᴴQ ≠ I");
        // Q H Qᴴ = A.
        let qh = q * h;
        let mut back = ZMat::zeros(n, n);
        gemm(Complex64::ONE, &qh, Op::None, q, Op::Adjoint, Complex64::ZERO, &mut back);
        assert!(back.max_diff(a) < tol, "QHQᴴ ≠ A: {:.2e}", back.max_diff(a));
        // Zero below the first subdiagonal.
        for j in 0..n {
            for i in j + 2..n {
                assert!(h[(i, j)].abs() < tol, "h[{i},{j}] = {}", h[(i, j)]);
            }
        }
    }

    #[test]
    fn hessenberg_is_similarity() {
        let a = ZMat::random(9, 9, 1);
        let (h, q) = hessenberg(&a);
        check_hessenberg_invariants(&a, &h, &q, 1e-10);
    }

    #[test]
    fn blocked_hessenberg_is_similarity() {
        // Above the crossover with a non-multiple-of-NB tail.
        for n in [120usize, 150] {
            let a = ZMat::random(n, n, 40 + n as u64);
            let (h, q) = hessenberg(&a);
            check_hessenberg_invariants(&a, &h, &q, 1e-8 * n as f64);
        }
    }

    #[test]
    fn blocked_hessenberg_matches_unblocked() {
        // The panels replay the scalar algorithm exactly, so the reduced
        // matrices agree entrywise up to roundoff reordering.
        let n = 140;
        let a = ZMat::random(n, n, 77);
        let (hb, qb) = hessenberg(&a);
        let (hu, qu) = hessenberg_unblocked(&a);
        let scale = a.norm_max().max(1.0) * n as f64;
        assert!(hb.max_diff(&hu) < 1e-10 * scale, "H drift {:.2e}", hb.max_diff(&hu));
        assert!(qb.max_diff(&qu) < 1e-10 * scale, "Q drift {:.2e}", qb.max_diff(&qu));
    }

    #[test]
    fn hessenberg_ws_recycled_pool_is_bit_identical() {
        let ws = Workspace::new();
        let a = ZMat::random(130, 130, 99);
        let (h_fresh, q_fresh) = hessenberg(&a);
        // Dirty the pool with a different-size reduction first.
        let (hd, qd) = hessenberg_ws(&ZMat::random(110, 110, 98), &ws);
        ws.recycle(hd);
        ws.recycle(qd);
        let (h, q) = hessenberg_ws(&a, &ws);
        assert!(h.max_diff(&h_fresh) == 0.0, "recycled pool changed H bits");
        assert!(q.max_diff(&q_fresh) == 0.0, "recycled pool changed Q bits");
    }

    #[test]
    fn schur_decomposes_random_matrix() {
        let a = ZMat::random(12, 12, 2);
        let d = schur(&a).unwrap();
        // T upper triangular.
        for j in 0..12 {
            for i in j + 1..12 {
                assert!(d.t[(i, j)].abs() < 1e-9, "t[{i},{j}] = {}", d.t[(i, j)]);
            }
        }
        // Z unitary, Z T Zᴴ = A.
        let zt = &d.z * &d.t;
        let mut back = ZMat::zeros(12, 12);
        gemm(Complex64::ONE, &zt, Op::None, &d.z, Op::Adjoint, Complex64::ZERO, &mut back);
        assert!(back.max_diff(&a) < 1e-8);
    }

    #[test]
    fn schur_on_blocked_hessenberg_path() {
        let n = 110;
        let a = ZMat::random(n, n, 3);
        let d = schur(&a).unwrap();
        let zt = &d.z * &d.t;
        let mut back = ZMat::zeros(n, n);
        gemm(Complex64::ONE, &zt, Op::None, &d.z, Op::Adjoint, Complex64::ZERO, &mut back);
        assert!(back.max_diff(&a) < 1e-7 * n as f64, "{:.2e}", back.max_diff(&a));
    }

    #[test]
    fn eig_of_diagonal_matrix() {
        let diag = [c64(1.0, 0.0), c64(-2.0, 0.5), c64(3.0, -1.0)];
        let a = ZMat::from_diag(&diag);
        let e = eig(&a).unwrap();
        let mut got: Vec<f64> = e.values.iter().map(|z| z.re).collect();
        got.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((got[0] + 2.0).abs() < 1e-10);
        assert!((got[1] - 1.0).abs() < 1e-10);
        assert!((got[2] - 3.0).abs() < 1e-10);
        assert!(residual(&a, &e) < 1e-9);
    }

    #[test]
    fn eig_known_2x2() {
        // [[0, 1], [-1, 0]] has eigenvalues ±i.
        let a = ZMat::from_rows(2, 2, &[(0.0, 0.0), (1.0, 0.0), (-1.0, 0.0), (0.0, 0.0)]);
        let e = eig(&a).unwrap();
        let mut ims: Vec<f64> = e.values.iter().map(|z| z.im).collect();
        ims.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((ims[0] + 1.0).abs() < 1e-12);
        assert!((ims[1] - 1.0).abs() < 1e-12);
        assert!(residual(&a, &e) < 1e-10);
    }

    #[test]
    fn eig_residual_random() {
        for seed in [3u64, 4, 5] {
            let a = ZMat::random(15, 15, seed);
            let e = eig(&a).unwrap();
            assert!(residual(&a, &e) < 1e-7, "seed {seed}: residual {}", residual(&a, &e));
        }
    }

    #[test]
    fn eig_ws_matches_fresh() {
        let ws = Workspace::new();
        let a = ZMat::random(20, 20, 55);
        let fresh = eig(&a).unwrap();
        // Warm the pool on a decoy, then solve through the dirty pool.
        let decoy = eig_ws(&ZMat::random(24, 24, 56), &ws).unwrap();
        ws.recycle(decoy.vectors);
        let pooled = eig_ws(&a, &ws).unwrap();
        for (x, y) in fresh.values.iter().zip(&pooled.values) {
            assert!(*x == *y, "recycled pool changed eigenvalue bits");
        }
        assert!(pooled.vectors.max_diff(&fresh.vectors) == 0.0);
        ws.recycle(pooled.vectors);
    }

    #[test]
    fn hermitian_matrix_has_real_eigenvalues() {
        let mut a = ZMat::random(10, 10, 6);
        a.hermitianize();
        let e = eig(&a).unwrap();
        for v in &e.values {
            assert!(v.im.abs() < 1e-8, "eigenvalue {v} not real");
        }
        assert!(residual(&a, &e) < 1e-8);
    }

    #[test]
    fn companion_matrix_roots() {
        // x³ − 6x² + 11x − 6 = (x−1)(x−2)(x−3); companion eigenvalues 1,2,3.
        let a = ZMat::from_rows(
            3,
            3,
            &[
                (6.0, 0.0),
                (-11.0, 0.0),
                (6.0, 0.0),
                (1.0, 0.0),
                (0.0, 0.0),
                (0.0, 0.0),
                (0.0, 0.0),
                (1.0, 0.0),
                (0.0, 0.0),
            ],
        );
        let e = eig(&a).unwrap();
        let mut roots: Vec<f64> = e.values.iter().map(|z| z.re).collect();
        roots.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((roots[0] - 1.0).abs() < 1e-8);
        assert!((roots[1] - 2.0).abs() < 1e-8);
        assert!((roots[2] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn generalized_reduces_to_standard_for_identity_b() {
        let a = ZMat::random(8, 8, 7);
        let b = ZMat::identity(8);
        let eg = eig_generalized(&a, &b).unwrap();
        let es = eig(&a).unwrap();
        let mut g: Vec<f64> = eg.values.iter().map(|z| z.abs()).collect();
        let mut s: Vec<f64> = es.values.iter().map(|z| z.abs()).collect();
        g.sort_by(|x, y| x.partial_cmp(y).unwrap());
        s.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (x, y) in g.iter().zip(&s) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn generalized_pencil_residual() {
        let a = ZMat::random(9, 9, 8);
        let mut b = ZMat::random(9, 9, 9);
        for i in 0..9 {
            b[(i, i)] += c64(9.0, 0.0); // keep B invertible
        }
        let e = eig_generalized(&a, &b).unwrap();
        for k in 0..9 {
            let v: Vec<Complex64> = (0..9).map(|i| e.vectors[(i, k)]).collect();
            let av = a.matvec(&v);
            let bv = b.matvec(&v);
            let r = av
                .iter()
                .zip(&bv)
                .map(|(x, y)| (*x - *y * e.values[k]).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(r < 1e-7, "pencil residual {r} for eigenvalue {}", e.values[k]);
        }
    }

    #[test]
    fn repeated_eigenvalues_converge() {
        // Jordan-like structure stresses deflation: diag(2,2,2) + nilpotent.
        let mut a = ZMat::from_diag(&[c64(2.0, 0.0); 3]);
        a[(0, 1)] = c64(1.0, 0.0);
        a[(1, 2)] = c64(1.0, 0.0);
        let vals = eigenvalues(&a).unwrap();
        for v in vals {
            assert!((v - c64(2.0, 0.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn size_one_and_empty() {
        let a = ZMat::from_diag(&[c64(5.0, 1.0)]);
        let e = eig(&a).unwrap();
        assert_eq!(e.values.len(), 1);
        assert!((e.values[0] - c64(5.0, 1.0)).abs() < 1e-14);
    }
}
