//! Dense complex eigensolvers (`zgeev`/`zggev`-lite).
//!
//! The shift-and-invert OBC baseline and FEAST's Rayleigh–Ritz step both
//! end in a dense non-Hermitian eigenvalue problem (§3.A, Eq. 7). LAPACK's
//! `zggev` is unavailable here, so this module implements the classic
//! pipeline from scratch:
//!
//! 1. Householder reduction to upper Hessenberg form,
//! 2. explicitly shifted QR iteration with Givens rotations and Wilkinson
//!    shifts to the (complex) Schur form `A = Z·T·Zᴴ`,
//! 3. eigenvector recovery by triangular back-substitution,
//! 4. generalized problems `A·x = λ·B·x` by a `B⁻¹A` reduction (the FEAST
//!    reduced matrices `QᴴBQ` are well conditioned by construction).

use crate::complex::{c64, Complex64};
use crate::flops::flops_add;
use crate::lu::lu_factor;
use crate::zmat::ZMat;
use crate::{LinalgError, Result};

/// A complex Schur decomposition `A = Z·T·Zᴴ` with unitary `Z` and upper
/// triangular `T`.
#[derive(Debug, Clone)]
pub struct SchurDecomposition {
    /// Upper triangular factor; eigenvalues on the diagonal.
    pub t: ZMat,
    /// Unitary Schur vectors.
    pub z: ZMat,
}

/// Eigenvalues and right eigenvectors of a dense complex matrix.
#[derive(Debug, Clone)]
pub struct EigDecomposition {
    /// Eigenvalues (unsorted).
    pub values: Vec<Complex64>,
    /// Right eigenvectors, column `k` pairs with `values[k]`, unit 2-norm.
    pub vectors: ZMat,
}

/// Reduces `a` to upper Hessenberg form `H = Qᴴ·A·Q`, returning `(H, Q)`.
pub fn hessenberg(a: &ZMat) -> (ZMat, ZMat) {
    let n = a.rows();
    assert!(a.is_square());
    let mut h = a.clone();
    let mut q = ZMat::identity(n);
    flops_add(10 * (n as u64).pow(3) / 3);
    for k in 0..n.saturating_sub(2) {
        // Reflector zeroing column k below the subdiagonal.
        let alpha = h[(k + 1, k)];
        let mut xnorm_sq = 0.0;
        for i in k + 2..n {
            xnorm_sq += h[(i, k)].norm_sqr();
        }
        if xnorm_sq == 0.0 && alpha.im == 0.0 {
            continue;
        }
        let beta_mag = (alpha.norm_sqr() + xnorm_sq).sqrt();
        let beta = if alpha.re >= 0.0 { -beta_mag } else { beta_mag };
        let tau = c64((beta - alpha.re) / beta, -alpha.im / beta);
        let scale = (alpha - c64(beta, 0.0)).inv();
        let mut v = vec![Complex64::ONE; n - k - 1];
        for i in k + 2..n {
            v[i - k - 1] = h[(i, k)] * scale;
        }
        h[(k + 1, k)] = c64(beta, 0.0);
        for i in k + 2..n {
            h[(i, k)] = Complex64::ZERO;
        }
        // H ← Hᴴ_refl · H = (I − τ̄ v vᴴ) H  on rows k+1.., columns k+1..
        for j in k + 1..n {
            let mut w = Complex64::ZERO;
            for i in k + 1..n {
                w += v[i - k - 1].conj() * h[(i, j)];
            }
            let f = tau.conj() * w;
            for i in k + 1..n {
                let vi = v[i - k - 1];
                h[(i, j)] -= vi * f;
            }
        }
        // H ← H · H_refl = H (I − τ v vᴴ)  on columns k+1.., all rows.
        for i in 0..n {
            let mut w = Complex64::ZERO;
            for j in k + 1..n {
                w += h[(i, j)] * v[j - k - 1];
            }
            let f = w * tau;
            for j in k + 1..n {
                let vj = v[j - k - 1];
                h[(i, j)] -= f * vj.conj();
            }
        }
        // Accumulate Q ← Q · H_refl.
        for i in 0..n {
            let mut w = Complex64::ZERO;
            for j in k + 1..n {
                w += q[(i, j)] * v[j - k - 1];
            }
            let f = w * tau;
            for j in k + 1..n {
                let vj = v[j - k - 1];
                q[(i, j)] -= f * vj.conj();
            }
        }
    }
    (h, q)
}

/// A complex Givens rotation `[[c, s], [-s̄, c]]` with real `c ≥ 0`.
#[derive(Clone, Copy)]
struct Givens {
    c: f64,
    s: Complex64,
}

impl Givens {
    /// Computes the rotation that maps `(f, g)` to `(r, 0)`.
    fn compute(f: Complex64, g: Complex64) -> (Givens, Complex64) {
        if g == Complex64::ZERO {
            return (Givens { c: 1.0, s: Complex64::ZERO }, f);
        }
        if f == Complex64::ZERO {
            return (Givens { c: 0.0, s: Complex64::ONE }, g);
        }
        let fa = f.abs();
        let d = (f.norm_sqr() + g.norm_sqr()).sqrt();
        let c = fa / d;
        let s = (f / fa) * g.conj() / d;
        let r = (f / fa) * d;
        (Givens { c, s }, r)
    }

    /// Applies the rotation to the row pair `(x, y)` element-wise.
    #[inline(always)]
    fn rotate(&self, x: Complex64, y: Complex64) -> (Complex64, Complex64) {
        (x.scale(self.c) + self.s * y, y.scale(self.c) - self.s.conj() * x)
    }
}

/// Computes the complex Schur decomposition of `a`.
pub fn schur(a: &ZMat) -> Result<SchurDecomposition> {
    let n = a.rows();
    assert!(a.is_square());
    let (mut t, mut z) = hessenberg(a);
    if n <= 1 {
        return Ok(SchurDecomposition { t, z });
    }
    flops_add(25 * (n as u64).pow(3));
    let scale = t.norm_max().max(1e-300);
    let small = f64::EPSILON * scale;
    let max_total_iters = 60 * n;
    let mut hi = n - 1;
    let mut iters_here = 0usize;
    let mut total_iters = 0usize;
    while hi > 0 {
        if total_iters > max_total_iters {
            return Err(LinalgError::NoConvergence { remaining: hi + 1 });
        }
        // Deflation scan: find the start `lo` of the active block.
        let mut lo = hi;
        while lo > 0 {
            let sub = t[(lo, lo - 1)].abs();
            let local = t[(lo - 1, lo - 1)].abs() + t[(lo, lo)].abs();
            if sub <= f64::EPSILON * local.max(small) {
                t[(lo, lo - 1)] = Complex64::ZERO;
                break;
            }
            lo -= 1;
        }
        if lo == hi {
            // Eigenvalue at `hi` has converged.
            hi -= 1;
            iters_here = 0;
            continue;
        }
        iters_here += 1;
        total_iters += 1;
        // Wilkinson shift from the trailing 2×2 of the active block, with
        // an exceptional shift every 10 stalled iterations.
        let mu = if iters_here.is_multiple_of(10) {
            t[(hi, hi)] + c64(1.5 * t[(hi, hi - 1)].abs(), 0.5 * t[(hi, hi - 1)].abs())
        } else {
            let a11 = t[(hi - 1, hi - 1)];
            let a12 = t[(hi - 1, hi)];
            let a21 = t[(hi, hi - 1)];
            let a22 = t[(hi, hi)];
            let tr_half = (a11 + a22).scale(0.5);
            let disc = ((a11 - a22).scale(0.5).powi(2) + a12 * a21).sqrt();
            let l1 = tr_half + disc;
            let l2 = tr_half - disc;
            if (l1 - a22).abs() <= (l2 - a22).abs() {
                l1
            } else {
                l2
            }
        };
        // Explicit shifted QR sweep on the block [lo, hi].
        for k in lo..=hi {
            t[(k, k)] -= mu;
        }
        let mut rotations = Vec::with_capacity(hi - lo);
        for k in lo..hi {
            let (g, r) = Givens::compute(t[(k, k)], t[(k + 1, k)]);
            t[(k, k)] = r;
            t[(k + 1, k)] = Complex64::ZERO;
            for j in k + 1..n {
                let (x, y) = g.rotate(t[(k, j)], t[(k + 1, j)]);
                t[(k, j)] = x;
                t[(k + 1, j)] = y;
            }
            rotations.push(g);
        }
        // Right-multiply by the adjoint rotations: T ← T·Gᴴ, Z ← Z·Gᴴ.
        for (idx, g) in rotations.iter().enumerate() {
            let k = lo + idx;
            let row_end = (k + 2).min(hi + 1);
            for i in 0..row_end {
                let x = t[(i, k)];
                let y = t[(i, k + 1)];
                t[(i, k)] = x.scale(g.c) + y * g.s.conj();
                t[(i, k + 1)] = y.scale(g.c) - x * g.s;
            }
            for i in 0..n {
                let x = z[(i, k)];
                let y = z[(i, k + 1)];
                z[(i, k)] = x.scale(g.c) + y * g.s.conj();
                z[(i, k + 1)] = y.scale(g.c) - x * g.s;
            }
        }
        for k in lo..=hi {
            t[(k, k)] += mu;
        }
    }
    // Clean any numerically negligible subdiagonals.
    for k in 1..n {
        t[(k, k - 1)] = Complex64::ZERO;
    }
    Ok(SchurDecomposition { t, z })
}

/// Computes eigenvalues and right eigenvectors of a dense complex matrix.
pub fn eig(a: &ZMat) -> Result<EigDecomposition> {
    let n = a.rows();
    let dec = schur(a)?;
    let t = &dec.t;
    let values: Vec<Complex64> = (0..n).map(|i| t[(i, i)]).collect();
    // Back-substitute for eigenvectors in the Schur basis, then rotate.
    let mut vecs = ZMat::zeros(n, n);
    let scale = t.norm_max().max(1.0);
    let smlnum = (f64::EPSILON * scale).max(1e-280);
    for k in 0..n {
        let lambda = values[k];
        let mut y = vec![Complex64::ZERO; n];
        y[k] = Complex64::ONE;
        for i in (0..k).rev() {
            // (T(i,i) − λ)·y_i = −Σ_{j>i} T(i,j)·y_j
            let mut rhs = Complex64::ZERO;
            for j in i + 1..=k {
                rhs += t[(i, j)] * y[j];
            }
            let mut denom = t[(i, i)] - lambda;
            if denom.abs() < smlnum {
                denom = c64(smlnum, smlnum);
            }
            y[i] = -rhs / denom;
        }
        // v = Z·y, normalized.
        let v = dec.z.matvec(&y);
        let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        for (i, zv) in v.into_iter().enumerate() {
            vecs[(i, k)] = zv / norm;
        }
    }
    Ok(EigDecomposition { values, vectors: vecs })
}

/// Eigenvalues only (skips eigenvector recovery).
pub fn eigenvalues(a: &ZMat) -> Result<Vec<Complex64>> {
    let dec = schur(a)?;
    Ok((0..a.rows()).map(|i| dec.t[(i, i)]).collect())
}

/// Solves the generalized problem `A·x = λ·B·x` by reduction to the
/// standard problem `B⁻¹A·x = λ·x` (LAPACK `zggev` replacement; valid for
/// invertible `B`, which holds for the FEAST reduced matrices and the
/// companion pencils with invertible leading coupling block).
pub fn eig_generalized(a: &ZMat, b: &ZMat) -> Result<EigDecomposition> {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    let c = match lu_factor(b) {
        Ok(f) => f.solve(a),
        Err(_) => {
            // Regularize a numerically singular B: shift by ε·‖B‖ and warn
            // through the error path if that also fails.
            let eps = 1e-12 * b.norm_max().max(1.0);
            let mut b_reg = b.clone();
            for i in 0..b.rows() {
                b_reg[(i, i)] += c64(eps, eps);
            }
            lu_factor(&b_reg)?.solve(a)
        }
    };
    eig(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Op};

    fn residual(a: &ZMat, e: &EigDecomposition) -> f64 {
        let n = a.rows();
        let mut worst: f64 = 0.0;
        for k in 0..n {
            let v: Vec<Complex64> = (0..n).map(|i| e.vectors[(i, k)]).collect();
            let av = a.matvec(&v);
            let lv: Vec<Complex64> = v.iter().map(|&z| z * e.values[k]).collect();
            let r = av.iter().zip(&lv).map(|(x, y)| (*x - *y).norm_sqr()).sum::<f64>().sqrt();
            worst = worst.max(r);
        }
        worst
    }

    #[test]
    fn hessenberg_is_similarity() {
        let a = ZMat::random(9, 9, 1);
        let (h, q) = hessenberg(&a);
        // Q unitary.
        let mut qhq = ZMat::zeros(9, 9);
        gemm(Complex64::ONE, &q, Op::Adjoint, &q, Op::None, Complex64::ZERO, &mut qhq);
        assert!(qhq.max_diff(&ZMat::identity(9)) < 1e-11);
        // Q H Qᴴ = A.
        let qh = &q * &h;
        let mut back = ZMat::zeros(9, 9);
        gemm(Complex64::ONE, &qh, Op::None, &q, Op::Adjoint, Complex64::ZERO, &mut back);
        assert!(back.max_diff(&a) < 1e-10);
        // Zero below the first subdiagonal.
        for j in 0..9 {
            for i in j + 2..9 {
                assert!(h[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn schur_decomposes_random_matrix() {
        let a = ZMat::random(12, 12, 2);
        let d = schur(&a).unwrap();
        // T upper triangular.
        for j in 0..12 {
            for i in j + 1..12 {
                assert!(d.t[(i, j)].abs() < 1e-9, "t[{i},{j}] = {}", d.t[(i, j)]);
            }
        }
        // Z unitary, Z T Zᴴ = A.
        let zt = &d.z * &d.t;
        let mut back = ZMat::zeros(12, 12);
        gemm(Complex64::ONE, &zt, Op::None, &d.z, Op::Adjoint, Complex64::ZERO, &mut back);
        assert!(back.max_diff(&a) < 1e-8);
    }

    #[test]
    fn eig_of_diagonal_matrix() {
        let diag = [c64(1.0, 0.0), c64(-2.0, 0.5), c64(3.0, -1.0)];
        let a = ZMat::from_diag(&diag);
        let e = eig(&a).unwrap();
        let mut got: Vec<f64> = e.values.iter().map(|z| z.re).collect();
        got.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((got[0] + 2.0).abs() < 1e-10);
        assert!((got[1] - 1.0).abs() < 1e-10);
        assert!((got[2] - 3.0).abs() < 1e-10);
        assert!(residual(&a, &e) < 1e-9);
    }

    #[test]
    fn eig_known_2x2() {
        // [[0, 1], [-1, 0]] has eigenvalues ±i.
        let a = ZMat::from_rows(2, 2, &[(0.0, 0.0), (1.0, 0.0), (-1.0, 0.0), (0.0, 0.0)]);
        let e = eig(&a).unwrap();
        let mut ims: Vec<f64> = e.values.iter().map(|z| z.im).collect();
        ims.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((ims[0] + 1.0).abs() < 1e-12);
        assert!((ims[1] - 1.0).abs() < 1e-12);
        assert!(residual(&a, &e) < 1e-10);
    }

    #[test]
    fn eig_residual_random() {
        for seed in [3u64, 4, 5] {
            let a = ZMat::random(15, 15, seed);
            let e = eig(&a).unwrap();
            assert!(residual(&a, &e) < 1e-7, "seed {seed}: residual {}", residual(&a, &e));
        }
    }

    #[test]
    fn hermitian_matrix_has_real_eigenvalues() {
        let mut a = ZMat::random(10, 10, 6);
        a.hermitianize();
        let e = eig(&a).unwrap();
        for v in &e.values {
            assert!(v.im.abs() < 1e-8, "eigenvalue {v} not real");
        }
        assert!(residual(&a, &e) < 1e-8);
    }

    #[test]
    fn companion_matrix_roots() {
        // x³ − 6x² + 11x − 6 = (x−1)(x−2)(x−3); companion eigenvalues 1,2,3.
        let a = ZMat::from_rows(
            3,
            3,
            &[
                (6.0, 0.0),
                (-11.0, 0.0),
                (6.0, 0.0),
                (1.0, 0.0),
                (0.0, 0.0),
                (0.0, 0.0),
                (0.0, 0.0),
                (1.0, 0.0),
                (0.0, 0.0),
            ],
        );
        let e = eig(&a).unwrap();
        let mut roots: Vec<f64> = e.values.iter().map(|z| z.re).collect();
        roots.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((roots[0] - 1.0).abs() < 1e-8);
        assert!((roots[1] - 2.0).abs() < 1e-8);
        assert!((roots[2] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn generalized_reduces_to_standard_for_identity_b() {
        let a = ZMat::random(8, 8, 7);
        let b = ZMat::identity(8);
        let eg = eig_generalized(&a, &b).unwrap();
        let es = eig(&a).unwrap();
        let mut g: Vec<f64> = eg.values.iter().map(|z| z.abs()).collect();
        let mut s: Vec<f64> = es.values.iter().map(|z| z.abs()).collect();
        g.sort_by(|x, y| x.partial_cmp(y).unwrap());
        s.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (x, y) in g.iter().zip(&s) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn generalized_pencil_residual() {
        let a = ZMat::random(9, 9, 8);
        let mut b = ZMat::random(9, 9, 9);
        for i in 0..9 {
            b[(i, i)] += c64(9.0, 0.0); // keep B invertible
        }
        let e = eig_generalized(&a, &b).unwrap();
        for k in 0..9 {
            let v: Vec<Complex64> = (0..9).map(|i| e.vectors[(i, k)]).collect();
            let av = a.matvec(&v);
            let bv = b.matvec(&v);
            let r = av
                .iter()
                .zip(&bv)
                .map(|(x, y)| (*x - *y * e.values[k]).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(r < 1e-7, "pencil residual {r} for eigenvalue {}", e.values[k]);
        }
    }

    #[test]
    fn repeated_eigenvalues_converge() {
        // Jordan-like structure stresses deflation: diag(2,2,2) + nilpotent.
        let mut a = ZMat::from_diag(&[c64(2.0, 0.0); 3]);
        a[(0, 1)] = c64(1.0, 0.0);
        a[(1, 2)] = c64(1.0, 0.0);
        let vals = eigenvalues(&a).unwrap();
        for v in vals {
            assert!((v - c64(2.0, 0.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn size_one_and_empty() {
        let a = ZMat::from_diag(&[c64(5.0, 1.0)]);
        let e = eig(&a).unwrap();
        assert_eq!(e.values.len(), 1);
        assert!((e.values[0] - c64(5.0, 1.0)).abs() < 1e-14);
    }
}
