//! Double-precision complex arithmetic.
//!
//! A self-contained replacement for `num_complex::Complex64`, kept minimal
//! on purpose: the transport kernels only need field arithmetic, conjugation,
//! polar helpers and a handful of transcendentals.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor, mirroring `num_complex`'s free function.
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// Additive identity.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// Multiplicative identity.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Builds a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Builds a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Complex conjugate `re − i·im`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²` (avoids the `sqrt` of [`Self::abs`]).
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude, computed with `hypot` for overflow safety.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(−π, π]`.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse with Smith's scaling to avoid overflow.
    #[inline]
    pub fn inv(self) -> Self {
        if self.re.abs() >= self.im.abs() {
            let r = self.im / self.re;
            let d = self.re + self.im * r;
            c64(1.0 / d, -r / d)
        } else {
            let r = self.re / self.im;
            let d = self.re * r + self.im;
            c64(r / d, -1.0 / d)
        }
    }

    /// Complex square root (principal branch).
    #[inline]
    pub fn sqrt(self) -> Self {
        let m = self.abs();
        let re = ((m + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((m - self.re) * 0.5).max(0.0).sqrt();
        c64(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// Complex exponential `e^{re}·(cos im + i sin im)`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        c64(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        c64(self.abs().ln(), self.arg())
    }

    /// Unit complex number `e^{iθ}` on the unit circle.
    #[inline]
    pub fn from_phase(theta: f64) -> Self {
        c64(theta.cos(), theta.sin())
    }

    /// Polar constructor `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// Fused multiply-accumulate `self + a·b`, the hot path of every kernel.
    #[inline(always)]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        c64(self.re + a.re * b.re - a.im * b.im, self.im + a.re * b.im + a.im * b.re)
    }

    /// `self·s` for a real scalar, cheaper than promoting `s`.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }

    /// Conjugated dot product `Σ conj(a_i)·b_i` over equal-length slices,
    /// accumulated in four independent lanes so the per-element complex
    /// multiply-adds pipeline instead of serializing on one accumulator's
    /// FMA latency — the hot primitive of the Householder panel kernels.
    pub fn dot_conj(a: &[Complex64], b: &[Complex64]) -> Complex64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = [Complex64::ZERO; 4];
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        for (qa, qb) in (&mut ca).zip(&mut cb) {
            acc[0] = acc[0].mul_add(qa[0].conj(), qb[0]);
            acc[1] = acc[1].mul_add(qa[1].conj(), qb[1]);
            acc[2] = acc[2].mul_add(qa[2].conj(), qb[2]);
            acc[3] = acc[3].mul_add(qa[3].conj(), qb[3]);
        }
        for (ra, rb) in ca.remainder().iter().zip(cb.remainder()) {
            acc[0] = acc[0].mul_add(ra.conj(), *rb);
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Raises to an integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Self::ONE;
        }
        let mut base = if n < 0 { self.inv() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Self::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        c64(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via the inverse
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: f64) -> Self {
        c64(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: f64) -> Self {
        c64(self.re - rhs, self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Complex64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn field_axioms_on_samples() {
        let a = c64(1.5, -2.25);
        let b = c64(-0.5, 3.0);
        let c = c64(0.75, 0.125);
        assert!(close((a + b) + c, a + (b + c), 1e-14));
        assert!(close(a * (b + c), a * b + a * c, 1e-12));
        assert!(close(a * b, b * a, 1e-14));
    }

    #[test]
    fn inverse_and_division() {
        let a = c64(3.0, -4.0);
        assert!(close(a * a.inv(), Complex64::ONE, 1e-14));
        assert!(close(a / a, Complex64::ONE, 1e-14));
        // Smith's algorithm handles extreme components without overflow.
        let big = c64(1e300, 1e-300);
        assert!(big.inv().is_finite());
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[c64(2.0, 3.0), c64(-1.0, 0.5), c64(0.0, -4.0), c64(-9.0, 0.0)] {
            let r = z.sqrt();
            assert!(close(r * r, z, 1e-12), "sqrt({z}) = {r}");
            assert!(r.re >= 0.0, "principal branch");
        }
    }

    #[test]
    fn exp_ln_roundtrip() {
        let z = c64(0.3, -1.2);
        assert!(close(z.exp().ln(), z, 1e-12));
        // Euler identity.
        assert!(close(c64(0.0, std::f64::consts::PI).exp(), c64(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn polar_and_phase() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
        let u = Complex64::from_phase(-2.1);
        assert!((u.abs() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = c64(0.9, 0.4);
        let mut acc = Complex64::ONE;
        for _ in 0..7 {
            acc *= z;
        }
        assert!(close(z.powi(7), acc, 1e-12));
        assert!(close(z.powi(-3) * z.powi(3), Complex64::ONE, 1e-12));
        assert!(close(z.powi(0), Complex64::ONE, 0.0));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let acc = c64(0.1, 0.2);
        let a = c64(1.0, -1.0);
        let b = c64(2.0, 0.5);
        assert!(close(acc.mul_add(a, b), acc + a * b, 1e-14));
    }

    #[test]
    fn conj_properties() {
        let a = c64(1.0, 2.0);
        let b = c64(-0.5, 0.25);
        assert!(close((a * b).conj(), a.conj() * b.conj(), 1e-14));
        assert!((a * a.conj()).im.abs() < 1e-15);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < 1e-15);
    }
}
