//! Deterministic FLOP accounting.
//!
//! The paper measures CPU FLOPs with PAPI and GPU FLOPs with CUPTI device
//! counters (§5.B), noting that SplitSolve's operation count is
//! deterministic. We reproduce that methodology in software: every kernel
//! in this crate reports its double-precision operation count to a global
//! relaxed atomic counter, and scoped counters ([`FlopScope`]) measure
//! individual phases (e.g. "OBC on CPUs" vs "Eq. 5 on GPUs") exactly the
//! way `PAPI_start_counters`/`PAPI_stop_counters` bracket the production
//! run.

use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Adds `n` double-precision operations to the global counter.
#[inline]
pub fn flops_add(n: u64) {
    GLOBAL_FLOPS.fetch_add(n, Ordering::Relaxed);
}

/// Total double-precision operations counted since start/reset.
#[inline]
pub fn flops_total() -> u64 {
    GLOBAL_FLOPS.load(Ordering::Relaxed)
}

/// Resets the global counter (used between benchmark phases).
#[inline]
pub fn flops_reset() {
    GLOBAL_FLOPS.store(0, Ordering::Relaxed);
}

/// A scoped FLOP measurement: records the counter at construction and
/// reports the delta on [`FlopScope::elapsed`]. Mirrors the PAPI
/// start/stop bracketing of §5.B.
pub struct FlopScope {
    start: u64,
}

impl FlopScope {
    /// Starts a measurement scope.
    pub fn start() -> Self {
        FlopScope { start: flops_total() }
    }

    /// Operations executed since the scope started.
    pub fn elapsed(&self) -> u64 {
        flops_total().saturating_sub(self.start)
    }
}

/// Standard operation-count formulas (real FLOPs, complex arithmetic
/// counted as 8 real ops per multiply-add pair, 2 per add).
pub mod counts {
    /// `C ← A·B` for complex matrices: 8·m·n·k real operations.
    #[inline]
    pub fn zgemm(m: usize, n: usize, k: usize) -> u64 {
        8 * (m as u64) * (n as u64) * (k as u64)
    }

    /// Complex LU factorization of an n×n matrix: (8/3)·n³.
    #[inline]
    pub fn zgetrf(n: usize) -> u64 {
        (8 * (n as u64).pow(3)) / 3
    }

    /// Complex triangular solve with `nrhs` right-hand sides: 8·n²·nrhs.
    #[inline]
    pub fn zgetrs(n: usize, nrhs: usize) -> u64 {
        8 * (n as u64).pow(2) * nrhs as u64
    }

    /// One complex triangular solve (`ztrsm`) against an n×n triangle with
    /// `nrhs` right-hand sides: half of [`zgetrs`] (one sweep, not two).
    #[inline]
    pub fn ztrsm(n: usize, nrhs: usize) -> u64 {
        4 * (n as u64).pow(2) * nrhs as u64
    }

    /// Hermitian rank-k update `C ← α·A·Aᴴ + β·C` for an n×n output:
    /// half of [`zgemm`]`(n, n, k)` — only one triangle is computed.
    #[inline]
    pub fn zherk(n: usize, k: usize) -> u64 {
        4 * (n as u64).pow(2) * k as u64
    }

    /// Hermitian LDLᴴ factorization: half the LU cost, (4/3)·n³.
    #[inline]
    pub fn zhetrf(n: usize) -> u64 {
        (4 * (n as u64).pow(3)) / 3
    }

    /// Householder QR of an m×n matrix: 8·(m·n² − n³/3) complex-op-equivalent.
    #[inline]
    pub fn zgeqrf(m: usize, n: usize) -> u64 {
        let (m, n) = (m as u64, n as u64);
        8 * (m * n * n - n * n * n / 3).max(1)
    }

    /// Applying `Q` (or `Qᴴ`) built from `k` Householder reflectors of
    /// length m to an m×n matrix from the left (`zunmqr`): each reflector
    /// touches the full n columns twice (dot + axpy), shrinking by one row
    /// per step — 8·n·k·(2m − k) real operations. The same formula counts
    /// `zungqr`-style explicit-Q assembly (n columns of the identity).
    #[inline]
    pub fn zunmqr(m: usize, n: usize, k: usize) -> u64 {
        let (m, n, k) = (m as u64, n as u64, k as u64);
        (8 * n * k * (2 * m).saturating_sub(k).max(1)).max(1)
    }

    /// Householder reduction of an n×n matrix to upper Hessenberg form
    /// (`zgehrd`): (10/3)·n³ complex multiply-adds (both-side updates plus
    /// the Q accumulation) ≈ (80/3)·n³ real operations.
    #[inline]
    pub fn zgehrd(n: usize) -> u64 {
        80 * (n as u64).pow(3) / 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_measures_delta() {
        let before = flops_total();
        let scope = FlopScope::start();
        flops_add(123);
        // Other tests in the same binary run concurrently and share the
        // global counter: the scope sees *at least* its own additions.
        assert!(scope.elapsed() >= 123);
        assert!(flops_total() >= before + 123);
    }

    #[test]
    fn formulas_are_consistent() {
        assert_eq!(counts::zgemm(2, 3, 4), 8 * 24);
        assert_eq!(counts::zgetrf(3), 72);
        assert_eq!(counts::zgetrs(4, 2), 8 * 16 * 2);
        // Hermitian factorization is half of LU.
        assert_eq!(counts::zhetrf(6), counts::zgetrf(6) / 2);
        // Q-application: 8·n·k·(2m − k).
        assert_eq!(counts::zunmqr(10, 3, 4), 8 * 3 * 4 * 16);
        // Hessenberg: (80/3)·n³; degenerate sizes stay nonzero.
        assert_eq!(counts::zgehrd(3), 720);
        assert!(counts::zunmqr(1, 1, 0) >= 1 && counts::zgeqrf(1, 0) >= 1);
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let scope = FlopScope::start();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| flops_add(1000));
            }
        });
        assert!(scope.elapsed() >= 4000);
    }
}
