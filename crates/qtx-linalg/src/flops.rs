//! Deterministic FLOP accounting.
//!
//! The paper measures CPU FLOPs with PAPI and GPU FLOPs with CUPTI device
//! counters (§5.B), noting that SplitSolve's operation count is
//! deterministic. We reproduce that methodology in software: every kernel
//! in this crate reports its double-precision operation count, and scoped
//! counters ([`FlopScope`]) measure individual phases (e.g. "OBC on CPUs"
//! vs "Eq. 5 on GPUs") exactly the way
//! `PAPI_start_counters`/`PAPI_stop_counters` bracket the production run.
//!
//! # Counter topology
//!
//! Counts accumulate in **two places at once**: a per-thread counter (a
//! plain `Cell`, no synchronization) and the process-wide relaxed atomic
//! total. A [`FlopScope`] started with [`FlopScope::start`] reads the
//! per-thread counter, so its `elapsed()` reports only work executed on
//! the scope's own thread — exactly like PAPI, whose hardware counters
//! are per-core. Concurrent FEAST/Beyn quadrature workers therefore no
//! longer leak their operations into whichever scope happens to be open
//! on another thread. Phases that *fan out* over worker threads (the
//! SplitSolve partition sweeps, a whole-device makespan) opt into the
//! process-wide total with [`FlopScope::start_process`], mirroring how
//! the paper aggregates per-node counters into machine totals.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_FLOPS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Operations reported by this thread since it started. `FlopScope`
    /// deltas against this, so the absolute value never needs resetting.
    static THREAD_FLOPS: Cell<u64> = const { Cell::new(0) };
}

/// Adds `n` double-precision operations to this thread's counter and the
/// process-wide total.
#[inline]
pub fn flops_add(n: u64) {
    THREAD_FLOPS.with(|c| c.set(c.get() + n));
    GLOBAL_FLOPS.fetch_add(n, Ordering::Relaxed);
}

/// Total double-precision operations counted **process-wide** since
/// start/reset (every thread's contributions aggregated).
#[inline]
pub fn flops_total() -> u64 {
    GLOBAL_FLOPS.load(Ordering::Relaxed)
}

/// Operations counted by the **current thread** since it started. Scopes
/// delta against this; it is monotone and never reset.
#[inline]
pub fn flops_thread() -> u64 {
    THREAD_FLOPS.with(|c| c.get())
}

/// Resets the process-wide counter (used between benchmark phases).
/// Per-thread counters are monotone and unaffected — [`FlopScope`] works
/// on deltas, so thread-scoped measurements never need a reset.
#[inline]
pub fn flops_reset() {
    GLOBAL_FLOPS.store(0, Ordering::Relaxed);
}

/// A scoped FLOP measurement: records the counter at construction and
/// reports the delta on [`FlopScope::elapsed`]. Mirrors the PAPI
/// start/stop bracketing of §5.B.
///
/// [`FlopScope::start`] brackets the **current thread only** — work done
/// by concurrently running threads (other quadrature nodes, unrelated
/// phases) is excluded, so per-phase counts stay honest under
/// parallelism. [`FlopScope::start_process`] brackets the process-wide
/// total instead, for phases whose work intentionally fans out over a
/// thread pool.
pub struct FlopScope {
    start: u64,
    process: bool,
}

impl FlopScope {
    /// Starts a thread-scoped measurement: `elapsed()` reports only
    /// operations executed on the calling thread inside the bracket.
    pub fn start() -> Self {
        FlopScope { start: flops_thread(), process: false }
    }

    /// Starts a **process-wide** measurement (explicit opt-in): `elapsed()`
    /// reports operations from every thread, including work the bracketed
    /// phase fans out to rayon workers. Only meaningful when nothing else
    /// runs concurrently — the caller owns that guarantee.
    pub fn start_process() -> Self {
        FlopScope { start: flops_total(), process: true }
    }

    /// Operations executed since the scope started (on this scope's
    /// thread, or process-wide for [`FlopScope::start_process`]).
    pub fn elapsed(&self) -> u64 {
        let now = if self.process { flops_total() } else { flops_thread() };
        now.saturating_sub(self.start)
    }
}

/// Standard operation-count formulas (real FLOPs, complex arithmetic
/// counted as 8 real ops per multiply-add pair, 2 per add).
pub mod counts {
    /// `C ← A·B` for complex matrices: 8·m·n·k real operations.
    #[inline]
    pub fn zgemm(m: usize, n: usize, k: usize) -> u64 {
        8 * (m as u64) * (n as u64) * (k as u64)
    }

    /// Complex LU factorization of an n×n matrix: (8/3)·n³.
    #[inline]
    pub fn zgetrf(n: usize) -> u64 {
        (8 * (n as u64).pow(3)) / 3
    }

    /// Complex triangular solve with `nrhs` right-hand sides: 8·n²·nrhs.
    #[inline]
    pub fn zgetrs(n: usize, nrhs: usize) -> u64 {
        8 * (n as u64).pow(2) * nrhs as u64
    }

    /// One complex triangular solve (`ztrsm`) against an n×n triangle with
    /// `nrhs` right-hand sides: half of [`zgetrs`] (one sweep, not two).
    #[inline]
    pub fn ztrsm(n: usize, nrhs: usize) -> u64 {
        4 * (n as u64).pow(2) * nrhs as u64
    }

    /// Triangular matrix multiply (`ztrmm`) of an n×n triangle against
    /// `nrhs` vectors: same profile as [`ztrsm`] — the triangle holds half
    /// the entries of a square factor, so 4·n²·nrhs.
    #[inline]
    pub fn ztrmm(n: usize, nrhs: usize) -> u64 {
        4 * (n as u64).pow(2) * nrhs as u64
    }

    /// Hermitian rank-k update `C ← α·A·Aᴴ + β·C` for an n×n output:
    /// half of [`zgemm`]`(n, n, k)` — only one triangle is computed.
    #[inline]
    pub fn zherk(n: usize, k: usize) -> u64 {
        4 * (n as u64).pow(2) * k as u64
    }

    /// Hermitian rank-2k update `C ← α·A·Bᴴ + ᾱ·B·Aᴴ + β·C` for an n×n
    /// output: two rank-k products at half flops each — 8·n²·k, half of
    /// the 2·[`zgemm`]`(n, n, k)` it replaces.
    #[inline]
    pub fn zher2k(n: usize, k: usize) -> u64 {
        8 * (n as u64).pow(2) * k as u64
    }

    /// Hermitian LDLᴴ factorization: half the LU cost, (4/3)·n³.
    #[inline]
    pub fn zhetrf(n: usize) -> u64 {
        (4 * (n as u64).pow(3)) / 3
    }

    /// Householder QR of an m×n matrix: 8·(m·n² − n³/3) complex-op-equivalent.
    #[inline]
    pub fn zgeqrf(m: usize, n: usize) -> u64 {
        let (m, n) = (m as u64, n as u64);
        8 * (m * n * n - n * n * n / 3).max(1)
    }

    /// Applying `Q` (or `Qᴴ`) built from `k` Householder reflectors of
    /// length m to an m×n matrix from the left (`zunmqr`): each reflector
    /// touches the full n columns twice (dot + axpy), shrinking by one row
    /// per step — 8·n·k·(2m − k) real operations. The same formula counts
    /// `zungqr`-style explicit-Q assembly (n columns of the identity).
    #[inline]
    pub fn zunmqr(m: usize, n: usize, k: usize) -> u64 {
        let (m, n, k) = (m as u64, n as u64, k as u64);
        (8 * n * k * (2 * m).saturating_sub(k).max(1)).max(1)
    }

    /// Householder reduction of an n×n matrix to upper Hessenberg form
    /// (`zgehrd`): (10/3)·n³ complex multiply-adds (both-side updates plus
    /// the Q accumulation) ≈ (80/3)·n³ real operations.
    #[inline]
    pub fn zgehrd(n: usize) -> u64 {
        80 * (n as u64).pow(3) / 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_measures_exact_thread_delta() {
        let scope = FlopScope::start();
        flops_add(123);
        // Thread-scoped: concurrent tests in the same binary cannot leak
        // into this bracket, so the delta is exact, not a lower bound.
        assert_eq!(scope.elapsed(), 123);
        flops_add(7);
        assert_eq!(scope.elapsed(), 130);
    }

    #[test]
    fn formulas_are_consistent() {
        assert_eq!(counts::zgemm(2, 3, 4), 8 * 24);
        assert_eq!(counts::zgetrf(3), 72);
        assert_eq!(counts::zgetrs(4, 2), 8 * 16 * 2);
        // Hermitian factorization is half of LU.
        assert_eq!(counts::zhetrf(6), counts::zgetrf(6) / 2);
        // Triangle kernels are half their square counterparts.
        assert_eq!(counts::ztrmm(10, 4) * 2, counts::zgemm(10, 4, 10));
        assert_eq!(counts::zher2k(12, 5) * 2, 2 * counts::zgemm(12, 12, 5));
        assert_eq!(counts::zherk(12, 5) * 2, counts::zher2k(12, 5));
        // Q-application: 8·n·k·(2m − k).
        assert_eq!(counts::zunmqr(10, 3, 4), 8 * 3 * 4 * 16);
        // Hessenberg: (80/3)·n³; degenerate sizes stay nonzero.
        assert_eq!(counts::zgehrd(3), 720);
        assert!(counts::zunmqr(1, 1, 0) >= 1 && counts::zgeqrf(1, 0) >= 1);
    }

    #[test]
    fn thread_scope_excludes_concurrent_worker_flops() {
        // The §5.B regression: a worker thread hammers the counters with
        // real gemm work while a scope on this thread brackets a no-op.
        // The scope must see exactly zero — before the per-thread split,
        // the worker's operations leaked into every open scope.
        use crate::gemm::matmul;
        use crate::zmat::ZMat;
        use std::sync::mpsc;
        let (started_tx, started_rx) = mpsc::channel();
        let (stop_tx, stop_rx) = mpsc::channel();
        std::thread::scope(|s| {
            s.spawn(move || {
                let a = ZMat::random(48, 48, 1);
                let b = ZMat::random(48, 48, 2);
                let mut done_one = false;
                loop {
                    let _ = matmul(&a, &b);
                    if !done_one {
                        started_tx.send(()).unwrap();
                        done_one = true;
                    }
                    // Stop on the signal *or* a disconnected channel: if
                    // the main thread's assertion panics before sending,
                    // the sender is dropped and the worker must still
                    // exit (otherwise the scope join hangs the unwind and
                    // the test times out with no diagnostic).
                    if stop_rx.try_recv() != Err(std::sync::mpsc::TryRecvError::Empty) {
                        break;
                    }
                }
            });
            // Wait until the worker demonstrably adds flops, then bracket
            // a no-op on this thread.
            started_rx.recv().unwrap();
            let scope = FlopScope::start();
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert_eq!(scope.elapsed(), 0, "concurrent worker leaked into the scope");
            stop_tx.send(()).unwrap();
        });
    }

    #[test]
    fn process_scope_aggregates_across_threads() {
        let scope = FlopScope::start_process();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| flops_add(1000));
            }
        });
        // Whole-process opt-in: worker contributions are visible (other
        // concurrent tests may add more, so this is a lower bound).
        assert!(scope.elapsed() >= 4000);
        // The same bracket viewed thread-scoped sees none of it.
        let local = FlopScope::start();
        std::thread::scope(|s| {
            s.spawn(|| flops_add(500));
        });
        assert_eq!(local.elapsed(), 0);
    }

    #[test]
    fn global_total_still_aggregates_thread_work() {
        let before = flops_total();
        std::thread::scope(|s| {
            s.spawn(|| flops_add(250));
        });
        flops_add(1);
        assert!(flops_total() >= before + 251);
    }
}
