//! Reusable scratch-matrix pool for the solver hot paths.
//!
//! RGF sweeps, SplitSolve's local column solves and FEAST's subspace
//! products all consume short-lived dense temporaries of a handful of
//! recurring shapes, once per block per energy point — thousands of
//! `ZMat::zeros`/`clone` calls per sweep in the seed implementation. A
//! [`Workspace`] turns that churn into buffer reuse: [`Workspace::take`]
//! hands out a zeroed matrix backed by a recycled buffer when one of
//! sufficient capacity is pooled, and [`Workspace::recycle`] returns a
//! spent temporary's buffer to the pool.
//!
//! The pool is internally synchronized (a mutex around a `Vec` of spare
//! buffers), so one `Workspace` can be shared across rayon tasks — e.g.
//! SplitSolve's per-partition sweeps recycle through the same pool. Lock
//! traffic is one uncontended acquire per take/recycle, far below the
//! cost of the gemm/LU work between them.
//!
//! Results produced with a recycled buffer are bit-identical to results
//! produced with fresh allocations: `take` zero-fills, and the gemm
//! `β = 0` path never reads the output. A property test
//! (`workspace_reuse_is_transparent` in the top-level `properties` suite)
//! asserts exactly this fresh-vs-recycled equality across whole solver
//! runs.

use crate::complex::Complex64;
use crate::gemm::{gemm_view, Op};
use crate::zmat::{ZMat, ZMatRef};
use std::cell::RefCell;
use std::sync::Mutex;

thread_local! {
    /// Per-thread raw staging scratch for the triangular kernels
    /// ([`crate::trsm`]/[`crate::trmm`]): their per-call staging buffers
    /// (a block row of `B`, a cleaned diagonal block) are small but were
    /// freshly allocated and zero-filled on every call — measurable
    /// against a ≤64-sized solve. The high-water buffer is kept per
    /// thread, so repeat calls at steady-state sizes reuse warm memory
    /// with no synchronization.
    static TRI_SCRATCH: RefCell<Vec<Complex64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` over a `need`-element slice of the calling thread's triangular
/// staging scratch. Contents are **unspecified** (whatever the previous
/// call left); callers must write before reading. Not reentrant: `f` must
/// not call back into a kernel that takes the scratch itself (the
/// trsm/trmm staging never does — their inner calls are gemms).
pub(crate) fn with_tri_scratch<R>(need: usize, f: impl FnOnce(&mut [Complex64]) -> R) -> R {
    TRI_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < need {
            buf.resize(need, Complex64::ZERO);
        }
        f(&mut buf[..need])
    })
}

/// A pool of reusable column-major buffers for dense temporaries.
///
/// Besides the complex matrix pool, the workspace also pools the
/// `Vec<usize>` index buffers the pivoted factorizations consume (one
/// `perm` gather map and one `ipiv` interchange sequence per LU call):
/// [`Workspace::take_index`] hands out an identity-initialized index
/// vector from the spare pile and [`Workspace::recycle_index`] returns a
/// spent one, so the zero-allocation property of a warm factor+solve loop
/// covers the pivot bookkeeping too.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Mutex<Vec<Vec<Complex64>>>,
    fresh: Mutex<u64>,
    idx_pool: Mutex<Vec<Vec<usize>>>,
    idx_fresh: Mutex<u64>,
}

impl Workspace {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a zeroed `rows × cols` matrix, reusing the best-fitting
    /// pooled buffer (falling back to a fresh allocation).
    pub fn take(&self, rows: usize, cols: usize) -> ZMat {
        let mut m = self.take_scratch(rows, cols);
        m.as_mut_slice().fill(Complex64::ZERO);
        m
    }

    /// Like [`Workspace::take`] but **without zeroing**: element contents
    /// are unspecified. Only for callers that overwrite every element
    /// before reading (β = 0 products, full copies, the
    /// `solve_into`/`solve_in_place` factorization sinks) — skipping the
    /// zero-fill halves the memory traffic of the pool's hottest users.
    pub fn take_scratch(&self, rows: usize, cols: usize) -> ZMat {
        let need = rows * cols;
        let recycled = {
            let mut pool = self.pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            // Best fit: the smallest pooled buffer with enough capacity,
            // so a huge buffer isn't burned on a tiny tip solve.
            let mut best: Option<(usize, usize)> = None;
            for (idx, buf) in pool.iter().enumerate() {
                let cap = buf.capacity();
                if cap >= need && best.is_none_or(|(_, c)| cap < c) {
                    best = Some((idx, cap));
                }
            }
            best.map(|(idx, _)| pool.swap_remove(idx))
        };
        match recycled {
            Some(buf) => ZMat::from_recycled_buffer(rows, cols, buf),
            None => {
                *self.fresh.lock().unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
                ZMat::zeros(rows, cols)
            }
        }
    }

    /// Returns a spent temporary's buffer to the pool.
    pub fn recycle(&self, m: ZMat) {
        let buf = m.into_vec();
        if buf.capacity() == 0 {
            return;
        }
        self.pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(buf);
    }

    /// Pool-backed copy of a matrix (the reusable counterpart of `clone`).
    pub fn copy_of(&self, src: &ZMat) -> ZMat {
        let mut out = self.take_scratch(src.rows(), src.cols());
        out.as_mut_slice().copy_from_slice(src.as_slice());
        out
    }

    /// Pool-backed materialization of a view (the reusable counterpart of
    /// `ZMat::block`).
    pub fn copy_of_view(&self, src: ZMatRef<'_>) -> ZMat {
        let mut out = self.take_scratch(src.rows(), src.cols());
        for j in 0..src.cols() {
            out.col_mut(j).copy_from_slice(src.col(j));
        }
        out
    }

    /// Pool-backed product `op(A)·op(B)` (β = 0, α = 1).
    pub fn matmul_op(&self, a: &ZMat, op_a: Op, b: &ZMat, op_b: Op) -> ZMat {
        self.matmul_op_view(a.view(), op_a, b.view(), op_b)
    }

    /// Pool-backed product over views.
    pub fn matmul_op_view(&self, a: ZMatRef<'_>, op_a: Op, b: ZMatRef<'_>, op_b: Op) -> ZMat {
        let m = match op_a {
            Op::None => a.rows(),
            _ => a.cols(),
        };
        let n = match op_b {
            Op::None => b.cols(),
            _ => b.rows(),
        };
        // β = 0: gemm never reads the output, so unzeroed scratch is safe.
        let mut c = self.take_scratch(m, n);
        gemm_view(Complex64::ONE, a, op_a, b, op_b, Complex64::ZERO, &mut c);
        c
    }

    /// Pool-backed plain product `A·B`.
    pub fn matmul(&self, a: &ZMat, b: &ZMat) -> ZMat {
        self.matmul_op(a, Op::None, b, Op::None)
    }

    /// Hands out an index buffer holding the identity permutation
    /// `0, 1, …, n−1`, reusing a pooled buffer's capacity when one is
    /// available — the pivot-vector counterpart of [`Workspace::take`],
    /// consumed by `lu_factor_ws`-style factorizations for their `perm`
    /// and `ipiv` vectors.
    pub fn take_index(&self, n: usize) -> Vec<usize> {
        let recycled = {
            let mut pool = self.idx_pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut best: Option<(usize, usize)> = None;
            for (idx, buf) in pool.iter().enumerate() {
                let cap = buf.capacity();
                if cap >= n && best.is_none_or(|(_, c)| cap < c) {
                    best = Some((idx, cap));
                }
            }
            best.map(|(idx, _)| pool.swap_remove(idx))
        };
        match recycled {
            Some(mut buf) => {
                buf.clear();
                buf.extend(0..n);
                buf
            }
            None => {
                *self.idx_fresh.lock().unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
                (0..n).collect()
            }
        }
    }

    /// Returns a spent index buffer to the pool.
    pub fn recycle_index(&self, v: Vec<usize>) {
        if v.capacity() == 0 {
            return;
        }
        self.idx_pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(v);
    }

    /// Fresh (non-recycled) allocations the pool has had to make — the
    /// steady-state value stays flat once the pool is warm, which the
    /// reuse tests assert.
    pub fn fresh_allocations(&self) -> u64 {
        *self.fresh.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Fresh index-buffer allocations (see [`Workspace::take_index`]).
    pub fn fresh_index_allocations(&self) -> u64 {
        *self.idx_fresh.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of currently pooled spare buffers.
    pub fn pooled(&self) -> usize {
        self.pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn take_recycle_reuses_capacity() {
        let ws = Workspace::new();
        let a = ws.take(8, 8);
        ws.recycle(a);
        assert_eq!(ws.pooled(), 1);
        let b = ws.take(4, 4); // smaller: reuses the 64-element buffer
        assert_eq!(ws.pooled(), 0);
        assert_eq!(ws.fresh_allocations(), 1);
        ws.recycle(b);
        let _c = ws.take(16, 16); // larger: needs a fresh allocation
        assert_eq!(ws.fresh_allocations(), 2);
    }

    #[test]
    fn take_zeroes_recycled_buffers() {
        let ws = Workspace::new();
        let mut a = ws.take(3, 3);
        for z in a.as_mut_slice().iter_mut() {
            *z = c64(7.0, -7.0);
        }
        ws.recycle(a);
        let b = ws.take(3, 3);
        assert!(b.as_slice().iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    fn matmul_matches_operator() {
        let ws = Workspace::new();
        let a = ZMat::random(9, 7, 1);
        let b = ZMat::random(7, 5, 2);
        let direct = &a * &b;
        let pooled = ws.matmul(&a, &b);
        assert!(pooled.max_diff(&direct) < 1e-14);
        ws.recycle(pooled);
        // Second product through the recycled buffer is identical.
        let again = ws.matmul(&a, &b);
        assert!(again.max_diff(&direct) < 1e-14);
        assert_eq!(ws.fresh_allocations(), 1);
    }

    #[test]
    fn best_fit_prefers_smaller_buffer() {
        let ws = Workspace::new();
        let big = ws.take(32, 32);
        let small = ws.take(4, 4);
        ws.recycle(big);
        ws.recycle(small);
        let m = ws.take(4, 4);
        // The 16-element buffer was chosen, leaving the 1024-element one.
        assert_eq!(ws.pooled(), 1);
        assert!(ws.pool.lock().unwrap().iter().all(|b| b.capacity() >= 1024));
        drop(m);
    }

    #[test]
    fn index_pool_reuses_capacity() {
        let ws = Workspace::new();
        let a = ws.take_index(16);
        assert_eq!(a, (0..16).collect::<Vec<_>>());
        ws.recycle_index(a);
        // Smaller request reuses the 16-slot buffer, re-identity-filled.
        let b = ws.take_index(8);
        assert_eq!(b, (0..8).collect::<Vec<_>>());
        assert_eq!(ws.fresh_index_allocations(), 1);
        ws.recycle_index(b);
        let _c = ws.take_index(32); // larger: fresh allocation
        assert_eq!(ws.fresh_index_allocations(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let ws = Workspace::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let ws = &ws;
                s.spawn(move || {
                    for i in 0..50 {
                        let m = ws.take(6 + t % 3, 6);
                        assert_eq!(m.rows(), 6 + t % 3);
                        let _ = i;
                        ws.recycle(m);
                    }
                });
            }
        });
        // Pool stabilizes at ≤ one buffer per concurrently live take.
        assert!(ws.pooled() <= 4);
    }
}
