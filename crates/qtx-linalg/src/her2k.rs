//! Hermitian rank-2k update (`zher2k`), completing the BLAS-3 triangle
//! set next to [`crate::herk`].
//!
//! `C ← α·A·Bᴴ + ᾱ·B·Aᴴ + β·C` is Hermitian by construction whenever `β`
//! is real, which makes it the natural kernel for "sandwich" products of
//! the transport observables: the Caroli spectral function `G·Γ·Gᴴ`
//! (Γ Hermitian) collapses to one `zher2k` with `A = G·Γ`, `B = G`,
//! `α = ½` — computing only the lower triangle and mirroring, at half the
//! flops of the two general gemms it replaces. The tiling is the same
//! lower-triangle block grid as [`crate::herk::zherk`], two packed-gemm
//! calls per block.

use crate::complex::c64;
use crate::flops::{counts, flops_add};
use crate::gemm::{gemm_into_unc, Op};
use crate::zmat::{ZMat, ZMatRef};

/// Block edge of the triangle tiling (matches [`crate::herk`]).
const NB: usize = 64;

/// `C ← α·A·Bᴴ + ᾱ·B·Aᴴ + β·C` (`op = Op::None`, `A`/`B` both n×k) or
/// `C ← α·Aᴴ·B + ᾱ·Bᴴ·A + β·C` (`op = Op::Adjoint`, both k×n), with real
/// `β` — BLAS `zher2k`.
///
/// Only the lower triangle of `C` is read (like BLAS); the full Hermitian
/// result is written back, diagonal forced real. `Op::Transpose` is
/// rejected: the transposed form is complex-symmetric, not Hermitian.
pub fn zher2k(
    alpha: crate::complex::Complex64,
    a: ZMatRef<'_>,
    b: ZMatRef<'_>,
    op: Op,
    beta: f64,
    c: &mut ZMat,
) {
    assert!(op != Op::Transpose, "zher2k: use Op::None (A·Bᴴ + B·Aᴴ) or Op::Adjoint (Aᴴ·B + Bᴴ·A)");
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "zher2k operand shape mismatch");
    let (n, k) = match op {
        Op::None => (a.rows(), a.cols()),
        _ => (a.cols(), a.rows()),
    };
    assert_eq!((c.rows(), c.cols()), (n, n), "zher2k output shape mismatch");
    flops_add(counts::zher2k(n, k));
    let beta = c64(beta, 0.0);
    let alpha_c = alpha.conj();
    // Lower-triangle block grid, two gemms per (i ≥ j) block: the first
    // applies β, the second accumulates. Diagonal blocks are computed in
    // full (waste NB²/2 per block, negligible against the n²k saved).
    let mut j0 = 0;
    while j0 < n {
        let jb = NB.min(n - j0);
        let mut i0 = j0;
        while i0 < n {
            let ib = NB.min(n - i0);
            let (ai, bj, bi, aj) = match op {
                Op::None => (
                    a.sub(i0, 0, ib, k),
                    b.sub(j0, 0, jb, k),
                    b.sub(i0, 0, ib, k),
                    a.sub(j0, 0, jb, k),
                ),
                _ => (
                    a.sub(0, i0, k, ib),
                    b.sub(0, j0, k, jb),
                    b.sub(0, i0, k, ib),
                    a.sub(0, j0, k, jb),
                ),
            };
            let (op_i, op_j) = match op {
                Op::None => (Op::None, Op::Adjoint),
                _ => (Op::Adjoint, Op::None),
            };
            gemm_into_unc(alpha, ai, op_i, bj, op_j, beta, c.block_view_mut(i0, j0, ib, jb));
            gemm_into_unc(
                alpha_c,
                bi,
                op_i,
                aj,
                op_j,
                crate::complex::Complex64::ONE,
                c.block_view_mut(i0, j0, ib, jb),
            );
            i0 += ib;
        }
        j0 += jb;
    }
    // Mirror the strict lower triangle up and pin the diagonal real.
    for j in 0..n {
        for i in 0..j {
            c[(i, j)] = c[(j, i)].conj();
        }
        let d = c[(j, j)];
        c[(j, j)] = c64(d.re, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::gemm::gemm;
    use crate::zmat::{alloc_count, ZMat};

    fn reference(alpha: Complex64, a: &ZMat, b: &ZMat, op: Op, beta: f64, c0: &ZMat) -> ZMat {
        let mut c = c0.clone();
        // Make the β·C term Hermitian the way zher2k reads it (lower only).
        c.hermitianize();
        let flip = |o: Op| match o {
            Op::None => Op::Adjoint,
            _ => Op::None,
        };
        gemm(alpha, a, op, b, flip(op), c64(beta, 0.0), &mut c);
        gemm(alpha.conj(), b, op, a, flip(op), Complex64::ONE, &mut c);
        c
    }

    #[test]
    fn matches_gemm_both_transposes() {
        let alpha = c64(0.6, -0.8);
        for op in [Op::None, Op::Adjoint] {
            for (n, k) in [(5usize, 9usize), (9, 5), (97, 33), (130, 70)] {
                let (a, b) = match op {
                    Op::None => (ZMat::random(n, k, 3), ZMat::random(n, k, 4)),
                    _ => (ZMat::random(k, n, 3), ZMat::random(k, n, 4)),
                };
                let mut c = ZMat::random(n, n, 5);
                c.hermitianize();
                let expected = reference(alpha, &a, &b, op, 0.3, &c);
                zher2k(alpha, a.view(), b.view(), op, 0.3, &mut c);
                assert!(
                    c.max_diff(&expected) < 1e-9 * (k as f64),
                    "op {op:?} n {n} k {k}: {:.2e}",
                    c.max_diff(&expected)
                );
                assert!(c.hermitian_defect() < 1e-12, "result must be Hermitian");
            }
        }
    }

    #[test]
    fn beta_zero_ignores_garbage_upper_triangle() {
        let a = ZMat::random(40, 20, 7);
        let b = ZMat::random(40, 20, 8);
        let mut c = ZMat::random(40, 40, 9); // arbitrary contents, β = 0
        zher2k(Complex64::ONE, a.view(), b.view(), Op::None, 0.0, &mut c);
        let mut expected = ZMat::zeros(40, 40);
        gemm(Complex64::ONE, &a, Op::None, &b, Op::Adjoint, Complex64::ZERO, &mut expected);
        gemm(Complex64::ONE, &b, Op::None, &a, Op::Adjoint, Complex64::ONE, &mut expected);
        assert!(c.max_diff(&expected) < 1e-10);
    }

    #[test]
    fn sandwich_product_is_exact() {
        // The Caroli use-case: G·Γ·Gᴴ with Hermitian Γ equals
        // zher2k(½, G·Γ, G). Exact identity, not an approximation.
        let g = ZMat::random(12, 12, 21);
        let mut gam = ZMat::random(12, 12, 22);
        gam.hermitianize();
        let ggam = &g * &gam;
        let mut c = ZMat::zeros(12, 12);
        zher2k(c64(0.5, 0.0), ggam.view(), g.view(), Op::None, 0.0, &mut c);
        let expected = &ggam * &g.adjoint();
        assert!(c.max_diff(&expected) < 1e-11, "{:.2e}", c.max_diff(&expected));
        assert!(c.hermitian_defect() < 1e-12);
    }

    // The seed-gemm A/B kernel clones its operands by design, so the
    // zero-allocation property only holds for the production gemm.
    #[cfg(not(feature = "seed-gemm"))]
    #[test]
    fn allocation_free() {
        let a = ZMat::random(96, 64, 11);
        let b = ZMat::random(96, 64, 12);
        let mut c = ZMat::zeros(96, 96);
        let before = alloc_count();
        zher2k(Complex64::ONE, a.view(), b.view(), Op::None, 0.0, &mut c);
        assert_eq!(alloc_count(), before, "zher2k allocated a ZMat");
    }

    #[test]
    fn counts_half_the_two_gemm_flops() {
        let a = ZMat::random(30, 12, 13);
        let b = ZMat::random(30, 12, 14);
        let mut c = ZMat::zeros(30, 30);
        let scope = crate::flops::FlopScope::start();
        zher2k(Complex64::ONE, a.view(), b.view(), Op::None, 0.0, &mut c);
        assert!(scope.elapsed() >= counts::zher2k(30, 12));
        assert!(counts::zher2k(30, 12) == 2 * counts::zgemm(30, 30, 12) / 2);
    }
}
