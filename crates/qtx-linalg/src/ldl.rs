//! Pivot-free LDLᴴ factorization for Hermitian systems (`zhesv_nopiv`).
//!
//! §5.E of the paper: replacing `zgesv_nopiv_gpu` with `zhesv_nopiv_gpu`
//! and exploiting that `A = E·S − H` is Hermitian for 2-D structures cut
//! the per-energy-point operation count from 241 to 228 TFLOPs and lifted
//! the sustained performance from 12.8 to 15.01 PFlop/s. This module
//! provides that Hermitian fast path: an LDLᴴ factorization without
//! pivoting (half the flops of LU) and the corresponding solve.

use crate::complex::{c64, Complex64};
use crate::flops::{counts, flops_add};
use crate::zmat::ZMat;
use crate::{LinalgError, Result};

/// Packed LDLᴴ factors: unit-lower `L` in the strict lower triangle and the
/// real diagonal `D` on the diagonal.
#[derive(Debug, Clone)]
pub struct LdlFactors {
    packed: ZMat,
}

/// Factors a Hermitian matrix `A = L·D·Lᴴ` without pivoting.
///
/// The input must be Hermitian (checked up to a tolerance in debug builds);
/// transport matrices at complex-free energies in 2-D/1-D devices satisfy
/// this (§3.B, "A is usually real symmetric in 3-D structures and complex
/// Hermitian in 1-D and 2-D").
pub fn ldl_factor_nopiv(a: &ZMat) -> Result<LdlFactors> {
    let n = a.rows();
    assert!(a.is_square(), "LDLᴴ requires a square matrix");
    debug_assert!(
        a.hermitian_defect() < 1e-8 * a.norm_max().max(1.0),
        "ldl_factor_nopiv requires a Hermitian matrix"
    );
    flops_add(counts::zhetrf(n));
    let mut p = a.clone();
    let scale = a.norm_max().max(1.0);
    for k in 0..n {
        // d_k = A_kk - sum_{j<k} |L_kj|^2 d_j  (real by Hermiticity)
        let mut d = p[(k, k)].re;
        for j in 0..k {
            let lkj = p[(k, j)];
            let dj = p[(j, j)].re;
            d -= lkj.norm_sqr() * dj;
        }
        if d.abs() < 1e-14 * scale {
            return Err(LinalgError::SingularPivot { index: k, magnitude: d.abs() });
        }
        p[(k, k)] = c64(d, 0.0);
        for i in k + 1..n {
            // L_ik = (A_ik - sum_{j<k} L_ij d_j conj(L_kj)) / d_k
            let mut v = p[(i, k)];
            for j in 0..k {
                let lij = p[(i, j)];
                let lkj = p[(k, j)];
                let dj = p[(j, j)].re;
                v -= lij * lkj.conj() * dj;
            }
            p[(i, k)] = v / d;
        }
    }
    Ok(LdlFactors { packed: p })
}

impl LdlFactors {
    /// Solves `A·X = B` using the LDLᴴ factors.
    pub fn solve(&self, b: &ZMat) -> ZMat {
        let n = self.packed.rows();
        assert_eq!(b.rows(), n);
        flops_add(counts::zgetrs(n, b.cols()) / 2 * 3); // L, D, Lᴴ sweeps
        let mut x = b.clone();
        for j in 0..x.cols() {
            // Forward: L y = b.
            for k in 0..n {
                let xkj = x[(k, j)];
                if xkj == Complex64::ZERO {
                    continue;
                }
                for i in k + 1..n {
                    let lik = self.packed[(i, k)];
                    x[(i, j)] -= lik * xkj;
                }
            }
            // Diagonal: z = D⁻¹ y.
            for k in 0..n {
                let d = self.packed[(k, k)].re;
                x[(k, j)] = x[(k, j)] / d;
            }
            // Backward: Lᴴ x = z.
            for k in (0..n).rev() {
                let mut v = x[(k, j)];
                for i in k + 1..n {
                    let lik = self.packed[(i, k)];
                    v -= lik.conj() * x[(i, j)];
                }
                x[(k, j)] = v;
            }
        }
        x
    }

    /// The real diagonal `D`; its signs give the matrix inertia, which
    /// transport uses as a sanity check on energy placement.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.packed.rows()).map(|i| self.packed[(i, i)].re).collect()
    }
}

/// One-shot Hermitian solve (MAGMA `zhesv_nopiv_gpu` analogue).
pub fn zhesv_nopiv(a: &ZMat, b: &ZMat) -> Result<ZMat> {
    Ok(ldl_factor_nopiv(a)?.solve(b))
}

/// Solves `A·x = b` for one Hermitian right-hand side vector.
pub fn ldl_solve(a: &ZMat, b: &[Complex64]) -> Result<Vec<Complex64>> {
    let mut bm = ZMat::zeros(b.len(), 1);
    bm.col_mut(0).copy_from_slice(b);
    Ok(zhesv_nopiv(a, &bm)?.col(0).to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hermitian_pd(n: usize, seed: u64) -> ZMat {
        // G Gᴴ + n·I is Hermitian positive definite.
        let g = ZMat::random(n, n, seed);
        let mut a = ZMat::zeros(n, n);
        crate::gemm::gemm(
            Complex64::ONE,
            &g,
            crate::gemm::Op::None,
            &g,
            crate::gemm::Op::Adjoint,
            Complex64::ZERO,
            &mut a,
        );
        for i in 0..n {
            a[(i, i)] += c64(n as f64, 0.0);
        }
        a.hermitianize();
        a
    }

    #[test]
    fn solve_matches_lu() {
        let a = hermitian_pd(10, 5);
        let b = ZMat::random(10, 3, 6);
        let x_ldl = zhesv_nopiv(&a, &b).unwrap();
        let x_lu = crate::lu::zgesv(&a, &b).unwrap();
        assert!(x_ldl.max_diff(&x_lu) < 1e-8);
    }

    #[test]
    fn reconstructs_rhs() {
        let a = hermitian_pd(14, 9);
        let x_true = ZMat::random(14, 2, 10);
        let b = &a * &x_true;
        let x = zhesv_nopiv(&a, &b).unwrap();
        assert!(x.max_diff(&x_true) < 1e-8);
    }

    #[test]
    fn inertia_of_definite_matrix_is_all_positive() {
        let a = hermitian_pd(8, 12);
        let f = ldl_factor_nopiv(&a).unwrap();
        assert!(f.diagonal().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn indefinite_matrix_has_mixed_inertia() {
        // diag(1, -2, 3) is indefinite but factors fine without pivoting.
        let a = ZMat::from_diag(&[c64(1.0, 0.0), c64(-2.0, 0.0), c64(3.0, 0.0)]);
        let f = ldl_factor_nopiv(&a).unwrap();
        let d = f.diagonal();
        assert!(d[0] > 0.0 && d[1] < 0.0 && d[2] > 0.0);
    }

    #[test]
    fn half_the_flops_of_lu() {
        let a = hermitian_pd(32, 13);
        let s1 = crate::flops::FlopScope::start();
        let _ = ldl_factor_nopiv(&a).unwrap();
        let ldl_flops = s1.elapsed();
        let s2 = crate::flops::FlopScope::start();
        let _ = crate::lu::lu_factor(&a).unwrap();
        let lu_flops = s2.elapsed();
        assert_eq!(ldl_flops, lu_flops / 2, "the §5.E saving");
    }

    #[test]
    fn rejects_singular() {
        let a = ZMat::zeros(3, 3);
        assert!(ldl_factor_nopiv(&a).is_err());
    }
}
