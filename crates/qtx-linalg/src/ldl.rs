//! Pivot-free LDLᴴ factorization for Hermitian systems (`zhesv_nopiv`).
//!
//! §5.E of the paper: replacing `zgesv_nopiv_gpu` with `zhesv_nopiv_gpu`
//! and exploiting that `A = E·S − H` is Hermitian for 2-D structures cut
//! the per-energy-point operation count from 241 to 228 TFLOPs and lifted
//! the sustained performance from 12.8 to 15.01 PFlop/s. This module
//! provides that Hermitian fast path: an LDLᴴ factorization without
//! pivoting (half the flops of LU) and the corresponding solve.
//!
//! Above the size crossover the factorization runs **blocked
//! right-looking**, mirroring the LU stack: column ranges split
//! recursively (flat `NB`-panel peeling below a strip width, halving
//! above), each merge staging `W = L₂₁·D₁` in raw scratch and applying
//! `−W·L₂₁ᴴ` on the tiled [`crate::gemm`] microkernel, walked
//! block-column by block-column so only the lower triangle (plus a small
//! diagonal wedge) is touched — preserving the half-of-LU work profile.
//! Solves are two blocked [`crate::trsm`] sweeps (`L`, then `Lᴴ` via the
//! adjoint transform on the same stored triangle) around a diagonal
//! scaling, with [`LdlFactors::solve_into`] writing straight into caller
//! buffers.

use crate::complex::{c64, Complex64};
use crate::flops::{counts, flops_add};
use crate::gemm::{gemm_into_unc, Op};
use crate::trsm::{trsm_unc, Diag, Side, UpLo};
use crate::workspace::Workspace;
use crate::zmat::{ZMat, ZMatMut, ZMatRef};
use crate::{LinalgError, Result};

/// Panel width of the blocked factorization (matches the LU stack).
const NB: usize = 32;

/// Flat-vs-recursive threshold, as in the LU stack: narrow ranges peel
/// `NB`-panels, wide ranges halve so merge gemms run at large `k` while
/// every update stays on the packed gemm path.
const STRIP: usize = 128;

/// Column-chunk width of the merge's trailing update: the Hermitian
/// update walks block columns this wide so only the lower triangle plus a
/// small diagonal wedge is written.
const CHUNK: usize = 48;

/// Crossover below which the unblocked recurrence wins (see `lu::BLOCK_MIN`).
const BLOCK_MIN: usize = 96;

/// Packed LDLᴴ factors: unit-lower `L` in the strict lower triangle and the
/// real diagonal `D` on the diagonal.
#[derive(Debug, Clone)]
pub struct LdlFactors {
    packed: ZMat,
}

/// Factors a Hermitian matrix `A = L·D·Lᴴ` without pivoting.
///
/// The input must be Hermitian (checked up to a tolerance in debug builds);
/// transport matrices at complex-free energies in 2-D/1-D devices satisfy
/// this (§3.B, "A is usually real symmetric in 3-D structures and complex
/// Hermitian in 1-D and 2-D").
pub fn ldl_factor_nopiv(a: &ZMat) -> Result<LdlFactors> {
    ldl_entry(a.clone(), None)
}

/// [`ldl_factor_nopiv`] with the working copy borrowed from `ws`; recycle
/// the factors via [`LdlFactors::into_packed`] when spent.
pub fn ldl_factor_nopiv_ws(a: &ZMat, ws: &Workspace) -> Result<LdlFactors> {
    ldl_entry(ws.copy_of(a), Some(ws))
}

/// The unblocked left-looking baseline, kept callable for A/B
/// measurements and the blocked-vs-unblocked property tests.
pub fn ldl_factor_nopiv_unblocked(a: &ZMat) -> Result<LdlFactors> {
    check_hermitian(a);
    flops_add(counts::zhetrf(a.rows()));
    let mut p = a.clone();
    factor_unblocked(&mut p)?;
    Ok(LdlFactors { packed: p })
}

fn check_hermitian(a: &ZMat) {
    assert!(a.is_square(), "LDLᴴ requires a square matrix");
    debug_assert!(
        a.hermitian_defect() < 1e-8 * a.norm_max().max(1.0),
        "ldl_factor_nopiv requires a Hermitian matrix"
    );
}

fn ldl_entry(mut p: ZMat, ws: Option<&Workspace>) -> Result<LdlFactors> {
    check_hermitian(&p);
    let n = p.rows();
    flops_add(counts::zhetrf(n));
    let factored = if n < BLOCK_MIN || crate::lu::unblocked_forced() {
        factor_unblocked(&mut p)
    } else {
        factor_blocked(&mut p)
    };
    match factored {
        Ok(()) => Ok(LdlFactors { packed: p }),
        Err(e) => {
            if let Some(ws) = ws {
                ws.recycle(p);
            }
            Err(e)
        }
    }
}

/// The left-looking recurrence (seed algorithm), with the column updates
/// `L[k+1.., k] −= L[k+1.., j]·(conj(L_kj)·d_j)` run as contiguous column
/// AXPYs so the inner loops vectorize.
fn factor_unblocked(p: &mut ZMat) -> Result<()> {
    let n = p.rows();
    let scale = p.norm_max().max(1.0);
    for k in 0..n {
        ldl_column_step(p, k, 0, k, scale)?;
    }
    Ok(())
}

/// One LDLᴴ column: applies the corrections from columns `j0..j1` to
/// column `k` (diagonal first, then the sub-column as AXPYs), checks the
/// pivot and scales by `1/d_k`.
#[inline]
fn ldl_column_step(p: &mut ZMat, k: usize, j0: usize, j1: usize, scale: f64) -> Result<()> {
    let n = p.rows();
    // d_k = A_kk - sum_j |L_kj|^2 d_j  (real by Hermiticity)
    let mut d = p[(k, k)].re;
    for j in j0..j1 {
        let lkj = p[(k, j)];
        let dj = p[(j, j)].re;
        d -= lkj.norm_sqr() * dj;
    }
    if d.abs() < 1e-14 * scale {
        return Err(LinalgError::SingularPivot { index: k, magnitude: d.abs() });
    }
    p[(k, k)] = c64(d, 0.0);
    // L_ik = (A_ik - sum_j L_ij·conj(L_kj)·d_j) / d_k, one AXPY per j.
    for j in j0..j1 {
        let coef = p[(k, j)].conj().scale(p[(j, j)].re);
        if coef == Complex64::ZERO {
            continue;
        }
        let neg = -coef;
        let (colj, colk) = p.two_cols_mut(j, k);
        for (ck, &cj) in colk[k + 1..n].iter_mut().zip(&colj[k + 1..n]) {
            *ck = ck.mul_add(cj, neg);
        }
    }
    let dinv = 1.0 / d;
    for z in p.col_mut(k)[k + 1..n].iter_mut() {
        *z = z.scale(dinv);
    }
    Ok(())
}

/// Recursive blocked right-looking factorization: halved column splits
/// whose merges are `−W·L₂₁ᴴ` gemm updates at large `k`, walked in block
/// columns so only the lower triangle (plus a small diagonal wedge) is
/// written — the §5.E half-of-LU work profile.
fn factor_blocked(p: &mut ZMat) -> Result<()> {
    let n = p.rows();
    let scale = p.norm_max().max(1.0);
    // W = L₂₁·D₁ staged in raw scratch (no ZMat allocation).
    let mut wbuf: Vec<Complex64> = Vec::new();
    ldl_factor_cols(p, 0, n, scale, &mut wbuf)
}

/// Factors columns `c0..c1`, assuming every column left of `c0` is
/// factored and its Hermitian trailing update applied to this range.
fn ldl_factor_cols(
    p: &mut ZMat,
    c0: usize,
    c1: usize,
    scale: f64,
    wbuf: &mut Vec<Complex64>,
) -> Result<()> {
    let n = p.rows();
    let w = c1 - c0;
    if w <= NB {
        // Scalar strip: corrections from within the strip only.
        for k in c0..c1 {
            ldl_column_step(p, k, c0, k, scale)?;
        }
        return Ok(());
    }
    let h = if w <= STRIP { NB } else { (w / 2).div_ceil(NB) * NB };
    ldl_factor_cols(p, c0, c0 + h, scale, wbuf)?;
    let mid = c0 + h;
    let nr = c1 - mid;
    let rows = n - mid;
    {
        // Stage W = L[mid.., c0..mid]·D column by column (contiguous).
        wbuf.resize(rows * h, Complex64::ZERO);
        for t in 0..h {
            let dt = p[(c0 + t, c0 + t)].re;
            let src = &p.col(c0 + t)[mid..n];
            for (w, &l) in wbuf[t * rows..(t + 1) * rows].iter_mut().zip(src) {
                *w = l * dt;
            }
        }
        let wv = ZMatRef::from_slice(wbuf, rows, h, rows);
        let ld = n;
        let data = p.as_mut_slice();
        let (left, right) = data.split_at_mut(mid * ld);
        let right = &mut right[..nr * ld];
        let l21 = ZMatRef::from_slice(&left[c0 * ld + mid..], rows, h, ld);
        let mut cc = 0;
        while cc < nr {
            let cb = CHUNK.min(nr - cc);
            let a_sub = wv.sub(cc, 0, rows - cc, h);
            let b_sub = l21.sub(cc, 0, cb, h);
            let c_sub = ZMatMut::from_slice(&mut right[cc * ld + mid + cc..], rows - cc, cb, ld);
            gemm_into_unc(
                -Complex64::ONE,
                a_sub,
                Op::None,
                b_sub,
                Op::Adjoint,
                Complex64::ONE,
                c_sub,
            );
            cc += cb;
        }
    }
    ldl_factor_cols(p, mid, c1, scale, wbuf)
}

impl LdlFactors {
    /// Solves `A·X = B` using the LDLᴴ factors.
    pub fn solve(&self, b: &ZMat) -> ZMat {
        let mut x = b.clone();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A·X = B` into a caller-provided buffer (typically borrowed
    /// from a [`Workspace`]); `x` is fully overwritten.
    pub fn solve_into(&self, b: ZMatRef<'_>, x: &mut ZMat) {
        assert_eq!((x.rows(), x.cols()), (b.rows(), b.cols()), "solve_into output shape mismatch");
        x.view_mut().copy_from_view(b);
        self.solve_in_place(x);
    }

    /// Solves `A·X = B` in place: forward `L`, diagonal `D⁻¹`, backward
    /// `Lᴴ` — the triangular sweeps run blocked on the gemm microkernel,
    /// with the small-block substitution RHS-register-blocked in
    /// [`crate::trsm`] (the `Lᴴ` gather sweep included).
    pub fn solve_in_place(&self, x: &mut ZMat) {
        let n = self.packed.rows();
        assert_eq!(x.rows(), n);
        flops_add(counts::zgetrs(n, x.cols()) / 2 * 3); // L, D, Lᴴ sweeps
        let a = self.packed.view();
        trsm_unc(Side::Left, UpLo::Lower, Op::None, Diag::Unit, a, x.view_mut());
        for j in 0..x.cols() {
            let col = x.col_mut(j);
            for (k, xk) in col.iter_mut().enumerate() {
                *xk = *xk / self.packed[(k, k)].re;
            }
        }
        trsm_unc(Side::Left, UpLo::Lower, Op::Adjoint, Diag::Unit, a, x.view_mut());
    }

    /// The real diagonal `D`; its signs give the matrix inertia, which
    /// transport uses as a sanity check on energy placement.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.packed.rows()).map(|i| self.packed[(i, i)].re).collect()
    }

    /// Consumes the factors, returning the packed matrix so its buffer can
    /// be recycled into a [`Workspace`].
    pub fn into_packed(self) -> ZMat {
        self.packed
    }
}

/// One-shot Hermitian solve (MAGMA `zhesv_nopiv_gpu` analogue).
pub fn zhesv_nopiv(a: &ZMat, b: &ZMat) -> Result<ZMat> {
    Ok(ldl_factor_nopiv(a)?.solve(b))
}

/// One-shot Hermitian solve with every temporary borrowed from `ws`,
/// writing into the caller's buffer (see [`crate::lu::zgesv_into`]).
pub fn zhesv_nopiv_into(a: &ZMat, b: &ZMat, x: &mut ZMat, ws: &Workspace) -> Result<()> {
    let f = ldl_factor_nopiv_ws(a, ws)?;
    f.solve_into(b.view(), x);
    ws.recycle(f.into_packed());
    Ok(())
}

/// Solves `A·x = b` for one Hermitian right-hand side vector.
pub fn ldl_solve(a: &ZMat, b: &[Complex64]) -> Result<Vec<Complex64>> {
    let mut bm = ZMat::zeros(b.len(), 1);
    bm.col_mut(0).copy_from_slice(b);
    Ok(zhesv_nopiv(a, &bm)?.col(0).to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hermitian_pd(n: usize, seed: u64) -> ZMat {
        // G Gᴴ + n·I is Hermitian positive definite.
        let g = ZMat::random(n, n, seed);
        let mut a = ZMat::zeros(n, n);
        crate::herk::zherk(1.0, g.view(), Op::None, 0.0, &mut a);
        for i in 0..n {
            a[(i, i)] += c64(n as f64, 0.0);
        }
        a.hermitianize();
        a
    }

    #[test]
    fn solve_matches_lu() {
        let a = hermitian_pd(10, 5);
        let b = ZMat::random(10, 3, 6);
        let x_ldl = zhesv_nopiv(&a, &b).unwrap();
        let x_lu = crate::lu::zgesv(&a, &b).unwrap();
        assert!(x_ldl.max_diff(&x_lu) < 1e-8);
    }

    #[test]
    fn reconstructs_rhs() {
        let a = hermitian_pd(14, 9);
        let x_true = ZMat::random(14, 2, 10);
        let b = &a * &x_true;
        let x = zhesv_nopiv(&a, &b).unwrap();
        assert!(x.max_diff(&x_true) < 1e-8);
    }

    #[test]
    fn blocked_matches_unblocked() {
        let n = BLOCK_MIN + 44; // several panels plus a remainder
        let a = hermitian_pd(n, 15);
        let fb = ldl_factor_nopiv(&a).unwrap();
        let fu = ldl_factor_nopiv_unblocked(&a).unwrap();
        // Same factors up to roundoff (no pivoting → unique LDLᴴ).
        let mut worst: f64 = 0.0;
        for j in 0..n {
            for i in j..n {
                worst = worst.max((fb.packed[(i, j)] - fu.packed[(i, j)]).abs());
            }
        }
        assert!(worst < 1e-7 * a.norm_max(), "factor drift {worst:.2e}");
        // And identical solves up to roundoff.
        let b = ZMat::random(n, 2, 16);
        assert!(fb.solve(&b).max_diff(&fu.solve(&b)) < 1e-6);
    }

    #[test]
    fn blocked_solve_reconstructs_rhs() {
        let n = BLOCK_MIN + 24;
        let a = hermitian_pd(n, 29);
        let x_true = ZMat::random(n, 3, 30);
        let b = &a * &x_true;
        let x = zhesv_nopiv(&a, &b).unwrap();
        assert!(x.max_diff(&x_true) < 1e-7, "{:.2e}", x.max_diff(&x_true));
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = hermitian_pd(12, 33);
        let b = ZMat::random(12, 4, 34);
        let f = ldl_factor_nopiv(&a).unwrap();
        let x_ref = f.solve(&b);
        let ws = Workspace::new();
        let mut x = ws.take(12, 4);
        f.solve_into(b.view(), &mut x);
        assert!(x.max_diff(&x_ref) == 0.0, "same code path must be bit-identical");
        let mut x2 = ws.take(12, 4);
        zhesv_nopiv_into(&a, &b, &mut x2, &ws).unwrap();
        assert!(x2.max_diff(&x_ref) < 1e-10);
    }

    #[test]
    fn inertia_of_definite_matrix_is_all_positive() {
        let a = hermitian_pd(8, 12);
        let f = ldl_factor_nopiv(&a).unwrap();
        assert!(f.diagonal().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn indefinite_matrix_has_mixed_inertia() {
        // diag(1, -2, 3) is indefinite but factors fine without pivoting.
        let a = ZMat::from_diag(&[c64(1.0, 0.0), c64(-2.0, 0.0), c64(3.0, 0.0)]);
        let f = ldl_factor_nopiv(&a).unwrap();
        let d = f.diagonal();
        assert!(d[0] > 0.0 && d[1] < 0.0 && d[2] > 0.0);
    }

    #[test]
    fn half_the_flops_of_lu() {
        let a = hermitian_pd(32, 13);
        let s1 = crate::flops::FlopScope::start();
        let _ = ldl_factor_nopiv(&a).unwrap();
        let ldl_flops = s1.elapsed();
        let s2 = crate::flops::FlopScope::start();
        let _ = crate::lu::lu_factor(&a).unwrap();
        let lu_flops = s2.elapsed();
        assert_eq!(ldl_flops, lu_flops / 2, "the §5.E saving");
    }

    #[test]
    fn rejects_singular() {
        let a = ZMat::zeros(3, 3);
        assert!(ldl_factor_nopiv(&a).is_err());
    }
}
