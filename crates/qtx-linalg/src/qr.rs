//! Householder QR factorization, orthonormalization and least squares.
//!
//! FEAST needs two things from QR: an orthonormal basis of the contour
//! projector's range (subspace iteration hygiene) and least-squares
//! pseudo-inverses for the tall-skinny mode matrices `U` when assembling
//! boundary self-energies from an incomplete (annulus-only) mode set.

use crate::complex::{c64, Complex64};
use crate::flops::{counts, flops_add};
use crate::gemm::{gemm, Op};
use crate::zmat::ZMat;

/// Packed Householder QR factors of an m×n matrix (m ≥ n).
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Reflectors below the diagonal, R on and above.
    packed: ZMat,
    /// Scalar reflector coefficients τ.
    tau: Vec<Complex64>,
}

/// Computes the Householder QR factorization of `a` (requires m ≥ n).
pub fn qr_factor(a: &ZMat) -> QrFactors {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "qr_factor requires rows ≥ cols");
    flops_add(counts::zgeqrf(m, n));
    let mut p = a.clone();
    let mut tau = vec![Complex64::ZERO; n];
    for k in 0..n {
        // Generate the reflector for column k (LAPACK zlarfg).
        let alpha = p[(k, k)];
        let mut xnorm_sq = 0.0;
        for i in k + 1..m {
            xnorm_sq += p[(i, k)].norm_sqr();
        }
        if xnorm_sq == 0.0 && alpha.im == 0.0 {
            tau[k] = Complex64::ZERO;
            continue;
        }
        let beta_mag = (alpha.norm_sqr() + xnorm_sq).sqrt();
        let beta = if alpha.re >= 0.0 { -beta_mag } else { beta_mag };
        let tau_k = c64((beta - alpha.re) / beta, -alpha.im / beta);
        tau[k] = tau_k;
        let scale = (alpha - c64(beta, 0.0)).inv();
        for i in k + 1..m {
            p[(i, k)] *= scale;
        }
        p[(k, k)] = c64(beta, 0.0);
        // Apply Hᴴ = I − τ̄ v vᴴ to the trailing columns (LAPACK zgeqr2
        // uses conj(tau), so that Q = H(1)···H(k) with plain τ).
        for j in k + 1..n {
            // w = vᴴ · A(:, j)  with v = [1, p[k+1.., k]]
            let mut w = p[(k, j)];
            for i in k + 1..m {
                w += p[(i, k)].conj() * p[(i, j)];
            }
            let f = tau_k.conj() * w;
            p[(k, j)] -= f;
            for i in k + 1..m {
                let vik = p[(i, k)];
                p[(i, j)] -= vik * f;
            }
        }
    }
    QrFactors { packed: p, tau }
}

impl QrFactors {
    /// The upper-triangular factor `R` (n×n).
    pub fn r(&self) -> ZMat {
        let n = self.packed.cols();
        let mut r = ZMat::zeros(n, n);
        for j in 0..n {
            for i in 0..=j.min(n - 1) {
                r[(i, j)] = self.packed[(i, j)];
            }
        }
        r
    }

    /// The thin orthonormal factor `Q` (m×n, QᴴQ = I).
    pub fn q_thin(&self) -> ZMat {
        let (m, n) = (self.packed.rows(), self.packed.cols());
        let mut q = ZMat::zeros(m, n);
        for k in 0..n {
            q[(k, k)] = Complex64::ONE;
        }
        // Apply reflectors in reverse order: Q = H_0 H_1 ... H_{n-1} I.
        for k in (0..n).rev() {
            let tau_k = self.tau[k];
            if tau_k == Complex64::ZERO {
                continue;
            }
            for j in 0..n {
                let mut w = q[(k, j)];
                for i in k + 1..m {
                    w += self.packed[(i, k)].conj() * q[(i, j)];
                }
                let f = tau_k * w;
                q[(k, j)] -= f;
                for i in k + 1..m {
                    let vik = self.packed[(i, k)];
                    q[(i, j)] -= vik * f;
                }
            }
        }
        q
    }

    /// Applies `Qᴴ` to a matrix (m×p → m×p, top n rows meaningful).
    pub fn apply_qh(&self, b: &ZMat) -> ZMat {
        let (m, n) = (self.packed.rows(), self.packed.cols());
        assert_eq!(b.rows(), m);
        let mut x = b.clone();
        for k in 0..n {
            let tau_k = self.tau[k];
            if tau_k == Complex64::ZERO {
                continue;
            }
            for j in 0..x.cols() {
                let mut w = x[(k, j)];
                for i in k + 1..m {
                    w += self.packed[(i, k)].conj() * x[(i, j)];
                }
                let f = tau_k.conj() * w;
                x[(k, j)] -= f;
                for i in k + 1..m {
                    let vik = self.packed[(i, k)];
                    x[(i, j)] -= vik * f;
                }
            }
        }
        x
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂` via `R x = Qᴴ b`.
    pub fn least_squares(&self, b: &ZMat) -> ZMat {
        let n = self.packed.cols();
        let qhb = self.apply_qh(b);
        let mut x = qhb.block(0, 0, n, b.cols());
        // Back substitution with R.
        for j in 0..x.cols() {
            for k in (0..n).rev() {
                let mut v = x[(k, j)];
                for i in k + 1..n {
                    v -= self.packed[(k, i)] * x[(i, j)];
                }
                x[(k, j)] = v * self.packed[(k, k)].inv();
            }
        }
        flops_add(counts::zgetrs(n, b.cols()));
        x
    }
}

/// One-shot QR factorization.
pub fn qr(a: &ZMat) -> (ZMat, ZMat) {
    let f = qr_factor(a);
    (f.q_thin(), f.r())
}

/// Orthonormalizes the columns of `a` (thin Q of its QR factorization).
pub fn orthonormalize(a: &ZMat) -> ZMat {
    qr_factor(a).q_thin()
}

/// Least-squares solve `min ‖A·x − b‖₂` (A must be m×n with m ≥ n).
pub fn qr_least_squares(a: &ZMat, b: &ZMat) -> ZMat {
    qr_factor(a).least_squares(b)
}

/// Moore–Penrose pseudo-inverse action `A⁺·b` for full-column-rank `A`,
/// used to build `U⁺` when self-energies are assembled from a reduced mode
/// set (§3.A).
pub fn pinv_apply(a: &ZMat, b: &ZMat) -> ZMat {
    qr_least_squares(a, b)
}

/// Verifies column orthonormality: returns `‖QᴴQ − I‖_max`.
pub fn orthonormality_defect(q: &ZMat) -> f64 {
    let n = q.cols();
    let mut qhq = ZMat::zeros(n, n);
    gemm(Complex64::ONE, q, Op::Adjoint, q, Op::None, Complex64::ZERO, &mut qhq);
    qhq.max_diff(&ZMat::identity(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_matrix() {
        let a = ZMat::random(10, 6, 3);
        let (q, r) = qr(&a);
        assert!((&q * &r).max_diff(&a) < 1e-10);
    }

    #[test]
    fn q_is_orthonormal() {
        let a = ZMat::random(12, 7, 5);
        let q = orthonormalize(&a);
        assert!(orthonormality_defect(&q) < 1e-11);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = ZMat::random(8, 8, 7);
        let (_, r) = qr(&a);
        for j in 0..8 {
            for i in j + 1..8 {
                assert!(r[(i, j)].abs() < 1e-13);
            }
        }
    }

    #[test]
    fn least_squares_exact_for_square_systems() {
        let a = ZMat::random(6, 6, 9);
        let x_true = ZMat::random(6, 2, 10);
        let b = &a * &x_true;
        let x = qr_least_squares(&a, &b);
        assert!(x.max_diff(&x_true) < 1e-9);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Overdetermined system: residual must be orthogonal to range(A).
        let a = ZMat::random(10, 4, 11);
        let b = ZMat::random(10, 1, 12);
        let x = qr_least_squares(&a, &b);
        let r = &b - &(&a * &x);
        let mut proj = ZMat::zeros(4, 1);
        gemm(Complex64::ONE, &a, Op::Adjoint, &r, Op::None, Complex64::ZERO, &mut proj);
        assert!(proj.norm_max() < 1e-9, "Aᴴr = {:.3e}", proj.norm_max());
    }

    #[test]
    fn apply_qh_matches_explicit_q() {
        let a = ZMat::random(9, 5, 13);
        let b = ZMat::random(9, 3, 14);
        let f = qr_factor(&a);
        let explicit = {
            // Build the full 9×9 Q by applying reflectors to the identity.
            let mut full = ZMat::identity(9);
            // q_thin gives only the first 5 columns; build Qᴴb via reflectors.
            full = f.apply_qh(&full);
            &full * &b
        };
        let fast = f.apply_qh(&b);
        assert!(fast.max_diff(&explicit) < 1e-10);
    }

    #[test]
    fn handles_rank_deficient_direction_gracefully() {
        // Two identical columns: orthonormalize still returns orthonormal
        // columns (the second spans residual noise but QᴴQ = I must hold
        // for the leading independent part).
        let mut a = ZMat::random(8, 2, 15);
        let col0: Vec<Complex64> = a.col(0).to_vec();
        a.col_mut(1).copy_from_slice(&col0);
        let q = orthonormalize(&a);
        // First column must be normalized.
        let n0: f64 = q.col(0).iter().map(|z| z.norm_sqr()).sum();
        assert!((n0 - 1.0).abs() < 1e-12);
    }
}
